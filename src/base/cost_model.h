// Primitive cost model for the simulated hardware.
//
// Every cost here is a *primitive* (a lock, a cacheline miss, one PTE
// update, one device command), not a result. Higher-level latencies such as
// "checkpoint stop time" emerge from how many primitives each real code path
// executes. Defaults are calibrated to the paper's testbed anchor points
// (see DESIGN.md section 5):
//   - journal write of 4 KiB = 28 us  => 26 us NVMe write latency
//   - journal write of 1 GiB = 417 ms => 2.575 GB/s aggregate bandwidth
//   - incremental checkpoint slope ~23 ns/page => per-page write-protect cost
#ifndef SRC_BASE_COST_MODEL_H_
#define SRC_BASE_COST_MODEL_H_

#include <cstdint>

#include "src/base/units.h"

namespace aurora {

struct CostModel {
  // --- CPU / memory primitives -------------------------------------------
  SimDuration lock_acquire = 18;          // uncontended mutex acquire+release
  SimDuration cacheline_miss = 72;        // pointer chase to cold memory
  SimDuration small_alloc = 60;           // kernel zone allocation
  double mem_copy_bytes_per_ns = 10.0;    // hot memcpy bandwidth (10 GB/s)
  double serialize_bytes_per_ns = 1.8;    // field-by-field serialization
  // Hash + generation compare against the serialization cache; charged per
  // entity whose cached blob is reused inside the stopped window.
  SimDuration serialize_cache_lookup = 90;

  // --- MMU / VM primitives ------------------------------------------------
  SimDuration pte_protect = 22;           // write-protect one PTE
  SimDuration pte_install = 140;          // install one PTE on a soft fault
  SimDuration tlb_shootdown_ipi = 4000;   // IPI + remote TLB flush, per core
  SimDuration fault_entry = 650;          // trap + vm_fault entry/exit
  SimDuration page_alloc = 180;           // allocate one physical page
  // A full COW fault = fault_entry + page_alloc + 4 KiB copy + pte_install.

  // --- Quiescing -----------------------------------------------------------
  SimDuration quiesce_ipi = 4500;         // IPI round to force syscall boundary
  SimDuration syscall_restart = 900;      // rewind PC + restart bookkeeping
  SimDuration syscall_drain = 250;        // wait for a non-sleeping call to finish
  SimDuration fpu_flush_ipi = 1000;       // IPI to flush lazily-saved FPU state

  // --- Storage devices (per NVMe device; striping aggregates bandwidth) ----
  SimDuration nvme_write_latency = 26 * kMicrosecond;
  SimDuration nvme_read_latency = 10 * kMicrosecond;
  double nvme_write_bytes_per_ns = 2.575;  // aggregate striped write stream
  double nvme_read_bytes_per_ns = 2.9;

  // --- Network -------------------------------------------------------------
  SimDuration net_rtt = 140 * kMicrosecond;      // 10 GbE round trip incl. client stack
  double net_bytes_per_ns = 1.1;                 // ~9 Gb/s effective
  // How long a sender waits on an unacknowledged stream send before it
  // declares the transfer lost and reconnects (see NetBackend link faults).
  SimDuration net_send_timeout = 2 * kMillisecond;

  // --- Fault handling ------------------------------------------------------
  // First backoff of the shared IoRetryPolicy; later attempts grow
  // geometrically. Charged to the simulated clock only when a fault fires.
  SimDuration io_retry_backoff = 50 * kMicrosecond;

  // --- CRIU-style userspace checkpointing primitives -----------------------
  // CRIU gathers state via ptrace/procfs round trips and streams pages
  // through a pipe to a dumper process; these are far more expensive than
  // in-kernel object inspection. Calibrated to Table 1 (49 ms OS state,
  // 413 ms memory copy for 500 MB).
  SimDuration criu_object_query = 30 * kMicrosecond;   // one procfs/ptrace query
  double criu_mem_copy_bytes_per_ns = 1.21;            // pipe-based page streaming
  double criu_image_write_bytes_per_ns = 1.43;         // image file writeout

  // Derived helpers ---------------------------------------------------------
  SimDuration MemCopy(uint64_t bytes) const {
    return static_cast<SimDuration>(static_cast<double>(bytes) / mem_copy_bytes_per_ns);
  }
  SimDuration Serialize(uint64_t bytes) const {
    return static_cast<SimDuration>(static_cast<double>(bytes) / serialize_bytes_per_ns);
  }
  SimDuration CowFault() const {
    return fault_entry + page_alloc + MemCopy(kPageSize) + pte_install;
  }
  SimDuration SoftFault() const { return fault_entry + pte_install; }
  SimDuration NvmeWrite(uint64_t bytes) const {
    return nvme_write_latency +
           static_cast<SimDuration>(static_cast<double>(bytes) / nvme_write_bytes_per_ns);
  }
  SimDuration NvmeRead(uint64_t bytes) const {
    return nvme_read_latency +
           static_cast<SimDuration>(static_cast<double>(bytes) / nvme_read_bytes_per_ns);
  }
  SimDuration NetTransfer(uint64_t bytes) const {
    return net_rtt / 2 +
           static_cast<SimDuration>(static_cast<double>(bytes) / net_bytes_per_ns);
  }
};

}  // namespace aurora

#endif  // SRC_BASE_COST_MODEL_H_
