// Size and time unit helpers shared across the Aurora code base.
#ifndef SRC_BASE_UNITS_H_
#define SRC_BASE_UNITS_H_

#include <cstdint>

namespace aurora {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// Page size of the simulated MMU. Matches x86-64 base pages, which is what
// the paper's incremental tracking granularity is.
inline constexpr uint64_t kPageSize = 4 * kKiB;
inline constexpr uint64_t kPageShift = 12;

constexpr uint64_t PagesOf(uint64_t bytes) { return (bytes + kPageSize - 1) / kPageSize; }
constexpr uint64_t PageTrunc(uint64_t addr) { return addr & ~(kPageSize - 1); }
constexpr uint64_t PageRound(uint64_t addr) { return (addr + kPageSize - 1) & ~(kPageSize - 1); }

// Simulated time is kept in nanoseconds in a 64-bit counter.
using SimTime = uint64_t;      // absolute nanoseconds since simulation start
using SimDuration = uint64_t;  // nanoseconds

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr double ToMicros(SimDuration d) { return static_cast<double>(d) / kMicrosecond; }
constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / kMillisecond; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }

}  // namespace aurora

#endif  // SRC_BASE_UNITS_H_
