// Deterministic pseudo-random number generation for workloads.
//
// All Aurora benchmarks and tests must be reproducible, so workload
// generators use this splitmix64/xoshiro-style generator seeded explicitly
// rather than std::random_device.
#ifndef SRC_BASE_RNG_H_
#define SRC_BASE_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace aurora {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed ? seed : 1) {}

  uint64_t Next() {
    // splitmix64: excellent mixing, one multiply chain per value.
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, n).
  uint64_t Below(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  // Uniform integer in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) { return lo + Below(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // Exponentially distributed value with the given mean (for Poisson
  // arrivals in open-loop load generators).
  double NextExponential(double mean) {
    double u = NextDouble();
    if (u >= 1.0) {
      u = 0.9999999999;
    }
    return -mean * std::log(1.0 - u);
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  uint64_t state_;
};

// Zipf-distributed key popularity, the standard model for key-value store
// workloads (Facebook ETC in the paper is heavily skewed).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();
  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;
};

}  // namespace aurora

#endif  // SRC_BASE_RNG_H_
