// Shared simulation context: the clock, the cost model, the event queue and
// the machine shape. One SimContext corresponds to one simulated machine.
#ifndef SRC_BASE_SIM_CONTEXT_H_
#define SRC_BASE_SIM_CONTEXT_H_

#include "src/base/cost_model.h"
#include "src/base/event_queue.h"
#include "src/base/sim_clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aurora {

struct SimContext {
  SimContext() : events(&clock), tracer(&clock) {}
  explicit SimContext(CostModel model) : cost(model), events(&clock), tracer(&clock) {}

  SimClock clock;
  CostModel cost;
  EventQueue events;
  // Unified observability: every subsystem of this machine reports into one
  // registry, and the checkpoint/restore pipelines trace phase spans here.
  // Recording is pure observation and never advances the clock.
  MetricsRegistry metrics;
  SpanTracer tracer;
  // Paper testbed: dual Xeon Silver 4116 = 24 cores / 48 threads. IPI and
  // TLB shootdown costs scale with the cores an application runs on.
  int ncpus = 24;
};

}  // namespace aurora

#endif  // SRC_BASE_SIM_CONTEXT_H_
