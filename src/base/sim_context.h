// Shared simulation context: the clock, the cost model, the event queue and
// the machine shape. One SimContext corresponds to one simulated machine.
#ifndef SRC_BASE_SIM_CONTEXT_H_
#define SRC_BASE_SIM_CONTEXT_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/base/cost_model.h"
#include "src/base/event_queue.h"
#include "src/base/sim_clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aurora {

// Fork/join accounting for work spread over parallel flush lanes. Each lane
// is an independent timeline (a core driving its own device queue); an item
// dispatched to a lane starts no earlier than the lane's previous completion,
// and the join point is the makespan: the max over lane timelines. Lane
// selection is least-loaded-lowest-index, which is fully determined by the
// dispatch order, so reruns are deterministic. With one lane this degrades to
// the serial sum the rest of the cost model already uses.
class LaneSchedule {
 public:
  explicit LaneSchedule(int lanes, SimTime start = 0)
      : free_(static_cast<size_t>(lanes < 1 ? 1 : lanes), start) {}

  // Lane that becomes free earliest (ties break to the lowest index).
  int NextLane() const {
    return static_cast<int>(std::min_element(free_.begin(), free_.end()) - free_.begin());
  }
  // The chosen lane cannot start before its previous item completed.
  SimTime StartOn(int lane, SimTime now) const {
    return std::max(now, free_[static_cast<size_t>(lane)]);
  }
  void Occupy(int lane, SimTime until) {
    free_[static_cast<size_t>(lane)] = std::max(free_[static_cast<size_t>(lane)], until);
  }
  // Join: all lanes have drained.
  SimTime Makespan() const { return *std::max_element(free_.begin(), free_.end()); }
  int lanes() const { return static_cast<int>(free_.size()); }

 private:
  std::vector<SimTime> free_;
};

struct SimContext {
  SimContext() : events(&clock), tracer(&clock) {}
  explicit SimContext(CostModel model) : cost(model), events(&clock), tracer(&clock) {}

  SimClock clock;
  CostModel cost;
  EventQueue events;
  // Unified observability: every subsystem of this machine reports into one
  // registry, and the checkpoint/restore pipelines trace phase spans here.
  // Recording is pure observation and never advances the clock.
  MetricsRegistry metrics;
  SpanTracer tracer;
  // Paper testbed: dual Xeon Silver 4116 = 24 cores / 48 threads. IPI and
  // TLB shootdown costs scale with the cores an application runs on.
  int ncpus = 24;
  // How many cores the checkpoint flusher may fork across (<= ncpus). Each
  // lane drives its own device submission queue; 1 keeps the historical
  // serial flush timeline exactly.
  int flush_lanes = 1;
};

}  // namespace aurora

#endif  // SRC_BASE_SIM_CONTEXT_H_
