#include "src/base/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace aurora {

LatencyHistogram::LatencyHistogram() : buckets_(kMaxPower * kSubBuckets, 0) {}

size_t LatencyHistogram::BucketFor(SimDuration v) const {
  if (v < kSubBuckets) {
    return static_cast<size_t>(v);  // first power: one bucket per nanosecond
  }
  int power = 63 - std::countl_zero(v);
  int base_power = std::countr_zero(static_cast<uint64_t>(kSubBuckets));
  int shift = power - base_power;
  size_t sub = static_cast<size_t>((v >> shift) & (kSubBuckets - 1));
  size_t idx = static_cast<size_t>(shift + 1) * kSubBuckets + sub;
  return std::min(idx, buckets_.size() - 1);
}

SimDuration LatencyHistogram::BucketUpper(size_t idx) const {
  if (idx < kSubBuckets) {
    return idx;
  }
  size_t shift = idx / kSubBuckets - 1;
  size_t sub = idx % kSubBuckets;
  return (static_cast<SimDuration>(kSubBuckets + sub + 1) << shift) - 1;
}

void LatencyHistogram::Record(SimDuration nanos) {
  buckets_[BucketFor(nanos)]++;
  if (count_ == 0 || nanos < min_) {
    min_ = nanos;
  }
  max_ = std::max(max_, nanos);
  count_++;
  sum_ += nanos;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = 0;
  min_ = max_ = 0;
}

SimDuration LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  target = std::min(target, count_ - 1);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen > target) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

std::string LatencyHistogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "n=%llu avg=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus max=%.1fus",
                static_cast<unsigned long long>(count_), MeanNanos() / 1000.0,
                ToMicros(Percentile(50)), ToMicros(Percentile(95)), ToMicros(Percentile(99)),
                ToMicros(max_));
  return buf;
}

}  // namespace aurora
