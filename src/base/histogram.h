// Latency histogram with percentile queries for benchmarks.
//
// Log-bucketed (HdrHistogram-style) so tail percentiles of microsecond to
// second scale latencies are captured with bounded memory.
#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/units.h"

namespace aurora {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(SimDuration nanos);
  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  SimDuration Min() const { return count_ ? min_ : 0; }
  SimDuration Max() const { return max_; }
  double MeanNanos() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  // Latency at percentile p in [0,100].
  SimDuration Percentile(double p) const;

  std::string Summary() const;

 private:
  static constexpr int kSubBuckets = 32;  // per power of two
  static constexpr int kMaxPower = 44;    // covers up to ~17.6 ks in ns

  size_t BucketFor(SimDuration v) const;
  SimDuration BucketUpper(size_t idx) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
};

}  // namespace aurora

#endif  // SRC_BASE_HISTOGRAM_H_
