// Identifier allocation with reservation, used for PID/TID virtualization.
//
// Aurora restores processes with their checkpoint-time ("local") IDs while
// the kernel allocates fresh ("global") IDs for the rest of the system. The
// allocator supports reserving specific IDs at restore time, which mirrors
// the paper's PID/TID reservation kernel changes.
#ifndef SRC_BASE_ID_ALLOCATOR_H_
#define SRC_BASE_ID_ALLOCATOR_H_

#include <cstdint>
#include <set>

#include "src/base/result.h"

namespace aurora {

class IdAllocator {
 public:
  explicit IdAllocator(uint64_t first = 1, uint64_t last = UINT64_MAX)
      : first_(first), last_(last), next_(first) {}

  // Allocates the lowest free ID at or after the rotor position.
  [[nodiscard]] Result<uint64_t> Allocate() {
    for (uint64_t attempts = 0; attempts <= last_ - first_; attempts++) {
      uint64_t candidate = next_;
      next_ = (next_ >= last_) ? first_ : next_ + 1;
      if (used_.insert(candidate).second) {
        return candidate;
      }
    }
    return Status::Error(Errc::kNoSpace, "id space exhausted");
  }

  // Reserves a specific ID (restore path). Fails if already in use.
  [[nodiscard]] Status Reserve(uint64_t id) {
    if (id < first_ || id > last_) {
      return Status::Error(Errc::kOutOfRange, "id outside allocator range");
    }
    if (!used_.insert(id).second) {
      return Status::Error(Errc::kExists, "id already in use");
    }
    return Status::Ok();
  }

  void Release(uint64_t id) { used_.erase(id); }
  bool InUse(uint64_t id) const { return used_.count(id) > 0; }
  size_t CountInUse() const { return used_.size(); }

 private:
  uint64_t first_;
  uint64_t last_;
  uint64_t next_;
  std::set<uint64_t> used_;
};

}  // namespace aurora

#endif  // SRC_BASE_ID_ALLOCATOR_H_
