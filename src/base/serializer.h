// Binary serialization for checkpoint records and on-disk structures.
//
// Every persistent Aurora object serializes through these writers/readers.
// The format is little-endian, length-prefixed for variable fields, and all
// readers bounds-check so corrupt checkpoint images fail cleanly rather than
// crash the restore path.
#ifndef SRC_BASE_SERIALIZER_H_
#define SRC_BASE_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace aurora {

class BinaryWriter {
 public:
  BinaryWriter() = default;

  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU16(uint16_t v) { AppendLe(v); }
  void PutU32(uint32_t v) { AppendLe(v); }
  void PutU64(uint64_t v) { AppendLe(v); }
  void PutI64(int64_t v) { AppendLe(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }
  void PutDouble(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutBytes(const void* data, size_t len) {
    PutU64(len);
    Append(data, len);
  }
  void PutString(const std::string& s) { PutBytes(s.data(), s.size()); }

  // Raw append without a length prefix (fixed-size payloads, e.g. pages).
  void PutRaw(const void* data, size_t len) { Append(data, len); }

  const std::vector<uint8_t>& data() const { return data_; }
  std::vector<uint8_t> Take() { return std::move(data_); }
  size_t size() const { return data_.size(); }

 private:
  template <typename T>
  void AppendLe(T v) {
    uint8_t buf[sizeof(T)];
    for (size_t i = 0; i < sizeof(T); i++) {
      buf[i] = static_cast<uint8_t>(v >> (8 * i));
    }
    Append(buf, sizeof(T));
  }
  void Append(const void* p, size_t len) {
    const auto* b = static_cast<const uint8_t*>(p);
    data_.insert(data_.end(), b, b + len);
  }

  std::vector<uint8_t> data_;
};

class BinaryReader {
 public:
  BinaryReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}
  explicit BinaryReader(const std::vector<uint8_t>& buf) : BinaryReader(buf.data(), buf.size()) {}

  [[nodiscard]] Result<uint8_t> U8() { return Fixed<uint8_t>(); }
  [[nodiscard]] Result<uint16_t> U16() { return Fixed<uint16_t>(); }
  [[nodiscard]] Result<uint32_t> U32() { return Fixed<uint32_t>(); }
  [[nodiscard]] Result<uint64_t> U64() { return Fixed<uint64_t>(); }
  [[nodiscard]] Result<int64_t> I64() {
    auto r = Fixed<uint64_t>();
    if (!r.ok()) {
      return r.status();
    }
    return static_cast<int64_t>(*r);
  }
  [[nodiscard]] Result<bool> Bool() {
    auto r = U8();
    if (!r.ok()) {
      return r.status();
    }
    return *r != 0;
  }
  [[nodiscard]] Result<double> Double() {
    auto r = U64();
    if (!r.ok()) {
      return r.status();
    }
    double v;
    uint64_t bits = *r;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  [[nodiscard]] Result<std::vector<uint8_t>> Bytes() {
    auto len = U64();
    if (!len.ok()) {
      return len.status();
    }
    if (*len > Remaining()) {
      return Status::Error(Errc::kCorrupt, "byte field overruns buffer");
    }
    std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + *len);
    pos_ += *len;
    return out;
  }

  [[nodiscard]] Result<std::string> String() {
    auto b = Bytes();
    if (!b.ok()) {
      return b.status();
    }
    return std::string(b->begin(), b->end());
  }

  // Reads `len` raw bytes into `out` (fixed-size payloads).
  [[nodiscard]] Status Raw(void* out, size_t len) {
    if (len > Remaining()) {
      return Status::Error(Errc::kCorrupt, "raw field overruns buffer");
    }
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::Ok();
  }

  size_t Remaining() const { return len_ - pos_; }
  size_t pos() const { return pos_; }
  bool AtEnd() const { return pos_ == len_; }

 private:
  template <typename T>
  [[nodiscard]] Result<T> Fixed() {
    if (sizeof(T) > Remaining()) {
      return Status::Error(Errc::kCorrupt, "fixed field overruns buffer");
    }
    T v = 0;
    for (size_t i = 0; i < sizeof(T); i++) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace aurora

#endif  // SRC_BASE_SERIALIZER_H_
