// Discrete-event simulation engine for client/server benchmarks.
//
// The paper's Memcached and RocksDB evaluations are queueing systems: load
// generators, worker threads, periodic checkpoints that stall service.
// EventQueue provides deterministic discrete-event execution on the shared
// SimClock: events fire in (time, sequence) order and may schedule further
// events.
#ifndef SRC_BASE_EVENT_QUEUE_H_
#define SRC_BASE_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/base/units.h"

namespace aurora {

class EventQueue {
 public:
  explicit EventQueue(SimClock* clock) : clock_(clock) {}

  // Schedules `fn` to run at absolute simulated time `when` (clamped to now).
  void At(SimTime when, std::function<void()> fn) {
    if (when < clock_->now()) {
      when = clock_->now();
    }
    events_.push(Event{when, next_seq_++, std::move(fn)});
  }

  // Schedules `fn` to run `delay` nanoseconds from now.
  void After(SimDuration delay, std::function<void()> fn) {
    At(clock_->now() + delay, std::move(fn));
  }

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  SimTime NextEventTime() const { return events_.top().when; }

  // Runs one event, advancing the clock to its firing time. Returns false if
  // the queue is empty.
  bool RunOne() {
    if (events_.empty()) {
      return false;
    }
    Event ev = events_.top();
    events_.pop();
    clock_->AdvanceTo(ev.when);
    ev.fn();
    return true;
  }

  // Runs events until the queue is empty or the clock passes `deadline`.
  void RunUntil(SimTime deadline) {
    while (!events_.empty() && events_.top().when <= deadline) {
      RunOne();
    }
    clock_->AdvanceTo(deadline);
  }

  void RunAll() {
    while (RunOne()) {
    }
  }

  SimClock* clock() { return clock_; }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (when != other.when) {
        return when > other.when;
      }
      return seq > other.seq;
    }
  };

  SimClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
};

}  // namespace aurora

#endif  // SRC_BASE_EVENT_QUEUE_H_
