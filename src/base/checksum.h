// CRC32C checksums for on-disk integrity (superblocks, checkpoint records,
// journal entries, ZFS-like block checksums).
#ifndef SRC_BASE_CHECKSUM_H_
#define SRC_BASE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace aurora {

// CRC32C (Castagnoli). Software table implementation; `seed` allows chaining.
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

// 64-bit Fletcher-style checksum used by the ZFS-like baseline file system.
uint64_t Fletcher64(const void* data, size_t len);

}  // namespace aurora

#endif  // SRC_BASE_CHECKSUM_H_
