// Bounded retry with exponential backoff for transient I/O failures.
//
// Real NVMe and network stacks mask transient errors (command timeouts,
// link resets) by retrying a bounded number of times before surfacing the
// failure. Aurora's store and net backends share this policy so the fault
// matrix exercises one retry semantics everywhere:
//   * only Errc::kIoError is retried — it marks transient faults. A CRC
//     mismatch (kCorrupt) means the media returned wrong bytes; retrying
//     cannot help and would mask real corruption.
//   * each retry charges its backoff to the simulated clock, so retries are
//     visible in every latency number, not free.
//   * a first-attempt success touches neither the clock nor the metrics
//     registry: fault-free runs are time-identical to the no-retry engine.
#ifndef SRC_BASE_IO_RETRY_H_
#define SRC_BASE_IO_RETRY_H_

#include <algorithm>
#include <utility>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/base/units.h"

namespace aurora {

struct IoRetryPolicy {
  int max_attempts = 4;  // total attempts, including the first
  SimDuration initial_backoff = 50 * kMicrosecond;
  double backoff_multiplier = 4.0;
  SimDuration max_backoff = 5 * kMillisecond;

  static IoRetryPolicy FromCost(const CostModel& cost) {
    IoRetryPolicy policy;
    policy.initial_backoff = cost.io_retry_backoff;
    return policy;
  }
};

inline bool IsTransientIo(const Status& s) { return s.code() == Errc::kIoError; }
template <typename T>
bool IsTransientIo(const Result<T>& r) {
  return !r.ok() && r.status().code() == Errc::kIoError;
}

// Runs `attempt` until it succeeds, fails with a non-transient error, or the
// policy's attempt budget is exhausted. Works for callables returning either
// Status or Result<T>. Retries count into "io.retries"; an exhausted budget
// counts into "io.giveups" and returns the last transient error.
template <typename Fn>
auto RetryIo(SimContext* sim, const IoRetryPolicy& policy, Fn&& attempt) -> decltype(attempt()) {
  auto r = attempt();
  if (!IsTransientIo(r)) {
    return r;
  }
  SimDuration backoff = policy.initial_backoff;
  for (int tries = 1; tries < policy.max_attempts; tries++) {
    sim->metrics.counter("io.retries").Add();
    sim->clock.Advance(backoff);
    backoff = std::min<SimDuration>(
        static_cast<SimDuration>(static_cast<double>(backoff) * policy.backoff_multiplier),
        policy.max_backoff);
    r = attempt();
    if (!IsTransientIo(r)) {
      return r;
    }
  }
  sim->metrics.counter("io.giveups").Add();
  return r;
}

}  // namespace aurora

#endif  // SRC_BASE_IO_RETRY_H_
