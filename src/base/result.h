// Lightweight Status / Result<T> error handling used across Aurora.
//
// Aurora is a systems library: errors (bad checkpoint images, crashed
// devices, missing objects) are expected and must be propagated without
// exceptions, mirroring kernel-style error returns.
#ifndef SRC_BASE_RESULT_H_
#define SRC_BASE_RESULT_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace aurora {

enum class Errc {
  kOk = 0,
  kNotFound,
  kExists,
  kInvalidArgument,
  kOutOfRange,
  kNoSpace,
  kCorrupt,
  kBusy,
  kNotSupported,
  kIoError,
  kBadState,
  kWouldBlock,
  kInterrupted,
};

const char* ErrcName(Errc e);

// A status word with an optional human-readable message. The class-level
// [[nodiscard]] makes every by-value return of Status warn when dropped,
// even from functions that predate the per-declaration annotations; the
// build promotes that warning to an error (-Werror=unused-result).
class [[nodiscard]] Status {
 public:
  Status() : code_(Errc::kOk) {}
  Status(Errc code, std::string message) : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status Error(Errc code, std::string message = "") {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == Errc::kOk; }
  Errc code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  Errc code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  [[nodiscard]] Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

 private:
  std::variant<T, Status> data_;
};

#define AURORA_RETURN_IF_ERROR(expr)     \
  do {                                   \
    ::aurora::Status _st = (expr);       \
    if (!_st.ok()) {                     \
      return _st;                        \
    }                                    \
  } while (0)

#define AURORA_INTERNAL_CAT2(a, b) a##b
#define AURORA_INTERNAL_CAT(a, b) AURORA_INTERNAL_CAT2(a, b)

#define AURORA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()

#define AURORA_ASSIGN_OR_RETURN(lhs, expr) \
  AURORA_ASSIGN_OR_RETURN_IMPL(AURORA_INTERNAL_CAT(_aurora_result_, __COUNTER__), lhs, expr)

// The only sanctioned way to drop a Status (or Result) on the floor. Bare
// `(void)` casts of Status-returning calls are rejected by aurora_lint; this
// macro leaves an auditable reason string at the call site instead. The
// reason must be a non-empty string literal.
#define AURORA_IGNORE_STATUS(expr, reason)                                   \
  do {                                                                       \
    static_assert(sizeof(reason) > 1,                                        \
                  "AURORA_IGNORE_STATUS requires a non-empty reason");       \
    const auto& _aurora_ignored = (expr);                                    \
    static_cast<void>(_aurora_ignored);                                      \
  } while (0)

}  // namespace aurora

#endif  // SRC_BASE_RESULT_H_
