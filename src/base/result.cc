#include "src/base/result.h"

namespace aurora {

const char* ErrcName(Errc e) {
  switch (e) {
    case Errc::kOk:
      return "OK";
    case Errc::kNotFound:
      return "NOT_FOUND";
    case Errc::kExists:
      return "EXISTS";
    case Errc::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case Errc::kOutOfRange:
      return "OUT_OF_RANGE";
    case Errc::kNoSpace:
      return "NO_SPACE";
    case Errc::kCorrupt:
      return "CORRUPT";
    case Errc::kBusy:
      return "BUSY";
    case Errc::kNotSupported:
      return "NOT_SUPPORTED";
    case Errc::kIoError:
      return "IO_ERROR";
    case Errc::kBadState:
      return "BAD_STATE";
    case Errc::kWouldBlock:
      return "WOULD_BLOCK";
    case Errc::kInterrupted:
      return "INTERRUPTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string s = ErrcName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace aurora
