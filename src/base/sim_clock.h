// The simulated clock that all Aurora components charge time against.
//
// Aurora is evaluated on hardware we do not have (dual Xeon, 4x striped
// Optane 900P). Instead of wall-clock timing we run every real mechanism
// (page copying, shadow creation, serialization, device writes) against a
// virtual nanosecond clock; each primitive operation advances the clock by
// its modeled cost (see cost_model.h). This makes all measurements
// deterministic and hardware independent while preserving the *shape* of the
// paper's results, which come from the mechanisms themselves.
#ifndef SRC_BASE_SIM_CLOCK_H_
#define SRC_BASE_SIM_CLOCK_H_

#include <cstdint>

#include "src/base/units.h"

namespace aurora {

class SimClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_; }

  // Advances the clock by `d` nanoseconds (work performed serially).
  void Advance(SimDuration d) { now_ += d; }

  // Moves the clock forward to `t` if `t` is in the future (e.g. waiting for
  // an asynchronous device completion). Returns the wait duration.
  SimDuration AdvanceTo(SimTime t) {
    if (t <= now_) {
      return 0;
    }
    SimDuration waited = t - now_;
    now_ = t;
    return waited;
  }

  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

// RAII measurement of a simulated interval (e.g. a checkpoint stop time).
class SimStopwatch {
 public:
  explicit SimStopwatch(const SimClock& clock) : clock_(clock), start_(clock.now()) {}

  SimDuration Elapsed() const { return clock_.now() - start_; }
  void Restart() { start_ = clock_.now(); }

 private:
  const SimClock& clock_;
  SimTime start_;
};

}  // namespace aurora

#endif  // SRC_BASE_SIM_CLOCK_H_
