#include "src/base/checksum.h"

#include <array>

namespace aurora {

namespace {

std::array<uint32_t, 256> MakeCrc32cTable() {
  std::array<uint32_t, 256> table{};
  constexpr uint32_t kPoly = 0x82f63b78;  // reflected CRC32C polynomial
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int k = 0; k < 8; k++) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = MakeCrc32cTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Crc32cTable();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; i++) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint64_t Fletcher64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t a = 0;
  uint64_t b = 0;
  // Process 4 bytes at a time like ZFS fletcher4; tail bytes are zero-padded.
  size_t i = 0;
  for (; i + 4 <= len; i += 4) {
    uint32_t w = static_cast<uint32_t>(p[i]) | (static_cast<uint32_t>(p[i + 1]) << 8) |
                 (static_cast<uint32_t>(p[i + 2]) << 16) | (static_cast<uint32_t>(p[i + 3]) << 24);
    a += w;
    b += a;
  }
  if (i < len) {
    uint32_t w = 0;
    for (size_t j = 0; i + j < len; j++) {
      w |= static_cast<uint32_t>(p[i + j]) << (8 * j);
    }
    a += w;
    b += a;
  }
  return (b << 32) ^ a;
}

}  // namespace aurora
