// Minimal JSON writer plus the metrics/trace exporters.
//
// Exported schema (consumed by the BENCH_*.json files and diffing tools):
//
//   {
//     "counters":   { "<name>": <u64>, ... },
//     "gauges":     { "<name>": <i64>, ... },
//     "histograms": { "<name>": { "count": u64, "sum_ns": u64, "min_ns": u64,
//                                  "max_ns": u64, "mean_ns": f64,
//                                  "p50_ns": u64, "p90_ns": u64, "p99_ns": u64 }, ... },
//     "spans":      [ { "name": str, "scope": u64,
//                       "begin_ns": u64, "end_ns": u64 }, ... ]
//   }
//
// All times are simulated nanoseconds, so two runs of the same binary are
// byte-identical and regressions show up as clean diffs.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace aurora {

// Streaming JSON writer: handles commas, nesting and string escaping. Keys
// are emitted in the order given; numbers print with enough precision to
// round-trip.
class JsonWriter {
 public:
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();
  void Key(const std::string& k);
  void Value(const std::string& v);
  void Value(const char* v) { Value(std::string(v)); }
  void Value(uint64_t v);
  void Value(int64_t v);
  void Value(double v);
  void Value(bool v);
  // Splices pre-rendered JSON in as a value (e.g. a section produced by
  // MetricsToJson). The caller guarantees it is well-formed.
  void RawValue(const std::string& json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Pad();
  void MaybeComma();

  std::string out_;
  // Per-depth flag: has the current container already emitted an element?
  std::string stack_;  // 'o' = object, 'a' = array
  std::string first_;
  bool pending_key_ = false;
  int indent_ = 0;
};

// Writes one metrics section (counters/gauges/histograms/spans) into `w` as
// a JSON object value. The caller owns surrounding structure. With
// `max_spans` nonzero only the newest `max_spans` spans are emitted (long
// periodic-checkpoint benches record thousands; the per-phase breakdown of
// the most recent operations is what consumers diff).
void WriteMetricsJson(JsonWriter* w, const MetricsRegistry& metrics, const SpanTracer& tracer,
                      bool include_spans = true, size_t max_spans = 0);

// Convenience: the full section as a standalone string.
std::string MetricsToJson(const MetricsRegistry& metrics, const SpanTracer& tracer,
                          bool include_spans = true, size_t max_spans = 0);

}  // namespace aurora

#endif  // SRC_OBS_JSON_H_
