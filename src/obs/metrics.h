// Unified metrics layer (observability substrate).
//
// Every subsystem reports into one MetricsRegistry hung off the SimContext:
// named monotonic counters (events, bytes), gauges (instantaneous levels)
// and simulated-time histograms (per-phase latencies). The registry is pure
// observation: recording a metric never advances the simulated clock, so
// instrumented and uninstrumented runs are time-identical.
//
// Naming convention: dotted lowercase paths, "<subsystem>.<what>", e.g.
// "store.blocks_allocated", "device.bytes_written", "ckpt.stop_time".
// References returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime, so hot paths can cache them.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/base/units.h"

namespace aurora {

class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t n = 1) { value_ += n; }
  void Sub(int64_t n = 1) { value_ -= n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

// Log-bucketed histogram of simulated durations (HdrHistogram-style), same
// scheme as LatencyHistogram but self-contained so the obs layer has no
// link-time dependencies.
class SimHistogram {
 public:
  SimHistogram();

  void Record(SimDuration nanos);
  void Merge(const SimHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  SimDuration Min() const { return count_ ? min_ : 0; }
  SimDuration Max() const { return max_; }
  double MeanNanos() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  // Upper bound of the bucket holding percentile p in [0,100].
  SimDuration Percentile(double p) const;

 private:
  static constexpr int kSubBuckets = 32;  // per power of two
  static constexpr int kMaxPower = 44;    // covers up to ~17.6 ks in ns

  size_t BucketFor(SimDuration v) const;
  SimDuration BucketUpper(size_t idx) const;

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  SimHistogram& histogram(const std::string& name) { return histograms_[name]; }

  // Value readers for tests and exporters; 0 for a name never recorded.
  uint64_t CounterValue(const std::string& name) const;
  int64_t GaugeValue(const std::string& name) const;

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, SimHistogram>& histograms() const { return histograms_; }

  void Reset();

 private:
  // std::map: stable references across inserts, deterministic export order.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, SimHistogram> histograms_;
};

}  // namespace aurora

#endif  // SRC_OBS_METRICS_H_
