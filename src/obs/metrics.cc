#include "src/obs/metrics.h"

#include <algorithm>

namespace aurora {

SimHistogram::SimHistogram() : buckets_(static_cast<size_t>(kMaxPower) * kSubBuckets, 0) {}

size_t SimHistogram::BucketFor(SimDuration v) const {
  if (v < kSubBuckets) {
    return static_cast<size_t>(v);
  }
  int power = 63 - __builtin_clzll(v);
  int base_power = 5;  // 2^5 == kSubBuckets
  int shift = power - base_power;
  size_t sub = static_cast<size_t>(v >> shift) - kSubBuckets;
  size_t idx = static_cast<size_t>(shift + 1) * kSubBuckets + sub;
  return std::min(idx, buckets_.size() - 1);
}

SimDuration SimHistogram::BucketUpper(size_t idx) const {
  if (idx < kSubBuckets) {
    return idx;
  }
  size_t shift = idx / kSubBuckets - 1;
  size_t sub = idx % kSubBuckets;
  return (static_cast<SimDuration>(kSubBuckets + sub + 1) << shift) - 1;
}

void SimHistogram::Record(SimDuration nanos) {
  buckets_[BucketFor(nanos)]++;
  if (count_ == 0 || nanos < min_) {
    min_ = nanos;
  }
  max_ = std::max(max_, nanos);
  sum_ += nanos;
  count_++;
}

void SimHistogram::Merge(const SimHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

void SimHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = sum_ = 0;
  min_ = max_ = 0;
}

SimDuration SimHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      return std::min(BucketUpper(i), max_);
    }
  }
  return max_;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second.value();
}

void MetricsRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace aurora
