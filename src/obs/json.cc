#include "src/obs/json.h"

#include <cinttypes>
#include <cstdio>

namespace aurora {

void JsonWriter::Pad() {
  out_.push_back('\n');
  out_.append(static_cast<size_t>(indent_) * 2, ' ');
}

void JsonWriter::MaybeComma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key on the same line
  }
  if (!stack_.empty()) {
    if (first_.back() == 'n') {
      out_.push_back(',');
    }
    first_.back() = 'n';
    Pad();
  }
}

void JsonWriter::BeginObject() {
  MaybeComma();
  out_.push_back('{');
  stack_.push_back('o');
  first_.push_back('y');
  indent_++;
}

void JsonWriter::EndObject() {
  indent_--;
  if (first_.back() == 'n') {
    Pad();
  }
  out_.push_back('}');
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::BeginArray() {
  MaybeComma();
  out_.push_back('[');
  stack_.push_back('a');
  first_.push_back('y');
  indent_++;
}

void JsonWriter::EndArray() {
  indent_--;
  if (first_.back() == 'n') {
    Pad();
  }
  out_.push_back(']');
  stack_.pop_back();
  first_.pop_back();
}

void JsonWriter::Key(const std::string& k) {
  MaybeComma();
  out_.push_back('"');
  for (char c : k) {
    if (c == '"' || c == '\\') {
      out_.push_back('\\');
    }
    out_.push_back(c);
  }
  out_.append("\": ");
  pending_key_ = true;
}

void JsonWriter::Value(const std::string& v) {
  MaybeComma();
  out_.push_back('"');
  for (char c : v) {
    switch (c) {
      case '"':
        out_.append("\\\"");
        break;
      case '\\':
        out_.append("\\\\");
        break;
      case '\n':
        out_.append("\\n");
        break;
      case '\t':
        out_.append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_.append(buf);
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

void JsonWriter::Value(uint64_t v) {
  MaybeComma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out_.append(buf);
}

void JsonWriter::Value(int64_t v) {
  MaybeComma();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out_.append(buf);
}

void JsonWriter::Value(double v) {
  MaybeComma();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out_.append(buf);
}

void JsonWriter::Value(bool v) {
  MaybeComma();
  out_.append(v ? "true" : "false");
}

void JsonWriter::RawValue(const std::string& json) {
  MaybeComma();
  out_.append(json);
}

void WriteMetricsJson(JsonWriter* w, const MetricsRegistry& metrics, const SpanTracer& tracer,
                      bool include_spans, size_t max_spans) {
  w->BeginObject();

  w->Key("counters");
  w->BeginObject();
  for (const auto& [name, c] : metrics.counters()) {
    w->Key(name);
    w->Value(c.value());
  }
  w->EndObject();

  w->Key("gauges");
  w->BeginObject();
  for (const auto& [name, g] : metrics.gauges()) {
    w->Key(name);
    w->Value(g.value());
  }
  w->EndObject();

  w->Key("histograms");
  w->BeginObject();
  for (const auto& [name, h] : metrics.histograms()) {
    w->Key(name);
    w->BeginObject();
    w->Key("count");
    w->Value(h.count());
    w->Key("sum_ns");
    w->Value(h.sum());
    w->Key("min_ns");
    w->Value(static_cast<uint64_t>(h.Min()));
    w->Key("max_ns");
    w->Value(static_cast<uint64_t>(h.Max()));
    w->Key("mean_ns");
    w->Value(h.MeanNanos());
    w->Key("p50_ns");
    w->Value(static_cast<uint64_t>(h.Percentile(50)));
    w->Key("p90_ns");
    w->Value(static_cast<uint64_t>(h.Percentile(90)));
    w->Key("p99_ns");
    w->Value(static_cast<uint64_t>(h.Percentile(99)));
    w->EndObject();
  }
  w->EndObject();

  if (include_spans) {
    const std::vector<Span>& all = tracer.spans();
    size_t skip = (max_spans > 0 && all.size() > max_spans) ? all.size() - max_spans : 0;
    w->Key("spans_dropped");
    w->Value(tracer.dropped() + skip);
    w->Key("spans");
    w->BeginArray();
    for (size_t i = skip; i < all.size(); i++) {
      const Span& s = all[i];
      w->BeginObject();
      w->Key("name");
      w->Value(s.name);
      w->Key("scope");
      w->Value(s.scope);
      w->Key("begin_ns");
      w->Value(static_cast<uint64_t>(s.begin));
      w->Key("end_ns");
      w->Value(static_cast<uint64_t>(s.end));
      w->EndObject();
    }
    w->EndArray();
  }

  w->EndObject();
}

std::string MetricsToJson(const MetricsRegistry& metrics, const SpanTracer& tracer,
                          bool include_spans, size_t max_spans) {
  JsonWriter w;
  WriteMetricsJson(&w, metrics, tracer, include_spans, max_spans);
  return w.Take();
}

}  // namespace aurora
