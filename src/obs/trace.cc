#include "src/obs/trace.h"

namespace aurora {

size_t SpanTracer::Begin(const std::string& name) {
  if (spans_.size() >= kMaxSpans) {
    size_t trim = spans_.size() / 2;
    spans_.erase(spans_.begin(), spans_.begin() + static_cast<long>(trim));
    base_ += trim;
    dropped_ += trim;
  }
  Span span;
  span.name = name;
  span.scope = current_scope_;
  span.begin = clock_->now();
  span.end = span.begin;
  spans_.push_back(std::move(span));
  return base_ + spans_.size() - 1;
}

void SpanTracer::End(size_t handle) { EndAt(handle, clock_->now()); }

void SpanTracer::EndAt(size_t handle, SimTime t) {
  if (handle < base_) {
    return;  // span was trimmed away
  }
  size_t idx = handle - base_;
  if (idx < spans_.size()) {
    spans_[idx].end = t;
  }
}

std::vector<Span> SpanTracer::SpansInScope(uint64_t scope) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.scope == scope) {
      out.push_back(s);
    }
  }
  return out;
}

std::vector<Span> SpanTracer::SpansNamed(const std::string& name) const {
  std::vector<Span> out;
  for (const Span& s : spans_) {
    if (s.name == name) {
      out.push_back(s);
    }
  }
  return out;
}

void SpanTracer::Clear() {
  spans_.clear();
  base_ = 0;
  dropped_ = 0;
}

}  // namespace aurora
