// Lightweight span tracer over simulated time.
//
// The checkpoint pipeline (and restore) records one span per phase —
// collapse, quiesce, serialize, shadow, flush, commit, release — with
// begin/end simulated timestamps. Spans belonging to one checkpoint share a
// scope id, so a Table-7-style stop-time breakdown can be reconstructed for
// any individual checkpoint after the fact. Asynchronous phases (flush,
// commit, release) end at their device durability time, which lies in the
// simulated future of the code that records them; EndAt takes that
// completion time explicitly.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/sim_clock.h"
#include "src/base/units.h"

namespace aurora {

struct Span {
  std::string name;
  uint64_t scope = 0;   // groups spans of one logical operation
  SimTime begin = 0;
  SimTime end = 0;

  SimDuration duration() const { return end >= begin ? end - begin : 0; }
};

class SpanTracer {
 public:
  explicit SpanTracer(const SimClock* clock) : clock_(clock) {}

  // Opens a new scope (e.g. one checkpoint). Spans begun afterwards carry it
  // until the next NewScope call.
  uint64_t NewScope() { return ++current_scope_; }
  uint64_t current_scope() const { return current_scope_; }

  // Begins a span at the current simulated time; returns its handle.
  size_t Begin(const std::string& name);
  // Ends it at the current simulated time.
  void End(size_t handle);
  // Ends it at an explicit (possibly future) simulated time.
  void EndAt(size_t handle, SimTime t);

  const std::vector<Span>& spans() const { return spans_; }
  uint64_t dropped() const { return dropped_; }

  // All spans recorded under `scope`, in begin order.
  std::vector<Span> SpansInScope(uint64_t scope) const;
  // All spans with the given name.
  std::vector<Span> SpansNamed(const std::string& name) const;

  void Clear();

 private:
  // Long periodic-checkpoint runs would otherwise grow without bound; keep
  // the newest half when the cap is hit.
  static constexpr size_t kMaxSpans = 1 << 16;

  const SimClock* clock_;
  std::vector<Span> spans_;
  uint64_t current_scope_ = 0;
  uint64_t dropped_ = 0;
  size_t base_ = 0;  // handles issued before a trim stay valid via offset
};

// RAII helper for synchronous phases.
class ScopedSpan {
 public:
  ScopedSpan(SpanTracer* tracer, const std::string& name)
      : tracer_(tracer), handle_(tracer->Begin(name)) {}
  ~ScopedSpan() { tracer_->End(handle_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer* tracer_;
  size_t handle_;
};

}  // namespace aurora

#endif  // SRC_OBS_TRACE_H_
