#include "src/objstore/object_store.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "src/base/checksum.h"
#include "src/base/serializer.h"
#include "src/base/units.h"

namespace aurora {

namespace {

constexpr uint32_t kSuperMagic = 0x41555253;  // "AURS"
constexpr uint32_t kMetaMagic = 0x4155524d;   // "AURM"
constexpr uint32_t kJournalMagic = 0x4155524a;  // "AURJ"
// v2: per-extent CRC32C in the metadata blob (end-to-end block integrity).
// v3: segment-log layout — segment table, relocation map, per-deadentry CRC.
constexpr uint32_t kVersion = 3;
constexpr int kSuperSlots = 8;
constexpr size_t kSuperNameMax = 64;

struct Superblock {
  uint32_t magic = kSuperMagic;
  uint32_t version = kVersion;
  uint64_t epoch = 0;
  uint32_t block_size = 0;
  uint64_t total_blocks = 0;
  uint64_t meta_block = 0;
  uint64_t meta_len = 0;
  uint64_t committed_at = 0;
  char name[kSuperNameMax] = {};

  std::vector<uint8_t> Serialize() const {
    BinaryWriter w;
    w.PutU32(magic);
    w.PutU32(version);
    w.PutU64(epoch);
    w.PutU32(block_size);
    w.PutU64(total_blocks);
    w.PutU64(meta_block);
    w.PutU64(meta_len);
    w.PutU64(committed_at);
    w.PutRaw(name, kSuperNameMax);
    uint32_t crc = Crc32c(w.data().data(), w.size());
    w.PutU32(crc);
    return w.Take();
  }

  static Result<Superblock> Parse(const uint8_t* data, size_t len) {
    BinaryReader r(data, len);
    Superblock sb;
    AURORA_ASSIGN_OR_RETURN(sb.magic, r.U32());
    AURORA_ASSIGN_OR_RETURN(sb.version, r.U32());
    AURORA_ASSIGN_OR_RETURN(sb.epoch, r.U64());
    AURORA_ASSIGN_OR_RETURN(sb.block_size, r.U32());
    AURORA_ASSIGN_OR_RETURN(sb.total_blocks, r.U64());
    AURORA_ASSIGN_OR_RETURN(sb.meta_block, r.U64());
    AURORA_ASSIGN_OR_RETURN(sb.meta_len, r.U64());
    AURORA_ASSIGN_OR_RETURN(sb.committed_at, r.U64());
    AURORA_RETURN_IF_ERROR(r.Raw(sb.name, kSuperNameMax));
    AURORA_ASSIGN_OR_RETURN(uint32_t crc, r.U32());
    if (sb.magic != kSuperMagic || sb.version != kVersion) {
      return Status::Error(Errc::kCorrupt, "bad superblock magic");
    }
    if (crc != Crc32c(data, r.pos() - sizeof(uint32_t))) {
      return Status::Error(Errc::kCorrupt, "superblock checksum mismatch");
    }
    return sb;
  }
};

struct JournalRecordHeader {
  uint32_t magic = kJournalMagic;
  uint64_t gen = 0;
  uint64_t seq = 0;
  uint64_t len = 0;
  uint32_t data_crc = 0;

  static constexpr size_t kSize = 4 + 8 + 8 + 8 + 4;
};

}  // namespace

ObjectStore::ObjectStore(BlockDevice* device, SimContext* sim, StoreOptions options)
    : device_(device), sim_(sim), options_(options),
      retry_(IoRetryPolicy::FromCost(sim->cost)) {}

// --- Device IO with bounded retry --------------------------------------------

Result<SimTime> ObjectStore::DevWrite(uint32_t queue, uint64_t lba, const void* data,
                                      uint32_t ndev) {
  return RetryIo(sim_, retry_, [&] { return device_->WriteAsyncOn(queue, lba, data, ndev); });
}

Result<SimTime> ObjectStore::DevRead(uint32_t queue, uint64_t lba, void* out, uint32_t ndev) {
  return RetryIo(sim_, retry_, [&] { return device_->ReadAsyncOn(queue, lba, out, ndev); });
}

Status ObjectStore::DevWriteSync(uint64_t lba, const void* data, uint32_t ndev) {
  return RetryIo(sim_, retry_, [&] { return device_->WriteSync(lba, data, ndev); });
}

Status ObjectStore::DevReadSync(uint64_t lba, void* out, uint32_t ndev) {
  return RetryIo(sim_, retry_, [&] { return device_->ReadSync(lba, out, ndev); });
}

Status ObjectStore::VerifyBlockCrc(const Extent& extent, const uint8_t* data) {
  if (Crc32c(data, options_.block_size) == extent.crc) {
    return Status::Ok();
  }
  sim_->metrics.counter("io.crc_errors").Add();
  return Status::Error(Errc::kCorrupt,
                       "store block checksum mismatch at phys " + std::to_string(extent.phys));
}

Status ObjectStore::ReadBlockVerified(uint64_t phys, uint32_t crc, uint8_t* buf) {
  AURORA_RETURN_IF_ERROR(DevReadSync(DevLba(phys), buf, DevBlocksPerStoreBlock()));
  if (Crc32c(buf, options_.block_size) != crc) {
    sim_->metrics.counter("io.crc_errors").Add();
    return Status::Error(Errc::kCorrupt,
                         "store block checksum mismatch at phys " + std::to_string(phys));
  }
  return Status::Ok();
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::Format(BlockDevice* device, SimContext* sim,
                                                         StoreOptions options) {
  if (options.block_size % device->block_size() != 0) {
    return Status::Error(Errc::kInvalidArgument, "store block size not a device multiple");
  }
  auto store = std::unique_ptr<ObjectStore>(new ObjectStore(device, sim, options));
  store->total_blocks_ = device->block_count() / store->DevBlocksPerStoreBlock();
  if (store->total_blocks_ < 8) {
    return Status::Error(Errc::kInvalidArgument, "device too small");
  }
  store->bitmap_.assign((store->total_blocks_ + 7) / 8, 0);
  // The superblock ring lives in device blocks [0, kSuperSlots); reserve
  // every store block it touches, not just block 0 — with small store blocks
  // the ring spans several of them, and handing those to the allocator would
  // let later superblock writes corrupt committed data.
  uint64_t ring_blocks =
      (kSuperSlots + store->DevBlocksPerStoreBlock() - 1) / store->DevBlocksPerStoreBlock();
  ring_blocks = std::max<uint64_t>(ring_blocks, 1);
  for (uint64_t b = 0; b < ring_blocks; b++) {
    store->BitSet(b, true);
  }
  store->alloc_cursor_ = std::max<uint64_t>(store->alloc_cursor_, ring_blocks);
  if (store->options_.layout == StoreLayout::kSegmentLog) {
    if (store->options_.segment_blocks < 2) {
      return Status::Error(Errc::kInvalidArgument, "segment_blocks too small");
    }
    if (ring_blocks > store->options_.segment_blocks) {
      return Status::Error(Errc::kInvalidArgument, "superblock ring exceeds one segment");
    }
    store->InitSegments();
    // Segment 0 is the first metadata segment; its cursor starts past the
    // superblock ring so the first blob lands exactly where kLegacy put it.
    store->segments_[0].state = SegState::kMeta;
    store->segments_[0].cursor = ring_blocks;
    store->open_meta_seg_ = 0;
  }
  AURORA_ASSIGN_OR_RETURN(SimTime done, store->CommitCheckpoint("format"));
  sim->clock.AdvanceTo(done);
  return store;
}

Result<std::unique_ptr<ObjectStore>> ObjectStore::Open(BlockDevice* device, SimContext* sim) {
  // Scan the superblock ring; prefer the highest epoch whose metadata blob
  // also verifies. A torn commit leaves the previous checkpoint intact.
  std::vector<Superblock> candidates;
  IoRetryPolicy policy = IoRetryPolicy::FromCost(sim->cost);
  for (int slot = 0; slot < kSuperSlots; slot++) {
    std::vector<uint8_t> buf(device->block_size());
    if (!RetryIo(sim, policy, [&] {
           return device->ReadSync(static_cast<uint64_t>(slot), buf.data(), 1);
         }).ok()) {
      continue;
    }
    auto sb = Superblock::Parse(buf.data(), buf.size());
    if (sb.ok()) {
      candidates.push_back(*sb);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Superblock& a, const Superblock& b) { return a.epoch > b.epoch; });
  for (const Superblock& sb : candidates) {
    StoreOptions options;
    options.block_size = sb.block_size;
    auto store = std::unique_ptr<ObjectStore>(new ObjectStore(device, sim, options));
    store->total_blocks_ = sb.total_blocks;
    std::vector<uint8_t> blob(sb.meta_len);
    uint64_t nblocks = (sb.meta_len + options.block_size - 1) / options.block_size;
    std::vector<uint8_t> raw(nblocks * options.block_size);
    if (!store
             ->DevReadSync(store->DevLba(sb.meta_block), raw.data(),
                           static_cast<uint32_t>(nblocks * store->DevBlocksPerStoreBlock()))
             .ok()) {
      continue;
    }
    std::memcpy(blob.data(), raw.data(), sb.meta_len);
    if (!store->DeserializeMeta(blob).ok()) {
      continue;  // torn metadata: fall back to the previous checkpoint
    }
    store->epoch_ = sb.epoch + 1;
    CheckpointRecord self;
    self.epoch = sb.epoch;
    self.name.assign(sb.name, strnlen(sb.name, kSuperNameMax));
    self.committed_at = sb.committed_at;
    self.meta_block = sb.meta_block;
    self.meta_len = sb.meta_len;
    store->checkpoints_.push_back(self);
    AURORA_RETURN_IF_ERROR(store->RecoverJournalOffsets());
    return store;
  }
  return Status::Error(Errc::kCorrupt, "no valid checkpoint found on device");
}

// --- Allocator --------------------------------------------------------------

bool ObjectStore::BitGet(uint64_t block) const {
  return (bitmap_[block / 8] >> (block % 8)) & 1;
}

void ObjectStore::BitSet(uint64_t block, bool v) {
  if (v) {
    bitmap_[block / 8] |= static_cast<uint8_t>(1u << (block % 8));
  } else {
    bitmap_[block / 8] &= static_cast<uint8_t>(~(1u << (block % 8)));
  }
}

Result<uint64_t> ObjectStore::AllocBlock(uint32_t lane) {
  if (options_.layout == StoreLayout::kSegmentLog) {
    return AppendBlock(lane);
  }
  for (uint64_t scanned = 0; scanned < total_blocks_; scanned++) {
    uint64_t candidate = alloc_cursor_;
    alloc_cursor_ = (alloc_cursor_ + 1 == total_blocks_) ? 1 : alloc_cursor_ + 1;
    if (!BitGet(candidate)) {
      BitSet(candidate, true);
      stats_.blocks_allocated++;
      sim_->metrics.counter("store.blocks_allocated").Add();
      sim_->clock.Advance(sim_->cost.lock_acquire);
      return candidate;
    }
  }
  return Status::Error(Errc::kNoSpace, "store full");
}

// --- Segment log -------------------------------------------------------------

void ObjectStore::InitSegments() {
  uint64_t nsegs =
      (total_blocks_ + options_.segment_blocks - 1) / options_.segment_blocks;
  segments_.assign(nsegs, Segment{});
  open_data_seg_.clear();
  reloc_.clear();
}

uint64_t ObjectStore::SegCapacity(uint64_t seg) const {
  uint64_t base = SegBase(seg);
  return std::min<uint64_t>(options_.segment_blocks, total_blocks_ - base);
}

uint64_t ObjectStore::SegLiveBlocks(uint64_t seg) const {
  uint64_t live = 0;
  uint64_t base = SegBase(seg);
  uint64_t end = base + SegCapacity(seg);
  for (uint64_t b = base; b < end; b++) {
    live += BitGet(b) ? 1 : 0;
  }
  return live;
}

Result<uint64_t> ObjectStore::AllocSegment(SegState state, uint32_t lane) {
  for (uint64_t seg = 0; seg < segments_.size(); seg++) {
    if (segments_[seg].state == SegState::kFree) {
      segments_[seg] = Segment{state, lane, 0};
      sim_->metrics.counter("store.segments_opened").Add();
      return seg;
    }
  }
  return Status::Error(Errc::kNoSpace, "no free segment");
}

Result<uint64_t> ObjectStore::AppendBlock(uint32_t lane) {
  auto it = open_data_seg_.find(lane);
  if (it == open_data_seg_.end() || segments_[it->second].cursor >= SegCapacity(it->second)) {
    if (it != open_data_seg_.end()) {
      segments_[it->second].state = SegState::kSealed;
      sim_->metrics.counter("store.segments_sealed").Add();
    }
    AURORA_ASSIGN_OR_RETURN(uint64_t seg, AllocSegment(SegState::kOpen, lane));
    it = open_data_seg_.insert_or_assign(lane, seg).first;
  }
  Segment& seg = segments_[it->second];
  uint64_t phys = SegBase(it->second) + seg.cursor;
  seg.cursor++;
  BitSet(phys, true);
  stats_.blocks_allocated++;
  sim_->metrics.counter("store.blocks_allocated").Add();
  sim_->clock.Advance(sim_->cost.lock_acquire);
  return phys;
}

Result<uint64_t> ObjectStore::AllocMetaRun(uint64_t nblocks) {
  const uint64_t s = options_.segment_blocks;
  if (nblocks <= s) {
    Segment* open = &segments_[open_meta_seg_];
    if (open->cursor + nblocks > SegCapacity(open_meta_seg_)) {
      AURORA_ASSIGN_OR_RETURN(uint64_t seg, AllocSegment(SegState::kMeta, 0));
      open_meta_seg_ = seg;
      open = &segments_[seg];
    }
    uint64_t start = SegBase(open_meta_seg_) + open->cursor;
    open->cursor += nblocks;
    for (uint64_t b = 0; b < nblocks; b++) {
      BitSet(start + b, true);
    }
    stats_.blocks_allocated += nblocks;
    sim_->metrics.counter("store.blocks_allocated").Add(nblocks);
    return start;
  }
  // Oversized blob: a run of contiguous free segments (rare; giant tables).
  uint64_t nsegs = (nblocks + s - 1) / s;
  uint64_t run = 0;
  for (uint64_t seg = 0; seg < segments_.size(); seg++) {
    run = (segments_[seg].state == SegState::kFree && SegCapacity(seg) == s) ? run + 1 : 0;
    if (run < nsegs) {
      continue;
    }
    uint64_t first = seg - nsegs + 1;
    uint64_t remaining = nblocks;
    for (uint64_t i = first; i <= seg; i++) {
      uint64_t take = std::min<uint64_t>(remaining, s);
      segments_[i] = Segment{SegState::kMeta, 0, take};
      remaining -= take;
    }
    uint64_t start = SegBase(first);
    for (uint64_t b = 0; b < nblocks; b++) {
      BitSet(start + b, true);
    }
    stats_.blocks_allocated += nblocks;
    sim_->metrics.counter("store.blocks_allocated").Add(nblocks);
    return start;
  }
  return Status::Error(Errc::kNoSpace, "no contiguous segment run for metadata");
}

void ObjectStore::FreeMetaRun(uint64_t start, uint64_t nblocks) {
  // Commit-failure rollback. Rewind the open meta segment's cursor when the
  // run is exactly its tail; otherwise the blocks just become dead and the
  // segment reclaims when its last blob is pruned.
  Segment& open = segments_[open_meta_seg_];
  bool is_tail = SegmentOf(start) == open_meta_seg_ &&
                 start + nblocks == SegBase(open_meta_seg_) + open.cursor;
  for (uint64_t b = 0; b < nblocks; b++) {
    BitSet(start + b, false);
    stats_.blocks_freed++;
    sim_->metrics.counter("store.blocks_freed").Add();
  }
  if (is_tail) {
    open.cursor -= nblocks;
  } else {
    for (uint64_t seg = SegmentOf(start); seg <= SegmentOf(start + nblocks - 1); seg++) {
      MaybeReclaimSegment(seg);
    }
  }
}

Result<uint64_t> ObjectStore::AllocJournalRun(uint64_t nblocks) {
  const uint64_t s = options_.segment_blocks;
  uint64_t nsegs = (nblocks + s - 1) / s;
  uint64_t run = 0;
  for (uint64_t seg = 0; seg < segments_.size(); seg++) {
    run = (segments_[seg].state == SegState::kFree && SegCapacity(seg) == s) ? run + 1 : 0;
    if (run < nsegs) {
      continue;
    }
    uint64_t first = seg - nsegs + 1;
    uint64_t remaining = nblocks;
    for (uint64_t i = first; i <= seg; i++) {
      uint64_t take = std::min<uint64_t>(remaining, s);
      segments_[i] = Segment{SegState::kJournal, 0, take};
      remaining -= take;
    }
    uint64_t start = SegBase(first);
    for (uint64_t b = 0; b < nblocks; b++) {
      BitSet(start + b, true);
    }
    stats_.blocks_allocated += nblocks;
    sim_->metrics.counter("store.blocks_allocated").Add(nblocks);
    return start;
  }
  return Status::Error(Errc::kNoSpace, "no contiguous segment run for journal");
}

void ObjectStore::FreeJournalRun(uint64_t start, uint64_t nblocks) {
  for (uint64_t b = 0; b < nblocks; b++) {
    BitSet(start + b, false);
    stats_.blocks_freed++;
    sim_->metrics.counter("store.blocks_freed").Add();
  }
  for (uint64_t seg = SegmentOf(start); seg <= SegmentOf(start + nblocks - 1); seg++) {
    segments_[seg] = Segment{};
    sim_->metrics.counter("store.segments_reclaimed").Add();
  }
}

void ObjectStore::MaybeReclaimSegment(uint64_t seg) {
  const Segment& s = segments_[seg];
  // Only quiescent segments reclaim here: open segments are still appended
  // to, journals are freed wholesale, the open meta segment keeps its append
  // cursor, and zombies wait for the next durable commit (ReclaimZombies).
  if (s.state != SegState::kSealed &&
      (s.state != SegState::kMeta || seg == open_meta_seg_)) {
    return;
  }
  if (SegLiveBlocks(seg) != 0) {
    return;
  }
  segments_[seg] = Segment{};
  sim_->metrics.counter("store.segments_reclaimed").Add();
}

void ObjectStore::ReclaimZombies() {
  for (uint64_t seg = 0; seg < segments_.size(); seg++) {
    if (segments_[seg].state == SegState::kZombie) {
      segments_[seg] = Segment{};
      sim_->metrics.counter("store.segments_reclaimed").Add();
      sim_->metrics.counter("gc.segments_reclaimed").Add();
    }
  }
}

uint64_t ObjectStore::TranslatePhys(uint64_t phys, uint64_t view_epoch) const {
  // A blob committed at view_epoch references the pre-relocation location
  // only if the move happened after it was written; newer blobs already
  // carry the new pointers (and the old address may have been reused since).
  auto it = reloc_.find(phys);
  if (it != reloc_.end() && view_epoch < it->second.reloc_epoch) {
    return it->second.new_phys;
  }
  return phys;
}

Result<uint64_t> ObjectStore::AllocContiguous(uint64_t nblocks) {
  uint64_t run = 0;
  for (uint64_t b = 1; b < total_blocks_; b++) {
    if (!BitGet(b)) {
      run++;
      if (run == nblocks) {
        uint64_t start = b - nblocks + 1;
        for (uint64_t i = start; i <= b; i++) {
          BitSet(i, true);
        }
        stats_.blocks_allocated += nblocks;
        sim_->metrics.counter("store.blocks_allocated").Add(nblocks);
        return start;
      }
    } else {
      run = 0;
    }
  }
  return Status::Error(Errc::kNoSpace, "no contiguous run available");
}

void ObjectStore::FreeBlock(uint64_t block) {
  BitSet(block, false);
  stats_.blocks_freed++;
  sim_->metrics.counter("store.blocks_freed").Add();
  if (options_.layout == StoreLayout::kSegmentLog && !segments_.empty()) {
    MaybeReclaimSegment(SegmentOf(block));
  }
}

void ObjectStore::KillBlock(uint64_t phys, uint64_t birth, uint32_t crc) {
  if (birth == epoch_) {
    // Born and killed inside the same uncommitted epoch: no checkpoint can
    // reference it, reuse immediately.
    FreeBlock(phys);
  } else {
    deadlists_[epoch_].push_back(DeadEntry{birth, phys, crc});
  }
}

uint64_t ObjectStore::FreeBlocks() const {
  uint64_t used = 0;
  for (uint64_t b = 0; b < total_blocks_; b++) {
    used += BitGet(b) ? 1 : 0;
  }
  return total_blocks_ - used;
}

uint64_t ObjectStore::UsedPhysicalBlocks() const {
  if (options_.layout != StoreLayout::kSegmentLog || segments_.empty()) {
    return total_blocks_ - FreeBlocks();
  }
  uint64_t used = 0;
  for (uint64_t seg = 0; seg < segments_.size(); seg++) {
    if (segments_[seg].state != SegState::kFree) {
      used += segments_[seg].cursor;
    }
  }
  return used;
}

SegmentStats ObjectStore::GetSegmentStats() const {
  SegmentStats out;
  out.segments_total = segments_.size();
  out.reloc_entries = reloc_.size();
  for (uint64_t seg = 0; seg < segments_.size(); seg++) {
    const Segment& s = segments_[seg];
    switch (s.state) {
      case SegState::kFree: out.segments_free++; break;
      case SegState::kOpen: out.segments_open++; break;
      case SegState::kSealed: out.segments_sealed++; break;
      case SegState::kMeta: out.segments_meta++; break;
      case SegState::kJournal: out.segments_journal++; break;
      case SegState::kZombie: out.segments_zombie++; break;
    }
    if (s.state == SegState::kFree) {
      continue;
    }
    uint64_t live = SegLiveBlocks(seg);
    out.live_blocks += live;
    out.dead_blocks += s.cursor - std::min(live, s.cursor);
    if (s.state == SegState::kSealed && s.cursor > 0) {
      uint64_t decile = live * 10 / s.cursor;
      out.util_histogram[std::min<uint64_t>(decile, 9)]++;
    }
  }
  return out;
}

void ObjectStore::PublishSegmentGauges() {
  SegmentStats s = GetSegmentStats();
  sim_->metrics.gauge("store.segment_free").Set(s.segments_free);
  sim_->metrics.gauge("store.segment_sealed").Set(s.segments_sealed);
  sim_->metrics.gauge("store.segment_live_blocks").Set(s.live_blocks);
  sim_->metrics.gauge("store.segment_dead_blocks").Set(s.dead_blocks);
  sim_->metrics.gauge("store.segment_reloc_entries").Set(s.reloc_entries);
  sim_->metrics.gauge("store.used_blocks").Set(UsedPhysicalBlocks());
}

// --- Objects -----------------------------------------------------------------

Result<Oid> ObjectStore::CreateObject(ObjType type, uint64_t size_hint) {
  Oid oid{next_oid_++};
  ObjectInfo info;
  info.type = type;
  info.size = size_hint;
  objects_[oid] = std::move(info);
  sim_->metrics.counter("store.objects_created").Add();
  sim_->clock.Advance(sim_->cost.small_alloc);
  return oid;
}

Status ObjectStore::DeleteObject(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::Error(Errc::kNotFound, "no such object");
  }
  if (it->second.non_cow) {
    if (options_.layout == StoreLayout::kSegmentLog) {
      FreeJournalRun(it->second.journal_start, it->second.journal_blocks);
    } else {
      for (uint64_t b = 0; b < it->second.journal_blocks; b++) {
        FreeBlock(it->second.journal_start + b);
      }
    }
  }
  for (auto& [logical, extent] : it->second.extents) {
    KillBlock(extent.phys, extent.birth, extent.crc);
  }
  objects_.erase(it);
  return Status::Ok();
}

Result<ObjType> ObjectStore::TypeOf(Oid oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::Error(Errc::kNotFound, "no such object");
  }
  return it->second.type;
}

Result<uint64_t> ObjectStore::SizeOf(Oid oid) const {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::Error(Errc::kNotFound, "no such object");
  }
  return it->second.size;
}

Status ObjectStore::SetSize(Oid oid, uint64_t size) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::Error(Errc::kNotFound, "no such object");
  }
  ObjectInfo& info = it->second;
  if (size < info.size) {
    uint64_t first_dead = (size + options_.block_size - 1) / options_.block_size;
    for (auto ext = info.extents.lower_bound(first_dead); ext != info.extents.end();) {
      KillBlock(ext->second.phys, ext->second.birth, ext->second.crc);
      ext = info.extents.erase(ext);
    }
  }
  info.size = size;
  return Status::Ok();
}

std::vector<Oid> ObjectStore::ListObjects() const {
  std::vector<Oid> out;
  out.reserve(objects_.size());
  for (const auto& [oid, info] : objects_) {
    out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ObjectStore::SetFlushLanes(uint32_t lanes) {
  if (lanes < 1) {
    lanes = 1;
  }
  flush_lanes_ = lanes;
  lane_last_done_.assign(lanes, sim_->clock.now());
  device_->SetQueueCount(lanes);
  // Lanes that no longer exist will never append again; seal their open
  // segments so the compactor can consider them instead of stranding them.
  for (auto it = open_data_seg_.begin(); it != open_data_seg_.end();) {
    if (it->first != kGcLane && it->first >= lanes) {
      segments_[it->second].state = SegState::kSealed;
      sim_->metrics.counter("store.segments_sealed").Add();
      it = open_data_seg_.erase(it);
    } else {
      ++it;
    }
  }
}

uint32_t ObjectStore::NextFlushLane() {
  // Deterministic but decorrelated from physical placement: sequential
  // AllocBlock numbers stripe over the array's children with the same linear
  // cursor, so `cursor % lanes` would move in lock-step with the stripe map
  // and pin every child to a single queue (gcd of the two strides), which
  // parallelizes nothing. The splitmix64 finalizer spreads each child's
  // blocks over all lanes while keeping reruns identical.
  uint64_t z = lane_cursor_++ + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  return static_cast<uint32_t>(z % flush_lanes_);
}

void ObjectStore::RecordLaneIo(uint32_t lane, uint64_t bytes, SimTime done) {
  const std::string prefix = "flush.lane" + std::to_string(lane);
  sim_->metrics.counter(prefix + ".bytes").Add(bytes);
  // Busy time: how much this I/O extended the lane's timeline beyond where
  // it already stood (idle gaps are not busy).
  SimTime since = std::max(lane_last_done_[lane], sim_->clock.now());
  if (done > since) {
    sim_->metrics.counter(prefix + ".busy_time").Add(static_cast<uint64_t>(done - since));
  }
  lane_last_done_[lane] = std::max(lane_last_done_[lane], done);
}

Result<SimTime> ObjectStore::WriteAt(Oid oid, uint64_t off, const void* data, uint64_t len) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::Error(Errc::kNotFound, "no such object");
  }
  ObjectInfo& info = it->second;
  if (info.non_cow) {
    return Status::Error(Errc::kInvalidArgument, "journal objects use JournalAppend");
  }
  const uint32_t bs = options_.block_size;
  const auto* src = static_cast<const uint8_t*>(data);
  SimTime done = sim_->clock.now();
  std::vector<uint8_t> buf(bs);
  uint64_t pos = off;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t logical = pos / bs;
    uint64_t in_block = pos % bs;
    uint64_t chunk = std::min<uint64_t>(remaining, bs - in_block);

    auto old = info.extents.find(logical);
    if (chunk < bs && old != info.extents.end()) {
      // Partial overwrite of an existing block: COW read-modify-write. The
      // CRC check keeps a silently corrupted block from being folded into
      // the rewrite and laundered under a fresh checksum.
      AURORA_RETURN_IF_ERROR(
          DevReadSync(DevLba(old->second.phys), buf.data(), DevBlocksPerStoreBlock()));
      AURORA_RETURN_IF_ERROR(VerifyBlockCrc(old->second, buf.data()));
    } else {
      std::memset(buf.data(), 0, bs);
    }
    std::memcpy(buf.data() + in_block, src, chunk);

    uint32_t crc = Crc32c(buf.data(), bs);
    uint32_t lane = NextFlushLane();
    AURORA_ASSIGN_OR_RETURN(uint64_t phys, AllocBlock(lane));
    AURORA_ASSIGN_OR_RETURN(
        SimTime wdone, DevWrite(lane, DevLba(phys), buf.data(), DevBlocksPerStoreBlock()));
    done = std::max(done, wdone);

    if (old != info.extents.end()) {
      KillBlock(old->second.phys, old->second.birth, old->second.crc);
      old->second = Extent{phys, epoch_, crc};
    } else {
      info.extents[logical] = Extent{phys, epoch_, crc};
    }
    pos += chunk;
    src += chunk;
    remaining -= chunk;
  }
  info.size = std::max(info.size, off + len);
  last_data_write_done_ = std::max(last_data_write_done_, done);
  sim_->metrics.counter("store.bytes_written").Add(len);
  return done;
}

Result<SimTime> ObjectStore::WriteAtBatch(Oid oid, const std::vector<IoRun>& runs) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::Error(Errc::kNotFound, "no such object");
  }
  ObjectInfo& info = it->second;
  if (info.non_cow) {
    return Status::Error(Errc::kInvalidArgument, "journal objects use JournalAppend");
  }
  const uint32_t bs = options_.block_size;
  // Split runs at block boundaries and group by logical block.
  std::map<uint64_t, std::vector<IoRun>> by_block;
  uint64_t max_end = info.size;
  for (const IoRun& run : runs) {
    uint64_t pos = run.off;
    const uint8_t* src = run.data;
    uint64_t remaining = run.len;
    while (remaining > 0) {
      uint64_t logical = pos / bs;
      uint64_t in_block = pos % bs;
      uint64_t chunk = std::min<uint64_t>(remaining, bs - in_block);
      by_block[logical].push_back(IoRun{pos, src, chunk});
      pos += chunk;
      src += chunk;
      remaining -= chunk;
    }
    max_end = std::max(max_end, run.off + run.len);
  }

  SimTime done = sim_->clock.now();
  std::vector<uint8_t> buf(bs);
  for (auto& [logical, block_runs] : by_block) {
    uint64_t covered = 0;
    for (const IoRun& r : block_runs) {
      covered += r.len;
    }
    // Each store block is one lane's unit of work: its RMW read and its
    // write share a submission queue, distinct blocks round-robin over
    // lanes and pipeline against each other.
    uint32_t lane = NextFlushLane();
    uint64_t lane_bytes = 0;
    auto old = info.extents.find(logical);
    if (old != info.extents.end() && covered < bs) {
      // Asynchronous RMW read: data is host-resident; the device time folds
      // into this block's write completion rather than stalling the caller.
      auto rdone =
          DevRead(lane, DevLba(old->second.phys), buf.data(), DevBlocksPerStoreBlock());
      if (!rdone.ok()) {
        return rdone.status();
      }
      AURORA_RETURN_IF_ERROR(VerifyBlockCrc(old->second, buf.data()));
      done = std::max(done, *rdone);
      lane_bytes += bs;
      sim_->metrics.counter("store.rmw_folds").Add();
    } else {
      std::memset(buf.data(), 0, bs);
    }
    for (const IoRun& r : block_runs) {
      std::memcpy(buf.data() + (r.off % bs), r.data, r.len);
      sim_->metrics.counter("store.bytes_written").Add(r.len);
    }
    uint32_t crc = Crc32c(buf.data(), bs);
    AURORA_ASSIGN_OR_RETURN(uint64_t phys, AllocBlock(lane));
    AURORA_ASSIGN_OR_RETURN(
        SimTime wdone, DevWrite(lane, DevLba(phys), buf.data(), DevBlocksPerStoreBlock()));
    done = std::max(done, wdone);
    lane_bytes += bs;
    RecordLaneIo(lane, lane_bytes, wdone);
    if (old != info.extents.end()) {
      KillBlock(old->second.phys, old->second.birth, old->second.crc);
      old->second = Extent{phys, epoch_, crc};
    } else {
      info.extents[logical] = Extent{phys, epoch_, crc};
    }
  }
  info.size = std::max(info.size, max_end);
  last_data_write_done_ = std::max(last_data_write_done_, done);
  return done;
}

Status ObjectStore::ReadAt(Oid oid, uint64_t off, void* out, uint64_t len) {
  auto it = objects_.find(oid);
  if (it == objects_.end()) {
    return Status::Error(Errc::kNotFound, "no such object");
  }
  const ObjectInfo& info = it->second;
  const uint32_t bs = options_.block_size;
  auto* dst = static_cast<uint8_t*>(out);
  std::vector<uint8_t> buf(bs);
  uint64_t pos = off;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t logical = pos / bs;
    uint64_t in_block = pos % bs;
    uint64_t chunk = std::min<uint64_t>(remaining, bs - in_block);
    auto ext = info.extents.find(logical);
    if (ext == info.extents.end()) {
      std::memset(dst, 0, chunk);
    } else {
      AURORA_RETURN_IF_ERROR(
          DevReadSync(DevLba(ext->second.phys), buf.data(), DevBlocksPerStoreBlock()));
      AURORA_RETURN_IF_ERROR(VerifyBlockCrc(ext->second, buf.data()));
      std::memcpy(dst, buf.data() + in_block, chunk);
    }
    pos += chunk;
    dst += chunk;
    remaining -= chunk;
  }
  return Status::Ok();
}

// --- Metadata / checkpoints ---------------------------------------------------

std::vector<uint8_t> ObjectStore::SerializeMeta() const {
  BinaryWriter w;
  w.PutU32(kMetaMagic);
  w.PutU64(epoch_);
  w.PutU64(next_oid_);

  w.PutU64(objects_.size());
  for (const auto& [oid, info] : objects_) {
    w.PutU64(oid.value);
    w.PutU8(static_cast<uint8_t>(info.type));
    w.PutU64(info.size);
    w.PutBool(info.non_cow);
    w.PutU64(info.journal_start);
    w.PutU64(info.journal_blocks);
    w.PutU64(info.journal_gen);
    w.PutU64(info.extents.size());
    for (const auto& [logical, extent] : info.extents) {
      w.PutU64(logical);
      w.PutU64(extent.phys);
      w.PutU64(extent.birth);
      w.PutU32(extent.crc);
    }
  }

  w.PutU64(deadlists_.size());
  for (const auto& [epoch, entries] : deadlists_) {
    w.PutU64(epoch);
    w.PutU64(entries.size());
    for (const DeadEntry& e : entries) {
      w.PutU64(e.birth);
      w.PutU64(e.phys);
      w.PutU32(e.crc);
    }
  }

  w.PutU64(checkpoints_.size());
  for (const CheckpointRecord& c : checkpoints_) {
    w.PutU64(c.epoch);
    w.PutString(c.name);
    w.PutU64(c.committed_at);
    w.PutU64(c.meta_block);
    w.PutU64(c.meta_len);
  }

  w.PutU64(total_blocks_);
  w.PutBytes(bitmap_.data(), bitmap_.size());

  // v3 layout section. Everything here is fixed-width per element and the
  // element counts cannot change between the two serialization passes of a
  // commit (AllocMetaRun moves cursors, never the segment count).
  w.PutU8(static_cast<uint8_t>(options_.layout));
  w.PutU32(options_.segment_blocks);
  if (options_.layout == StoreLayout::kSegmentLog) {
    w.PutU64(segments_.size());
    for (const Segment& s : segments_) {
      w.PutU8(static_cast<uint8_t>(s.state));
      w.PutU32(s.lane);
      w.PutU64(s.cursor);
    }
    w.PutU64(reloc_.size());
    for (const auto& [old_phys, entry] : reloc_) {
      w.PutU64(old_phys);
      w.PutU64(entry.new_phys);
      w.PutU64(entry.reloc_epoch);
    }
    w.PutU64(open_meta_seg_);
    w.PutU64(open_data_seg_.size());
    for (const auto& [lane, seg] : open_data_seg_) {
      w.PutU32(lane);
      w.PutU64(seg);
    }
  }

  uint32_t crc = Crc32c(w.data().data(), w.size());
  w.PutU32(crc);
  return w.Take();
}

Status ObjectStore::DeserializeMeta(const std::vector<uint8_t>& blob) {
  if (blob.size() < sizeof(uint32_t)) {
    return Status::Error(Errc::kCorrupt, "meta blob too small");
  }
  // CRC is stored little-endian by BinaryWriter; decode it explicitly so the
  // check is endian-safe on any host.
  uint32_t stored_crc = static_cast<uint32_t>(blob[blob.size() - 4]) |
               (static_cast<uint32_t>(blob[blob.size() - 3]) << 8) |
               (static_cast<uint32_t>(blob[blob.size() - 2]) << 16) |
               (static_cast<uint32_t>(blob[blob.size() - 1]) << 24);
  if (Crc32c(blob.data(), blob.size() - 4) != stored_crc) {
    return Status::Error(Errc::kCorrupt, "meta blob checksum mismatch");
  }
  BinaryReader r(blob.data(), blob.size() - 4);
  AURORA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kMetaMagic) {
    return Status::Error(Errc::kCorrupt, "bad meta magic");
  }
  AURORA_ASSIGN_OR_RETURN(epoch_, r.U64());
  AURORA_ASSIGN_OR_RETURN(next_oid_, r.U64());

  objects_.clear();
  AURORA_ASSIGN_OR_RETURN(uint64_t nobjects, r.U64());
  for (uint64_t i = 0; i < nobjects; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t oid, r.U64());
    ObjectInfo info;
    AURORA_ASSIGN_OR_RETURN(uint8_t type, r.U8());
    info.type = static_cast<ObjType>(type);
    AURORA_ASSIGN_OR_RETURN(info.size, r.U64());
    AURORA_ASSIGN_OR_RETURN(info.non_cow, r.Bool());
    AURORA_ASSIGN_OR_RETURN(info.journal_start, r.U64());
    AURORA_ASSIGN_OR_RETURN(info.journal_blocks, r.U64());
    AURORA_ASSIGN_OR_RETURN(info.journal_gen, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t nextents, r.U64());
    for (uint64_t j = 0; j < nextents; j++) {
      AURORA_ASSIGN_OR_RETURN(uint64_t logical, r.U64());
      Extent extent;
      AURORA_ASSIGN_OR_RETURN(extent.phys, r.U64());
      AURORA_ASSIGN_OR_RETURN(extent.birth, r.U64());
      AURORA_ASSIGN_OR_RETURN(extent.crc, r.U32());
      info.extents[logical] = extent;
    }
    objects_[Oid{oid}] = std::move(info);
  }

  deadlists_.clear();
  AURORA_ASSIGN_OR_RETURN(uint64_t ndead, r.U64());
  for (uint64_t i = 0; i < ndead; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t epoch, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t nentries, r.U64());
    auto& list = deadlists_[epoch];
    list.reserve(nentries);
    for (uint64_t j = 0; j < nentries; j++) {
      DeadEntry e;
      AURORA_ASSIGN_OR_RETURN(e.birth, r.U64());
      AURORA_ASSIGN_OR_RETURN(e.phys, r.U64());
      AURORA_ASSIGN_OR_RETURN(e.crc, r.U32());
      list.push_back(e);
    }
  }

  checkpoints_.clear();
  AURORA_ASSIGN_OR_RETURN(uint64_t nckpts, r.U64());
  for (uint64_t i = 0; i < nckpts; i++) {
    CheckpointRecord c;
    AURORA_ASSIGN_OR_RETURN(c.epoch, r.U64());
    AURORA_ASSIGN_OR_RETURN(c.name, r.String());
    AURORA_ASSIGN_OR_RETURN(c.committed_at, r.U64());
    AURORA_ASSIGN_OR_RETURN(c.meta_block, r.U64());
    AURORA_ASSIGN_OR_RETURN(c.meta_len, r.U64());
    checkpoints_.push_back(std::move(c));
  }

  AURORA_ASSIGN_OR_RETURN(total_blocks_, r.U64());
  AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> bitmap, r.Bytes());
  bitmap_ = std::move(bitmap);

  AURORA_ASSIGN_OR_RETURN(uint8_t layout, r.U8());
  options_.layout = static_cast<StoreLayout>(layout);
  AURORA_ASSIGN_OR_RETURN(options_.segment_blocks, r.U32());
  segments_.clear();
  open_data_seg_.clear();
  reloc_.clear();
  open_meta_seg_ = 0;
  if (options_.layout == StoreLayout::kSegmentLog) {
    AURORA_ASSIGN_OR_RETURN(uint64_t nsegs, r.U64());
    segments_.reserve(nsegs);
    for (uint64_t i = 0; i < nsegs; i++) {
      Segment s;
      AURORA_ASSIGN_OR_RETURN(uint8_t state, r.U8());
      s.state = static_cast<SegState>(state);
      AURORA_ASSIGN_OR_RETURN(s.lane, r.U32());
      AURORA_ASSIGN_OR_RETURN(s.cursor, r.U64());
      if (s.state == SegState::kZombie) {
        // The blob we are recovering from is durable, so no surviving pointer
        // references the evacuated segment: it is simply free.
        s = Segment{};
      }
      segments_.push_back(s);
    }
    AURORA_ASSIGN_OR_RETURN(uint64_t nreloc, r.U64());
    for (uint64_t i = 0; i < nreloc; i++) {
      uint64_t old_phys = 0;
      RelocEntry entry;
      AURORA_ASSIGN_OR_RETURN(old_phys, r.U64());
      AURORA_ASSIGN_OR_RETURN(entry.new_phys, r.U64());
      AURORA_ASSIGN_OR_RETURN(entry.reloc_epoch, r.U64());
      reloc_[old_phys] = entry;
    }
    AURORA_ASSIGN_OR_RETURN(open_meta_seg_, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t nopen, r.U64());
    for (uint64_t i = 0; i < nopen; i++) {
      uint32_t lane = 0;
      uint64_t seg = 0;
      AURORA_ASSIGN_OR_RETURN(lane, r.U32());
      AURORA_ASSIGN_OR_RETURN(seg, r.U64());
      open_data_seg_[lane] = seg;
    }
  }
  return Status::Ok();
}

Status ObjectStore::WriteSuperblock(uint64_t meta_block, uint64_t meta_len, SimTime* done) {
  Superblock sb;
  sb.epoch = epoch_;
  sb.block_size = options_.block_size;
  sb.total_blocks = total_blocks_;
  sb.meta_block = meta_block;
  sb.meta_len = meta_len;
  sb.committed_at = sim_->clock.now();
  if (!checkpoints_.empty() && checkpoints_.back().epoch == epoch_) {
    std::strncpy(sb.name, checkpoints_.back().name.c_str(), kSuperNameMax - 1);
  }
  std::vector<uint8_t> raw = sb.Serialize();
  raw.resize(device_->block_size(), 0);
  uint64_t slot = epoch_ % kSuperSlots;
  AURORA_ASSIGN_OR_RETURN(SimTime t, DevWrite(0, slot, raw.data(), 1));
  *done = t;
  return Status::Ok();
}

Result<SimTime> ObjectStore::CommitCheckpoint(const std::string& name) {
  // Record this commit in the directory first so the metadata blob of the
  // *next* epoch knows where to find it. (The current blob cannot contain
  // its own location; the superblock carries that.)
  CheckpointRecord record;
  record.epoch = epoch_;
  record.name = name;
  record.committed_at = sim_->clock.now();

  // Two-pass serialization: the bitmap's serialized size is fixed, so
  // allocating the metadata blocks between passes cannot change the size.
  std::vector<uint8_t> blob = SerializeMeta();
  uint64_t nblocks = (blob.size() + options_.block_size - 1) / options_.block_size;
  const bool seglog = options_.layout == StoreLayout::kSegmentLog;
  uint64_t meta_block = 0;
  if (seglog) {
    // AllocMetaRun only moves bits and fixed-width segment cursors, so the
    // two-pass size-stability argument holds exactly as for AllocContiguous.
    AURORA_ASSIGN_OR_RETURN(meta_block, AllocMetaRun(nblocks));
  } else {
    AURORA_ASSIGN_OR_RETURN(meta_block, AllocContiguous(nblocks));
  }
  blob = SerializeMeta();
  sim_->clock.Advance(sim_->cost.Serialize(blob.size()));

  record.meta_block = meta_block;
  record.meta_len = blob.size();

  std::vector<uint8_t> padded(nblocks * options_.block_size, 0);
  std::memcpy(padded.data(), blob.data(), blob.size());
  auto meta_wrote = DevWrite(0, DevLba(meta_block), padded.data(),
                             static_cast<uint32_t>(nblocks * DevBlocksPerStoreBlock()));
  if (!meta_wrote.ok()) {
    // A failed commit leaves the epoch open for another attempt; it must not
    // leak its metadata blocks or record a checkpoint nobody can read.
    if (seglog) {
      FreeMetaRun(meta_block, nblocks);
    } else {
      for (uint64_t b = 0; b < nblocks; b++) {
        FreeBlock(meta_block + b);
      }
    }
    return meta_wrote.status();
  }
  SimTime meta_done = *meta_wrote;

  checkpoints_.push_back(record);
  SimTime super_done = 0;
  Status super = WriteSuperblock(meta_block, blob.size(), &super_done);
  if (!super.ok()) {
    checkpoints_.pop_back();
    if (seglog) {
      FreeMetaRun(meta_block, nblocks);
    } else {
      for (uint64_t b = 0; b < nblocks; b++) {
        FreeBlock(meta_block + b);
      }
    }
    return super;
  }

  SimTime done = std::max({meta_done, super_done, last_data_write_done_});
  epoch_++;
  stats_.commits++;
  sim_->metrics.counter("store.commits").Add();
  sim_->metrics.counter("store.meta_bytes").Add(blob.size());
  if (seglog) {
    // Segments evacuated by GC during the epoch just sealed are now
    // unreferenced by every durable pointer: the rewritten table is on media
    // and the superblock points at it.
    ReclaimZombies();
    PublishSegmentGauges();
  }
  return done;
}

std::vector<CheckpointInfo> ObjectStore::ListCheckpoints() const {
  std::vector<CheckpointInfo> out;
  out.reserve(checkpoints_.size());
  for (const CheckpointRecord& c : checkpoints_) {
    out.push_back(CheckpointInfo{c.epoch, c.name, c.committed_at});
  }
  return out;
}

Status ObjectStore::DeleteCheckpointsBefore(uint64_t epoch) {
  // Free whole deadlists sealed at or before `epoch`: every retained
  // checkpoint is >= epoch, so no retained epoch can lie inside any
  // [birth, killed) window ending there.
  for (auto it = deadlists_.begin(); it != deadlists_.end();) {
    if (it->first <= epoch) {
      for (const DeadEntry& e : it->second) {
        FreeBlock(e.phys);
      }
      it = deadlists_.erase(it);
    } else {
      ++it;
    }
  }
  // Drop directory entries and their metadata blobs. The newest committed
  // checkpoint is always retained (it is the recovery point).
  uint64_t newest = checkpoints_.empty() ? 0 : checkpoints_.back().epoch;
  for (auto it = checkpoints_.begin(); it != checkpoints_.end();) {
    if (it->epoch < epoch && it->epoch != newest) {
      uint64_t nblocks = (it->meta_len + options_.block_size - 1) / options_.block_size;
      for (uint64_t b = 0; b < nblocks; b++) {
        FreeBlock(it->meta_block + b);
      }
      epoch_cache_.erase(it->epoch);
      it = checkpoints_.erase(it);
    } else {
      ++it;
    }
  }
  // Relocation entries exist for readers of blobs older than the move. Once
  // every retained checkpoint is at least as new as reloc_epoch, no reader
  // can present an old enough view and the entry expires.
  if (options_.layout == StoreLayout::kSegmentLog && !reloc_.empty()) {
    uint64_t min_retained = epoch_;
    for (const CheckpointRecord& c : checkpoints_) {
      min_retained = std::min(min_retained, c.epoch);
    }
    for (auto it = reloc_.begin(); it != reloc_.end();) {
      if (it->second.reloc_epoch <= min_retained) {
        it = reloc_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::Ok();
}

Result<const ObjectStore::ObjectInfo*> ObjectStore::LoadEpochTable(uint64_t epoch, Oid oid) {
  auto cached = epoch_cache_.find(epoch);
  if (cached == epoch_cache_.end()) {
    const CheckpointRecord* record = nullptr;
    for (const CheckpointRecord& c : checkpoints_) {
      if (c.epoch == epoch) {
        record = &c;
        break;
      }
    }
    if (record == nullptr) {
      return Status::Error(Errc::kNotFound, "no such checkpoint");
    }
    uint64_t nblocks = (record->meta_len + options_.block_size - 1) / options_.block_size;
    std::vector<uint8_t> raw(nblocks * options_.block_size);
    AURORA_RETURN_IF_ERROR(
        DevReadSync(DevLba(record->meta_block), raw.data(),
                    static_cast<uint32_t>(nblocks * DevBlocksPerStoreBlock())));
    std::vector<uint8_t> blob(raw.begin(), raw.begin() + static_cast<long>(record->meta_len));
    // Parse into a scratch store object so the live table is untouched.
    ObjectStore scratch(device_, sim_, options_);
    AURORA_RETURN_IF_ERROR(scratch.DeserializeMeta(blob));
    cached = epoch_cache_.emplace(epoch, std::move(scratch.objects_)).first;
  }
  auto obj = cached->second.find(oid);
  if (obj == cached->second.end()) {
    return Status::Error(Errc::kNotFound, "object absent from checkpoint");
  }
  return &obj->second;
}

Status ObjectStore::ReadAtEpoch(uint64_t epoch, Oid oid, uint64_t off, void* out, uint64_t len,
                                SimTime* completion) {
  AURORA_ASSIGN_OR_RETURN(const ObjectInfo* info, LoadEpochTable(epoch, oid));
  const uint32_t bs = options_.block_size;
  auto* dst = static_cast<uint8_t*>(out);
  std::vector<uint8_t> buf(bs);
  SimTime done = sim_->clock.now();
  uint64_t pos = off;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t logical = pos / bs;
    uint64_t in_block = pos % bs;
    uint64_t chunk = std::min<uint64_t>(remaining, bs - in_block);
    auto ext = info->extents.find(logical);
    if (ext == info->extents.end()) {
      std::memset(dst, 0, chunk);
    } else if (completion != nullptr) {
      // Streaming restore: reads pipeline, and with flush lanes configured
      // they also fan out over the device submission queues. The checkpoint's
      // recorded location translates through the relocation map in case GC
      // moved the block after this epoch committed.
      uint64_t phys = TranslatePhys(ext->second.phys, epoch);
      AURORA_ASSIGN_OR_RETURN(
          SimTime t, DevRead(NextFlushLane(), DevLba(phys), buf.data(),
                             DevBlocksPerStoreBlock()));
      AURORA_RETURN_IF_ERROR(VerifyBlockCrc(ext->second, buf.data()));
      done = std::max(done, t);
      std::memcpy(dst, buf.data() + in_block, chunk);
    } else {
      uint64_t phys = TranslatePhys(ext->second.phys, epoch);
      AURORA_RETURN_IF_ERROR(
          DevReadSync(DevLba(phys), buf.data(), DevBlocksPerStoreBlock()));
      AURORA_RETURN_IF_ERROR(VerifyBlockCrc(ext->second, buf.data()));
      std::memcpy(dst, buf.data() + in_block, chunk);
    }
    pos += chunk;
    dst += chunk;
    remaining -= chunk;
  }
  if (completion != nullptr) {
    *completion = std::max(*completion, done);
  }
  return Status::Ok();
}

Result<uint64_t> ObjectStore::SizeAtEpoch(uint64_t epoch, Oid oid) {
  AURORA_ASSIGN_OR_RETURN(const ObjectInfo* info, LoadEpochTable(epoch, oid));
  return info->size;
}

Result<std::vector<Oid>> ObjectStore::ObjectsAtEpoch(uint64_t epoch) {
  // Force the table into the cache via any object probe; a miss with
  // kNotFound on the oid is fine, table-level failures are not.
  auto probe = LoadEpochTable(epoch, Oid{0});
  if (!probe.ok() && probe.status().code() != Errc::kNotFound) {
    return probe.status();
  }
  auto cached = epoch_cache_.find(epoch);
  if (cached == epoch_cache_.end()) {
    return Status::Error(Errc::kNotFound, "no such checkpoint");
  }
  std::vector<Oid> out;
  out.reserve(cached->second.size());
  for (const auto& [oid, info] : cached->second) {
    out.push_back(oid);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<ObjType> ObjectStore::TypeAtEpoch(uint64_t epoch, Oid oid) {
  AURORA_ASSIGN_OR_RETURN(const ObjectInfo* info, LoadEpochTable(epoch, oid));
  return info->type;
}

Result<std::vector<uint64_t>> ObjectStore::BlocksAtEpoch(uint64_t epoch, Oid oid) {
  AURORA_ASSIGN_OR_RETURN(const ObjectInfo* info, LoadEpochTable(epoch, oid));
  std::vector<uint64_t> out;
  out.reserve(info->extents.size());
  for (const auto& [logical, extent] : info->extents) {
    out.push_back(logical);
  }
  return out;
}

Result<std::vector<uint64_t>> ObjectStore::ChangedBlocksSince(uint64_t since_epoch,
                                                              uint64_t epoch, Oid oid) {
  AURORA_ASSIGN_OR_RETURN(const ObjectInfo* info, LoadEpochTable(epoch, oid));
  std::vector<uint64_t> out;
  for (const auto& [logical, extent] : info->extents) {
    if (extent.birth > since_epoch) {
      out.push_back(logical);
    }
  }
  return out;
}

Result<bool> ObjectStore::ExistsAtEpoch(uint64_t epoch, Oid oid) {
  auto info = LoadEpochTable(epoch, oid);
  if (info.ok()) {
    return true;
  }
  if (info.status().code() == Errc::kNotFound) {
    // Distinguish "no checkpoint" from "object absent".
    bool have_epoch = false;
    for (const CheckpointRecord& c : checkpoints_) {
      have_epoch |= c.epoch == epoch;
    }
    if (have_epoch) {
      return false;
    }
  }
  return info.status();
}

// --- Journals ------------------------------------------------------------------

namespace {
// Journal header block (first device block of the extent): the durable
// generation. JournalReset syncs it before accepting new-generation
// appends, so acknowledged records can never be shadowed by a lost reset.
std::vector<uint8_t> MakeJournalHeader(uint64_t gen, uint32_t dev_bs) {
  BinaryWriter w;
  w.PutU32(kJournalMagic);
  w.PutU64(gen);
  w.PutU32(Crc32c(&gen, sizeof(gen)));
  std::vector<uint8_t> buf = w.Take();
  buf.resize(dev_bs, 0);
  return buf;
}

Result<uint64_t> ParseJournalHeader(const std::vector<uint8_t>& buf) {
  BinaryReader r(buf.data(), buf.size());
  AURORA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  AURORA_ASSIGN_OR_RETURN(uint64_t gen, r.U64());
  AURORA_ASSIGN_OR_RETURN(uint32_t crc, r.U32());
  if (magic != kJournalMagic || crc != Crc32c(&gen, sizeof(gen))) {
    return Status::Error(Errc::kCorrupt, "bad journal header");
  }
  return gen;
}
}  // namespace

Result<Oid> ObjectStore::CreateJournal(uint64_t capacity_bytes) {
  // The first device block of the extent holds the generation header, so
  // usable record capacity is one device block less than requested.
  const uint32_t dev_bs = device_->block_size();
  uint64_t nblocks = (capacity_bytes + options_.block_size - 1) / options_.block_size;
  uint64_t start = 0;
  if (options_.layout == StoreLayout::kSegmentLog) {
    AURORA_ASSIGN_OR_RETURN(start, AllocJournalRun(nblocks));
  } else {
    AURORA_ASSIGN_OR_RETURN(start, AllocContiguous(nblocks));
  }
  Oid oid{next_oid_++};
  ObjectInfo info;
  info.type = ObjType::kJournal;
  info.size = nblocks * options_.block_size;
  info.non_cow = true;
  info.journal_start = start;
  info.journal_blocks = nblocks;
  info.journal_gen = 1;
  info.journal_write_off = dev_bs;  // record area starts after the header
  // Persist the initial generation.
  auto header = MakeJournalHeader(info.journal_gen, dev_bs);
  AURORA_RETURN_IF_ERROR(DevWriteSync(DevLba(start), header.data(), 1));
  objects_[oid] = std::move(info);
  return oid;
}

Status ObjectStore::JournalAppend(Oid oid, const void* data, uint64_t len) {
  auto it = objects_.find(oid);
  if (it == objects_.end() || !it->second.non_cow) {
    return Status::Error(Errc::kNotFound, "no such journal");
  }
  ObjectInfo& info = it->second;
  const uint32_t dev_bs = device_->block_size();
  uint64_t record_len = JournalRecordHeader::kSize + len;
  uint64_t padded = (record_len + dev_bs - 1) / dev_bs * dev_bs;
  uint64_t capacity = info.journal_blocks * options_.block_size;
  if (info.journal_write_off == 0) {
    info.journal_write_off = dev_bs;  // legacy objects: skip the header block
  }
  if (info.journal_write_off + padded > capacity) {
    return Status::Error(Errc::kNoSpace, "journal full");
  }
  BinaryWriter w;
  w.PutU32(kJournalMagic);
  w.PutU64(info.journal_gen);
  w.PutU64(info.journal_next_seq);
  w.PutU64(len);
  w.PutU32(Crc32c(data, len));
  w.PutRaw(data, len);
  std::vector<uint8_t> buf = w.Take();
  buf.resize(padded, 0);
  uint64_t lba = DevLba(info.journal_start) + info.journal_write_off / dev_bs;
  // Synchronous in-place write: this is the 28 us path of section 7. The
  // caller blocks for the full command, so there is no cross-device
  // pipelining; charge the calibrated synchronous rate.
  auto submitted = DevWrite(0, lba, buf.data(), static_cast<uint32_t>(padded / dev_bs));
  if (!submitted.ok()) {
    return submitted.status();
  }
  sim_->clock.Advance(sim_->cost.NvmeWrite(padded));
  info.journal_write_off += padded;
  info.journal_next_seq++;
  stats_.journal_appends++;
  sim_->metrics.counter("store.journal_appends").Add();
  sim_->metrics.counter("store.journal_bytes").Add(len);
  return Status::Ok();
}

Status ObjectStore::JournalReset(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end() || !it->second.non_cow) {
    return Status::Error(Errc::kNotFound, "no such journal");
  }
  ObjectInfo& info = it->second;
  info.journal_gen++;
  // The new generation becomes durable before any new-generation append can
  // be acknowledged; otherwise a crash could replay stale records or lose
  // acknowledged ones.
  auto header = MakeJournalHeader(info.journal_gen, device_->block_size());
  AURORA_RETURN_IF_ERROR(DevWriteSync(DevLba(info.journal_start), header.data(), 1));
  info.journal_write_off = device_->block_size();
  info.journal_next_seq = 0;
  return Status::Ok();
}

Result<std::vector<std::vector<uint8_t>>> ObjectStore::JournalReplay(Oid oid) {
  auto it = objects_.find(oid);
  if (it == objects_.end() || !it->second.non_cow) {
    return Status::Error(Errc::kNotFound, "no such journal");
  }
  const ObjectInfo& info = it->second;
  const uint32_t dev_bs = device_->block_size();
  uint64_t capacity = info.journal_blocks * options_.block_size;
  std::vector<std::vector<uint8_t>> records;
  // The DURABLE generation comes from the header block, not the (possibly
  // stale) checkpointed metadata.
  std::vector<uint8_t> hdr(dev_bs);
  AURORA_RETURN_IF_ERROR(DevReadSync(DevLba(info.journal_start), hdr.data(), 1));
  uint64_t durable_gen = info.journal_gen;
  if (auto parsed = ParseJournalHeader(hdr); parsed.ok()) {
    durable_gen = *parsed;
  }
  uint64_t off = dev_bs;
  uint64_t expected_seq = 0;
  std::vector<uint8_t> head(dev_bs);
  while (off + dev_bs <= capacity) {
    uint64_t lba = DevLba(info.journal_start) + off / dev_bs;
    AURORA_RETURN_IF_ERROR(DevReadSync(lba, head.data(), 1));
    BinaryReader r(head.data(), head.size());
    auto magic = r.U32();
    auto gen = r.U64();
    auto seq = r.U64();
    auto len = r.U64();
    auto crc = r.U32();
    if (!magic.ok() || *magic != kJournalMagic || !gen.ok() || *gen != durable_gen ||
        !seq.ok() || *seq != expected_seq || !len.ok() || !crc.ok()) {
      break;
    }
    uint64_t record_len = JournalRecordHeader::kSize + *len;
    uint64_t padded = (record_len + dev_bs - 1) / dev_bs * dev_bs;
    if (off + padded > capacity) {
      break;
    }
    std::vector<uint8_t> full(padded);
    AURORA_RETURN_IF_ERROR(
        DevReadSync(lba, full.data(), static_cast<uint32_t>(padded / dev_bs)));
    std::vector<uint8_t> payload(full.begin() + JournalRecordHeader::kSize,
                                 full.begin() + static_cast<long>(record_len));
    if (Crc32c(payload.data(), payload.size()) != *crc) {
      break;  // torn record: everything before it is the durable prefix
    }
    records.push_back(std::move(payload));
    off += padded;
    expected_seq++;
  }
  return records;
}

Status ObjectStore::RecoverJournalOffsets() {
  for (auto& [oid, info] : objects_) {
    if (!info.non_cow) {
      continue;
    }
    const uint32_t dev_bs = device_->block_size();
    // Adopt the durable generation from the header.
    std::vector<uint8_t> hdr(dev_bs);
    AURORA_RETURN_IF_ERROR(DevReadSync(DevLba(info.journal_start), hdr.data(), 1));
    if (auto parsed = ParseJournalHeader(hdr); parsed.ok()) {
      info.journal_gen = *parsed;
    }
    AURORA_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> records, JournalReplay(oid));
    uint64_t off = dev_bs;
    for (const auto& rec : records) {
      uint64_t record_len = JournalRecordHeader::kSize + rec.size();
      off += (record_len + dev_bs - 1) / dev_bs * dev_bs;
    }
    info.journal_write_off = off;
    info.journal_next_seq = records.size();
  }
  return Status::Ok();
}

}  // namespace aurora
