// Background compactor for the segment-log object store.
//
// The segment log never overwrites in place: overwritten and pruned blocks
// merely lose their bitmap bit, so a long-horizon run accumulates sealed
// segments that are mostly dead. The compactor picks sealed data segments
// below a utilization threshold and evacuates their remaining live blocks —
// extents of the current table and not-yet-reclaimed deadlist entries alike —
// into a dedicated GC append lane, then parks the emptied segment as a
// zombie until the next commit makes the rewritten pointers durable.
//
// Relocation doubles as a scrub pass: every block is re-read through
// ObjectStore::ReadBlockVerified (the Scrubber's verification primitive)
// before it is rewritten, so a latent corruption is detected — and the
// segment quarantined with the damaged block left in place for the Scrubber
// to report — rather than silently laundered under a fresh copy.
//
// Crash consistency (the relocation protocol, DESIGN.md §16): pointers are
// rewritten in memory only; committed metadata blobs on the device keep the
// old locations. Readers of those blobs translate through the store's
// relocation map (old phys -> new phys, stamped with the epoch of the move),
// and the evacuated segment is not reused until the commit that persists the
// rewritten table and the map is durable. A crash at any point therefore
// recovers to either the fully-old view (previous blob: old pointers, old
// data intact) or the fully-new view (next blob: new pointers + map) — never
// a mix.
//
// GC device traffic is charged to a token bucket (bytes_per_sec, burst) so a
// compaction burst cannot starve foreground flush lanes; an exhausted bucket
// defers the rest of the run rather than queueing behind the application.
#ifndef SRC_OBJSTORE_SEGMENT_GC_H_
#define SRC_OBJSTORE_SEGMENT_GC_H_

#include <cstdint>
#include <set>

#include "src/base/result.h"
#include "src/base/units.h"
#include "src/objstore/object_store.h"

namespace aurora {

struct GcConfig {
  // Sealed data segments with live/appended below this fraction are victims.
  double utilization_threshold = 0.5;
  // Token bucket over GC device bytes (reads + writes). 0 = unthrottled.
  uint64_t bytes_per_sec = 0;
  uint64_t burst_bytes = 8ull * 1024 * 1024;
  // Upper bound on segments compacted per Run(); 0 = no bound.
  uint64_t max_segments_per_run = 0;
};

struct GcRunReport {
  uint64_t segments_examined = 0;  // sealed segments considered
  uint64_t segments_compacted = 0;
  uint64_t blocks_relocated = 0;
  uint64_t bytes_relocated = 0;
  uint64_t crc_errors = 0;  // damaged blocks found (and left in place)
  uint64_t io_errors = 0;
  bool throttled = false;  // run stopped early: token bucket exhausted
};

class SegmentGc {
 public:
  explicit SegmentGc(ObjectStore* store, GcConfig config = GcConfig())
      : store_(store), config_(config) {}

  // One compaction pass. A no-op (empty report) under StoreLayout::kLegacy.
  // Only in-memory pointers move; durability of the relocation follows from
  // the next CommitCheckpoint, which also reclaims the emptied segments.
  [[nodiscard]] Result<GcRunReport> Run();

  const GcConfig& config() const { return config_; }
  void set_config(const GcConfig& config) { config_ = config; }
  // Segments with a damaged block, left untouched for the Scrubber.
  uint64_t quarantined_segments() const { return quarantined_.size(); }

 private:
  // Charges `bytes` to the token bucket; false = exhausted (defer the run).
  bool TakeTokens(uint64_t bytes);

  ObjectStore* store_;
  GcConfig config_;
  uint64_t tokens_ = 0;
  SimTime last_refill_ = 0;
  bool bucket_primed_ = false;
  std::set<uint64_t> quarantined_;
};

}  // namespace aurora

#endif  // SRC_OBJSTORE_SEGMENT_GC_H_
