// Background integrity scrubber for committed checkpoints.
//
// A latent bit flip in a committed epoch is only discovered today when a
// restore happens to read the block — possibly long after the healthy
// redundant copy (an older epoch, a remote backend) has been pruned. The
// scrubber walks every committed checkpoint's metadata, re-reads each COW
// extent and compares the stored bytes against the per-extent CRC32C
// recorded at write time, producing one verdict per epoch. Journal objects
// are skipped: their records carry their own CRCs and are verified on every
// replay.
//
// Scrubbing is read-only and bypasses the store's epoch cache so a cached
// (healthy) table can never mask on-media metadata corruption.
#ifndef SRC_OBJSTORE_SCRUBBER_H_
#define SRC_OBJSTORE_SCRUBBER_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/objstore/object_store.h"
#include "src/objstore/oid.h"

namespace aurora {

// One damaged store block found by the scrub.
struct ScrubBadBlock {
  uint64_t epoch = 0;
  Oid oid{0};
  uint64_t logical = 0;  // logical block index within the object
  uint64_t phys = 0;     // store block number
  Errc error = Errc::kCorrupt;  // kCorrupt (CRC) or kIoError (unreadable)
};

struct ScrubEpochVerdict {
  uint64_t epoch = 0;
  std::string name;
  bool meta_ok = true;  // metadata blob read and verified
  uint64_t blocks_scanned = 0;
  uint64_t crc_errors = 0;
  uint64_t io_errors = 0;
  bool clean() const { return meta_ok && crc_errors == 0 && io_errors == 0; }
};

struct ScrubReport {
  std::vector<ScrubEpochVerdict> epochs;
  std::vector<ScrubBadBlock> bad_blocks;
  // Every CRC-covered store block the scrub visited, across all epochs.
  // Blocks outside this set (metadata blobs, the superblock ring, journal
  // records) are protected by their own structural checksums instead.
  std::set<uint64_t> data_phys;
  bool clean() const {
    for (const ScrubEpochVerdict& v : epochs) {
      if (!v.clean()) {
        return false;
      }
    }
    return true;
  }
};

class Scrubber {
 public:
  explicit Scrubber(ObjectStore* store) : store_(store) {}

  // Scrubs every committed checkpoint, oldest first.
  [[nodiscard]] Result<ScrubReport> ScrubAll();
  // Scrubs one committed epoch; kNotFound if it is not in the directory.
  [[nodiscard]] Result<ScrubEpochVerdict> ScrubEpoch(uint64_t epoch);

 private:
  ScrubEpochVerdict ScrubRecord(uint64_t epoch, const std::string& name, uint64_t meta_block,
                                uint64_t meta_len, ScrubReport* report);

  ObjectStore* store_;
};

}  // namespace aurora

#endif  // SRC_OBJSTORE_SCRUBBER_H_
