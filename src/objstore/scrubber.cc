#include "src/objstore/scrubber.h"

#include <cstring>

#include "src/base/checksum.h"

namespace aurora {

ScrubEpochVerdict Scrubber::ScrubRecord(uint64_t epoch, const std::string& name,
                                        uint64_t meta_block, uint64_t meta_len,
                                        ScrubReport* report) {
  ScrubEpochVerdict verdict;
  verdict.epoch = epoch;
  verdict.name = name;

  ObjectStore* s = store_;
  const uint32_t bs = s->options_.block_size;
  uint64_t nblocks = (meta_len + bs - 1) / bs;
  std::vector<uint8_t> raw(nblocks * bs);
  if (!s->DevReadSync(s->DevLba(meta_block), raw.data(),
                      static_cast<uint32_t>(nblocks * s->DevBlocksPerStoreBlock()))
           .ok()) {
    verdict.meta_ok = false;
    verdict.io_errors++;
    return verdict;
  }
  std::vector<uint8_t> blob(raw.begin(), raw.begin() + static_cast<long>(meta_len));
  // Parse into a scratch store so the live table is untouched; the blob's own
  // CRC catches metadata corruption.
  ObjectStore scratch(s->device_, s->sim_, s->options_);
  if (!scratch.DeserializeMeta(blob).ok()) {
    verdict.meta_ok = false;
    verdict.crc_errors++;
    return verdict;
  }

  std::vector<uint8_t> buf(bs);
  for (const auto& [oid, info] : scratch.objects_) {
    if (info.non_cow) {
      continue;  // journal records carry their own CRCs, verified at replay
    }
    for (const auto& [logical, extent] : info.extents) {
      verdict.blocks_scanned++;
      // Blocks the compactor moved after this epoch committed live at their
      // relocated address now; the LIVE store's relocation map knows, the
      // historic blob does not.
      uint64_t phys = s->TranslatePhys(extent.phys, epoch);
      if (report != nullptr) {
        report->data_phys.insert(phys);
      }
      Status read = s->ReadBlockVerified(phys, extent.crc, buf.data());
      Errc error;
      if (!read.ok() && read.code() == Errc::kCorrupt) {
        verdict.crc_errors++;
        error = Errc::kCorrupt;
      } else if (!read.ok()) {
        verdict.io_errors++;
        error = Errc::kIoError;
      } else {
        continue;
      }
      if (report != nullptr) {
        report->bad_blocks.push_back(ScrubBadBlock{epoch, oid, logical, phys, error});
      }
    }
  }

  MetricsRegistry& metrics = s->sim_->metrics;
  metrics.counter("scrub.blocks_scanned").Add(verdict.blocks_scanned);
  metrics.counter("scrub.crc_errors").Add(verdict.crc_errors);
  metrics.counter("scrub.io_errors").Add(verdict.io_errors);
  return verdict;
}

Result<ScrubReport> Scrubber::ScrubAll() {
  ScrubReport report;
  store_->sim_->metrics.counter("scrub.runs").Add();
  for (const ObjectStore::CheckpointRecord& record : store_->checkpoints_) {
    report.epochs.push_back(
        ScrubRecord(record.epoch, record.name, record.meta_block, record.meta_len, &report));
  }
  return report;
}

Result<ScrubEpochVerdict> Scrubber::ScrubEpoch(uint64_t epoch) {
  for (const ObjectStore::CheckpointRecord& record : store_->checkpoints_) {
    if (record.epoch == epoch) {
      return ScrubRecord(record.epoch, record.name, record.meta_block, record.meta_len, nullptr);
    }
  }
  return Status::Error(Errc::kNotFound, "no such checkpoint");
}

}  // namespace aurora
