#include "src/objstore/segment_gc.h"

#include <algorithm>
#include <map>
#include <vector>

#include "src/obs/trace.h"

namespace aurora {

namespace {

// One live block inside a victim segment: where the current in-memory state
// records its location (an extent of the live table or a deadlist entry),
// plus what we need to verify and translate it.
struct LiveRef {
  uint64_t* phys_slot = nullptr;
  uint64_t birth = 0;
  uint32_t crc = 0;
};

}  // namespace

bool SegmentGc::TakeTokens(uint64_t bytes) {
  if (config_.bytes_per_sec == 0) {
    return true;
  }
  SimTime now = store_->sim_->clock.now();
  if (!bucket_primed_) {
    // First use: start with a full burst rather than an empty bucket.
    tokens_ = config_.burst_bytes;
    bucket_primed_ = true;
  } else if (now > last_refill_) {
    // 128-bit-free refill: split the elapsed time into whole seconds and a
    // remainder so the product cannot overflow at realistic rates.
    SimDuration elapsed = now - last_refill_;
    uint64_t refill = (elapsed / kSecond) * config_.bytes_per_sec +
                      (elapsed % kSecond) * config_.bytes_per_sec / kSecond;
    tokens_ = std::min(config_.burst_bytes, tokens_ + refill);
  }
  last_refill_ = now;
  if (tokens_ < bytes) {
    store_->sim_->metrics.counter("gc.throttle_defers").Add();
    return false;
  }
  tokens_ -= bytes;
  return true;
}

Result<GcRunReport> SegmentGc::Run() {
  GcRunReport report;
  ObjectStore* s = store_;
  if (s->options_.layout != StoreLayout::kSegmentLog || s->segments_.empty()) {
    return report;
  }
  MetricsRegistry& metrics = s->sim_->metrics;
  metrics.counter("gc.runs").Add();
  ScopedSpan span(&s->sim_->tracer, "gc");

  const uint64_t bs = s->options_.block_size;

  // --- Victim selection ------------------------------------------------------
  // Sealed data segments under the utilization threshold. Segments holding a
  // live relocation-map KEY are excluded: evacuating one would need a second
  // entry under the same old address (the address was reused after an earlier
  // relocation expired its segment), which the single-hop map cannot express.
  std::vector<std::pair<uint64_t, uint64_t>> victims;  // (live, seg)
  for (uint64_t seg = 0; seg < s->segments_.size(); seg++) {
    const ObjectStore::Segment& info = s->segments_[seg];
    if (info.state != ObjectStore::SegState::kSealed || info.cursor == 0) {
      continue;
    }
    report.segments_examined++;
    if (quarantined_.count(seg) > 0) {
      continue;
    }
    uint64_t live = s->SegLiveBlocks(seg);
    if (live == 0) {
      // Fully dead already (every block freed while it was open): reclaim
      // directly, no relocation needed.
      s->MaybeReclaimSegment(seg);
      continue;
    }
    if (static_cast<double>(live) >= config_.utilization_threshold *
                                         static_cast<double>(info.cursor)) {
      continue;
    }
    uint64_t base = s->SegBase(seg);
    auto key = s->reloc_.lower_bound(base);
    if (key != s->reloc_.end() && key->first < base + s->SegCapacity(seg)) {
      continue;
    }
    victims.emplace_back(live, seg);
  }
  std::sort(victims.begin(), victims.end());
  if (config_.max_segments_per_run > 0 && victims.size() > config_.max_segments_per_run) {
    victims.resize(config_.max_segments_per_run);
  }
  if (victims.empty()) {
    return report;
  }

  // --- Reference collection --------------------------------------------------
  // One walk over the live table and the deadlists finds every pointer into a
  // victim. Deadlist entries are live too: old checkpoints still read them.
  std::map<uint64_t, std::vector<LiveRef>> refs;  // seg -> live blocks
  for (const auto& [live, seg] : victims) {
    refs[seg];  // materialize in victim order
  }
  auto in_victims = [&](uint64_t phys) -> std::map<uint64_t, std::vector<LiveRef>>::iterator {
    auto it = refs.find(s->SegmentOf(phys));
    return it;
  };
  for (auto& [oid, info] : s->objects_) {
    if (info.non_cow) {
      continue;  // journal extents live in kJournal segments, never victims
    }
    for (auto& [logical, extent] : info.extents) {
      auto it = in_victims(extent.phys);
      if (it != refs.end()) {
        it->second.push_back(LiveRef{&extent.phys, extent.birth, extent.crc});
      }
    }
  }
  for (auto& [kill_epoch, entries] : s->deadlists_) {
    for (ObjectStore::DeadEntry& e : entries) {
      auto it = in_victims(e.phys);
      if (it != refs.end()) {
        it->second.push_back(LiveRef{&e.phys, e.birth, e.crc});
      }
    }
  }

  // --- Evacuation -------------------------------------------------------------
  std::vector<uint8_t> buf(bs);
  for (auto& [seg, seg_refs] : refs) {
    // Deterministic relocation order regardless of hash-map walk order.
    std::sort(seg_refs.begin(), seg_refs.end(),
              [](const LiveRef& a, const LiveRef& b) { return *a.phys_slot < *b.phys_slot; });
    bool evacuated = true;
    std::map<uint64_t, uint64_t> moved;  // old phys -> new phys (this victim)
    for (const LiveRef& ref : seg_refs) {
      if (!TakeTokens(2 * bs)) {  // one read + one write per block
        report.throttled = true;
        evacuated = false;
        break;
      }
      uint64_t old_phys = *ref.phys_slot;
      Status read = s->ReadBlockVerified(old_phys, ref.crc, buf.data());
      if (!read.ok()) {
        // Damaged block: leave it where the Scrubber (and the bad-block
        // report) can find it, and never retry this segment.
        if (read.code() == Errc::kCorrupt) {
          report.crc_errors++;
          metrics.counter("gc.crc_errors").Add();
        } else {
          report.io_errors++;
          metrics.counter("gc.io_errors").Add();
        }
        quarantined_.insert(seg);
        evacuated = false;
        break;
      }
      auto appended = s->AppendBlock(ObjectStore::kGcLane);
      if (!appended.ok()) {
        // Store full: stop compacting, state is consistent (pointer untouched).
        evacuated = false;
        break;
      }
      uint64_t new_phys = *appended;
      auto wrote = s->DevWrite(0, s->DevLba(new_phys), buf.data(),
                               s->DevBlocksPerStoreBlock());
      if (!wrote.ok()) {
        // Undo the append's liveness; the gap stays dead until reclaim.
        s->BitSet(new_phys, false);
        evacuated = false;
        break;
      }
      // The commit that publishes the rewritten pointer must not declare
      // durability before the relocated data is on media.
      s->last_data_write_done_ = std::max(s->last_data_write_done_, *wrote);
      *ref.phys_slot = new_phys;
      s->BitSet(old_phys, false);
      if (ref.birth < s->epoch_) {
        // Some committed blob references the old address; translate until
        // every such epoch is pruned. Blocks born in the current epoch have
        // no committed referencer and need no entry.
        s->reloc_[old_phys] = ObjectStore::RelocEntry{new_phys, s->epoch_};
      }
      moved[old_phys] = new_phys;
      report.blocks_relocated++;
      report.bytes_relocated += bs;
    }
    if (!moved.empty()) {
      // Chain collapse: entries pointing AT a block this victim just moved
      // are rewritten to the fresh location, keeping their original epoch
      // stamp, so every map value is always the block's current address
      // (translation stays single-hop).
      for (auto& [old_phys, entry] : s->reloc_) {
        auto m = moved.find(entry.new_phys);
        if (m != moved.end()) {
          entry.new_phys = m->second;
        }
      }
    }
    if (evacuated) {
      // Fully drained: park as a zombie until the next commit persists the
      // rewritten table; ReclaimZombies then returns it to the free pool.
      s->segments_[seg].state = ObjectStore::SegState::kZombie;
      report.segments_compacted++;
      metrics.counter("gc.segments_compacted").Add();
    }
    if (report.throttled) {
      break;
    }
  }

  metrics.counter("gc.blocks_relocated").Add(report.blocks_relocated);
  metrics.counter("gc.bytes_relocated").Add(report.bytes_relocated);
  s->PublishSegmentGauges();
  return report;
}

}  // namespace aurora
