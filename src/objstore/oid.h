// 64-bit object identifiers for the Aurora object store.
//
// Every persistent entity — POSIX object records, memory regions, files —
// is one store object named by an Oid. The SLS maintains the kernel-address
// to Oid mapping so each object serializes exactly once per checkpoint.
#ifndef SRC_OBJSTORE_OID_H_
#define SRC_OBJSTORE_OID_H_

#include <cstdint>
#include <functional>

namespace aurora {

struct Oid {
  uint64_t value = 0;

  constexpr bool valid() const { return value != 0; }
  constexpr bool operator==(const Oid&) const = default;
  constexpr bool operator<(const Oid& other) const { return value < other.value; }
};

inline constexpr Oid kInvalidOid{};

}  // namespace aurora

template <>
struct std::hash<aurora::Oid> {
  size_t operator()(const aurora::Oid& oid) const noexcept {
    return std::hash<uint64_t>()(oid.value);
  }
};

#endif  // SRC_OBJSTORE_OID_H_
