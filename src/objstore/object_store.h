// The Aurora object store (paper section 7).
//
// A copy-on-write store holding one on-disk object per POSIX object, memory
// region or file. Design points taken from the paper:
//   * COW everywhere: no data is modified in place, so a crash can never
//     corrupt a committed checkpoint; recovery picks the newest superblock
//     whose metadata checksums verify.
//   * Checkpoints are cheap: a commit serializes the object table and writes
//     one superblock; there is no log cleaner. Reclamation is deadlist-based
//     like WAFL/ZFS: a block born at epoch B and overwritten at epoch K can
//     be freed once no retained checkpoint's epoch lies in [B, K).
//   * Execution history: every committed epoch remains readable
//     (ReadAtEpoch) until explicitly deleted.
//   * Non-COW journal objects for the sls_journal API: preallocated extents
//     updated in place with self-describing records, giving the 28 us
//     synchronous 4 KiB append of section 7.
//   * Log-structured layout (the default): the device is carved into
//     fixed-size segments and every COW write appends to a per-lane open
//     segment. Overwrites only mark the old block dead; whole segments are
//     reclaimed when pruning (or the background SegmentGc) drains them, so
//     long-horizon runs see flat space usage instead of allocator
//     exhaustion. StoreLayout::kLegacy keeps the original free-list
//     allocator as a comparison baseline.
#ifndef SRC_OBJSTORE_OBJECT_STORE_H_
#define SRC_OBJSTORE_OBJECT_STORE_H_

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/io_retry.h"
#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/objstore/oid.h"
#include "src/storage/block_device.h"

namespace aurora {

enum class ObjType : uint8_t {
  kPosixRecord = 1,  // serialized POSIX object state
  kMemory = 2,       // VM object pages
  kFile = 3,         // Aurora file system file data
  kJournal = 4,      // non-COW write-ahead journal
  kManifest = 5,     // per-checkpoint application manifest
};

struct CheckpointInfo {
  uint64_t epoch = 0;
  std::string name;
  SimTime committed_at = 0;
};

// On-device data layout. kSegmentLog is the default epoch data path; kLegacy
// retains the original bitmap free-list allocator for byte-identity and
// space-growth comparisons.
enum class StoreLayout : uint8_t {
  kLegacy = 0,
  kSegmentLog = 1,
};

struct StoreOptions {
  uint32_t block_size = 64 * 1024;  // paper configures 64 KiB everywhere
  StoreLayout layout = StoreLayout::kSegmentLog;
  uint32_t segment_blocks = 64;  // store blocks per log segment
};

struct StoreStats {
  uint64_t blocks_allocated = 0;
  uint64_t blocks_freed = 0;
  uint64_t commits = 0;
  uint64_t journal_appends = 0;
};

// Point-in-time view of the segment log (all zero under kLegacy).
struct SegmentStats {
  uint64_t segments_total = 0;
  uint64_t segments_free = 0;
  uint64_t segments_open = 0;
  uint64_t segments_sealed = 0;
  uint64_t segments_meta = 0;
  uint64_t segments_journal = 0;
  uint64_t segments_zombie = 0;
  uint64_t live_blocks = 0;  // referenced blocks below segment cursors
  uint64_t dead_blocks = 0;  // appended-then-killed blocks awaiting reclaim
  uint64_t reloc_entries = 0;
  // Sealed data segments bucketed by live/capacity decile ([0] = emptiest).
  std::array<uint64_t, 10> util_histogram{};
};

class ObjectStore {
 public:
  // Formats `device` and returns an empty store at epoch 1.
  [[nodiscard]] static Result<std::unique_ptr<ObjectStore>> Format(
      BlockDevice* device, SimContext* sim, StoreOptions options = StoreOptions());
  // Mounts an existing store, recovering to the last complete checkpoint.
  [[nodiscard]] static Result<std::unique_ptr<ObjectStore>> Open(BlockDevice* device,
                                                                 SimContext* sim);

  // --- Objects -------------------------------------------------------------
  [[nodiscard]] Result<Oid> CreateObject(ObjType type, uint64_t size_hint = 0);
  [[nodiscard]] Status DeleteObject(Oid oid);
  bool Exists(Oid oid) const { return objects_.count(oid) > 0; }
  [[nodiscard]] Result<ObjType> TypeOf(Oid oid) const;
  [[nodiscard]] Result<uint64_t> SizeOf(Oid oid) const;
  [[nodiscard]] Status SetSize(Oid oid, uint64_t size);
  std::vector<Oid> ListObjects() const;

  // Byte-granularity COW I/O against the current (uncommitted) epoch.
  // WriteAt returns the simulated device completion time so checkpoint
  // flushes can overlap writes and wait for the latest completion only.
  [[nodiscard]] Result<SimTime> WriteAt(Oid oid, uint64_t off, const void* data, uint64_t len);
  [[nodiscard]] Status ReadAt(Oid oid, uint64_t off, void* out, uint64_t len);

  // Batched sub-block COW update: all runs touching one store block are
  // folded into a single read-modify-write of that block, and the RMW reads
  // are asynchronous. This is the checkpoint flusher's path — page-granular
  // dirty sets must not cause one 64 KiB rewrite per 4 KiB page, nor
  // foreground stalls on device reads.
  struct IoRun {
    uint64_t off = 0;
    const uint8_t* data = nullptr;
    uint64_t len = 0;
  };
  [[nodiscard]] Result<SimTime> WriteAtBatch(Oid oid, const std::vector<IoRun>& runs);

  // --- Parallel flush lanes -------------------------------------------------
  // Fans the flusher's store-block I/O across `lanes` device submission
  // queues, round-robin per store block. Block placement (AllocBlock call
  // order) and contents are unaffected, so the stored bytes are identical for
  // any lane count; only completion times change. 1 (the default) is the
  // historical serial timeline, exactly.
  void SetFlushLanes(uint32_t lanes);
  uint32_t flush_lanes() const { return flush_lanes_; }

  // Reads from a committed checkpoint's view of the object (restore and
  // lazy-restore paging).
  // Reads from a committed epoch. With `completion` null the call is
  // synchronous; otherwise reads are pipelined asynchronously and the
  // device completion time is reported through `completion` (restore
  // streaming).
  [[nodiscard]] Status ReadAtEpoch(uint64_t epoch, Oid oid, uint64_t off, void* out, uint64_t len,
                                   SimTime* completion = nullptr);
  [[nodiscard]] Result<uint64_t> SizeAtEpoch(uint64_t epoch, Oid oid);
  [[nodiscard]] Result<std::vector<Oid>> ObjectsAtEpoch(uint64_t epoch);
  [[nodiscard]] Result<bool> ExistsAtEpoch(uint64_t epoch, Oid oid);
  [[nodiscard]] Result<ObjType> TypeAtEpoch(uint64_t epoch, Oid oid);
  // Logical block indices with data at that epoch (restore materialization).
  [[nodiscard]] Result<std::vector<uint64_t>> BlocksAtEpoch(uint64_t epoch, Oid oid);
  // Logical blocks whose contents changed after `since_epoch`, as of
  // `epoch` (extent birth epochs drive incremental checkpoint shipping).
  [[nodiscard]] Result<std::vector<uint64_t>> ChangedBlocksSince(uint64_t since_epoch,
                                                                 uint64_t epoch,
                                                                 Oid oid);

  // --- Checkpoints ----------------------------------------------------------
  // Seals the current epoch: serializes metadata, writes it COW, then writes
  // the superblock. Returns the durability time (all prior data writes plus
  // the metadata/superblock writes). The caller decides whether to block.
  [[nodiscard]] Result<SimTime> CommitCheckpoint(const std::string& name);
  uint64_t current_epoch() const { return epoch_; }
  std::vector<CheckpointInfo> ListCheckpoints() const;
  // Frees blocks only needed by checkpoints older than `epoch`.
  [[nodiscard]] Status DeleteCheckpointsBefore(uint64_t epoch);

  // --- Journals (sls_journal) ----------------------------------------------
  [[nodiscard]] Result<Oid> CreateJournal(uint64_t capacity_bytes);
  // Synchronously appends one record; the clock advances to durability.
  [[nodiscard]] Status JournalAppend(Oid oid, const void* data, uint64_t len);
  // Rewinds the journal. Call only after a CommitCheckpoint so that replay
  // (which trusts the committed generation) matches the durable state.
  [[nodiscard]] Status JournalReset(Oid oid);
  [[nodiscard]] Result<std::vector<std::vector<uint8_t>>> JournalReplay(Oid oid);

  const StoreStats& stats() const { return stats_; }
  uint64_t FreeBlocks() const;
  // Physically occupied store blocks: in the segment log this counts every
  // block below a non-free segment's append cursor (dead-but-unreclaimed
  // space included), which is what long-horizon space usage actually is.
  // Under kLegacy it is total - FreeBlocks().
  uint64_t UsedPhysicalBlocks() const;
  SegmentStats GetSegmentStats() const;
  StoreLayout layout() const { return options_.layout; }
  uint32_t segment_blocks() const { return options_.segment_blocks; }
  uint32_t block_size() const { return options_.block_size; }
  BlockDevice* device() { return device_; }
  SimContext* sim() { return sim_; }

 private:
  friend class Scrubber;
  friend class SegmentGc;

  struct Extent {
    uint64_t phys = 0;   // store-block number
    uint64_t birth = 0;  // epoch that wrote it
    uint32_t crc = 0;    // CRC32C of the full store block's contents
  };
  struct ObjectInfo {
    ObjType type = ObjType::kPosixRecord;
    uint64_t size = 0;
    // Journal fields.
    bool non_cow = false;
    uint64_t journal_start = 0;   // first store block of the preallocated extent
    uint64_t journal_blocks = 0;  // extent length
    uint64_t journal_gen = 0;
    uint64_t journal_write_off = 0;  // bytes, volatile (recovered by scan)
    uint64_t journal_next_seq = 0;   // volatile
    std::map<uint64_t, Extent> extents;  // logical block -> physical
  };
  struct DeadEntry {
    uint64_t birth = 0;
    uint64_t phys = 0;
    uint32_t crc = 0;  // lets GC verify the block when relocating it
  };

  // --- Segment log ----------------------------------------------------------
  enum class SegState : uint8_t {
    kFree = 0,     // no valid data, available to the allocator
    kOpen = 1,     // a flush lane (or GC) is appending into it
    kSealed = 2,   // full data segment; GC victim candidate
    kMeta = 3,     // metadata blobs (+ the superblock ring in segment 0)
    kJournal = 4,  // non-COW journal extents, updated in place
    kZombie = 5,   // evacuated by GC; reclaimed after the next commit
  };
  struct Segment {
    SegState state = SegState::kFree;
    uint32_t lane = 0;    // owning flush lane while kOpen (kGcLane for GC)
    uint64_t cursor = 0;  // blocks appended so far (next append offset)
  };
  // Relocation map entry: blocks that used to live at the key physical block
  // were moved to `new_phys` during epoch `reloc_epoch`. Committed metadata
  // blobs older than reloc_epoch still reference the old location, so
  // historic reads translate through this map until those epochs are pruned.
  struct RelocEntry {
    uint64_t new_phys = 0;
    uint64_t reloc_epoch = 0;
  };
  // Lane key for the compactor's destination segment; never collides with a
  // real flush lane (those are < ncpus).
  static constexpr uint32_t kGcLane = 0xFFFFFFFFu;
  struct CheckpointRecord {
    uint64_t epoch = 0;
    std::string name;
    SimTime committed_at = 0;
    uint64_t meta_block = 0;  // store block of the metadata blob
    uint64_t meta_len = 0;    // bytes
  };

  ObjectStore(BlockDevice* device, SimContext* sim, StoreOptions options);

  uint32_t DevBlocksPerStoreBlock() const { return options_.block_size / device_->block_size(); }
  uint64_t DevLba(uint64_t store_block) const {
    return store_block * DevBlocksPerStoreBlock();
  }

  [[nodiscard]] Result<uint64_t> AllocBlock(uint32_t lane = 0);
  [[nodiscard]] Result<uint64_t> AllocContiguous(uint64_t nblocks);
  void FreeBlock(uint64_t block);
  void KillBlock(uint64_t phys, uint64_t birth, uint32_t crc);
  bool BitGet(uint64_t block) const;
  void BitSet(uint64_t block, bool v);

  // Segment-log internals (no-ops / errors under kLegacy).
  uint64_t SegmentOf(uint64_t block) const { return block / options_.segment_blocks; }
  uint64_t SegBase(uint64_t seg) const { return seg * options_.segment_blocks; }
  uint64_t SegCapacity(uint64_t seg) const;
  uint64_t SegLiveBlocks(uint64_t seg) const;
  void InitSegments();
  [[nodiscard]] Result<uint64_t> AllocSegment(SegState state, uint32_t lane);
  // Append one block into the lane's open data segment, opening a new one
  // when full. Used by AllocBlock (segment mode) and the compactor.
  [[nodiscard]] Result<uint64_t> AppendBlock(uint32_t lane);
  // Contiguous run for a metadata blob, appended into meta segments.
  [[nodiscard]] Result<uint64_t> AllocMetaRun(uint64_t nblocks);
  // Rollback for a failed commit: clears the run's bits and, when the run is
  // the open meta segment's tail, rewinds its cursor.
  void FreeMetaRun(uint64_t start, uint64_t nblocks);
  // Whole-segment journal allocation (in-place extents stay out of GC's way).
  [[nodiscard]] Result<uint64_t> AllocJournalRun(uint64_t nblocks);
  void FreeJournalRun(uint64_t start, uint64_t nblocks);
  // Reclaims a fully dead sealed/meta segment back to the free pool.
  void MaybeReclaimSegment(uint64_t seg);
  // Post-commit: zombie segments evacuated by GC become free once the commit
  // that stopped referencing their old locations is durable.
  void ReclaimZombies();
  // Historic reads: translate a physical block recorded by a blob of
  // `view_epoch` through the relocation map.
  uint64_t TranslatePhys(uint64_t phys, uint64_t view_epoch) const;
  // Reads one store block and checks it against the recorded CRC32C; shared
  // by the read paths, the Scrubber and the compactor (kIoError on device
  // failure, kCorrupt on checksum mismatch).
  [[nodiscard]] Status ReadBlockVerified(uint64_t phys, uint32_t crc, uint8_t* buf);
  void PublishSegmentGauges();

  // All device IO funnels through these wrappers so transient faults are
  // retried with the shared bounded policy; hard errors (kCorrupt, bounds)
  // pass through untouched. Offsets are device LBAs / device blocks.
  [[nodiscard]] Result<SimTime> DevWrite(uint32_t queue, uint64_t lba, const void* data,
                                         uint32_t ndev);
  [[nodiscard]] Result<SimTime> DevRead(uint32_t queue, uint64_t lba, void* out, uint32_t ndev);
  [[nodiscard]] Status DevWriteSync(uint64_t lba, const void* data, uint32_t ndev);
  [[nodiscard]] Status DevReadSync(uint64_t lba, void* out, uint32_t ndev);
  // End-to-end integrity: checks a full store block just read against the
  // CRC recorded when its extent was written. kCorrupt on mismatch.
  [[nodiscard]] Status VerifyBlockCrc(const Extent& extent, const uint8_t* data);

  std::vector<uint8_t> SerializeMeta() const;
  [[nodiscard]] Status DeserializeMeta(const std::vector<uint8_t>& blob);
  [[nodiscard]] Status WriteSuperblock(uint64_t meta_block, uint64_t meta_len, SimTime* done);
  [[nodiscard]] Status RecoverJournalOffsets();

  [[nodiscard]] Result<const ObjectInfo*> LoadEpochTable(uint64_t epoch, Oid oid);

  // Picks the submission queue for the next flush-path store block and
  // mirrors per-lane occupancy into the metrics registry.
  uint32_t NextFlushLane();
  void RecordLaneIo(uint32_t lane, uint64_t bytes, SimTime done);

  BlockDevice* device_;
  SimContext* sim_;
  StoreOptions options_;
  IoRetryPolicy retry_;

  uint64_t epoch_ = 1;  // current, uncommitted epoch
  uint64_t next_oid_ = 1;
  std::unordered_map<Oid, ObjectInfo> objects_;
  std::map<uint64_t, std::vector<DeadEntry>> deadlists_;  // sealed per epoch
  std::vector<CheckpointRecord> checkpoints_;

  std::vector<uint8_t> bitmap_;  // one bit per store block (live/referenced)
  uint64_t total_blocks_ = 0;
  uint64_t alloc_cursor_ = 1;

  // Segment-log state (empty under kLegacy).
  std::vector<Segment> segments_;
  std::map<uint32_t, uint64_t> open_data_seg_;  // lane -> open segment
  uint64_t open_meta_seg_ = 0;
  std::map<uint64_t, RelocEntry> reloc_;  // old phys -> current location

  // Completion time of the latest data write in the current epoch; commits
  // must not declare durability before it.
  SimTime last_data_write_done_ = 0;

  // Flush-lane state: how many submission queues the flusher fans over, the
  // round-robin cursor that assigns store blocks to lanes, and the previous
  // per-lane completion (for busy-time accounting in the metrics).
  uint32_t flush_lanes_ = 1;
  uint64_t lane_cursor_ = 0;
  std::vector<SimTime> lane_last_done_ = {0};

  // Cache of historic epoch tables for ReadAtEpoch.
  std::map<uint64_t, std::unordered_map<Oid, ObjectInfo>> epoch_cache_;

  StoreStats stats_;
};

}  // namespace aurora

#endif  // SRC_OBJSTORE_OBJECT_STORE_H_
