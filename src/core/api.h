// libsls: the application-facing Aurora API with the paper's Table 3 names.
//
// Thin, documented veneer over Sls for code written against the paper's
// interface. An SlsApi instance plays the role of the libsls handle a
// process would get from linking against the library; the "current process"
// is explicit because the simulator hosts many processes.
#ifndef SRC_CORE_API_H_
#define SRC_CORE_API_H_

#include <cstdint>

#include "src/core/sls.h"

namespace aurora {

class SlsApi {
 public:
  SlsApi(Sls* sls, ConsistencyGroup* group, Process* proc)
      : sls_(sls), group_(group), proc_(proc) {}

  // sls_checkpoint(): manually checkpoint the calling process's consistency
  // group. Returns the committed epoch.
  [[nodiscard]] Result<uint64_t> sls_checkpoint() {
    AURORA_ASSIGN_OR_RETURN(CheckpointResult r, sls_->Checkpoint(group_));
    return r.epoch;
  }

  // sls_restore(): roll the group back to `epoch` (0 = newest durable
  // checkpoint). On success the *caller's process object is gone*; the
  // returned group holds its successor — the analog of the paper's restore
  // resuming execution inside the application's Aurora signal handler.
  [[nodiscard]] Result<ConsistencyGroup*> sls_restore(uint64_t epoch = 0) {
    AURORA_ASSIGN_OR_RETURN(RestoreResult r, sls_->Restore(group_->name(), epoch));
    group_ = r.group;
    proc_ = r.group->processes.empty() ? nullptr : r.group->processes[0];
    return r.group;
  }

  // sls_memckpt(): asynchronous atomic checkpoint of the mapped region
  // containing `addr` (no whole-application serialization).
  [[nodiscard]] Status sls_memckpt(uint64_t addr) { return sls_->MemCheckpoint(proc_,
                                   addr).status(); }

  // sls_journal(): non-temporal synchronous flush to a write-ahead journal
  // outside the checkpoint (create once, append per operation).
  [[nodiscard]] Result<Oid> sls_journal_create(uint64_t capacity) {
    return sls_->JournalCreate(capacity);
  }
  [[nodiscard]] Status sls_journal(Oid journal, const void* data, uint64_t len) {
    return sls_->JournalAppend(journal, data, len);
  }
  [[nodiscard]] Status sls_journal_truncate(Oid journal) { return sls_->JournalReset(journal); }

  // sls_barrier(): block until the group's last checkpoint is durable.
  [[nodiscard]] Status sls_barrier() { return sls_->Barrier(group_); }

  // sls_mctl(): include/exclude the memory region containing `addr` from
  // checkpoints (SLS_EXCLUDE / SLS_INCLUDE).
  [[nodiscard]] Status sls_mctl(uint64_t addr, bool exclude) { return sls_->MemCtl(proc_, addr,
                                exclude); }

  // sls_fdctl(): per-descriptor external synchrony control — read-only
  // connections can skip the commit wait.
  [[nodiscard]] Status sls_fdctl(int fd, bool disable_external_sync) {
    return sls_->FdCtl(proc_, fd, disable_external_sync);
  }

  ConsistencyGroup* group() { return group_; }
  Process* process() { return proc_; }

 private:
  Sls* sls_;
  ConsistencyGroup* group_;
  Process* proc_;
};

}  // namespace aurora

#endif  // SRC_CORE_API_H_
