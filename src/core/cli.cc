#include "src/core/cli.h"

#include <cstdio>

#include "src/core/coredump.h"
#include "src/objstore/scrubber.h"

namespace aurora {

Result<ConsistencyGroup*> SlsCli::Attach(const std::string& group_name, Process* proc) {
  ConsistencyGroup* group = sls_->FindGroup(group_name);
  if (group == nullptr) {
    AURORA_ASSIGN_OR_RETURN(group, sls_->CreateGroup(group_name));
  }
  AURORA_RETURN_IF_ERROR(sls_->Attach(group, proc));
  return group;
}

Status SlsCli::Detach(Process* proc) {
  // Table 2: `sls detach` makes the process ephemeral — it stays in its
  // consistency group (quiesced with the others) but is not persisted, and
  // after a restore its parent sees SIGCHLD as if it had exited.
  proc->ephemeral = true;
  return Status::Ok();
}

Result<CheckpointResult> SlsCli::Checkpoint(const std::string& group_name,
                                            const std::string& name,
                                            const std::string& backend_name) {
  ConsistencyGroup* group = sls_->FindGroup(group_name);
  if (group == nullptr) {
    return Status::Error(Errc::kNotFound, "no such group: " + group_name);
  }
  if (!backend_name.empty()) {
    AURORA_RETURN_IF_ERROR(sls_->SetBackend(group, backend_name));
  }
  return sls_->Checkpoint(group, name);
}

Result<RestoreResult> SlsCli::Restore(const std::string& group_name, uint64_t epoch,
                                      RestoreMode mode, const std::string& backend_name) {
  CheckpointBackend* backend = nullptr;
  if (!backend_name.empty()) {
    backend = sls_->FindBackend(backend_name);
    if (backend == nullptr) {
      return Status::Error(Errc::kNotFound, "no such backend: " + backend_name);
    }
  }
  return sls_->Restore(group_name, epoch, mode, backend);
}

Status SlsCli::SetBackend(const std::string& group_name, const std::string& backend_name) {
  ConsistencyGroup* group = sls_->FindGroup(group_name);
  if (group == nullptr) {
    return Status::Error(Errc::kNotFound, "no such group: " + group_name);
  }
  return sls_->SetBackend(group, backend_name);
}

Status SlsCli::SetInFlightEpochs(const std::string& group_name, uint32_t limit) {
  ConsistencyGroup* group = sls_->FindGroup(group_name);
  if (group == nullptr) {
    return Status::Error(Errc::kNotFound, "no such group: " + group_name);
  }
  if (limit == 0) {
    return Status::Error(Errc::kInvalidArgument, "in-flight epoch limit must be >= 1");
  }
  group->max_in_flight_epochs = limit;
  return Status::Ok();
}

Result<int> SlsCli::SetFlushLanes(int lanes) {
  if (lanes < 1) {
    return Status::Error(Errc::kInvalidArgument, "flush lane count must be >= 1");
  }
  return sls_->SetFlushLanes(lanes);
}

std::vector<std::string> SlsCli::Ps() {
  std::vector<std::string> out;
  for (ConsistencyGroup* group : sls_->Groups()) {
    char line[256];
    std::snprintf(line, sizeof(line), "%-16s procs=%zu ckpts=%llu period=%.0fms%s",
                  group->name().c_str(), group->processes.size(),
                  static_cast<unsigned long long>(group->checkpoints_taken),
                  ToMillis(group->period), group->suspended ? " [suspended]" : "");
    out.push_back(line);
  }
  for (const CheckpointInfo& c : sls_->ListCheckpoints()) {
    char line[256];
    std::snprintf(line, sizeof(line), "  epoch=%llu name=%s t=%.3fs",
                  static_cast<unsigned long long>(c.epoch), c.name.c_str(),
                  ToSeconds(c.committed_at));
    out.push_back(line);
  }
  return out;
}

std::vector<std::string> SlsCli::Stat() {
  std::vector<std::string> out;
  SimContext* sim = sls_->sim();
  char line[256];

  out.push_back("counters:");
  for (const auto& [name, counter] : sim->metrics.counters()) {
    std::snprintf(line, sizeof(line), "  %-32s %llu", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    out.push_back(line);
  }
  if (!sim->metrics.gauges().empty()) {
    out.push_back("gauges:");
    for (const auto& [name, gauge] : sim->metrics.gauges()) {
      std::snprintf(line, sizeof(line), "  %-32s %lld", name.c_str(),
                    static_cast<long long>(gauge.value()));
      out.push_back(line);
    }
  }
  out.push_back("histograms:");
  for (const auto& [name, hist] : sim->metrics.histograms()) {
    if (hist.count() == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "  %-32s n=%llu mean=%.3fms p50=%.3fms p99=%.3fms max=%.3fms",
                  name.c_str(), static_cast<unsigned long long>(hist.count()),
                  ToMillis(static_cast<SimDuration>(hist.MeanNanos())),
                  ToMillis(hist.Percentile(50.0)), ToMillis(hist.Percentile(99.0)),
                  ToMillis(hist.Max()));
    out.push_back(line);
  }

  // Phase spans of the most recent traced operation (latest scope).
  uint64_t scope = sim->tracer.current_scope();
  std::vector<Span> spans = sim->tracer.SpansInScope(scope);
  if (!spans.empty()) {
    std::snprintf(line, sizeof(line), "last trace (scope %llu):",
                  static_cast<unsigned long long>(scope));
    out.push_back(line);
    for (const Span& span : spans) {
      std::snprintf(line, sizeof(line), "  %-16s begin=%.6fs dur=%.3fms", span.name.c_str(),
                    ToSeconds(span.begin), ToMillis(span.duration()));
      out.push_back(line);
    }
  }
  return out;
}

Result<CheckpointResult> SlsCli::Suspend(const std::string& group_name) {
  ConsistencyGroup* group = sls_->FindGroup(group_name);
  if (group == nullptr) {
    return Status::Error(Errc::kNotFound, "no such group: " + group_name);
  }
  return sls_->Suspend(group);
}

Result<RestoreResult> SlsCli::Resume(const std::string& group_name) {
  return sls_->ResumeSuspended(group_name);
}

Result<std::vector<uint8_t>> SlsCli::Dump(const std::string& group_name, uint64_t local_pid) {
  ConsistencyGroup* group = sls_->FindGroup(group_name);
  if (group == nullptr) {
    return Status::Error(Errc::kNotFound, "no such group: " + group_name);
  }
  for (Process* proc : group->processes) {
    if (proc->local_pid() == local_pid) {
      return WriteElfCore(proc);
    }
  }
  return Status::Error(Errc::kNotFound, "no such process in group");
}

Status SlsCli::Prune(uint64_t epoch) { return sls_->store()->DeleteCheckpointsBefore(epoch); }

Result<std::vector<std::string>> SlsCli::Scrub() {
  Scrubber scrubber(sls_->store());
  AURORA_ASSIGN_OR_RETURN(ScrubReport report, scrubber.ScrubAll());
  std::vector<std::string> out;
  char line[256];
  for (const ScrubEpochVerdict& verdict : report.epochs) {
    std::snprintf(line, sizeof(line),
                  "epoch=%llu name=%s meta=%s blocks=%llu crc_errors=%llu io_errors=%llu %s",
                  static_cast<unsigned long long>(verdict.epoch), verdict.name.c_str(),
                  verdict.meta_ok ? "ok" : "bad",
                  static_cast<unsigned long long>(verdict.blocks_scanned),
                  static_cast<unsigned long long>(verdict.crc_errors),
                  static_cast<unsigned long long>(verdict.io_errors),
                  verdict.clean() ? "CLEAN" : "CORRUPT");
    out.push_back(line);
  }
  for (const ScrubBadBlock& bad : report.bad_blocks) {
    std::snprintf(line, sizeof(line), "  bad block: epoch=%llu oid=%llu logical=%llu phys=%llu %s",
                  static_cast<unsigned long long>(bad.epoch),
                  static_cast<unsigned long long>(bad.oid.value),
                  static_cast<unsigned long long>(bad.logical),
                  static_cast<unsigned long long>(bad.phys),
                  bad.error == Errc::kCorrupt ? "crc-mismatch" : "io-error");
    out.push_back(line);
  }
  std::snprintf(line, sizeof(line), "scrub: %zu epochs, %zu bad blocks: %s", report.epochs.size(),
                report.bad_blocks.size(), report.clean() ? "CLEAN" : "CORRUPT");
  out.push_back(line);
  return out;
}

Result<std::vector<std::string>> SlsCli::Gc(bool run) {
  ObjectStore* store = sls_->store();
  std::vector<std::string> out;
  char line[256];
  if (store->layout() != StoreLayout::kSegmentLog) {
    out.push_back("gc: store uses the legacy layout; nothing to compact");
    return out;
  }

  if (run) {
    AURORA_ASSIGN_OR_RETURN(GcRunReport report, sls_->gc()->Run());
    std::snprintf(line, sizeof(line),
                  "gc pass: examined=%llu compacted=%llu relocated=%llu blocks"
                  " (%llu bytes) crc_errors=%llu io_errors=%llu%s",
                  static_cast<unsigned long long>(report.segments_examined),
                  static_cast<unsigned long long>(report.segments_compacted),
                  static_cast<unsigned long long>(report.blocks_relocated),
                  static_cast<unsigned long long>(report.bytes_relocated),
                  static_cast<unsigned long long>(report.crc_errors),
                  static_cast<unsigned long long>(report.io_errors),
                  report.throttled ? " [throttled]" : "");
    out.push_back(line);
  }

  SegmentStats stats = store->GetSegmentStats();
  uint64_t bs = store->block_size();
  std::snprintf(line, sizeof(line),
                "segments: total=%llu free=%llu open=%llu sealed=%llu meta=%llu"
                " journal=%llu zombie=%llu (x %llu blocks)",
                static_cast<unsigned long long>(stats.segments_total),
                static_cast<unsigned long long>(stats.segments_free),
                static_cast<unsigned long long>(stats.segments_open),
                static_cast<unsigned long long>(stats.segments_sealed),
                static_cast<unsigned long long>(stats.segments_meta),
                static_cast<unsigned long long>(stats.segments_journal),
                static_cast<unsigned long long>(stats.segments_zombie),
                static_cast<unsigned long long>(store->segment_blocks()));
  out.push_back(line);
  std::snprintf(line, sizeof(line),
                "space: live=%llu bytes dead=%llu bytes used=%llu bytes reloc_entries=%llu",
                static_cast<unsigned long long>(stats.live_blocks * bs),
                static_cast<unsigned long long>(stats.dead_blocks * bs),
                static_cast<unsigned long long>(store->UsedPhysicalBlocks() * bs),
                static_cast<unsigned long long>(stats.reloc_entries));
  out.push_back(line);
  std::string hist = "utilization (sealed, emptiest decile first):";
  for (uint64_t bucket : stats.util_histogram) {
    std::snprintf(line, sizeof(line), " %llu", static_cast<unsigned long long>(bucket));
    hist += line;
  }
  out.push_back(hist);

  MetricsRegistry& metrics = sls_->sim()->metrics;
  std::snprintf(line, sizeof(line),
                "gc totals: runs=%llu segments_compacted=%llu segments_reclaimed=%llu"
                " blocks_relocated=%llu throttle_defers=%llu",
                static_cast<unsigned long long>(metrics.counter("gc.runs").value()),
                static_cast<unsigned long long>(metrics.counter("gc.segments_compacted").value()),
                static_cast<unsigned long long>(metrics.counter("gc.segments_reclaimed").value()),
                static_cast<unsigned long long>(metrics.counter("gc.blocks_relocated").value()),
                static_cast<unsigned long long>(metrics.counter("gc.throttle_defers").value()));
  out.push_back(line);

  for (ConsistencyGroup* group : sls_->Groups()) {
    const RetentionPolicy& policy = group->retention;
    if (policy.enabled()) {
      std::snprintf(line, sizeof(line), "retention: %-16s keep_epochs=%llu max_age=%.0fms",
                    group->name().c_str(),
                    static_cast<unsigned long long>(policy.keep_epochs),
                    ToMillis(policy.max_age));
    } else {
      std::snprintf(line, sizeof(line), "retention: %-16s disabled (all epochs kept)",
                    group->name().c_str());
    }
    out.push_back(line);
  }
  return out;
}

Result<CheckpointStream> SlsCli::Send(const std::string& group_name, uint64_t epoch,
                                      uint64_t since_epoch) {
  // Manifest lookup is the same helper Sls::Restore and StoreBackend use.
  ObjectStore* store = sls_->store();
  AURORA_ASSIGN_OR_RETURN(CheckpointBackend::LoadedManifest loaded,
                          LoadManifestFromStore(store, group_name, epoch));

  StreamPayload payload;
  payload.epoch = loaded.epoch;
  payload.since_epoch = since_epoch;
  payload.manifest = std::move(loaded.blob);
  AURORA_ASSIGN_OR_RETURN(auto memory, ManifestMemoryObjects(payload.manifest));
  uint32_t bs = store->block_size();
  std::vector<uint8_t> buf(bs);
  for (const auto& [oid, size] : memory) {
    StreamPayload::ObjectData data;
    data.size = size;
    // A manifest object with no extents yields an empty block list, not an
    // error; a real lookup failure must fail the migration rather than ship
    // a silently empty object.
    AURORA_ASSIGN_OR_RETURN(
        std::vector<uint64_t> blocks,
        since_epoch == 0 ? store->BlocksAtEpoch(payload.epoch, Oid{oid})
                         : store->ChangedBlocksSince(since_epoch, payload.epoch, Oid{oid}));
    for (uint64_t block : blocks) {
      AURORA_RETURN_IF_ERROR(
          store->ReadAtEpoch(payload.epoch, Oid{oid}, block * bs, buf.data(), bs));
      data.blocks[block] = buf;
    }
    payload.objects.emplace_back(oid, std::move(data));
  }

  std::vector<uint8_t> bytes = EncodeCheckpointStream(payload);
  // Ship it: one streaming transfer over the 10 GbE link.
  sls_->sim()->clock.Advance(sls_->sim()->cost.NetTransfer(bytes.size()));
  return CheckpointStream{std::move(bytes)};
}

Result<RestoreResult> SlsCli::Recv(const CheckpointStream& stream, MigrationSession* session) {
  SimContext* sim = sls_->sim();
  SimStopwatch watch(sim->clock);
  sim->clock.Advance(sim->cost.NetTransfer(stream.bytes.size()));

  // Same codec NetBackend speaks; Recv is the store-and-instantiate side.
  uint32_t bs = sls_->store()->block_size();
  AURORA_ASSIGN_OR_RETURN(StreamPayload payload,
                          DecodeCheckpointStream(stream.bytes, bs));
  if (payload.since_epoch != 0 &&
      (session == nullptr || session->last_epoch == 0 ||
       payload.since_epoch > session->last_epoch)) {
    return Status::Error(Errc::kBadState,
                         "incremental stream without a matching base image");
  }

  // Index the staged contents by source oid for the resolver.
  std::map<uint64_t, const StreamPayload::ObjectData*> staged;
  for (const auto& [oid, data] : payload.objects) {
    staged[oid] = &data;
  }

  auto new_session_objects =
      std::make_shared<std::map<uint64_t, std::shared_ptr<VmObject>>>();
  auto resolve = [&staged, bs, session, new_session_objects](
                     Oid oid, uint64_t size) -> Result<ResolvedMemory> {
    auto obj = VmObject::CreateAnonymous(size);
    // Base image from the previous round, if any (incremental composition).
    if (session != nullptr) {
      auto prior = session->source_objects.find(oid.value);
      if (prior != session->source_objects.end()) {
        for (const auto& [pgidx, frame] : prior->second->pages()) {
          obj->InstallPage(pgidx, frame->data.data());
        }
      }
    }
    auto it = staged.find(oid.value);
    if (it != staged.end()) {
      for (const auto& [block, data] : it->second->blocks) {
        for (uint64_t p = 0; p < bs / kPageSize; p++) {
          obj->InstallPage(block * (bs / kPageSize) + p, data.data() + p * kPageSize);
        }
      }
    }
    (*new_session_objects)[oid.value] = obj;
    return ResolvedMemory{obj, false};
  };

  AURORA_ASSIGN_OR_RETURN(
      RestoredGroup restored,
      RestoreOsState(sim, sls_->kernel(), sls_->fs(), payload.manifest, resolve));

  // Source-store OIDs mean nothing here: clear them so this machine's first
  // checkpoint assigns fresh local objects and flushes everything once.
  for (Process* proc : restored.processes) {
    for (auto& [start, entry] : proc->vm().entries()) {
      std::shared_ptr<VmObject> obj = entry.object;
      while (obj != nullptr) {
        obj->set_sls_oid(0);
        obj = obj->parent_ref();
      }
    }
  }

  ConsistencyGroup* group = sls_->FindGroup(restored.name);
  if (group == nullptr) {
    AURORA_ASSIGN_OR_RETURN(group, sls_->CreateGroup(restored.name));
  } else if (!group->processes.empty()) {
    if (session == nullptr) {
      return Status::Error(Errc::kExists, "group already running on this machine");
    }
    // Continuous migration: the new round supersedes the standby instance.
    for (Process* proc : group->processes) {
      sls_->kernel()->DestroyProcess(proc);
    }
    group->processes.clear();
  }
  group->processes = restored.processes;
  group->persisted_oids.clear();
  group->pending_collapse.clear();
  group->suspended = false;

  if (session != nullptr) {
    session->last_epoch = payload.epoch;
    session->source_objects = std::move(*new_session_objects);
  }

  RestoreResult result;
  result.group = group;
  result.epoch = restored.epoch;
  result.restore_time = watch.Elapsed();
  return result;
}

}  // namespace aurora
