// Checkpoint manifest serialization and restoration.
//
// The manifest is the OS-state half of a checkpoint: every POSIX object
// reachable from the consistency group (processes, threads, CPU contexts,
// open-file entries, vnodes, pipes, sockets incl. in-flight SCM_RIGHTS
// descriptors, kqueues, ptys, shared memory, devices) serialized exactly
// once, keyed by its kernel identity. Memory pages are flushed separately
// into per-region store objects; the manifest records each mapping's shadow
// chain as a list of store OIDs.
#ifndef SRC_CORE_SERIALIZE_H_
#define SRC_CORE_SERIALIZE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/core/consistency_group.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/posix/kernel.h"

namespace aurora {

struct SerializeStats {
  uint64_t file_objects = 0;
  uint64_t descriptions = 0;
  uint64_t processes = 0;
  uint64_t threads = 0;
  uint64_t vm_entries = 0;
  uint64_t memory_objects = 0;
  uint64_t bytes = 0;
};

// Assigns (or returns the existing) store OID for a VM object.
using EnsureOidFn = std::function<Oid(VmObject*)>;

// How a serialization pass charges the cost model. The manifest bytes are
// identical in every mode; only the simulated time differs.
enum class SerializeMode {
  // Single-pass: every entity charged fresh gather + marshal cost inline
  // (the pre-cache stop-the-world behavior).
  kLegacy,
  // Out-of-window warm pass: entities whose generation is unchanged since
  // the cached blob cost one cache-line touch; changed entities charge
  // fresh. Fills the cache; the returned manifest is discarded.
  kWarmCache,
  // In-window assemble pass: generation-matched entities charge a cache
  // lookup plus a memcpy of the cached blob instead of the kernel-structure
  // gather walk; only entities mutated since the warm pass reserialize.
  kAssemble,
};

// Per-group cache of serialized entity blobs, keyed by (entity kind, kernel
// identity) and guarded by the entity's generation counter. A generation
// match with differing bytes counts as stale (a missed generation bump) and
// is recharged fresh, so a bookkeeping bug can cost time but never
// correctness: the emitted manifest always carries freshly-serialized bytes.
struct SerializeCache {
  struct Entry {
    uint64_t gen = 0;
    std::vector<uint8_t> bytes;
    uint64_t pass = 0;  // last pass that touched this entry
  };
  std::map<std::pair<uint8_t, uint64_t>, Entry> entries;
  uint64_t pass = 0;

  // Drops entries no pass has touched recently (exited processes, closed
  // descriptors) so the cache tracks the live entity set.
  void Prune() {
    for (auto it = entries.begin(); it != entries.end();) {
      if (it->second.pass + 2 < pass) {
        it = entries.erase(it);
      } else {
        ++it;
      }
    }
  }
};

// Serializes the group's OS state into a manifest blob, charging the cost
// model for each object gathered (Table 4's checkpoint column). `mode` and
// `cache` select the incremental charging scheme described above; the
// default reproduces the legacy single-pass cost exactly.
[[nodiscard]] Result<std::vector<uint8_t>> SerializeOsState(
    SimContext* sim, const ConsistencyGroup& group, uint64_t epoch, Oid namespace_oid,
    const EnsureOidFn& ensure_oid, SerializeStats* stats,
    SerializeMode mode = SerializeMode::kLegacy, SerializeCache* cache = nullptr);

// Resolves a memory OID to a VM object during restore. `chain_complete`
// means the returned object already carries its whole ancestry (the
// restore-from-memory fast path) so lower chain links must not be relinked.
struct ResolvedMemory {
  std::shared_ptr<VmObject> object;
  bool chain_complete = false;
};
using MemoryResolverFn = std::function<Result<ResolvedMemory>(Oid oid, uint64_t size)>;

struct RestoredGroup {
  std::string name;
  uint64_t epoch = 0;
  Oid namespace_oid;
  std::vector<Process*> processes;
};

// Recreates the group from a manifest blob. Memory objects are materialized
// through `resolve` (eager store reads, lazy pagers, or in-memory frozen
// objects). Charges the cost model (Table 4's restore column).
[[nodiscard]] Result<RestoredGroup> RestoreOsState(SimContext* sim, Kernel* kernel, AuroraFs* fs,
                                                   const std::vector<uint8_t>& manifest,
                                                   const MemoryResolverFn& resolve);

// Reads just the header (group name + epoch) of a manifest blob.
[[nodiscard]] Result<RestoredGroup> PeekManifest(const std::vector<uint8_t>& manifest);

// Lists the (oid, size) pairs of the manifest's memory-object section
// (used by migration streams).
[[nodiscard]] Result<std::vector<std::pair<uint64_t, uint64_t>>> ManifestMemoryObjects(
                  const std::vector<uint8_t>& manifest);

}  // namespace aurora

#endif  // SRC_CORE_SERIALIZE_H_
