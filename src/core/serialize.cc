#include "src/core/serialize.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "src/base/serializer.h"

namespace aurora {

namespace {

constexpr uint32_t kManifestMagic = 0x414d414e;  // "AMAN"
constexpr uint32_t kManifestVersion = 1;

// Field-chase counts per object type: gathering one POSIX object is one
// lock plus pointer chasing through cold kernel structures (paper 9.2).
constexpr int kVnodeChases = 18;
constexpr int kPipeChases = 14;
constexpr int kSocketChases = 20;
constexpr int kPtyChases = 33;
constexpr int kShmChases = 20;
constexpr int kKqueueBaseChases = 18;
constexpr SimDuration kKeventCost = 12;           // amortized lock+copy per kevent
constexpr SimDuration kSysvNamespaceScan = 10400;  // global namespace walk
constexpr SimDuration kShmShadowCost = 2800;       // shadow alloc + backmap update
constexpr SimDuration kDevfsLockCost = 28 * kMicrosecond;  // pty restore (Table 4)

enum class EntryKind : uint8_t { kAnonChain = 0, kDevice = 1 };

struct Gathered {
  // Insertion-ordered so control-message references resolve determinately.
  std::vector<FileObject*> objects;
  std::set<uint64_t> object_kids;
  std::vector<FileDescription*> descriptions;
  std::set<uint64_t> description_kids;
  std::vector<std::shared_ptr<VmObject>> memory;  // distinct chain links
  std::set<uint64_t> memory_ids;
};

void GatherDescription(const std::shared_ptr<FileDescription>& desc, Gathered* out);

void GatherObject(const std::shared_ptr<FileObject>& obj, Gathered* out) {
  if (!out->object_kids.insert(obj->kernel_id()).second) {
    return;
  }
  out->objects.push_back(obj.get());
  if (obj->type() == FileType::kSocket) {
    auto* sock = static_cast<Socket*>(obj.get());
    // In-flight SCM_RIGHTS descriptors ride in the receive buffer; they are
    // checkpointed like any other descriptor (paper section 5.3).
    for (const SockSegment& seg : sock->recv_buf) {
      if (seg.control.has_value()) {
        for (const auto& desc : seg.control->fds) {
          GatherDescription(desc, out);
        }
      }
    }
  }
}

void GatherDescription(const std::shared_ptr<FileDescription>& desc, Gathered* out) {
  if (!out->description_kids.insert(desc->kernel_id).second) {
    return;
  }
  out->descriptions.push_back(desc.get());
  if (desc->object != nullptr) {
    GatherObject(desc->object, out);
  }
}

void GatherMemoryChain(const std::shared_ptr<VmObject>& top, Gathered* out) {
  std::shared_ptr<VmObject> obj = top;
  while (obj != nullptr && obj->type() == VmObjectType::kAnonymous) {
    if (out->memory_ids.insert(obj->id()).second) {
      out->memory.push_back(obj);
    }
    obj = obj->parent_ref();
  }
}

void SerializeSockAddr(BinaryWriter* w, const SockAddr& a) {
  w->PutU32(a.ip);
  w->PutU16(a.port);
  w->PutString(a.path);
}

Result<SockAddr> ReadSockAddr(BinaryReader* r) {
  SockAddr a;
  AURORA_ASSIGN_OR_RETURN(a.ip, r->U32());
  AURORA_ASSIGN_OR_RETURN(a.port, r->U16());
  AURORA_ASSIGN_OR_RETURN(a.path, r->String());
  return a;
}

// Emits the OID chain for a map entry's object: consecutive links sharing
// one OID (live shadow over its frozen base) are logically one on-disk
// region and are deduplicated; a vnode link terminates the chain.
void SerializeEntryChain(BinaryWriter* w, const VmMapEntry& entry,
                         const EnsureOidFn& ensure_oid) {
  std::vector<uint64_t> oids;
  uint64_t vnode_ino = 0;
  std::shared_ptr<VmObject> cur = entry.object;
  while (cur != nullptr) {
    if (cur->type() == VmObjectType::kVnode) {
      // Bottom link is a file mapping: record the inode; the file's data
      // persists through the Aurora file system, not the checkpoint.
      vnode_ino = cur->backing_ino();
      break;
    }
    Oid oid = ensure_oid(cur.get());
    if (oids.empty() || oids.back() != oid.value) {
      oids.push_back(oid.value);
    }
    cur = cur->parent_ref();
  }
  w->PutU64(oids.size());
  for (uint64_t oid : oids) {
    w->PutU64(oid);
  }
  w->PutU64(vnode_ino);
}

// Serialization-cache entity kinds; combined with the entity's kernel
// identity they key the cached blob.
constexpr uint8_t kEntityFileObject = 1;
constexpr uint8_t kEntityDescription = 2;
constexpr uint8_t kEntityProcess = 3;

SimDuration GatherCost(const CostModel& cost, int chases) {
  return cost.lock_acquire + cost.cacheline_miss * static_cast<SimDuration>(chases);
}

// The per-entity serializers below write one record into a sub-writer and
// return the cost a *fresh* gather of that entity charges (pointer chasing
// through cold kernel structures plus buffer marshaling). They never advance
// the clock themselves: the caller charges fresh, cached or elided cost
// according to the serialization mode.

SimDuration SerializeFileObject(const CostModel& cost, BinaryWriter* w, FileObject* obj,
                                const std::set<uint64_t>& object_kids,
                                const EnsureOidFn& ensure_oid) {
  SimDuration fresh = 0;
  w->PutU64(obj->kernel_id());
  w->PutU8(static_cast<uint8_t>(obj->type()));
  switch (obj->type()) {
    case FileType::kVnode: {
      fresh += GatherCost(cost, kVnodeChases);
      auto* vn = static_cast<Vnode*>(obj);
      // Inode reference only: no name-cache or namei work at stop time.
      w->PutU64(vn->ino());
      w->PutU64(vn->size());
      w->PutU32(vn->nlink());
      break;
    }
    case FileType::kPipe: {
      fresh += GatherCost(cost, kPipeChases);
      auto* pipe = static_cast<Pipe*>(obj);
      w->PutBool(pipe->read_open);
      w->PutBool(pipe->write_open);
      std::vector<uint8_t> buf(pipe->buffer.begin(), pipe->buffer.end());
      w->PutBytes(buf.data(), buf.size());
      fresh += cost.Serialize(buf.size());
      break;
    }
    case FileType::kSocket: {
      fresh += GatherCost(cost, kSocketChases);
      auto* sock = static_cast<Socket*>(obj);
      w->PutU8(static_cast<uint8_t>(sock->domain()));
      w->PutU8(static_cast<uint8_t>(sock->proto()));
      w->PutU8(static_cast<uint8_t>(sock->state));
      SerializeSockAddr(w, sock->local);
      SerializeSockAddr(w, sock->peer_addr);
      w->PutU32(sock->snd_seq);
      w->PutU32(sock->rcv_seq);
      w->PutI64(sock->backlog);
      w->PutBool(sock->external_sync_disabled);
      w->PutBool(sock->peer_shutdown);
      auto peer = sock->peer.lock();
      w->PutU64(peer != nullptr && object_kids.count(peer->kernel_id()) > 0
                    ? peer->kernel_id()
                    : 0);
      w->PutU64(sock->options.size());
      for (const auto& [k, v] : sock->options) {
        w->PutI64(k);
        w->PutI64(v);
      }
      // Buffered data; the accept queue of listening sockets is omitted by
      // design (clients retransmit the SYN).
      w->PutU64(sock->recv_buf.size());
      for (const SockSegment& seg : sock->recv_buf) {
        w->PutBytes(seg.data.data(), seg.data.size());
        SerializeSockAddr(w, seg.from);
        w->PutBool(seg.control.has_value());
        if (seg.control.has_value()) {
          w->PutU64(seg.control->fds.size());
          for (const auto& desc : seg.control->fds) {
            w->PutU64(desc->kernel_id);
          }
          w->PutU64(seg.control->cred_pid);
        }
        fresh += cost.Serialize(seg.data.size());
      }
      break;
    }
    case FileType::kKqueue: {
      auto* kq = static_cast<Kqueue*>(obj);
      fresh += GatherCost(cost, kKqueueBaseChases) + kKeventCost * kq->events().size();
      w->PutU64(kq->events().size());
      for (const KEvent& ev : kq->events()) {
        w->PutU64(ev.ident);
        w->PutI64(ev.filter);
        w->PutU64(ev.flags);
        w->PutU32(ev.fflags);
        w->PutI64(ev.data);
        w->PutU64(ev.udata);
      }
      break;
    }
    case FileType::kPty: {
      fresh += GatherCost(cost, kPtyChases);
      auto* pty = static_cast<Pseudoterminal*>(obj);
      w->PutI64(pty->index);
      w->PutU32(pty->termios_iflag);
      w->PutU32(pty->termios_oflag);
      w->PutU32(pty->termios_cflag);
      w->PutU32(pty->termios_lflag);
      w->PutU16(pty->ws_rows);
      w->PutU16(pty->ws_cols);
      w->PutU64(pty->session_sid);
      std::vector<uint8_t> in(pty->input.begin(), pty->input.end());
      std::vector<uint8_t> out(pty->output.begin(), pty->output.end());
      w->PutBytes(in.data(), in.size());
      w->PutBytes(out.data(), out.size());
      break;
    }
    case FileType::kShm: {
      fresh += GatherCost(cost, kShmChases) + kShmShadowCost;
      auto* shm = static_cast<SharedMemory*>(obj);
      if (shm->kind() == SharedMemory::Kind::kSysV) {
        // SysV requires scanning the global namespace (Table 4).
        fresh += kSysvNamespaceScan;
      }
      w->PutU8(static_cast<uint8_t>(shm->kind()));
      w->PutString(shm->name);
      w->PutI64(shm->key);
      w->PutI64(shm->shmid);
      w->PutU32(shm->mode);
      w->PutU64(shm->size);
      w->PutU64(shm->object != nullptr ? ensure_oid(shm->object.get()).value : 0);
      break;
    }
    case FileType::kDevice: {
      fresh += GatherCost(cost, 8);
      auto* dev = static_cast<DeviceFile*>(obj);
      w->PutString(dev->devname);
      w->PutBool(dev->whitelisted);
      break;
    }
  }
  return fresh;
}

SimDuration SerializeDescription(const CostModel& cost, BinaryWriter* w,
                                 const FileDescription* desc) {
  w->PutU64(desc->kernel_id);
  w->PutU64(desc->object != nullptr ? desc->object->kernel_id() : 0);
  w->PutU64(desc->offset);
  w->PutI64(desc->open_flags);
  return GatherCost(cost, 4);
}

SimDuration SerializeProcess(const CostModel& cost, BinaryWriter* w, const Process* proc,
                             const EnsureOidFn& ensure_oid, SerializeStats* stats) {
  SimDuration fresh = GatherCost(cost, 30);  // proc structure, groups, session, credentials
  w->PutU64(proc->local_pid());
  w->PutString(proc->name());
  w->PutU64(proc->pgid);
  w->PutU64(proc->sid);
  w->PutU64(proc->parent != nullptr ? proc->parent->local_pid() : 0);
  w->PutBool(proc->zombie);
  w->PutI64(proc->exit_status);
  uint64_t ephemeral_children = 0;
  for (const Process* child : proc->children) {
    ephemeral_children += child->ephemeral ? 1 : 0;
  }
  w->PutU64(ephemeral_children);

  for (const SigAction& sa : proc->sigactions) {
    w->PutU64(sa.handler);
    w->PutU64(sa.mask);
    w->PutU32(sa.flags);
  }
  w->PutU64(proc->pending_signals);
  w->PutU64(proc->signal_queue.size());
  for (int signo : proc->signal_queue) {
    w->PutI64(signo);
  }

  w->PutU64(proc->threads().size());
  for (const auto& t : proc->threads()) {
    fresh += GatherCost(cost, 14);  // kernel stack registers + thread fields
    w->PutU64(t->local_tid());
    for (uint64_t r : t->cpu.gpr) {
      w->PutU64(r);
    }
    w->PutU64(t->cpu.rip);
    w->PutU64(t->cpu.rsp);
    w->PutU64(t->cpu.rflags);
    w->PutRaw(t->cpu.fpu.data(), t->cpu.fpu.size());
    w->PutU64(t->sigmask);
    w->PutU64(t->pending_signals);
    w->PutI64(t->priority);
    w->PutU8(static_cast<uint8_t>(t->resume_state));
    if (stats != nullptr) {
      stats->threads++;
    }
  }

  uint64_t open_fds = 0;
  const auto& slots = proc->fds().slots();
  for (const auto& slot : slots) {
    open_fds += slot.desc != nullptr ? 1 : 0;
  }
  w->PutU64(open_fds);
  for (size_t fd = 0; fd < slots.size(); fd++) {
    if (slots[fd].desc == nullptr) {
      continue;
    }
    w->PutI64(static_cast<int64_t>(fd));
    w->PutU64(slots[fd].desc->kernel_id);
    w->PutBool(slots[fd].close_on_exec);
  }

  uint64_t tracked_aios = 0;
  for (const AioRequest& aio : proc->aios) {
    tracked_aios += aio.op == AioRequest::Op::kRead ? 1 : 0;
  }
  w->PutU64(tracked_aios);
  for (const AioRequest& aio : proc->aios) {
    if (aio.op != AioRequest::Op::kRead) {
      continue;  // writes were drained into the checkpoint at quiesce
    }
    w->PutU64(aio.id);
    w->PutI64(aio.fd);
    w->PutU64(aio.offset);
    w->PutU64(aio.length);
  }

  const auto& entries = proc->vm().entries();
  w->PutU64(entries.size());
  for (const auto& [start, entry] : entries) {
    fresh += GatherCost(cost, 6);  // map entry + object headers
    w->PutU64(entry.start);
    w->PutU64(entry.end);
    w->PutI64(entry.prot);
    w->PutU64(entry.offset);
    w->PutBool(entry.copy_on_write);
    w->PutBool(entry.exclude_from_checkpoint);
    w->PutI64(entry.madvise_hint);
    if (entry.object->type() == VmObjectType::kDevice) {
      w->PutU8(static_cast<uint8_t>(EntryKind::kDevice));
      // Device payloads are reinjected at restore; the vDSO marker covers
      // platform-specific pages.
      w->PutString("vdso");
    } else {
      w->PutU8(static_cast<uint8_t>(EntryKind::kAnonChain));
      SerializeEntryChain(w, entry, ensure_oid);
      // (ino recorded by SerializeEntryChain's trailing field is 0; the
      // file identity travels through the fd that mapped it in this
      // model. Anonymous mappings dominate the paper's workloads.)
    }
    if (stats != nullptr) {
      stats->vm_entries++;
    }
  }
  if (stats != nullptr) {
    stats->processes++;
  }
  return fresh;
}

}  // namespace

Result<std::vector<uint8_t>> SerializeOsState(SimContext* sim, const ConsistencyGroup& group,
                                              uint64_t epoch, Oid namespace_oid,
                                              const EnsureOidFn& ensure_oid,
                                              SerializeStats* stats, SerializeMode mode,
                                              SerializeCache* cache) {
  BinaryWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  w.PutString(group.name());
  w.PutU64(epoch);
  w.PutU64(namespace_oid.value);

  if (cache == nullptr) {
    mode = SerializeMode::kLegacy;  // nothing to warm or assemble from
  }
  // Entity records are always built fresh (the simulator's own CPU work is
  // free); the cache decides only what simulated time each record costs.
  // A cached blob that byte-matches the fresh record proves the entity was
  // unchanged, so the emitted manifest is identical in every mode.
  uint64_t entity_bytes = 0;
  auto emit = [&](uint8_t kind, uint64_t id, uint64_t gen, const BinaryWriter& sub,
                  SimDuration fresh_cost) {
    entity_bytes += sub.size();
    if (mode == SerializeMode::kLegacy) {
      sim->clock.Advance(fresh_cost);
    } else {
      auto key = std::make_pair(kind, id);
      auto it = cache->entries.find(key);
      bool gen_match = it != cache->entries.end() && it->second.gen == gen;
      bool hit = gen_match && it->second.bytes == sub.data();
      if (hit) {
        // Unchanged entity. The warm pass pays one cache-line touch for the
        // generation check; the in-window pass pays the lookup plus a block
        // copy of the prepared blob — no kernel-structure walk.
        if (mode == SerializeMode::kWarmCache) {
          sim->clock.Advance(sim->cost.cacheline_miss);
        } else {
          sim->clock.Advance(sim->cost.serialize_cache_lookup +
                             sim->cost.MemCopy(sub.size()));
          sim->metrics.counter("ckpt.serialize_cache_hits").Add();
        }
        it->second.pass = cache->pass;
      } else {
        sim->clock.Advance(fresh_cost + sim->cost.Serialize(sub.size()));
        if (mode == SerializeMode::kAssemble) {
          // A generation match with differing bytes means a mutation path
          // missed its generation bump: recharged fresh, flagged stale.
          sim->metrics
              .counter(gen_match ? "ckpt.serialize_cache_stale" : "ckpt.serialize_cache_misses")
              .Add();
        }
        cache->entries[key] = SerializeCache::Entry{gen, sub.data(), cache->pass};
      }
    }
    w.PutRaw(sub.data().data(), sub.size());
  };

  // --- Gather --------------------------------------------------------------
  Gathered g;
  std::vector<const Process*> persisted_procs;
  for (const Process* proc : group.processes) {
    if (proc->ephemeral) {
      continue;
    }
    persisted_procs.push_back(proc);
    for (const auto& slot : proc->fds().slots()) {
      if (slot.desc != nullptr) {
        GatherDescription(slot.desc, &g);
      }
    }
    for (const auto& [start, entry] : proc->vm().entries()) {
      if (entry.object->type() == VmObjectType::kAnonymous) {
        GatherMemoryChain(entry.object, &g);
      }
    }
  }
  // Shared memory reachable through descriptors contributes its VM chain
  // even when currently unmapped.
  for (FileObject* obj : g.objects) {
    if (obj->type() == FileType::kShm) {
      auto* shm = static_cast<SharedMemory*>(obj);
      if (shm->object != nullptr) {
        GatherMemoryChain(shm->object, &g);
      }
    }
  }

  // --- Memory objects --------------------------------------------------------
  w.PutU64(g.memory.size());
  for (const auto& obj : g.memory) {
    Oid oid = ensure_oid(obj.get());
    w.PutU64(oid.value);
    w.PutU64(obj->size());
  }
  if (stats != nullptr) {
    stats->memory_objects = g.memory.size();
  }

  // --- File objects ----------------------------------------------------------
  w.PutU64(g.objects.size());
  for (FileObject* obj : g.objects) {
    BinaryWriter sub;
    SimDuration fresh = SerializeFileObject(sim->cost, &sub, obj, g.object_kids, ensure_oid);
    emit(kEntityFileObject, obj->kernel_id(), obj->generation(), sub, fresh);
  }

  // --- Open-file entries -------------------------------------------------------
  w.PutU64(g.descriptions.size());
  for (FileDescription* desc : g.descriptions) {
    BinaryWriter sub;
    SimDuration fresh = SerializeDescription(sim->cost, &sub, desc);
    emit(kEntityDescription, desc->kernel_id, desc->generation, sub, fresh);
  }

  // --- Processes ---------------------------------------------------------------
  w.PutU64(persisted_procs.size());
  for (const Process* proc : persisted_procs) {
    BinaryWriter sub;
    SimDuration fresh = SerializeProcess(sim->cost, &sub, proc, ensure_oid, stats);
    // Any checkpoint-visible process mutation bumps one of these three
    // monotonic counters, so their sum keys the cached blob.
    uint64_t gen = proc->mutation_gen + proc->vm().generation() + proc->fds().generation();
    emit(kEntityProcess, proc->pid(), gen, sub, fresh);
  }

  if (stats != nullptr) {
    stats->file_objects = g.objects.size();
    stats->descriptions = g.descriptions.size();
    stats->bytes = w.size();
  }
  // Final marshal: legacy pays for the whole manifest (entities were charged
  // gather-only inline, as before); cached modes already paid per-entity
  // marshal, so only the glue bytes (header, section counts, memory table)
  // remain.
  if (mode == SerializeMode::kLegacy) {
    sim->clock.Advance(sim->cost.Serialize(w.size()));
  } else {
    sim->clock.Advance(sim->cost.Serialize(w.size() - entity_bytes));
  }
  return w.Take();
}

Result<RestoredGroup> PeekManifest(const std::vector<uint8_t>& manifest) {
  BinaryReader r(manifest);
  AURORA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  AURORA_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kManifestMagic || version != kManifestVersion) {
    return Status::Error(Errc::kCorrupt, "bad manifest header");
  }
  RestoredGroup out;
  AURORA_ASSIGN_OR_RETURN(out.name, r.String());
  AURORA_ASSIGN_OR_RETURN(out.epoch, r.U64());
  AURORA_ASSIGN_OR_RETURN(out.namespace_oid.value, r.U64());
  return out;
}

Result<std::vector<std::pair<uint64_t, uint64_t>>> ManifestMemoryObjects(
    const std::vector<uint8_t>& manifest) {
  BinaryReader r(manifest);
  AURORA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  AURORA_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kManifestMagic || version != kManifestVersion) {
    return Status::Error(Errc::kCorrupt, "bad manifest header");
  }
  AURORA_ASSIGN_OR_RETURN(std::string name, r.String());
  AURORA_ASSIGN_OR_RETURN(uint64_t epoch, r.U64());
  AURORA_ASSIGN_OR_RETURN(uint64_t ns, r.U64());
  (void)name;
  (void)epoch;
  (void)ns;
  AURORA_ASSIGN_OR_RETURN(uint64_t count, r.U64());
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t oid, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t size, r.U64());
    out.emplace_back(oid, size);
  }
  return out;
}

Result<RestoredGroup> RestoreOsState(SimContext* sim, Kernel* kernel, AuroraFs* fs,
                                     const std::vector<uint8_t>& manifest,
                                     const MemoryResolverFn& resolve) {
  BinaryReader r(manifest);
  AURORA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  AURORA_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (magic != kManifestMagic || version != kManifestVersion) {
    return Status::Error(Errc::kCorrupt, "bad manifest header");
  }
  RestoredGroup out;
  AURORA_ASSIGN_OR_RETURN(out.name, r.String());
  AURORA_ASSIGN_OR_RETURN(out.epoch, r.U64());
  AURORA_ASSIGN_OR_RETURN(out.namespace_oid.value, r.U64());

  // A mid-restore failure (truncated manifest, resolver error, mapping
  // conflict) must not leak half-built state: every process created below
  // lands in the kernel's table immediately, adopted shm objects land in the
  // global namespaces, and restored vnodes take hidden references. The guard
  // rolls all of that back unless the restore runs to completion.
  struct RestoreGuard {
    Kernel* kernel;
    std::vector<Process*> procs;
    std::vector<const SharedMemory*> shms;
    std::vector<Vnode*> vnode_refs;
    bool armed = true;
    ~RestoreGuard() {
      if (!armed) {
        return;
      }
      for (Process* p : procs) {
        kernel->DestroyProcess(p);
      }
      for (const SharedMemory* s : shms) {
        kernel->RemoveShm(s);
      }
      for (Vnode* v : vnode_refs) {
        v->DropHiddenRef();
      }
    }
  } guard{kernel};

  // --- Memory objects ----------------------------------------------------------
  std::unordered_map<uint64_t, uint64_t> memory_sizes;
  AURORA_ASSIGN_OR_RETURN(uint64_t nmem, r.U64());
  for (uint64_t i = 0; i < nmem; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t oid, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t size, r.U64());
    memory_sizes[oid] = size;
  }
  std::unordered_map<uint64_t, ResolvedMemory> memory_cache;
  auto resolve_cached = [&](uint64_t oid) -> Result<ResolvedMemory> {
    auto it = memory_cache.find(oid);
    if (it != memory_cache.end()) {
      return it->second;
    }
    uint64_t size = memory_sizes.count(oid) > 0 ? memory_sizes[oid] : 0;
    AURORA_ASSIGN_OR_RETURN(ResolvedMemory rm, resolve(Oid{oid}, size));
    rm.object->set_sls_oid(oid);
    memory_cache[oid] = rm;
    return rm;
  };

  // --- File objects -------------------------------------------------------------
  struct PendingControl {
    Socket* socket;
    size_t segment;
    std::vector<uint64_t> desc_kids;
    uint64_t cred_pid;
  };
  std::unordered_map<uint64_t, std::shared_ptr<FileObject>> objects;
  std::unordered_map<uint64_t, uint64_t> socket_peers;  // kid -> peer kid
  std::vector<PendingControl> pending_controls;

  AURORA_ASSIGN_OR_RETURN(uint64_t nobjects, r.U64());
  for (uint64_t i = 0; i < nobjects; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t kid, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint8_t type_raw, r.U8());
    auto type = static_cast<FileType>(type_raw);
    std::shared_ptr<FileObject> obj;
    switch (type) {
      case FileType::kVnode: {
        AURORA_ASSIGN_OR_RETURN(uint64_t ino, r.U64());
        AURORA_ASSIGN_OR_RETURN(uint64_t size, r.U64());
        AURORA_ASSIGN_OR_RETURN(uint32_t nlink, r.U32());
        std::shared_ptr<Vnode> vn;
        auto found = fs->LookupByIno(ino);
        if (found.ok()) {
          vn = *found;
        } else {
          // Anonymous file: no namespace entry survived, but the hidden
          // reference count kept its data object alive in the store.
          AURORA_ASSIGN_OR_RETURN(vn, fs->RegisterAnonymousIno(ino));
        }
        vn->set_size(std::max(vn->size(), size));
        vn->set_nlink(nlink);
        vn->AddHiddenRef();
        guard.vnode_refs.push_back(vn.get());
        sim->clock.Advance(sim->cost.small_alloc + 26 * sim->cost.cacheline_miss);
        obj = vn;
        break;
      }
      case FileType::kPipe: {
        auto pipe = std::make_shared<Pipe>();
        AURORA_ASSIGN_OR_RETURN(pipe->read_open, r.Bool());
        AURORA_ASSIGN_OR_RETURN(pipe->write_open, r.Bool());
        AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> buf, r.Bytes());
        pipe->buffer.assign(buf.begin(), buf.end());
        sim->clock.Advance(sim->cost.small_alloc * 2 + 32 * sim->cost.cacheline_miss +
                           sim->cost.MemCopy(buf.size()));
        obj = pipe;
        break;
      }
      case FileType::kSocket: {
        AURORA_ASSIGN_OR_RETURN(uint8_t domain, r.U8());
        AURORA_ASSIGN_OR_RETURN(uint8_t proto, r.U8());
        auto sock = std::make_shared<Socket>(static_cast<SocketDomain>(domain),
                                             static_cast<SocketProto>(proto));
        AURORA_ASSIGN_OR_RETURN(uint8_t state, r.U8());
        sock->state = static_cast<SocketState>(state);
        AURORA_ASSIGN_OR_RETURN(sock->local, ReadSockAddr(&r));
        AURORA_ASSIGN_OR_RETURN(sock->peer_addr, ReadSockAddr(&r));
        AURORA_ASSIGN_OR_RETURN(sock->snd_seq, r.U32());
        AURORA_ASSIGN_OR_RETURN(sock->rcv_seq, r.U32());
        AURORA_ASSIGN_OR_RETURN(int64_t backlog, r.I64());
        sock->backlog = static_cast<int>(backlog);
        AURORA_ASSIGN_OR_RETURN(sock->external_sync_disabled, r.Bool());
        AURORA_ASSIGN_OR_RETURN(sock->peer_shutdown, r.Bool());
        AURORA_ASSIGN_OR_RETURN(uint64_t peer_kid, r.U64());
        if (peer_kid != 0) {
          socket_peers[kid] = peer_kid;
        }
        AURORA_ASSIGN_OR_RETURN(uint64_t nopts, r.U64());
        for (uint64_t k = 0; k < nopts; k++) {
          AURORA_ASSIGN_OR_RETURN(int64_t key, r.I64());
          AURORA_ASSIGN_OR_RETURN(int64_t value, r.I64());
          sock->options[static_cast<int>(key)] = static_cast<int>(value);
        }
        AURORA_ASSIGN_OR_RETURN(uint64_t nsegs, r.U64());
        for (uint64_t s = 0; s < nsegs; s++) {
          SockSegment seg;
          AURORA_ASSIGN_OR_RETURN(seg.data, r.Bytes());
          AURORA_ASSIGN_OR_RETURN(seg.from, ReadSockAddr(&r));
          AURORA_ASSIGN_OR_RETURN(bool has_control, r.Bool());
          if (has_control) {
            PendingControl pc;
            pc.socket = sock.get();
            pc.segment = static_cast<size_t>(s);
            AURORA_ASSIGN_OR_RETURN(uint64_t nfds, r.U64());
            for (uint64_t f = 0; f < nfds; f++) {
              AURORA_ASSIGN_OR_RETURN(uint64_t dk, r.U64());
              pc.desc_kids.push_back(dk);
            }
            AURORA_ASSIGN_OR_RETURN(pc.cred_pid, r.U64());
            pending_controls.push_back(std::move(pc));
            seg.control = ControlMessage{};  // filled in pass 2
          }
          sock->recv_bytes += seg.data.size();
          sock->recv_buf.push_back(std::move(seg));
        }
        sim->clock.Advance(sim->cost.small_alloc * 3 + 44 * sim->cost.cacheline_miss);
        obj = sock;
        break;
      }
      case FileType::kKqueue: {
        auto kq = std::make_shared<Kqueue>();
        AURORA_ASSIGN_OR_RETURN(uint64_t nevents, r.U64());
        for (uint64_t e = 0; e < nevents; e++) {
          KEvent ev;
          AURORA_ASSIGN_OR_RETURN(ev.ident, r.U64());
          AURORA_ASSIGN_OR_RETURN(int64_t filter, r.I64());
          ev.filter = static_cast<int16_t>(filter);
          AURORA_ASSIGN_OR_RETURN(uint64_t flags, r.U64());
          ev.flags = static_cast<uint16_t>(flags);
          AURORA_ASSIGN_OR_RETURN(ev.fflags, r.U32());
          AURORA_ASSIGN_OR_RETURN(ev.data, r.I64());
          AURORA_ASSIGN_OR_RETURN(ev.udata, r.U64());
          kq->Register(ev);
        }
        // Restore is a bulk copy into a fresh table (fast: Table 4).
        sim->clock.Advance(sim->cost.small_alloc +
                           sim->cost.MemCopy(nevents * sizeof(KEvent)));
        obj = kq;
        break;
      }
      case FileType::kPty: {
        auto pty = std::make_shared<Pseudoterminal>();
        AURORA_ASSIGN_OR_RETURN(int64_t index, r.I64());
        pty->index = static_cast<int>(index);
        AURORA_ASSIGN_OR_RETURN(pty->termios_iflag, r.U32());
        AURORA_ASSIGN_OR_RETURN(pty->termios_oflag, r.U32());
        AURORA_ASSIGN_OR_RETURN(pty->termios_cflag, r.U32());
        AURORA_ASSIGN_OR_RETURN(pty->termios_lflag, r.U32());
        AURORA_ASSIGN_OR_RETURN(pty->ws_rows, r.U16());
        AURORA_ASSIGN_OR_RETURN(pty->ws_cols, r.U16());
        AURORA_ASSIGN_OR_RETURN(pty->session_sid, r.U64());
        AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> in, r.Bytes());
        AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> outbuf, r.Bytes());
        pty->input.assign(in.begin(), in.end());
        pty->output.assign(outbuf.begin(), outbuf.end());
        // Recreating the virtual device takes devfs locks (Table 4's slow
        // pty restore).
        sim->clock.Advance(kDevfsLockCost + sim->cost.small_alloc * 2);
        obj = pty;
        break;
      }
      case FileType::kShm: {
        AURORA_ASSIGN_OR_RETURN(uint8_t kind, r.U8());
        auto shm = std::make_shared<SharedMemory>(static_cast<SharedMemory::Kind>(kind));
        AURORA_ASSIGN_OR_RETURN(shm->name, r.String());
        AURORA_ASSIGN_OR_RETURN(int64_t key, r.I64());
        shm->key = static_cast<int32_t>(key);
        AURORA_ASSIGN_OR_RETURN(int64_t shmid, r.I64());
        shm->shmid = static_cast<int32_t>(shmid);
        AURORA_ASSIGN_OR_RETURN(shm->mode, r.U32());
        AURORA_ASSIGN_OR_RETURN(shm->size, r.U64());
        AURORA_ASSIGN_OR_RETURN(uint64_t vm_oid, r.U64());
        if (vm_oid != 0) {
          AURORA_ASSIGN_OR_RETURN(ResolvedMemory rm, resolve_cached(vm_oid));
          shm->object = rm.object;
        }
        kernel->AdoptShm(shm);
        guard.shms.push_back(shm.get());
        sim->clock.Advance(sim->cost.small_alloc * 3 + 30 * sim->cost.cacheline_miss);
        if (shm->kind() == SharedMemory::Kind::kPosix) {
          // shm_open re-registers the name in the POSIX shm namespace.
          sim->clock.Advance(1200);
        }
        obj = shm;
        break;
      }
      case FileType::kDevice: {
        auto dev = std::make_shared<DeviceFile>();
        AURORA_ASSIGN_OR_RETURN(dev->devname, r.String());
        AURORA_ASSIGN_OR_RETURN(dev->whitelisted, r.Bool());
        if (!dev->whitelisted) {
          return Status::Error(Errc::kNotSupported,
                               "checkpoint holds a non-whitelisted device: " + dev->devname);
        }
        if (dev->devname == "hpet0") {
          dev->device_memory = VmObject::CreateDevice(kPageSize);
        }
        sim->clock.Advance(sim->cost.small_alloc);
        obj = dev;
        break;
      }
    }
    objects[kid] = std::move(obj);
  }

  // --- Open-file entries ----------------------------------------------------------
  std::unordered_map<uint64_t, std::shared_ptr<FileDescription>> descriptions;
  AURORA_ASSIGN_OR_RETURN(uint64_t ndescs, r.U64());
  for (uint64_t i = 0; i < ndescs; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t kid, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t object_kid, r.U64());
    auto desc = std::make_shared<FileDescription>();
    AURORA_ASSIGN_OR_RETURN(desc->offset, r.U64());
    AURORA_ASSIGN_OR_RETURN(int64_t flags, r.I64());
    desc->open_flags = static_cast<int>(flags);
    if (object_kid != 0) {
      auto it = objects.find(object_kid);
      if (it == objects.end()) {
        return Status::Error(Errc::kCorrupt, "description references unknown object");
      }
      desc->object = it->second;
    }
    descriptions[kid] = std::move(desc);
    sim->clock.Advance(sim->cost.small_alloc);
  }

  // Pass 2: control messages and socket peers.
  for (const PendingControl& pc : pending_controls) {
    ControlMessage cm;
    cm.cred_pid = pc.cred_pid;
    for (uint64_t dk : pc.desc_kids) {
      auto it = descriptions.find(dk);
      if (it == descriptions.end()) {
        return Status::Error(Errc::kCorrupt, "control message references unknown descriptor");
      }
      cm.fds.push_back(it->second);
    }
    pc.socket->recv_buf[pc.segment].control = std::move(cm);
  }
  for (const auto& [kid, peer_kid] : socket_peers) {
    auto a = objects.find(kid);
    auto b = objects.find(peer_kid);
    if (a != objects.end() && b != objects.end()) {
      auto sa = std::static_pointer_cast<Socket>(a->second);
      auto sb = std::static_pointer_cast<Socket>(b->second);
      sa->peer = sb;
    }
  }

  // --- Processes ---------------------------------------------------------------------
  struct ParentFixup {
    Process* proc;
    uint64_t parent_local_pid;
  };
  std::vector<ParentFixup> fixups;
  std::vector<std::pair<Process*, uint64_t>> sigchld_posts;

  AURORA_ASSIGN_OR_RETURN(uint64_t nprocs, r.U64());
  for (uint64_t i = 0; i < nprocs; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t local_pid, r.U64());
    AURORA_ASSIGN_OR_RETURN(std::string name, r.String());
    AURORA_ASSIGN_OR_RETURN(Process * proc, kernel->CreateProcessForRestore(name, local_pid));
    guard.procs.push_back(proc);
    AURORA_ASSIGN_OR_RETURN(proc->pgid, r.U64());
    AURORA_ASSIGN_OR_RETURN(proc->sid, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t parent_local, r.U64());
    if (parent_local != 0) {
      fixups.push_back({proc, parent_local});
    }
    AURORA_ASSIGN_OR_RETURN(proc->zombie, r.Bool());
    AURORA_ASSIGN_OR_RETURN(int64_t exit_status, r.I64());
    proc->exit_status = static_cast<int>(exit_status);
    AURORA_ASSIGN_OR_RETURN(uint64_t ephemeral_children, r.U64());
    if (ephemeral_children > 0) {
      sigchld_posts.push_back({proc, ephemeral_children});
    }

    for (SigAction& sa : proc->sigactions) {
      AURORA_ASSIGN_OR_RETURN(sa.handler, r.U64());
      AURORA_ASSIGN_OR_RETURN(sa.mask, r.U64());
      AURORA_ASSIGN_OR_RETURN(sa.flags, r.U32());
    }
    AURORA_ASSIGN_OR_RETURN(proc->pending_signals, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t nqueued, r.U64());
    for (uint64_t q = 0; q < nqueued; q++) {
      AURORA_ASSIGN_OR_RETURN(int64_t signo, r.I64());
      proc->signal_queue.push_back(static_cast<int>(signo));
    }

    AURORA_ASSIGN_OR_RETURN(uint64_t nthreads, r.U64());
    for (uint64_t t = 0; t < nthreads; t++) {
      Thread& thread = proc->AddThread();
      AURORA_ASSIGN_OR_RETURN(uint64_t local_tid, r.U64());
      thread.set_local_tid(local_tid);
      for (uint64_t& reg : thread.cpu.gpr) {
        AURORA_ASSIGN_OR_RETURN(reg, r.U64());
      }
      AURORA_ASSIGN_OR_RETURN(thread.cpu.rip, r.U64());
      AURORA_ASSIGN_OR_RETURN(thread.cpu.rsp, r.U64());
      AURORA_ASSIGN_OR_RETURN(thread.cpu.rflags, r.U64());
      AURORA_RETURN_IF_ERROR(r.Raw(thread.cpu.fpu.data(), thread.cpu.fpu.size()));
      AURORA_ASSIGN_OR_RETURN(thread.sigmask, r.U64());
      AURORA_ASSIGN_OR_RETURN(thread.pending_signals, r.U64());
      AURORA_ASSIGN_OR_RETURN(int64_t priority, r.I64());
      thread.priority = static_cast<int>(priority);
      AURORA_ASSIGN_OR_RETURN(uint8_t state, r.U8());
      thread.state = static_cast<ThreadState>(state);
      sim->clock.Advance(sim->cost.small_alloc + sim->cost.MemCopy(sizeof(CpuState)));
    }

    AURORA_ASSIGN_OR_RETURN(uint64_t nfds, r.U64());
    for (uint64_t f = 0; f < nfds; f++) {
      AURORA_ASSIGN_OR_RETURN(int64_t slot, r.I64());
      AURORA_ASSIGN_OR_RETURN(uint64_t desc_kid, r.U64());
      AURORA_ASSIGN_OR_RETURN(bool cloexec, r.Bool());
      auto it = descriptions.find(desc_kid);
      if (it == descriptions.end()) {
        return Status::Error(Errc::kCorrupt, "fd references unknown descriptor");
      }
      AURORA_RETURN_IF_ERROR(
          proc->fds().InstallAt(static_cast<int>(slot), it->second, cloexec));
    }

    AURORA_ASSIGN_OR_RETURN(uint64_t naios, r.U64());
    for (uint64_t a = 0; a < naios; a++) {
      AioRequest aio;
      AURORA_ASSIGN_OR_RETURN(aio.id, r.U64());
      AURORA_ASSIGN_OR_RETURN(int64_t fd, r.I64());
      aio.fd = static_cast<int>(fd);
      aio.op = AioRequest::Op::kRead;
      aio.state = AioRequest::State::kInFlight;  // reissued after restore
      AURORA_ASSIGN_OR_RETURN(aio.offset, r.U64());
      AURORA_ASSIGN_OR_RETURN(aio.length, r.U64());
      proc->aios.push_back(aio);
    }

    AURORA_ASSIGN_OR_RETURN(uint64_t nentries, r.U64());
    for (uint64_t e = 0; e < nentries; e++) {
      uint64_t start;
      uint64_t end;
      AURORA_ASSIGN_OR_RETURN(start, r.U64());
      AURORA_ASSIGN_OR_RETURN(end, r.U64());
      AURORA_ASSIGN_OR_RETURN(int64_t prot, r.I64());
      AURORA_ASSIGN_OR_RETURN(uint64_t offset, r.U64());
      AURORA_ASSIGN_OR_RETURN(bool cow, r.Bool());
      AURORA_ASSIGN_OR_RETURN(bool exclude, r.Bool());
      AURORA_ASSIGN_OR_RETURN(int64_t hint, r.I64());
      AURORA_ASSIGN_OR_RETURN(uint8_t kind_raw, r.U8());
      auto kind = static_cast<EntryKind>(kind_raw);
      std::shared_ptr<VmObject> top;
      if (kind == EntryKind::kDevice) {
        AURORA_ASSIGN_OR_RETURN(std::string devname, r.String());
        // Inject the *current* platform's vDSO/device pages (paper 5.3).
        top = kernel->vdso();
      } else {
        AURORA_ASSIGN_OR_RETURN(uint64_t chain_len, r.U64());
        std::vector<uint64_t> chain(chain_len);
        for (uint64_t c = 0; c < chain_len; c++) {
          AURORA_ASSIGN_OR_RETURN(chain[c], r.U64());
        }
        AURORA_ASSIGN_OR_RETURN(uint64_t vnode_ino, r.U64());
        std::shared_ptr<VmObject> below;  // built bottom-up
        if (vnode_ino != 0) {
          std::shared_ptr<Vnode> vn;
          auto found = fs->LookupByIno(vnode_ino);
          if (found.ok()) {
            vn = *found;
          } else {
            AURORA_ASSIGN_OR_RETURN(vn, fs->RegisterAnonymousIno(vnode_ino));
          }
          below = vn->MakeVmObject();
        }
        for (size_t c = chain.size(); c-- > 0;) {
          AURORA_ASSIGN_OR_RETURN(ResolvedMemory rm, resolve_cached(chain[c]));
          if (below != nullptr && !rm.chain_complete && rm.object->parent() == nullptr) {
            rm.object->ReplaceParent(below);
          }
          below = rm.object;
        }
        top = below;
        if (top == nullptr) {
          top = VmObject::CreateAnonymous(end - start);
        }
      }
      int mapped_prot = static_cast<int>(prot);
      if (kind == EntryKind::kDevice) {
        mapped_prot &= ~kProtWrite;
      }
      AURORA_ASSIGN_OR_RETURN(uint64_t mapped,
                              proc->vm().Map(start, end - start, mapped_prot, top, offset, cow));
      if (mapped != start) {
        return Status::Error(Errc::kBadState, "restored mapping landed at the wrong address");
      }
      VmMapEntry* entry = proc->vm().FindEntry(start);
      entry->exclude_from_checkpoint = exclude;
      entry->madvise_hint = static_cast<int>(hint);
    }

    out.processes.push_back(proc);
  }

  // Parent/child links by checkpoint-time local pid.
  for (const ParentFixup& fix : fixups) {
    for (Process* candidate : out.processes) {
      if (candidate->local_pid() == fix.parent_local_pid) {
        fix.proc->parent = candidate;
        candidate->children.push_back(fix.proc);
        break;
      }
    }
  }
  // Ephemeral children were dropped: their parents see SIGCHLD, as if the
  // worker had exited unexpectedly (paper section 3).
  for (auto& [proc, count] : sigchld_posts) {
    for (uint64_t c = 0; c < count; c++) {
      proc->PostSignal(kSigChld);
    }
  }
  guard.armed = false;
  return out;
}

}  // namespace aurora
