// The sls command-line verbs (paper Table 2) and checkpoint migration
// (sls send / sls recv).
#ifndef SRC_CORE_CLI_H_
#define SRC_CORE_CLI_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/sls.h"

namespace aurora {

// Serialized checkpoint stream: manifest plus the memory-object contents,
// suitable for piping to a file or a remote host.
struct CheckpointStream {
  std::vector<uint8_t> bytes;
};

// Receiver-side state for continuous migration: the memory objects built by
// the previous stream, keyed by source OID, so incremental streams ship
// only the blocks that changed since the last shipped epoch.
struct MigrationSession {
  uint64_t last_epoch = 0;
  std::map<uint64_t, std::shared_ptr<VmObject>> source_objects;
};

class SlsCli {
 public:
  explicit SlsCli(Sls* sls) : sls_(sls) {}

  // sls attach: attaches `proc` to the named group (created on demand).
  [[nodiscard]] Result<ConsistencyGroup*> Attach(const std::string& group_name, Process* proc);
  // sls detach: makes the process ephemeral — still quiesced with its
  // group, no longer persisted (Table 2).
  [[nodiscard]] Status Detach(Process* proc);
  // sls checkpoint: manual named checkpoint. A non-empty `backend_name`
  // (`sls ckpt --backend=`) routes the group's checkpoints through that
  // backend first (see SetBackend for when that is legal).
  [[nodiscard]] Result<CheckpointResult> Checkpoint(const std::string& group_name,
                                                    const std::string& name,
                                                    const std::string& backend_name = "");
  // sls restore. A non-empty `backend_name` restores from that backend
  // instead of the local object store.
  [[nodiscard]] Result<RestoreResult> Restore(const std::string& group_name, uint64_t epoch = 0,
                                              RestoreMode mode = RestoreMode::kFull,
                                              const std::string& backend_name = "");
  // sls ckpt --backend=<name>: routes the group's future checkpoints through
  // the named backend (store / memory / net). Legal only while the group has
  // no checkpoint state in flight.
  [[nodiscard]] Status SetBackend(const std::string& group_name, const std::string& backend_name);
  // sls ckpt --in-flight-epochs=<n>: epoch-overlap backpressure knob for
  // periodic checkpoints. 1 (default) = a new epoch never starts before the
  // previous flush is durable; 2 = one flush may still be in flight.
  [[nodiscard]] Status SetInFlightEpochs(const std::string& group_name, uint32_t limit);
  // sls ckpt --flush-lanes=<n>: fans checkpoint flush / eager restore over n
  // cores, each driving its own device queue (machine-wide, all backends).
  // Returns the applied value, clamped to [1, ncpus].
  [[nodiscard]] Result<int> SetFlushLanes(int lanes);
  // sls ps: human-readable listing of groups and their checkpoints.
  std::vector<std::string> Ps();
  // sls stat: human-readable snapshot of the machine-wide metrics registry —
  // counters, gauges, simulated-time histograms — plus the phase spans of the
  // most recent checkpoint or restore.
  std::vector<std::string> Stat();
  // sls suspend / sls resume.
  [[nodiscard]] Result<CheckpointResult> Suspend(const std::string& group_name);
  [[nodiscard]] Result<RestoreResult> Resume(const std::string& group_name);
  // sls dump: ELF coredump of one process in the group.
  [[nodiscard]] Result<std::vector<uint8_t>> Dump(const std::string& group_name,
                                                  uint64_t local_pid);
  // Reclaims history: drops checkpoints older than `epoch` and frees their
  // exclusive blocks (execution history is bounded only by storage).
  [[nodiscard]] Status Prune(uint64_t epoch);
  // sls scrub: walks every committed epoch's metadata and data blocks,
  // verifying the per-extent CRCs against the media. One verdict line per
  // epoch plus one line per bad block, then a machine total.
  [[nodiscard]] Result<std::vector<std::string>> Scrub();
  // sls gc: segment-log space report — segment-state census, live/dead
  // bytes, sealed-segment utilization histogram, gc.* counters, and each
  // group's retention policy. With `run`, drives one compaction pass first
  // and reports what it did.
  [[nodiscard]] Result<std::vector<std::string>> Gc(bool run = false);

  // sls send: serializes the group's newest durable checkpoint (manifest +
  // memory) into a stream, charging network transfer time. With
  // `since_epoch` nonzero, only blocks written after that epoch are shipped
  // (pre-copy rounds / continuous high availability).
  [[nodiscard]] Result<CheckpointStream> Send(const std::string& group_name, uint64_t epoch = 0,
                                              uint64_t since_epoch = 0);
  // sls recv: instantiates a received stream on *this* machine's SLS. Store
  // OIDs are re-assigned locally at the first checkpoint after arrival.
  // With a session, incremental streams compose onto the previously
  // received image and the session is updated for the next round.
  [[nodiscard]] Result<RestoreResult> Recv(const CheckpointStream& stream,
                                           MigrationSession* session = nullptr);

 private:
  Sls* sls_;
};

}  // namespace aurora

#endif  // SRC_CORE_CLI_H_
