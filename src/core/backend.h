// Pluggable checkpoint backends (paper section 4, Table 2).
//
// Aurora ships checkpoints to interchangeable destinations: the local COW
// object store, RAM-resident snapshot images (the memory-backend ablation),
// and a remote machine over the NIC (`sls send` / `sls recv`). The Sls
// checkpoint/restore engine talks to all of them through CheckpointBackend,
// so the pipeline stages — quiesce, serialize, shadow, resume, async flush,
// commit, release — are written once and the destination only decides where
// bytes land and what each transfer costs.
//
// Durability timing model: WriteObjectPages/CommitEpoch stage their data
// synchronously (the simulation's state is updated immediately) but return
// the simulated time the bytes become durable, which may be in the future —
// the flush overlaps application execution exactly as the store path always
// has.
#ifndef SRC_CORE_BACKEND_H_
#define SRC_CORE_BACKEND_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/core/serialize.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"

namespace aurora {

enum class CheckpointMode {
  kFull,        // serialize + shadow + flush to the backend + commit
  kMemoryOnly,  // serialize + shadow only; snapshot stays in memory
};

enum class RestoreMode {
  kFull,        // materialize all pages from the backend eagerly
  kLazy,        // restore OS state only; pages fault in on demand
  kFromMemory,  // rollback to the in-memory snapshot (no backend reads)
};

class CheckpointBackend {
 public:
  virtual ~CheckpointBackend() = default;

  virtual const std::string& name() const = 0;

  // Fans this backend's flush/restore work over `lanes` parallel lanes
  // (cores driving device queues, flusher threads, or NIC streams). Work
  // completion becomes the makespan over lanes instead of a serial sum;
  // 1 lane is the exact historical serial timeline. Backends without a
  // parallelizable flusher ignore it.
  virtual void SetFlushLanes(int lanes) { (void)lanes; }

  // --- Checkpoint destination ----------------------------------------------
  // Epoch the next commit will seal (matches ObjectStore::current_epoch()).
  virtual uint64_t current_epoch() const = 0;
  // Names a new memory-region object in this backend's namespace.
  [[nodiscard]] virtual Result<Oid> CreateMemoryObject(uint64_t size_hint) = 0;
  // Persists the file-system namespace; backends without a filesystem return
  // kInvalidOid and the manifest simply records no namespace.
  [[nodiscard]] virtual Result<Oid> PersistNamespace() = 0;
  // Ships every resident page of `obj` to the object named `oid`, returning
  // the simulated time the pages are durable at the destination. Increments
  // *pages / *bytes per page shipped when non-null.
  [[nodiscard]] virtual Result<SimTime> WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                                         uint64_t* bytes) = 0;
  // Flushes file data dirtied since the last checkpoint (checkpoint
  // consistency makes fsync a no-op); no-op for backends without files.
  [[nodiscard]] virtual Result<SimTime> FlushFilesystem() = 0;

  struct CommitInfo {
    uint64_t epoch = 0;     // epoch this checkpoint committed as
    Oid manifest_oid;       // invalid when `manifest` was empty
    SimTime durable_at = 0; // when the manifest + commit record are durable
  };
  // Seals the epoch: writes the manifest (skipped when empty, e.g. for
  // sls_memckpt region checkpoints) and commits. `replaces_manifest` is the
  // group's previous manifest object, dropped from the live table.
  [[nodiscard]] virtual Result<CommitInfo> CommitEpoch(const std::string& ckpt_name,
                                                       const std::vector<uint8_t>& manifest,
                                                       Oid replaces_manifest) = 0;

  // --- Restore source ------------------------------------------------------
  struct LoadedManifest {
    uint64_t epoch = 0;
    Oid oid;
    std::vector<uint8_t> blob;
  };
  // Finds and reads the manifest for `group_name` at `epoch` (0 = newest).
  [[nodiscard]] virtual Result<LoadedManifest> LoadManifest(const std::string& group_name,
                                                            uint64_t epoch) = 0;
  // Rolls the file-system namespace back to the checkpointed one.
  [[nodiscard]] virtual Status RestoreNamespace(uint64_t epoch, Oid ns_oid) = 0;
  // Builds the memory resolver RestoreOsState uses to materialize each
  // region object. kFull resolvers stream eagerly and accumulate their read
  // completion into *stream_done (the caller advances to it once at the
  // end); kLazy resolvers install demand pagers.
  [[nodiscard]] virtual Result<MemoryResolverFn> MakeResolver(
      uint64_t epoch, RestoreMode mode, std::shared_ptr<SimTime> stream_done) = 0;

  // --- Unified checkpoint/swap path (paper section 6) ----------------------
  // Backs the fully-durable, parentless object `base` with this backend so
  // dropped frames stream back on fault. Returns false when `base` cannot be
  // safely paged (no oid, mid-chain, ...) — the caller must then keep its
  // frames resident.
  virtual bool InstallPager(VmObject* base) = 0;
};

// -----------------------------------------------------------------------------
// StoreBackend: today's path — the local COW object store + AuroraFS.
// -----------------------------------------------------------------------------
class StoreBackend : public CheckpointBackend {
 public:
  StoreBackend(SimContext* sim, ObjectStore* store, AuroraFs* fs)
      : sim_(sim), store_(store), fs_(fs) {}

  const std::string& name() const override { return name_; }
  void SetFlushLanes(int lanes) override {
    store_->SetFlushLanes(static_cast<uint32_t>(lanes < 1 ? 1 : lanes));
  }
  uint64_t current_epoch() const override { return store_->current_epoch(); }
  [[nodiscard]] Result<Oid> CreateMemoryObject(uint64_t size_hint) override;
  [[nodiscard]] Result<Oid> PersistNamespace() override { return fs_->PersistNamespace(); }
  [[nodiscard]] Result<SimTime> WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                                 uint64_t* bytes) override;
  [[nodiscard]] Result<SimTime> FlushFilesystem() override { return fs_->FlushAll(); }
  [[nodiscard]] Result<CommitInfo> CommitEpoch(const std::string& ckpt_name,
                                               const std::vector<uint8_t>& manifest,
                                               Oid replaces_manifest) override;
  [[nodiscard]] Result<LoadedManifest> LoadManifest(const std::string& group_name,
                                                    uint64_t epoch) override;
  [[nodiscard]] Status RestoreNamespace(uint64_t epoch, Oid ns_oid) override {
    return fs_->RestoreNamespace(epoch, ns_oid);
  }
  [[nodiscard]] Result<MemoryResolverFn> MakeResolver(
      uint64_t epoch, RestoreMode mode, std::shared_ptr<SimTime> stream_done) override;
  bool InstallPager(VmObject* base) override;

  ObjectStore* store() { return store_; }

 private:
  // Removes a manifest object created by a CommitEpoch that then failed, so
  // the live table never points at a manifest no committed epoch covers.
  void DropStrandedManifest(Oid oid);

  SimContext* sim_;
  ObjectStore* store_;
  AuroraFs* fs_;
  std::string name_ = "store";
};

// -----------------------------------------------------------------------------
// MemoryBackend: RAM-resident checkpoint images (the paper's memory-backend
// ablation). An asynchronous flusher copies pages into per-object images at
// memcpy bandwidth; images survive process teardown but not machine reboot.
// Also serves as the receiving side of a NetBackend: the NIC stages pages
// into a peer machine's MemoryBackend image table.
// -----------------------------------------------------------------------------
class MemoryBackend : public CheckpointBackend {
 public:
  explicit MemoryBackend(SimContext* sim, std::string name = "memory")
      : sim_(sim), name_(std::move(name)) {}

  struct ObjectImage {
    uint64_t size = 0;
    std::map<uint64_t, std::vector<uint8_t>> pages;  // pgidx -> one 4 KiB page
  };
  struct ImageRecord {
    uint64_t epoch = 0;
    std::string group;
    std::string ckpt_name;
    Oid manifest_oid;
    std::vector<uint8_t> manifest;
    SimTime committed_at = 0;
  };

  const std::string& name() const override { return name_; }
  void SetFlushLanes(int lanes) override {
    // Reconfiguring is a barrier: new lanes all start where the old
    // schedule would have drained, so no queued work is forgotten.
    flusher_ = LaneSchedule(lanes, flusher_.Makespan());
  }
  uint64_t current_epoch() const override { return epoch_; }
  [[nodiscard]] Result<Oid> CreateMemoryObject(uint64_t size_hint) override;
  [[nodiscard]] Result<Oid> PersistNamespace() override { return kInvalidOid; }
  [[nodiscard]] Result<SimTime> WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                                 uint64_t* bytes) override;
  [[nodiscard]] Result<SimTime> FlushFilesystem() override { return sim_->clock.now(); }
  [[nodiscard]] Result<CommitInfo> CommitEpoch(const std::string& ckpt_name,
                                               const std::vector<uint8_t>& manifest,
                                               Oid replaces_manifest) override;
  [[nodiscard]] Result<LoadedManifest> LoadManifest(const std::string& group_name,
                                                    uint64_t epoch) override;
  [[nodiscard]] Status RestoreNamespace(uint64_t /*epoch*/, Oid /*ns_oid*/) override {
    return Status::Error(Errc::kNotSupported, "memory backend holds no namespace");
  }
  [[nodiscard]] Result<MemoryResolverFn> MakeResolver(
      uint64_t epoch, RestoreMode mode, std::shared_ptr<SimTime> stream_done) override;
  bool InstallPager(VmObject* base) override;

  // Cost-free staging primitives for a NetBackend feeding this image table
  // from across the link (the sender charges the NIC, not our flusher).
  uint64_t AllocOid() { return next_oid_++; }
  void DeclareObject(uint64_t oid, uint64_t size);
  void StagePage(uint64_t oid, uint64_t object_size, uint64_t pgidx, const uint8_t* data);
  CommitInfo Seal(std::string group, std::string ckpt_name, std::vector<uint8_t> manifest,
                  SimTime committed_at);

  const ObjectImage* FindObject(uint64_t oid) const;
  [[nodiscard]] Result<const ImageRecord*> FindImage(const std::string& group_name,
                                                     uint64_t epoch) const;
  const std::vector<ImageRecord>& images() const { return images_; }

 private:
  SimContext* sim_;
  std::string name_;
  uint64_t next_oid_ = 1;
  uint64_t epoch_ = 1;
  // Asynchronous flusher lanes: each object's copy lands on the least-loaded
  // lane and starts no earlier than that lane's previous drain, so
  // back-to-back checkpoints queue up. One lane = the serial flusher.
  LaneSchedule flusher_{1};
  std::map<uint64_t, ObjectImage> objects_;
  std::vector<ImageRecord> images_;
};

// -----------------------------------------------------------------------------
// NetBackend: checkpoints stream to a peer machine's MemoryBackend over the
// simulated NIC. Every page batch and manifest is charged
// CostModel::NetTransfer on a dedicated link timeline (transfers queue
// behind one another), subsuming what `sls send` does per stream; restores
// pull the image back across the link. The peer's MemoryBackend may belong
// to another simulated machine — its clock is never touched from here.
// -----------------------------------------------------------------------------
class NetBackend : public CheckpointBackend {
 public:
  // Lossy-link model: each queued transfer independently times out with
  // probability drop_rate; a timeout charges net_send_timeout + one RTT for
  // the reconnect before the retry. Bounded like disk I/O retries — after
  // max_attempts the send fails with kIoError and the epoch aborts upstream.
  struct LinkFaultProfile {
    uint64_t seed = 0x6E657431;  // "net1"
    double drop_rate = 0.0;
    int max_attempts = 4;
  };

  NetBackend(SimContext* sim, MemoryBackend* remote, std::string name = "net")
      : sim_(sim), remote_(remote), name_(std::move(name)) {}

  void SetLinkFaults(const LinkFaultProfile& profile) {
    link_ = profile;
    link_rng_ = Rng(profile.seed);
  }

  const std::string& name() const override { return name_; }
  void SetFlushLanes(int lanes) override { lanes_ = LaneSchedule(lanes, lanes_.Makespan()); }
  uint64_t current_epoch() const override { return remote_->current_epoch(); }
  [[nodiscard]] Result<Oid> CreateMemoryObject(uint64_t size_hint) override;
  [[nodiscard]] Result<Oid> PersistNamespace() override { return kInvalidOid; }
  [[nodiscard]] Result<SimTime> WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                                 uint64_t* bytes) override;
  [[nodiscard]] Result<SimTime> FlushFilesystem() override { return sim_->clock.now(); }
  [[nodiscard]] Result<CommitInfo> CommitEpoch(const std::string& ckpt_name,
                                               const std::vector<uint8_t>& manifest,
                                               Oid replaces_manifest) override;
  [[nodiscard]] Result<LoadedManifest> LoadManifest(const std::string& group_name,
                                                    uint64_t epoch) override;
  [[nodiscard]] Status RestoreNamespace(uint64_t /*epoch*/, Oid /*ns_oid*/) override {
    return Status::Error(Errc::kNotSupported, "net backend holds no namespace");
  }
  [[nodiscard]] Result<MemoryResolverFn> MakeResolver(
      uint64_t epoch, RestoreMode mode, std::shared_ptr<SimTime> stream_done) override;
  bool InstallPager(VmObject* base) override;

  MemoryBackend* remote() { return remote_; }

 private:
  // Per-page wire framing: page index + length (matches the migration
  // stream's per-block header granularity).
  static constexpr uint64_t kPageHeaderBytes = 16;

  // Queues `payload` bytes onto stream lane `lane`, returning arrival time.
  // Never advances the local clock — checkpoint shipping is asynchronous.
  // Lanes model concurrent streams: their latency halves overlap, while the
  // wire's byte occupancy is shared (wire_busy_). With one lane the stream
  // timeline always covers the wire bucket, i.e. the historical serial link.
  // Fails with kIoError when the lossy-link profile exhausts its retries.
  [[nodiscard]] Result<SimTime> QueueTransferOn(int lane, uint64_t payload);
  [[nodiscard]] Result<SimTime> QueueTransfer(uint64_t payload) {
    return QueueTransferOn(lanes_.NextLane(), payload);
  }

  SimContext* sim_;
  MemoryBackend* remote_;
  std::string name_;
  LaneSchedule lanes_{1};
  SimTime wire_busy_ = 0;
  LinkFaultProfile link_;
  Rng link_rng_;
};

// -----------------------------------------------------------------------------
// Shared store helpers (used by Sls, StoreBackend and `sls send`, so manifest
// lookup is implemented exactly once).
// -----------------------------------------------------------------------------
// Scans committed checkpoints newest-first for a manifest whose header names
// `group_name`; `epoch` 0 = newest. Returns (epoch, manifest oid).
[[nodiscard]] Result<std::pair<uint64_t, Oid>> FindManifestInStore(
    ObjectStore* store, const std::string& group_name, uint64_t epoch);
// FindManifestInStore plus the final manifest read.
[[nodiscard]] Result<CheckpointBackend::LoadedManifest> LoadManifestFromStore(
    ObjectStore* store, const std::string& group_name, uint64_t epoch);

// -----------------------------------------------------------------------------
// Migration stream codec (`sls send` / `sls recv` wire format, magic "ASND").
// Layout: u32 magic, u64 epoch, u64 since_epoch, bytes manifest, u64 nmem,
// then per object: u64 oid, u64 size, u64 nblocks, nblocks x (u64 block,
// raw store-block payload).
// -----------------------------------------------------------------------------
struct StreamPayload {
  uint64_t epoch = 0;
  uint64_t since_epoch = 0;
  std::vector<uint8_t> manifest;
  struct ObjectData {
    uint64_t size = 0;
    std::map<uint64_t, std::vector<uint8_t>> blocks;  // block index -> raw block
  };
  // Source oid -> contents; iteration order is the wire order.
  std::vector<std::pair<uint64_t, ObjectData>> objects;
};

std::vector<uint8_t> EncodeCheckpointStream(const StreamPayload& payload);
[[nodiscard]] Result<StreamPayload> DecodeCheckpointStream(const std::vector<uint8_t>& bytes,
                                                           uint32_t block_size);

}  // namespace aurora

#endif  // SRC_CORE_BACKEND_H_
