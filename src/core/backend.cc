#include "src/core/backend.h"

#include <algorithm>

#include "src/base/serializer.h"

namespace aurora {

namespace {
constexpr uint32_t kStreamMagic = 0x41534e44;  // "ASND"
}

// -----------------------------------------------------------------------------
// StoreBackend
// -----------------------------------------------------------------------------

Result<Oid> StoreBackend::CreateMemoryObject(uint64_t size_hint) {
  return store_->CreateObject(ObjType::kMemory, size_hint);
}

Result<SimTime> StoreBackend::WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                               uint64_t* bytes) {
  // One run per resident page; the store batches runs per 64 KiB block so
  // sparse dirty sets cost one COW block update per touched block, with
  // asynchronous RMW reads — the flush overlaps application execution.
  std::vector<ObjectStore::IoRun> runs;
  runs.reserve(obj->pages().size());
  for (const auto& [pgidx, frame] : obj->pages()) {
    runs.push_back(ObjectStore::IoRun{pgidx * kPageSize, frame->data.data(), kPageSize});
    if (pages != nullptr) {
      (*pages)++;
    }
    if (bytes != nullptr) {
      *bytes += kPageSize;
    }
  }
  if (runs.empty()) {
    return sim_->clock.now();
  }
  AURORA_ASSIGN_OR_RETURN(SimTime done, store_->WriteAtBatch(oid, runs));
  // The flusher walks the object with its lock held; COW faults copying
  // from it contend (see VmObject::busy_until).
  obj->set_busy_until(done);
  sim_->metrics.counter("backend." + name_ + ".bytes_shipped").Add(runs.size() * kPageSize);
  return done;
}

Result<CheckpointBackend::CommitInfo> StoreBackend::CommitEpoch(
    const std::string& ckpt_name, const std::vector<uint8_t>& manifest, Oid replaces_manifest) {
  CommitInfo info;
  SimTime manifest_done = sim_->clock.now();
  if (!manifest.empty()) {
    // Manifest object for this epoch; the previous one leaves the live table
    // (it remains readable at its own epoch).
    AURORA_ASSIGN_OR_RETURN(info.manifest_oid, store_->CreateObject(ObjType::kManifest));
    Result<SimTime> wrote =
        store_->WriteAt(info.manifest_oid, 0, manifest.data(), manifest.size());
    if (!wrote.ok()) {
      // Drop the half-written manifest from the live table; leaving it would
      // let FindManifestInStore return a manifest the commit never covered.
      DropStrandedManifest(info.manifest_oid);
      return wrote.status();
    }
    manifest_done = *wrote;
    if (replaces_manifest.valid()) {
      // Deleted before the commit so the removal is serialized into this
      // epoch's metadata. After an aborted epoch the retry's delete finds the
      // oid already gone (kNotFound) — benign, not counted as a failure.
      Status deleted = store_->DeleteObject(replaces_manifest);
      if (!deleted.ok() && deleted.code() != Errc::kNotFound) {
        sim_->metrics.counter("backend.manifest_delete_failures").Add();
      }
    }
    sim_->metrics.counter("backend." + name_ + ".bytes_shipped").Add(manifest.size());
  }
  info.epoch = store_->current_epoch();
  Result<SimTime> committed = store_->CommitCheckpoint(ckpt_name);
  if (!committed.ok()) {
    if (!manifest.empty()) {
      DropStrandedManifest(info.manifest_oid);
    }
    return committed.status();
  }
  info.durable_at = std::max(manifest_done, *committed);
  sim_->metrics.counter("backend." + name_ + ".epochs_committed").Add();
  return info;
}

void StoreBackend::DropStrandedManifest(Oid oid) {
  Status deleted = store_->DeleteObject(oid);
  if (!deleted.ok()) {
    sim_->metrics.counter("backend.manifest_delete_failures").Add();
  }
}

Result<CheckpointBackend::LoadedManifest> StoreBackend::LoadManifest(
    const std::string& group_name, uint64_t epoch) {
  return LoadManifestFromStore(store_, group_name, epoch);
}

Result<MemoryResolverFn> StoreBackend::MakeResolver(uint64_t epoch, RestoreMode mode,
                                                    std::shared_ptr<SimTime> stream_done) {
  ObjectStore* store = store_;
  if (mode == RestoreMode::kFull) {
    // Eager restore streams every object's blocks with pipelined reads; the
    // caller advances to the stream's completion once at the end.
    return MemoryResolverFn(
        [store, epoch, stream_done](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
          auto obj = VmObject::CreateAnonymous(size);
          auto blocks = store->BlocksAtEpoch(epoch, oid);
          if (blocks.ok()) {
            uint32_t bs = store->block_size();
            std::vector<uint8_t> buf(bs);
            for (uint64_t block : *blocks) {
              AURORA_RETURN_IF_ERROR(
                  store->ReadAtEpoch(epoch, oid, block * bs, buf.data(), bs, stream_done.get()));
              for (uint64_t p = 0; p < bs / kPageSize; p++) {
                obj->InstallPage(block * (bs / kPageSize) + p, buf.data() + p * kPageSize);
              }
            }
          }
          return ResolvedMemory{std::move(obj), false};
        });
  }
  if (mode == RestoreMode::kLazy) {
    return MemoryResolverFn([store, epoch](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
      auto obj = VmObject::CreateAnonymous(size);
      auto blocks = store->BlocksAtEpoch(epoch, oid);
      auto present = std::make_shared<std::set<uint64_t>>();
      if (blocks.ok()) {
        present->insert(blocks->begin(), blocks->end());
      }
      uint32_t bs = store->block_size();
      obj->set_pager([store, epoch, oid, present, bs](uint64_t pgidx, uint8_t* out) {
        uint64_t block = pgidx * kPageSize / bs;
        if (present->count(block) == 0) {
          return false;
        }
        return store->ReadAtEpoch(epoch, oid, pgidx * kPageSize, out, kPageSize).ok();
      });
      return ResolvedMemory{std::move(obj), false};
    });
  }
  return Status::Error(Errc::kInvalidArgument, "kFromMemory resolves without a backend");
}

bool StoreBackend::InstallPager(VmObject* base) {
  // Only legal for parentless anonymous objects: a catch-all pager installed
  // mid-chain would shadow the links below it.
  if (base->parent() != nullptr || base->sls_oid() == 0) {
    return base->has_pager();
  }
  if (base->has_pager()) {
    return true;
  }
  ObjectStore* store = store_;
  Oid oid{base->sls_oid()};
  base->set_pager([store, oid](uint64_t pgidx, uint8_t* out) {
    auto blocks = store->ReadAt(oid, pgidx * kPageSize, out, kPageSize);
    return blocks.ok();
  });
  return true;
}

// -----------------------------------------------------------------------------
// MemoryBackend
// -----------------------------------------------------------------------------

Result<Oid> MemoryBackend::CreateMemoryObject(uint64_t size_hint) {
  Oid oid{AllocOid()};
  DeclareObject(oid.value, size_hint);
  return oid;
}

void MemoryBackend::DeclareObject(uint64_t oid, uint64_t size) {
  ObjectImage& img = objects_[oid];
  img.size = std::max(img.size, size);
}

void MemoryBackend::StagePage(uint64_t oid, uint64_t object_size, uint64_t pgidx,
                              const uint8_t* data) {
  ObjectImage& img = objects_[oid];
  img.size = std::max(img.size, object_size);
  img.pages[pgidx].assign(data, data + kPageSize);
}

Result<SimTime> MemoryBackend::WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                                uint64_t* bytes) {
  uint64_t copied = 0;
  for (const auto& [pgidx, frame] : obj->pages()) {
    StagePage(oid.value, obj->size(), pgidx, frame->data.data());
    copied += kPageSize;
    if (pages != nullptr) {
      (*pages)++;
    }
    if (bytes != nullptr) {
      *bytes += kPageSize;
    }
  }
  if (copied == 0) {
    return sim_->clock.now();
  }
  int lane = flusher_.NextLane();
  SimTime done = flusher_.StartOn(lane, sim_->clock.now()) + sim_->cost.MemCopy(copied);
  flusher_.Occupy(lane, done);
  obj->set_busy_until(done);
  sim_->metrics.counter("backend." + name_ + ".bytes_shipped").Add(copied);
  return done;
}

Result<CheckpointBackend::CommitInfo> MemoryBackend::CommitEpoch(
    const std::string& ckpt_name, const std::vector<uint8_t>& manifest, Oid replaces_manifest) {
  (void)replaces_manifest;  // images are append-only; Seal retires nothing
  // Commit is a join point: the manifest copy starts only after every flusher
  // lane drained, and nothing later may start before the commit finished.
  SimTime done = std::max(sim_->clock.now(), flusher_.Makespan());
  if (!manifest.empty()) {
    done += sim_->cost.MemCopy(manifest.size());
    sim_->metrics.counter("backend." + name_ + ".bytes_shipped").Add(manifest.size());
  }
  flusher_ = LaneSchedule(flusher_.lanes(), done);
  std::string group;
  if (!manifest.empty()) {
    auto head = PeekManifest(manifest);
    if (head.ok()) {
      group = head->name;
    }
  }
  sim_->metrics.counter("backend." + name_ + ".epochs_committed").Add();
  return Seal(std::move(group), ckpt_name, manifest, done);
}

CheckpointBackend::CommitInfo MemoryBackend::Seal(std::string group, std::string ckpt_name,
                                                  std::vector<uint8_t> manifest,
                                                  SimTime committed_at) {
  CommitInfo info;
  info.epoch = epoch_++;
  info.durable_at = committed_at;
  ImageRecord rec;
  rec.epoch = info.epoch;
  rec.group = std::move(group);
  rec.ckpt_name = std::move(ckpt_name);
  rec.committed_at = committed_at;
  if (!manifest.empty()) {
    rec.manifest_oid = Oid{AllocOid()};
    info.manifest_oid = rec.manifest_oid;
    rec.manifest = std::move(manifest);
  }
  images_.push_back(std::move(rec));
  return info;
}

const MemoryBackend::ObjectImage* MemoryBackend::FindObject(uint64_t oid) const {
  auto it = objects_.find(oid);
  return it == objects_.end() ? nullptr : &it->second;
}

Result<const MemoryBackend::ImageRecord*> MemoryBackend::FindImage(const std::string& group_name,
                                                                   uint64_t epoch) const {
  for (auto it = images_.rbegin(); it != images_.rend(); ++it) {
    if (it->manifest.empty()) {
      continue;  // manifest-less seal (sls_memckpt)
    }
    if (epoch != 0 && it->epoch != epoch) {
      continue;
    }
    if (it->group == group_name) {
      return &*it;
    }
    if (epoch != 0) {
      break;
    }
  }
  return Status::Error(Errc::kNotFound, "no checkpoint image for group " + group_name);
}

Result<CheckpointBackend::LoadedManifest> MemoryBackend::LoadManifest(
    const std::string& group_name, uint64_t epoch) {
  AURORA_ASSIGN_OR_RETURN(const ImageRecord* rec, FindImage(group_name, epoch));
  sim_->clock.Advance(sim_->cost.MemCopy(rec->manifest.size()));
  LoadedManifest loaded;
  loaded.epoch = rec->epoch;
  loaded.oid = rec->manifest_oid;
  loaded.blob = rec->manifest;
  return loaded;
}

Result<MemoryResolverFn> MemoryBackend::MakeResolver(uint64_t epoch, RestoreMode mode,
                                                     std::shared_ptr<SimTime> stream_done) {
  (void)epoch;  // images are written once; any epoch sees the same pages
  if (mode == RestoreMode::kFull) {
    // Independent objects materialize on parallel lanes (same width as the
    // flusher); the caller advances to the makespan once at the end.
    auto lanes = std::make_shared<LaneSchedule>(flusher_.lanes(), *stream_done);
    return MemoryResolverFn(
        [this, stream_done, lanes](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
          auto obj = VmObject::CreateAnonymous(size);
          uint64_t copied = 0;
          if (const ObjectImage* img = FindObject(oid.value)) {
            for (const auto& [pgidx, data] : img->pages) {
              obj->InstallPage(pgidx, data.data());
              copied += kPageSize;
            }
          }
          int lane = lanes->NextLane();
          SimTime done = lanes->StartOn(lane, 0) + sim_->cost.MemCopy(copied);
          lanes->Occupy(lane, done);
          *stream_done = std::max(*stream_done, done);
          return ResolvedMemory{std::move(obj), false};
        });
  }
  if (mode == RestoreMode::kLazy) {
    return MemoryResolverFn([this](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
      auto obj = VmObject::CreateAnonymous(size);
      SimContext* sim = sim_;
      MemoryBackend* backend = this;
      uint64_t key = oid.value;
      obj->set_pager([sim, backend, key](uint64_t pgidx, uint8_t* out) {
        const ObjectImage* img = backend->FindObject(key);
        if (img == nullptr) {
          return false;
        }
        auto page = img->pages.find(pgidx);
        if (page == img->pages.end()) {
          return false;
        }
        sim->clock.Advance(sim->cost.MemCopy(kPageSize));
        std::copy(page->second.begin(), page->second.end(), out);
        return true;
      });
      return ResolvedMemory{std::move(obj), false};
    });
  }
  return Status::Error(Errc::kInvalidArgument, "kFromMemory resolves without a backend");
}

bool MemoryBackend::InstallPager(VmObject* base) {
  if (base->parent() != nullptr || base->sls_oid() == 0) {
    return base->has_pager();
  }
  if (base->has_pager()) {
    return true;
  }
  SimContext* sim = sim_;
  MemoryBackend* backend = this;
  uint64_t key = base->sls_oid();
  base->set_pager([sim, backend, key](uint64_t pgidx, uint8_t* out) {
    const ObjectImage* img = backend->FindObject(key);
    if (img == nullptr) {
      return false;
    }
    auto page = img->pages.find(pgidx);
    if (page == img->pages.end()) {
      return false;
    }
    sim->clock.Advance(sim->cost.MemCopy(kPageSize));
    std::copy(page->second.begin(), page->second.end(), out);
    return true;
  });
  return true;
}

// -----------------------------------------------------------------------------
// NetBackend
// -----------------------------------------------------------------------------

Result<SimTime> NetBackend::QueueTransferOn(int lane, uint64_t payload) {
  SimTime start = lanes_.StartOn(lane, sim_->clock.now());
  if (link_.drop_rate > 0.0) {
    // Lossy link: each timed-out attempt pushes the lane's start time out by
    // the send timeout plus the reconnect round trip. The guard keeps the
    // zero-fault profile from consuming RNG draws (bit-identical timeline).
    int attempt = 1;
    while (link_rng_.NextBool(link_.drop_rate)) {
      sim_->metrics.counter("net.timeouts").Add();
      if (attempt >= link_.max_attempts) {
        sim_->metrics.counter("io.giveups").Add();
        return Status::Error(Errc::kIoError, "network send timed out");
      }
      attempt++;
      sim_->metrics.counter("io.retries").Add();
      sim_->metrics.counter("net.reconnects").Add();
      start += sim_->cost.net_send_timeout + sim_->cost.net_rtt;
    }
  }
  // The wire's byte time is shared across stream lanes; per-stream latency
  // (the NetTransfer half-RTT) overlaps. One lane: the stream timeline
  // includes the wire time plus latency, so the bucket below never binds and
  // this is exactly the historical serial link.
  wire_busy_ = std::max(wire_busy_, start) +
               static_cast<SimDuration>(static_cast<double>(payload) / sim_->cost.net_bytes_per_ns);
  SimTime done = std::max(start + sim_->cost.NetTransfer(payload), wire_busy_);
  lanes_.Occupy(lane, done);
  sim_->metrics.counter("backend." + name_ + ".bytes_shipped").Add(payload);
  sim_->metrics.histogram("backend." + name_ + ".transfer_time").Record(done - sim_->clock.now());
  return done;
}

Result<Oid> NetBackend::CreateMemoryObject(uint64_t size_hint) {
  // Object naming piggybacks on the stream framing; no transfer of its own.
  uint64_t oid = remote_->AllocOid();
  remote_->DeclareObject(oid, size_hint);
  return Oid{oid};
}

Result<SimTime> NetBackend::WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                             uint64_t* bytes) {
  // The page set splits round-robin over the stream lanes; each lane ships
  // its share as one framed transfer. One lane = the whole object in a
  // single transfer, the historical behavior.
  std::vector<uint64_t> lane_payload(static_cast<size_t>(lanes_.lanes()), 0);
  uint64_t page_index = 0;
  for (const auto& [pgidx, frame] : obj->pages()) {
    remote_->StagePage(oid.value, obj->size(), pgidx, frame->data.data());
    lane_payload[page_index++ % lane_payload.size()] += kPageSize + kPageHeaderBytes;
    if (pages != nullptr) {
      (*pages)++;
    }
    if (bytes != nullptr) {
      *bytes += kPageSize;
    }
  }
  if (page_index == 0) {
    return sim_->clock.now();
  }
  // Asynchronous NIC push: queue behind earlier transfers, don't stall the
  // application. Durability is arrival at the peer's image table.
  SimTime done = sim_->clock.now();
  for (size_t lane = 0; lane < lane_payload.size(); lane++) {
    if (lane_payload[lane] > 0) {
      AURORA_ASSIGN_OR_RETURN(SimTime lane_done,
                              QueueTransferOn(static_cast<int>(lane), lane_payload[lane]));
      done = std::max(done, lane_done);
    }
  }
  obj->set_busy_until(done);
  return done;
}

Result<CheckpointBackend::CommitInfo> NetBackend::CommitEpoch(
    const std::string& ckpt_name, const std::vector<uint8_t>& manifest, Oid replaces_manifest) {
  (void)replaces_manifest;  // the peer's image table is append-only
  std::string group;
  if (!manifest.empty()) {
    auto head = PeekManifest(manifest);
    if (head.ok()) {
      group = head->name;
    }
  }
  // Commit record + manifest ride one framed message, sent only after every
  // stream lane drained (the peer must hold all pages before it seals the
  // epoch); later transfers queue behind the commit on every lane.
  lanes_ = LaneSchedule(lanes_.lanes(), std::max(sim_->clock.now(), lanes_.Makespan()));
  AURORA_ASSIGN_OR_RETURN(SimTime done, QueueTransferOn(0, manifest.size() + 64));
  lanes_ = LaneSchedule(lanes_.lanes(), done);
  sim_->metrics.counter("backend." + name_ + ".epochs_committed").Add();
  return remote_->Seal(std::move(group), ckpt_name, manifest, done);
}

Result<CheckpointBackend::LoadedManifest> NetBackend::LoadManifest(const std::string& group_name,
                                                                   uint64_t epoch) {
  AURORA_ASSIGN_OR_RETURN(const MemoryBackend::ImageRecord* rec,
                          remote_->FindImage(group_name, epoch));
  // Foreground pull: the restore blocks on the round trip.
  sim_->clock.Advance(sim_->cost.NetTransfer(rec->manifest.size()));
  LoadedManifest loaded;
  loaded.epoch = rec->epoch;
  loaded.oid = rec->manifest_oid;
  loaded.blob = rec->manifest;
  return loaded;
}

Result<MemoryResolverFn> NetBackend::MakeResolver(uint64_t epoch, RestoreMode mode,
                                                  std::shared_ptr<SimTime> stream_done) {
  (void)epoch;
  MemoryBackend* remote = remote_;
  SimContext* sim = sim_;
  if (mode == RestoreMode::kFull) {
    // Pull streams: independent objects arrive on parallel lanes (latency
    // halves overlap, wire byte time is shared) while the OS state rebuilds;
    // the caller advances to the makespan at the end. One lane is the
    // historical back-to-back link.
    auto lanes = std::make_shared<LaneSchedule>(lanes_.lanes(), *stream_done);
    auto wire = std::make_shared<SimTime>(*stream_done);
    return MemoryResolverFn(
        [remote, sim, stream_done, lanes, wire](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
          auto obj = VmObject::CreateAnonymous(size);
          uint64_t payload = 0;
          if (const MemoryBackend::ObjectImage* img = remote->FindObject(oid.value)) {
            for (const auto& [pgidx, data] : img->pages) {
              obj->InstallPage(pgidx, data.data());
              payload += kPageSize + kPageHeaderBytes;
            }
          }
          int lane = lanes->NextLane();
          SimTime start = lanes->StartOn(lane, 0);
          *wire = std::max(*wire, start) +
                  static_cast<SimDuration>(static_cast<double>(payload) /
                                           sim->cost.net_bytes_per_ns);
          SimTime done = std::max(start + sim->cost.NetTransfer(payload), *wire);
          lanes->Occupy(lane, done);
          *stream_done = std::max(*stream_done, done);
          return ResolvedMemory{std::move(obj), false};
        });
  }
  if (mode == RestoreMode::kLazy) {
    return MemoryResolverFn([remote, sim](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
      auto obj = VmObject::CreateAnonymous(size);
      uint64_t key = oid.value;
      obj->set_pager([remote, sim, key](uint64_t pgidx, uint8_t* out) {
        const MemoryBackend::ObjectImage* img = remote->FindObject(key);
        if (img == nullptr) {
          return false;
        }
        auto page = img->pages.find(pgidx);
        if (page == img->pages.end()) {
          return false;
        }
        // Remote paging: one synchronous round trip per fault.
        sim->clock.Advance(sim->cost.NetTransfer(kPageSize + kPageHeaderBytes));
        std::copy(page->second.begin(), page->second.end(), out);
        return true;
      });
      return ResolvedMemory{std::move(obj), false};
    });
  }
  return Status::Error(Errc::kInvalidArgument, "kFromMemory resolves without a backend");
}

bool NetBackend::InstallPager(VmObject* base) {
  if (base->parent() != nullptr || base->sls_oid() == 0) {
    return base->has_pager();
  }
  if (base->has_pager()) {
    return true;
  }
  MemoryBackend* remote = remote_;
  SimContext* sim = sim_;
  uint64_t key = base->sls_oid();
  base->set_pager([remote, sim, key](uint64_t pgidx, uint8_t* out) {
    const MemoryBackend::ObjectImage* img = remote->FindObject(key);
    if (img == nullptr) {
      return false;
    }
    auto page = img->pages.find(pgidx);
    if (page == img->pages.end()) {
      return false;
    }
    sim->clock.Advance(sim->cost.NetTransfer(kPageSize + kPageHeaderBytes));
    std::copy(page->second.begin(), page->second.end(), out);
    return true;
  });
  return true;
}

// -----------------------------------------------------------------------------
// Shared store helpers
// -----------------------------------------------------------------------------

Result<std::pair<uint64_t, Oid>> FindManifestInStore(ObjectStore* store,
                                                     const std::string& group_name,
                                                     uint64_t epoch) {
  std::vector<CheckpointInfo> ckpts = store->ListCheckpoints();
  std::sort(ckpts.begin(), ckpts.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) { return a.epoch > b.epoch; });
  for (const CheckpointInfo& c : ckpts) {
    if (epoch != 0 && c.epoch != epoch) {
      continue;
    }
    auto oids = store->ObjectsAtEpoch(c.epoch);
    if (!oids.ok()) {
      continue;
    }
    for (Oid oid : *oids) {
      auto type = store->TypeAtEpoch(c.epoch, oid);
      if (!type.ok() || *type != ObjType::kManifest) {
        continue;
      }
      auto size = store->SizeAtEpoch(c.epoch, oid);
      if (!size.ok()) {
        continue;
      }
      std::vector<uint8_t> blob(*size);
      if (!store->ReadAtEpoch(c.epoch, oid, 0, blob.data(), blob.size()).ok()) {
        continue;
      }
      auto head = PeekManifest(blob);
      if (head.ok() && head->name == group_name) {
        return std::make_pair(c.epoch, oid);
      }
    }
    if (epoch != 0) {
      break;
    }
  }
  return Status::Error(Errc::kNotFound, "no checkpoint manifest for group " + group_name);
}

Result<CheckpointBackend::LoadedManifest> LoadManifestFromStore(ObjectStore* store,
                                                                const std::string& group_name,
                                                                uint64_t epoch) {
  AURORA_ASSIGN_OR_RETURN(auto found, FindManifestInStore(store, group_name, epoch));
  CheckpointBackend::LoadedManifest loaded;
  loaded.epoch = found.first;
  loaded.oid = found.second;
  AURORA_ASSIGN_OR_RETURN(uint64_t size, store->SizeAtEpoch(loaded.epoch, loaded.oid));
  loaded.blob.resize(size);
  AURORA_RETURN_IF_ERROR(
      store->ReadAtEpoch(loaded.epoch, loaded.oid, 0, loaded.blob.data(), loaded.blob.size()));
  return loaded;
}

// -----------------------------------------------------------------------------
// Migration stream codec
// -----------------------------------------------------------------------------

std::vector<uint8_t> EncodeCheckpointStream(const StreamPayload& payload) {
  BinaryWriter w;
  w.PutU32(kStreamMagic);
  w.PutU64(payload.epoch);
  w.PutU64(payload.since_epoch);
  w.PutBytes(payload.manifest.data(), payload.manifest.size());
  w.PutU64(payload.objects.size());
  for (const auto& [oid, data] : payload.objects) {
    w.PutU64(oid);
    w.PutU64(data.size);
    w.PutU64(data.blocks.size());
    for (const auto& [block, raw] : data.blocks) {
      w.PutU64(block);
      w.PutRaw(raw.data(), raw.size());
    }
  }
  return w.Take();
}

Result<StreamPayload> DecodeCheckpointStream(const std::vector<uint8_t>& bytes,
                                             uint32_t block_size) {
  BinaryReader r(bytes);
  AURORA_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kStreamMagic) {
    return Status::Error(Errc::kCorrupt, "bad checkpoint stream");
  }
  StreamPayload payload;
  AURORA_ASSIGN_OR_RETURN(payload.epoch, r.U64());
  AURORA_ASSIGN_OR_RETURN(payload.since_epoch, r.U64());
  AURORA_ASSIGN_OR_RETURN(payload.manifest, r.Bytes());
  AURORA_ASSIGN_OR_RETURN(uint64_t nmem, r.U64());
  for (uint64_t i = 0; i < nmem; i++) {
    AURORA_ASSIGN_OR_RETURN(uint64_t oid, r.U64());
    StreamPayload::ObjectData data;
    AURORA_ASSIGN_OR_RETURN(data.size, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t nblocks, r.U64());
    for (uint64_t b = 0; b < nblocks; b++) {
      AURORA_ASSIGN_OR_RETURN(uint64_t block, r.U64());
      std::vector<uint8_t> raw(block_size);
      AURORA_RETURN_IF_ERROR(r.Raw(raw.data(), raw.size()));
      data.blocks[block] = std::move(raw);
    }
    payload.objects.emplace_back(oid, std::move(data));
  }
  return payload;
}

}  // namespace aurora
