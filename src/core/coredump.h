// ELF64 core dump generation (the `sls dump` command, Table 2).
//
// Any checkpoint or running state can be extracted as a debugger-consumable
// core file: an ELF64 ET_CORE image with one NT_PRSTATUS note per thread
// and one PT_LOAD segment per mapped region carrying the memory contents.
#ifndef SRC_CORE_COREDUMP_H_
#define SRC_CORE_COREDUMP_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/posix/process.h"

namespace aurora {

// Renders `proc` as an ELF64 core file image.
[[nodiscard]] Result<std::vector<uint8_t>> WriteElfCore(Process* proc);

// Validation helpers used by tests and tooling.
struct ElfCoreSummary {
  uint64_t load_segments = 0;
  uint64_t note_threads = 0;
  uint64_t memory_bytes = 0;
};
[[nodiscard]] Result<ElfCoreSummary> InspectElfCore(const std::vector<uint8_t>& image);

}  // namespace aurora

#endif  // SRC_CORE_COREDUMP_H_
