// The Aurora single level store: orchestrator and application API.
//
// The Sls ties the simulated kernel, the object store and AuroraFS together
// and implements the paper's checkpoint pipeline as explicit stages:
//
//   collapse previous shadows -> quiesce -> serialize POSIX objects (each
//   exactly once) -> system shadow -> resume -> asynchronous flush ->
//   backend commit -> release externally-synchronized messages.
//
// Stop time covers quiesce through resume; everything after overlaps
// application execution. The flush/commit half talks to a pluggable
// CheckpointBackend (store, memory, net), so local checkpoints, the
// memory-backend ablation and remote checkpoints share one engine.
#ifndef SRC_CORE_SLS_H_
#define SRC_CORE_SLS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/core/backend.h"
#include "src/core/consistency_group.h"
#include "src/core/serialize.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/objstore/segment_gc.h"
#include "src/posix/kernel.h"

namespace aurora {

struct CheckpointResult {
  uint64_t epoch = 0;          // backend epoch this checkpoint committed as
  // Graceful degradation: the flush/commit exhausted its I/O retries and this
  // epoch was abandoned. The application keeps running, the previous durable
  // epoch (durable_at) stays restorable, and the dirty pages re-flush with
  // the next checkpoint.
  bool aborted = false;
  SimDuration stop_time = 0;   // application pause
  SimDuration quiesce_time = 0;
  SimDuration os_serialize_time = 0;  // Table 7's "OS state" row
  SimDuration shadow_time = 0;        // Table 7's "Memory" row (COW arming)
  SimTime durable_at = 0;      // simulated time the checkpoint became durable
  uint64_t pages_flushed = 0;
  uint64_t bytes_flushed = 0;
  SerializeStats os_state;
};

struct RestoreResult {
  ConsistencyGroup* group = nullptr;
  uint64_t epoch = 0;
  SimDuration restore_time = 0;
};

// State threaded through the checkpoint pipeline stages.
struct CheckpointContext {
  ConsistencyGroup* group = nullptr;
  CheckpointBackend* backend = nullptr;
  std::string name;
  CheckpointMode mode = CheckpointMode::kFull;
  std::vector<VmMap*> maps;
  std::vector<uint8_t> manifest;
  std::vector<ShadowPair> pairs;  // shadows frozen by this checkpoint
  SimTime begin = 0;              // pipeline entry (epoch-overlap bookkeeping)
  SimTime stop_begin = 0;         // quiesce start; stop = resume - stop_begin
  bool quiesced = false;          // stop clock is running (guards abort paths)
  SimTime durable = 0;            // folds each stage's completion time
  CheckpointResult result;
};

// State threaded through the restore pipeline stages.
struct RestoreContext {
  std::string group_name;
  uint64_t epoch = 0;
  RestoreMode mode = RestoreMode::kFull;
  CheckpointBackend* backend = nullptr;
  ConsistencyGroup* old_group = nullptr;
  std::vector<uint8_t> manifest;
  uint64_t manifest_epoch = 0;
  MemoryResolverFn resolve;
  RestoredGroup restored;
  RestoreResult result;
};

class Sls {
 public:
  Sls(SimContext* sim, Kernel* kernel, ObjectStore* store, AuroraFs* fs);
  ~Sls();

  // --- Consistency groups (sls attach / detach / ps) -----------------------
  [[nodiscard]] Result<ConsistencyGroup*> CreateGroup(const std::string& name);
  ConsistencyGroup* FindGroup(const std::string& name);
  [[nodiscard]] Status Attach(ConsistencyGroup* group, Process* proc);
  [[nodiscard]] Status Detach(Process* proc);  // makes the process ephemeral-like: leaves the group
  std::vector<ConsistencyGroup*> Groups();

  // --- Checkpoint backends -------------------------------------------------
  // Registers a backend under backend->name(); returns the raw pointer for
  // convenience. The "store" backend is registered by the constructor.
  CheckpointBackend* RegisterBackend(std::unique_ptr<CheckpointBackend> backend);
  CheckpointBackend* FindBackend(const std::string& name);
  CheckpointBackend* store_backend() { return store_backend_; }
  // Routes the group's checkpoints through `backend_name`. Only legal while
  // the group has no checkpoint state (fresh or just restored through the
  // same backend) — mixing destinations mid-chain would strand pages.
  [[nodiscard]] Status SetBackend(ConsistencyGroup* group, const std::string& backend_name);
  // Fans checkpoint flush and eager restore across `lanes` cores, each
  // driving its own device submission queue / flusher / NIC stream, on every
  // registered backend. Clamped to [1, ncpus]; 1 (the default) is the exact
  // serial timeline. Returns the clamped value.
  int SetFlushLanes(int lanes);

  // --- Checkpoint / restore ------------------------------------------------
  [[nodiscard]] Result<CheckpointResult> Checkpoint(ConsistencyGroup* group,
                                                    const std::string& name = "",
                                                    CheckpointMode mode = CheckpointMode::kFull);

  // Drives the group's periodic transparent persistence (the default 100x
  // per second) on the simulation's event queue: a checkpoint fires every
  // `group->period`, with at most `group->max_in_flight_epochs` flushes in
  // flight (1 = never before the previous flush completed), until
  // StopPeriodicCheckpoints (or process teardown). This is what `sls attach`
  // arms in the paper.
  void StartPeriodicCheckpoints(ConsistencyGroup* group);
  void StopPeriodicCheckpoints(ConsistencyGroup* group);
  // epoch 0 = newest checkpoint with a manifest for this group. `backend`
  // selects the restore source; null = the store backend.
  [[nodiscard]] Result<RestoreResult> Restore(const std::string& group_name, uint64_t epoch = 0,
                                              RestoreMode mode = RestoreMode::kFull,
                                              CheckpointBackend* backend = nullptr);

  // sls suspend / resume: checkpoint, then tear the processes down; restore
  // later (possibly after reboot).
  [[nodiscard]] Result<CheckpointResult> Suspend(ConsistencyGroup* group);
  [[nodiscard]] Result<RestoreResult> ResumeSuspended(const std::string& group_name,
                                                      RestoreMode mode = RestoreMode::kFull);

  // --- Aurora API (Table 3) ------------------------------------------------
  // sls_memckpt: atomic asynchronous checkpoint of the region containing
  // `addr`, without whole-application serialization.
  [[nodiscard]] Result<CheckpointResult> MemCheckpoint(Process* proc, uint64_t addr);
  // sls_journal: non-COW synchronous journal objects.
  [[nodiscard]] Result<Oid> JournalCreate(uint64_t capacity_bytes);
  [[nodiscard]] Status JournalAppend(Oid journal, const void* data, uint64_t len);
  [[nodiscard]] Status JournalReset(Oid journal);
  [[nodiscard]] Result<std::vector<std::vector<uint8_t>>> JournalReplay(Oid journal);
  // sls_barrier: wait until the group's last checkpoint is durable.
  [[nodiscard]] Status Barrier(ConsistencyGroup* group);
  // sls_mctl: include/exclude a memory region from checkpoints.
  [[nodiscard]] Status MemCtl(Process* proc, uint64_t addr, bool exclude);
  // sls_fdctl: per-descriptor external synchrony control.
  [[nodiscard]] Status FdCtl(Process* proc, int fd, bool disable_external_sync);

  // --- Memory overcommitment (paper section 6) -----------------------------
  // Evicts up to `target_pages` resident pages whose contents are already
  // durable in the backend (clean pages first, per the paging policy). The
  // evicted objects get backend pagers, so later faults stream the pages
  // back in — the swap path and the checkpoint path are one.
  struct EvictStats {
    uint64_t clean_evicted = 0;
    uint64_t objects_paged = 0;
  };
  [[nodiscard]] Result<EvictStats> EvictPages(ConsistencyGroup* group, uint64_t target_pages);
  // Enables the unified swap path: checkpoint flushes drop pages from memory
  // once durable (see ConsistencyGroup::evict_after_flush).
  void SetMemoryPressure(ConsistencyGroup* group, bool enabled) {
    group->evict_after_flush = enabled;
  }

  // --- External synchrony --------------------------------------------------
  // Sends on group-external sockets buffer here until the covering
  // checkpoint commits (unless disabled for the socket or the group).
  [[nodiscard]] Result<uint64_t> SendExternal(ConsistencyGroup* group,
                                              const std::shared_ptr<Socket>& socket,
                                              const void* data, uint64_t len);

  // --- Retention + segment GC ----------------------------------------------
  // Arms automatic epoch pruning for the group: after every durable full
  // checkpoint through the store backend, epochs outside the policy are
  // dropped from the store directory and (on the segment-log layout, unless
  // SetAutoGc(false)) a compaction pass reclaims the dead space.
  void SetRetentionPolicy(ConsistencyGroup* group, const RetentionPolicy& policy) {
    group->retention = policy;
  }
  void SetAutoGc(bool enabled) { gc_auto_ = enabled; }
  // The store compactor (created on first use). For the CLI, tests, and
  // manual `sls gc` passes; null only if allocation ever fails.
  SegmentGc* gc();

  // --- Introspection -------------------------------------------------------
  // Locates the manifest for `group_name` at `epoch` (0 = latest).
  [[nodiscard]] Result<std::pair<uint64_t, Oid>> FindManifest(const std::string& group_name,
                                                              uint64_t epoch);
  std::vector<CheckpointInfo> ListCheckpoints() const { return store_->ListCheckpoints(); }

  SimContext* sim() { return sim_; }
  Kernel* kernel() { return kernel_; }
  ObjectStore* store() { return store_; }
  AuroraFs* fs() { return fs_; }

 private:
  // Checkpoint pipeline stages, in order. Each takes the shared context;
  // fallible stages return Status and abort the pipeline.
  void CkptCollapse(CheckpointContext* ctx);
  // Out-of-window warm pass: serializes the OS state before the stop begins
  // so the in-window pass mostly assembles cached blobs. Failures are
  // counted, not fatal — the in-window pass simply runs with a cold cache.
  void CkptPreSerialize(CheckpointContext* ctx);
  void CkptQuiesce(CheckpointContext* ctx);
  [[nodiscard]] Status CkptSerialize(CheckpointContext* ctx);
  void CkptShadow(CheckpointContext* ctx);
  void CkptResume(CheckpointContext* ctx);
  void CkptRetainInMemory(CheckpointContext* ctx);  // kMemoryOnly epilogue
  [[nodiscard]] Status CkptAsyncFlush(CheckpointContext* ctx);
  [[nodiscard]] Status CkptCommit(CheckpointContext* ctx);
  void CkptRelease(CheckpointContext* ctx);
  // Degrade-don't-die epilogue: abandons the in-flight epoch after an I/O
  // failure, re-queueing its frozen shadows for the next checkpoint.
  void CkptAbortEpoch(CheckpointContext* ctx, const Status& cause);

  // Restore pipeline stages, in order. Fallible stages run before teardown
  // where possible so early failures leave the old incarnation untouched.
  [[nodiscard]] Status RestoreLoadManifest(RestoreContext* ctx);
  [[nodiscard]] Status RestoreBuildResolver(RestoreContext* ctx);
  void RestoreTeardownOld(RestoreContext* ctx);
  [[nodiscard]] Status RestoreNamespaceStage(RestoreContext* ctx);
  [[nodiscard]] Status RestoreMaterialize(RestoreContext* ctx);
  [[nodiscard]] Status RestoreRebindGroup(RestoreContext* ctx);

  CheckpointBackend* GroupBackend(ConsistencyGroup* group) {
    return group->backend != nullptr ? group->backend : store_backend_;
  }
  Oid EnsureMemoryOid(CheckpointBackend* backend, VmObject* obj);
  std::vector<VmMap*> GroupMaps(ConsistencyGroup* group);
  // Walks entry + shm chains, flushing never-persisted lower links.
  [[nodiscard]] Result<SimTime> FlushUnpersistedChains(CheckpointContext* ctx);
  void ReleasePendingSends(ConsistencyGroup* group);
  // Wraps every restored top object in a live shadow so the next checkpoint
  // is incremental rather than a full rewrite.
  void WrapRestoredTops(ConsistencyGroup* group);
  // Post-commit epilogue: prunes epochs outside the group's retention policy
  // and, when auto-GC is on, runs one compaction pass over the freed space.
  void ApplyRetention(CheckpointContext* ctx);

  SimContext* sim_;
  Kernel* kernel_;
  ObjectStore* store_;
  AuroraFs* fs_;

  std::vector<std::unique_ptr<CheckpointBackend>> backends_;
  CheckpointBackend* store_backend_ = nullptr;

  uint64_t next_group_id_ = 1;
  std::vector<std::unique_ptr<ConsistencyGroup>> groups_;

  // In-memory snapshot objects per group (oid -> frozen object), for
  // RestoreMode::kFromMemory and collapse bookkeeping.
  std::map<ConsistencyGroup*, std::map<uint64_t, std::shared_ptr<VmObject>>> snapshots_;
  std::map<ConsistencyGroup*, std::vector<uint8_t>> last_manifest_blobs_;
  // Per-group serialized-blob caches for the warm/assemble serialization
  // passes (see SerializeMode).
  std::map<ConsistencyGroup*, SerializeCache> serialize_caches_;
  std::map<ConsistencyGroup*, SimTime> last_durable_;
  // One stderr line the first time an epoch aborts; counters track the rest.
  bool abort_logged_ = false;
  // Store compactor, created lazily by gc(); auto-GC runs it after each
  // retention prune unless disabled.
  std::unique_ptr<SegmentGc> gc_;
  bool gc_auto_ = true;
  // Completion time of an in-progress eager restore's read stream.
  std::shared_ptr<SimTime> full_restore_done_;

  void ScheduleNextPeriodic(ConsistencyGroup* group, std::shared_ptr<bool> alive);
  std::map<ConsistencyGroup*, std::shared_ptr<bool>> periodic_;
};

}  // namespace aurora

#endif  // SRC_CORE_SLS_H_
