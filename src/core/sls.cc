#include "src/core/sls.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace aurora {

namespace {
// sls_memckpt syscall entry, checkpoint-record allocation and flusher
// handoff: the fixed cost of an atomic-region checkpoint beyond shadowing
// (calibrated to Table 5's atomic column intercept).
constexpr SimDuration kMemCkptHandoff = 72 * kMicrosecond;
}  // namespace

Sls::Sls(SimContext* sim, Kernel* kernel, ObjectStore* store, AuroraFs* fs)
    : sim_(sim), kernel_(kernel), store_(store), fs_(fs) {
  kernel_->set_rootfs(fs_);
}

Sls::~Sls() = default;

Result<ConsistencyGroup*> Sls::CreateGroup(const std::string& name) {
  if (FindGroup(name) != nullptr) {
    return Status::Error(Errc::kExists, "group exists: " + name);
  }
  groups_.push_back(std::make_unique<ConsistencyGroup>(next_group_id_++, name));
  return groups_.back().get();
}

ConsistencyGroup* Sls::FindGroup(const std::string& name) {
  for (auto& g : groups_) {
    if (g->name() == name) {
      return g.get();
    }
  }
  return nullptr;
}

Status Sls::Attach(ConsistencyGroup* group, Process* proc) {
  for (Process* p : group->processes) {
    if (p == proc) {
      return Status::Error(Errc::kExists, "process already attached");
    }
  }
  group->processes.push_back(proc);
  return Status::Ok();
}

Status Sls::Detach(Process* proc) {
  for (auto& g : groups_) {
    auto& procs = g->processes;
    auto it = std::find(procs.begin(), procs.end(), proc);
    if (it != procs.end()) {
      procs.erase(it);
      return Status::Ok();
    }
  }
  return Status::Error(Errc::kNotFound, "process not attached to any group");
}

std::vector<ConsistencyGroup*> Sls::Groups() {
  std::vector<ConsistencyGroup*> out;
  out.reserve(groups_.size());
  for (auto& g : groups_) {
    out.push_back(g.get());
  }
  return out;
}

Oid Sls::EnsureMemoryOid(VmObject* obj) {
  if (obj->sls_oid() != 0) {
    return Oid{obj->sls_oid()};
  }
  auto oid = store_->CreateObject(ObjType::kMemory, obj->size());
  if (!oid.ok()) {
    return kInvalidOid;
  }
  obj->set_sls_oid(oid->value);
  return *oid;
}

std::vector<VmMap*> Sls::GroupMaps(ConsistencyGroup* group) {
  std::vector<VmMap*> maps;
  maps.reserve(group->processes.size());
  for (Process* proc : group->processes) {
    maps.push_back(&proc->vm());
  }
  return maps;
}

namespace {
// Backs a fully-durable bottom object with the store so dropped pages
// stream back on demand — the paper's unified checkpoint/swap data path.
// Only legal for parentless anonymous objects: a catch-all pager installed
// mid-chain would shadow the links below it.
void InstallStorePager(ObjectStore* store, VmObject* base) {
  if (base->has_pager() || base->parent() != nullptr || base->sls_oid() == 0) {
    return;
  }
  Oid oid{base->sls_oid()};
  base->set_pager([store, oid](uint64_t pgidx, uint8_t* out) {
    auto blocks = store->ReadAt(oid, pgidx * kPageSize, out, kPageSize);
    return blocks.ok();
  });
}
}  // namespace

Result<Sls::EvictStats> Sls::EvictPages(ConsistencyGroup* group, uint64_t target_pages) {
  EvictStats stats;
  // Paging policy: madvise(DONTNEED) regions first, normal ones next, and
  // WILLNEED regions only under continued pressure (paper section 6).
  for (int pass_hint : {kMadvDontneed, kMadvNormal, kMadvWillneed}) {
  for (Process* proc : group->processes) {
    for (auto& [start, entry] : proc->vm().entries()) {
      if (stats.clean_evicted >= target_pages) {
        return stats;
      }
      if (entry.object->type() != VmObjectType::kAnonymous ||
          entry.madvise_hint != pass_hint) {
        continue;
      }
      // Walk to the bottom of the chain: the coldest, fully-persisted layer.
      std::shared_ptr<VmObject> base = entry.object;
      while (base->parent_ref() != nullptr) {
        base = base->parent_ref();
      }
      if (base->type() != VmObjectType::kAnonymous || base->sls_oid() == 0 ||
          group->persisted_oids.count(base->sls_oid()) == 0 || base.get() == entry.object.get()) {
        continue;  // not durable yet, or it is the live top (dirty)
      }
      InstallStorePager(store_, base.get());
      uint64_t dropped = base->DropResidentPages();
      sim_->clock.Advance(sim_->cost.pte_protect * dropped);  // pagedaemon PTE work
      stats.clean_evicted += dropped;
      if (dropped > 0) {
        stats.objects_paged++;
      }
    }
  }
  }
  return stats;
}

Result<SimTime> Sls::FlushMemoryObject(Oid oid, VmObject* obj, uint64_t* pages,
                                       uint64_t* bytes) {
  // One run per resident page; the store batches runs per 64 KiB block so
  // sparse dirty sets cost one COW block update per touched block, with
  // asynchronous RMW reads — the flush overlaps application execution.
  std::vector<ObjectStore::IoRun> runs;
  runs.reserve(obj->pages().size());
  for (const auto& [pgidx, frame] : obj->pages()) {
    runs.push_back(
        ObjectStore::IoRun{pgidx * kPageSize, frame->data.data(), kPageSize});
    if (pages != nullptr) {
      (*pages)++;
    }
    if (bytes != nullptr) {
      *bytes += kPageSize;
    }
  }
  if (runs.empty()) {
    return sim_->clock.now();
  }
  AURORA_ASSIGN_OR_RETURN(SimTime done, store_->WriteAtBatch(oid, runs));
  // The flusher walks the object with its lock held; COW faults copying
  // from it contend (see VmObject::busy_until).
  obj->set_busy_until(done);
  return done;
}

Result<SimTime> Sls::FlushUnpersistedChains(ConsistencyGroup* group, uint64_t* pages,
                                            uint64_t* bytes) {
  SimTime done = sim_->clock.now();
  std::set<const VmObject*> visited;
  auto flush_chain = [&](const std::shared_ptr<VmObject>& top) -> Status {
    std::shared_ptr<VmObject> obj = top;
    bool is_top = true;
    while (obj != nullptr && obj->type() == VmObjectType::kAnonymous) {
      if (!visited.insert(obj.get()).second) {
        break;
      }
      // The live top is the *next* checkpoint's dirty set; skip it. Lower
      // links flush once, the first time a checkpoint reaches them.
      if (!is_top && obj->sls_oid() != 0 &&
          group->persisted_oids.count(obj->sls_oid()) == 0) {
        Oid oid{obj->sls_oid()};
        auto t = FlushMemoryObject(oid, obj.get(), pages, bytes);
        if (!t.ok()) {
          return t.status();
        }
        done = std::max(done, *t);
        group->persisted_oids.insert(oid.value);
        snapshots_[group][oid.value] = obj;
      }
      is_top = false;
      obj = obj->parent_ref();
    }
    return Status::Ok();
  };
  for (Process* proc : group->processes) {
    for (auto& [start, entry] : proc->vm().entries()) {
      if (entry.object->type() == VmObjectType::kAnonymous &&
          !entry.exclude_from_checkpoint) {
        AURORA_RETURN_IF_ERROR(flush_chain(entry.object));
      }
    }
    for (const auto& slot : proc->fds().slots()) {
      if (slot.desc != nullptr && slot.desc->object != nullptr &&
          slot.desc->object->type() == FileType::kShm) {
        auto* shm = static_cast<SharedMemory*>(slot.desc->object.get());
        if (shm->object != nullptr) {
          AURORA_RETURN_IF_ERROR(flush_chain(shm->object));
        }
      }
    }
  }
  return done;
}

Result<CheckpointResult> Sls::Checkpoint(ConsistencyGroup* group, const std::string& name,
                                         CheckpointMode mode) {
  std::vector<VmMap*> maps = GroupMaps(group);
  SpanTracer& tracer = sim_->tracer;
  MetricsRegistry& metrics = sim_->metrics;
  tracer.NewScope();

  // Step 0: eagerly collapse the shadows flushed by the previous checkpoint
  // (paper section 6: chains capped at two). After a collapse the in-memory
  // snapshot for that region is the merged base.
  size_t collapse_span = tracer.Begin("ckpt.collapse");
  for (const ShadowPair& pair : group->pending_collapse) {
    uint64_t oid = pair.frozen->sls_oid();
    if (CollapseAfterFlush(pair, maps, group->collapse_reversed, sim_)) {
      std::shared_ptr<VmObject> base = pair.live->parent_ref();
      snapshots_[group][oid] = base;
      if (group->evict_after_flush && base != nullptr && base->parent() == nullptr &&
          group->persisted_oids.count(base->sls_oid()) > 0) {
        // Memory overcommitment: the merged base equals the store's state at
        // the flushed epoch, so its frames can be dropped and demand-paged
        // back — swapping and checkpointing share one data path (paper 6).
        InstallStorePager(store_, base.get());
        uint64_t dropped = base->DropResidentPages();
        sim_->clock.Advance(sim_->cost.pte_protect * dropped);
      }
    }
  }
  group->pending_collapse.clear();
  tracer.End(collapse_span);

  SimStopwatch stop(sim_->clock);

  // Step 1: quiesce every thread at the kernel boundary.
  CheckpointResult result;
  size_t quiesce_span = tracer.Begin("ckpt.quiesce");
  SimStopwatch quiesce_watch(sim_->clock);
  kernel_->Quiesce(group->processes);
  result.quiesce_time = quiesce_watch.Elapsed();
  tracer.End(quiesce_span);

  // Step 2: persist the file system namespace, then serialize the POSIX
  // object graph exactly once per object.
  size_t serialize_span = tracer.Begin("ckpt.serialize");
  SimStopwatch serialize_watch(sim_->clock);
  Oid ns_oid = kInvalidOid;
  if (mode == CheckpointMode::kFull) {
    AURORA_ASSIGN_OR_RETURN(ns_oid, fs_->PersistNamespace());
  }
  auto ensure = [this](VmObject* obj) { return EnsureMemoryOid(obj); };
  AURORA_ASSIGN_OR_RETURN(
      std::vector<uint8_t> manifest,
      SerializeOsState(sim_, *group, store_->current_epoch(), ns_oid, ensure, &result.os_state));
  result.os_serialize_time = serialize_watch.Elapsed();
  tracer.End(serialize_span);

  // Step 3: system shadowing across the whole group.
  size_t shadow_span = tracer.Begin("ckpt.shadow");
  SimStopwatch shadow_watch(sim_->clock);
  SystemShadowStats shadow_stats;
  std::vector<ShadowPair> pairs = CreateSystemShadows(
      maps, sim_,
      [this](VmObject* old_top, std::shared_ptr<VmObject> new_top) {
        kernel_->RebindShmObjects(old_top, new_top);
      },
      &shadow_stats);
  for (const ShadowPair& pair : pairs) {
    snapshots_[group][pair.frozen->sls_oid()] = pair.frozen;
  }

  result.shadow_time = shadow_watch.Elapsed();
  tracer.End(shadow_span);

  // Step 4: resume; the application runs concurrently with the flush.
  kernel_->Resume(group->processes);
  result.stop_time = stop.Elapsed();
  group->stop_times.Record(result.stop_time);
  group->checkpoints_taken++;
  last_manifest_blobs_[group] = manifest;

  metrics.counter("ckpt.checkpoints").Add();
  metrics.histogram("ckpt.stop_time").Record(result.stop_time);
  metrics.histogram("ckpt.quiesce").Record(result.quiesce_time);
  metrics.histogram("ckpt.serialize").Record(result.os_serialize_time);
  metrics.histogram("ckpt.shadow").Record(result.shadow_time);

  if (mode == CheckpointMode::kMemoryOnly) {
    // Not durable: these frozen shadows hold pages the store has not seen.
    // They stay un-collapsed until a full checkpoint flushes them.
    for (ShadowPair& pair : pairs) {
      group->unflushed_frozen.push_back(std::move(pair));
    }
    metrics.counter("ckpt.memory_only").Add();
    result.durable_at = sim_->clock.now();
    last_durable_[group] = result.durable_at;
    return result;
  }

  // Step 5: asynchronous flush. Frozen shadows stream their dirty pages into
  // their region objects; chain links never persisted flush once. Shadows
  // left behind by memory-only checkpoints flush first (oldest data).
  size_t flush_span = tracer.Begin("ckpt.flush");
  SimTime durable = sim_->clock.now();
  for (const ShadowPair& pair : group->unflushed_frozen) {
    Oid oid{pair.frozen->sls_oid()};
    if (!oid.valid()) {
      continue;
    }
    AURORA_ASSIGN_OR_RETURN(
        SimTime t, FlushMemoryObject(oid, pair.frozen.get(), &result.pages_flushed,
                                     &result.bytes_flushed));
    durable = std::max(durable, t);
    group->persisted_oids.insert(oid.value);
  }
  for (const ShadowPair& pair : pairs) {
    Oid oid{pair.frozen->sls_oid()};
    if (!oid.valid()) {
      continue;  // excluded region
    }
    AURORA_ASSIGN_OR_RETURN(
        SimTime t, FlushMemoryObject(oid, pair.frozen.get(), &result.pages_flushed,
                                     &result.bytes_flushed));
    durable = std::max(durable, t);
    group->persisted_oids.insert(oid.value);
  }
  AURORA_ASSIGN_OR_RETURN(
      SimTime chains_done,
      FlushUnpersistedChains(group, &result.pages_flushed, &result.bytes_flushed));
  durable = std::max(durable, chains_done);

  // File system dirty data obeys checkpoint consistency: it flushes with the
  // checkpoint, which is why fsync can be a no-op.
  AURORA_ASSIGN_OR_RETURN(SimTime fs_done, fs_->FlushAll());
  durable = std::max(durable, fs_done);
  // The flush phase ends when its last asynchronous write lands, which is in
  // the simulated future relative to now (the application already resumed).
  tracer.EndAt(flush_span, durable);

  // Manifest object for this epoch; the previous one leaves the live table
  // (it remains readable at its own epoch).
  size_t commit_span = tracer.Begin("ckpt.commit");
  AURORA_ASSIGN_OR_RETURN(Oid manifest_oid, store_->CreateObject(ObjType::kManifest));
  AURORA_ASSIGN_OR_RETURN(SimTime manifest_done,
                          store_->WriteAt(manifest_oid, 0, manifest.data(), manifest.size()));
  durable = std::max(durable, manifest_done);
  if (group->last_manifest.valid()) {
    (void)store_->DeleteObject(group->last_manifest);
  }

  uint64_t committed_epoch = store_->current_epoch();
  AURORA_ASSIGN_OR_RETURN(SimTime commit_done, store_->CommitCheckpoint(name));
  durable = std::max(durable, commit_done);
  tracer.EndAt(commit_span, std::max(manifest_done, commit_done));

  group->last_manifest = manifest_oid;
  group->last_manifest_epoch = committed_epoch;
  // Collapse order matters: oldest (deepest) shadows first.
  group->pending_collapse = std::move(group->unflushed_frozen);
  group->unflushed_frozen.clear();
  for (ShadowPair& pair : pairs) {
    group->pending_collapse.push_back(std::move(pair));
  }
  group->bytes_flushed_total += result.bytes_flushed;
  result.epoch = committed_epoch;
  result.durable_at = durable;
  last_durable_[group] = durable;

  metrics.counter("ckpt.pages_flushed").Add(result.pages_flushed);
  metrics.counter("ckpt.bytes_flushed").Add(result.bytes_flushed);
  // Wall time from resume until the checkpoint is fully durable: how long
  // held messages and the next periodic checkpoint wait on the device.
  metrics.histogram("ckpt.durability_lag").Record(durable - sim_->clock.now());

  // External synchrony: messages held since the previous checkpoint are
  // released once this one is durable.
  size_t release_span = tracer.Begin("ckpt.release");
  if (!group->pending_sends.empty()) {
    auto sends = std::make_shared<std::vector<ConsistencyGroup::PendingSend>>(
        std::move(group->pending_sends));
    group->pending_sends.clear();
    sim_->events.At(durable, [sends]() {
      for (auto& send : *sends) {
        (void)send.socket->Send(send.data.data(), send.data.size());
      }
    });
  }
  tracer.EndAt(release_span, durable);
  return result;
}

void Sls::StartPeriodicCheckpoints(ConsistencyGroup* group) {
  if (periodic_.count(group) > 0) {
    return;
  }
  auto alive = std::make_shared<bool>(true);
  periodic_[group] = alive;
  ScheduleNextPeriodic(group, alive);
}

void Sls::StopPeriodicCheckpoints(ConsistencyGroup* group) {
  auto it = periodic_.find(group);
  if (it != periodic_.end()) {
    *it->second = false;
    periodic_.erase(it);
  }
}

void Sls::ScheduleNextPeriodic(ConsistencyGroup* group, std::shared_ptr<bool> alive) {
  sim_->events.After(group->period, [this, group, alive]() {
    if (!*alive || group->suspended || group->processes.empty()) {
      return;
    }
    auto ckpt = Checkpoint(group);
    if (ckpt.ok() && ckpt->durable_at > sim_->clock.now() + group->period) {
      // The store must finish persisting a checkpoint before the next one
      // starts (paper section 7); stretch the schedule to durability.
      sim_->events.At(ckpt->durable_at, [this, group, alive]() {
        if (*alive) {
          ScheduleNextPeriodic(group, alive);
        }
      });
      return;
    }
    ScheduleNextPeriodic(group, alive);
  });
}

void Sls::ReleasePendingSends(ConsistencyGroup* group) {
  for (auto& send : group->pending_sends) {
    (void)send.socket->Send(send.data.data(), send.data.size());
  }
  group->pending_sends.clear();
}

Result<uint64_t> Sls::SendExternal(ConsistencyGroup* group,
                                   const std::shared_ptr<Socket>& socket, const void* data,
                                   uint64_t len) {
  if (!group->external_sync || socket->external_sync_disabled) {
    return socket->Send(data, len);
  }
  ConsistencyGroup::PendingSend send;
  send.socket = socket;
  const auto* p = static_cast<const uint8_t*>(data);
  send.data.assign(p, p + len);
  group->pending_sends.push_back(std::move(send));
  return len;
}

Result<std::pair<uint64_t, Oid>> Sls::FindManifest(const std::string& group_name,
                                                   uint64_t epoch) {
  std::vector<CheckpointInfo> ckpts = store_->ListCheckpoints();
  std::sort(ckpts.begin(), ckpts.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) { return a.epoch > b.epoch; });
  for (const CheckpointInfo& c : ckpts) {
    if (epoch != 0 && c.epoch != epoch) {
      continue;
    }
    auto oids = store_->ObjectsAtEpoch(c.epoch);
    if (!oids.ok()) {
      continue;
    }
    for (Oid oid : *oids) {
      auto type = store_->TypeAtEpoch(c.epoch, oid);
      if (!type.ok() || *type != ObjType::kManifest) {
        continue;
      }
      auto size = store_->SizeAtEpoch(c.epoch, oid);
      if (!size.ok()) {
        continue;
      }
      std::vector<uint8_t> blob(*size);
      if (!store_->ReadAtEpoch(c.epoch, oid, 0, blob.data(), blob.size()).ok()) {
        continue;
      }
      auto head = PeekManifest(blob);
      if (head.ok() && head->name == group_name) {
        return std::make_pair(c.epoch, oid);
      }
    }
    if (epoch != 0) {
      break;
    }
  }
  return Status::Error(Errc::kNotFound, "no checkpoint manifest for group " + group_name);
}

void Sls::WrapRestoredTops(ConsistencyGroup* group) {
  // One batched shadow pass (one TLB shootdown per address space): the
  // restored tops freeze as already-persisted bases and new empty shadows
  // take the writes, so the first post-restore checkpoint is incremental.
  std::vector<VmMap*> maps = GroupMaps(group);
  std::vector<ShadowPair> pairs = CreateSystemShadows(
      maps, sim_,
      [this](VmObject* old_top, std::shared_ptr<VmObject> new_top) {
        kernel_->RebindShmObjects(old_top, new_top);
      },
      nullptr);
  (void)pairs;  // frozen bases are already persisted; nothing to flush
}

Result<RestoreResult> Sls::Restore(const std::string& group_name, uint64_t epoch,
                                   RestoreMode mode) {
  SimStopwatch watch(sim_->clock);
  sim_->tracer.NewScope();
  size_t restore_span = sim_->tracer.Begin("restore");

  std::vector<uint8_t> manifest;
  uint64_t manifest_epoch = 0;
  ConsistencyGroup* old_group = FindGroup(group_name);

  if (mode == RestoreMode::kFromMemory) {
    if (old_group == nullptr || last_manifest_blobs_.count(old_group) == 0) {
      return Status::Error(Errc::kNotFound, "no in-memory checkpoint for " + group_name);
    }
    manifest = last_manifest_blobs_[old_group];
  } else {
    AURORA_ASSIGN_OR_RETURN(auto found, FindManifest(group_name, epoch));
    manifest_epoch = found.first;
    AURORA_ASSIGN_OR_RETURN(uint64_t size, store_->SizeAtEpoch(manifest_epoch, found.second));
    manifest.resize(size);
    AURORA_RETURN_IF_ERROR(
        store_->ReadAtEpoch(manifest_epoch, found.second, 0, manifest.data(), manifest.size()));
  }

  // Build the memory resolver for the selected mode.
  MemoryResolverFn resolve;
  std::map<uint64_t, std::shared_ptr<VmObject>> old_snapshots;
  if (old_group != nullptr && snapshots_.count(old_group) > 0) {
    old_snapshots = snapshots_[old_group];
  }
  if (mode == RestoreMode::kFromMemory) {
    resolve = [&old_snapshots](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
      auto it = old_snapshots.find(oid.value);
      if (it == old_snapshots.end()) {
        // Region created after the last checkpoint: empty anonymous memory.
        return ResolvedMemory{VmObject::CreateAnonymous(size), true};
      }
      return ResolvedMemory{it->second, true};
    };
  } else if (mode == RestoreMode::kFull) {
    // Eager restore streams every object's blocks with pipelined reads; the
    // caller advances to the stream's completion once at the end.
    auto stream_done = std::make_shared<SimTime>(sim_->clock.now());
    full_restore_done_ = stream_done;
    resolve = [this, manifest_epoch, stream_done](Oid oid,
                                                  uint64_t size) -> Result<ResolvedMemory> {
      auto obj = VmObject::CreateAnonymous(size);
      auto blocks = store_->BlocksAtEpoch(manifest_epoch, oid);
      if (blocks.ok()) {
        uint32_t bs = store_->block_size();
        std::vector<uint8_t> buf(bs);
        for (uint64_t block : *blocks) {
          AURORA_RETURN_IF_ERROR(store_->ReadAtEpoch(manifest_epoch, oid, block * bs,
                                                     buf.data(), bs, stream_done.get()));
          for (uint64_t p = 0; p < bs / kPageSize; p++) {
            obj->InstallPage(block * (bs / kPageSize) + p, buf.data() + p * kPageSize);
          }
        }
      }
      return ResolvedMemory{std::move(obj), false};
    };
  } else {  // kLazy
    resolve = [this, manifest_epoch](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
      auto obj = VmObject::CreateAnonymous(size);
      auto blocks = store_->BlocksAtEpoch(manifest_epoch, oid);
      auto present = std::make_shared<std::set<uint64_t>>();
      if (blocks.ok()) {
        present->insert(blocks->begin(), blocks->end());
      }
      ObjectStore* store = store_;
      uint32_t bs = store_->block_size();
      obj->set_pager([store, manifest_epoch, oid, present, bs](uint64_t pgidx, uint8_t* out) {
        uint64_t block = pgidx * kPageSize / bs;
        if (present->count(block) == 0) {
          return false;
        }
        return store->ReadAtEpoch(manifest_epoch, oid, pgidx * kPageSize, out, kPageSize).ok();
      });
      return ResolvedMemory{std::move(obj), false};
    };
  }

  // Tear down the previous incarnation (rollback semantics).
  if (old_group != nullptr) {
    for (Process* proc : old_group->processes) {
      kernel_->DestroyProcess(proc);
    }
    old_group->processes.clear();
  }

  // Namespace first so vnode lookups by inode succeed.
  if (mode != RestoreMode::kFromMemory) {
    auto head = PeekManifest(manifest);
    if (head.ok() && head->namespace_oid.valid()) {
      AURORA_RETURN_IF_ERROR(fs_->RestoreNamespace(manifest_epoch, head->namespace_oid));
    }
  }

  AURORA_ASSIGN_OR_RETURN(RestoredGroup restored,
                          RestoreOsState(sim_, kernel_, fs_, manifest, resolve));

  ConsistencyGroup* group = old_group;
  if (group == nullptr) {
    AURORA_ASSIGN_OR_RETURN(group, CreateGroup(group_name));
  }
  group->processes = restored.processes;
  group->suspended = false;
  group->pending_collapse.clear();
  group->unflushed_frozen.clear();
  group->pending_sends.clear();

  // Every region named by the manifest is durable at this epoch (or, for
  // memory restores, lives in the retained snapshot objects).
  group->persisted_oids.clear();
  auto& snapshot_map = snapshots_[group];
  if (mode != RestoreMode::kFromMemory) {
    snapshot_map.clear();
  }
  WrapRestoredTops(group);
  for (Process* proc : group->processes) {
    for (auto& [start, entry] : proc->vm().entries()) {
      std::shared_ptr<VmObject> obj = entry.object;
      while (obj != nullptr) {
        if (obj->sls_oid() != 0) {
          group->persisted_oids.insert(obj->sls_oid());
          if (obj->frozen()) {
            snapshot_map[obj->sls_oid()] = obj;
          }
        }
        obj = obj->parent_ref();
      }
    }
  }
  last_manifest_blobs_[group] = manifest;

  if (mode == RestoreMode::kFull && full_restore_done_ != nullptr) {
    sim_->clock.AdvanceTo(*full_restore_done_);
    full_restore_done_.reset();
  }

  RestoreResult result;
  result.group = group;
  result.epoch = mode == RestoreMode::kFromMemory ? restored.epoch : manifest_epoch;
  result.restore_time = watch.Elapsed();
  sim_->tracer.End(restore_span);
  sim_->metrics.counter("restore.restores").Add();
  sim_->metrics.histogram("restore.time").Record(result.restore_time);
  return result;
}

Result<CheckpointResult> Sls::Suspend(ConsistencyGroup* group) {
  AURORA_ASSIGN_OR_RETURN(CheckpointResult result,
                          Checkpoint(group, "suspend:" + group->name()));
  sim_->clock.AdvanceTo(result.durable_at);
  for (Process* proc : group->processes) {
    kernel_->DestroyProcess(proc);
  }
  group->processes.clear();
  group->pending_collapse.clear();
  group->unflushed_frozen.clear();
  group->suspended = true;
  return result;
}

Result<RestoreResult> Sls::ResumeSuspended(const std::string& group_name, RestoreMode mode) {
  return Restore(group_name, 0, mode);
}

Result<CheckpointResult> Sls::MemCheckpoint(Process* proc, uint64_t addr) {
  VmMapEntry* entry = proc->vm().FindEntry(addr);
  if (entry == nullptr) {
    return Status::Error(Errc::kNotFound, "no mapping at address");
  }
  if (entry->object->type() != VmObjectType::kAnonymous) {
    return Status::Error(Errc::kNotSupported, "atomic checkpoints cover anonymous memory");
  }
  ConsistencyGroup* group = nullptr;
  for (auto& g : groups_) {
    if (std::find(g->processes.begin(), g->processes.end(), proc) != g->processes.end()) {
      group = g.get();
      break;
    }
  }
  if (group == nullptr) {
    return Status::Error(Errc::kBadState, "process not in a consistency group");
  }

  SimStopwatch watch(sim_->clock);
  sim_->clock.Advance(kMemCkptHandoff);

  std::vector<VmMap*> maps = GroupMaps(group);
  Oid oid = EnsureMemoryOid(entry->object.get());
  // Copy the shared_ptr: rebinding replaces entry->object itself.
  std::shared_ptr<VmObject> region = entry->object;
  ShadowPair pair = ShadowOneObject(
      region, maps, sim_,
      [this](VmObject* old_top, std::shared_ptr<VmObject> new_top) {
        kernel_->RebindShmObjects(old_top, new_top);
      });
  snapshots_[group][oid.value] = pair.frozen;

  CheckpointResult result;
  result.stop_time = watch.Elapsed();

  // Asynchronous flush of the shadowed region, then a store commit so the
  // atomic checkpoint is independently durable and composes with the most
  // recent full checkpoint at restore.
  AURORA_ASSIGN_OR_RETURN(
      SimTime flushed,
      FlushMemoryObject(oid, pair.frozen.get(), &result.pages_flushed, &result.bytes_flushed));
  group->persisted_oids.insert(oid.value);
  uint64_t committed_epoch = store_->current_epoch();
  AURORA_ASSIGN_OR_RETURN(SimTime commit_done, store_->CommitCheckpoint("memckpt"));
  result.epoch = committed_epoch;
  result.durable_at = std::max(flushed, commit_done);
  last_durable_[group] = std::max(last_durable_[group], result.durable_at);
  group->pending_collapse.push_back(pair);
  sim_->metrics.counter("ckpt.memckpts").Add();
  sim_->metrics.histogram("ckpt.memckpt_stop").Record(result.stop_time);
  return result;
}

Result<Oid> Sls::JournalCreate(uint64_t capacity_bytes) {
  return store_->CreateJournal(capacity_bytes);
}

Status Sls::JournalAppend(Oid journal, const void* data, uint64_t len) {
  return store_->JournalAppend(journal, data, len);
}

Status Sls::JournalReset(Oid journal) { return store_->JournalReset(journal); }

Result<std::vector<std::vector<uint8_t>>> Sls::JournalReplay(Oid journal) {
  return store_->JournalReplay(journal);
}

Status Sls::Barrier(ConsistencyGroup* group) {
  auto it = last_durable_.find(group);
  if (it != last_durable_.end()) {
    sim_->clock.AdvanceTo(it->second);
  }
  ReleasePendingSends(group);
  return Status::Ok();
}

Status Sls::MemCtl(Process* proc, uint64_t addr, bool exclude) {
  VmMapEntry* entry = proc->vm().FindEntry(addr);
  if (entry == nullptr) {
    return Status::Error(Errc::kNotFound, "no mapping at address");
  }
  entry->exclude_from_checkpoint = exclude;
  return Status::Ok();
}

Status Sls::FdCtl(Process* proc, int fd, bool disable_external_sync) {
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, proc->fds().Get(fd));
  if (desc->object == nullptr || desc->object->type() != FileType::kSocket) {
    return Status::Error(Errc::kInvalidArgument, "fdctl targets sockets");
  }
  static_cast<Socket*>(desc->object.get())->external_sync_disabled = disable_external_sync;
  return Status::Ok();
}

}  // namespace aurora
