#include "src/core/sls.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <set>

namespace aurora {

namespace {
// sls_memckpt syscall entry, checkpoint-record allocation and flusher
// handoff: the fixed cost of an atomic-region checkpoint beyond shadowing
// (calibrated to Table 5's atomic column intercept).
constexpr SimDuration kMemCkptHandoff = 72 * kMicrosecond;
}  // namespace

Sls::Sls(SimContext* sim, Kernel* kernel, ObjectStore* store, AuroraFs* fs)
    : sim_(sim), kernel_(kernel), store_(store), fs_(fs) {
  kernel_->set_rootfs(fs_);
  store_backend_ = RegisterBackend(std::make_unique<StoreBackend>(sim_, store_, fs_));
}

Sls::~Sls() = default;

CheckpointBackend* Sls::RegisterBackend(std::unique_ptr<CheckpointBackend> backend) {
  backends_.push_back(std::move(backend));
  return backends_.back().get();
}

CheckpointBackend* Sls::FindBackend(const std::string& name) {
  for (auto& b : backends_) {
    if (b->name() == name) {
      return b.get();
    }
  }
  return nullptr;
}

int Sls::SetFlushLanes(int lanes) {
  lanes = std::max(1, std::min(lanes, sim_->ncpus));
  sim_->flush_lanes = lanes;
  for (auto& b : backends_) {
    b->SetFlushLanes(lanes);
  }
  sim_->metrics.gauge("flush.lanes").Set(static_cast<int64_t>(lanes));
  return lanes;
}

Status Sls::SetBackend(ConsistencyGroup* group, const std::string& backend_name) {
  CheckpointBackend* backend = FindBackend(backend_name);
  if (backend == nullptr) {
    return Status::Error(Errc::kNotFound, "no such backend: " + backend_name);
  }
  if (GroupBackend(group) == backend) {
    return Status::Ok();
  }
  if (!group->pending_collapse.empty() || !group->unflushed_frozen.empty() ||
      !group->persisted_oids.empty()) {
    return Status::Error(Errc::kBadState,
                         "group has checkpoint state; backends switch on fresh groups only");
  }
  group->backend = backend;
  return Status::Ok();
}

Result<ConsistencyGroup*> Sls::CreateGroup(const std::string& name) {
  if (FindGroup(name) != nullptr) {
    return Status::Error(Errc::kExists, "group exists: " + name);
  }
  groups_.push_back(std::make_unique<ConsistencyGroup>(next_group_id_++, name));
  return groups_.back().get();
}

ConsistencyGroup* Sls::FindGroup(const std::string& name) {
  for (auto& g : groups_) {
    if (g->name() == name) {
      return g.get();
    }
  }
  return nullptr;
}

Status Sls::Attach(ConsistencyGroup* group, Process* proc) {
  for (Process* p : group->processes) {
    if (p == proc) {
      return Status::Error(Errc::kExists, "process already attached");
    }
  }
  group->processes.push_back(proc);
  return Status::Ok();
}

Status Sls::Detach(Process* proc) {
  for (auto& g : groups_) {
    auto& procs = g->processes;
    auto it = std::find(procs.begin(), procs.end(), proc);
    if (it != procs.end()) {
      procs.erase(it);
      return Status::Ok();
    }
  }
  return Status::Error(Errc::kNotFound, "process not attached to any group");
}

std::vector<ConsistencyGroup*> Sls::Groups() {
  std::vector<ConsistencyGroup*> out;
  out.reserve(groups_.size());
  for (auto& g : groups_) {
    out.push_back(g.get());
  }
  return out;
}

Oid Sls::EnsureMemoryOid(CheckpointBackend* backend, VmObject* obj) {
  if (obj->sls_oid() != 0) {
    return Oid{obj->sls_oid()};
  }
  auto oid = backend->CreateMemoryObject(obj->size());
  if (!oid.ok()) {
    return kInvalidOid;
  }
  obj->set_sls_oid(oid->value);
  return *oid;
}

std::vector<VmMap*> Sls::GroupMaps(ConsistencyGroup* group) {
  std::vector<VmMap*> maps;
  maps.reserve(group->processes.size());
  for (Process* proc : group->processes) {
    maps.push_back(&proc->vm());
  }
  return maps;
}

Result<Sls::EvictStats> Sls::EvictPages(ConsistencyGroup* group, uint64_t target_pages) {
  EvictStats stats;
  CheckpointBackend* backend = GroupBackend(group);
  // Paging policy: madvise(DONTNEED) regions first, normal ones next, and
  // WILLNEED regions only under continued pressure (paper section 6).
  for (int pass_hint : {kMadvDontneed, kMadvNormal, kMadvWillneed}) {
  for (Process* proc : group->processes) {
    for (auto& [start, entry] : proc->vm().entries()) {
      if (stats.clean_evicted >= target_pages) {
        return stats;
      }
      if (entry.object->type() != VmObjectType::kAnonymous ||
          entry.madvise_hint != pass_hint) {
        continue;
      }
      // Walk to the bottom of the chain: the coldest, fully-persisted layer.
      std::shared_ptr<VmObject> base = entry.object;
      while (base->parent_ref() != nullptr) {
        base = base->parent_ref();
      }
      if (base->type() != VmObjectType::kAnonymous || base->sls_oid() == 0 ||
          group->persisted_oids.count(base->sls_oid()) == 0 || base.get() == entry.object.get()) {
        continue;  // not durable yet, or it is the live top (dirty)
      }
      if (!backend->InstallPager(base.get())) {
        continue;  // backend cannot page this object; keep it resident
      }
      uint64_t dropped = base->DropResidentPages();
      sim_->clock.Advance(sim_->cost.pte_protect * dropped);  // pagedaemon PTE work
      stats.clean_evicted += dropped;
      if (dropped > 0) {
        stats.objects_paged++;
      }
    }
  }
  }
  return stats;
}

Result<SimTime> Sls::FlushUnpersistedChains(CheckpointContext* ctx) {
  ConsistencyGroup* group = ctx->group;
  uint64_t* pages = &ctx->result.pages_flushed;
  uint64_t* bytes = &ctx->result.bytes_flushed;
  SimTime done = sim_->clock.now();
  std::set<const VmObject*> visited;
  auto flush_chain = [&](const std::shared_ptr<VmObject>& top) -> Status {
    std::shared_ptr<VmObject> obj = top;
    bool is_top = true;
    while (obj != nullptr && obj->type() == VmObjectType::kAnonymous) {
      if (!visited.insert(obj.get()).second) {
        break;
      }
      // The live top is the *next* checkpoint's dirty set; skip it. Lower
      // links flush once, the first time a checkpoint reaches them.
      if (!is_top && obj->sls_oid() != 0 &&
          group->persisted_oids.count(obj->sls_oid()) == 0) {
        Oid oid{obj->sls_oid()};
        auto t = ctx->backend->WriteObjectPages(oid, obj.get(), pages, bytes);
        if (!t.ok()) {
          return t.status();
        }
        done = std::max(done, *t);
        group->persisted_oids.insert(oid.value);
        snapshots_[group][oid.value] = obj;
      }
      is_top = false;
      obj = obj->parent_ref();
    }
    return Status::Ok();
  };
  for (Process* proc : group->processes) {
    for (auto& [start, entry] : proc->vm().entries()) {
      if (entry.object->type() == VmObjectType::kAnonymous &&
          !entry.exclude_from_checkpoint) {
        AURORA_RETURN_IF_ERROR(flush_chain(entry.object));
      }
    }
    for (const auto& slot : proc->fds().slots()) {
      if (slot.desc != nullptr && slot.desc->object != nullptr &&
          slot.desc->object->type() == FileType::kShm) {
        auto* shm = static_cast<SharedMemory*>(slot.desc->object.get());
        if (shm->object != nullptr) {
          AURORA_RETURN_IF_ERROR(flush_chain(shm->object));
        }
      }
    }
  }
  return done;
}

// --- Checkpoint pipeline stages ---------------------------------------------

void Sls::CkptCollapse(CheckpointContext* ctx) {
  // Eagerly collapse the shadows flushed by the previous checkpoint (paper
  // section 6: chains capped at two). After a collapse the in-memory
  // snapshot for that region is the merged base. The flushed data was staged
  // at flush time — only its durability may still lie in the future — so
  // collapsing under an in-flight flush is safe.
  ConsistencyGroup* group = ctx->group;
  size_t collapse_span = sim_->tracer.Begin("ckpt.collapse");
  for (const ShadowPair& pair : group->pending_collapse) {
    uint64_t oid = pair.frozen->sls_oid();
    if (CollapseAfterFlush(pair, ctx->maps, group->collapse_reversed, sim_)) {
      std::shared_ptr<VmObject> base = pair.live->parent_ref();
      snapshots_[group][oid] = base;
      if (group->evict_after_flush && base != nullptr && base->parent() == nullptr &&
          group->persisted_oids.count(base->sls_oid()) > 0 &&
          ctx->backend->InstallPager(base.get())) {
        // Memory overcommitment: the merged base equals the backend's state
        // at the flushed epoch, so its frames can be dropped and demand-paged
        // back — swapping and checkpointing share one data path (paper 6).
        uint64_t dropped = base->DropResidentPages();
        sim_->clock.Advance(sim_->cost.pte_protect * dropped);
      }
    }
  }
  group->pending_collapse.clear();
  sim_->tracer.End(collapse_span);
}

void Sls::CkptPreSerialize(CheckpointContext* ctx) {
  // Warm the serialization cache while the application still runs: every
  // entity serialized at fresh cost here is a cheap block copy inside the
  // stopped window. The manifest built here is discarded (its header names
  // an epoch and namespace OID that do not exist yet); only the cache
  // survives into CkptSerialize.
  if (ctx->group->legacy_stop_path) {
    return;
  }
  size_t span = sim_->tracer.Begin("ckpt.preserialize");
  SerializeCache& cache = serialize_caches_[ctx->group];
  cache.pass++;
  auto ensure = [this, ctx](VmObject* obj) { return EnsureMemoryOid(ctx->backend, obj); };
  Result<std::vector<uint8_t>> warm =
      SerializeOsState(sim_, *ctx->group, ctx->backend->current_epoch(), kInvalidOid, ensure,
                       nullptr, SerializeMode::kWarmCache, &cache);
  if (!warm.ok()) {
    // Not fatal: the in-window pass simply runs against a colder cache.
    sim_->metrics.counter("ckpt.preserialize_failures").Add(1);
  }
  sim_->tracer.End(span);
}

void Sls::CkptQuiesce(CheckpointContext* ctx) {
  // Quiesce every thread at the kernel boundary. Stop time starts here.
  ctx->stop_begin = sim_->clock.now();
  ctx->quiesced = true;
  size_t quiesce_span = sim_->tracer.Begin("ckpt.quiesce");
  SimStopwatch quiesce_watch(sim_->clock);
  kernel_->Quiesce(ctx->group->processes);
  ctx->result.quiesce_time = quiesce_watch.Elapsed();
  sim_->tracer.End(quiesce_span);
}

Status Sls::CkptSerialize(CheckpointContext* ctx) {
  // Persist the file system namespace, then serialize the POSIX object
  // graph exactly once per object.
  size_t serialize_span = sim_->tracer.Begin("ckpt.serialize");
  SimStopwatch serialize_watch(sim_->clock);
  Oid ns_oid = kInvalidOid;
  if (ctx->mode == CheckpointMode::kFull) {
    AURORA_ASSIGN_OR_RETURN(ns_oid, ctx->backend->PersistNamespace());
  }
  auto ensure = [this, ctx](VmObject* obj) { return EnsureMemoryOid(ctx->backend, obj); };
  // In-window pass: assemble from the blobs CkptPreSerialize warmed; only
  // entities mutated since then (quiesce state changes, drained AIO) pay
  // fresh gather cost inside the stop.
  SerializeMode mode =
      ctx->group->legacy_stop_path ? SerializeMode::kLegacy : SerializeMode::kAssemble;
  SerializeCache* cache =
      ctx->group->legacy_stop_path ? nullptr : &serialize_caches_[ctx->group];
  AURORA_ASSIGN_OR_RETURN(ctx->manifest,
                          SerializeOsState(sim_, *ctx->group, ctx->backend->current_epoch(),
                                           ns_oid, ensure, &ctx->result.os_state, mode, cache));
  if (cache != nullptr) {
    cache->Prune();
  }
  ctx->result.os_serialize_time = serialize_watch.Elapsed();
  sim_->tracer.End(serialize_span);
  return Status::Ok();
}

void Sls::CkptShadow(CheckpointContext* ctx) {
  // System shadowing across the whole group.
  size_t shadow_span = sim_->tracer.Begin("ckpt.shadow");
  SimStopwatch shadow_watch(sim_->clock);
  SystemShadowStats shadow_stats;
  ShadowOptions options;
  options.skip_clean = !ctx->group->legacy_stop_path;
  options.elide_shootdowns = !ctx->group->legacy_stop_path;
  ctx->pairs = CreateSystemShadows(
      ctx->maps, sim_,
      [this](VmObject* old_top, std::shared_ptr<VmObject> new_top) {
        kernel_->RebindShmObjects(old_top, new_top);
      },
      &shadow_stats, options);
  for (const ShadowPair& pair : ctx->pairs) {
    snapshots_[ctx->group][pair.frozen->sls_oid()] = pair.frozen;
  }
  // PTEs downgraded inside this stop — with dirty-driven protection this
  // scales with pages written since the last epoch, not image size.
  sim_->metrics.counter("ckpt.ptes_reprotected").Add(shadow_stats.ptes_invalidated);
  ctx->result.shadow_time = shadow_watch.Elapsed();
  sim_->tracer.End(shadow_span);
}

void Sls::CkptResume(CheckpointContext* ctx) {
  // Resume; the application runs concurrently with the flush.
  ConsistencyGroup* group = ctx->group;
  kernel_->Resume(group->processes);
  ctx->result.stop_time = sim_->clock.now() - ctx->stop_begin;
  group->stop_times.Record(ctx->result.stop_time);
  group->checkpoints_taken++;
  last_manifest_blobs_[group] = ctx->manifest;

  sim_->metrics.counter("ckpt.checkpoints").Add();
  sim_->metrics.histogram("ckpt.stop_time").Record(ctx->result.stop_time);
  sim_->metrics.histogram("ckpt.quiesce").Record(ctx->result.quiesce_time);
  sim_->metrics.histogram("ckpt.serialize").Record(ctx->result.os_serialize_time);
  sim_->metrics.histogram("ckpt.shadow").Record(ctx->result.shadow_time);
}

void Sls::CkptRetainInMemory(CheckpointContext* ctx) {
  // Not durable: these frozen shadows hold pages the backend has not seen.
  // They stay un-collapsed until a full checkpoint flushes them.
  for (ShadowPair& pair : ctx->pairs) {
    ctx->group->unflushed_frozen.push_back(std::move(pair));
  }
  sim_->metrics.counter("ckpt.memory_only").Add();
  ctx->result.durable_at = sim_->clock.now();
  last_durable_[ctx->group] = ctx->result.durable_at;
}

Status Sls::CkptAsyncFlush(CheckpointContext* ctx) {
  // Frozen shadows stream their dirty pages into their region objects; chain
  // links never persisted flush once. Shadows left behind by memory-only
  // checkpoints flush first (oldest data).
  ConsistencyGroup* group = ctx->group;
  size_t flush_span = sim_->tracer.Begin("ckpt.flush");
  ctx->durable = sim_->clock.now();
  for (const ShadowPair& pair : group->unflushed_frozen) {
    Oid oid{pair.frozen->sls_oid()};
    if (!oid.valid()) {
      continue;
    }
    AURORA_ASSIGN_OR_RETURN(SimTime t,
                            ctx->backend->WriteObjectPages(oid, pair.frozen.get(),
                                                           &ctx->result.pages_flushed,
                                                           &ctx->result.bytes_flushed));
    ctx->durable = std::max(ctx->durable, t);
    group->persisted_oids.insert(oid.value);
  }
  for (const ShadowPair& pair : ctx->pairs) {
    Oid oid{pair.frozen->sls_oid()};
    if (!oid.valid()) {
      continue;  // excluded region
    }
    AURORA_ASSIGN_OR_RETURN(SimTime t,
                            ctx->backend->WriteObjectPages(oid, pair.frozen.get(),
                                                           &ctx->result.pages_flushed,
                                                           &ctx->result.bytes_flushed));
    ctx->durable = std::max(ctx->durable, t);
    group->persisted_oids.insert(oid.value);
  }
  AURORA_ASSIGN_OR_RETURN(SimTime chains_done, FlushUnpersistedChains(ctx));
  ctx->durable = std::max(ctx->durable, chains_done);

  // File system dirty data obeys checkpoint consistency: it flushes with the
  // checkpoint, which is why fsync can be a no-op.
  AURORA_ASSIGN_OR_RETURN(SimTime fs_done, ctx->backend->FlushFilesystem());
  ctx->durable = std::max(ctx->durable, fs_done);
  // The flush phase ends when its last asynchronous write lands, which is in
  // the simulated future relative to now (the application already resumed).
  sim_->tracer.EndAt(flush_span, ctx->durable);
  return Status::Ok();
}

Status Sls::CkptCommit(CheckpointContext* ctx) {
  ConsistencyGroup* group = ctx->group;
  size_t commit_span = sim_->tracer.Begin("ckpt.commit");
  AURORA_ASSIGN_OR_RETURN(
      CheckpointBackend::CommitInfo commit,
      ctx->backend->CommitEpoch(ctx->name, ctx->manifest, group->last_manifest));
  ctx->durable = std::max(ctx->durable, commit.durable_at);
  sim_->tracer.EndAt(commit_span, commit.durable_at);

  group->last_manifest = commit.manifest_oid;
  group->last_manifest_epoch = commit.epoch;
  // Collapse order matters: oldest (deepest) shadows first.
  group->pending_collapse = std::move(group->unflushed_frozen);
  group->unflushed_frozen.clear();
  for (ShadowPair& pair : ctx->pairs) {
    group->pending_collapse.push_back(std::move(pair));
  }
  group->bytes_flushed_total += ctx->result.bytes_flushed;
  ctx->result.epoch = commit.epoch;
  ctx->result.durable_at = ctx->durable;
  last_durable_[group] = ctx->durable;

  // Epoch-overlap bookkeeping for the periodic scheduler and benches.
  SimTime now = sim_->clock.now();
  auto& inflight = group->inflight_durable;
  inflight.erase(std::remove_if(inflight.begin(), inflight.end(),
                                [now](SimTime t) { return t <= now; }),
                 inflight.end());
  if (ctx->durable > now) {
    inflight.push_back(ctx->durable);
  }
  // Pathological manual-checkpoint loops can outrun the time-based pruning
  // above; the ring cap bounds both books regardless.
  if (inflight.size() > group->ckpt_history_cap) {
    inflight.erase(inflight.begin(),
                   inflight.end() - static_cast<long>(group->ckpt_history_cap));
  }
  group->ckpt_history.push_back({ctx->begin, ctx->durable, commit.epoch});
  while (group->ckpt_history.size() > group->ckpt_history_cap) {
    group->ckpt_history.pop_front();
  }

  sim_->metrics.counter("ckpt.pages_flushed").Add(ctx->result.pages_flushed);
  sim_->metrics.counter("ckpt.bytes_flushed").Add(ctx->result.bytes_flushed);
  // Wall time from resume until the checkpoint is fully durable: how long
  // held messages and the next periodic checkpoint wait on the device.
  sim_->metrics.histogram("ckpt.durability_lag").Record(ctx->durable - now);
  return Status::Ok();
}

void Sls::CkptRelease(CheckpointContext* ctx) {
  // External synchrony: messages held since the previous checkpoint are
  // released once this one is durable.
  ConsistencyGroup* group = ctx->group;
  size_t release_span = sim_->tracer.Begin("ckpt.release");
  if (!group->pending_sends.empty()) {
    auto sends = std::make_shared<std::vector<ConsistencyGroup::PendingSend>>(
        std::move(group->pending_sends));
    group->pending_sends.clear();
    sim_->events.At(ctx->durable, [this, sends]() {
      for (auto& send : *sends) {
        // The release fires from the event loop, long after the caller of
        // SendExternal returned: there is nowhere to propagate to, so a
        // peer that vanished while the message was held is counted instead.
        Result<uint64_t> sent = send.socket->Send(send.data.data(), send.data.size());
        if (!sent.ok()) {
          sim_->metrics.counter("sls.release_send_failures").Add(1);
        }
      }
    });
  }
  sim_->tracer.EndAt(release_span, ctx->durable);
}

SegmentGc* Sls::gc() {
  if (gc_ == nullptr) {
    gc_ = std::make_unique<SegmentGc>(store_);
  }
  return gc_.get();
}

void Sls::ApplyRetention(CheckpointContext* ctx) {
  // Only store-backed epochs live in the store directory; other backends
  // manage their own history.
  if (ctx->backend != store_backend_ || !ctx->group->retention.enabled()) {
    return;
  }
  const RetentionPolicy& policy = ctx->group->retention;
  std::vector<CheckpointInfo> checkpoints = store_->ListCheckpoints();
  // Cutoff: the smallest epoch the policy still keeps. Both limits apply;
  // the stricter one wins.
  uint64_t cutoff = 0;
  if (policy.keep_epochs > 0 && checkpoints.size() > policy.keep_epochs) {
    cutoff = checkpoints[checkpoints.size() - policy.keep_epochs].epoch;
  }
  if (policy.max_age > 0) {
    SimTime now = sim_->clock.now();
    SimTime horizon = now > policy.max_age ? now - policy.max_age : 0;
    // The smallest epoch young enough to keep; if every epoch is stale the
    // newest still survives (DeleteCheckpointsBefore keeps the recovery point).
    uint64_t age_cutoff = checkpoints.empty() ? 0 : checkpoints.back().epoch;
    for (const CheckpointInfo& info : checkpoints) {
      if (info.committed_at >= horizon) {
        age_cutoff = info.epoch;
        break;
      }
    }
    cutoff = std::max(cutoff, age_cutoff);
  }
  // Never prune any group's newest restorable manifest: clamp the cutoff to
  // the oldest last-manifest epoch across every store-backed group.
  for (const auto& group : groups_) {
    if (group->last_manifest_epoch > 0 && GroupBackend(group.get()) == store_backend_) {
      cutoff = std::min(cutoff, group->last_manifest_epoch);
    }
  }
  if (cutoff > 0) {
    Status pruned = store_->DeleteCheckpointsBefore(cutoff);
    if (pruned.ok()) {
      size_t remaining = store_->ListCheckpoints().size();
      if (checkpoints.size() > remaining) {
        sim_->metrics.counter("ckpt.retention_pruned").Add(checkpoints.size() - remaining);
      }
    } else {
      sim_->metrics.counter("ckpt.retention_prune_failures").Add();
    }
  }
  if (gc_auto_ && store_->layout() == StoreLayout::kSegmentLog) {
    Result<GcRunReport> run = gc()->Run();
    if (!run.ok()) {
      // Compaction failure never fails the checkpoint: the dead space just
      // waits for the next pass.
      sim_->metrics.counter("gc.run_failures").Add();
    }
  }
}

namespace {
// Failures the pipeline degrades on rather than propagates: the device (or
// link) gave up after retries, or returned provably corrupt data. Logic
// errors (kNotFound, kBadState, ...) still propagate — aborting an epoch
// cannot fix a bug.
bool IsIoFailure(const Status& s) {
  return s.code() == Errc::kIoError || s.code() == Errc::kCorrupt;
}
}  // namespace

void Sls::CkptAbortEpoch(CheckpointContext* ctx, const Status& cause) {
  ConsistencyGroup* group = ctx->group;
  // The frozen shadows keep their dirty pages; unflushed_frozen is drained
  // only by a successful commit, so appending preserves oldest-first order
  // and nothing is lost — only this epoch's durability. Pages a partial
  // flush already staged COW into the store simply commit with the next
  // successful epoch. Held external sends stay held: external synchrony
  // promises them only after a durable covering checkpoint.
  for (ShadowPair& pair : ctx->pairs) {
    group->unflushed_frozen.push_back(std::move(pair));
  }
  ctx->pairs.clear();
  group->epochs_aborted++;
  sim_->metrics.counter("ckpt.epochs_aborted").Add();
  ctx->result.aborted = true;
  ctx->result.epoch = 0;
  auto durable = last_durable_.find(group);
  ctx->result.durable_at = durable != last_durable_.end() ? durable->second : 0;
  if (!abort_logged_) {
    abort_logged_ = true;
    std::fprintf(stderr, "sls: checkpoint epoch aborted (%s); continuing on last durable epoch\n",
                 cause.message().c_str());
  }
}

Result<CheckpointResult> Sls::Checkpoint(ConsistencyGroup* group, const std::string& name,
                                         CheckpointMode mode) {
  CheckpointContext ctx;
  ctx.group = group;
  ctx.backend = GroupBackend(group);
  ctx.name = name;
  ctx.mode = mode;
  ctx.maps = GroupMaps(group);
  ctx.begin = sim_->clock.now();
  sim_->tracer.NewScope();

  CkptCollapse(&ctx);
  CkptPreSerialize(&ctx);
  CkptQuiesce(&ctx);
  Status serialized = CkptSerialize(&ctx);
  if (!serialized.ok()) {
    // Never leave the group quiesced: even a failed serialize resumes the
    // application. Full CkptResume would clobber last_manifest_blobs_ with
    // the partial manifest, so only the kernel-level resume happens here.
    // The stop clock only reads as stop time if quiesce actually started it;
    // an abort before quiesce must not fabricate a pause.
    kernel_->Resume(group->processes);
    ctx.result.stop_time = ctx.quiesced ? sim_->clock.now() - ctx.stop_begin : 0;
    if (!IsIoFailure(serialized)) {
      return serialized;
    }
    CkptAbortEpoch(&ctx, serialized);
    return ctx.result;
  }
  CkptShadow(&ctx);
  CkptResume(&ctx);
  if (mode == CheckpointMode::kMemoryOnly) {
    CkptRetainInMemory(&ctx);
    return ctx.result;
  }
  Status flushed = CkptAsyncFlush(&ctx);
  if (flushed.ok()) {
    flushed = CkptCommit(&ctx);
  }
  if (!flushed.ok()) {
    if (!IsIoFailure(flushed)) {
      return flushed;
    }
    CkptAbortEpoch(&ctx, flushed);
    return ctx.result;
  }
  CkptRelease(&ctx);
  ApplyRetention(&ctx);
  return ctx.result;
}

void Sls::StartPeriodicCheckpoints(ConsistencyGroup* group) {
  if (periodic_.count(group) > 0) {
    return;
  }
  auto alive = std::make_shared<bool>(true);
  periodic_[group] = alive;
  ScheduleNextPeriodic(group, alive);
}

void Sls::StopPeriodicCheckpoints(ConsistencyGroup* group) {
  auto it = periodic_.find(group);
  if (it != periodic_.end()) {
    *it->second = false;
    periodic_.erase(it);
  }
}

void Sls::ScheduleNextPeriodic(ConsistencyGroup* group, std::shared_ptr<bool> alive) {
  sim_->events.After(group->period, [this, group, alive]() {
    if (!*alive || group->suspended || group->processes.empty()) {
      return;
    }
    // Backpressure: at most max_in_flight_epochs flushes outstanding (paper
    // section 7 serializes on durability; limit 2 overlaps epoch N+1's
    // serialization with epoch N's flush). Wait out the earliest flush when
    // the window is full, then rearm the period.
    SimTime now = sim_->clock.now();
    auto& inflight = group->inflight_durable;
    inflight.erase(std::remove_if(inflight.begin(), inflight.end(),
                                  [now](SimTime t) { return t <= now; }),
                   inflight.end());
    if (inflight.size() >= group->max_in_flight_epochs) {
      SimTime earliest = *std::min_element(inflight.begin(), inflight.end());
      sim_->events.At(earliest, [this, group, alive]() {
        if (*alive) {
          ScheduleNextPeriodic(group, alive);
        }
      });
      return;
    }
    // A periodic checkpoint has no caller to report to; epoch aborts are
    // already counted by CkptAbortEpoch, so what is counted here is the
    // logic-error path (bad state, missing object) that aborting cannot
    // absorb. The timer keeps rescheduling either way — one failed epoch
    // must not silence durability forever.
    Result<CheckpointResult> ckpt = Checkpoint(group);
    if (!ckpt.ok()) {
      sim_->metrics.counter("ckpt.periodic_failures").Add(1);
    }
    ScheduleNextPeriodic(group, alive);
  });
}

void Sls::ReleasePendingSends(ConsistencyGroup* group) {
  for (auto& send : group->pending_sends) {
    Result<uint64_t> sent = send.socket->Send(send.data.data(), send.data.size());
    if (!sent.ok()) {
      sim_->metrics.counter("sls.release_send_failures").Add(1);
    }
  }
  group->pending_sends.clear();
}

Result<uint64_t> Sls::SendExternal(ConsistencyGroup* group,
                                   const std::shared_ptr<Socket>& socket, const void* data,
                                   uint64_t len) {
  if (!group->external_sync || socket->external_sync_disabled) {
    return socket->Send(data, len);
  }
  ConsistencyGroup::PendingSend send;
  send.socket = socket;
  const auto* p = static_cast<const uint8_t*>(data);
  send.data.assign(p, p + len);
  group->pending_sends.push_back(std::move(send));
  return len;
}

Result<std::pair<uint64_t, Oid>> Sls::FindManifest(const std::string& group_name,
                                                   uint64_t epoch) {
  return FindManifestInStore(store_, group_name, epoch);
}

void Sls::WrapRestoredTops(ConsistencyGroup* group) {
  // One batched shadow pass (one TLB shootdown per address space): the
  // restored tops freeze as already-persisted bases and new empty shadows
  // take the writes, so the first post-restore checkpoint is incremental.
  std::vector<VmMap*> maps = GroupMaps(group);
  std::vector<ShadowPair> pairs = CreateSystemShadows(
      maps, sim_,
      [this](VmObject* old_top, std::shared_ptr<VmObject> new_top) {
        kernel_->RebindShmObjects(old_top, new_top);
      },
      nullptr);
  (void)pairs;  // frozen bases are already persisted; nothing to flush
}

// --- Restore pipeline stages ------------------------------------------------

Status Sls::RestoreLoadManifest(RestoreContext* ctx) {
  if (ctx->mode == RestoreMode::kFromMemory) {
    if (ctx->old_group == nullptr || last_manifest_blobs_.count(ctx->old_group) == 0) {
      return Status::Error(Errc::kNotFound, "no in-memory checkpoint for " + ctx->group_name);
    }
    ctx->manifest = last_manifest_blobs_[ctx->old_group];
    return Status::Ok();
  }
  AURORA_ASSIGN_OR_RETURN(CheckpointBackend::LoadedManifest loaded,
                          ctx->backend->LoadManifest(ctx->group_name, ctx->epoch));
  ctx->manifest_epoch = loaded.epoch;
  ctx->manifest = std::move(loaded.blob);
  return Status::Ok();
}

Status Sls::RestoreBuildResolver(RestoreContext* ctx) {
  if (ctx->mode == RestoreMode::kFromMemory) {
    // Capture the snapshot map by value: the group's map is rebuilt below
    // while the resolver is still in use.
    std::map<uint64_t, std::shared_ptr<VmObject>> old_snapshots;
    if (ctx->old_group != nullptr && snapshots_.count(ctx->old_group) > 0) {
      old_snapshots = snapshots_[ctx->old_group];
    }
    ctx->resolve = [old_snapshots](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
      auto it = old_snapshots.find(oid.value);
      if (it == old_snapshots.end()) {
        // Region created after the last checkpoint: empty anonymous memory.
        return ResolvedMemory{VmObject::CreateAnonymous(size), true};
      }
      return ResolvedMemory{it->second, true};
    };
    return Status::Ok();
  }
  std::shared_ptr<SimTime> stream_done;
  if (ctx->mode == RestoreMode::kFull) {
    stream_done = std::make_shared<SimTime>(sim_->clock.now());
    full_restore_done_ = stream_done;
  }
  AURORA_ASSIGN_OR_RETURN(
      ctx->resolve, ctx->backend->MakeResolver(ctx->manifest_epoch, ctx->mode, stream_done));
  return Status::Ok();
}

void Sls::RestoreTeardownOld(RestoreContext* ctx) {
  // Tear down the previous incarnation (rollback semantics).
  if (ctx->old_group != nullptr) {
    for (Process* proc : ctx->old_group->processes) {
      kernel_->DestroyProcess(proc);
    }
    ctx->old_group->processes.clear();
  }
}

Status Sls::RestoreNamespaceStage(RestoreContext* ctx) {
  // Namespace first so vnode lookups by inode succeed.
  if (ctx->mode == RestoreMode::kFromMemory) {
    return Status::Ok();
  }
  auto head = PeekManifest(ctx->manifest);
  if (head.ok() && head->namespace_oid.valid()) {
    AURORA_RETURN_IF_ERROR(
        ctx->backend->RestoreNamespace(ctx->manifest_epoch, head->namespace_oid));
  }
  return Status::Ok();
}

Status Sls::RestoreMaterialize(RestoreContext* ctx) {
  AURORA_ASSIGN_OR_RETURN(ctx->restored,
                          RestoreOsState(sim_, kernel_, fs_, ctx->manifest, ctx->resolve));
  return Status::Ok();
}

Status Sls::RestoreRebindGroup(RestoreContext* ctx) {
  ConsistencyGroup* group = ctx->old_group;
  if (group == nullptr) {
    AURORA_ASSIGN_OR_RETURN(group, CreateGroup(ctx->group_name));
  }
  group->processes = ctx->restored.processes;
  group->suspended = false;
  group->pending_collapse.clear();
  group->unflushed_frozen.clear();
  group->pending_sends.clear();
  group->inflight_durable.clear();
  if (ctx->mode != RestoreMode::kFromMemory && ctx->backend != store_backend_) {
    // Future checkpoints continue into the backend we restored from.
    group->backend = ctx->backend;
  }

  // Every region named by the manifest is durable at this epoch (or, for
  // memory restores, lives in the retained snapshot objects).
  group->persisted_oids.clear();
  auto& snapshot_map = snapshots_[group];
  if (ctx->mode != RestoreMode::kFromMemory) {
    snapshot_map.clear();
  }
  WrapRestoredTops(group);
  for (Process* proc : group->processes) {
    for (auto& [start, entry] : proc->vm().entries()) {
      std::shared_ptr<VmObject> obj = entry.object;
      while (obj != nullptr) {
        if (obj->sls_oid() != 0) {
          group->persisted_oids.insert(obj->sls_oid());
          if (obj->frozen()) {
            snapshot_map[obj->sls_oid()] = obj;
          }
        }
        obj = obj->parent_ref();
      }
    }
  }
  last_manifest_blobs_[group] = ctx->manifest;

  ctx->result.group = group;
  ctx->result.epoch =
      ctx->mode == RestoreMode::kFromMemory ? ctx->restored.epoch : ctx->manifest_epoch;
  return Status::Ok();
}

Result<RestoreResult> Sls::Restore(const std::string& group_name, uint64_t epoch,
                                   RestoreMode mode, CheckpointBackend* backend) {
  SimStopwatch watch(sim_->clock);
  sim_->tracer.NewScope();
  size_t restore_span = sim_->tracer.Begin("restore");

  RestoreContext ctx;
  ctx.group_name = group_name;
  ctx.epoch = epoch;
  ctx.mode = mode;
  ctx.backend = backend != nullptr ? backend : store_backend_;
  ctx.old_group = FindGroup(group_name);

  // Load + resolver-build run before teardown: early failures (missing
  // manifest, bad epoch) leave the running application untouched.
  AURORA_RETURN_IF_ERROR(RestoreLoadManifest(&ctx));
  AURORA_RETURN_IF_ERROR(RestoreBuildResolver(&ctx));
  RestoreTeardownOld(&ctx);
  AURORA_RETURN_IF_ERROR(RestoreNamespaceStage(&ctx));
  AURORA_RETURN_IF_ERROR(RestoreMaterialize(&ctx));
  AURORA_RETURN_IF_ERROR(RestoreRebindGroup(&ctx));

  if (mode == RestoreMode::kFull && full_restore_done_ != nullptr) {
    sim_->clock.AdvanceTo(*full_restore_done_);
    full_restore_done_.reset();
  }
  ctx.result.restore_time = watch.Elapsed();
  sim_->tracer.End(restore_span);
  sim_->metrics.counter("restore.restores").Add();
  sim_->metrics.histogram("restore.time").Record(ctx.result.restore_time);
  return ctx.result;
}

Result<CheckpointResult> Sls::Suspend(ConsistencyGroup* group) {
  AURORA_ASSIGN_OR_RETURN(CheckpointResult result,
                          Checkpoint(group, "suspend:" + group->name()));
  sim_->clock.AdvanceTo(result.durable_at);
  for (Process* proc : group->processes) {
    kernel_->DestroyProcess(proc);
  }
  group->processes.clear();
  group->pending_collapse.clear();
  group->unflushed_frozen.clear();
  group->suspended = true;
  return result;
}

Result<RestoreResult> Sls::ResumeSuspended(const std::string& group_name, RestoreMode mode) {
  return Restore(group_name, 0, mode);
}

Result<CheckpointResult> Sls::MemCheckpoint(Process* proc, uint64_t addr) {
  VmMapEntry* entry = proc->vm().FindEntry(addr);
  if (entry == nullptr) {
    return Status::Error(Errc::kNotFound, "no mapping at address");
  }
  if (entry->object->type() != VmObjectType::kAnonymous) {
    return Status::Error(Errc::kNotSupported, "atomic checkpoints cover anonymous memory");
  }
  ConsistencyGroup* group = nullptr;
  for (auto& g : groups_) {
    if (std::find(g->processes.begin(), g->processes.end(), proc) != g->processes.end()) {
      group = g.get();
      break;
    }
  }
  if (group == nullptr) {
    return Status::Error(Errc::kBadState, "process not in a consistency group");
  }
  CheckpointBackend* backend = GroupBackend(group);

  SimStopwatch watch(sim_->clock);
  sim_->clock.Advance(kMemCkptHandoff);

  std::vector<VmMap*> maps = GroupMaps(group);
  Oid oid = EnsureMemoryOid(backend, entry->object.get());
  // Copy the shared_ptr: rebinding replaces entry->object itself.
  std::shared_ptr<VmObject> region = entry->object;
  ShadowPair pair = ShadowOneObject(
      region, maps, sim_,
      [this](VmObject* old_top, std::shared_ptr<VmObject> new_top) {
        kernel_->RebindShmObjects(old_top, new_top);
      });
  snapshots_[group][oid.value] = pair.frozen;

  CheckpointResult result;
  result.stop_time = watch.Elapsed();

  // Asynchronous flush of the shadowed region, then a manifest-less backend
  // commit so the atomic checkpoint is independently durable and composes
  // with the most recent full checkpoint at restore.
  AURORA_ASSIGN_OR_RETURN(
      SimTime flushed,
      backend->WriteObjectPages(oid, pair.frozen.get(), &result.pages_flushed,
                                &result.bytes_flushed));
  group->persisted_oids.insert(oid.value);
  AURORA_ASSIGN_OR_RETURN(CheckpointBackend::CommitInfo commit,
                          backend->CommitEpoch("memckpt", {}, kInvalidOid));
  result.epoch = commit.epoch;
  result.durable_at = std::max(flushed, commit.durable_at);
  last_durable_[group] = std::max(last_durable_[group], result.durable_at);
  group->pending_collapse.push_back(pair);
  sim_->metrics.counter("ckpt.memckpts").Add();
  sim_->metrics.histogram("ckpt.memckpt_stop").Record(result.stop_time);
  return result;
}

Result<Oid> Sls::JournalCreate(uint64_t capacity_bytes) {
  return store_->CreateJournal(capacity_bytes);
}

Status Sls::JournalAppend(Oid journal, const void* data, uint64_t len) {
  return store_->JournalAppend(journal, data, len);
}

Status Sls::JournalReset(Oid journal) { return store_->JournalReset(journal); }

Result<std::vector<std::vector<uint8_t>>> Sls::JournalReplay(Oid journal) {
  return store_->JournalReplay(journal);
}

Status Sls::Barrier(ConsistencyGroup* group) {
  auto it = last_durable_.find(group);
  if (it != last_durable_.end()) {
    sim_->clock.AdvanceTo(it->second);
  }
  ReleasePendingSends(group);
  return Status::Ok();
}

Status Sls::MemCtl(Process* proc, uint64_t addr, bool exclude) {
  VmMapEntry* entry = proc->vm().FindEntry(addr);
  if (entry == nullptr) {
    return Status::Error(Errc::kNotFound, "no mapping at address");
  }
  entry->exclude_from_checkpoint = exclude;
  proc->vm().TouchLayout();  // checkpoint-visible entry flag changed
  return Status::Ok();
}

Status Sls::FdCtl(Process* proc, int fd, bool disable_external_sync) {
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, proc->fds().Get(fd));
  if (desc->object == nullptr || desc->object->type() != FileType::kSocket) {
    return Status::Error(Errc::kInvalidArgument, "fdctl targets sockets");
  }
  static_cast<Socket*>(desc->object.get())->external_sync_disabled = disable_external_sync;
  desc->object->Touch();  // serialized socket record carries this flag
  return Status::Ok();
}

}  // namespace aurora
