#include "src/core/coredump.h"

#include <cstring>

#include "src/base/serializer.h"
#include "src/base/units.h"

namespace aurora {

namespace {

constexpr uint16_t kEtCore = 4;
constexpr uint16_t kEmX86_64 = 62;
constexpr uint32_t kPtLoad = 1;
constexpr uint32_t kPtNote = 4;
constexpr uint32_t kNtPrstatus = 1;
constexpr size_t kEhdrSize = 64;
constexpr size_t kPhdrSize = 56;

void PutEhdr(BinaryWriter* w, uint16_t phnum) {
  const uint8_t ident[16] = {0x7f, 'E', 'L', 'F', 2 /*64-bit*/, 1 /*LE*/, 1 /*version*/, 0,
                             0,    0,   0,   0,   0,            0,        0,            0};
  w->PutRaw(ident, sizeof(ident));
  w->PutU16(kEtCore);
  w->PutU16(kEmX86_64);
  w->PutU32(1);          // e_version
  w->PutU64(0);          // e_entry
  w->PutU64(kEhdrSize);  // e_phoff
  w->PutU64(0);          // e_shoff
  w->PutU32(0);          // e_flags
  w->PutU16(kEhdrSize);  // e_ehsize
  w->PutU16(kPhdrSize);  // e_phentsize
  w->PutU16(phnum);      // e_phnum
  w->PutU16(0);          // e_shentsize
  w->PutU16(0);          // e_shnum
  w->PutU16(0);          // e_shstrndx
}

void PutPhdr(BinaryWriter* w, uint32_t type, uint64_t offset, uint64_t vaddr, uint64_t filesz,
             uint64_t memsz, uint32_t flags) {
  w->PutU32(type);
  w->PutU32(flags);
  w->PutU64(offset);
  w->PutU64(vaddr);
  w->PutU64(vaddr);  // p_paddr
  w->PutU64(filesz);
  w->PutU64(memsz);
  w->PutU64(kPageSize);  // p_align
}

// Linux-style prstatus is 336 bytes; we emit the pr_pid at its canonical
// offset (32) and the general registers in the user_regs_struct area so
// tooling recognizes the layout.
constexpr size_t kPrStatusSize = 336;
constexpr size_t kPrPidOffset = 32;
constexpr size_t kPrRegOffset = 112;

std::vector<uint8_t> MakePrStatus(const Thread& t, uint64_t pid) {
  std::vector<uint8_t> buf(kPrStatusSize, 0);
  uint32_t pid32 = static_cast<uint32_t>(pid);
  std::memcpy(buf.data() + kPrPidOffset, &pid32, sizeof(pid32));
  size_t off = kPrRegOffset;
  for (uint64_t reg : t.cpu.gpr) {
    std::memcpy(buf.data() + off, &reg, sizeof(reg));
    off += sizeof(reg);
  }
  std::memcpy(buf.data() + off, &t.cpu.rip, sizeof(t.cpu.rip));
  off += 8;
  std::memcpy(buf.data() + off, &t.cpu.rflags, sizeof(t.cpu.rflags));
  off += 8;
  std::memcpy(buf.data() + off, &t.cpu.rsp, sizeof(t.cpu.rsp));
  return buf;
}

void PutNote(BinaryWriter* w, uint32_t type, const char* note_name,
             const std::vector<uint8_t>& desc) {
  uint32_t namesz = static_cast<uint32_t>(std::strlen(note_name) + 1);
  w->PutU32(namesz);
  w->PutU32(static_cast<uint32_t>(desc.size()));
  w->PutU32(type);
  w->PutRaw(note_name, namesz);
  for (size_t pad = namesz; pad % 4 != 0; pad++) {
    w->PutU8(0);
  }
  w->PutRaw(desc.data(), desc.size());
  for (size_t pad = desc.size(); pad % 4 != 0; pad++) {
    w->PutU8(0);
  }
}

}  // namespace

Result<std::vector<uint8_t>> WriteElfCore(Process* proc) {
  // Build the note segment first so offsets are known.
  BinaryWriter notes;
  for (const auto& t : proc->threads()) {
    PutNote(&notes, kNtPrstatus, "CORE", MakePrStatus(*t, proc->local_pid()));
  }

  const auto& entries = proc->vm().entries();
  uint16_t phnum = static_cast<uint16_t>(entries.size() + 1);
  uint64_t headers = kEhdrSize + static_cast<uint64_t>(phnum) * kPhdrSize;
  uint64_t note_off = headers;
  uint64_t data_off = note_off + notes.size();
  data_off = (data_off + kPageSize - 1) & ~(kPageSize - 1);

  BinaryWriter w;
  PutEhdr(&w, phnum);
  PutPhdr(&w, kPtNote, note_off, 0, notes.size(), 0, 0);
  uint64_t seg_off = data_off;
  for (const auto& [start, entry] : entries) {
    uint32_t flags = 0;
    flags |= (entry.prot & kProtExec) ? 1u : 0;   // PF_X
    flags |= (entry.prot & kProtWrite) ? 2u : 0;  // PF_W
    flags |= (entry.prot & kProtRead) ? 4u : 0;   // PF_R
    PutPhdr(&w, kPtLoad, seg_off, entry.start, entry.size(), entry.size(), flags);
    seg_off += entry.size();
  }
  w.PutRaw(notes.data().data(), notes.size());
  while (w.size() < data_off) {
    w.PutU8(0);
  }
  // Memory contents: read through the VM so shadow chains and lazily
  // restored pages resolve exactly as the process would see them.
  std::vector<uint8_t> page(kPageSize);
  for (const auto& [start, entry] : entries) {
    for (uint64_t addr = entry.start; addr < entry.end; addr += kPageSize) {
      if ((entry.prot & kProtRead) != 0 &&
          proc->vm().Read(addr, page.data(), kPageSize).ok()) {
        w.PutRaw(page.data(), kPageSize);
      } else {
        std::vector<uint8_t> zero(kPageSize, 0);
        w.PutRaw(zero.data(), zero.size());
      }
    }
  }
  return w.Take();
}

Result<ElfCoreSummary> InspectElfCore(const std::vector<uint8_t>& image) {
  if (image.size() < kEhdrSize || image[0] != 0x7f || image[1] != 'E' || image[2] != 'L' ||
      image[3] != 'F') {
    return Status::Error(Errc::kCorrupt, "not an ELF image");
  }
  uint16_t type;
  std::memcpy(&type, image.data() + 16, sizeof(type));
  if (type != kEtCore) {
    return Status::Error(Errc::kCorrupt, "not a core file");
  }
  uint64_t phoff;
  uint16_t phnum;
  std::memcpy(&phoff, image.data() + 32, sizeof(phoff));
  std::memcpy(&phnum, image.data() + 56, sizeof(phnum));
  ElfCoreSummary summary;
  for (uint16_t i = 0; i < phnum; i++) {
    const uint8_t* ph = image.data() + phoff + static_cast<uint64_t>(i) * kPhdrSize;
    if (ph + kPhdrSize > image.data() + image.size()) {
      return Status::Error(Errc::kCorrupt, "program header overruns image");
    }
    uint32_t ptype;
    uint64_t filesz;
    std::memcpy(&ptype, ph, sizeof(ptype));
    std::memcpy(&filesz, ph + 32, sizeof(filesz));
    if (ptype == kPtLoad) {
      summary.load_segments++;
      summary.memory_bytes += filesz;
    } else if (ptype == kPtNote) {
      // Count NT_PRSTATUS notes.
      uint64_t off;
      std::memcpy(&off, ph + 8, sizeof(off));
      uint64_t end = off + filesz;
      while (off + 12 <= end) {
        uint32_t namesz;
        uint32_t descsz;
        uint32_t ntype;
        std::memcpy(&namesz, image.data() + off, 4);
        std::memcpy(&descsz, image.data() + off + 4, 4);
        std::memcpy(&ntype, image.data() + off + 8, 4);
        if (ntype == kNtPrstatus) {
          summary.note_threads++;
        }
        off += 12 + ((namesz + 3) & ~3u) + ((descsz + 3) & ~3u);
      }
    }
  }
  return summary;
}

}  // namespace aurora
