// Consistency groups: the unit of atomic checkpointing (paper section 3).
#ifndef SRC_CORE_CONSISTENCY_GROUP_H_
#define SRC_CORE_CONSISTENCY_GROUP_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/units.h"
#include "src/objstore/oid.h"
#include "src/posix/process.h"
#include "src/posix/socket.h"
#include "src/vm/system_shadow.h"

namespace aurora {

class CheckpointBackend;

// How long committed epochs stay restorable. Applied after every durable
// full checkpoint of the group (store backend only): epochs outside the
// policy are pruned from the store directory, their deadlists freed, and —
// on the segment-log layout — the compactor immediately gets the resulting
// dead space to reclaim. Both limits 0 (the default) keeps every epoch, the
// pre-policy behavior.
struct RetentionPolicy {
  // Keep at most this many newest committed epochs (0 = unlimited).
  uint64_t keep_epochs = 0;
  // Prune epochs committed more than this long ago (0 = no age limit).
  SimDuration max_age = 0;
  bool enabled() const { return keep_epochs > 0 || max_age > 0; }
};

class ConsistencyGroup {
 public:
  ConsistencyGroup(uint64_t id, std::string name) : id_(id), name_(std::move(name)) {}

  uint64_t id() const { return id_; }
  const std::string& name() const { return name_; }

  // Members. A group typically holds one application or container; all of
  // its processes checkpoint atomically and need no external synchrony
  // among themselves.
  std::vector<Process*> processes;

  // Checkpoint policy. 10 ms (100x per second) is the paper's default.
  SimDuration period = 10 * kMillisecond;
  bool external_sync = true;
  bool collapse_reversed = true;  // Aurora's collapse direction (ablatable)
  // Ablation toggle: reinstate the pre-incremental stopped window — full
  // write-protect sweeps over every object, one shootdown per address space
  // regardless of dirtied state, and all OS state serialized inside the stop
  // (no warm serialization cache).
  bool legacy_stop_path = false;

  // Checkpoint destination. Null means the machine's object store; set a
  // registered backend via Sls::SetBackend before the first checkpoint.
  CheckpointBackend* backend = nullptr;

  // Epoch retention (see RetentionPolicy). Driven by Sls after each durable
  // full checkpoint; disabled by default.
  RetentionPolicy retention;

  // Epoch overlap: how many checkpoint flushes may still be in flight when
  // the periodic scheduler opens a new epoch. 1 (the paper's behavior)
  // serializes epochs on durability; 2 overlaps epoch N+1's serialization
  // with epoch N's flush.
  uint32_t max_in_flight_epochs = 1;
  // Durability times of flushes not yet known durable, pruned against now.
  std::vector<SimTime> inflight_durable;
  // One record per committed full checkpoint, for backpressure tests and
  // the overlap ablation. Kept as a ring capped at ckpt_history_cap newest
  // records (a group checkpointing 100x/s would otherwise grow O(epochs)
  // memory over million-epoch runs); inflight_durable shares the cap.
  struct CkptRecord {
    SimTime begin = 0;    // when the checkpoint pipeline entered
    SimTime durable = 0;  // when its flush + commit became durable
    uint64_t epoch = 0;
  };
  std::deque<CkptRecord> ckpt_history;
  size_t ckpt_history_cap = 1024;

  // Memory overcommitment (paper section 6): when set, pages are dropped
  // from memory as soon as their checkpoint flush completes — the unified
  // checkpoint/swap data path. Faults stream them back from the store.
  bool evict_after_flush = false;

  // Runtime checkpoint state: the shadows frozen by the previous checkpoint
  // (flushed, awaiting collapse at the next trigger) and the store objects
  // already fully persisted (lower chain links never rewritten).
  std::vector<ShadowPair> pending_collapse;
  // Shadows frozen by memory-only checkpoints: their pages are dirty wrt the
  // store and must be flushed by the next full checkpoint before they may be
  // collapsed into a persisted base (otherwise those writes would be lost).
  std::vector<ShadowPair> unflushed_frozen;
  std::set<uint64_t> persisted_oids;

  // Latest committed manifest for this group.
  Oid last_manifest;
  uint64_t last_manifest_epoch = 0;

  // External synchrony: messages buffered until the covering checkpoint is
  // durable.
  struct PendingSend {
    std::shared_ptr<Socket> socket;
    std::vector<uint8_t> data;
  };
  std::vector<PendingSend> pending_sends;

  bool suspended = false;

  // Bookkeeping for observability.
  LatencyHistogram stop_times;
  uint64_t checkpoints_taken = 0;
  uint64_t bytes_flushed_total = 0;
  // Epochs abandoned after exhausted I/O retries (graceful degradation): the
  // application kept running and the dirty pages rode the next checkpoint.
  uint64_t epochs_aborted = 0;

 private:
  uint64_t id_;
  std::string name_;
};

}  // namespace aurora

#endif  // SRC_CORE_CONSISTENCY_GROUP_H_
