#include "src/posix/ipc.h"

#include <algorithm>

namespace aurora {

Result<uint64_t> Pipe::Write(const void* data, uint64_t len) {
  if (!read_open) {
    return Status::Error(Errc::kBadState, "EPIPE: read end closed");
  }
  uint64_t room = kCapacity - buffer.size();
  if (room == 0) {
    return Status::Error(Errc::kWouldBlock, "pipe full");
  }
  uint64_t n = std::min(len, room);
  const auto* p = static_cast<const uint8_t*>(data);
  buffer.insert(buffer.end(), p, p + n);
  return n;
}

Result<uint64_t> Pipe::Read(void* out, uint64_t len) {
  if (buffer.empty()) {
    if (!write_open) {
      return uint64_t{0};  // EOF
    }
    return Status::Error(Errc::kWouldBlock, "pipe empty");
  }
  uint64_t n = std::min<uint64_t>(len, buffer.size());
  auto* p = static_cast<uint8_t*>(out);
  std::copy_n(buffer.begin(), n, p);
  buffer.erase(buffer.begin(), buffer.begin() + static_cast<long>(n));
  return n;
}

}  // namespace aurora
