// Sockets: UDP, TCP and UNIX domain, with the state the paper checkpoints.
//
// Transport is a loopback fabric: connected sockets hold weak references to
// their peers and Send() appends to the peer's receive buffer. That is
// enough to exercise every checkpoint path: socket buffers with in-flight
// data, UNIX control messages carrying file descriptors (SCM_RIGHTS), TCP
// sequence numbers/5-tuples, and listening sockets whose accept queue the
// checkpoint deliberately drops (clients retransmit their SYN).
#ifndef SRC_POSIX_SOCKET_H_
#define SRC_POSIX_SOCKET_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/posix/file.h"

namespace aurora {

enum class SocketDomain : uint8_t { kInet, kUnix };
enum class SocketProto : uint8_t { kTcp, kUdp };
enum class SocketState : uint8_t { kCreated, kBound, kListening, kConnected, kClosed };

struct SockAddr {
  uint32_t ip = 0;
  uint16_t port = 0;
  std::string path;  // UNIX domain

  bool operator==(const SockAddr&) const = default;
};

// Ancillary data on UNIX sockets: passed descriptors and credentials. The
// checkpointer parses buffered segments for these so in-flight descriptors
// are captured (paper section 5.3).
struct ControlMessage {
  std::vector<std::shared_ptr<FileDescription>> fds;
  uint64_t cred_pid = 0;
};

struct SockSegment {
  std::vector<uint8_t> data;
  std::optional<ControlMessage> control;
  SockAddr from;  // UDP source
};

class Socket : public FileObject, public std::enable_shared_from_this<Socket> {
 public:
  Socket(SocketDomain domain, SocketProto proto) : domain_(domain), proto_(proto) {}

  FileType type() const override { return FileType::kSocket; }

  SocketDomain domain() const { return domain_; }
  SocketProto proto() const { return proto_; }

  SocketState state = SocketState::kCreated;
  SockAddr local;
  SockAddr peer_addr;
  std::map<int, int> options;

  // TCP connection state (saved/restored for established connections).
  uint32_t snd_seq = 0;
  uint32_t rcv_seq = 0;

  // Listening state. The accept queue is NOT checkpointed.
  int backlog = 0;
  std::deque<std::shared_ptr<Socket>> accept_queue;

  // Receive buffer (bytes that arrived but were not yet read).
  std::deque<SockSegment> recv_buf;
  uint64_t recv_bytes = 0;
  static constexpr uint64_t kRecvCapacity = 256 * 1024;

  // External synchrony control (sls_fdctl): when disabled, sends bypass the
  // consistency group's commit buffer.
  bool external_sync_disabled = false;

  // Loopback transport peer.
  std::weak_ptr<Socket> peer;

  // --- Operations ---------------------------------------------------------
  [[nodiscard]] Status Bind(const SockAddr& addr);
  [[nodiscard]] Status Listen(int backlog_hint);

  // Establishes a connection to a listening socket: creates the server-side
  // endpoint and places it on the accept queue.
  [[nodiscard]] Result<std::shared_ptr<Socket>> ConnectTo(const std::shared_ptr<Socket>& listener);
  [[nodiscard]] Result<std::shared_ptr<Socket>> Accept();

  // Datagram/stream send to the connected peer. Returns bytes queued.
  [[nodiscard]] Result<uint64_t> Send(const void* data, uint64_t len,
                                      std::optional<ControlMessage> control = std::nullopt);
  // Receives one segment (datagram) or up to len stream bytes. A peer that
  // shut down yields a zero-length segment (EOF) once the buffer drains.
  [[nodiscard]] Result<SockSegment> Recv(uint64_t max_len);

  // shutdown(2)/close(2): stops transmission and signals EOF to the peer.
  // Buffered data stays readable; further sends fail with EPIPE-like errors.
  void Shutdown();
  bool peer_shutdown = false;  // the remote end closed its write side

  bool HasData() const { return !recv_buf.empty(); }

 private:
  [[nodiscard]] Status DeliverTo(Socket& dst, SockSegment segment);

  SocketDomain domain_;
  SocketProto proto_;
};

}  // namespace aurora

#endif  // SRC_POSIX_SOCKET_H_
