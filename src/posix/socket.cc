#include "src/posix/socket.h"

#include <algorithm>

namespace aurora {

Status Socket::Bind(const SockAddr& addr) {
  if (state != SocketState::kCreated) {
    return Status::Error(Errc::kBadState, "socket already bound");
  }
  local = addr;
  state = SocketState::kBound;
  Touch();
  return Status::Ok();
}

Status Socket::Listen(int backlog_hint) {
  if (proto_ != SocketProto::kTcp && domain_ != SocketDomain::kUnix) {
    return Status::Error(Errc::kNotSupported, "listen on datagram socket");
  }
  if (state != SocketState::kBound) {
    return Status::Error(Errc::kBadState, "listen before bind");
  }
  backlog = backlog_hint;
  state = SocketState::kListening;
  Touch();
  return Status::Ok();
}

Result<std::shared_ptr<Socket>> Socket::ConnectTo(const std::shared_ptr<Socket>& listener) {
  if (listener->state != SocketState::kListening) {
    return Status::Error(Errc::kBadState, "connect to non-listening socket");
  }
  if (static_cast<int>(listener->accept_queue.size()) >= std::max(listener->backlog, 1)) {
    // SYN dropped: the client retries. This is also what a restored
    // listening socket looks like to clients (paper section 5.3).
    return Status::Error(Errc::kWouldBlock, "accept queue full (SYN dropped)");
  }
  auto server_end = std::make_shared<Socket>(domain_, proto_);
  server_end->state = SocketState::kConnected;
  server_end->local = listener->local;
  server_end->peer_addr = local;
  server_end->peer = weak_from_this();
  server_end->snd_seq = 1;  // post-handshake ISNs
  server_end->rcv_seq = 1;

  state = SocketState::kConnected;
  peer_addr = listener->local;
  peer = server_end;
  snd_seq = 1;
  rcv_seq = 1;

  Touch();
  listener->accept_queue.push_back(server_end);
  listener->Touch();
  return server_end;
}

Result<std::shared_ptr<Socket>> Socket::Accept() {
  if (state != SocketState::kListening) {
    return Status::Error(Errc::kBadState, "accept on non-listening socket");
  }
  if (accept_queue.empty()) {
    return Status::Error(Errc::kWouldBlock, "no pending connections");
  }
  auto sock = accept_queue.front();
  accept_queue.pop_front();
  Touch();
  return sock;
}

Status Socket::DeliverTo(Socket& dst, SockSegment segment) {
  if (dst.recv_bytes + segment.data.size() > kRecvCapacity) {
    return Status::Error(Errc::kWouldBlock, "peer receive buffer full");
  }
  dst.recv_bytes += segment.data.size();
  dst.recv_buf.push_back(std::move(segment));
  dst.Touch();
  return Status::Ok();
}

void Socket::Shutdown() {
  if (auto dst = peer.lock()) {
    dst->peer_shutdown = true;
    dst->Touch();
  }
  state = SocketState::kClosed;
  Touch();
}

Result<uint64_t> Socket::Send(const void* data, uint64_t len,
                              std::optional<ControlMessage> control) {
  auto dst = peer.lock();
  if (dst == nullptr || state != SocketState::kConnected) {
    return Status::Error(Errc::kBadState, "send on unconnected socket");
  }
  if (dst->state == SocketState::kClosed) {
    return Status::Error(Errc::kBadState, "EPIPE: peer closed");
  }
  if (control.has_value() && domain_ != SocketDomain::kUnix) {
    return Status::Error(Errc::kNotSupported, "control messages need a UNIX socket");
  }
  SockSegment segment;
  const auto* p = static_cast<const uint8_t*>(data);
  segment.data.assign(p, p + len);
  segment.control = std::move(control);
  segment.from = local;
  AURORA_RETURN_IF_ERROR(DeliverTo(*dst, std::move(segment)));
  if (proto_ == SocketProto::kTcp) {
    snd_seq += static_cast<uint32_t>(len);
    dst->rcv_seq += static_cast<uint32_t>(len);
    Touch();
  }
  return len;
}

Result<SockSegment> Socket::Recv(uint64_t max_len) {
  if (recv_buf.empty()) {
    if (peer_shutdown) {
      return SockSegment{};  // EOF
    }
    return Status::Error(Errc::kWouldBlock, "no data");
  }
  SockSegment& front = recv_buf.front();
  if (front.data.size() <= max_len || proto_ == SocketProto::kUdp) {
    SockSegment segment = std::move(front);
    recv_buf.pop_front();
    recv_bytes -= segment.data.size();
    Touch();
    return segment;
  }
  // Stream semantics: split the segment.
  SockSegment partial;
  partial.data.assign(front.data.begin(), front.data.begin() + static_cast<long>(max_len));
  partial.from = front.from;
  front.data.erase(front.data.begin(), front.data.begin() + static_cast<long>(max_len));
  recv_bytes -= max_len;
  Touch();
  return partial;
}

}  // namespace aurora
