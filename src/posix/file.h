// Kernel file objects: the entities file descriptors reference.
//
// POSIX hides an object hierarchy behind the integer fd: descriptors in
// different processes may share one open-file entry (fork/dup/SCM_RIGHTS)
// whose offset is shared, while separate opens of the same file share only
// the vnode. Aurora's POSIX object model persists each node of this graph
// exactly once, so the graph is represented explicitly here.
#ifndef SRC_POSIX_FILE_H_
#define SRC_POSIX_FILE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/result.h"

namespace aurora {

enum class FileType : uint8_t {
  kVnode,
  kPipe,
  kSocket,
  kKqueue,
  kPty,
  kShm,
  kDevice,
};

const char* FileTypeName(FileType t);

// Base class for every kernel object a descriptor can reference. The
// kernel_id is the analog of the object's kernel address: the SLS keys its
// serialized-exactly-once table with it.
class FileObject {
 public:
  FileObject();
  virtual ~FileObject() = default;

  FileObject(const FileObject&) = delete;
  FileObject& operator=(const FileObject&) = delete;

  virtual FileType type() const = 0;
  uint64_t kernel_id() const { return kernel_id_; }

  // Serialization-cache generation: bumped by every mutating operation on
  // the object (buffered bytes, offsets via the owning description, state
  // machines). The checkpoint serializer reuses an object's cached blob only
  // while its generation is unchanged.
  uint64_t generation() const { return generation_; }
  void Touch() { generation_++; }

 private:
  static uint64_t next_kernel_id_;
  uint64_t kernel_id_;
  uint64_t generation_ = 1;
};

// Open-file table entry (FreeBSD `struct file`): shared by all descriptors
// that were created from one open() and propagated via fork/dup/fd-passing.
// The offset lives here, which is why a child's read moves the parent's
// file position.
struct FileDescription {
  FileDescription();

  std::shared_ptr<FileObject> object;
  uint64_t offset = 0;
  int open_flags = 0;  // O_RDONLY/O_WRONLY/O_RDWR | O_APPEND | ...
  uint64_t kernel_id;  // identity of this open-file entry for checkpointing
  // Serialization-cache generation; bumped when the shared offset moves.
  uint64_t generation = 1;

 private:
  static uint64_t next_kernel_id_;
};

inline constexpr int kOpenRead = 1;
inline constexpr int kOpenWrite = 2;
inline constexpr int kOpenAppend = 4;

// Per-process descriptor table.
class FdTable {
 public:
  struct Slot {
    std::shared_ptr<FileDescription> desc;
    bool close_on_exec = false;
  };

  // Installs `desc` at the lowest free fd; returns the fd.
  int Install(std::shared_ptr<FileDescription> desc, bool cloexec = false);
  // dup2 semantics: closes `fd` if open, then installs there.
  [[nodiscard]] Status InstallAt(int fd, std::shared_ptr<FileDescription> desc,
                                 bool cloexec = false);

  [[nodiscard]] Result<std::shared_ptr<FileDescription>> Get(int fd) const;
  [[nodiscard]] Status Close(int fd);

  [[nodiscard]] Result<int> Dup(int fd);

  // fork(): the table is copied, the descriptions are shared.
  FdTable Clone() const;

  const std::vector<Slot>& slots() const { return slots_; }
  size_t OpenCount() const;

  // Serialization-cache generation: bumped whenever the table's shape
  // changes (install/close/dup), so a process's cached blob — which embeds
  // its fd table — invalidates on descriptor churn.
  uint64_t generation() const { return generation_; }

 private:
  std::vector<Slot> slots_;
  uint64_t generation_ = 1;
};

}  // namespace aurora

#endif  // SRC_POSIX_FILE_H_
