#include "src/posix/file.h"

namespace aurora {

uint64_t FileObject::next_kernel_id_ = 1;
uint64_t FileDescription::next_kernel_id_ = 1;

FileObject::FileObject() : kernel_id_(next_kernel_id_++) {}
FileDescription::FileDescription() : kernel_id(next_kernel_id_++) {}

const char* FileTypeName(FileType t) {
  switch (t) {
    case FileType::kVnode:
      return "vnode";
    case FileType::kPipe:
      return "pipe";
    case FileType::kSocket:
      return "socket";
    case FileType::kKqueue:
      return "kqueue";
    case FileType::kPty:
      return "pty";
    case FileType::kShm:
      return "shm";
    case FileType::kDevice:
      return "device";
  }
  return "unknown";
}

int FdTable::Install(std::shared_ptr<FileDescription> desc, bool cloexec) {
  generation_++;
  for (size_t i = 0; i < slots_.size(); i++) {
    if (slots_[i].desc == nullptr) {
      slots_[i] = Slot{std::move(desc), cloexec};
      return static_cast<int>(i);
    }
  }
  slots_.push_back(Slot{std::move(desc), cloexec});
  return static_cast<int>(slots_.size() - 1);
}

Status FdTable::InstallAt(int fd, std::shared_ptr<FileDescription> desc, bool cloexec) {
  if (fd < 0) {
    return Status::Error(Errc::kInvalidArgument, "negative fd");
  }
  if (static_cast<size_t>(fd) >= slots_.size()) {
    slots_.resize(static_cast<size_t>(fd) + 1);
  }
  slots_[static_cast<size_t>(fd)] = Slot{std::move(desc), cloexec};
  generation_++;
  return Status::Ok();
}

Result<std::shared_ptr<FileDescription>> FdTable::Get(int fd) const {
  if (fd < 0 || static_cast<size_t>(fd) >= slots_.size() ||
      slots_[static_cast<size_t>(fd)].desc == nullptr) {
    return Status::Error(Errc::kNotFound, "bad file descriptor");
  }
  return slots_[static_cast<size_t>(fd)].desc;
}

Status FdTable::Close(int fd) {
  if (fd < 0 || static_cast<size_t>(fd) >= slots_.size() ||
      slots_[static_cast<size_t>(fd)].desc == nullptr) {
    return Status::Error(Errc::kNotFound, "bad file descriptor");
  }
  slots_[static_cast<size_t>(fd)] = Slot{};
  generation_++;
  return Status::Ok();
}

Result<int> FdTable::Dup(int fd) {
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, Get(fd));
  return Install(std::move(desc));
}

FdTable FdTable::Clone() const {
  FdTable copy;
  copy.slots_ = slots_;  // descriptions shared, slots copied: fork semantics
  return copy;
}

size_t FdTable::OpenCount() const {
  size_t n = 0;
  for (const auto& slot : slots_) {
    if (slot.desc != nullptr) {
      n++;
    }
  }
  return n;
}

}  // namespace aurora
