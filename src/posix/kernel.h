// The simulated kernel: process table, global namespaces, syscall-level
// helpers and the quiescing machinery used by checkpointing.
#ifndef SRC_POSIX_KERNEL_H_
#define SRC_POSIX_KERNEL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/base/id_allocator.h"
#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/posix/ipc.h"
#include "src/posix/process.h"
#include "src/posix/socket.h"
#include "src/posix/vnode.h"

namespace aurora {

struct QuiesceStats {
  uint64_t ipis = 0;
  uint64_t threads_in_user = 0;
  uint64_t threads_in_syscall = 0;
  uint64_t syscalls_restarted = 0;
  uint64_t fpu_flushes = 0;
};

class Kernel {
 public:
  explicit Kernel(SimContext* sim);
  ~Kernel();

  SimContext* sim() { return sim_; }

  // --- Processes ----------------------------------------------------------
  [[nodiscard]] Result<Process*> CreateProcess(const std::string& name);
  [[nodiscard]] Result<Process*> Fork(Process& parent);
  // Creates a process with reserved (checkpoint-time) IDs: the restore path.
  [[nodiscard]] Result<Process*> CreateProcessForRestore(const std::string& name,
                                                         uint64_t local_pid);
  void DestroyProcess(Process* proc);
  Process* FindPid(uint64_t pid);
  Process* FindLocalPid(uint64_t local_pid);
  std::vector<Process*> AllProcesses();

  [[nodiscard]] Result<uint64_t> AllocateTid() { return tid_alloc_.Allocate(); }
  void ReleaseTid(uint64_t tid) { tid_alloc_.Release(tid); }

  // Routes a signal by the pid the *application* knows (the local pid),
  // which is why the paper virtualizes ID allocation.
  [[nodiscard]] Status Kill(uint64_t local_pid, int signo);

  // exit(2): the process becomes a zombie (or is reaped immediately if it
  // has no parent); the parent receives SIGCHLD.
  void Exit(Process* proc, int status);
  // waitpid(2)-lite: reaps one zombie child of `parent`, returning
  // (local_pid, exit_status); kWouldBlock if none has exited.
  [[nodiscard]] Result<std::pair<uint64_t, int>> WaitAny(Process& parent);

  // --- Quiescing (paper section 5.1) --------------------------------------
  // Forces every thread of `procs` to the kernel boundary: IPIs to running
  // cores, waiting out non-sleeping syscalls, interrupting and transparently
  // restarting sleeping ones. Also flushes lazily-saved FPU state.
  QuiesceStats Quiesce(const std::vector<Process*>& procs);
  void Resume(const std::vector<Process*>& procs);

  // --- File-ish syscalls ---------------------------------------------------
  void set_rootfs(Filesystem* fs) { rootfs_ = fs; }
  Filesystem* rootfs() { return rootfs_; }

  [[nodiscard]] Result<int> Open(Process& proc, const std::string& path, int flags, bool create);
  [[nodiscard]] Status Close(Process& proc, int fd);
  // read(2)/write(2)/lseek(2): move data through the descriptor, advancing
  // the open-file entry's offset — which fork/dup'd descriptors share.
  [[nodiscard]] Result<uint64_t> ReadFd(Process& proc, int fd, void* out, uint64_t len);
  [[nodiscard]] Result<uint64_t> WriteFd(Process& proc, int fd, const void* data, uint64_t len);
  [[nodiscard]] Result<uint64_t> SeekFd(Process& proc, int fd, int64_t offset,
                                        int whence);  // 0=SET 1=CUR 2=END
  [[nodiscard]] Result<std::pair<int, int>> MakePipe(Process& proc);
  [[nodiscard]] Result<int> MakeSocket(Process& proc, SocketDomain domain, SocketProto proto);
  [[nodiscard]] Result<int> MakeKqueue(Process& proc);
  // Returns {master_fd, slave_fd}.
  [[nodiscard]] Result<std::pair<int, int>> MakePty(Process& proc);

  // --- Shared memory namespaces -------------------------------------------
  [[nodiscard]] Result<int> ShmOpen(Process& proc, const std::string& name, uint64_t size);
  [[nodiscard]] Result<int> ShmGet(Process& proc, int32_t key, uint64_t size);
  // Maps a shm descriptor into the process, always through the descriptor's
  // backmap so post-shadow mappings see the latest object.
  [[nodiscard]] Result<uint64_t> ShmMap(Process& proc, int fd);
  // System shadowing's backmap hook: replaces `old_top` in every shm
  // descriptor (scanning the SysV namespace is what makes its checkpoint
  // slower than POSIX shm in Table 4).
  void RebindShmObjects(VmObject* old_top, const std::shared_ptr<VmObject>& new_top);

  // Restore path: inserts a deserialized shm object into the proper global
  // namespace so later shadows and shmat calls find it.
  void AdoptShm(const std::shared_ptr<SharedMemory>& shm);
  // Rolls back an AdoptShm when a restore fails mid-flight. Only removes the
  // namespace entry if it still points at `shm`.
  void RemoveShm(const SharedMemory* shm);

  const std::map<std::string, std::shared_ptr<SharedMemory>>& posix_shm() const {
    return posix_shm_;
  }
  const std::map<int32_t, std::shared_ptr<SharedMemory>>& sysv_shm() const { return sysv_shm_; }
  [[nodiscard]] Result<std::shared_ptr<SharedMemory>> FindSysVById(int32_t shmid);

  // --- Devices -------------------------------------------------------------
  // Whitelisted memory-mappable devices (HPET et al.) and the vDSO.
  bool DeviceWhitelisted(const std::string& devname) const {
    return device_whitelist_.count(devname) > 0;
  }
  [[nodiscard]] Result<int> OpenDevice(Process& proc, const std::string& devname);
  const std::shared_ptr<VmObject>& vdso() const { return vdso_; }
  // Swaps in a "new platform" vDSO: restores inject the current one.
  void RegenerateVdso();

  // --- AIO ------------------------------------------------------------------
  uint64_t SubmitAio(Process& proc, int fd, AioRequest::Op op, uint64_t offset, uint64_t length);
  // Drains in-flight AIOs to completion (quiesce step). Returns how many
  // writes had to be waited out.
  uint64_t QuiesceAio(Process& proc);

 private:
  // Observability: bumps "kernel.syscalls" plus "kernel.syscall.<name>".
  void CountSyscall(const char* name);

  SimContext* sim_;
  Filesystem* rootfs_ = nullptr;

  IdAllocator pid_alloc_{2, 99999};
  IdAllocator tid_alloc_{100000, 999999};
  std::vector<std::unique_ptr<Process>> processes_;

  std::map<std::string, std::shared_ptr<SharedMemory>> posix_shm_;
  std::map<int32_t, std::shared_ptr<SharedMemory>> sysv_shm_;
  int32_t next_shmid_ = 1;

  int next_pty_index_ = 0;
  std::set<std::string> device_whitelist_{"hpet0", "null", "zero", "urandom"};
  std::shared_ptr<VmObject> vdso_;
  uint64_t vdso_generation_ = 1;
};

}  // namespace aurora

#endif  // SRC_POSIX_KERNEL_H_
