// Vnodes and the virtual file system interface.
//
// A Vnode is the kernel-side identity of a file: multiple open() calls on
// one path produce distinct FileDescriptions sharing one Vnode. Filesystems
// (AuroraFS and the Fig. 3 baselines) implement the Filesystem interface and
// charge the cost model inside their own read/write paths.
#ifndef SRC_POSIX_VNODE_H_
#define SRC_POSIX_VNODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/posix/file.h"
#include "src/vm/vm_object.h"

namespace aurora {

class Filesystem;

class Vnode : public FileObject {
 public:
  Vnode(Filesystem* fs, uint64_t ino) : fs_(fs), ino_(ino) {}

  FileType type() const override { return FileType::kVnode; }

  Filesystem* fs() const { return fs_; }
  uint64_t ino() const { return ino_; }
  uint64_t size() const { return size_; }
  void set_size(uint64_t s) { size_ = s; }
  uint32_t nlink() const { return nlink_; }
  void set_nlink(uint32_t n) { nlink_ = n; }

  // Hidden references held by Aurora: open descriptors and checkpoint
  // objects keep an unlinked ("anonymous") file alive across crashes, which
  // conventional file systems reclaim (paper section 5.2).
  uint32_t hidden_refs() const { return hidden_refs_; }
  void AddHiddenRef() { hidden_refs_++; }
  void DropHiddenRef() {
    if (hidden_refs_ > 0) {
      hidden_refs_--;
    }
  }

  [[nodiscard]] Result<uint64_t> Read(uint64_t off, void* out, uint64_t len);
  [[nodiscard]] Result<uint64_t> Write(uint64_t off, const void* data, uint64_t len);
  [[nodiscard]] Status Truncate(uint64_t new_size);
  [[nodiscard]] Status Fsync();

  // Builds a VM object whose pager demand-loads pages from this vnode, for
  // mmap. MAP_PRIVATE callers shadow the returned object.
  std::shared_ptr<VmObject> MakeVmObject();

 private:
  Filesystem* fs_;
  uint64_t ino_;
  uint64_t size_ = 0;
  uint32_t nlink_ = 1;
  uint32_t hidden_refs_ = 0;
};

class Filesystem {
 public:
  virtual ~Filesystem() = default;

  virtual std::string name() const = 0;

  // Namespace operations. Paths are flat names (the benchmarks and the SLS
  // need a namespace, not a hierarchy).
  [[nodiscard]] virtual Result<std::shared_ptr<Vnode>> Create(const std::string& path) = 0;
  [[nodiscard]] virtual Result<std::shared_ptr<Vnode>> Lookup(const std::string& path) = 0;
  [[nodiscard]] virtual Status Unlink(const std::string& path) = 0;
  [[nodiscard]] virtual Status Rename(const std::string& from, const std::string& to) = 0;
  virtual std::vector<std::string> List() const = 0;

  // Aurora checkpoints vnodes by inode number to avoid name-cache lookups
  // during stop time; baselines resolve paths (bench_ablations measures the
  // difference).
  [[nodiscard]] virtual Result<std::shared_ptr<Vnode>> LookupByIno(uint64_t ino) = 0;
  [[nodiscard]] virtual Result<std::string> PathOfIno(uint64_t ino) const = 0;

  // Data operations.
  [[nodiscard]] virtual Result<uint64_t> ReadAt(Vnode* vn, uint64_t off, void* out,
                                                uint64_t len) = 0;
  [[nodiscard]] virtual Result<uint64_t> WriteAt(Vnode* vn, uint64_t off, const void* data,
                                                 uint64_t len) = 0;
  [[nodiscard]] virtual Status Truncate(Vnode* vn, uint64_t new_size) = 0;
  [[nodiscard]] virtual Status Fsync(Vnode* vn) = 0;
};

}  // namespace aurora

#endif  // SRC_POSIX_VNODE_H_
