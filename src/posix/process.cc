#include "src/posix/process.h"

#include "src/posix/kernel.h"

namespace aurora {

Process::Process(Kernel* kernel, uint64_t pid, uint64_t local_pid, std::string name)
    : pgid(pid),
      sid(pid),
      kernel_(kernel),
      pid_(pid),
      local_pid_(local_pid),
      name_(std::move(name)),
      vm_(std::make_unique<VmMap>(kernel->sim())) {}

Thread& Process::AddThread() {
  auto tid = kernel_->AllocateTid();
  // Tid exhaustion is not a recoverable application error in the simulator.
  uint64_t id = tid.ok() ? *tid : 0;
  threads_.push_back(std::make_unique<Thread>(id, id));
  return *threads_.back();
}

}  // namespace aurora
