#include "src/posix/kernel.h"

#include <algorithm>

namespace aurora {

namespace {

// Fills the vDSO page with a generation-tagged pattern so tests can observe
// that restores inject the *current* platform's vDSO, not the saved one.
std::shared_ptr<VmObject> MakeVdso(uint64_t generation) {
  auto vdso = VmObject::CreateDevice(kPageSize);
  std::array<uint8_t, kPageSize> contents{};
  for (size_t i = 0; i < contents.size(); i++) {
    contents[i] = static_cast<uint8_t>((i + generation) & 0xff);
  }
  vdso->InstallPage(0, contents.data());
  return vdso;
}

}  // namespace

Kernel::Kernel(SimContext* sim) : sim_(sim) { vdso_ = MakeVdso(vdso_generation_); }

Kernel::~Kernel() = default;

void Kernel::RegenerateVdso() { vdso_ = MakeVdso(++vdso_generation_); }

Result<Process*> Kernel::CreateProcess(const std::string& name) {
  AURORA_ASSIGN_OR_RETURN(uint64_t pid, pid_alloc_.Allocate());
  auto proc = std::make_unique<Process>(this, pid, pid, name);
  proc->AddThread();
  Process* raw = proc.get();
  processes_.push_back(std::move(proc));
  return raw;
}

Result<Process*> Kernel::CreateProcessForRestore(const std::string& name, uint64_t local_pid) {
  // Virtualized IDs: the restored process gets a fresh global pid visible to
  // the system while keeping its checkpoint-time local pid (paper 5.3).
  AURORA_ASSIGN_OR_RETURN(uint64_t pid, pid_alloc_.Allocate());
  auto proc = std::make_unique<Process>(this, pid, local_pid, name);
  Process* raw = proc.get();
  processes_.push_back(std::move(proc));
  return raw;
}

Result<Process*> Kernel::Fork(Process& parent) {
  CountSyscall("fork");
  AURORA_ASSIGN_OR_RETURN(uint64_t pid, pid_alloc_.Allocate());
  auto child = std::make_unique<Process>(this, pid, pid, parent.name());
  child->parent = &parent;
  child->pgid = parent.pgid;
  child->sid = parent.sid;
  child->sigactions = parent.sigactions;
  // Address space: COW fork through the VM subsystem.
  AURORA_ASSIGN_OR_RETURN(std::unique_ptr<VmMap> vm, parent.vm().Fork());
  child->ReplaceVm(std::move(vm));
  // Descriptors: slots copied, open-file entries shared (offset sharing).
  child->fds() = parent.fds().Clone();
  // The calling thread is duplicated into the child.
  Thread& t = child->AddThread();
  if (!parent.threads().empty()) {
    t.cpu = parent.threads()[0]->cpu;
    t.sigmask = parent.threads()[0]->sigmask;
  }
  Process* raw = child.get();
  parent.children.push_back(raw);
  parent.mutation_gen++;  // child list changed: serialized tree grows
  processes_.push_back(std::move(child));
  return raw;
}

void Kernel::DestroyProcess(Process* proc) {
  if (proc->parent != nullptr) {
    auto& siblings = proc->parent->children;
    siblings.erase(std::remove(siblings.begin(), siblings.end(), proc), siblings.end());
  }
  for (Process* child : proc->children) {
    child->parent = nullptr;
  }
  pid_alloc_.Release(proc->pid());
  for (auto& t : proc->threads()) {
    tid_alloc_.Release(t->tid());
  }
  processes_.erase(std::remove_if(processes_.begin(), processes_.end(),
                                  [&](const auto& p) { return p.get() == proc; }),
                   processes_.end());
}

Process* Kernel::FindPid(uint64_t pid) {
  for (auto& p : processes_) {
    if (p->pid() == pid) {
      return p.get();
    }
  }
  return nullptr;
}

Process* Kernel::FindLocalPid(uint64_t local_pid) {
  for (auto& p : processes_) {
    if (p->local_pid() == local_pid) {
      return p.get();
    }
  }
  return nullptr;
}

std::vector<Process*> Kernel::AllProcesses() {
  std::vector<Process*> out;
  out.reserve(processes_.size());
  for (auto& p : processes_) {
    out.push_back(p.get());
  }
  return out;
}

Status Kernel::Kill(uint64_t local_pid, int signo) {
  CountSyscall("kill");
  Process* proc = FindLocalPid(local_pid);
  if (proc == nullptr) {
    return Status::Error(Errc::kNotFound, "no such process");
  }
  if (signo < 0 || signo >= kNumSignals) {
    return Status::Error(Errc::kInvalidArgument, "bad signal number");
  }
  proc->PostSignal(signo);
  return Status::Ok();
}

void Kernel::Exit(Process* proc, int status) {
  proc->exit_status = status;
  proc->zombie = true;
  proc->mutation_gen++;
  for (auto& t : proc->threads()) {
    t->state = ThreadState::kExited;
  }
  // Release the address space and descriptors now; the zombie keeps only
  // its identity and exit status for the parent to collect.
  proc->ReplaceVm(std::make_unique<VmMap>(sim_));
  proc->fds() = FdTable();
  if (proc->parent != nullptr) {
    proc->parent->PostSignal(kSigChld);
  } else {
    DestroyProcess(proc);
  }
}

Result<std::pair<uint64_t, int>> Kernel::WaitAny(Process& parent) {
  for (Process* child : parent.children) {
    if (child->zombie) {
      auto result = std::make_pair(child->local_pid(), child->exit_status);
      DestroyProcess(child);
      parent.mutation_gen++;  // child list changed: serialized tree shrinks
      return result;
    }
  }
  return Status::Error(Errc::kWouldBlock, "no exited children");
}

void Kernel::CountSyscall(const char* name) {
  sim_->metrics.counter("kernel.syscalls").Add();
  sim_->metrics.counter(std::string("kernel.syscall.") + name).Add();
}

QuiesceStats Kernel::Quiesce(const std::vector<Process*>& procs) {
  QuiesceStats stats;
  const CostModel& cost = sim_->cost;
  // One IPI round per core the group is running on (bounded by the machine).
  uint64_t running = 0;
  for (Process* p : procs) {
    for (auto& t : p->threads()) {
      if (t->state == ThreadState::kUser || t->state == ThreadState::kKernelRunning) {
        running++;
      }
    }
  }
  uint64_t cores = std::min<uint64_t>(running, static_cast<uint64_t>(sim_->ncpus));
  sim_->clock.Advance(cost.quiesce_ipi * std::max<uint64_t>(cores, 1));
  stats.ipis = std::max<uint64_t>(cores, 1);

  sim_->metrics.counter("kernel.quiesces").Add();
  sim_->metrics.counter("kernel.quiesce_ipis").Add(stats.ipis);
  for (Process* p : procs) {
    QuiesceAio(*p);
    for (auto& t : p->threads()) {
      switch (t->state) {
        case ThreadState::kUser:
          stats.threads_in_user++;
          break;
        case ThreadState::kKernelRunning:
          // Non-sleeping syscalls finish quickly; wait them out.
          sim_->clock.Advance(cost.syscall_drain);
          stats.threads_in_syscall++;
          break;
        case ThreadState::kKernelSleeping:
          // Interrupt the sleep and rewind the PC so the call transparently
          // reissues after resume (no EINTR reaches the application).
          sim_->clock.Advance(cost.syscall_restart);
          t->restart_syscall = true;
          stats.syscalls_restarted++;
          break;
        case ThreadState::kStopped:
        case ThreadState::kExited:
          continue;
      }
      if (t->cpu.fpu_dirty) {
        sim_->clock.Advance(cost.fpu_flush_ipi);
        t->cpu.fpu_dirty = false;
        stats.fpu_flushes++;
      }
      ThreadState resume =
          t->state == ThreadState::kKernelRunning ? ThreadState::kUser : t->state;
      if (t->resume_state != resume) {
        // Quiesce itself mutates checkpoint-visible state only through
        // resume_state; bumping solely on a real change keeps idle epochs'
        // process blobs warm in the serialization cache.
        p->mutation_gen++;
      }
      t->resume_state = resume;
      t->state = ThreadState::kStopped;
    }
  }
  sim_->metrics.counter("kernel.syscalls_restarted").Add(stats.syscalls_restarted);
  return stats;
}

void Kernel::Resume(const std::vector<Process*>& procs) {
  for (Process* p : procs) {
    for (auto& t : p->threads()) {
      if (t->state == ThreadState::kStopped) {
        t->state = t->resume_state;
        if (t->restart_syscall) {
          // The rewound PC makes the thread reissue the syscall immediately.
          t->restart_syscall = false;
          t->state = ThreadState::kKernelSleeping;
        }
      }
    }
  }
}

Result<int> Kernel::Open(Process& proc, const std::string& path, int flags, bool create) {
  CountSyscall("open");
  if (rootfs_ == nullptr) {
    return Status::Error(Errc::kBadState, "no root filesystem");
  }
  std::shared_ptr<Vnode> vn;
  auto found = rootfs_->Lookup(path);
  if (found.ok()) {
    vn = *found;
  } else if (create) {
    AURORA_ASSIGN_OR_RETURN(vn, rootfs_->Create(path));
  } else {
    return found.status();
  }
  vn->AddHiddenRef();
  auto desc = std::make_shared<FileDescription>();
  desc->object = vn;
  desc->open_flags = flags;
  return proc.fds().Install(std::move(desc));
}

Status Kernel::Close(Process& proc, int fd) {
  CountSyscall("close");
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, proc.fds().Get(fd));
  if (desc->object != nullptr && desc->object->type() == FileType::kVnode && desc.use_count() <= 2) {
    // Last descriptor reference: drop the hidden ref taken at open so
    // unlinked files become reclaimable (except on AuroraFS under
    // checkpoint references).
    static_cast<Vnode*>(desc->object.get())->DropHiddenRef();
  }
  return proc.fds().Close(fd);
}

Result<uint64_t> Kernel::ReadFd(Process& proc, int fd, void* out, uint64_t len) {
  CountSyscall("read");
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, proc.fds().Get(fd));
  if ((desc->open_flags & kOpenRead) == 0) {
    return Status::Error(Errc::kInvalidArgument, "fd not open for reading");
  }
  switch (desc->object->type()) {
    case FileType::kVnode: {
      auto* vn = static_cast<Vnode*>(desc->object.get());
      AURORA_ASSIGN_OR_RETURN(uint64_t n, vn->Read(desc->offset, out, len));
      desc->offset += n;  // shared by every descriptor dup'd from this one
      desc->generation++;
      return n;
    }
    case FileType::kPipe: {
      AURORA_ASSIGN_OR_RETURN(uint64_t n, static_cast<Pipe*>(desc->object.get())->Read(out, len));
      desc->object->Touch();  // buffered bytes drained
      return n;
    }
    default:
      return Status::Error(Errc::kNotSupported, "read on this object type");
  }
}

Result<uint64_t> Kernel::WriteFd(Process& proc, int fd, const void* data, uint64_t len) {
  CountSyscall("write");
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, proc.fds().Get(fd));
  if ((desc->open_flags & kOpenWrite) == 0) {
    return Status::Error(Errc::kInvalidArgument, "fd not open for writing");
  }
  switch (desc->object->type()) {
    case FileType::kVnode: {
      auto* vn = static_cast<Vnode*>(desc->object.get());
      uint64_t at = (desc->open_flags & kOpenAppend) ? vn->size() : desc->offset;
      AURORA_ASSIGN_OR_RETURN(uint64_t n, vn->Write(at, data, len));
      desc->offset = at + n;
      desc->generation++;
      vn->Touch();  // serialized vnode record carries the size
      return n;
    }
    case FileType::kPipe: {
      AURORA_ASSIGN_OR_RETURN(uint64_t n,
                              static_cast<Pipe*>(desc->object.get())->Write(data, len));
      desc->object->Touch();  // buffered bytes grew
      return n;
    }
    default:
      return Status::Error(Errc::kNotSupported, "write on this object type");
  }
}

Result<uint64_t> Kernel::SeekFd(Process& proc, int fd, int64_t offset, int whence) {
  CountSyscall("lseek");
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, proc.fds().Get(fd));
  if (desc->object->type() != FileType::kVnode) {
    return Status::Error(Errc::kNotSupported, "seek on non-file");
  }
  auto* vn = static_cast<Vnode*>(desc->object.get());
  int64_t base = 0;
  switch (whence) {
    case 0:
      base = 0;
      break;
    case 1:
      base = static_cast<int64_t>(desc->offset);
      break;
    case 2:
      base = static_cast<int64_t>(vn->size());
      break;
    default:
      return Status::Error(Errc::kInvalidArgument, "bad whence");
  }
  int64_t target = base + offset;
  if (target < 0) {
    return Status::Error(Errc::kInvalidArgument, "negative offset");
  }
  desc->offset = static_cast<uint64_t>(target);
  desc->generation++;
  return desc->offset;
}

Result<std::pair<int, int>> Kernel::MakePipe(Process& proc) {
  CountSyscall("pipe");
  auto pipe = std::make_shared<Pipe>();
  auto rd = std::make_shared<FileDescription>();
  rd->object = pipe;
  rd->open_flags = kOpenRead;
  auto wr = std::make_shared<FileDescription>();
  wr->object = pipe;
  wr->open_flags = kOpenWrite;
  int rfd = proc.fds().Install(std::move(rd));
  int wfd = proc.fds().Install(std::move(wr));
  return std::make_pair(rfd, wfd);
}

Result<int> Kernel::MakeSocket(Process& proc, SocketDomain domain, SocketProto proto) {
  CountSyscall("socket");
  auto sock = std::make_shared<Socket>(domain, proto);
  auto desc = std::make_shared<FileDescription>();
  desc->object = std::move(sock);
  desc->open_flags = kOpenRead | kOpenWrite;
  return proc.fds().Install(std::move(desc));
}

Result<int> Kernel::MakeKqueue(Process& proc) {
  CountSyscall("kqueue");
  auto kq = std::make_shared<Kqueue>();
  auto desc = std::make_shared<FileDescription>();
  desc->object = std::move(kq);
  desc->open_flags = kOpenRead | kOpenWrite;
  return proc.fds().Install(std::move(desc));
}

Result<std::pair<int, int>> Kernel::MakePty(Process& proc) {
  CountSyscall("posix_openpt");
  auto pty = std::make_shared<Pseudoterminal>();
  pty->index = next_pty_index_++;
  pty->SetSession(proc.sid);
  auto master = std::make_shared<FileDescription>();
  master->object = pty;
  master->open_flags = kOpenRead | kOpenWrite;
  auto slave = std::make_shared<FileDescription>();
  slave->object = pty;
  slave->open_flags = kOpenRead | kOpenWrite | kOpenAppend;  // append bit marks the slave side
  int mfd = proc.fds().Install(std::move(master));
  int sfd = proc.fds().Install(std::move(slave));
  return std::make_pair(mfd, sfd);
}

Result<int> Kernel::ShmOpen(Process& proc, const std::string& name, uint64_t size) {
  CountSyscall("shm_open");
  std::shared_ptr<SharedMemory> shm;
  auto it = posix_shm_.find(name);
  if (it != posix_shm_.end()) {
    shm = it->second;
  } else {
    shm = std::make_shared<SharedMemory>(SharedMemory::Kind::kPosix);
    shm->name = name;
    shm->size = PageRound(size);
    shm->object = VmObject::CreateAnonymous(shm->size);
    posix_shm_[name] = shm;
  }
  auto desc = std::make_shared<FileDescription>();
  desc->object = shm;
  desc->open_flags = kOpenRead | kOpenWrite;
  return proc.fds().Install(std::move(desc));
}

Result<int> Kernel::ShmGet(Process& proc, int32_t key, uint64_t size) {
  CountSyscall("shmget");
  std::shared_ptr<SharedMemory> shm;
  for (auto& [id, candidate] : sysv_shm_) {
    if (candidate->key == key) {
      shm = candidate;
      break;
    }
  }
  if (shm == nullptr) {
    shm = std::make_shared<SharedMemory>(SharedMemory::Kind::kSysV);
    shm->key = key;
    shm->shmid = next_shmid_++;
    shm->size = PageRound(size);
    shm->object = VmObject::CreateAnonymous(shm->size);
    sysv_shm_[shm->shmid] = shm;
  }
  auto desc = std::make_shared<FileDescription>();
  desc->object = shm;
  desc->open_flags = kOpenRead | kOpenWrite;
  return proc.fds().Install(std::move(desc));
}

Result<uint64_t> Kernel::ShmMap(Process& proc, int fd) {
  CountSyscall("shmat");
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<FileDescription> desc, proc.fds().Get(fd));
  if (desc->object->type() != FileType::kShm) {
    return Status::Error(Errc::kInvalidArgument, "fd is not shared memory");
  }
  auto* shm = static_cast<SharedMemory*>(desc->object.get());
  // Map through the backmap: shm->object always names the latest shadow.
  return proc.vm().Map(0, shm->size, kProtRead | kProtWrite, shm->object, 0,
                       /*copy_on_write=*/false);
}

void Kernel::AdoptShm(const std::shared_ptr<SharedMemory>& shm) {
  if (shm->kind() == SharedMemory::Kind::kPosix) {
    posix_shm_[shm->name] = shm;
  } else {
    sysv_shm_[shm->shmid] = shm;
    next_shmid_ = std::max(next_shmid_, shm->shmid + 1);
  }
}

void Kernel::RemoveShm(const SharedMemory* shm) {
  if (shm->kind() == SharedMemory::Kind::kPosix) {
    auto it = posix_shm_.find(shm->name);
    if (it != posix_shm_.end() && it->second.get() == shm) {
      posix_shm_.erase(it);
    }
  } else {
    auto it = sysv_shm_.find(shm->shmid);
    if (it != sysv_shm_.end() && it->second.get() == shm) {
      sysv_shm_.erase(it);
    }
  }
}

void Kernel::RebindShmObjects(VmObject* old_top, const std::shared_ptr<VmObject>& new_top) {
  for (auto& [name, shm] : posix_shm_) {
    if (shm->object.get() == old_top) {
      shm->object = new_top;
    }
  }
  for (auto& [id, shm] : sysv_shm_) {
    if (shm->object.get() == old_top) {
      shm->object = new_top;
    }
  }
}

Result<std::shared_ptr<SharedMemory>> Kernel::FindSysVById(int32_t shmid) {
  auto it = sysv_shm_.find(shmid);
  if (it == sysv_shm_.end()) {
    return Status::Error(Errc::kNotFound, "no such SysV segment");
  }
  return it->second;
}

Result<int> Kernel::OpenDevice(Process& proc, const std::string& devname) {
  auto dev = std::make_shared<DeviceFile>();
  dev->devname = devname;
  dev->whitelisted = DeviceWhitelisted(devname);
  if (devname == "hpet0") {
    dev->device_memory = VmObject::CreateDevice(kPageSize);
  }
  auto desc = std::make_shared<FileDescription>();
  desc->object = std::move(dev);
  desc->open_flags = kOpenRead;
  return proc.fds().Install(std::move(desc));
}

uint64_t Kernel::SubmitAio(Process& proc, int fd, AioRequest::Op op, uint64_t offset,
                           uint64_t length) {
  AioRequest req;
  req.id = proc.next_aio_id++;
  req.fd = fd;
  req.op = op;
  req.offset = offset;
  req.length = length;
  proc.aios.push_back(req);
  proc.mutation_gen++;
  return req.id;
}

uint64_t Kernel::QuiesceAio(Process& proc) {
  uint64_t waited = 0;
  for (auto& aio : proc.aios) {
    if (aio.state == AioRequest::State::kInFlight && aio.op == AioRequest::Op::kWrite) {
      // Writes must land before the checkpoint is marked complete; charge
      // the drain and mark them done.
      sim_->clock.Advance(sim_->cost.nvme_write_latency / 2);
      aio.state = AioRequest::State::kDone;
      waited++;
    }
    // In-flight reads stay recorded; the restore path reissues them.
  }
  if (waited > 0) {
    proc.mutation_gen++;  // AIO states flipped to done
  }
  return waited;
}

}  // namespace aurora
