#include "src/posix/vnode.h"

#include <cstring>

#include "src/base/units.h"

namespace aurora {

Result<uint64_t> Vnode::Read(uint64_t off, void* out, uint64_t len) {
  return fs_->ReadAt(this, off, out, len);
}

Result<uint64_t> Vnode::Write(uint64_t off, const void* data, uint64_t len) {
  return fs_->WriteAt(this, off, data, len);
}

Status Vnode::Truncate(uint64_t new_size) { return fs_->Truncate(this, new_size); }

Status Vnode::Fsync() { return fs_->Fsync(this); }

std::shared_ptr<VmObject> Vnode::MakeVmObject() {
  Vnode* vn = this;
  auto obj = VmObject::CreateVnode(PageRound(size_), [vn](uint64_t pgidx, uint8_t* out) {
    uint64_t off = pgidx * kPageSize;
    if (off >= vn->size()) {
      return false;
    }
    std::memset(out, 0, kPageSize);
    auto got = vn->Read(off, out, std::min<uint64_t>(kPageSize, vn->size() - off));
    return got.ok() && *got > 0;
  });
  obj->set_backing_ino(ino_);
  return obj;
}

}  // namespace aurora
