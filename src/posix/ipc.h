// Pipes, kqueues, pseudoterminals and shared memory objects.
//
// Each of these is a first-class POSIX object: the SLS serializes the state
// declared here directly (Table 4 measures exactly these paths).
#ifndef SRC_POSIX_IPC_H_
#define SRC_POSIX_IPC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/posix/file.h"
#include "src/vm/vm_object.h"

namespace aurora {

class Pipe : public FileObject {
 public:
  static constexpr size_t kCapacity = 64 * 1024;

  FileType type() const override { return FileType::kPipe; }

  [[nodiscard]] Result<uint64_t> Write(const void* data, uint64_t len);
  [[nodiscard]] Result<uint64_t> Read(void* out, uint64_t len);

  bool read_open = true;
  bool write_open = true;
  std::deque<uint8_t> buffer;
};

// kevent registration entry, mirroring struct kevent.
struct KEvent {
  uint64_t ident = 0;
  int16_t filter = 0;
  uint16_t flags = 0;
  uint32_t fflags = 0;
  int64_t data = 0;
  uint64_t udata = 0;
};

class Kqueue : public FileObject {
 public:
  FileType type() const override { return FileType::kKqueue; }

  void Register(const KEvent& ev) {
    events_.push_back(ev);
    Touch();  // invalidate the cached serialization (registration set changed)
  }
  const std::vector<KEvent>& events() const { return events_; }
  // Mutable access for restore/teardown; callers that change the set must
  // Touch() — prefer Register() for additions.
  std::vector<KEvent>& events() { return events_; }

 private:
  std::vector<KEvent> events_;
};

// Master+slave pseudoterminal pair represented as one kernel object; the
// two descriptions reference it with a side flag in their open_flags.
class Pseudoterminal : public FileObject {
 public:
  FileType type() const override { return FileType::kPty; }

  int index = 0;              // /dev/pts/<index>
  uint32_t termios_iflag = 0x2d02;  // cooked-mode defaults
  uint32_t termios_oflag = 0x5;
  uint32_t termios_cflag = 0x4b00;
  uint32_t termios_lflag = 0x8a3b;
  uint16_t ws_rows = 24;
  uint16_t ws_cols = 80;
  uint64_t session_sid = 0;  // controlling session
  std::deque<uint8_t> input;   // keyboard -> slave
  std::deque<uint8_t> output;  // slave -> display

  // Mutation helpers (ioctl analogues). They bump the serialization-cache
  // generation; mutate through these, not the fields, on live objects.
  void SetTermios(uint32_t iflag, uint32_t oflag, uint32_t cflag, uint32_t lflag) {
    termios_iflag = iflag;
    termios_oflag = oflag;
    termios_cflag = cflag;
    termios_lflag = lflag;
    Touch();
  }
  void SetWinsize(uint16_t rows, uint16_t cols) {  // TIOCSWINSZ
    ws_rows = rows;
    ws_cols = cols;
    Touch();
  }
  void SetSession(uint64_t sid) {  // TIOCSCTTY
    session_sid = sid;
    Touch();
  }
  void WriteInput(const void* data, uint64_t len) {  // keyboard -> slave
    const auto* p = static_cast<const uint8_t*>(data);
    input.insert(input.end(), p, p + len);
    Touch();
  }
  void WriteOutput(const void* data, uint64_t len) {  // slave -> display
    const auto* p = static_cast<const uint8_t*>(data);
    output.insert(output.end(), p, p + len);
    Touch();
  }
};

// POSIX (shm_open) or System V (shmget) shared memory. The descriptor holds
// a backmap reference to the current VM object; system shadowing rebinds it
// so future mappings use the latest shadow (paper section 6).
class SharedMemory : public FileObject {
 public:
  enum class Kind : uint8_t { kPosix, kSysV };

  explicit SharedMemory(Kind kind) : kind_(kind) {}

  FileType type() const override { return FileType::kShm; }
  Kind kind() const { return kind_; }

  std::string name;    // POSIX: shm_open name
  int32_t key = 0;     // SysV: ftok key
  int32_t shmid = 0;   // SysV: id within the global namespace
  uint32_t mode = 0600;
  uint64_t size = 0;
  std::shared_ptr<VmObject> object;

 private:
  Kind kind_;
};

// Memory-mapped device files (HPET, vDSO). Only whitelisted devices may be
// held by persistent processes; their contents are reinjected at restore
// rather than checkpointed (paper section 5.3).
class DeviceFile : public FileObject {
 public:
  FileType type() const override { return FileType::kDevice; }

  std::string devname;
  bool whitelisted = false;
  std::shared_ptr<VmObject> device_memory;
};

// Asynchronous I/O request tracked for quiescing: writes delay checkpoint
// completion until incorporated; reads are reissued during restore.
struct AioRequest {
  enum class Op : uint8_t { kRead, kWrite };
  enum class State : uint8_t { kInFlight, kDone, kFailed };

  uint64_t id = 0;
  int fd = -1;
  Op op = Op::kRead;
  State state = State::kInFlight;
  uint64_t offset = 0;
  uint64_t length = 0;
};

}  // namespace aurora

#endif  // SRC_POSIX_IPC_H_
