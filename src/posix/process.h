// Processes and threads of the simulated kernel.
//
// The five categories of state the paper persists (section 5.1) all live
// here or hang off this: process state (tree/groups/sessions/signals),
// thread state (masks, priorities), CPU state (registers, FPU), memory
// (the VmMap) and file descriptors (the FdTable).
#ifndef SRC_POSIX_PROCESS_H_
#define SRC_POSIX_PROCESS_H_

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/posix/file.h"
#include "src/posix/ipc.h"
#include "src/vm/vm_map.h"

namespace aurora {

class Kernel;

// Architectural register context, captured verbatim off the kernel stack as
// the paper describes. The layout is opaque to Aurora: it is copied, stored
// and reinstalled, never interpreted.
struct CpuState {
  std::array<uint64_t, 16> gpr{};  // rax..r15
  uint64_t rip = 0;
  uint64_t rsp = 0;
  uint64_t rflags = 0x202;
  std::array<uint8_t, 512> fpu{};  // XSAVE area analog
  bool fpu_dirty = false;          // lazily-saved FPU needs an IPI flush
};

enum class ThreadState : uint8_t {
  kUser,            // executing userspace code
  kKernelRunning,   // in a non-sleeping syscall
  kKernelSleeping,  // blocked in a sleeping syscall (read, poll, ...)
  kStopped,         // quiesced at the kernel boundary
  kExited,
};

struct SigAction {
  uint64_t handler = 0;  // 0 = SIG_DFL, 1 = SIG_IGN, else handler address
  uint64_t mask = 0;
  uint32_t flags = 0;
};

inline constexpr int kNumSignals = 32;
inline constexpr int kSigChld = 20;  // FreeBSD numbering

class Thread {
 public:
  Thread(uint64_t tid, uint64_t local_tid) : tid_(tid), local_tid_(local_tid) {}

  uint64_t tid() const { return tid_; }
  uint64_t local_tid() const { return local_tid_; }
  void set_local_tid(uint64_t t) { local_tid_ = t; }

  CpuState cpu;
  uint64_t sigmask = 0;
  uint64_t pending_signals = 0;
  int priority = 0;
  ThreadState state = ThreadState::kUser;
  ThreadState resume_state = ThreadState::kUser;  // where quiesce found us
  // Set when quiescing interrupted a sleeping syscall: the PC was rewound to
  // the syscall instruction so the call transparently reissues (no EINTR
  // surfaces to the application).
  bool restart_syscall = false;

 private:
  uint64_t tid_;
  uint64_t local_tid_;
};

class Process {
 public:
  Process(Kernel* kernel, uint64_t pid, uint64_t local_pid, std::string name);

  Kernel* kernel() const { return kernel_; }
  uint64_t pid() const { return pid_; }
  uint64_t local_pid() const { return local_pid_; }
  void set_local_pid(uint64_t p) { local_pid_ = p; }
  const std::string& name() const { return name_; }

  uint64_t pgid = 0;  // process group (job control)
  uint64_t sid = 0;   // session

  Process* parent = nullptr;
  std::vector<Process*> children;

  VmMap& vm() { return *vm_; }
  const VmMap& vm() const { return *vm_; }
  void ReplaceVm(std::unique_ptr<VmMap> vm) { vm_ = std::move(vm); }

  FdTable& fds() { return fds_; }
  const FdTable& fds() const { return fds_; }

  Thread& AddThread();
  std::vector<std::unique_ptr<Thread>>& threads() { return threads_; }
  const std::vector<std::unique_ptr<Thread>>& threads() const { return threads_; }

  std::array<SigAction, kNumSignals> sigactions{};
  uint64_t pending_signals = 0;
  std::deque<int> signal_queue;

  void PostSignal(int signo) {
    pending_signals |= (1ull << signo);
    signal_queue.push_back(signo);
    mutation_gen++;
  }

  // Serialization-cache generation for process-level state that is not
  // covered by the VM map's or fd table's own counters (signals, zombie
  // transitions, AIO queue, thread resume states). The serializer keys a
  // process's cached blob on the sum of all three counters.
  uint64_t mutation_gen = 1;

  // Ephemeral processes belong to the consistency group but are not
  // persisted; after a restore the parent receives SIGCHLD as if the child
  // had exited (paper section 3).
  bool ephemeral = false;

  bool zombie = false;
  int exit_status = 0;

  std::vector<AioRequest> aios;
  uint64_t next_aio_id = 1;

 private:
  Kernel* kernel_;
  uint64_t pid_;
  uint64_t local_pid_;
  std::string name_;
  std::unique_ptr<VmMap> vm_;
  FdTable fds_;
  std::vector<std::unique_ptr<Thread>> threads_;
};

}  // namespace aurora

#endif  // SRC_POSIX_PROCESS_H_
