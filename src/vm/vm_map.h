// Address spaces: the VM map (mapped regions) plus its pmap cache.
//
// Mirrors FreeBSD's vmspace/vm_map: a sorted list of entries, each backed by
// one VmObject at an offset, with protection bits and a copy-on-write flag.
// The page fault handler lives here: it walks the entry's shadow chain,
// performs COW copies into the top object, and installs pmap translations,
// charging the cost model for each primitive.
#ifndef SRC_VM_VM_MAP_H_
#define SRC_VM_VM_MAP_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/base/units.h"
#include "src/vm/pmap.h"
#include "src/vm/vm_object.h"

namespace aurora {

inline constexpr int kProtRead = 1;
inline constexpr int kProtWrite = 2;
inline constexpr int kProtExec = 4;

// madvise(2) hints honored by the paging policy (paper section 6: custom
// applications use madvise to improve page selection).
inline constexpr int kMadvNormal = 0;
inline constexpr int kMadvDontneed = 1;  // evict first
inline constexpr int kMadvWillneed = 2;  // evict last

struct VmMapEntry {
  uint64_t start = 0;  // page aligned, inclusive
  uint64_t end = 0;    // page aligned, exclusive
  int prot = kProtRead | kProtWrite;
  uint64_t offset = 0;   // byte offset into the object, page aligned
  bool copy_on_write = false;  // MAP_PRIVATE semantics: fork shadows this entry
  bool exclude_from_checkpoint = false;  // sls_mctl(MEMCTL_EXCLUDE)
  int madvise_hint = 0;                  // advisory paging hint
  std::shared_ptr<VmObject> object;

  uint64_t size() const { return end - start; }
  uint64_t PageIndexOf(uint64_t addr) const { return (addr - start + offset) >> kPageShift; }
};

struct VmFaultStats {
  uint64_t soft_faults = 0;  // translation installed, no copy
  uint64_t cow_faults = 0;   // page copied into the top object
  uint64_t zero_fills = 0;
};

class VmMap {
 public:
  explicit VmMap(SimContext* sim) : sim_(sim) {}

  // Maps `object` at `hint` (or the next free range if hint is 0 or busy).
  // Returns the chosen start address.
  [[nodiscard]] Result<uint64_t> Map(uint64_t hint, uint64_t size, int prot,
                                     std::shared_ptr<VmObject> object,
                                     uint64_t offset, bool copy_on_write);
  [[nodiscard]] Status Unmap(uint64_t start, uint64_t size);
  [[nodiscard]] Status Protect(uint64_t start, uint64_t size, int prot);

  VmMapEntry* FindEntry(uint64_t addr);
  // Sets the advisory paging hint for the entry containing `addr`.
  [[nodiscard]] Status Advise(uint64_t addr, int hint);
  const std::map<uint64_t, VmMapEntry>& entries() const { return entries_; }
  std::map<uint64_t, VmMapEntry>& entries() { return entries_; }

  // Handles a page fault at `addr`. Returns the pmap entry installed.
  [[nodiscard]] Result<Pmap::Entry*> Fault(uint64_t addr, bool write);

  // Memory accessors used by simulated applications; they fault as needed
  // and really move bytes, so checkpoint/restore correctness is observable.
  [[nodiscard]] Status Write(uint64_t addr, const void* data, uint64_t len);
  [[nodiscard]] Status Read(uint64_t addr, void* out, uint64_t len);

  // Touches one byte per page in [addr, addr+len) with writes (workload
  // helper for dirtying memory at page granularity cheaply).
  [[nodiscard]] Status DirtyRange(uint64_t addr, uint64_t len);

  // fork(): clones the address space. Shared entries alias the same object;
  // private (COW) entries get a fresh shadow on *both* sides and the
  // parent's stale translations are invalidated, charging fork's per-page
  // cost (this is what the RDB baseline's 8 ms stop time is made of).
  [[nodiscard]] Result<std::unique_ptr<VmMap>> Fork();

  Pmap& pmap() { return pmap_; }
  const VmFaultStats& fault_stats() const { return fault_stats_; }
  SimContext* sim() { return sim_; }

  // Total resident pages across all distinct objects (top of chains only).
  uint64_t ResidentPages() const;

  // Serialization-cache generation: bumped by layout mutations (map, unmap,
  // protect, advise, fork), not by page faults — faults change page content,
  // which the memory snapshot captures, but not the serialized map layout.
  uint64_t generation() const { return generation_; }
  // For callers that mutate checkpoint-visible entry state through
  // FindEntry() (e.g. sls_mctl toggling exclude_from_checkpoint).
  void TouchLayout() { generation_++; }

 private:
  [[nodiscard]] Result<uint64_t> FindFreeRange(uint64_t hint, uint64_t size) const;

  SimContext* sim_;
  std::map<uint64_t, VmMapEntry> entries_;
  Pmap pmap_;
  VmFaultStats fault_stats_;
  uint64_t generation_ = 1;
  uint64_t alloc_cursor_ = 0x10000000;  // bump pointer for hint-less maps
};

}  // namespace aurora

#endif  // SRC_VM_VM_MAP_H_
