// Simulated physical map (hardware page tables) for one address space.
//
// The pmap is a cache over the VM map, exactly as in FreeBSD: entries are
// ephemeral and recreated by page faults. Checkpointing write-protects or
// invalidates pmap entries; the costs of those PTE walks and the TLB
// shootdowns they require are the dominant term of Aurora's stop time
// (Table 5's ~23 ns/page slope).
#ifndef SRC_VM_PMAP_H_
#define SRC_VM_PMAP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "src/base/cost_model.h"
#include "src/base/sim_clock.h"
#include "src/base/units.h"
#include "src/vm/vm_object.h"

namespace aurora {

class Pmap {
 public:
  ~Pmap();

  struct Entry {
    VmObject* object = nullptr;  // nullptr => the shared zero page
    uint64_t pgidx = 0;          // page index within the object
    VmPage* frame = nullptr;
    bool writable = false;
    bool dirty = false;
  };

  // Installs a translation. Charges one PTE install.
  void Enter(uint64_t vpage, Entry entry, const CostModel& cost, SimClock* clock);

  Entry* Lookup(uint64_t vpage);

  // Removes every translation; the caller charges the TLB shootdown. Charges
  // one PTE write per resident entry and returns how many there were.
  uint64_t InvalidateAll(const CostModel& cost, SimClock* clock);

  // Removes translations in [start, end). Returns the count removed.
  uint64_t InvalidateRange(uint64_t start, uint64_t end, const CostModel& cost, SimClock* clock);

  // Removes translations whose frame lives in `object` (used before a
  // collapse destroys or moves that object's frames).
  uint64_t InvalidateObject(const VmObject* object, const CostModel& cost, SimClock* clock);

  // Clears the writable bit on all writable translations (fork-style COW
  // arming). Returns the count downgraded.
  uint64_t WriteProtectAll(const CostModel& cost, SimClock* clock);

  // Write-protects translations in [start, end): read mappings of the now
  // frozen pages stay valid; the first write per page faults and promotes
  // into the new shadow. This is system shadowing's COW arming.
  uint64_t WriteProtectRange(uint64_t start, uint64_t end, const CostModel& cost,
                             SimClock* clock);

  // Removes one translation if it still references `frame` (pv teardown).
  // Returns true if a translation was removed.
  bool RemoveTranslation(uint64_t vpage, const VmPage* frame);

  uint64_t ResidentCount() const { return entries_.size(); }
  uint64_t DirtyCount() const;
  // Number of currently-writable translations. Writable PTEs only exist for
  // pages written since the last write-protect sweep, so this is the address
  // space's dirtied-since-last-epoch set.
  uint64_t WritableCount() const { return writable_.size(); }

 private:
  std::map<uint64_t, Entry> entries_;  // keyed by page-aligned vaddr
  // Index of the writable translations, maintained at fault/install time so
  // checkpoint write-protect sweeps walk only the dirtied PTEs instead of
  // every resident entry (stop time scales with dirtied state).
  std::set<uint64_t> writable_;
};

}  // namespace aurora

#endif  // SRC_VM_PMAP_H_
