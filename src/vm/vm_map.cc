#include "src/vm/vm_map.h"

#include <algorithm>
#include <cstring>
#include <set>

namespace aurora {

Result<uint64_t> VmMap::FindFreeRange(uint64_t hint, uint64_t size) const {
  uint64_t candidate = hint ? hint : alloc_cursor_;
  for (int attempts = 0; attempts < 2; attempts++) {
    // Scan forward from `candidate` until [candidate, candidate+size)
    // collides with nothing — neither the entry before it (which may extend
    // over it) nor any entry starting inside it.
    bool moved = true;
    while (moved && candidate + size > candidate) {
      moved = false;
      auto it = entries_.lower_bound(candidate);
      if (it != entries_.begin()) {
        auto prev = std::prev(it);
        if (prev->second.end > candidate) {
          candidate = prev->second.end;
          moved = true;
          continue;
        }
      }
      if (it != entries_.end() && it->second.start < candidate + size) {
        candidate = it->second.end;
        moved = true;
      }
    }
    if (candidate + size > candidate) {  // no overflow
      return candidate;
    }
    candidate = kPageSize;  // wrap once
  }
  return Status::Error(Errc::kNoSpace, "address space exhausted");
}

Result<uint64_t> VmMap::Map(uint64_t hint, uint64_t size, int prot,
                            std::shared_ptr<VmObject> object, uint64_t offset,
                            bool copy_on_write) {
  if (size == 0 || size != PageRound(size) || offset != PageTrunc(offset) ||
      hint != PageTrunc(hint)) {
    return Status::Error(Errc::kInvalidArgument, "unaligned mapping");
  }
  AURORA_ASSIGN_OR_RETURN(uint64_t start, FindFreeRange(hint, size));
  VmMapEntry entry;
  entry.start = start;
  entry.end = start + size;
  entry.prot = prot;
  entry.offset = offset;
  entry.copy_on_write = copy_on_write;
  entry.object = std::move(object);
  entries_[start] = std::move(entry);
  generation_++;
  if (hint == 0) {
    alloc_cursor_ = start + size + kPageSize;
  }
  sim_->clock.Advance(sim_->cost.small_alloc + sim_->cost.lock_acquire);
  return start;
}

Status VmMap::Unmap(uint64_t start, uint64_t size) {
  auto it = entries_.find(start);
  if (it == entries_.end() || it->second.size() != size) {
    return Status::Error(Errc::kNotFound, "unmap of unknown entry");
  }
  pmap_.InvalidateRange(start, start + size, sim_->cost, &sim_->clock);
  entries_.erase(it);
  generation_++;
  return Status::Ok();
}

Status VmMap::Protect(uint64_t start, uint64_t size, int prot) {
  auto it = entries_.find(start);
  if (it == entries_.end() || it->second.size() != size) {
    return Status::Error(Errc::kNotFound, "protect of unknown entry");
  }
  it->second.prot = prot;
  generation_++;
  pmap_.InvalidateRange(start, start + size, sim_->cost, &sim_->clock);
  return Status::Ok();
}

VmMapEntry* VmMap::FindEntry(uint64_t addr) {
  auto it = entries_.upper_bound(addr);
  if (it == entries_.begin()) {
    return nullptr;
  }
  --it;
  if (addr >= it->second.start && addr < it->second.end) {
    return &it->second;
  }
  return nullptr;
}

Status VmMap::Advise(uint64_t addr, int hint) {
  VmMapEntry* entry = FindEntry(addr);
  if (entry == nullptr) {
    return Status::Error(Errc::kNotFound, "no mapping at address");
  }
  entry->madvise_hint = hint;
  generation_++;
  return Status::Ok();
}

Result<Pmap::Entry*> VmMap::Fault(uint64_t addr, bool write) {
  const CostModel& cost = sim_->cost;
  SimClock* clock = &sim_->clock;
  VmMapEntry* entry = FindEntry(addr);
  if (entry == nullptr) {
    return Status::Error(Errc::kOutOfRange, "segmentation fault");
  }
  if (write && (entry->prot & kProtWrite) == 0) {
    return Status::Error(Errc::kInvalidArgument, "write to read-only mapping");
  }
  if (!write && (entry->prot & kProtRead) == 0) {
    return Status::Error(Errc::kInvalidArgument, "read from unreadable mapping");
  }
  clock->Advance(cost.fault_entry);
  uint64_t vpage = PageTrunc(addr);
  uint64_t pgidx = entry->PageIndexOf(addr);
  VmObject* top = entry->object.get();

  auto found = top->LookupChain(pgidx);
  clock->Advance(cost.cacheline_miss * static_cast<SimDuration>(found.chain_depth + 1));

  VmPage* page = nullptr;
  VmObject* owner = nullptr;
  if (found.owner == top) {
    page = found.page;
    owner = top;
    fault_stats_.soft_faults++;
    sim_->metrics.counter("vm.soft_faults").Add();
  } else if (write || found.page == nullptr) {
    // Promote into the top object: a COW copy when a lower chain link holds
    // the page, or a fresh zeroed frame (FreeBSD allocates zeroed pages in
    // the object even on read faults of untouched anonymous memory).
    if (top->frozen()) {
      return Status::Error(Errc::kBadState, "fault would modify a frozen object");
    }
    clock->Advance(cost.page_alloc);
    if (found.page != nullptr) {
      // Copying from an object the checkpoint flusher currently holds
      // locked blocks until the flusher releases it.
      if (found.owner->busy_until() > clock->now()) {
        clock->AdvanceTo(found.owner->busy_until());
        clock->Advance(cost.lock_acquire);
      }
      page = top->InstallPage(pgidx, found.page->data.data());
      clock->Advance(cost.MemCopy(kPageSize));
      // The old frame may be mapped read-only elsewhere; those translations
      // are stale now that the top object hides it (pmap_remove_all).
      PvInvalidate(found.page);
      fault_stats_.cow_faults++;
      sim_->metrics.counter("vm.cow_faults").Add();
    } else {
      static const std::array<uint8_t, kPageSize> kZeros{};
      page = top->InstallPage(pgidx, kZeros.data());
      fault_stats_.zero_fills++;
      sim_->metrics.counter("vm.zero_fills").Add();
    }
    owner = top;
  } else {
    // Read fault resolved by a lower chain link: map it read-only; a later
    // write promotes and invalidates this translation through the pv list.
    page = found.page;
    owner = found.owner;
    fault_stats_.soft_faults++;
    sim_->metrics.counter("vm.soft_faults").Add();
  }

  bool writable = owner == top && (entry->prot & kProtWrite) != 0 && !top->frozen();
  if (write && !writable) {
    return Status::Error(Errc::kBadState, "write fault on frozen mapping");
  }
  Pmap::Entry pte{owner, pgidx, page, writable, /*dirty=*/write};
  pmap_.Enter(vpage, pte, cost, clock);
  return pmap_.Lookup(vpage);
}

Status VmMap::Write(uint64_t addr, const void* data, uint64_t len) {
  const auto* src = static_cast<const uint8_t*>(data);
  while (len > 0) {
    uint64_t vpage = PageTrunc(addr);
    uint64_t in_page = addr - vpage;
    uint64_t chunk = std::min(len, kPageSize - in_page);
    Pmap::Entry* pte = pmap_.Lookup(vpage);
    if (pte == nullptr || !pte->writable) {
      AURORA_ASSIGN_OR_RETURN(pte, Fault(addr, /*write=*/true));
    }
    std::memcpy(pte->frame->data.data() + in_page, src, chunk);
    pte->dirty = true;
    addr += chunk;
    src += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status VmMap::Read(uint64_t addr, void* out, uint64_t len) {
  auto* dst = static_cast<uint8_t*>(out);
  while (len > 0) {
    uint64_t vpage = PageTrunc(addr);
    uint64_t in_page = addr - vpage;
    uint64_t chunk = std::min(len, kPageSize - in_page);
    Pmap::Entry* pte = pmap_.Lookup(vpage);
    if (pte == nullptr) {
      AURORA_ASSIGN_OR_RETURN(pte, Fault(addr, /*write=*/false));
    }
    std::memcpy(dst, pte->frame->data.data() + in_page, chunk);
    addr += chunk;
    dst += chunk;
    len -= chunk;
  }
  return Status::Ok();
}

Status VmMap::DirtyRange(uint64_t addr, uint64_t len) {
  uint64_t end = addr + len;
  for (uint64_t page = PageTrunc(addr); page < end; page += kPageSize) {
    uint8_t byte = static_cast<uint8_t>(page >> kPageShift);
    AURORA_RETURN_IF_ERROR(Write(page, &byte, 1));
  }
  return Status::Ok();
}

Result<std::unique_ptr<VmMap>> VmMap::Fork() {
  const CostModel& cost = sim_->cost;
  SimClock* clock = &sim_->clock;
  auto child = std::make_unique<VmMap>(sim_);
  child->alloc_cursor_ = alloc_cursor_;
  for (auto& [start, entry] : entries_) {
    VmMapEntry child_entry = entry;
    if (entry.copy_on_write && (entry.prot & kProtWrite) != 0 &&
        entry.object->type() != VmObjectType::kDevice) {
      // Private writable entry: both sides shadow the current object so
      // neither sees the other's writes. This is the fork COW the paper
      // contrasts with system shadowing: it operates per process and breaks
      // sharing if applied to shared memory (which is why the `else` branch
      // aliases the object instead).
      std::shared_ptr<VmObject> original = entry.object;
      entry.object = VmObject::CreateShadow(original);
      child_entry.object = VmObject::CreateShadow(original);
      clock->Advance(2 * (cost.small_alloc + cost.lock_acquire));
    }
    child->entries_[start] = std::move(child_entry);
  }
  // The parent's translations are stale for shadowed entries. Real fork
  // copies and write-protects the page tables; charge one PTE copy per
  // resident page (InvalidateAll charges the protect half) and drop the
  // translations so they refault lazily.
  uint64_t resident = pmap_.ResidentCount();
  clock->Advance(cost.pte_protect * resident);
  pmap_.InvalidateAll(cost, clock);
  clock->Advance(cost.tlb_shootdown_ipi);
  generation_++;
  return child;
}

uint64_t VmMap::ResidentPages() const {
  uint64_t total = 0;
  std::set<const VmObject*> seen;
  for (const auto& [start, entry] : entries_) {
    const VmObject* obj = entry.object.get();
    while (obj != nullptr && seen.insert(obj).second) {
      total += obj->ResidentPages();
      obj = obj->parent();
    }
  }
  return total;
}

}  // namespace aurora
