#include "src/vm/pmap.h"

#include <algorithm>

namespace aurora {

namespace {

void PvRemove(VmPage* frame, Pmap* pmap, uint64_t vpage) {
  if (frame == nullptr) {
    return;
  }
  auto& pv = frame->pv;
  for (auto it = pv.begin(); it != pv.end(); ++it) {
    if (it->first == pmap && it->second == vpage) {
      pv.erase(it);
      return;
    }
  }
}

void PvAdd(VmPage* frame, Pmap* pmap, uint64_t vpage) {
  if (frame != nullptr) {
    frame->pv.emplace_back(pmap, vpage);
  }
}

}  // namespace

Pmap::~Pmap() {
  // Frames may outlive this pmap; their pv lists must not reference it.
  for (auto& [vpage, entry] : entries_) {
    PvRemove(entry.frame, this, vpage);
  }
}

VmPage::~VmPage() {
  // A frame being destroyed must not leave dangling translations (this is
  // what makes collapse page moves and InstallPage overwrites safe).
  PvInvalidate(this);
}

void PvInvalidate(VmPage* frame) {
  while (!frame->pv.empty()) {
    auto [pmap, vpage] = frame->pv.back();
    if (!pmap->RemoveTranslation(vpage, frame)) {
      frame->pv.pop_back();  // stale entry; drop it to guarantee progress
    }
  }
}

void Pmap::Enter(uint64_t vpage, Entry entry, const CostModel& cost, SimClock* clock) {
  clock->Advance(cost.pte_install);
  auto it = entries_.find(vpage);
  if (it != entries_.end()) {
    PvRemove(it->second.frame, this, vpage);
  }
  entries_[vpage] = entry;
  if (entry.writable) {
    writable_.insert(vpage);
  } else {
    writable_.erase(vpage);
  }
  PvAdd(entry.frame, this, vpage);
}

Pmap::Entry* Pmap::Lookup(uint64_t vpage) {
  auto it = entries_.find(vpage);
  return it == entries_.end() ? nullptr : &it->second;
}

bool Pmap::RemoveTranslation(uint64_t vpage, const VmPage* frame) {
  auto it = entries_.find(vpage);
  if (it == entries_.end() || it->second.frame != frame) {
    return false;
  }
  // pv maintenance is done by the caller (the frame's pv list is being
  // drained); just drop the translation.
  entries_.erase(it);
  writable_.erase(vpage);
  return true;
}

uint64_t Pmap::InvalidateAll(const CostModel& cost, SimClock* clock) {
  uint64_t n = entries_.size();
  for (auto& [vpage, entry] : entries_) {
    PvRemove(entry.frame, this, vpage);
  }
  clock->Advance(cost.pte_protect * n);
  entries_.clear();
  writable_.clear();
  return n;
}

uint64_t Pmap::InvalidateRange(uint64_t start, uint64_t end, const CostModel& cost,
                               SimClock* clock) {
  uint64_t n = 0;
  auto it = entries_.lower_bound(start);
  while (it != entries_.end() && it->first < end) {
    PvRemove(it->second.frame, this, it->first);
    writable_.erase(it->first);
    it = entries_.erase(it);
    n++;
  }
  clock->Advance(cost.pte_protect * n);
  return n;
}

uint64_t Pmap::InvalidateObject(const VmObject* object, const CostModel& cost, SimClock* clock) {
  uint64_t n = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.object == object) {
      PvRemove(it->second.frame, this, it->first);
      writable_.erase(it->first);
      it = entries_.erase(it);
      n++;
    } else {
      ++it;
    }
  }
  clock->Advance(cost.pte_protect * n);
  return n;
}

uint64_t Pmap::WriteProtectAll(const CostModel& cost, SimClock* clock) {
  // The writable index *is* the set to downgrade; clean translations are
  // never visited (incremental COW arming).
  uint64_t n = 0;
  for (uint64_t vpage : writable_) {
    entries_[vpage].writable = false;
    n++;
  }
  writable_.clear();
  clock->Advance(cost.pte_protect * n);
  return n;
}

uint64_t Pmap::WriteProtectRange(uint64_t start, uint64_t end, const CostModel& cost,
                                 SimClock* clock) {
  uint64_t n = 0;
  auto it = writable_.lower_bound(start);
  while (it != writable_.end() && *it < end) {
    entries_[*it].writable = false;
    it = writable_.erase(it);
    n++;
  }
  clock->Advance(cost.pte_protect * n);
  return n;
}

uint64_t Pmap::DirtyCount() const {
  uint64_t n = 0;
  for (const auto& [vpage, entry] : entries_) {
    if (entry.dirty) {
      n++;
    }
  }
  return n;
}

}  // namespace aurora
