// Mach-style VM objects with shadow chains (FreeBSD vm_object analog).
//
// A VmObject is a mappable collection of pages. Objects know nothing about
// virtual addresses or permissions; VmMap entries map them. Copy-on-write is
// implemented by *shadowing*: a shadow object sits on top of a parent, pages
// private to the shadow hide the parent's pages, and page lookups walk the
// chain top-down. This file also implements both collapse directions:
// FreeBSD's classic collapse (move parent pages up into the shadow) and
// Aurora's reversed collapse (move the shadow's few pages down into the
// parent), which is the paper's section 6 optimization.
#ifndef SRC_VM_VM_OBJECT_H_
#define SRC_VM_VM_OBJECT_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/cost_model.h"
#include "src/base/result.h"
#include "src/base/sim_clock.h"
#include "src/base/units.h"

namespace aurora {

class Pmap;

// A physical page frame holding real data. Frames are uniquely owned by one
// VmObject, as in Mach. `pv` is the FreeBSD-style reverse-mapping list: the
// (pmap, vaddr) translations that currently reference this frame, so COW
// promotion and collapse can invalidate every stale mapping of the frame.
struct VmPage {
  VmPage() = default;
  ~VmPage();
  VmPage(const VmPage&) = delete;
  VmPage& operator=(const VmPage&) = delete;

  std::array<uint8_t, kPageSize> data{};
  std::vector<std::pair<Pmap*, uint64_t>> pv;
};

// Removes every pmap translation referencing `frame` (pmap_remove_all).
void PvInvalidate(VmPage* frame);

enum class VmObjectType : uint8_t {
  kAnonymous,  // zero-fill swap-backed memory
  kVnode,      // file-backed pages (mmap)
  kDevice,     // device memory (HPET, vDSO); never checkpointed as data
};

class VmObject : public std::enable_shared_from_this<VmObject> {
 public:
  // Fetches a page's contents from backing storage (vnode pager or the
  // object store for lazily restored objects). Returns true if the backing
  // store had the page, false for zero fill.
  using Pager = std::function<bool(uint64_t pgidx, uint8_t* out)>;

  static std::shared_ptr<VmObject> CreateAnonymous(uint64_t size);
  static std::shared_ptr<VmObject> CreateVnode(uint64_t size, Pager pager);
  static std::shared_ptr<VmObject> CreateDevice(uint64_t size);

  // Creates a shadow of `parent` covering its whole range. The parent's
  // shadow count is incremented; pages written after this land in the
  // shadow, so the parent's own pages become the frozen snapshot.
  static std::shared_ptr<VmObject> CreateShadow(std::shared_ptr<VmObject> parent);

  ~VmObject();

  uint64_t id() const { return id_; }
  VmObjectType type() const { return type_; }
  uint64_t size() const { return size_; }
  uint64_t PageCount() const { return PagesOf(size_); }

  VmObject* parent() const { return parent_.get(); }
  const std::shared_ptr<VmObject>& parent_ref() const { return parent_; }

  // While the checkpoint flusher streams this (frozen) object's pages out,
  // it holds the object lock; COW faults that must copy a page *from* it
  // wait (paper section 6: lock contention between page faults and the
  // flusher/collapse is a real overhead of system shadowing).
  SimTime busy_until() const { return busy_until_; }
  void set_busy_until(SimTime t) { busy_until_ = t; }
  int shadow_count() const { return shadow_count_; }
  bool frozen() const { return frozen_; }
  void Freeze() { frozen_ = true; }

  // Number of pages resident in *this* object only (not the chain).
  size_t ResidentPages() const { return pages_.size(); }

  // Dirty-range summary: the [lo, hi] page-index bounds of every page ever
  // installed into *this* object. A live shadow starts empty, so after one
  // epoch its resident pages — and this range — are exactly the pages
  // dirtied since the shadow was created. Checkpointing uses the bounds to
  // clamp write-protect sweeps to the dirtied span of each mapping instead
  // of the whole entry.
  bool HasDirtyRange() const { return dirty_hi_ >= dirty_lo_; }
  uint64_t DirtyLoPage() const { return dirty_lo_; }
  uint64_t DirtyHiPage() const { return dirty_hi_; }
  const std::map<uint64_t, std::unique_ptr<VmPage>>& pages() const { return pages_; }

  // Looks up a page in this object only. Null if absent.
  VmPage* LookupLocal(uint64_t pgidx);
  const VmPage* LookupLocal(uint64_t pgidx) const;

  // Walks the shadow chain for `pgidx`. Returns the page and the object that
  // owns it; {nullptr, nullptr} means zero fill (no pager had it either).
  // `chain_depth` (optional) reports how many links were traversed, which the
  // fault handler charges cache misses for.
  struct LookupResult {
    VmPage* page = nullptr;
    VmObject* owner = nullptr;
    int chain_depth = 0;
  };
  LookupResult LookupChain(uint64_t pgidx);

  // Ensures this object has its own copy of page `pgidx`, copying from the
  // chain below (or the pager / zero fill) if needed. This is the COW copy
  // step of a write fault. Returns the page. Fails on frozen objects.
  [[nodiscard]] Result<VmPage*> EnsureLocalPage(uint64_t pgidx);

  // Inserts/overwrites a page with the given contents (restore path).
  VmPage* InstallPage(uint64_t pgidx, const uint8_t* data);
  // Moves a page frame out of this object (collapse and swap eviction).
  std::unique_ptr<VmPage> TakePage(uint64_t pgidx);
  void RemovePage(uint64_t pgidx);
  // Drops every resident frame (swap eviction of a fully durable object).
  // Stale translations are torn down through the frames' pv lists.
  uint64_t DropResidentPages() {
    uint64_t n = pages_.size();
    pages_.clear();
    return n;
  }

  // Classic FreeBSD collapse: this object is a shadow whose parent has
  // shadow_count == 1; absorb the parent's pages into *this* (skipping
  // offsets this object already has) and splice the parent out of the chain.
  // Cost scales with the parent's resident pages.
  [[nodiscard]] Status CollapseClassic(const CostModel& cost, SimClock* clock);

  // Aurora's reversed collapse: move *this* object's (few) pages down into
  // the parent, overwriting, then callers splice this object out by
  // repointing references to the parent. Only legal when the parent is
  // exclusively ours. Cost scales with this object's resident pages.
  [[nodiscard]] Status CollapseReversedIntoParent(const CostModel& cost, SimClock* clock);

  void set_pager(Pager pager) { pager_ = std::move(pager); }
  bool has_pager() const { return static_cast<bool>(pager_); }

  // Bookkeeping for the SLS: the store object this VM object persists into.
  uint64_t sls_oid() const { return sls_oid_; }
  void set_sls_oid(uint64_t oid) { sls_oid_ = oid; }

  // Excluded regions (sls_mctl MEMCTL_EXCLUDE) are not checkpointed.
  bool exclude_from_checkpoint() const { return exclude_; }
  void set_exclude_from_checkpoint(bool v) { exclude_ = v; }

  // For vnode-backed objects: the inode whose pager fills pages, so
  // checkpoints can record the file identity instead of the page contents.
  uint64_t backing_ino() const { return backing_ino_; }
  void set_backing_ino(uint64_t ino) { backing_ino_ = ino; }

  // Repoints this object's parent link (collapse splicing). Shadow counts
  // are maintained on both the old and new parents.
  void ReplaceParent(std::shared_ptr<VmObject> new_parent) { SetParent(std::move(new_parent)); }

 private:
  VmObject(VmObjectType type, uint64_t size);
  void SetParent(std::shared_ptr<VmObject> parent);
  void NoteDirtyPage(uint64_t pgidx) {
    dirty_lo_ = pgidx < dirty_lo_ ? pgidx : dirty_lo_;
    dirty_hi_ = pgidx > dirty_hi_ ? pgidx : dirty_hi_;
  }

  static uint64_t next_id_;

  uint64_t id_;
  VmObjectType type_;
  uint64_t size_;
  bool frozen_ = false;
  bool exclude_ = false;
  uint64_t sls_oid_ = 0;
  uint64_t backing_ino_ = 0;
  SimTime busy_until_ = 0;
  uint64_t dirty_lo_ = UINT64_MAX;  // empty range: lo > hi
  uint64_t dirty_hi_ = 0;

  std::shared_ptr<VmObject> parent_;
  int shadow_count_ = 0;  // number of shadows whose parent is this object

  Pager pager_;
  std::map<uint64_t, std::unique_ptr<VmPage>> pages_;
};

}  // namespace aurora

#endif  // SRC_VM_VM_OBJECT_H_
