// System shadowing (paper section 6): group-wide copy-on-write snapshots.
//
// Unlike fork's COW, system shadowing creates exactly one shadow per
// writable anonymous object across *all* address spaces in a consistency
// group, replacing every reference (map entries and shared-memory
// descriptors via the backmap callback) so shared memory stays shared. The
// old tops freeze and become the incremental checkpoint to flush while the
// application keeps running against the new shadows.
//
// On-disk identity: a shadow inherits its parent's store object id (OID), so
// successive incremental checkpoints of the same logical region land in the
// same store object, and the eager collapse after flushing merges only
// same-OID links. Fork shadows keep their own OIDs, so chains stay exactly
// as deep as the fork-sharing structure requires (paper: chain capped at
// two system shadows, which we enforce by collapsing the flushed shadow
// before creating the next one).
#ifndef SRC_VM_SYSTEM_SHADOW_H_
#define SRC_VM_SYSTEM_SHADOW_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/vm/vm_map.h"
#include "src/vm/vm_object.h"

namespace aurora {

struct ShadowPair {
  std::shared_ptr<VmObject> frozen;  // the old top: the dirty set to flush
  std::shared_ptr<VmObject> live;    // the new top taking writes
};

struct SystemShadowStats {
  uint64_t objects_shadowed = 0;
  uint64_t objects_skipped_clean = 0;  // tops with no dirtied pages, left live
  uint64_t ptes_invalidated = 0;
  uint64_t tlb_shootdowns = 0;
  uint64_t shootdowns_elided = 0;  // address spaces with zero rebound PTEs
};

// Knobs for the incremental stop path. The defaults are Aurora's behavior:
// stop-time work scales with dirtied state. The full-sweep legacy engine
// (both false-equivalents) stays available for the stop-path ablation.
struct ShadowOptions {
  // Leave unfrozen tops with zero dirtied pages as the live top instead of
  // shadowing them: their store object already equals their content, so a
  // fresh shadow would only add an empty chain link and PTE/IPI work.
  // Restored tops (frozen or pager-backed) are always shadowed.
  bool skip_clean = true;
  // Charge/count one TLB shootdown only for address spaces where at least
  // one PTE was actually write-protected; untouched pmaps have no stale
  // translations to invalidate. When false, every map in the group pays one
  // IPI round per shadow pass (the pre-incremental behavior).
  bool elide_shootdowns = true;
};

// Called when an object that external descriptors reference (POSIX/SysV
// shared memory) is replaced by its new shadow, so the descriptor's backmap
// can be updated and future mappings use the latest shadow.
using ShadowRebindFn = std::function<void(VmObject* old_top, std::shared_ptr<VmObject> new_top)>;

// Shadows every writable, non-excluded anonymous top object reachable from
// `maps`, charging shadow allocation, PTE and TLB costs. Returns the frozen
// tops paired with their live shadows. With the default options, tops that
// took no writes since the previous epoch are skipped and fully-clean
// address spaces pay no shootdown.
std::vector<ShadowPair> CreateSystemShadows(const std::vector<VmMap*>& maps, SimContext* sim,
                                            const ShadowRebindFn& rebind,
                                            SystemShadowStats* stats,
                                            const ShadowOptions& options = {});

// Shadows a single object (the sls_memckpt atomic-region API). References in
// `maps` are repointed just like the group-wide operation. `top` is taken by
// value: rebinding overwrites the map entries' shared_ptrs, so a caller's
// reference into an entry would otherwise be mutated mid-operation. The
// object is shadowed even when clean (the caller asked for this region's
// snapshot explicitly); shootdown accounting matches the batched path.
ShadowPair ShadowOneObject(std::shared_ptr<VmObject> top, const std::vector<VmMap*>& maps,
                           SimContext* sim, const ShadowRebindFn& rebind,
                           SystemShadowStats* stats = nullptr,
                           const ShadowOptions& options = {});

// After `pair.frozen` has been flushed to storage, eagerly merge it into its
// parent to keep chains short. Merging happens only when the parent is
// exclusively ours and shares the frozen object's store OID (see header
// comment). `reversed` selects Aurora's collapse direction (move the
// shadow's few pages down) versus the classic one (move the parent's pages
// up) for the ablation benchmark. Returns true if a collapse happened.
bool CollapseAfterFlush(const ShadowPair& pair, const std::vector<VmMap*>& maps, bool reversed,
                        SimContext* sim);

}  // namespace aurora

#endif  // SRC_VM_SYSTEM_SHADOW_H_
