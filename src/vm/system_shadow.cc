#include "src/vm/system_shadow.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace aurora {

namespace {

bool ShouldShadow(const VmMapEntry& entry) {
  if (entry.exclude_from_checkpoint) {
    return false;
  }
  if ((entry.prot & kProtWrite) == 0) {
    return false;
  }
  const VmObject* obj = entry.object.get();
  // Vnode-backed mappings persist through the file system's own COW; device
  // memory is recreated at restore (vDSO/HPET injection).
  return obj->type() == VmObjectType::kAnonymous && !obj->exclude_from_checkpoint();
}

// A top object took writes since it became the top iff it holds pages: a
// writable PTE is only ever installed for the chain's top object, and
// installing the page into the top is what makes the PTE writable. Frozen
// and pager-backed tops (restored images) must always be re-shadowed — a
// write against them has nowhere to land.
bool NeedsShadow(const VmObject* top) {
  return top->frozen() || top->has_pager() || top->ResidentPages() > 0;
}

// Clamps the write-protect sweep for `entry` to the span of `old_top`'s
// dirtied pages. Pages outside the object's dirty range cannot have writable
// translations, so the sweep (and its per-PTE charge) touches only what the
// application actually wrote since the previous epoch.
std::pair<uint64_t, uint64_t> DirtySpan(const VmMapEntry& entry, const VmObject* old_top) {
  if (!old_top->HasDirtyRange()) {
    return {entry.start, entry.start};  // empty
  }
  // Page index p of the object maps at vaddr = entry.start - offset + p * pg.
  uint64_t lo_off = old_top->DirtyLoPage() * kPageSize;
  uint64_t hi_off = old_top->DirtyHiPage() * kPageSize + kPageSize;
  uint64_t lo = lo_off > entry.offset ? entry.start + (lo_off - entry.offset) : entry.start;
  uint64_t hi = hi_off > entry.offset ? entry.start + (hi_off - entry.offset) : entry.start;
  lo = std::min(lo, entry.end);
  hi = std::min(hi, entry.end);
  return {lo, hi};
}

// Repoints every map entry whose top object is `old_top` to `new_top` and
// write-protects the affected translations. Read mappings of the frozen
// pages remain valid (they are immutable now); the first write per page
// faults and copies into the new shadow. Per-map downgrade counts accumulate
// into `per_map` (indexed like `maps`) so the caller can elide shootdowns
// for untouched address spaces.
uint64_t RebindEntries(VmObject* old_top, const std::shared_ptr<VmObject>& new_top,
                       const std::vector<VmMap*>& maps, SimContext* sim,
                       std::vector<uint64_t>* per_map) {
  uint64_t protected_ptes = 0;
  for (size_t i = 0; i < maps.size(); i++) {
    VmMap* map = maps[i];
    for (auto& [start, entry] : map->entries()) {
      if (entry.object.get() == old_top) {
        entry.object = new_top;
        auto [lo, hi] = DirtySpan(entry, old_top);
        uint64_t n =
            lo < hi ? map->pmap().WriteProtectRange(lo, hi, sim->cost, &sim->clock) : 0;
        protected_ptes += n;
        if (per_map != nullptr) {
          (*per_map)[i] += n;
        }
      }
    }
  }
  return protected_ptes;
}

// One TLB shootdown round covers every range invalidated this pass (batched
// IPIs, as the kernel does) — but only address spaces that actually lost a
// writable translation have anything to flush. Untouched pmaps are elided
// (counted, so the savings are observable) unless the legacy full-sweep
// behavior was requested.
void ChargeShootdowns(const std::vector<VmMap*>& maps, const std::vector<uint64_t>& per_map,
                      const ShadowOptions& options, SimContext* sim, SystemShadowStats* stats) {
  for (size_t i = 0; i < maps.size(); i++) {
    if (options.elide_shootdowns && per_map[i] == 0) {
      if (stats != nullptr) {
        stats->shootdowns_elided++;
      }
      sim->metrics.counter("vm.shootdowns_elided").Add();
      continue;
    }
    sim->clock.Advance(sim->cost.tlb_shootdown_ipi);
    if (stats != nullptr) {
      stats->tlb_shootdowns++;
    }
    sim->metrics.counter("vm.tlb_shootdowns").Add();
  }
}

}  // namespace

std::vector<ShadowPair> CreateSystemShadows(const std::vector<VmMap*>& maps, SimContext* sim,
                                            const ShadowRebindFn& rebind,
                                            SystemShadowStats* stats,
                                            const ShadowOptions& options) {
  // Pass 1: collect the distinct writable top objects across the group in
  // discovery order (map, then ascending start address). The dedup set makes
  // each object shadowed exactly once no matter how many processes or
  // entries share it; the ordered vector keeps the shadow/flush order
  // independent of heap layout, so simulated results are build-stable.
  std::set<VmObject*> seen;
  std::vector<std::shared_ptr<VmObject>> tops;
  for (VmMap* map : maps) {
    for (auto& [start, entry] : map->entries()) {
      if (ShouldShadow(entry) && seen.insert(entry.object.get()).second) {
        if (options.skip_clean && !NeedsShadow(entry.object.get())) {
          // Clean top: its store object already holds exactly this content
          // (or the region was never written and restores as zero fill).
          if (stats != nullptr) {
            stats->objects_skipped_clean++;
          }
          sim->metrics.counter("vm.objects_skipped_clean").Add();
          continue;
        }
        tops.push_back(entry.object);
      }
    }
  }

  std::vector<uint64_t> per_map(maps.size(), 0);
  std::vector<ShadowPair> pairs;
  pairs.reserve(tops.size());
  for (const std::shared_ptr<VmObject>& top : tops) {
    VmObject* raw = top.get();
    auto shadow = VmObject::CreateShadow(top);
    shadow->set_sls_oid(top->sls_oid());  // same logical region on disk
    top->Freeze();
    sim->clock.Advance(sim->cost.small_alloc + sim->cost.lock_acquire);
    uint64_t invalidated = RebindEntries(raw, shadow, maps, sim, &per_map);
    if (rebind) {
      rebind(raw, shadow);
    }
    if (stats != nullptr) {
      stats->objects_shadowed++;
      stats->ptes_invalidated += invalidated;
    }
    sim->metrics.counter("vm.objects_shadowed").Add();
    sim->metrics.counter("vm.ptes_protected").Add(invalidated);
    pairs.push_back(ShadowPair{top, shadow});
  }

  ChargeShootdowns(maps, per_map, options, sim, stats);
  return pairs;
}

ShadowPair ShadowOneObject(std::shared_ptr<VmObject> top, const std::vector<VmMap*>& maps,
                           SimContext* sim, const ShadowRebindFn& rebind,
                           SystemShadowStats* stats, const ShadowOptions& options) {
  auto shadow = VmObject::CreateShadow(top);
  shadow->set_sls_oid(top->sls_oid());
  top->Freeze();
  sim->clock.Advance(sim->cost.small_alloc + sim->cost.lock_acquire);
  std::vector<uint64_t> per_map(maps.size(), 0);
  uint64_t invalidated = RebindEntries(top.get(), shadow, maps, sim, &per_map);
  if (rebind) {
    rebind(top.get(), shadow);
  }
  if (stats != nullptr) {
    stats->objects_shadowed++;
    stats->ptes_invalidated += invalidated;
  }
  sim->metrics.counter("vm.objects_shadowed").Add();
  sim->metrics.counter("vm.ptes_protected").Add(invalidated);
  ChargeShootdowns(maps, per_map, options, sim, stats);
  return ShadowPair{top, shadow};
}

bool CollapseAfterFlush(const ShadowPair& pair, const std::vector<VmMap*>& maps, bool reversed,
                        SimContext* sim) {
  const std::shared_ptr<VmObject>& frozen = pair.frozen;
  VmObject* base = frozen->parent();
  if (base == nullptr) {
    return false;  // first checkpoint of this region: nothing below to merge
  }
  if (base->shadow_count() != 1) {
    return false;  // fork-shared base: merging would break sharing
  }
  if (base->sls_oid() != frozen->sls_oid()) {
    return false;  // different logical region on disk (fork shadow boundary)
  }
  // Frames are about to move between objects; drop any translations that
  // reference them. This TLB pressure after collapses is the runtime
  // overhead the paper's reversed collapse minimizes.
  for (VmMap* map : maps) {
    map->pmap().InvalidateObject(frozen.get(), sim->cost, &sim->clock);
    map->pmap().InvalidateObject(base, sim->cost, &sim->clock);
  }
  if (reversed) {
    std::shared_ptr<VmObject> keep = frozen->parent_ref();
    if (!frozen->CollapseReversedIntoParent(sim->cost, &sim->clock).ok()) {
      return false;
    }
    // Splice the emptied shadow out by repointing the live top at the base,
    // and detach it from the chain so stray references to it (debuggers,
    // in-flight flush records) cannot keep the base's shadow count elevated.
    pair.live->ReplaceParent(keep);
    frozen->ReplaceParent(nullptr);
    sim->metrics.counter("vm.shadow_collapses").Add();
  } else {
    if (!frozen->CollapseClassic(sim->cost, &sim->clock).ok()) {
      return false;
    }
    // Classic direction: the frozen shadow absorbed the base and spliced it
    // out itself; the live top already points at the frozen shadow.
    sim->metrics.counter("vm.shadow_collapses").Add();
  }
  return true;
}

}  // namespace aurora
