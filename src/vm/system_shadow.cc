#include "src/vm/system_shadow.h"

#include <map>
#include <set>

namespace aurora {

namespace {

bool ShouldShadow(const VmMapEntry& entry) {
  if (entry.exclude_from_checkpoint) {
    return false;
  }
  if ((entry.prot & kProtWrite) == 0) {
    return false;
  }
  const VmObject* obj = entry.object.get();
  // Vnode-backed mappings persist through the file system's own COW; device
  // memory is recreated at restore (vDSO/HPET injection).
  return obj->type() == VmObjectType::kAnonymous && !obj->exclude_from_checkpoint();
}

// Repoints every map entry whose top object is `old_top` to `new_top` and
// write-protects the affected translations. Read mappings of the frozen
// pages remain valid (they are immutable now); the first write per page
// faults and copies into the new shadow.
uint64_t RebindEntries(VmObject* old_top, const std::shared_ptr<VmObject>& new_top,
                       const std::vector<VmMap*>& maps, SimContext* sim) {
  uint64_t protected_ptes = 0;
  for (VmMap* map : maps) {
    for (auto& [start, entry] : map->entries()) {
      if (entry.object.get() == old_top) {
        entry.object = new_top;
        protected_ptes +=
            map->pmap().WriteProtectRange(entry.start, entry.end, sim->cost, &sim->clock);
      }
    }
  }
  return protected_ptes;
}

}  // namespace

std::vector<ShadowPair> CreateSystemShadows(const std::vector<VmMap*>& maps, SimContext* sim,
                                            const ShadowRebindFn& rebind,
                                            SystemShadowStats* stats) {
  // Pass 1: collect the distinct writable top objects across the group in
  // discovery order (map, then ascending start address). The dedup set makes
  // each object shadowed exactly once no matter how many processes or
  // entries share it; the ordered vector keeps the shadow/flush order
  // independent of heap layout, so simulated results are build-stable.
  std::set<VmObject*> seen;
  std::vector<std::shared_ptr<VmObject>> tops;
  for (VmMap* map : maps) {
    for (auto& [start, entry] : map->entries()) {
      if (ShouldShadow(entry) && seen.insert(entry.object.get()).second) {
        tops.push_back(entry.object);
      }
    }
  }

  std::vector<ShadowPair> pairs;
  pairs.reserve(tops.size());
  for (const std::shared_ptr<VmObject>& top : tops) {
    VmObject* raw = top.get();
    auto shadow = VmObject::CreateShadow(top);
    shadow->set_sls_oid(top->sls_oid());  // same logical region on disk
    top->Freeze();
    sim->clock.Advance(sim->cost.small_alloc + sim->cost.lock_acquire);
    uint64_t invalidated = RebindEntries(raw, shadow, maps, sim);
    if (rebind) {
      rebind(raw, shadow);
    }
    if (stats != nullptr) {
      stats->objects_shadowed++;
      stats->ptes_invalidated += invalidated;
    }
    sim->metrics.counter("vm.objects_shadowed").Add();
    sim->metrics.counter("vm.ptes_protected").Add(invalidated);
    pairs.push_back(ShadowPair{top, shadow});
  }

  // One TLB shootdown round per address space covers all the ranges
  // invalidated above (batched IPIs, as the kernel does).
  for (size_t i = 0; i < maps.size(); i++) {
    sim->clock.Advance(sim->cost.tlb_shootdown_ipi);
    if (stats != nullptr) {
      stats->tlb_shootdowns++;
    }
    sim->metrics.counter("vm.tlb_shootdowns").Add();
  }
  return pairs;
}

ShadowPair ShadowOneObject(std::shared_ptr<VmObject> top, const std::vector<VmMap*>& maps,
                           SimContext* sim, const ShadowRebindFn& rebind) {
  auto shadow = VmObject::CreateShadow(top);
  shadow->set_sls_oid(top->sls_oid());
  top->Freeze();
  sim->clock.Advance(sim->cost.small_alloc + sim->cost.lock_acquire);
  uint64_t invalidated = RebindEntries(top.get(), shadow, maps, sim);
  if (rebind) {
    rebind(top.get(), shadow);
  }
  sim->clock.Advance(sim->cost.tlb_shootdown_ipi);
  sim->metrics.counter("vm.objects_shadowed").Add();
  sim->metrics.counter("vm.ptes_protected").Add(invalidated);
  sim->metrics.counter("vm.tlb_shootdowns").Add();
  return ShadowPair{top, shadow};
}

bool CollapseAfterFlush(const ShadowPair& pair, const std::vector<VmMap*>& maps, bool reversed,
                        SimContext* sim) {
  const std::shared_ptr<VmObject>& frozen = pair.frozen;
  VmObject* base = frozen->parent();
  if (base == nullptr) {
    return false;  // first checkpoint of this region: nothing below to merge
  }
  if (base->shadow_count() != 1) {
    return false;  // fork-shared base: merging would break sharing
  }
  if (base->sls_oid() != frozen->sls_oid()) {
    return false;  // different logical region on disk (fork shadow boundary)
  }
  // Frames are about to move between objects; drop any translations that
  // reference them. This TLB pressure after collapses is the runtime
  // overhead the paper's reversed collapse minimizes.
  for (VmMap* map : maps) {
    map->pmap().InvalidateObject(frozen.get(), sim->cost, &sim->clock);
    map->pmap().InvalidateObject(base, sim->cost, &sim->clock);
  }
  if (reversed) {
    std::shared_ptr<VmObject> keep = frozen->parent_ref();
    if (!frozen->CollapseReversedIntoParent(sim->cost, &sim->clock).ok()) {
      return false;
    }
    // Splice the emptied shadow out by repointing the live top at the base,
    // and detach it from the chain so stray references to it (debuggers,
    // in-flight flush records) cannot keep the base's shadow count elevated.
    pair.live->ReplaceParent(keep);
    frozen->ReplaceParent(nullptr);
    sim->metrics.counter("vm.shadow_collapses").Add();
  } else {
    if (!frozen->CollapseClassic(sim->cost, &sim->clock).ok()) {
      return false;
    }
    // Classic direction: the frozen shadow absorbed the base and spliced it
    // out itself; the live top already points at the frozen shadow.
    sim->metrics.counter("vm.shadow_collapses").Add();
  }
  return true;
}

}  // namespace aurora
