#include "src/vm/vm_object.h"

#include <cstring>
#include <utility>

namespace aurora {

uint64_t VmObject::next_id_ = 1;

VmObject::VmObject(VmObjectType type, uint64_t size) : id_(next_id_++), type_(type), size_(size) {}

VmObject::~VmObject() {
  if (parent_) {
    parent_->shadow_count_--;
  }
}

void VmObject::SetParent(std::shared_ptr<VmObject> parent) {
  if (parent_) {
    parent_->shadow_count_--;
  }
  parent_ = std::move(parent);
  if (parent_) {
    parent_->shadow_count_++;
  }
}

std::shared_ptr<VmObject> VmObject::CreateAnonymous(uint64_t size) {
  return std::shared_ptr<VmObject>(new VmObject(VmObjectType::kAnonymous, size));
}

std::shared_ptr<VmObject> VmObject::CreateVnode(uint64_t size, Pager pager) {
  auto obj = std::shared_ptr<VmObject>(new VmObject(VmObjectType::kVnode, size));
  obj->pager_ = std::move(pager);
  return obj;
}

std::shared_ptr<VmObject> VmObject::CreateDevice(uint64_t size) {
  return std::shared_ptr<VmObject>(new VmObject(VmObjectType::kDevice, size));
}

std::shared_ptr<VmObject> VmObject::CreateShadow(std::shared_ptr<VmObject> parent) {
  auto shadow = std::shared_ptr<VmObject>(new VmObject(VmObjectType::kAnonymous, parent->size()));
  shadow->SetParent(std::move(parent));
  return shadow;
}

VmPage* VmObject::LookupLocal(uint64_t pgidx) {
  auto it = pages_.find(pgidx);
  return it == pages_.end() ? nullptr : it->second.get();
}

const VmPage* VmObject::LookupLocal(uint64_t pgidx) const {
  auto it = pages_.find(pgidx);
  return it == pages_.end() ? nullptr : it->second.get();
}

VmObject::LookupResult VmObject::LookupChain(uint64_t pgidx) {
  LookupResult result;
  VmObject* obj = this;
  while (obj != nullptr) {
    if (VmPage* page = obj->LookupLocal(pgidx)) {
      result.page = page;
      result.owner = obj;
      return result;
    }
    if (obj->pager_) {
      // Fault the page in from backing storage into the pager's object; it
      // is then resident like any other page.
      auto frame = std::make_unique<VmPage>();
      if (obj->pager_(pgidx, frame->data.data())) {
        VmPage* raw = frame.get();
        obj->pages_[pgidx] = std::move(frame);
        result.page = raw;
        result.owner = obj;
        return result;
      }
    }
    obj = obj->parent_.get();
    result.chain_depth++;
  }
  return result;
}

Result<VmPage*> VmObject::EnsureLocalPage(uint64_t pgidx) {
  if (frozen_) {
    return Status::Error(Errc::kBadState, "write to frozen VM object");
  }
  if (VmPage* page = LookupLocal(pgidx)) {
    return page;
  }
  auto frame = std::make_unique<VmPage>();
  // Copy from below in the chain if a version exists; otherwise the frame
  // stays zero-filled (anonymous memory semantics).
  if (parent_ != nullptr || pager_) {
    LookupResult below;
    if (pager_) {
      if (pager_(pgidx, frame->data.data())) {
        below.page = nullptr;  // already copied by the pager
      } else if (parent_ != nullptr) {
        below = parent_->LookupChain(pgidx);
      }
    } else {
      below = parent_->LookupChain(pgidx);
    }
    if (below.page != nullptr) {
      std::memcpy(frame->data.data(), below.page->data.data(), kPageSize);
    }
  }
  VmPage* raw = frame.get();
  pages_[pgidx] = std::move(frame);
  NoteDirtyPage(pgidx);
  return raw;
}

VmPage* VmObject::InstallPage(uint64_t pgidx, const uint8_t* data) {
  auto frame = std::make_unique<VmPage>();
  std::memcpy(frame->data.data(), data, kPageSize);
  VmPage* raw = frame.get();
  pages_[pgidx] = std::move(frame);
  NoteDirtyPage(pgidx);
  return raw;
}

std::unique_ptr<VmPage> VmObject::TakePage(uint64_t pgidx) {
  auto it = pages_.find(pgidx);
  if (it == pages_.end()) {
    return nullptr;
  }
  auto page = std::move(it->second);
  pages_.erase(it);
  return page;
}

void VmObject::RemovePage(uint64_t pgidx) { pages_.erase(pgidx); }

Status VmObject::CollapseClassic(const CostModel& cost, SimClock* clock) {
  if (parent_ == nullptr) {
    return Status::Error(Errc::kBadState, "collapse without parent");
  }
  if (parent_->shadow_count_ != 1) {
    return Status::Error(Errc::kBusy, "parent shared by other shadows");
  }
  std::shared_ptr<VmObject> parent = parent_;
  // Move every parent page the shadow does not hide up into the shadow.
  // This is the expensive direction: cost scales with the parent's
  // residency, which for a freshly frozen checkpoint base is the whole
  // application footprint.
  for (auto it = parent->pages_.begin(); it != parent->pages_.end();) {
    clock->Advance(cost.lock_acquire + cost.cacheline_miss);
    if (pages_.count(it->first) == 0) {
      pages_[it->first] = std::move(it->second);
    }
    it = parent->pages_.erase(it);
  }
  // Splice the parent out: inherit its parent and pager.
  std::shared_ptr<VmObject> grandparent = parent->parent_;
  if (!pager_ && parent->pager_) {
    pager_ = parent->pager_;
  }
  SetParent(grandparent);
  return Status::Ok();
}

Status VmObject::CollapseReversedIntoParent(const CostModel& cost, SimClock* clock) {
  if (parent_ == nullptr) {
    return Status::Error(Errc::kBadState, "collapse without parent");
  }
  if (parent_->shadow_count_ != 1) {
    return Status::Error(Errc::kBusy, "parent shared by other shadows");
  }
  std::shared_ptr<VmObject> parent = parent_;
  // Move this object's (few) pages *down*, overwriting the parent's stale
  // versions. Cost scales with the shadow's residency — the pages dirtied
  // in one checkpoint interval — which is why Aurora reverses the
  // direction (paper section 6).
  for (auto it = pages_.begin(); it != pages_.end();) {
    clock->Advance(cost.lock_acquire + cost.cacheline_miss);
    parent->pages_[it->first] = std::move(it->second);
    it = pages_.erase(it);
  }
  parent->frozen_ = false;
  return Status::Ok();
}

}  // namespace aurora
