// CRIU-style process-centric checkpointer: the paper's main comparison
// (Tables 1 and 7).
//
// Faithful to CRIU's architecture, and therefore to its costs:
//   * Userspace: every piece of kernel state is gathered through
//     ptrace/procfs round trips (one modeled query per object/file parsed),
//     including a per-page pagemap scan to find resident pages.
//   * Process-centric: sharing is *inferred* by comparing each descriptor
//     against everything seen so far, rather than read off the object graph.
//   * Stop-the-world: memory pages are streamed out through pipes while the
//     whole tree stays frozen, then the image is written to disk afterwards
//     (CRIU does not even fsync it).
#ifndef SRC_BASELINES_CRIU_LIKE_H_
#define SRC_BASELINES_CRIU_LIKE_H_

#include <cstdint>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/posix/kernel.h"
#include "src/storage/block_device.h"

namespace aurora {

struct CriuBreakdown {
  SimDuration os_state_time = 0;
  SimDuration memory_copy_time = 0;
  SimDuration total_stop_time = 0;
  SimDuration io_write_time = 0;
  uint64_t image_bytes = 0;
  uint64_t objects_queried = 0;
  uint64_t sharing_comparisons = 0;
};

class CriuLike {
 public:
  CriuLike(SimContext* sim, Kernel* kernel, BlockDevice* image_device)
      : sim_(sim), kernel_(kernel), device_(image_device) {}

  // Dumps `procs` (a process tree) into an image, returning the breakdown
  // that Table 1 reports.
  [[nodiscard]] Result<CriuBreakdown> Checkpoint(const std::vector<Process*>& procs);

 private:
  SimContext* sim_;
  Kernel* kernel_;
  BlockDevice* device_;
  uint64_t next_image_lba_ = 0;
};

}  // namespace aurora

#endif  // SRC_BASELINES_CRIU_LIKE_H_
