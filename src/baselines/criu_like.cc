#include "src/baselines/criu_like.h"

#include <set>
#include <vector>

namespace aurora {

namespace {
// Parsing one /proc/pid/pagemap entry batch (CRIU reads pagemap to learn
// which pages are resident/dirty). Calibrated with the rest of the OS-state
// phase to Table 1's 49 ms for a 500 MB Redis.
constexpr SimDuration kPagemapPerPage = 370;
}  // namespace

Result<CriuBreakdown> CriuLike::Checkpoint(const std::vector<Process*>& procs) {
  CriuBreakdown result;
  const CostModel& cost = sim_->cost;
  SimStopwatch stop_total(sim_->clock);

  // --- Freeze: ptrace-seize every task --------------------------------------
  for (Process* proc : procs) {
    for (auto& t : proc->threads()) {
      (void)t;
      sim_->clock.Advance(cost.criu_object_query);  // PTRACE_SEIZE+INTERRUPT
      result.objects_queried++;
    }
  }
  kernel_->Quiesce(procs);

  // --- OS state: procfs parsing + sharing inference --------------------------
  SimStopwatch stop_os(sim_->clock);
  // Already-seen open-file entries; each new fd is compared against all of
  // them (CRIU's kcmp-based dedup) because the kernel object graph is not
  // visible from userspace.
  std::vector<uint64_t> seen_descriptions;
  uint64_t total_pages = 0;
  for (Process* proc : procs) {
    // /proc/pid/{stat,status,maps,auxv,...}
    for (int f = 0; f < 6; f++) {
      sim_->clock.Advance(cost.criu_object_query);
      result.objects_queried++;
    }
    for (auto& t : proc->threads()) {
      (void)t;
      sim_->clock.Advance(cost.criu_object_query);  // per-task GETREGSET
      result.objects_queried++;
    }
    for (const auto& slot : proc->fds().slots()) {
      if (slot.desc == nullptr) {
        continue;
      }
      // /proc/pid/fdinfo/N + kcmp comparisons against every seen entry.
      sim_->clock.Advance(cost.criu_object_query);
      result.objects_queried++;
      for (uint64_t kid : seen_descriptions) {
        (void)kid;
        sim_->clock.Advance(cost.cacheline_miss + cost.lock_acquire);
        result.sharing_comparisons++;
      }
      seen_descriptions.push_back(slot.desc->kernel_id);
    }
    for (const auto& [start, entry] : proc->vm().entries()) {
      sim_->clock.Advance(cost.criu_object_query / 8);  // one maps line
      // pagemap walk over the whole entry.
      uint64_t pages = entry.size() / kPageSize;
      sim_->clock.Advance(kPagemapPerPage * pages);
      std::shared_ptr<VmObject> obj = entry.object;
      while (obj != nullptr) {
        total_pages += obj->ResidentPages();
        obj = obj->parent_ref();
      }
    }
  }
  result.os_state_time = stop_os.Elapsed();

  // --- Memory: stream every resident page through the dump pipe --------------
  // This is the defining difference from Aurora: the copy happens while the
  // application is frozen, with no COW to hide it.
  SimStopwatch stop_mem(sim_->clock);
  uint64_t mem_bytes = total_pages * kPageSize;
  sim_->clock.Advance(static_cast<SimDuration>(static_cast<double>(mem_bytes) /
                                               cost.criu_mem_copy_bytes_per_ns));
  result.memory_copy_time = stop_mem.Elapsed();

  kernel_->Resume(procs);
  result.total_stop_time = stop_total.Elapsed();

  // --- Image writeout (after resume; CRIU does not flush caches) -------------
  result.image_bytes = mem_bytes + result.objects_queried * 512;
  SimStopwatch io(sim_->clock);
  // Issue the writes so the device sees the load too; a failed image write
  // fails the whole dump (criu exits nonzero), and the dump is not finished
  // until the last write completes.
  uint64_t blocks = result.image_bytes / device_->block_size() + 1;
  std::vector<uint8_t> chunk(device_->block_size() * 64, 0);
  SimTime last_write_done = sim_->clock.now();
  for (uint64_t b = 0; b < blocks; b += 64) {
    uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(64, blocks - b));
    if (next_image_lba_ + b + n >= device_->block_count()) {
      next_image_lba_ = 0;
    }
    AURORA_ASSIGN_OR_RETURN(SimTime wrote,
                            device_->WriteAsync(next_image_lba_ + b, chunk.data(), n));
    last_write_done = std::max(last_write_done, wrote);
  }
  next_image_lba_ += blocks;
  // The userspace image stream (page pipe + protobuf serialization) runs
  // concurrently with the device writes; the dump ends when both have.
  SimTime stream_done =
      sim_->clock.now() + static_cast<SimDuration>(static_cast<double>(result.image_bytes) /
                                                   cost.criu_image_write_bytes_per_ns);
  sim_->clock.AdvanceTo(std::max(stream_done, last_write_done));
  result.io_write_time = io.Elapsed();
  return result;
}

}  // namespace aurora
