// Sorted string tables: the on-disk format of the mini-LSM.
//
// Layout (all little-endian through BinaryWriter):
//   [data block]*  4 KiB-target blocks of (klen,vlen,key,value) records
//   [index]        first key + offset + length per block
//   [bloom]        one-hash-function-per-k bit array over all keys
//   [footer]       index offset/len, bloom offset/len, entry count, magic
#ifndef SRC_APPS_SSTABLE_H_
#define SRC_APPS_SSTABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/posix/vnode.h"

namespace aurora {

class SstableWriter {
 public:
  SstableWriter(SimContext* sim, std::shared_ptr<Vnode> file);

  // Keys must arrive in strictly increasing order.
  [[nodiscard]] Status Add(std::string_view key, std::string_view value);
  // Writes index/bloom/footer. Returns total file bytes.
  [[nodiscard]] Result<uint64_t> Finish();

  uint64_t entries() const { return entries_; }

 private:
  [[nodiscard]] Status FlushBlock();

  static constexpr uint64_t kBlockTarget = 4096;

  SimContext* sim_;
  std::shared_ptr<Vnode> file_;
  uint64_t file_off_ = 0;
  uint64_t entries_ = 0;
  std::string last_key_;
  std::vector<uint8_t> block_;
  struct IndexEntry {
    std::string first_key;
    uint64_t offset;
    uint32_t length;
  };
  std::vector<IndexEntry> index_;
  std::vector<uint64_t> key_hashes_;
};

class SstableReader {
 public:
  [[nodiscard]] static Result<std::unique_ptr<SstableReader>> Open(SimContext* sim,
                                                                   std::shared_ptr<Vnode> file);

  // Point lookup: bloom filter, then index binary search, then block scan.
  [[nodiscard]] Result<std::optional<std::string>> Get(std::string_view key);

  // Full ordered scan (compaction input). Calls fn(key, value) per entry.
  [[nodiscard]] Status ForEach(const std::function<void(std::string_view, std::string_view)>& fn);

  uint64_t entries() const { return entries_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }

 private:
  SstableReader(SimContext* sim, std::shared_ptr<Vnode> file) : sim_(sim), file_(std::move(file)) {}

  [[nodiscard]] Result<std::vector<uint8_t>> ReadRange(uint64_t off, uint64_t len);

  SimContext* sim_;
  std::shared_ptr<Vnode> file_;
  uint64_t entries_ = 0;
  std::string smallest_;
  std::string largest_;
  struct IndexEntry {
    std::string first_key;
    uint64_t offset;
    uint32_t length;
  };
  std::vector<IndexEntry> index_;
  std::vector<uint8_t> bloom_;
};

// Bloom helper shared by writer/reader (k=3 derived hashes).
bool BloomMayContain(const std::vector<uint8_t>& bits, uint64_t key_hash);
void BloomAdd(std::vector<uint8_t>* bits, uint64_t key_hash);
uint64_t SstKeyHash(std::string_view key);

}  // namespace aurora

#endif  // SRC_APPS_SSTABLE_H_
