#include "src/apps/lsm_db.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/base/serializer.h"

namespace aurora {

LsmDb::LsmDb(SimContext* sim, Kernel* kernel, Filesystem* fs, LsmOptions options)
    : sim_(sim), kernel_(kernel), fs_(fs), options_(options) {
  proc_ = *kernel_->CreateProcess("lsmdb");
  uint64_t arena = PageRound(options_.memtable_bytes);
  auto obj = VmObject::CreateAnonymous(arena);
  arena_addr_ = *proc_->vm().Map(0x20000000, arena, kProtRead | kProtWrite, obj, 0, true);
  memtable_ = std::make_unique<MemTable>(sim_, &proc_->vm(), arena_addr_, arena);
  // Skiplist nodes live in process memory too (~1 node per entry).
  uint64_t node_bytes = PageRound(arena / 4);
  auto nodes = VmObject::CreateAnonymous(node_bytes);
  uint64_t node_addr =
      *proc_->vm().Map(0x60000000, node_bytes, kProtRead | kProtWrite, std::move(nodes), 0, true);
  memtable_->AttachNodeArena(node_addr, node_bytes);
  if (options_.wal_enabled) {
    auto wal = fs_->Create("lsm.wal");
    if (wal.ok()) {
      wal_ = *wal;
    } else {
      wal_ = *fs_->Lookup("lsm.wal");
    }
  }
  levels_.resize(static_cast<size_t>(options_.max_levels));
  level_bytes_.assign(static_cast<size_t>(options_.max_levels), 0);
}

size_t LsmDb::sstable_count() const {
  size_t n = 0;
  for (const auto& level : levels_) {
    n += level.size();
  }
  return n;
}

uint64_t LsmDb::LevelBytes(size_t level) const {
  return static_cast<uint64_t>(static_cast<double>(options_.level0_bytes) *
                               std::pow(options_.level_multiplier, static_cast<double>(level)));
}

Status LsmDb::WalAppend(std::string_view key, std::string_view value) {
  // WriteBatch construction, record framing, CRC and the writer-queue mutex.
  sim_->clock.Advance(700);
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(key.size()));
  w.PutU32(static_cast<uint32_t>(value.size()));
  w.PutRaw(key.data(), key.size());
  w.PutRaw(value.data(), value.size());
  AURORA_RETURN_IF_ERROR(wal_->Write(wal_off_, w.data().data(), w.size()).status());
  wal_off_ += w.size();
  if (options_.wal_sync && ++commits_since_sync_ >= options_.group_commit_batch) {
    // Group commit: one fsync covers the batch.
    AURORA_RETURN_IF_ERROR(wal_->Fsync());
    commits_since_sync_ = 0;
    stats_.wal_syncs++;
  }
  return Status::Ok();
}

Status LsmDb::Put(std::string_view key, std::string_view value) {
  stats_.puts++;
  if (options_.wal_enabled) {
    AURORA_RETURN_IF_ERROR(WalAppend(key, value));
  }
  if (memtable_->Full(key.size() + value.size()) ||
      (options_.wal_enabled && wal_off_ > options_.wal_flush_trigger)) {
    // Either the memtable is full or max_total_wal_size forces a flush of
    // the whole active memtable (stock RocksDB behavior). With the paper's
    // fit-in-memory memtable this rewrites the entire database.
    AURORA_RETURN_IF_ERROR(FlushMemTable());
  }
  return memtable_->Put(key, value);
}

Result<std::optional<std::string>> LsmDb::Get(std::string_view key) {
  stats_.gets++;
  if (auto v = memtable_->Get(key)) {
    stats_.memtable_hits++;
    return std::optional<std::string>(std::move(*v));
  }
  // L0 newest-first (files overlap), then deeper levels.
  for (size_t level = 0; level < levels_.size(); level++) {
    for (auto it = levels_[level].rbegin(); it != levels_[level].rend(); ++it) {
      if (key < it->reader->smallest() || key > it->reader->largest()) {
        continue;
      }
      stats_.sst_reads++;
      AURORA_ASSIGN_OR_RETURN(std::optional<std::string> v, it->reader->Get(key));
      if (v.has_value()) {
        return v;
      }
    }
  }
  return std::optional<std::string>();
}

Result<uint64_t> LsmDb::Seek(std::string_view start, uint64_t limit) {
  // Merge the memtable's ordered index with nothing fancy: the dominant cost
  // is the ordered walk itself, charged per entry visited.
  uint64_t visited = 0;
  auto it = memtable_->index().lower_bound(std::string(start));
  while (it != memtable_->index().end() && visited < limit) {
    sim_->clock.Advance(sim_->cost.cacheline_miss * 2);
    ++it;
    visited++;
  }
  return visited;
}

Status LsmDb::FlushMemTable() {
  stats_.flushes++;
  std::string path = "sst-0-" + std::to_string(next_file_seq_++);
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<Vnode> file, fs_->Create(path));
  SstableWriter writer(sim_, file);
  for (const auto& [key, loc] : memtable_->index()) {
    AURORA_ASSIGN_OR_RETURN(std::string value, memtable_->ReadValueAt(loc.first, loc.second));
    AURORA_RETURN_IF_ERROR(writer.Add(key, value));
  }
  AURORA_ASSIGN_OR_RETURN(uint64_t bytes, writer.Finish());
  AURORA_RETURN_IF_ERROR(file->Fsync());
  AURORA_ASSIGN_OR_RETURN(std::unique_ptr<SstableReader> reader,
                          SstableReader::Open(sim_, file));
  levels_[0].push_back(TableHandle{path, std::move(reader)});
  level_bytes_[0] += bytes;
  AURORA_RETURN_IF_ERROR(memtable_->Clear());
  // WAL contents are covered by the flushed table; truncate it.
  if (wal_ != nullptr) {
    AURORA_RETURN_IF_ERROR(wal_->Truncate(0));
    wal_off_ = 0;
  }
  return MaybeCompact();
}

Status LsmDb::MaybeCompact() {
  if (levels_[0].size() >= static_cast<size_t>(options_.l0_compaction_trigger)) {
    AURORA_RETURN_IF_ERROR(CompactLevel(0));
  }
  for (size_t level = 1; level + 1 < levels_.size(); level++) {
    if (level_bytes_[level] > LevelBytes(level)) {
      AURORA_RETURN_IF_ERROR(CompactLevel(level));
    }
  }
  return Status::Ok();
}

Status LsmDb::CompactLevel(size_t level) {
  if (level + 1 >= levels_.size()) {
    return Status::Ok();
  }
  stats_.compactions++;
  // Merge every table in `level` and `level+1` into one sorted run. The
  // merge is real: all inputs are read back through the file system and the
  // output is rewritten — this read/write amplification is what the Aurora
  // customization deletes.
  std::map<std::string, std::string> merged;
  // A failed table read aborts the compaction before any input is unlinked —
  // merging around an unreadable table would silently drop its records.
  auto absorb = [&](std::vector<TableHandle>& tables, bool newer_wins) -> Status {
    for (auto& t : tables) {
      AURORA_RETURN_IF_ERROR(t.reader->ForEach([&](std::string_view k, std::string_view v) {
        if (newer_wins || merged.count(std::string(k)) == 0) {
          merged[std::string(k)] = std::string(v);
        }
      }));
      stats_.bytes_compacted += t.reader->entries() * 64;
      // A failed unlink leaks the dead sstable's blocks; compaction itself
      // is still correct (the merged output supersedes the table), so count
      // the leak instead of aborting the merge.
      if (!fs_->Unlink(t.path).ok()) {
        stats_.unlink_failures++;
        sim_->metrics.counter("lsm.unlink_failures").Add();
      }
    }
    tables.clear();
    return Status::Ok();
  };
  // Older level+1 first, then newer level entries overwrite.
  AURORA_RETURN_IF_ERROR(absorb(levels_[level + 1], /*newer_wins=*/true));
  AURORA_RETURN_IF_ERROR(absorb(levels_[level], /*newer_wins=*/true));
  level_bytes_[level] = 0;

  std::string path = "sst-" + std::to_string(level + 1) + "-" + std::to_string(next_file_seq_++);
  AURORA_ASSIGN_OR_RETURN(std::shared_ptr<Vnode> file, fs_->Create(path));
  SstableWriter writer(sim_, file);
  for (const auto& [k, v] : merged) {
    AURORA_RETURN_IF_ERROR(writer.Add(k, v));
  }
  AURORA_ASSIGN_OR_RETURN(uint64_t bytes, writer.Finish());
  AURORA_RETURN_IF_ERROR(file->Fsync());
  AURORA_ASSIGN_OR_RETURN(std::unique_ptr<SstableReader> reader,
                          SstableReader::Open(sim_, file));
  levels_[level + 1].push_back(TableHandle{path, std::move(reader)});
  level_bytes_[level + 1] = bytes;
  return Status::Ok();
}

Status LsmDb::Recover() {
  if (wal_ == nullptr) {
    return Status::Ok();
  }
  AURORA_RETURN_IF_ERROR(memtable_->Clear());
  uint64_t off = 0;
  std::vector<uint8_t> head(8);
  while (off + 8 <= wal_->size()) {
    AURORA_ASSIGN_OR_RETURN(uint64_t n, wal_->Read(off, head.data(), 8));
    if (n < 8) {
      break;
    }
    BinaryReader hr(head);
    uint32_t klen = *hr.U32();
    uint32_t vlen = *hr.U32();
    if (klen == 0 || off + 8 + klen + vlen > wal_->size()) {
      break;
    }
    std::string key(klen, '\0');
    std::string value(vlen, '\0');
    AURORA_RETURN_IF_ERROR(wal_->Read(off + 8, key.data(), klen).status());
    AURORA_RETURN_IF_ERROR(wal_->Read(off + 8 + klen, value.data(), vlen).status());
    AURORA_RETURN_IF_ERROR(memtable_->Put(key, value));
    off += 8 + klen + vlen;
  }
  wal_off_ = off;
  return Status::Ok();
}

}  // namespace aurora
