// Redis-like in-memory key-value store with a fork-based RDB snapshotter.
//
// The dataset lives in the process's simulated VM (so checkpoints, forks and
// CRIU dumps all see real pages). BGSAVE reproduces Redis's mechanism: fork
// the process (paying fork's per-page COW arming, the 8 ms stop of Table 7),
// then have the child walk the live dictionary, serialize every key/value
// pair, and write the RDB file.
#ifndef SRC_APPS_REDIS_LIKE_H_
#define SRC_APPS_REDIS_LIKE_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/posix/kernel.h"
#include "src/storage/block_device.h"

namespace aurora {

struct RdbSaveResult {
  SimDuration fork_stop_time = 0;   // parent pause while fork arms COW
  SimDuration child_save_time = 0;  // serialize + write in the child
  uint64_t rdb_bytes = 0;
};

class RedisLike {
 public:
  // `value_size` bytes per value; keys are fixed 16-byte strings.
  RedisLike(SimContext* sim, Kernel* kernel, uint64_t num_keys, uint64_t value_size);

  Process* process() { return proc_; }
  uint64_t dataset_bytes() const { return num_keys_ * slot_size_; }

  // SET key i (dirties the slot's pages through the VM).
  [[nodiscard]] Status Set(uint64_t key, uint8_t fill);
  // GET key i (faults pages in as needed). Returns the first value byte.
  [[nodiscard]] Result<uint8_t> Get(uint64_t key);

  // BGSAVE: fork-based snapshot onto `device`.
  [[nodiscard]] Result<RdbSaveResult> BgSave(BlockDevice* device);

 private:
  uint64_t SlotAddr(uint64_t key) const { return base_ + key * slot_size_; }

  SimContext* sim_;
  Kernel* kernel_;
  Process* proc_;
  uint64_t num_keys_;
  uint64_t value_size_;
  uint64_t slot_size_;
  uint64_t base_ = 0;
};

}  // namespace aurora

#endif  // SRC_APPS_REDIS_LIKE_H_
