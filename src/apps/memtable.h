// LSM memtable whose record arena lives in simulated process memory.
//
// Records are appended to a VM-mapped arena (so Aurora checkpoints capture
// the table as plain memory) with a host-side ordered index for lookups.
// After an Aurora restore the index is rebuilt by scanning the arena —
// exactly the "fix up runtime state" step the paper's customized RocksDB
// performs in its restore signal handler.
#ifndef SRC_APPS_MEMTABLE_H_
#define SRC_APPS_MEMTABLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/vm/vm_map.h"

namespace aurora {

class MemTable {
 public:
  // The arena occupies [arena_addr, arena_addr + arena_bytes) in `vm`.
  MemTable(SimContext* sim, VmMap* vm, uint64_t arena_addr, uint64_t arena_bytes);

  // Optional: place skiplist index nodes in VM too (real stores keep them
  // in process memory, so checkpoints see their dirtying). Nodes are
  // rebuilt by RecoverFromArena, never read back.
  void AttachNodeArena(uint64_t node_addr, uint64_t node_bytes) {
    node_addr_ = node_addr;
    node_bytes_ = node_bytes;
  }

  [[nodiscard]] Status Put(std::string_view key, std::string_view value);
  std::optional<std::string> Get(std::string_view key);
  // Ordered iteration for flush/compaction.
  const std::map<std::string, std::pair<uint64_t, uint32_t>>& index() const { return index_; }
  [[nodiscard]] Result<std::string> ReadValueAt(uint64_t value_off, uint32_t value_len);

  uint64_t bytes_used() const { return write_off_; }
  uint64_t capacity() const { return arena_bytes_; }
  size_t entry_count() const { return index_.size(); }
  bool Full(uint64_t incoming_bytes) const {
    return write_off_ + incoming_bytes + kRecordHeader + 1 > arena_bytes_;
  }

  // Discards all entries (after a flush) — the arena restarts from zero.
  // Fails if the end-of-log sentinel cannot be written (the arena would
  // replay stale records after a restore).
  [[nodiscard]] Status Clear();

  // Rebuilds the index by scanning the arena records (post-restore fixup).
  [[nodiscard]] Status RecoverFromArena();

 private:
  static constexpr uint64_t kRecordHeader = 8;  // klen u32 + vlen u32

  SimContext* sim_;
  VmMap* vm_;
  uint64_t arena_addr_;
  uint64_t arena_bytes_;
  uint64_t write_off_ = 0;
  uint64_t node_addr_ = 0;
  uint64_t node_bytes_ = 0;
  // key -> (value offset in arena, value length)
  std::map<std::string, std::pair<uint64_t, uint32_t>> index_;
};

}  // namespace aurora

#endif  // SRC_APPS_MEMTABLE_H_
