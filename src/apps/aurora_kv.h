// The Aurora-customized key-value store (paper section 9.6).
//
// The paper's modified RocksDB deletes the entire LSM tree (81 kSLOC of
// persistence code) and keeps only the memtable, persisted by Aurora:
//   * every Put appends to an sls_journal write-ahead record and inserts
//     into the VM-resident memtable;
//   * when the journal fills, the store triggers a full Aurora checkpoint
//     (which captures the memtable as plain memory) and resets the journal;
//   * recovery = Aurora restore + arena index rebuild + journal replay.
// The replacement below is 109-lines-of-logic small, like the paper's.
#ifndef SRC_APPS_AURORA_KV_H_
#define SRC_APPS_AURORA_KV_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/apps/memtable.h"
#include "src/base/result.h"
#include "src/core/sls.h"

namespace aurora {

struct AuroraKvOptions {
  uint64_t memtable_bytes = 1 * kGiB;  // sized to hold the whole database
  uint64_t journal_bytes = 64 * kMiB;
  bool journal_sync = true;     // persist each Put before acknowledging
  int group_commit_batch = 32;  // Puts amortized per synchronous append
};

struct AuroraKvStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t journal_appends = 0;
  uint64_t checkpoints = 0;
  SimDuration last_checkpoint_wait = 0;
};

class AuroraKv {
 public:
  AuroraKv(Sls* sls, ConsistencyGroup* group, Process* proc, AuroraKvOptions options);

  // Recovery path: reattach to a *restored* process whose arenas are already
  // mapped (at the addresses reported by arena_addr()/node_addr()) and whose
  // journal already exists. Rebuilds the index and replays the journal.
  [[nodiscard]] static Result<std::unique_ptr<AuroraKv>> Reattach(
      Sls* sls, ConsistencyGroup* group, Process* proc, AuroraKvOptions options,
      uint64_t arena_addr, uint64_t node_addr, Oid journal);

  [[nodiscard]] Status Put(std::string_view key, std::string_view value);
  [[nodiscard]] Result<std::optional<std::string>> Get(std::string_view key);

  // Post-restore fixup: rebuild the memtable index from the restored arena,
  // then replay journal records newer than the checkpoint.
  [[nodiscard]] Status Recover(Process* restored_proc);

  const AuroraKvStats& stats() const { return stats_; }
  MemTable& memtable() { return *memtable_; }
  Oid journal() const { return journal_; }
  uint64_t arena_addr() const { return arena_addr_; }
  uint64_t node_addr() const { return node_addr_; }

 private:
  AuroraKv() = default;
  [[nodiscard]] Status AppendToJournal(std::string_view key, std::string_view value);

  Sls* sls_ = nullptr;
  ConsistencyGroup* group_ = nullptr;
  Process* proc_ = nullptr;
  AuroraKvOptions options_;
  uint64_t arena_addr_ = 0;
  uint64_t node_addr_ = 0;
  std::unique_ptr<MemTable> memtable_;
  Oid journal_;
  uint64_t journal_used_ = 0;
  std::vector<uint8_t> pending_batch_;
  int batched_ = 0;
  AuroraKvStats stats_;
};

}  // namespace aurora

#endif  // SRC_APPS_AURORA_KV_H_
