#include "src/apps/workloads.h"

#include <cstdio>

namespace aurora {

KvRequest EtcWorkload::Next() {
  KvRequest req;
  req.key = zipf_.Next();
  if (rng_.NextBool(set_ratio_)) {
    req.op = KvOp::kSet;
    // ETC value sizes: mostly tiny, occasionally larger (truncated
    // generalized-Pareto-flavored mix).
    double u = rng_.NextDouble();
    if (u < 0.4) {
      req.value_size = static_cast<uint32_t>(rng_.Range(2, 64));
    } else if (u < 0.95) {
      req.value_size = static_cast<uint32_t>(rng_.Range(64, 512));
    } else {
      req.value_size = static_cast<uint32_t>(rng_.Range(512, 4096));
    }
  } else {
    req.op = KvOp::kGet;
  }
  return req;
}

KvRequest PrefixDistWorkload::Next() {
  KvRequest req;
  uint64_t prefix = prefix_zipf_.Next();
  uint64_t within = rng_.Below(256);
  req.key = (prefix * 256 + within) % num_keys_;
  double u = rng_.NextDouble();
  if (u < 0.83) {
    req.op = KvOp::kGet;
  } else if (u < 0.97) {
    req.op = KvOp::kSet;
    req.value_size = static_cast<uint32_t>(rng_.Range(100, 400));
  } else {
    req.op = KvOp::kSeek;
    req.value_size = static_cast<uint32_t>(rng_.Range(10, 100));  // scan length
  }
  return req;
}

std::string PrefixDistWorkload::EncodeKey(uint64_t key) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "key%017llu", static_cast<unsigned long long>(key));
  return buf;
}

}  // namespace aurora
