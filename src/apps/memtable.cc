#include "src/apps/memtable.h"

#include <cstring>
#include <vector>

namespace aurora {

MemTable::MemTable(SimContext* sim, VmMap* vm, uint64_t arena_addr, uint64_t arena_bytes)
    : sim_(sim), vm_(vm), arena_addr_(arena_addr), arena_bytes_(arena_bytes) {}

Status MemTable::Put(std::string_view key, std::string_view value) {
  uint64_t need = kRecordHeader + key.size() + value.size();
  if (write_off_ + need + 4 > arena_bytes_) {
    return Status::Error(Errc::kNoSpace, "memtable arena full");
  }
  uint64_t rec = arena_addr_ + write_off_;
  uint32_t klen = static_cast<uint32_t>(key.size());
  uint32_t vlen = static_cast<uint32_t>(value.size());
  AURORA_RETURN_IF_ERROR(vm_->Write(rec, &klen, 4));
  AURORA_RETURN_IF_ERROR(vm_->Write(rec + 4, &vlen, 4));
  AURORA_RETURN_IF_ERROR(vm_->Write(rec + 8, key.data(), key.size()));
  AURORA_RETURN_IF_ERROR(vm_->Write(rec + 8 + key.size(), value.data(), value.size()));
  // Zero sentinel after the record marks the scan end for recovery.
  uint32_t zero = 0;
  AURORA_RETURN_IF_ERROR(vm_->Write(rec + need, &zero, 4));
  // Skiplist insert: a handful of pointer-chasing levels, plus the node
  // itself written into process memory (visible to checkpoints).
  sim_->clock.Advance(sim_->cost.cacheline_miss * 4 + sim_->cost.lock_acquire);
  if (node_bytes_ > 0) {
    // The new node plus the predecessor nodes whose forward pointers are
    // rewritten at each skiplist level the insert touches.
    uint64_t h = 1469598103934665603ull;
    for (char c : key) {
      h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
    }
    for (int level = 0; level < 3; level++) {
      uint64_t slot = (h % (node_bytes_ / 64)) * 64;
      uint8_t node[64] = {};
      std::memcpy(node, &rec, sizeof(rec));
      AURORA_RETURN_IF_ERROR(vm_->Write(node_addr_ + slot, node, sizeof(node)));
      h = h * 0x9e3779b97f4a7c15ull + 0x632be59bd9b4e019ull;
    }
  }
  index_[std::string(key)] = {write_off_ + 8 + key.size(), vlen};
  write_off_ += need;
  return Status::Ok();
}

std::optional<std::string> MemTable::Get(std::string_view key) {
  auto it = index_.find(std::string(key));
  if (it == index_.end()) {
    return std::nullopt;
  }
  sim_->clock.Advance(sim_->cost.cacheline_miss * 4);
  auto value = ReadValueAt(it->second.first, it->second.second);
  if (!value.ok()) {
    return std::nullopt;
  }
  return *value;
}

Result<std::string> MemTable::ReadValueAt(uint64_t value_off, uint32_t value_len) {
  std::string out(value_len, '\0');
  AURORA_RETURN_IF_ERROR(vm_->Read(arena_addr_ + value_off, out.data(), value_len));
  return out;
}

Status MemTable::Clear() {
  index_.clear();
  write_off_ = 0;
  uint32_t zero = 0;
  return vm_->Write(arena_addr_, &zero, 4);
}

Status MemTable::RecoverFromArena() {
  index_.clear();
  write_off_ = 0;
  while (write_off_ + kRecordHeader < arena_bytes_) {
    uint64_t rec = arena_addr_ + write_off_;
    uint32_t klen = 0;
    uint32_t vlen = 0;
    AURORA_RETURN_IF_ERROR(vm_->Read(rec, &klen, 4));
    if (klen == 0) {
      break;  // sentinel: end of log
    }
    AURORA_RETURN_IF_ERROR(vm_->Read(rec + 4, &vlen, 4));
    if (write_off_ + kRecordHeader + klen + vlen > arena_bytes_) {
      return Status::Error(Errc::kCorrupt, "arena record overruns arena");
    }
    std::string key(klen, '\0');
    AURORA_RETURN_IF_ERROR(vm_->Read(rec + 8, key.data(), klen));
    index_[key] = {write_off_ + 8 + klen, vlen};
    write_off_ += kRecordHeader + klen + vlen;
  }
  return Status::Ok();
}

}  // namespace aurora
