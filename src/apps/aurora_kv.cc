#include "src/apps/aurora_kv.h"

#include "src/base/serializer.h"

namespace aurora {

AuroraKv::AuroraKv(Sls* sls, ConsistencyGroup* group, Process* proc, AuroraKvOptions options)
    : sls_(sls), group_(group), proc_(proc), options_(options) {
  uint64_t arena = PageRound(options_.memtable_bytes);
  auto obj = VmObject::CreateAnonymous(arena);
  arena_addr_ = *proc_->vm().Map(0x30000000, arena, kProtRead | kProtWrite, obj, 0, true);
  memtable_ = std::make_unique<MemTable>(sls_->sim(), &proc_->vm(), arena_addr_, arena);
  uint64_t node_bytes = PageRound(arena / 4);
  auto nodes = VmObject::CreateAnonymous(node_bytes);
  node_addr_ = *proc_->vm().Map(0x70000000, node_bytes, kProtRead | kProtWrite,
                                std::move(nodes), 0, true);
  memtable_->AttachNodeArena(node_addr_, node_bytes);
  journal_ = *sls_->JournalCreate(options_.journal_bytes);
}

Result<std::unique_ptr<AuroraKv>> AuroraKv::Reattach(Sls* sls, ConsistencyGroup* group,
                                                     Process* proc, AuroraKvOptions options,
                                                     uint64_t arena_addr, uint64_t node_addr,
                                                     Oid journal) {
  auto db = std::unique_ptr<AuroraKv>(new AuroraKv());
  db->sls_ = sls;
  db->group_ = group;
  db->proc_ = proc;
  db->options_ = options;
  db->arena_addr_ = arena_addr;
  db->node_addr_ = node_addr;
  db->journal_ = journal;
  AURORA_RETURN_IF_ERROR(db->Recover(proc));
  return db;
}

Status AuroraKv::AppendToJournal(std::string_view key, std::string_view value) {
  // Record framing only: no WriteBatch, no writer queue (109-line WAL).
  sls_->sim()->clock.Advance(150);
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(key.size()));
  w.PutU32(static_cast<uint32_t>(value.size()));
  w.PutRaw(key.data(), key.size());
  w.PutRaw(value.data(), value.size());
  pending_batch_.insert(pending_batch_.end(), w.data().begin(), w.data().end());
  batched_++;
  if (!options_.journal_sync || batched_ < options_.group_commit_batch) {
    return Status::Ok();
  }
  // Group commit: one synchronous journal append covers the batch.
  Status st = sls_->JournalAppend(journal_, pending_batch_.data(), pending_batch_.size());
  if (st.code() == Errc::kNoSpace) {
    // Journal full: take a checkpoint (captures the memtable), then rewind
    // the journal and retry — the paper's WAL-full path. The writer that
    // trips this pays the checkpoint latency (the 99.9th percentile cost in
    // Fig. 6c).
    SimStopwatch wait(sls_->sim()->clock);
    AURORA_ASSIGN_OR_RETURN(CheckpointResult ckpt, sls_->Checkpoint(group_, "wal-full"));
    sls_->sim()->clock.AdvanceTo(ckpt.durable_at);
    AURORA_RETURN_IF_ERROR(sls_->JournalReset(journal_));
    journal_used_ = 0;
    stats_.checkpoints++;
    stats_.last_checkpoint_wait = wait.Elapsed();
    st = sls_->JournalAppend(journal_, pending_batch_.data(), pending_batch_.size());
  }
  AURORA_RETURN_IF_ERROR(st);
  journal_used_ += pending_batch_.size();
  stats_.journal_appends++;
  pending_batch_.clear();
  batched_ = 0;
  return Status::Ok();
}

Status AuroraKv::Put(std::string_view key, std::string_view value) {
  stats_.puts++;
  AURORA_RETURN_IF_ERROR(AppendToJournal(key, value));
  Status st = memtable_->Put(key, value);
  if (st.code() == Errc::kNoSpace) {
    return Status::Error(Errc::kNoSpace, "database exceeds the memtable (resize the arena)");
  }
  return st;
}

Result<std::optional<std::string>> AuroraKv::Get(std::string_view key) {
  stats_.gets++;
  if (auto v = memtable_->Get(key)) {
    return std::optional<std::string>(std::move(*v));
  }
  return std::optional<std::string>();
}

Status AuroraKv::Recover(Process* restored_proc) {
  proc_ = restored_proc;
  memtable_ = std::make_unique<MemTable>(sls_->sim(), &proc_->vm(), arena_addr_,
                                         PageRound(options_.memtable_bytes));
  if (node_addr_ != 0) {
    memtable_->AttachNodeArena(node_addr_, PageRound(PageRound(options_.memtable_bytes) / 4));
  }
  AURORA_RETURN_IF_ERROR(memtable_->RecoverFromArena());
  AURORA_ASSIGN_OR_RETURN(std::vector<std::vector<uint8_t>> records,
                          sls_->JournalReplay(journal_));
  for (const auto& rec : records) {
    BinaryReader r(rec);
    while (r.Remaining() > 0) {
      AURORA_ASSIGN_OR_RETURN(uint32_t klen, r.U32());
      AURORA_ASSIGN_OR_RETURN(uint32_t vlen, r.U32());
      std::string key(klen, '\0');
      AURORA_RETURN_IF_ERROR(r.Raw(key.data(), klen));
      std::string value(vlen, '\0');
      AURORA_RETURN_IF_ERROR(r.Raw(value.data(), vlen));
      AURORA_RETURN_IF_ERROR(memtable_->Put(key, value));
    }
  }
  return Status::Ok();
}

}  // namespace aurora
