#include "src/apps/sstable.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "src/base/serializer.h"

namespace aurora {

namespace {
constexpr uint32_t kSstMagic = 0x53535431;  // "SST1"
}

uint64_t SstKeyHash(std::string_view key) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (char c : key) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  return h;
}

void BloomAdd(std::vector<uint8_t>* bits, uint64_t key_hash) {
  uint64_t nbits = bits->size() * 8;
  if (nbits == 0) {
    return;
  }
  uint64_t h = key_hash;
  for (int i = 0; i < 3; i++) {
    uint64_t bit = h % nbits;
    (*bits)[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    h = h * 0x9e3779b97f4a7c15ull + 1;
  }
}

bool BloomMayContain(const std::vector<uint8_t>& bits, uint64_t key_hash) {
  uint64_t nbits = bits.size() * 8;
  if (nbits == 0) {
    return true;
  }
  uint64_t h = key_hash;
  for (int i = 0; i < 3; i++) {
    uint64_t bit = h % nbits;
    if ((bits[bit / 8] & (1u << (bit % 8))) == 0) {
      return false;
    }
    h = h * 0x9e3779b97f4a7c15ull + 1;
  }
  return true;
}

SstableWriter::SstableWriter(SimContext* sim, std::shared_ptr<Vnode> file)
    : sim_(sim), file_(std::move(file)) {}

Status SstableWriter::Add(std::string_view key, std::string_view value) {
  if (entries_ > 0 && std::string(key) <= last_key_) {
    return Status::Error(Errc::kInvalidArgument, "keys must be added in order");
  }
  if (block_.empty()) {
    index_.push_back(IndexEntry{std::string(key), file_off_, 0});
  }
  BinaryWriter w;
  w.PutU32(static_cast<uint32_t>(key.size()));
  w.PutU32(static_cast<uint32_t>(value.size()));
  w.PutRaw(key.data(), key.size());
  w.PutRaw(value.data(), value.size());
  block_.insert(block_.end(), w.data().begin(), w.data().end());
  key_hashes_.push_back(SstKeyHash(key));
  last_key_ = std::string(key);
  entries_++;
  sim_->clock.Advance(sim_->cost.Serialize(8 + key.size() + value.size()));
  if (block_.size() >= kBlockTarget) {
    return FlushBlock();
  }
  return Status::Ok();
}

Status SstableWriter::FlushBlock() {
  if (block_.empty()) {
    return Status::Ok();
  }
  index_.back().length = static_cast<uint32_t>(block_.size());
  AURORA_RETURN_IF_ERROR(file_->Write(file_off_, block_.data(), block_.size()).status());
  file_off_ += block_.size();
  block_.clear();
  return Status::Ok();
}

Result<uint64_t> SstableWriter::Finish() {
  AURORA_RETURN_IF_ERROR(FlushBlock());
  // Index.
  BinaryWriter idx;
  idx.PutU64(index_.size());
  for (const IndexEntry& e : index_) {
    idx.PutString(e.first_key);
    idx.PutU64(e.offset);
    idx.PutU32(e.length);
  }
  uint64_t index_off = file_off_;
  AURORA_RETURN_IF_ERROR(file_->Write(file_off_, idx.data().data(), idx.size()).status());
  file_off_ += idx.size();
  // Bloom: ~10 bits per key.
  std::vector<uint8_t> bloom((key_hashes_.size() * 10 + 7) / 8 + 8, 0);
  for (uint64_t h : key_hashes_) {
    BloomAdd(&bloom, h);
  }
  uint64_t bloom_off = file_off_;
  AURORA_RETURN_IF_ERROR(file_->Write(file_off_, bloom.data(), bloom.size()).status());
  file_off_ += bloom.size();
  // Footer (fixed size at the tail).
  BinaryWriter foot;
  foot.PutU64(index_off);
  foot.PutU64(idx.size());
  foot.PutU64(bloom_off);
  foot.PutU64(bloom.size());
  foot.PutU64(entries_);
  foot.PutU32(kSstMagic);
  AURORA_RETURN_IF_ERROR(file_->Write(file_off_, foot.data().data(), foot.size()).status());
  file_off_ += foot.size();
  return file_off_;
}

Result<std::vector<uint8_t>> SstableReader::ReadRange(uint64_t off, uint64_t len) {
  std::vector<uint8_t> buf(len);
  AURORA_ASSIGN_OR_RETURN(uint64_t n, file_->Read(off, buf.data(), len));
  if (n != len) {
    return Status::Error(Errc::kCorrupt, "short sstable read");
  }
  return buf;
}

Result<std::unique_ptr<SstableReader>> SstableReader::Open(SimContext* sim,
                                                           std::shared_ptr<Vnode> file) {
  auto reader = std::unique_ptr<SstableReader>(new SstableReader(sim, std::move(file)));
  uint64_t size = reader->file_->size();
  constexpr uint64_t kFooter = 8 * 5 + 4;
  if (size < kFooter) {
    return Status::Error(Errc::kCorrupt, "sstable too small");
  }
  AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> foot, reader->ReadRange(size - kFooter, kFooter));
  BinaryReader fr(foot);
  AURORA_ASSIGN_OR_RETURN(uint64_t index_off, fr.U64());
  AURORA_ASSIGN_OR_RETURN(uint64_t index_len, fr.U64());
  AURORA_ASSIGN_OR_RETURN(uint64_t bloom_off, fr.U64());
  AURORA_ASSIGN_OR_RETURN(uint64_t bloom_len, fr.U64());
  AURORA_ASSIGN_OR_RETURN(reader->entries_, fr.U64());
  AURORA_ASSIGN_OR_RETURN(uint32_t magic, fr.U32());
  if (magic != kSstMagic) {
    return Status::Error(Errc::kCorrupt, "bad sstable magic");
  }
  AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> idx, reader->ReadRange(index_off, index_len));
  BinaryReader ir(idx);
  AURORA_ASSIGN_OR_RETURN(uint64_t nblocks, ir.U64());
  for (uint64_t i = 0; i < nblocks; i++) {
    IndexEntry e;
    AURORA_ASSIGN_OR_RETURN(e.first_key, ir.String());
    AURORA_ASSIGN_OR_RETURN(e.offset, ir.U64());
    AURORA_ASSIGN_OR_RETURN(e.length, ir.U32());
    reader->index_.push_back(std::move(e));
  }
  AURORA_ASSIGN_OR_RETURN(reader->bloom_, reader->ReadRange(bloom_off, bloom_len));
  if (!reader->index_.empty()) {
    reader->smallest_ = reader->index_.front().first_key;
  }
  // Largest key: scan the last block.
  if (!reader->index_.empty()) {
    const IndexEntry& last = reader->index_.back();
    AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> blk, reader->ReadRange(last.offset, last.length));
    BinaryReader br(blk);
    while (br.Remaining() > 0) {
      AURORA_ASSIGN_OR_RETURN(uint32_t klen, br.U32());
      AURORA_ASSIGN_OR_RETURN(uint32_t vlen, br.U32());
      std::string key(klen, '\0');
      AURORA_RETURN_IF_ERROR(br.Raw(key.data(), klen));
      std::vector<uint8_t> skip(vlen);
      AURORA_RETURN_IF_ERROR(br.Raw(skip.data(), vlen));
      reader->largest_ = key;
    }
  }
  return reader;
}

Result<std::optional<std::string>> SstableReader::Get(std::string_view key) {
  sim_->clock.Advance(sim_->cost.cacheline_miss * 3);  // bloom probes
  if (!BloomMayContain(bloom_, SstKeyHash(key))) {
    return std::optional<std::string>();
  }
  // Binary search the block index for the last block whose first key <= key.
  auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::string_view k, const IndexEntry& e) { return k < e.first_key; });
  if (it == index_.begin()) {
    return std::optional<std::string>();
  }
  --it;
  sim_->clock.Advance(sim_->cost.cacheline_miss *
                      static_cast<SimDuration>(1 + std::max<size_t>(1, index_.size() / 2 ? 4 : 1)));
  AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> blk, ReadRange(it->offset, it->length));
  BinaryReader br(blk);
  while (br.Remaining() > 0) {
    AURORA_ASSIGN_OR_RETURN(uint32_t klen, br.U32());
    AURORA_ASSIGN_OR_RETURN(uint32_t vlen, br.U32());
    std::string k(klen, '\0');
    AURORA_RETURN_IF_ERROR(br.Raw(k.data(), klen));
    std::string v(vlen, '\0');
    AURORA_RETURN_IF_ERROR(br.Raw(v.data(), vlen));
    if (k == key) {
      return std::optional<std::string>(std::move(v));
    }
  }
  return std::optional<std::string>();
}

Status SstableReader::ForEach(
    const std::function<void(std::string_view, std::string_view)>& fn) {
  for (const IndexEntry& e : index_) {
    AURORA_ASSIGN_OR_RETURN(std::vector<uint8_t> blk, ReadRange(e.offset, e.length));
    BinaryReader br(blk);
    while (br.Remaining() > 0) {
      AURORA_ASSIGN_OR_RETURN(uint32_t klen, br.U32());
      AURORA_ASSIGN_OR_RETURN(uint32_t vlen, br.U32());
      std::string k(klen, '\0');
      AURORA_RETURN_IF_ERROR(br.Raw(k.data(), klen));
      std::string v(vlen, '\0');
      AURORA_RETURN_IF_ERROR(br.Raw(v.data(), vlen));
      fn(k, v);
    }
  }
  return Status::Ok();
}

}  // namespace aurora
