// Workload generators reproducing the paper's benchmark drivers.
//
//   * EtcWorkload — the mutilate "Facebook ETC" key-value mix (Atikoglu et
//     al., SIGMETRICS'12): GET-dominated, Zipf-popular keys, small values.
//   * PrefixDistWorkload — the RocksDB Facebook Prefix_dist mix (Cao et al.,
//     FAST'20): get/put/seek over prefix-skewed keys.
//   * FileBench personalities live in bench/ (they drive Filesystems
//     directly).
#ifndef SRC_APPS_WORKLOADS_H_
#define SRC_APPS_WORKLOADS_H_

#include <cstdint>
#include <string>

#include "src/base/rng.h"

namespace aurora {

enum class KvOp : uint8_t { kGet, kSet, kSeek };

struct KvRequest {
  KvOp op = KvOp::kGet;
  uint64_t key = 0;
  uint32_t value_size = 0;
};

// Facebook ETC: ~3.3% SETs, Zipf(0.99) key popularity, values mostly a few
// hundred bytes.
class EtcWorkload {
 public:
  EtcWorkload(uint64_t num_keys, uint64_t seed, double set_ratio = 0.033)
      : set_ratio_(set_ratio), zipf_(num_keys, 0.99, seed), rng_(seed ^ 0x5bd1e995) {}

  KvRequest Next();

 private:
  double set_ratio_;
  ZipfGenerator zipf_;
  Rng rng_;
};

// RocksDB Prefix_dist: 83% Get / 14% Put / 3% Seek, keys clustered under
// hot prefixes.
class PrefixDistWorkload {
 public:
  PrefixDistWorkload(uint64_t num_keys, uint64_t seed)
      : num_keys_(num_keys), prefix_zipf_(num_keys / 256 + 1, 0.92,
                  seed), rng_(seed ^ 0xc2b2ae35) {}

  KvRequest Next();
  // RocksDB-style 20-byte key encoding for a key id.
  static std::string EncodeKey(uint64_t key);

 private:
  uint64_t num_keys_;
  ZipfGenerator prefix_zipf_;
  Rng rng_;
};

}  // namespace aurora

#endif  // SRC_APPS_WORKLOADS_H_
