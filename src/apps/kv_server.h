// Memcached-like key-value server for the Fig. 4/5 transparent-persistence
// benchmarks.
//
// The hash table, the item slabs and the LRU metadata all live in simulated
// process memory, so every GET really dirties the item header (LRU bump and
// reference counts — the reason memcached's dirty rate tracks its op rate)
// and every SET dirties the value bytes. Handlers return the operation's
// service time; the discrete-event benchmark supplies queueing and
// concurrency around them.
#ifndef SRC_APPS_KV_SERVER_H_
#define SRC_APPS_KV_SERVER_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/posix/kernel.h"

namespace aurora {

struct KvServerConfig {
  uint64_t num_keys = 4 << 20;
  uint64_t value_size = 200;       // ETC-style small values
  int worker_threads = 12;
  SimDuration op_cpu = 11 * kMicrosecond;  // protocol parse + hash + reply
};

class KvServer {
 public:
  KvServer(SimContext* sim, Kernel* kernel, KvServerConfig config);

  Process* process() { return proc_; }
  const KvServerConfig& config() const { return config_; }

  // Executes one operation's memory traffic and CPU work against the
  // simulated clock; returns the elapsed service time.
  [[nodiscard]] Result<SimDuration> ExecuteGet(uint64_t key);
  [[nodiscard]] Result<SimDuration> ExecuteSet(uint64_t key, uint8_t fill);

  // Pre-faults the working set like a warmed server.
  [[nodiscard]] Status Warmup();

 private:
  uint64_t BucketAddr(uint64_t key) const;
  uint64_t ItemAddr(uint64_t key) const;

  SimContext* sim_;
  Kernel* kernel_;
  KvServerConfig config_;
  Process* proc_;
  uint64_t table_base_ = 0;
  uint64_t slab_base_ = 0;
  uint64_t item_size_ = 0;
};

}  // namespace aurora

#endif  // SRC_APPS_KV_SERVER_H_
