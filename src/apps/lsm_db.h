// The mini-LSM database: the unmodified-RocksDB stand-in for Fig. 6.
//
// Standard architecture: WAL (file append + optional fsync per commit) →
// memtable (VM arena) → L0 SSTables on flush → leveled compaction. All I/O
// goes through a Filesystem, so the cost profile is the file system's real
// write path plus the LSM's own serialization and merge work.
#ifndef SRC_APPS_LSM_DB_H_
#define SRC_APPS_LSM_DB_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/apps/memtable.h"
#include "src/apps/sstable.h"
#include "src/base/result.h"
#include "src/base/sim_context.h"
#include "src/posix/kernel.h"

namespace aurora {

struct LsmOptions {
  uint64_t memtable_bytes = 64 * kMiB;
  bool wal_enabled = true;
  bool wal_sync = false;        // fsync each commit (the paper's "Sync" mode)
  int group_commit_batch = 32;  // commits amortized per fsync
  // max_total_wal_size: when the WAL exceeds this, RocksDB force-flushes the
  // active memtable (the whole thing) and truncates the WAL.
  uint64_t wal_flush_trigger = 3 * kMiB;
  int l0_compaction_trigger = 4;
  int max_levels = 4;
  uint64_t level0_bytes = 256 * kMiB;
  double level_multiplier = 10.0;
};

struct LsmStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t memtable_hits = 0;
  uint64_t sst_reads = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t bytes_compacted = 0;
  uint64_t wal_syncs = 0;
  // Dead sstables compaction failed to unlink (each one leaks its blocks
  // until the next successful compaction of that path).
  uint64_t unlink_failures = 0;
};

class LsmDb {
 public:
  LsmDb(SimContext* sim, Kernel* kernel, Filesystem* fs, LsmOptions options);

  Process* process() { return proc_; }

  [[nodiscard]] Status Put(std::string_view key, std::string_view value);
  [[nodiscard]] Result<std::optional<std::string>> Get(std::string_view key);
  // Range scan of up to `limit` entries starting at `start` (Prefix_dist's
  // seek operation). Returns the number of entries visited.
  [[nodiscard]] Result<uint64_t> Seek(std::string_view start, uint64_t limit);

  // Crash recovery: replay the WAL into a fresh memtable.
  [[nodiscard]] Status Recover();

  const LsmStats& stats() const { return stats_; }
  uint64_t memtable_bytes() const { return memtable_->bytes_used(); }
  size_t sstable_count() const;

 private:
  struct TableHandle {
    std::string path;
    std::unique_ptr<SstableReader> reader;
  };

  [[nodiscard]] Status WalAppend(std::string_view key, std::string_view value);
  [[nodiscard]] Status FlushMemTable();
  [[nodiscard]] Status MaybeCompact();
  [[nodiscard]] Status CompactLevel(size_t level);
  uint64_t LevelBytes(size_t level) const;

  SimContext* sim_;
  Kernel* kernel_;
  Filesystem* fs_;
  LsmOptions options_;
  Process* proc_;
  std::unique_ptr<MemTable> memtable_;
  uint64_t arena_addr_ = 0;

  std::shared_ptr<Vnode> wal_;
  uint64_t wal_off_ = 0;
  int commits_since_sync_ = 0;

  // levels_[0] = newest-first L0 (overlapping); deeper levels sorted runs.
  std::vector<std::vector<TableHandle>> levels_;
  std::vector<uint64_t> level_bytes_;
  uint64_t next_file_seq_ = 1;

  LsmStats stats_;
};

}  // namespace aurora

#endif  // SRC_APPS_LSM_DB_H_
