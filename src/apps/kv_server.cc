#include "src/apps/kv_server.h"

#include <cstring>
#include <vector>

namespace aurora {

KvServer::KvServer(SimContext* sim, Kernel* kernel, KvServerConfig config)
    : sim_(sim), kernel_(kernel), config_(config) {
  proc_ = *kernel_->CreateProcess("memcached");
  for (int i = 1; i < config_.worker_threads; i++) {
    proc_->AddThread();
  }
  // Hash table: one 64-byte bucket per key (open addressing, 1:1 sizing).
  uint64_t table_bytes = PageRound(config_.num_keys * 64);
  auto table = VmObject::CreateAnonymous(table_bytes);
  table_base_ = *proc_->vm().Map(0x100000000ull, table_bytes, kProtRead | kProtWrite,
                                 std::move(table), 0, false);
  // Slabs: item header (64 B: LRU links, refcount, cas, flags) + value.
  item_size_ = 64 + config_.value_size;
  uint64_t slab_bytes = PageRound(config_.num_keys * item_size_);
  auto slab = VmObject::CreateAnonymous(slab_bytes);
  slab_base_ = *proc_->vm().Map(0x200000000ull, slab_bytes, kProtRead | kProtWrite,
                                std::move(slab), 0, false);
}

uint64_t KvServer::BucketAddr(uint64_t key) const {
  uint64_t h = key * 0x9e3779b97f4a7c15ull;
  return table_base_ + (h % config_.num_keys) * 64;
}

uint64_t KvServer::ItemAddr(uint64_t key) const {
  return slab_base_ + (key % config_.num_keys) * item_size_;
}

Status KvServer::Warmup() {
  std::vector<uint8_t> item(item_size_, 0x11);
  for (uint64_t k = 0; k < config_.num_keys; k++) {
    AURORA_RETURN_IF_ERROR(proc_->vm().Write(ItemAddr(k), item.data(), item.size()));
    uint64_t ptr = ItemAddr(k);
    AURORA_RETURN_IF_ERROR(proc_->vm().Write(BucketAddr(k), &ptr, sizeof(ptr)));
  }
  return Status::Ok();
}

Result<SimDuration> KvServer::ExecuteGet(uint64_t key) {
  SimStopwatch watch(sim_->clock);
  sim_->clock.Advance(config_.op_cpu);
  // Bucket probe.
  uint64_t ptr = 0;
  AURORA_RETURN_IF_ERROR(proc_->vm().Read(BucketAddr(key), &ptr, sizeof(ptr)));
  // Read the value...
  uint8_t value_head[16];
  AURORA_RETURN_IF_ERROR(proc_->vm().Read(ItemAddr(key) + 64, value_head, sizeof(value_head)));
  // ...and, crucially, *write* the item header: LRU bump + refcount. This is
  // why GET-heavy memcached still dirties pages at its op rate.
  uint64_t lru_stamp = sim_->clock.now();
  AURORA_RETURN_IF_ERROR(proc_->vm().Write(ItemAddr(key) + 8, &lru_stamp, sizeof(lru_stamp)));
  return watch.Elapsed();
}

Result<SimDuration> KvServer::ExecuteSet(uint64_t key, uint8_t fill) {
  SimStopwatch watch(sim_->clock);
  sim_->clock.Advance(config_.op_cpu);
  std::vector<uint8_t> value(config_.value_size, fill);
  AURORA_RETURN_IF_ERROR(proc_->vm().Write(ItemAddr(key) + 64, value.data(), value.size()));
  uint64_t ptr = ItemAddr(key);
  AURORA_RETURN_IF_ERROR(proc_->vm().Write(BucketAddr(key), &ptr, sizeof(ptr)));
  return watch.Elapsed();
}

}  // namespace aurora
