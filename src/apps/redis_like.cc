#include "src/apps/redis_like.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace aurora {

namespace {
// RDB serialization walks every object, formats it, and writes through the
// libc stream: an effective ~1.75 GB/s on the paper's hardware (Table 7's
// 300 ms for 500 MB: "3x slower than Aurora because of serialization
// overheads").
constexpr double kRdbSerializeBytesPerNs = 1.75;
}  // namespace

RedisLike::RedisLike(SimContext* sim, Kernel* kernel, uint64_t num_keys, uint64_t value_size)
    : sim_(sim), kernel_(kernel), num_keys_(num_keys), value_size_(value_size) {
  slot_size_ = 16 + value_size_;  // key header + value
  proc_ = *kernel_->CreateProcess("redis");
  uint64_t region = PageRound(num_keys_ * slot_size_ + kPageSize);
  auto obj = VmObject::CreateAnonymous(region);
  base_ = *proc_->vm().Map(0x10000000, region, kProtRead | kProtWrite, obj, 0,
                           /*copy_on_write=*/true);
  // Populate: every slot written once, like a loaded Redis instance. The
  // writes land in a mapping this constructor just created, so they cannot
  // fail short of a simulator bug — but a constructor cannot propagate, so
  // any failure is counted where the benches (and tests) can see it.
  std::vector<uint8_t> slot(slot_size_);
  for (uint64_t k = 0; k < num_keys_; k++) {
    std::memset(slot.data(), static_cast<int>(k & 0xff), slot.size());
    Status wrote = proc_->vm().Write(SlotAddr(k), slot.data(), slot.size());
    if (!wrote.ok()) {
      sim_->metrics.counter("redis.populate_failures").Add(1);
    }
  }
}

Status RedisLike::Set(uint64_t key, uint8_t fill) {
  if (key >= num_keys_) {
    return Status::Error(Errc::kOutOfRange, "no such key");
  }
  std::vector<uint8_t> value(value_size_, fill);
  return proc_->vm().Write(SlotAddr(key) + 16, value.data(), value.size());
}

Result<uint8_t> RedisLike::Get(uint64_t key) {
  if (key >= num_keys_) {
    return Status::Error(Errc::kOutOfRange, "no such key");
  }
  uint8_t byte = 0;
  AURORA_RETURN_IF_ERROR(proc_->vm().Read(SlotAddr(key) + 16, &byte, 1));
  return byte;
}

Result<RdbSaveResult> RedisLike::BgSave(BlockDevice* device) {
  RdbSaveResult result;

  // fork(): the parent stalls while every resident PTE is copied and
  // write-protected — this is the RDB "stop time" of Table 7.
  SimStopwatch fork_watch(sim_->clock);
  AURORA_ASSIGN_OR_RETURN(Process* child, kernel_->Fork(*proc_));
  result.fork_stop_time = fork_watch.Elapsed();

  // Child: walk the dictionary, serialize, write the RDB file. The parent
  // keeps running (simulated time advances; COW isolates it).
  SimStopwatch save_watch(sim_->clock);
  result.rdb_bytes = dataset_bytes();
  sim_->clock.Advance(static_cast<SimDuration>(static_cast<double>(result.rdb_bytes) /
                                               kRdbSerializeBytesPerNs));
  // The child really reads its (COW-shared) pages — a sampled walk keeps the
  // host-time cost of the simulation reasonable while touching real memory.
  // The read targets the child's freshly forked image (resident by
  // construction); a failure means the fork is corrupt and the save must be
  // abandoned like any other RDB error.
  uint8_t sink = 0;
  for (uint64_t k = 0; k < num_keys_; k += std::max<uint64_t>(1, num_keys_ / 1024)) {
    uint8_t b = 0;
    Status read = child->vm().Read(SlotAddr(k), &b, 1);
    if (!read.ok()) {
      kernel_->DestroyProcess(child);
      return read;
    }
    sink ^= b;
  }
  (void)sink;
  // Issue the image writes to the device. A failed write aborts the save —
  // redis discards a partial RDB file rather than advertising it as durable.
  uint64_t blocks = result.rdb_bytes / device->block_size() + 1;
  std::vector<uint8_t> chunk(device->block_size() * 64, 0);
  for (uint64_t b = 0; b < blocks; b += 64) {
    uint32_t n = static_cast<uint32_t>(std::min<uint64_t>(64, blocks - b));
    if (b + n < device->block_count()) {
      Result<SimTime> wrote = device->WriteAsync(b, chunk.data(), n);
      if (!wrote.ok()) {
        kernel_->DestroyProcess(child);
        return wrote.status();
      }
    }
  }
  result.child_save_time = save_watch.Elapsed();

  kernel_->DestroyProcess(child);
  return result;
}

}  // namespace aurora
