#include "src/fs/aurora_fs.h"

#include <cstdio>

#include "src/base/serializer.h"

namespace aurora {

uint64_t AuroraFs::AllocateIno(const std::string& path) {
  (void)path;
  auto oid = store_->CreateObject(ObjType::kFile);
  return oid.ok() ? oid->value : 0;
}

void AuroraFs::ChargeCreate() {
  // File creation is unoptimized and serializes on a global store lock
  // (paper section 9.1 calls this out on the createfiles benchmark).
  sim_->clock.Advance(25 * kMicrosecond);
}

void AuroraFs::ChargeWrite(uint64_t len, bool sub_block, bool first_dirty) {
  (void)len;
  // Extent-map bookkeeping on first dirty; sub-block writes pay COW
  // read-modify-write preparation at flush time.
  if (first_dirty) {
    sim_->clock.Advance(200);
  }
  if (sub_block) {
    sim_->clock.Advance(800);
  }
}

Status AuroraFs::FsyncImpl(Vnode* vn, uint64_t dirty_len) {
  (void)vn;
  (void)dirty_len;
  // Checkpoint consistency: durability is provided by the next store
  // checkpoint, so fsync only pays the syscall-side bookkeeping.
  sim_->clock.Advance(sim_->cost.lock_acquire);
  return Status::Ok();
}

Result<SimTime> AuroraFs::PersistBlock(Vnode* vn, uint64_t block_idx, const CacheBlock& cb) {
  return store_->WriteAt(OidOf(vn), block_idx * fs_block_size(), cb.data.data(),
                         cb.data.size());
}

Status AuroraFs::LoadBlock(Vnode* vn, uint64_t block_idx, uint8_t* out) {
  return store_->ReadAt(OidOf(vn), block_idx * fs_block_size(), out, fs_block_size());
}

void AuroraFs::ReleaseBacking(Vnode* vn) {
  Status deleted = store_->DeleteObject(OidOf(vn));
  if (!deleted.ok() && deleted.code() != Errc::kNotFound) {
    // Unlink already removed the vnode; a failed backing delete only leaks
    // store blocks until the next prune. Count it, log the first one.
    sim_->metrics.counter("fs.release_failures").Add();
    if (!release_failure_logged_) {
      release_failure_logged_ = true;
      std::fprintf(stderr, "aurorafs: backing object delete failed (%s); blocks leak until prune\n",
                   deleted.message().c_str());
    }
  }
}

Result<Oid> AuroraFs::PersistNamespace() {
  BinaryWriter w;
  auto paths = List();
  w.PutU64(paths.size());
  for (const auto& path : paths) {
    auto vn = Lookup(path);
    if (!vn.ok()) {
      continue;
    }
    w.PutString(path);
    w.PutU64((*vn)->ino());
    w.PutU64((*vn)->size());
  }
  AURORA_ASSIGN_OR_RETURN(Oid ns, store_->CreateObject(ObjType::kManifest));
  AURORA_ASSIGN_OR_RETURN(SimTime done, store_->WriteAt(ns, 0, w.data().data(), w.size()));
  // The durability time folds into the covering checkpoint's commit; the
  // namespace blob rides the same epoch as the commit record that names it.
  (void)done;
  return ns;
}

Status AuroraFs::RestoreNamespace(uint64_t epoch, Oid ns_oid) {
  AURORA_ASSIGN_OR_RETURN(uint64_t len, store_->SizeAtEpoch(epoch, ns_oid));
  std::vector<uint8_t> blob(len);
  AURORA_RETURN_IF_ERROR(store_->ReadAtEpoch(epoch, ns_oid, 0, blob.data(), len));
  BinaryReader r(blob);
  AURORA_ASSIGN_OR_RETURN(uint64_t count, r.U64());
  for (uint64_t i = 0; i < count; i++) {
    AURORA_ASSIGN_OR_RETURN(std::string path, r.String());
    AURORA_ASSIGN_OR_RETURN(uint64_t ino, r.U64());
    AURORA_ASSIGN_OR_RETURN(uint64_t size, r.U64());
    if (Lookup(path).ok()) {
      continue;  // already present
    }
    AURORA_ASSIGN_OR_RETURN(std::shared_ptr<Vnode> vn, CreateWithIno(path, ino));
    vn->set_size(size);
  }
  return Status::Ok();
}

}  // namespace aurora
