#include "src/fs/buffered_fs.h"

#include <algorithm>
#include <cstring>

namespace aurora {

Result<std::shared_ptr<Vnode>> BufferedFs::Create(const std::string& path) {
  if (names_.count(path) > 0) {
    return Status::Error(Errc::kExists, "file exists: " + path);
  }
  ChargeCreate();
  uint64_t ino = AllocateIno(path);
  auto vn = std::make_shared<Vnode>(this, ino);
  names_[path] = ino;
  paths_[ino] = path;
  FileState state;
  state.vnode = vn;
  files_[ino] = std::move(state);
  return vn;
}

Result<std::shared_ptr<Vnode>> BufferedFs::CreateWithIno(const std::string& path, uint64_t ino) {
  if (names_.count(path) > 0 || files_.count(ino) > 0) {
    return Status::Error(Errc::kExists, "path or inode already present");
  }
  auto vn = std::make_shared<Vnode>(this, ino);
  names_[path] = ino;
  paths_[ino] = path;
  FileState state;
  state.vnode = vn;
  files_[ino] = std::move(state);
  return vn;
}

Result<std::shared_ptr<Vnode>> BufferedFs::RegisterAnonymousIno(uint64_t ino) {
  if (files_.count(ino) > 0) {
    return Status::Error(Errc::kExists, "inode already present");
  }
  auto vn = std::make_shared<Vnode>(this, ino);
  vn->set_nlink(0);
  vn->AddHiddenRef();  // the restoring checkpoint holds a reference
  FileState state;
  state.vnode = vn;
  state.linked = false;
  files_[ino] = std::move(state);
  return vn;
}

Result<std::shared_ptr<Vnode>> BufferedFs::Lookup(const std::string& path) {
  auto it = names_.find(path);
  if (it == names_.end()) {
    return Status::Error(Errc::kNotFound, "no such file: " + path);
  }
  sim_->clock.Advance(sim_->cost.cacheline_miss + sim_->cost.lock_acquire);
  return files_.at(it->second).vnode;
}

Result<std::shared_ptr<Vnode>> BufferedFs::LookupByIno(uint64_t ino) {
  auto it = files_.find(ino);
  if (it == files_.end()) {
    return Status::Error(Errc::kNotFound, "no such inode");
  }
  // Direct inode reference: one hash probe, no name-cache walk. This is the
  // vnode-checkpoint optimization of paper section 5.2.
  sim_->clock.Advance(sim_->cost.cacheline_miss);
  return it->second.vnode;
}

Result<std::string> BufferedFs::PathOfIno(uint64_t ino) const {
  // Reverse lookups model namei(): walk the name table, paying a miss per
  // entry inspected (bench_ablations contrasts this with LookupByIno).
  for (const auto& [path, candidate] : names_) {
    sim_->clock.Advance(sim_->cost.cacheline_miss);
    if (candidate == ino) {
      return path;
    }
  }
  return Status::Error(Errc::kNotFound, "inode has no path (anonymous file)");
}

Status BufferedFs::Unlink(const std::string& path) {
  auto it = names_.find(path);
  if (it == names_.end()) {
    return Status::Error(Errc::kNotFound, "no such file: " + path);
  }
  uint64_t ino = it->second;
  names_.erase(it);
  paths_.erase(ino);
  auto& state = files_.at(ino);
  state.linked = false;
  state.vnode->set_nlink(0);
  MaybeReclaim(ino);
  return Status::Ok();
}

Status BufferedFs::Rename(const std::string& from, const std::string& to) {
  auto it = names_.find(from);
  if (it == names_.end()) {
    return Status::Error(Errc::kNotFound, "no such file: " + from);
  }
  // rename(2) semantics: an existing target is replaced.
  if (names_.count(to) > 0) {
    AURORA_RETURN_IF_ERROR(Unlink(to));
  }
  uint64_t ino = it->second;
  names_.erase(it);
  names_[to] = ino;
  paths_[ino] = to;
  sim_->clock.Advance(sim_->cost.lock_acquire * 2 + sim_->cost.cacheline_miss * 4);
  return Status::Ok();
}

void BufferedFs::MaybeReclaim(uint64_t ino) {
  auto it = files_.find(ino);
  if (it == files_.end() || it->second.linked) {
    return;
  }
  // Conventional file systems reclaim unlinked files once no descriptor
  // holds them (and unconditionally after a crash). AuroraFS keeps them
  // alive while hidden references — open fds or checkpoint objects — exist.
  if (RetainAnonymousFiles() && it->second.vnode->hidden_refs() > 0) {
    return;
  }
  for (auto& [idx, cb] : it->second.cache) {
    if (cb.dirty) {
      dirty_bytes_ -= fs_block_size_;
    }
  }
  ReleaseBacking(it->second.vnode.get());
  files_.erase(it);
}

std::vector<std::string> BufferedFs::List() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [path, ino] : names_) {
    out.push_back(path);
  }
  return out;
}

BufferedFs::FileState* BufferedFs::StateOf(Vnode* vn) {
  auto it = files_.find(vn->ino());
  return it == files_.end() ? nullptr : &it->second;
}

Result<BufferedFs::CacheBlock*> BufferedFs::GetBlock(FileState& fs, Vnode* vn,
                                                     uint64_t block_idx, bool for_write,
                                                     bool whole_block) {
  auto [it, inserted] = fs.cache.try_emplace(block_idx);
  CacheBlock& cb = it->second;
  if (inserted) {
    cb.data.assign(fs_block_size_, 0);
  }
  bool in_backing = block_idx * fs_block_size_ < vn->size();
  if (!cb.loaded && in_backing && !(for_write && whole_block)) {
    AURORA_RETURN_IF_ERROR(LoadBlock(vn, block_idx, cb.data.data()));
  }
  cb.loaded = true;
  return &cb;
}

Result<uint64_t> BufferedFs::ReadAt(Vnode* vn, uint64_t off, void* out, uint64_t len) {
  FileState* fs = StateOf(vn);
  if (fs == nullptr) {
    return Status::Error(Errc::kBadState, "stale vnode");
  }
  if (off >= vn->size()) {
    return uint64_t{0};
  }
  len = std::min(len, vn->size() - off);
  auto* dst = static_cast<uint8_t*>(out);
  uint64_t pos = off;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t block_idx = pos / fs_block_size_;
    uint64_t in_block = pos % fs_block_size_;
    uint64_t chunk = std::min<uint64_t>(remaining, fs_block_size_ - in_block);
    AURORA_ASSIGN_OR_RETURN(CacheBlock * cb,
                            GetBlock(*fs, vn, block_idx, /*for_write=*/false, false));
    std::memcpy(dst, cb->data.data() + in_block, chunk);
    sim_->clock.Advance(sim_->cost.MemCopy(chunk));
    pos += chunk;
    dst += chunk;
    remaining -= chunk;
  }
  return len;
}

Result<uint64_t> BufferedFs::WriteAt(Vnode* vn, uint64_t off, const void* data, uint64_t len) {
  FileState* fs = StateOf(vn);
  if (fs == nullptr) {
    return Status::Error(Errc::kBadState, "stale vnode");
  }
  const auto* src = static_cast<const uint8_t*>(data);
  uint64_t pos = off;
  uint64_t remaining = len;
  while (remaining > 0) {
    uint64_t block_idx = pos / fs_block_size_;
    uint64_t in_block = pos % fs_block_size_;
    uint64_t chunk = std::min<uint64_t>(remaining, fs_block_size_ - in_block);
    bool whole = in_block == 0 && chunk == fs_block_size_;
    AURORA_ASSIGN_OR_RETURN(CacheBlock * cb, GetBlock(*fs, vn, block_idx, /*for_write=*/true,
                                                      whole));
    std::memcpy(cb->data.data() + in_block, src, chunk);
    sim_->clock.Advance(sim_->cost.MemCopy(chunk));
    ChargeWrite(chunk, !whole, !cb->dirty);
    if (!cb->dirty) {
      cb->dirty = true;
      dirty_bytes_ += fs_block_size_;
    }
    pos += chunk;
    src += chunk;
    remaining -= chunk;
  }
  vn->set_size(std::max(vn->size(), off + len));
  return len;
}

Status BufferedFs::Truncate(Vnode* vn, uint64_t new_size) {
  FileState* fs = StateOf(vn);
  if (fs == nullptr) {
    return Status::Error(Errc::kBadState, "stale vnode");
  }
  uint64_t first_dead = (new_size + fs_block_size_ - 1) / fs_block_size_;
  for (auto it = fs->cache.lower_bound(first_dead); it != fs->cache.end();) {
    if (it->second.dirty) {
      dirty_bytes_ -= fs_block_size_;
    }
    it = fs->cache.erase(it);
  }
  vn->set_size(new_size);
  return Status::Ok();
}

Status BufferedFs::Fsync(Vnode* vn) {
  FileState* fs = StateOf(vn);
  if (fs == nullptr) {
    return Status::Error(Errc::kBadState, "stale vnode");
  }
  uint64_t dirty_len = 0;
  for (const auto& [idx, cb] : fs->cache) {
    if (cb.dirty) {
      dirty_len += fs_block_size_;
    }
  }
  return FsyncImpl(vn, dirty_len);
}

Result<SimTime> BufferedFs::FlushVnode(uint64_t ino) {
  auto it = files_.find(ino);
  if (it == files_.end()) {
    return Status::Error(Errc::kNotFound, "no such inode");
  }
  SimTime done_at = sim_->clock.now();
  for (auto& [idx, cb] : it->second.cache) {
    if (!cb.dirty) {
      continue;
    }
    auto done = PersistBlock(it->second.vnode.get(), idx, cb);
    if (!done.ok()) {
      return done.status();
    }
    done_at = std::max(done_at, *done);
    cb.dirty = false;
    dirty_bytes_ -= fs_block_size_;
  }
  return done_at;
}

void BufferedFs::DropCleanCache() {
  for (auto& [ino, state] : files_) {
    for (auto it = state.cache.begin(); it != state.cache.end();) {
      if (!it->second.dirty) {
        it = state.cache.erase(it);
      } else {
        ++it;
      }
    }
  }
}

Result<SimTime> BufferedFs::FlushAll() {
  SimTime done = sim_->clock.now();
  for (auto& [ino, state] : files_) {
    for (auto& [idx, cb] : state.cache) {
      if (!cb.dirty) {
        continue;
      }
      AURORA_ASSIGN_OR_RETURN(SimTime t, PersistBlock(state.vnode.get(), idx, cb));
      done = std::max(done, t);
      cb.dirty = false;
      dirty_bytes_ -= fs_block_size_;
    }
  }
  return done;
}

}  // namespace aurora
