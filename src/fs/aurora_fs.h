// AuroraFS: the namespace into the single level store (paper sections 4.1,
// 5.2 and 9.1).
//
// Files are store objects; vnodes are checkpointed by inode number (== store
// OID); fsync is a no-op because durability comes from checkpoint
// consistency; unlinked-but-open ("anonymous") files are retained through
// hidden reference counts so restores can reproduce them.
#ifndef SRC_FS_AURORA_FS_H_
#define SRC_FS_AURORA_FS_H_

#include <memory>
#include <string>

#include "src/fs/buffered_fs.h"
#include "src/objstore/object_store.h"

namespace aurora {

class AuroraFs : public BufferedFs {
 public:
  AuroraFs(SimContext* sim, ObjectStore* store)
      : BufferedFs(sim, store->block_size()), store_(store) {}

  std::string name() const override { return "aurorafs"; }

  ObjectStore* store() { return store_; }
  static Oid OidOf(const Vnode* vn) { return Oid{vn->ino()}; }

  // Serializes the name table into a store object so restores recover the
  // namespace; called by the orchestrator during checkpoint flush.
  [[nodiscard]] Result<Oid> PersistNamespace();
  [[nodiscard]] Status RestoreNamespace(uint64_t epoch, Oid ns_oid);

 protected:
  uint64_t AllocateIno(const std::string& path) override;
  void ChargeCreate() override;
  void ChargeWrite(uint64_t len, bool sub_block, bool first_dirty) override;
  [[nodiscard]] Status FsyncImpl(Vnode* vn, uint64_t dirty_len) override;
  [[nodiscard]] Result<SimTime> PersistBlock(Vnode* vn, uint64_t block_idx,
                                             const CacheBlock& cb) override;
  [[nodiscard]] Status LoadBlock(Vnode* vn, uint64_t block_idx, uint8_t* out) override;
  void ReleaseBacking(Vnode* vn) override;
  bool RetainAnonymousFiles() const override { return true; }

 private:
  ObjectStore* store_;
  // One stderr line for the first failed backing delete; fs.release_failures
  // counts them all.
  bool release_failure_logged_ = false;
};

}  // namespace aurora

#endif  // SRC_FS_AURORA_FS_H_
