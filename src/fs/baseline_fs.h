// Baseline file systems for the Fig. 3 comparison.
//
// FfsLikeFs models FFS with soft-updates journaling (SU+J): in-place block
// writes, an optimized small-write path using fragments, and fsync that
// flushes the file's dirty blocks plus a small journal record.
//
// ZfsLikeFs models ZFS: copy-on-write block remapping, optional end-to-end
// checksumming (really computed, Fletcher-style), merkle metadata updates,
// and fsync through a ZFS intent log (ZIL) instead of a full transaction
// group commit.
#ifndef SRC_FS_BASELINE_FS_H_
#define SRC_FS_BASELINE_FS_H_

#include <map>
#include <string>
#include <utility>

#include "src/fs/buffered_fs.h"
#include "src/storage/block_device.h"

namespace aurora {

// Common backing-block management: files map (ino, block_idx) to device
// extents carved from a bump allocator.
class DeviceBackedFs : public BufferedFs {
 public:
  DeviceBackedFs(SimContext* sim, BlockDevice* device, uint32_t fs_block_size)
      : BufferedFs(sim, fs_block_size), device_(device) {}

 protected:
  uint64_t AllocateIno(const std::string& path) override;
  [[nodiscard]] Status LoadBlock(Vnode* vn, uint64_t block_idx, uint8_t* out) override;

  // Allocates device LBAs for one fs block.
  uint64_t AllocDeviceRun();
  uint32_t DevBlocksPerFsBlock() const { return fs_block_size() / device_->block_size(); }

  BlockDevice* device_;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> placement_;  // (ino, blk) -> lba
  uint64_t next_lba_ = 64;  // leave room for a superblock area
  uint64_t next_ino_ = 1;
};

class FfsLikeFs : public DeviceBackedFs {
 public:
  using DeviceBackedFs::DeviceBackedFs;

  std::string name() const override { return "ffs+suj"; }

 protected:
  void ChargeCreate() override;
  void ChargeWrite(uint64_t len, bool sub_block, bool first_dirty) override;
  [[nodiscard]] Status FsyncImpl(Vnode* vn, uint64_t dirty_len) override;
  [[nodiscard]] Result<SimTime> PersistBlock(Vnode* vn, uint64_t block_idx,
                                             const CacheBlock& cb) override;

 private:
  // Bytes written since the last fsync: soft updates let fsync write just
  // the new data plus one journal record.
  uint64_t pending_bytes_ = 0;
};

class ZfsLikeFs : public DeviceBackedFs {
 public:
  ZfsLikeFs(SimContext* sim, BlockDevice* device, uint32_t fs_block_size, bool checksums)
      : DeviceBackedFs(sim, device, fs_block_size), checksums_(checksums) {}

  std::string name() const override { return checksums_ ? "zfs+csum" : "zfs"; }

 protected:
  void ChargeCreate() override;
  void ChargeWrite(uint64_t len, bool sub_block, bool first_dirty) override;
  [[nodiscard]] Status FsyncImpl(Vnode* vn, uint64_t dirty_len) override;
  [[nodiscard]] Result<SimTime> PersistBlock(Vnode* vn, uint64_t block_idx,
                                             const CacheBlock& cb) override;

 private:
  bool checksums_;
  // Bytes written since the last intent-log commit: the ZIL logs deltas,
  // while the dirty blocks wait for the transaction group.
  uint64_t zil_pending_ = 0;
};

}  // namespace aurora

#endif  // SRC_FS_BASELINE_FS_H_
