// Shared buffer-cache file system base for AuroraFS and the Fig. 3
// baselines (FFS-like, ZFS-like).
//
// All three file systems buffer writes in a page cache and differ in their
// per-operation costs and their durability paths — which is exactly what
// FileBench measures. Subclasses implement the cost/durability hooks; the
// base class implements the namespace, the cache, and flushing.
#ifndef SRC_FS_BUFFERED_FS_H_
#define SRC_FS_BUFFERED_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/sim_context.h"
#include "src/posix/vnode.h"

namespace aurora {

class BufferedFs : public Filesystem {
 public:
  BufferedFs(SimContext* sim, uint32_t fs_block_size)
      : sim_(sim), fs_block_size_(fs_block_size) {}

  // --- Filesystem interface -------------------------------------------------
  [[nodiscard]] Result<std::shared_ptr<Vnode>> Create(const std::string& path) override;
  [[nodiscard]] Result<std::shared_ptr<Vnode>> Lookup(const std::string& path) override;
  [[nodiscard]] Status Unlink(const std::string& path) override;
  [[nodiscard]] Status Rename(const std::string& from, const std::string& to) override;
  std::vector<std::string> List() const override;
  [[nodiscard]] Result<std::shared_ptr<Vnode>> LookupByIno(uint64_t ino) override;
  [[nodiscard]] Result<std::string> PathOfIno(uint64_t ino) const override;

  [[nodiscard]] Result<uint64_t> ReadAt(Vnode* vn, uint64_t off, void* out, uint64_t len) override;
  [[nodiscard]] Result<uint64_t> WriteAt(Vnode* vn, uint64_t off, const void* data,
                                         uint64_t len) override;
  [[nodiscard]] Status Truncate(Vnode* vn, uint64_t new_size) override;
  [[nodiscard]] Status Fsync(Vnode* vn) override;

  // Flushes every dirty cache block to backing storage (periodic sync /
  // transaction group / Aurora checkpoint). Returns the completion time of
  // the last write issued.
  [[nodiscard]] Result<SimTime> FlushAll();
  [[nodiscard]] Result<SimTime> FlushVnode(uint64_t ino);

  // Restore paths: registers a file under a preexisting inode number, either
  // linked at `path` or anonymous (unlinked but referenced by a checkpoint).
  [[nodiscard]] Result<std::shared_ptr<Vnode>> CreateWithIno(const std::string& path, uint64_t ino);
  [[nodiscard]] Result<std::shared_ptr<Vnode>> RegisterAnonymousIno(uint64_t ino);

  uint64_t DirtyBytes() const { return dirty_bytes_; }

  // Evicts clean cache blocks (memory pressure; benchmarks call this after
  // flushing to bound host memory).
  void DropCleanCache();
  uint32_t fs_block_size() const { return fs_block_size_; }
  SimContext* sim() { return sim_; }

 protected:
  struct CacheBlock {
    std::vector<uint8_t> data;
    bool dirty = false;
    bool loaded = false;  // backing contents already read in
  };

  // --- Subclass hooks --------------------------------------------------------
  // Returns a fresh inode number for a created file.
  virtual uint64_t AllocateIno(const std::string& path) = 0;
  // Per-operation CPU costs (charged on the foreground path).
  virtual void ChargeCreate() = 0;
  virtual void ChargeWrite(uint64_t len, bool sub_block, bool first_dirty) = 0;
  // Durability point for one file: FFS flushes + journals, ZFS writes the
  // intent log, Aurora is a no-op under checkpoint consistency.
  [[nodiscard]] virtual Status FsyncImpl(Vnode* vn, uint64_t dirty_len) = 0;
  // Persist one cache block; returns device completion time.
  [[nodiscard]] virtual Result<SimTime> PersistBlock(Vnode* vn, uint64_t block_idx,
                                                     const CacheBlock& cb) = 0;
  // Fill `out` (fs_block_size bytes) from backing storage.
  [[nodiscard]] virtual Status LoadBlock(Vnode* vn, uint64_t block_idx, uint8_t* out) = 0;
  // Namespace removal of backing storage (when the last reference dies).
  virtual void ReleaseBacking(Vnode* /*vn*/) {}

  // Whether an unlinked-but-open file keeps its data (AuroraFS hidden link
  // counts) or is reclaimed like a conventional file system.
  virtual bool RetainAnonymousFiles() const { return false; }

  SimContext* sim_;

 private:
  struct FileState {
    std::shared_ptr<Vnode> vnode;
    std::map<uint64_t, CacheBlock> cache;
    bool linked = true;
  };

  FileState* StateOf(Vnode* vn);
  [[nodiscard]] Result<CacheBlock*> GetBlock(FileState& fs, Vnode* vn, uint64_t block_idx,
                                             bool for_write,
                                             bool whole_block);
  void MaybeReclaim(uint64_t ino);

  uint32_t fs_block_size_;
  std::map<std::string, uint64_t> names_;        // path -> ino
  std::unordered_map<uint64_t, FileState> files_;  // ino -> state
  std::unordered_map<uint64_t, std::string> paths_;  // ino -> path (name cache)
  uint64_t dirty_bytes_ = 0;

  friend class FsTestPeer;
};

}  // namespace aurora

#endif  // SRC_FS_BUFFERED_FS_H_
