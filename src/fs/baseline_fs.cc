#include "src/fs/baseline_fs.h"

#include "src/base/checksum.h"

namespace aurora {

uint64_t DeviceBackedFs::AllocateIno(const std::string& path) {
  (void)path;
  return next_ino_++;
}

uint64_t DeviceBackedFs::AllocDeviceRun() {
  uint64_t lba = next_lba_;
  next_lba_ += DevBlocksPerFsBlock();
  return lba;
}

Status DeviceBackedFs::LoadBlock(Vnode* vn, uint64_t block_idx, uint8_t* out) {
  auto it = placement_.find({vn->ino(), block_idx});
  if (it == placement_.end()) {
    std::fill(out, out + fs_block_size(), 0);
    return Status::Ok();
  }
  return device_->ReadSync(it->second, out, DevBlocksPerFsBlock());
}

// --- FFS ---------------------------------------------------------------------

void FfsLikeFs::ChargeCreate() {
  // Directory entry + inode allocation + cylinder-group bookkeeping.
  sim_->clock.Advance(8 * kMicrosecond);
}

void FfsLikeFs::ChargeWrite(uint64_t len, bool sub_block, bool first_dirty) {
  pending_bytes_ += len;
  if (first_dirty) {
    if (sub_block) {
      // The optimized small-write path: fragments avoid full-block
      // allocation, and delayed allocation lets fragments get promoted to
      // full blocks before IO (paper section 9.1).
      sim_->clock.Advance(300);
    } else {
      sim_->clock.Advance(1200);  // block allocation + block map update
    }
  }
}

Status FfsLikeFs::FsyncImpl(Vnode* vn, uint64_t dirty_len) {
  (void)vn;
  (void)dirty_len;
  // Soft updates + journaling: fsync writes the data added since the last
  // sync, then the SU+J journal record — two ordered device commands (the
  // journal entry must not land before the data it describes).
  sim_->clock.Advance(sim_->cost.NvmeWrite(pending_bytes_));
  sim_->clock.Advance(sim_->cost.NvmeWrite(4 * kKiB));
  pending_bytes_ = 0;
  return Status::Ok();
}

Result<SimTime> FfsLikeFs::PersistBlock(Vnode* vn, uint64_t block_idx, const CacheBlock& cb) {
  // In-place update: the placement is allocated once and reused.
  auto key = std::make_pair(vn->ino(), block_idx);
  auto it = placement_.find(key);
  if (it == placement_.end()) {
    it = placement_.emplace(key, AllocDeviceRun()).first;
  }
  return device_->WriteAsync(it->second, cb.data.data(), DevBlocksPerFsBlock());
}

// --- ZFS ---------------------------------------------------------------------

void ZfsLikeFs::ChargeCreate() {
  // Dnode allocation plus COW updates up the object tree.
  sim_->clock.Advance(10 * kMicrosecond);
}

void ZfsLikeFs::ChargeWrite(uint64_t len, bool sub_block, bool first_dirty) {
  zil_pending_ += len;
  if (checksums_) {
    // End-to-end checksumming really hashes every byte written.
    sim_->clock.Advance(static_cast<SimDuration>(static_cast<double>(len) / 8.0));
  }
  // Dirty-record creation and merkle-path bookkeeping in the DMU; this is
  // the "complex changes to file system state" of paper section 9.1.
  sim_->clock.Advance(first_dirty ? 6000 : 600);
  if (sub_block) {
    sim_->clock.Advance(1500);  // COW read-modify-write preparation
  }
}

Status ZfsLikeFs::FsyncImpl(Vnode* vn, uint64_t dirty_len) {
  (void)vn;
  (void)dirty_len;
  // The ZIL persists the bytes written since the last commit synchronously,
  // without committing the whole transaction group — but building the log
  // records walks the dirty COW tree ("complex changes to file system
  // state", paper 9.1).
  sim_->clock.Advance(35 * kMicrosecond);
  sim_->clock.Advance(sim_->cost.NvmeWrite(zil_pending_ + 4 * kKiB));
  zil_pending_ = 0;
  return Status::Ok();
}

Result<SimTime> ZfsLikeFs::PersistBlock(Vnode* vn, uint64_t block_idx, const CacheBlock& cb) {
  if (checksums_) {
    // Verify-on-write: the block pointer embeds the checksum.
    volatile uint64_t sink = Fletcher64(cb.data.data(), cb.data.size());
    (void)sink;
    sim_->clock.Advance(static_cast<SimDuration>(static_cast<double>(cb.data.size()) / 3.0));
  }
  // COW: every flush goes to a fresh location; the old block becomes dead
  // space reclaimed by the spacemap (not modeled).
  uint64_t lba = AllocDeviceRun();
  placement_[{vn->ino(), block_idx}] = lba;
  sim_->clock.Advance(1200);  // block-pointer rewrite up the merkle path
  return device_->WriteAsync(lba, cb.data.data(), DevBlocksPerFsBlock());
}

}  // namespace aurora
