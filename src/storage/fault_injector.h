// Seeded, deterministic device fault injection.
//
// Real NVMe devices misbehave in richer ways than dying: commands time out
// (transient EIO), sectors rot and keep failing reads until rewritten
// (latent sector errors), media silently flips bits that only an end-to-end
// checksum catches, and a busy die stretches one IO's tail latency. The
// FaultInjector models all four, per LBA range, driven by a single RNG seed
// so any observed failure schedule replays exactly.
//
// Determinism contract: the injector consumes randomness only in device IO
// submission order — at most one draw per fault category per IO, plus a
// fixed draw pattern per block written (latent draw, flip draw, and a bit
// index only when the flip fires). The same seed plus the same IO sequence
// therefore yields the same fault schedule, byte-for-byte. Rules with a
// zero rate draw nothing, so an attached all-zero profile is behaviorally
// and timing-wise identical to no injector at all.
//
// The injector composes with MemBlockDevice's crash fuse: transient write
// failures are checked before any bytes land (the command never reached the
// media), while latent marks and bit flips apply to bytes that did land.
#ifndef SRC_STORAGE_FAULT_INJECTOR_H_
#define SRC_STORAGE_FAULT_INJECTOR_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/base/rng.h"
#include "src/obs/metrics.h"

namespace aurora {

// One fault policy over an inclusive device-LBA range. The first rule whose
// range overlaps an IO *and* has a non-zero rate for the category decides
// that category; later rules never stack on the same IO.
struct FaultRule {
  uint64_t lba_min = 0;
  uint64_t lba_max = ~0ull;         // inclusive
  double read_error_rate = 0.0;     // P(transient EIO) per read command
  double write_error_rate = 0.0;    // P(transient EIO) per write command
  double bit_flip_rate = 0.0;       // P(silent single-bit flip) per block written
  double latent_sector_rate = 0.0;  // P(block becomes sticky-unreadable) per block written
  double tail_latency_rate = 0.0;   // P(transfer time stretched) per command
  double tail_latency_multiplier = 8.0;
};

struct FaultStats {
  uint64_t read_errors = 0;   // transient read EIOs injected
  uint64_t write_errors = 0;  // transient write EIOs injected
  uint64_t bit_flips = 0;     // blocks silently corrupted
  uint64_t latent_marks = 0;  // blocks marked sticky-unreadable
  uint64_t latent_hits = 0;   // reads that hit a latent sector
  uint64_t tail_delays = 0;   // commands with stretched transfer time
};

class FaultInjector {
 public:
  FaultInjector(uint64_t seed, std::vector<FaultRule> rules)
      : rules_(std::move(rules)), rng_(seed) {}

  void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // Per-command decisions, consumed in submission order. Each returns
  // whether the fault fires and draws at most once.
  bool FailWrite(uint64_t lba, uint32_t nblocks);
  bool FailRead(uint64_t lba, uint32_t nblocks);
  // Transfer-time stretch for this command (1.0 = none). Multiplying by the
  // exact 1.0 returned on the no-fault path cannot perturb the timeline.
  double TailStretch(uint64_t lba, uint32_t nblocks);

  // Sticky latent-sector check for a read command. Consumes no randomness:
  // latency of the *decision* is zero and stickiness is the whole point —
  // the same LBA keeps failing until rewritten.
  bool LatentHit(uint64_t lba, uint32_t nblocks);

  // Media effects for one block whose bytes just landed. A rewrite clears
  // any latent mark or recorded corruption for the LBA (fresh data, fresh
  // cells), then the block may be marked latent and/or have one bit flipped
  // in place.
  void OnBlockWritten(uint64_t lba, uint8_t* block, uint32_t block_size);

  // Test hook: force a latent sector without spending a random draw.
  void AddLatentSector(uint64_t lba) { latent_.insert(lba); }

  // Introspection for tests: device LBAs whose stored bytes currently
  // differ from what the writer intended / that fail reads.
  const std::set<uint64_t>& corrupted_lbas() const { return corrupted_; }
  const std::set<uint64_t>& latent_lbas() const { return latent_; }
  const FaultStats& stats() const { return stats_; }

 private:
  // First rule overlapping [lba, lba+nblocks) with `rate` > 0, or nullptr.
  const FaultRule* Match(uint64_t lba, uint32_t nblocks, double FaultRule::*rate) const;

  std::vector<FaultRule> rules_;
  Rng rng_;
  MetricsRegistry* metrics_ = nullptr;
  std::set<uint64_t> latent_;
  std::set<uint64_t> corrupted_;
  FaultStats stats_;
};

}  // namespace aurora

#endif  // SRC_STORAGE_FAULT_INJECTOR_H_
