#include "src/storage/block_device.h"

#include <algorithm>
#include <cstring>

namespace aurora {

Status BlockDevice::WriteSync(uint64_t lba, const void* data, uint32_t nblocks) {
  auto done = WriteAsync(lba, data, nblocks);
  if (!done.ok()) {
    return done.status();
  }
  clock()->AdvanceTo(*done);
  return Status::Ok();
}

Status BlockDevice::ReadSync(uint64_t lba, void* out, uint32_t nblocks) {
  auto done = ReadAsync(lba, out, nblocks);
  if (!done.ok()) {
    return done.status();
  }
  clock()->AdvanceTo(*done);
  return Status::Ok();
}

MemBlockDevice::MemBlockDevice(SimClock* clock, uint64_t block_count, uint32_t block_size,
                               DeviceProfile profile)
    : clock_(clock), block_count_(block_count), block_size_(block_size), profile_(profile) {}

SimTime MemBlockDevice::CompleteIo(uint32_t queue, uint64_t bytes, SimDuration latency,
                                   double bw, double stretch) {
  SimTime& free_at = queue_free_[queue % queue_free_.size()];
  SimTime start = std::max(clock_->now(), free_at);
  if (metrics_ != nullptr) {
    // Queue occupancy: how long this command waited behind earlier transfers
    // before its submission queue became free. Zero when the queue was idle.
    metrics_->histogram("device.queue_delay").Record(start - clock_->now());
  }
  auto transfer =
      static_cast<SimDuration>(static_cast<double>(bytes) / bw * stretch);
  SimTime queue_done = start + transfer + profile_.command_overhead;
  if (profile_.channel_bytes_per_ns > 0) {
    // Every transfer also occupies the shared media channel. With a single
    // queue the per-queue rate (<= channel rate) always dominates, so this
    // never moves queue_done; with many queues it is the aggregate-bandwidth
    // ceiling that makes lane scaling flatten out.
    channel_busy_ = std::max(channel_busy_, start) +
                    static_cast<SimDuration>(static_cast<double>(bytes) /
                                             profile_.channel_bytes_per_ns * stretch);
    queue_done = std::max(queue_done, channel_busy_);
  }
  free_at = queue_done;
  return queue_done + latency;
}

void MemBlockDevice::SetQueueCount(uint32_t queues) {
  if (queues < 1) {
    queues = 1;
  }
  // Shrinking must not lose pending occupancy: fold the dropped timelines
  // into the surviving last queue.
  if (queues < queue_free_.size()) {
    SimTime tail = queue_free_[queues - 1];
    for (size_t q = queues; q < queue_free_.size(); q++) {
      tail = std::max(tail, queue_free_[q]);
    }
    queue_free_.resize(queues);
    queue_free_[queues - 1] = tail;
  } else {
    queue_free_.resize(queues, clock_->now());
  }
}

Result<SimTime> MemBlockDevice::WriteAsync(uint64_t lba, const void* data, uint32_t nblocks) {
  return WriteAsyncOn(0, lba, data, nblocks);
}

Result<SimTime> MemBlockDevice::WriteAsyncOn(uint32_t queue, uint64_t lba, const void* data,
                                             uint32_t nblocks) {
  if (lba + nblocks > block_count_) {
    return Status::Error(Errc::kOutOfRange, "write past end of device");
  }
  double stretch = 1.0;
  if (injector_ != nullptr) {
    // Transient write failure is checked before any bytes move: the command
    // never reached the media, so neither the crash fuse nor the stored
    // blocks advance. A retry resubmits the identical write.
    if (injector_->FailWrite(lba, nblocks)) {
      return Status::Error(Errc::kIoError, "injected transient write error");
    }
    stretch = injector_->TailStretch(lba, nblocks);
  }
  const auto* src = static_cast<const uint8_t*>(data);
  for (uint32_t i = 0; i < nblocks; i++) {
    if (crashed_) {
      // Power is gone: the write is acknowledged by the dead simulation but
      // never reaches media. Completion time is meaningless; return now.
      stats_.writes++;
      continue;
    }
    if (crash_armed_ && writes_until_crash_ == 0) {
      // This is the torn write: only the first half of the block lands.
      auto& blk = blocks_[lba + i];
      blk.resize(block_size_);
      std::memcpy(blk.data(), src + static_cast<size_t>(i) * block_size_, block_size_ / 2);
      crashed_ = true;
      stats_.writes++;
      continue;
    }
    if (crash_armed_) {
      writes_until_crash_--;
    }
    auto& blk = blocks_[lba + i];
    blk.resize(block_size_);
    std::memcpy(blk.data(), src + static_cast<size_t>(i) * block_size_, block_size_);
    stats_.writes++;
    if (injector_ != nullptr) {
      // Media effects apply only to blocks that fully landed (torn/dropped
      // crash writes are already their own fault).
      injector_->OnBlockWritten(lba + i, blk.data(), block_size_);
    }
  }
  stats_.bytes_written += static_cast<uint64_t>(nblocks) * block_size_;
  if (metrics_ != nullptr) {
    metrics_->counter("device.writes").Add(nblocks);
    metrics_->counter("device.bytes_written").Add(static_cast<uint64_t>(nblocks) * block_size_);
  }
  return CompleteIo(queue, static_cast<uint64_t>(nblocks) * block_size_, profile_.write_latency,
                    profile_.write_bytes_per_ns, stretch);
}

Result<SimTime> MemBlockDevice::ReadAsync(uint64_t lba, void* out, uint32_t nblocks) {
  return ReadAsyncOn(0, lba, out, nblocks);
}

Result<SimTime> MemBlockDevice::ReadAsyncOn(uint32_t queue, uint64_t lba, void* out,
                                            uint32_t nblocks) {
  if (lba + nblocks > block_count_) {
    return Status::Error(Errc::kOutOfRange, "read past end of device");
  }
  double stretch = 1.0;
  if (injector_ != nullptr) {
    if (injector_->FailRead(lba, nblocks)) {
      return Status::Error(Errc::kIoError, "injected transient read error");
    }
    if (injector_->LatentHit(lba, nblocks)) {
      // Sticky: the same range keeps failing until rewritten, so retrying
      // exhausts the budget and surfaces a hard error upstream.
      return Status::Error(Errc::kIoError, "latent sector error");
    }
    stretch = injector_->TailStretch(lba, nblocks);
    // Silently corrupted blocks need no handling here: the flipped bits were
    // stored at write time and are returned below as if they were genuine.
  }
  auto* dst = static_cast<uint8_t*>(out);
  for (uint32_t i = 0; i < nblocks; i++) {
    auto it = blocks_.find(lba + i);
    if (it == blocks_.end()) {
      std::memset(dst + static_cast<size_t>(i) * block_size_, 0, block_size_);
    } else {
      std::memcpy(dst + static_cast<size_t>(i) * block_size_, it->second.data(), block_size_);
    }
    stats_.reads++;
  }
  stats_.bytes_read += static_cast<uint64_t>(nblocks) * block_size_;
  if (metrics_ != nullptr) {
    metrics_->counter("device.reads").Add(nblocks);
    metrics_->counter("device.bytes_read").Add(static_cast<uint64_t>(nblocks) * block_size_);
  }
  return CompleteIo(queue, static_cast<uint64_t>(nblocks) * block_size_, profile_.read_latency,
                    profile_.read_bytes_per_ns, stretch);
}

void MemBlockDevice::InstallFaults(uint64_t seed, const std::vector<FaultRule>& rules) {
  injector_ = std::make_unique<FaultInjector>(seed, rules);
  injector_->set_metrics(metrics_);
}

StripedDevice::StripedDevice(std::vector<std::unique_ptr<BlockDevice>> children,
                             uint32_t stripe_bytes)
    : children_(std::move(children)) {
  block_size_ = children_[0]->block_size();
  stripe_blocks_ = stripe_bytes / block_size_;
  block_count_ = 0;
  for (const auto& c : children_) {
    block_count_ += c->block_count();
  }
}

std::pair<size_t, uint64_t> StripedDevice::MapBlock(uint64_t lba) const {
  uint64_t stripe = lba / stripe_blocks_;
  uint64_t within = lba % stripe_blocks_;
  size_t child = stripe % children_.size();
  uint64_t child_stripe = stripe / children_.size();
  return {child, child_stripe * stripe_blocks_ + within};
}

template <typename Op>
Result<SimTime> StripedDevice::ForEachRun(uint64_t lba, uint32_t nblocks, Op op) {
  if (lba + nblocks > block_count_) {
    return Status::Error(Errc::kOutOfRange, "io past end of striped device");
  }
  SimTime done = clock()->now();
  uint32_t offset = 0;
  while (offset < nblocks) {
    auto [child, child_lba] = MapBlock(lba + offset);
    // Length of the contiguous run on this child: up to the stripe boundary.
    uint64_t in_stripe = (lba + offset) % stripe_blocks_;
    uint32_t run =
        static_cast<uint32_t>(std::min<uint64_t>(nblocks - offset, stripe_blocks_ - in_stripe));
    auto t = op(children_[child].get(), child_lba, offset, run);
    if (!t.ok()) {
      return t.status();
    }
    done = std::max(done, *t);
    offset += run;
  }
  return done;
}

Result<SimTime> StripedDevice::WriteAsync(uint64_t lba, const void* data, uint32_t nblocks) {
  return WriteAsyncOn(0, lba, data, nblocks);
}

Result<SimTime> StripedDevice::ReadAsync(uint64_t lba, void* out, uint32_t nblocks) {
  return ReadAsyncOn(0, lba, out, nblocks);
}

Result<SimTime> StripedDevice::WriteAsyncOn(uint32_t queue, uint64_t lba, const void* data,
                                            uint32_t nblocks) {
  const auto* src = static_cast<const uint8_t*>(data);
  return ForEachRun(lba, nblocks,
                    [&](BlockDevice* dev, uint64_t child_lba, uint32_t offset, uint32_t run) {
                      return dev->WriteAsyncOn(
                          queue, child_lba, src + static_cast<size_t>(offset) * block_size_, run);
                    });
}

Result<SimTime> StripedDevice::ReadAsyncOn(uint32_t queue, uint64_t lba, void* out,
                                           uint32_t nblocks) {
  auto* dst = static_cast<uint8_t*>(out);
  return ForEachRun(lba, nblocks,
                    [&](BlockDevice* dev, uint64_t child_lba, uint32_t offset, uint32_t run) {
                      return dev->ReadAsyncOn(
                          queue, child_lba, dst + static_cast<size_t>(offset) * block_size_, run);
                    });
}

void StripedDevice::SetQueueCount(uint32_t queues) {
  for (auto& c : children_) {
    c->SetQueueCount(queues);
  }
}

void StripedDevice::InstallFaults(uint64_t seed, const std::vector<FaultRule>& rules) {
  // Each child applies the rules in its own LBA space (rule ranges on a
  // striped device are per-child, not logical); decorrelated seeds keep one
  // logical IO stream from drawing identical fates on every device.
  for (size_t i = 0; i < children_.size(); i++) {
    children_[i]->InstallFaults(seed + 0x9e3779b97f4a7c15ull * (i + 1), rules);
  }
}

void StripedDevice::ClearFaults() {
  for (auto& c : children_) {
    c->ClearFaults();
  }
}

DeviceStats StripedDevice::stats() const {
  DeviceStats merged;
  for (const auto& c : children_) {
    DeviceStats s = c->stats();
    merged.reads += s.reads;
    merged.writes += s.writes;
    merged.bytes_read += s.bytes_read;
    merged.bytes_written += s.bytes_written;
  }
  return merged;
}

std::unique_ptr<BlockDevice> MakePaperTestbedStore(SimClock* clock, uint64_t total_bytes,
                                                   uint32_t block_size, MetricsRegistry* metrics) {
  constexpr int kDevices = 4;
  // Per-device streaming bandwidth; striping pipelines the four devices so
  // asynchronous checkpoint flushes reach ~5.4 GB/s (Table 7: 500 MiB in
  // 97.6 ms), while synchronous paths that cannot pipeline (sls_journal) are
  // modeled by CostModel::NvmeWrite at the 2.575 GB/s effective rate the
  // paper's journal numbers imply.
  DeviceProfile per_device;
  per_device.write_bytes_per_ns = 1.35;
  per_device.read_bytes_per_ns = 1.45;
  // The per-queue rates above are what one submitter achieves at its queue
  // depth; the Optane 900P media itself sustains ~4x that, so additional
  // submission queues (flush lanes) scale until this aggregate channel rate
  // binds. Irrelevant to single-queue callers by construction.
  per_device.channel_bytes_per_ns = 4 * 1.35;
  uint64_t per_device_blocks = (total_bytes / kDevices) / block_size;
  std::vector<std::unique_ptr<BlockDevice>> children;
  children.reserve(kDevices);
  for (int i = 0; i < kDevices; i++) {
    auto child = std::make_unique<MemBlockDevice>(clock, per_device_blocks, block_size, per_device);
    child->set_metrics(metrics);
    children.push_back(std::move(child));
  }
  return std::make_unique<StripedDevice>(std::move(children), 64 * kKiB);
}

}  // namespace aurora
