#include "src/storage/fault_injector.h"

namespace aurora {

const FaultRule* FaultInjector::Match(uint64_t lba, uint32_t nblocks,
                                      double FaultRule::*rate) const {
  uint64_t last = lba + (nblocks ? nblocks - 1 : 0);
  for (const FaultRule& rule : rules_) {
    if (rule.*rate > 0.0 && lba <= rule.lba_max && last >= rule.lba_min) {
      return &rule;
    }
  }
  return nullptr;
}

bool FaultInjector::FailWrite(uint64_t lba, uint32_t nblocks) {
  const FaultRule* rule = Match(lba, nblocks, &FaultRule::write_error_rate);
  if (rule == nullptr || !rng_.NextBool(rule->write_error_rate)) {
    return false;
  }
  stats_.write_errors++;
  if (metrics_) {
    metrics_->counter("device.faults.write_errors").Add();
  }
  return true;
}

bool FaultInjector::FailRead(uint64_t lba, uint32_t nblocks) {
  const FaultRule* rule = Match(lba, nblocks, &FaultRule::read_error_rate);
  if (rule == nullptr || !rng_.NextBool(rule->read_error_rate)) {
    return false;
  }
  stats_.read_errors++;
  if (metrics_) {
    metrics_->counter("device.faults.read_errors").Add();
  }
  return true;
}

double FaultInjector::TailStretch(uint64_t lba, uint32_t nblocks) {
  const FaultRule* rule = Match(lba, nblocks, &FaultRule::tail_latency_rate);
  if (rule == nullptr || !rng_.NextBool(rule->tail_latency_rate)) {
    return 1.0;
  }
  stats_.tail_delays++;
  if (metrics_) {
    metrics_->counter("device.faults.tail_delays").Add();
  }
  return rule->tail_latency_multiplier;
}

bool FaultInjector::LatentHit(uint64_t lba, uint32_t nblocks) {
  if (latent_.empty()) {
    return false;
  }
  auto it = latent_.lower_bound(lba);
  if (it == latent_.end() || *it >= lba + nblocks) {
    return false;
  }
  stats_.latent_hits++;
  if (metrics_) {
    metrics_->counter("device.faults.latent_hits").Add();
  }
  return true;
}

void FaultInjector::OnBlockWritten(uint64_t lba, uint8_t* block, uint32_t block_size) {
  latent_.erase(lba);
  corrupted_.erase(lba);
  const FaultRule* latent_rule = Match(lba, 1, &FaultRule::latent_sector_rate);
  if (latent_rule != nullptr && rng_.NextBool(latent_rule->latent_sector_rate)) {
    latent_.insert(lba);
    stats_.latent_marks++;
    if (metrics_) {
      metrics_->counter("device.faults.latent_marks").Add();
    }
  }
  const FaultRule* flip_rule = Match(lba, 1, &FaultRule::bit_flip_rate);
  if (flip_rule != nullptr && rng_.NextBool(flip_rule->bit_flip_rate)) {
    uint64_t bit = rng_.Below(static_cast<uint64_t>(block_size) * 8);
    block[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    corrupted_.insert(lba);
    stats_.bit_flips++;
    if (metrics_) {
      metrics_->counter("device.faults.bit_flips").Add();
    }
  }
}

}  // namespace aurora
