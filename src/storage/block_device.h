// Simulated block devices.
//
// The paper's testbed stripes four Intel Optane 900P NVMe devices at 64 KiB.
// We model each device as a sparse in-memory block array plus a timeline:
// an I/O submitted at simulated time T occupies the device for
// bytes/bandwidth and completes after an additional fixed latency. Multiple
// outstanding I/Os pipeline, which is how the checkpoint flusher overlaps
// writes with application execution.
//
// Crash injection: tests arm a write-count fuse; once it blows, the fused
// write is torn (first half applied) and all later writes are dropped. This
// models power loss mid-flush for recovery testing.
#ifndef SRC_STORAGE_BLOCK_DEVICE_H_
#define SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/cost_model.h"
#include "src/base/result.h"
#include "src/base/sim_clock.h"
#include "src/base/units.h"
#include "src/obs/metrics.h"
#include "src/storage/fault_injector.h"

namespace aurora {

struct DeviceProfile {
  SimDuration read_latency = 10 * kMicrosecond;
  SimDuration write_latency = 26 * kMicrosecond;
  double read_bytes_per_ns = 2.9;
  double write_bytes_per_ns = 2.575;
  // Channel occupancy per command beyond the transfer itself: small random
  // I/O cannot reach streaming bandwidth (4 KiB writes top out at ~500k
  // IOPS per device).
  SimDuration command_overhead = 2 * kMicrosecond;
  // Aggregate media/PCIe bandwidth shared by all submission queues of one
  // device. The per-queue rates above are what a single submitter observes
  // (queue-depth limited); extra queues scale throughput until this channel
  // saturates. Zero means uncapped (single-queue callers never hit it).
  double channel_bytes_per_ns = 0;
};

struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint32_t block_size() const = 0;
  virtual uint64_t block_count() const = 0;

  // Submits an I/O at the current simulated time. Data moves immediately
  // (host memory); the returned SimTime is when the device reports
  // completion. Callers that need durability wait for it (WriteSync) or
  // collect completion times and wait for the max (async checkpoint flush).
  [[nodiscard]] virtual Result<SimTime> WriteAsync(uint64_t lba, const void* data,
                                                   uint32_t nblocks) = 0;
  [[nodiscard]] virtual Result<SimTime> ReadAsync(uint64_t lba, void* out, uint32_t nblocks) = 0;

  // Multi-queue submission: like Write/ReadAsync but on submission queue
  // `queue` (modulo the configured queue count). Queues have independent
  // timelines, so I/Os on different queues pipeline; the plain entry points
  // are queue 0. Devices that do not model queues ignore the hint.
  [[nodiscard]] virtual Result<SimTime> WriteAsyncOn(uint32_t queue, uint64_t lba, const void* data,
                                                     uint32_t nblocks) {
    (void)queue;
    return WriteAsync(lba, data, nblocks);
  }
  [[nodiscard]] virtual Result<SimTime> ReadAsyncOn(uint32_t queue, uint64_t lba, void* out,
                                                    uint32_t nblocks) {
    (void)queue;
    return ReadAsync(lba, out, nblocks);
  }
  // Resizes the submission-queue set (>= 1). Existing queue timelines are
  // preserved where possible; a no-op on devices without queue modeling.
  virtual void SetQueueCount(uint32_t queues) { (void)queues; }

  [[nodiscard]] Status WriteSync(uint64_t lba, const void* data, uint32_t nblocks);
  [[nodiscard]] Status ReadSync(uint64_t lba, void* out, uint32_t nblocks);

  // Attaches a deterministic fault-injection profile (see fault_injector.h),
  // replacing any previous one. Striped devices fan the rules out to every
  // child with per-child decorrelated seeds. Devices without fault modeling
  // ignore the call.
  virtual void InstallFaults(uint64_t seed, const std::vector<FaultRule>& rules) {
    (void)seed;
    (void)rules;
  }
  // Removes any installed injector, including its sticky latent marks
  // (models swapping in healthy media).
  virtual void ClearFaults() {}
  // The device's own injector, or nullptr when none is installed (composite
  // devices expose their children's injectors instead).
  virtual FaultInjector* fault_injector() { return nullptr; }

  virtual SimClock* clock() = 0;
  // Snapshot of the device counters. Returned by value: striped devices
  // merge their children on demand, and a reference would be silently
  // invalidated by the next call while callers hold it across IOs.
  virtual DeviceStats stats() const = 0;
};

// Sparse in-memory device with the timeline model described above.
class MemBlockDevice : public BlockDevice {
 public:
  MemBlockDevice(SimClock* clock, uint64_t block_count, uint32_t block_size = kPageSize,
                 DeviceProfile profile = DeviceProfile());

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }

  [[nodiscard]] Result<SimTime> WriteAsync(uint64_t lba, const void* data,
                                           uint32_t nblocks) override;
  [[nodiscard]] Result<SimTime> ReadAsync(uint64_t lba, void* out, uint32_t nblocks) override;
  [[nodiscard]] Result<SimTime> WriteAsyncOn(uint32_t queue, uint64_t lba, const void* data,
                                             uint32_t nblocks) override;
  [[nodiscard]] Result<SimTime> ReadAsyncOn(uint32_t queue, uint64_t lba, void* out,
                                            uint32_t nblocks) override;
  void SetQueueCount(uint32_t queues) override;

  SimClock* clock() override { return clock_; }
  DeviceStats stats() const override { return stats_; }

  void InstallFaults(uint64_t seed, const std::vector<FaultRule>& rules) override;
  void ClearFaults() override { injector_.reset(); }
  FaultInjector* fault_injector() override { return injector_.get(); }

  // Mirrors per-IO counters and channel-queue delay histograms into the
  // machine-wide registry ("device.*" namespace).
  void set_metrics(MetricsRegistry* metrics) {
    metrics_ = metrics;
    if (injector_) {
      injector_->set_metrics(metrics);
    }
  }

  // Crash injection: after `n` further block writes succeed, the next write
  // is torn (only its first half is applied) and all subsequent writes are
  // silently dropped, as if power was lost. DisarmCrash() restores service
  // (models reboot with the same media).
  void CrashAfterWrites(uint64_t n) {
    crash_armed_ = true;
    writes_until_crash_ = n;
    crashed_ = false;
  }
  void DisarmCrash() {
    crash_armed_ = false;
    crashed_ = false;
  }
  bool crashed() const { return crashed_; }

  // Approximate host memory used by written blocks (for tests).
  size_t ResidentBlocks() const { return blocks_.size(); }

 private:
  // `stretch` multiplies the transfer time (tail-latency injection); the
  // exact 1.0 of the no-fault path leaves the timeline bit-identical.
  SimTime CompleteIo(uint32_t queue, uint64_t bytes, SimDuration latency, double bw,
                     double stretch = 1.0);

  SimClock* clock_;
  uint64_t block_count_;
  uint32_t block_size_;
  DeviceProfile profile_;
  DeviceStats stats_;
  MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<FaultInjector> injector_;
  // Per-submission-queue timelines: when each queue is free for its next
  // transfer. One queue by default, which is the historical serial model.
  std::vector<SimTime> queue_free_{0};
  // Shared media/PCIe occupancy across queues; only binds when the profile
  // sets channel_bytes_per_ns and more than one queue is active.
  SimTime channel_busy_ = 0;

  bool crash_armed_ = false;
  bool crashed_ = false;
  uint64_t writes_until_crash_ = 0;

  std::unordered_map<uint64_t, std::vector<uint8_t>> blocks_;
};

// RAID-0 over identical children with a fixed stripe unit (paper: 64 KiB).
// Bandwidth aggregates because children timelines advance independently.
class StripedDevice : public BlockDevice {
 public:
  StripedDevice(std::vector<std::unique_ptr<BlockDevice>> children, uint32_t stripe_bytes);

  uint32_t block_size() const override { return block_size_; }
  uint64_t block_count() const override { return block_count_; }

  [[nodiscard]] Result<SimTime> WriteAsync(uint64_t lba, const void* data,
                                           uint32_t nblocks) override;
  [[nodiscard]] Result<SimTime> ReadAsync(uint64_t lba, void* out, uint32_t nblocks) override;
  [[nodiscard]] Result<SimTime> WriteAsyncOn(uint32_t queue, uint64_t lba, const void* data,
                                             uint32_t nblocks) override;
  [[nodiscard]] Result<SimTime> ReadAsyncOn(uint32_t queue, uint64_t lba, void* out,
                                            uint32_t nblocks) override;
  void SetQueueCount(uint32_t queues) override;

  SimClock* clock() override { return children_[0]->clock(); }
  DeviceStats stats() const override;

  void InstallFaults(uint64_t seed, const std::vector<FaultRule>& rules) override;
  void ClearFaults() override;

  // Children, for tests that inspect per-child injectors.
  size_t child_count() const { return children_.size(); }
  BlockDevice* child(size_t i) { return children_[i].get(); }

 private:
  // Maps a logical block to (child index, child lba).
  std::pair<size_t, uint64_t> MapBlock(uint64_t lba) const;

  template <typename Op>
  [[nodiscard]] Result<SimTime> ForEachRun(uint64_t lba, uint32_t nblocks, Op op);

  std::vector<std::unique_ptr<BlockDevice>> children_;
  uint32_t stripe_blocks_;
  uint32_t block_size_;
  uint64_t block_count_;
};

// Builds the paper's storage configuration: four NVMe devices striped at
// 64 KiB, with total capacity `total_bytes`. With `metrics` non-null, every
// child device reports into it ("device.*").
std::unique_ptr<BlockDevice> MakePaperTestbedStore(SimClock* clock, uint64_t total_bytes,
                                                   uint32_t block_size = kPageSize,
                                                   MetricsRegistry* metrics = nullptr);

}  // namespace aurora

#endif  // SRC_STORAGE_BLOCK_DEVICE_H_
