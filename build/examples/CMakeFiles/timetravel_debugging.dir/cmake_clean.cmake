file(REMOVE_RECURSE
  "CMakeFiles/timetravel_debugging.dir/timetravel_debugging.cpp.o"
  "CMakeFiles/timetravel_debugging.dir/timetravel_debugging.cpp.o.d"
  "timetravel_debugging"
  "timetravel_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timetravel_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
