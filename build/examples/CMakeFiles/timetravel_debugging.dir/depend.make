# Empty dependencies file for timetravel_debugging.
# This may be replaced when dependencies are built.
