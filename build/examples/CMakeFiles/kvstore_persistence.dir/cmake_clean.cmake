file(REMOVE_RECURSE
  "CMakeFiles/kvstore_persistence.dir/kvstore_persistence.cpp.o"
  "CMakeFiles/kvstore_persistence.dir/kvstore_persistence.cpp.o.d"
  "kvstore_persistence"
  "kvstore_persistence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_persistence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
