file(REMOVE_RECURSE
  "CMakeFiles/serverless_warmstart.dir/serverless_warmstart.cpp.o"
  "CMakeFiles/serverless_warmstart.dir/serverless_warmstart.cpp.o.d"
  "serverless_warmstart"
  "serverless_warmstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_warmstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
