# Empty compiler generated dependencies file for serverless_warmstart.
# This may be replaced when dependencies are built.
