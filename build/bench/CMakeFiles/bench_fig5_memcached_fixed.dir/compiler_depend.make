# Empty compiler generated dependencies file for bench_fig5_memcached_fixed.
# This may be replaced when dependencies are built.
