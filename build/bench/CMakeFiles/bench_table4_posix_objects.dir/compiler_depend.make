# Empty compiler generated dependencies file for bench_table4_posix_objects.
# This may be replaced when dependencies are built.
