file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_posix_objects.dir/bench_table4_posix_objects.cc.o"
  "CMakeFiles/bench_table4_posix_objects.dir/bench_table4_posix_objects.cc.o.d"
  "bench_table4_posix_objects"
  "bench_table4_posix_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_posix_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
