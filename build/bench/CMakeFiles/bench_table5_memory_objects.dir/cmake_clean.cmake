file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_memory_objects.dir/bench_table5_memory_objects.cc.o"
  "CMakeFiles/bench_table5_memory_objects.dir/bench_table5_memory_objects.cc.o.d"
  "bench_table5_memory_objects"
  "bench_table5_memory_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_memory_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
