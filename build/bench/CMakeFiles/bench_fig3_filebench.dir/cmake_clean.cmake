file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_filebench.dir/bench_fig3_filebench.cc.o"
  "CMakeFiles/bench_fig3_filebench.dir/bench_fig3_filebench.cc.o.d"
  "bench_fig3_filebench"
  "bench_fig3_filebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_filebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
