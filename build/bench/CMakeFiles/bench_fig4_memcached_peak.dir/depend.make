# Empty dependencies file for bench_fig4_memcached_peak.
# This may be replaced when dependencies are built.
