# Empty dependencies file for bench_fig6_rocksdb.
# This may be replaced when dependencies are built.
