# Empty dependencies file for bench_table7_redis.
# This may be replaced when dependencies are built.
