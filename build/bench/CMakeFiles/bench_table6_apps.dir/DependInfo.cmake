
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table6_apps.cc" "bench/CMakeFiles/bench_table6_apps.dir/bench_table6_apps.cc.o" "gcc" "bench/CMakeFiles/bench_table6_apps.dir/bench_table6_apps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/aurora_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aurora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/aurora_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/objstore/CMakeFiles/aurora_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/aurora_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/aurora_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aurora_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aurora_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/aurora_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
