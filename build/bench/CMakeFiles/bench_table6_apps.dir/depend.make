# Empty dependencies file for bench_table6_apps.
# This may be replaced when dependencies are built.
