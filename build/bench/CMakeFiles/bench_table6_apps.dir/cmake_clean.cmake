file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_apps.dir/bench_table6_apps.cc.o"
  "CMakeFiles/bench_table6_apps.dir/bench_table6_apps.cc.o.d"
  "bench_table6_apps"
  "bench_table6_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
