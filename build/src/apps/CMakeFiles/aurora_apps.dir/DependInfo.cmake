
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/aurora_kv.cc" "src/apps/CMakeFiles/aurora_apps.dir/aurora_kv.cc.o" "gcc" "src/apps/CMakeFiles/aurora_apps.dir/aurora_kv.cc.o.d"
  "/root/repo/src/apps/kv_server.cc" "src/apps/CMakeFiles/aurora_apps.dir/kv_server.cc.o" "gcc" "src/apps/CMakeFiles/aurora_apps.dir/kv_server.cc.o.d"
  "/root/repo/src/apps/lsm_db.cc" "src/apps/CMakeFiles/aurora_apps.dir/lsm_db.cc.o" "gcc" "src/apps/CMakeFiles/aurora_apps.dir/lsm_db.cc.o.d"
  "/root/repo/src/apps/memtable.cc" "src/apps/CMakeFiles/aurora_apps.dir/memtable.cc.o" "gcc" "src/apps/CMakeFiles/aurora_apps.dir/memtable.cc.o.d"
  "/root/repo/src/apps/redis_like.cc" "src/apps/CMakeFiles/aurora_apps.dir/redis_like.cc.o" "gcc" "src/apps/CMakeFiles/aurora_apps.dir/redis_like.cc.o.d"
  "/root/repo/src/apps/sstable.cc" "src/apps/CMakeFiles/aurora_apps.dir/sstable.cc.o" "gcc" "src/apps/CMakeFiles/aurora_apps.dir/sstable.cc.o.d"
  "/root/repo/src/apps/workloads.cc" "src/apps/CMakeFiles/aurora_apps.dir/workloads.cc.o" "gcc" "src/apps/CMakeFiles/aurora_apps.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aurora_base.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/aurora_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/aurora_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/aurora_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aurora_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/objstore/CMakeFiles/aurora_objstore.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/aurora_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
