file(REMOVE_RECURSE
  "CMakeFiles/aurora_apps.dir/aurora_kv.cc.o"
  "CMakeFiles/aurora_apps.dir/aurora_kv.cc.o.d"
  "CMakeFiles/aurora_apps.dir/kv_server.cc.o"
  "CMakeFiles/aurora_apps.dir/kv_server.cc.o.d"
  "CMakeFiles/aurora_apps.dir/lsm_db.cc.o"
  "CMakeFiles/aurora_apps.dir/lsm_db.cc.o.d"
  "CMakeFiles/aurora_apps.dir/memtable.cc.o"
  "CMakeFiles/aurora_apps.dir/memtable.cc.o.d"
  "CMakeFiles/aurora_apps.dir/redis_like.cc.o"
  "CMakeFiles/aurora_apps.dir/redis_like.cc.o.d"
  "CMakeFiles/aurora_apps.dir/sstable.cc.o"
  "CMakeFiles/aurora_apps.dir/sstable.cc.o.d"
  "CMakeFiles/aurora_apps.dir/workloads.cc.o"
  "CMakeFiles/aurora_apps.dir/workloads.cc.o.d"
  "libaurora_apps.a"
  "libaurora_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
