# Empty dependencies file for aurora_apps.
# This may be replaced when dependencies are built.
