file(REMOVE_RECURSE
  "libaurora_apps.a"
)
