file(REMOVE_RECURSE
  "CMakeFiles/aurora_baselines.dir/criu_like.cc.o"
  "CMakeFiles/aurora_baselines.dir/criu_like.cc.o.d"
  "libaurora_baselines.a"
  "libaurora_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
