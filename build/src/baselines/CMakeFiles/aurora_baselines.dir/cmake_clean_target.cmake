file(REMOVE_RECURSE
  "libaurora_baselines.a"
)
