# Empty compiler generated dependencies file for aurora_baselines.
# This may be replaced when dependencies are built.
