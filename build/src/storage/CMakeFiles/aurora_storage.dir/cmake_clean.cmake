file(REMOVE_RECURSE
  "CMakeFiles/aurora_storage.dir/block_device.cc.o"
  "CMakeFiles/aurora_storage.dir/block_device.cc.o.d"
  "libaurora_storage.a"
  "libaurora_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
