file(REMOVE_RECURSE
  "CMakeFiles/aurora_core.dir/cli.cc.o"
  "CMakeFiles/aurora_core.dir/cli.cc.o.d"
  "CMakeFiles/aurora_core.dir/coredump.cc.o"
  "CMakeFiles/aurora_core.dir/coredump.cc.o.d"
  "CMakeFiles/aurora_core.dir/serialize.cc.o"
  "CMakeFiles/aurora_core.dir/serialize.cc.o.d"
  "CMakeFiles/aurora_core.dir/sls.cc.o"
  "CMakeFiles/aurora_core.dir/sls.cc.o.d"
  "libaurora_core.a"
  "libaurora_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
