file(REMOVE_RECURSE
  "CMakeFiles/aurora_base.dir/checksum.cc.o"
  "CMakeFiles/aurora_base.dir/checksum.cc.o.d"
  "CMakeFiles/aurora_base.dir/histogram.cc.o"
  "CMakeFiles/aurora_base.dir/histogram.cc.o.d"
  "CMakeFiles/aurora_base.dir/result.cc.o"
  "CMakeFiles/aurora_base.dir/result.cc.o.d"
  "CMakeFiles/aurora_base.dir/rng.cc.o"
  "CMakeFiles/aurora_base.dir/rng.cc.o.d"
  "libaurora_base.a"
  "libaurora_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
