# Empty compiler generated dependencies file for aurora_base.
# This may be replaced when dependencies are built.
