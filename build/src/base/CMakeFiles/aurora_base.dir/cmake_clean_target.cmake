file(REMOVE_RECURSE
  "libaurora_base.a"
)
