# Empty compiler generated dependencies file for aurora_objstore.
# This may be replaced when dependencies are built.
