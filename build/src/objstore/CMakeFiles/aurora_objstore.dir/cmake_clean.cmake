file(REMOVE_RECURSE
  "CMakeFiles/aurora_objstore.dir/object_store.cc.o"
  "CMakeFiles/aurora_objstore.dir/object_store.cc.o.d"
  "libaurora_objstore.a"
  "libaurora_objstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_objstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
