file(REMOVE_RECURSE
  "libaurora_objstore.a"
)
