file(REMOVE_RECURSE
  "libaurora_fs.a"
)
