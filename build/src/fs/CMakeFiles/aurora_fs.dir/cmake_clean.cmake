file(REMOVE_RECURSE
  "CMakeFiles/aurora_fs.dir/aurora_fs.cc.o"
  "CMakeFiles/aurora_fs.dir/aurora_fs.cc.o.d"
  "CMakeFiles/aurora_fs.dir/baseline_fs.cc.o"
  "CMakeFiles/aurora_fs.dir/baseline_fs.cc.o.d"
  "CMakeFiles/aurora_fs.dir/buffered_fs.cc.o"
  "CMakeFiles/aurora_fs.dir/buffered_fs.cc.o.d"
  "libaurora_fs.a"
  "libaurora_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
