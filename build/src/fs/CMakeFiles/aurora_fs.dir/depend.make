# Empty dependencies file for aurora_fs.
# This may be replaced when dependencies are built.
