file(REMOVE_RECURSE
  "CMakeFiles/aurora_posix.dir/file.cc.o"
  "CMakeFiles/aurora_posix.dir/file.cc.o.d"
  "CMakeFiles/aurora_posix.dir/ipc.cc.o"
  "CMakeFiles/aurora_posix.dir/ipc.cc.o.d"
  "CMakeFiles/aurora_posix.dir/kernel.cc.o"
  "CMakeFiles/aurora_posix.dir/kernel.cc.o.d"
  "CMakeFiles/aurora_posix.dir/process.cc.o"
  "CMakeFiles/aurora_posix.dir/process.cc.o.d"
  "CMakeFiles/aurora_posix.dir/socket.cc.o"
  "CMakeFiles/aurora_posix.dir/socket.cc.o.d"
  "CMakeFiles/aurora_posix.dir/vnode.cc.o"
  "CMakeFiles/aurora_posix.dir/vnode.cc.o.d"
  "libaurora_posix.a"
  "libaurora_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
