# Empty compiler generated dependencies file for aurora_posix.
# This may be replaced when dependencies are built.
