
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/posix/file.cc" "src/posix/CMakeFiles/aurora_posix.dir/file.cc.o" "gcc" "src/posix/CMakeFiles/aurora_posix.dir/file.cc.o.d"
  "/root/repo/src/posix/ipc.cc" "src/posix/CMakeFiles/aurora_posix.dir/ipc.cc.o" "gcc" "src/posix/CMakeFiles/aurora_posix.dir/ipc.cc.o.d"
  "/root/repo/src/posix/kernel.cc" "src/posix/CMakeFiles/aurora_posix.dir/kernel.cc.o" "gcc" "src/posix/CMakeFiles/aurora_posix.dir/kernel.cc.o.d"
  "/root/repo/src/posix/process.cc" "src/posix/CMakeFiles/aurora_posix.dir/process.cc.o" "gcc" "src/posix/CMakeFiles/aurora_posix.dir/process.cc.o.d"
  "/root/repo/src/posix/socket.cc" "src/posix/CMakeFiles/aurora_posix.dir/socket.cc.o" "gcc" "src/posix/CMakeFiles/aurora_posix.dir/socket.cc.o.d"
  "/root/repo/src/posix/vnode.cc" "src/posix/CMakeFiles/aurora_posix.dir/vnode.cc.o" "gcc" "src/posix/CMakeFiles/aurora_posix.dir/vnode.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aurora_base.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/aurora_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
