file(REMOVE_RECURSE
  "libaurora_posix.a"
)
