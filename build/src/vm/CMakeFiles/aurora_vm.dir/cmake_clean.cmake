file(REMOVE_RECURSE
  "CMakeFiles/aurora_vm.dir/pmap.cc.o"
  "CMakeFiles/aurora_vm.dir/pmap.cc.o.d"
  "CMakeFiles/aurora_vm.dir/system_shadow.cc.o"
  "CMakeFiles/aurora_vm.dir/system_shadow.cc.o.d"
  "CMakeFiles/aurora_vm.dir/vm_map.cc.o"
  "CMakeFiles/aurora_vm.dir/vm_map.cc.o.d"
  "CMakeFiles/aurora_vm.dir/vm_object.cc.o"
  "CMakeFiles/aurora_vm.dir/vm_object.cc.o.d"
  "libaurora_vm.a"
  "libaurora_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aurora_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
