
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/pmap.cc" "src/vm/CMakeFiles/aurora_vm.dir/pmap.cc.o" "gcc" "src/vm/CMakeFiles/aurora_vm.dir/pmap.cc.o.d"
  "/root/repo/src/vm/system_shadow.cc" "src/vm/CMakeFiles/aurora_vm.dir/system_shadow.cc.o" "gcc" "src/vm/CMakeFiles/aurora_vm.dir/system_shadow.cc.o.d"
  "/root/repo/src/vm/vm_map.cc" "src/vm/CMakeFiles/aurora_vm.dir/vm_map.cc.o" "gcc" "src/vm/CMakeFiles/aurora_vm.dir/vm_map.cc.o.d"
  "/root/repo/src/vm/vm_object.cc" "src/vm/CMakeFiles/aurora_vm.dir/vm_object.cc.o" "gcc" "src/vm/CMakeFiles/aurora_vm.dir/vm_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/aurora_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
