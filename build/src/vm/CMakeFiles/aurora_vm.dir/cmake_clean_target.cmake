file(REMOVE_RECURSE
  "libaurora_vm.a"
)
