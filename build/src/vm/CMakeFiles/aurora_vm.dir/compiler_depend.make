# Empty compiler generated dependencies file for aurora_vm.
# This may be replaced when dependencies are built.
