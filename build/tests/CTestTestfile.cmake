# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/posix_test[1]_include.cmake")
include("/root/repo/build/tests/objstore_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/core_more_test[1]_include.cmake")
include("/root/repo/build/tests/objstore_model_test[1]_include.cmake")
include("/root/repo/build/tests/syscall_test[1]_include.cmake")
include("/root/repo/build/tests/api_test[1]_include.cmake")
include("/root/repo/build/tests/vm_more_test[1]_include.cmake")
