file(REMOVE_RECURSE
  "CMakeFiles/vm_more_test.dir/vm_more_test.cc.o"
  "CMakeFiles/vm_more_test.dir/vm_more_test.cc.o.d"
  "vm_more_test"
  "vm_more_test.pdb"
  "vm_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
