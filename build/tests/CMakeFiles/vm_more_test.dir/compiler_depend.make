# Empty compiler generated dependencies file for vm_more_test.
# This may be replaced when dependencies are built.
