file(REMOVE_RECURSE
  "CMakeFiles/objstore_model_test.dir/objstore_model_test.cc.o"
  "CMakeFiles/objstore_model_test.dir/objstore_model_test.cc.o.d"
  "objstore_model_test"
  "objstore_model_test.pdb"
  "objstore_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/objstore_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
