file(REMOVE_RECURSE
  "CMakeFiles/core_more_test.dir/core_more_test.cc.o"
  "CMakeFiles/core_more_test.dir/core_more_test.cc.o.d"
  "core_more_test"
  "core_more_test.pdb"
  "core_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
