# Empty dependencies file for core_more_test.
# This may be replaced when dependencies are built.
