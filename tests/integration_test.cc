// End-to-end integration and fault-injection tests for the whole SLS stack:
// kernel + VM + object store + file system + orchestrator.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/serialize.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

// A machine whose storage is a single raw MemBlockDevice so crash injection
// can be armed precisely.
struct CrashMachine {
  explicit CrashMachine(uint64_t bytes = 512 * kMiB) {
    device = std::make_unique<MemBlockDevice>(&sim.clock, bytes / kPageSize);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }
  void Reboot() {
    device->DisarmCrash();
    store = *ObjectStore::Open(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }
  SimContext sim;
  std::unique_ptr<MemBlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

// Crash-at-every-point property: arm the device fuse at write N during the
// SECOND checkpoint; after "reboot", restore must produce either checkpoint
// 1's or checkpoint 2's memory image — never a mix, never a failure.
class CheckpointCrashTest : public ::testing::TestWithParam<int> {};

TEST_P(CheckpointCrashTest, RestoreIsAlwaysAtomic) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(1 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 1 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  std::vector<uint8_t> v1(1 * kMiB, 0x11);
  ASSERT_TRUE(proc->vm().Write(addr, v1.data(), v1.size()).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group, "one").ok());
  ASSERT_TRUE(m.sls->Barrier(group).ok());

  std::vector<uint8_t> v2(1 * kMiB, 0x22);
  ASSERT_TRUE(proc->vm().Write(addr, v2.data(), v2.size()).ok());
  m.device->CrashAfterWrites(static_cast<uint64_t>(GetParam()) * 7);
  (void)m.sls->Checkpoint(group, "two");  // may tear anywhere

  m.Reboot();
  auto restored = m.sls->Restore("app");
  ASSERT_TRUE(restored.ok()) << "crash point " << GetParam();
  std::vector<uint8_t> got(1 * kMiB);
  ASSERT_TRUE(restored->group->processes[0]->vm().Read(addr, got.data(), got.size()).ok());
  bool is_v1 = got == v1;
  bool is_v2 = got == v2;
  EXPECT_TRUE(is_v1 || is_v2) << "mixed/torn restore at crash point " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, CheckpointCrashTest, ::testing::Range(0, 30));

// Manifest corruption fuzz: flipping any byte of a manifest must never crash
// the restorer — it either fails cleanly or (for don't-care bytes) restores.
class ManifestFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ManifestFuzzTest, CorruptManifestFailsCleanly) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("fuzz");
  auto obj = VmObject::CreateAnonymous(64 * kKiB);
  (void)proc->vm().Map(0x400000, 64 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  (void)m.kernel->MakePipe(*proc);
  int kq = *m.kernel->MakeKqueue(*proc);
  (void)kq;
  ConsistencyGroup* group = *m.sls->CreateGroup("fuzz");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  auto ensure = [&m](VmObject* o) {
    if (o->sls_oid() == 0) {
      o->set_sls_oid((*m.store->CreateObject(ObjType::kMemory, o->size())).value);
    }
    return Oid{o->sls_oid()};
  };
  SerializeStats stats;
  auto manifest = *SerializeOsState(&m.sim, *group, 1, kInvalidOid, ensure, &stats);

  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 1);
  std::vector<uint8_t> corrupt = manifest;
  for (int flips = 0; flips <= GetParam() % 4; flips++) {
    corrupt[rng.Below(corrupt.size())] ^= static_cast<uint8_t>(1 + rng.Below(255));
  }
  CrashMachine target;
  auto resolve = [](Oid, uint64_t size) -> Result<ResolvedMemory> {
    return ResolvedMemory{VmObject::CreateAnonymous(size ? size : kPageSize), false};
  };
  // Must not crash; outcome may be error or success.
  auto result = RestoreOsState(&target.sim, target.kernel.get(), target.fs.get(), corrupt,
                               resolve);
  (void)result;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(ByteFlips, ManifestFuzzTest, ::testing::Range(0, 40));

// Truncation fuzz: every prefix of a manifest must fail cleanly.
TEST(ManifestFuzz, AllTruncationsFailCleanly) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("trunc");
  (void)m.kernel->MakePipe(*proc);
  ConsistencyGroup* group = *m.sls->CreateGroup("trunc");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  auto ensure = [&m](VmObject* o) {
    if (o->sls_oid() == 0) {
      o->set_sls_oid((*m.store->CreateObject(ObjType::kMemory, o->size())).value);
    }
    return Oid{o->sls_oid()};
  };
  auto manifest = *SerializeOsState(&m.sim, *group, 1, kInvalidOid, ensure, nullptr);
  auto resolve = [](Oid, uint64_t size) -> Result<ResolvedMemory> {
    return ResolvedMemory{VmObject::CreateAnonymous(size ? size : kPageSize), false};
  };
  for (size_t cut = 0; cut < manifest.size(); cut += 7) {
    CrashMachine target;
    std::vector<uint8_t> prefix(manifest.begin(), manifest.begin() + static_cast<long>(cut));
    auto result =
        RestoreOsState(&target.sim, target.kernel.get(), target.fs.get(), prefix, resolve);
    EXPECT_FALSE(result.ok()) << "truncation at " << cut << " restored successfully?!";
  }
}

// --- Multi-group isolation --------------------------------------------------------

TEST(MultiGroup, GroupsCheckpointAndRestoreIndependently) {
  CrashMachine m;
  auto make_app = [&](const std::string& name, uint64_t fill) {
    Process* proc = *m.kernel->CreateProcess(name);
    auto obj = VmObject::CreateAnonymous(256 * kKiB);
    uint64_t addr =
        *proc->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, obj, 0, false);
    (void)proc->vm().Write(addr, &fill, sizeof(fill));
    ConsistencyGroup* group = *m.sls->CreateGroup(name);
    (void)m.sls->Attach(group, proc);
    return std::make_pair(group, addr);
  };
  auto [ga, addr_a] = make_app("app-a", 0xaaaa);
  auto [gb, addr_b] = make_app("app-b", 0xbbbb);
  ASSERT_TRUE(m.sls->Checkpoint(ga).ok());
  ASSERT_TRUE(m.sls->Checkpoint(gb).ok());

  // Mutate both; restore only A. B must keep running untouched.
  uint64_t junk = 0xdead;
  (void)ga->processes[0]->vm().Write(addr_a, &junk, sizeof(junk));
  (void)gb->processes[0]->vm().Write(addr_b, &junk, sizeof(junk));
  auto restored = *m.sls->Restore("app-a");
  uint64_t got = 0;
  ASSERT_TRUE(restored.group->processes[0]->vm().Read(addr_a, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xaaaau);
  ASSERT_TRUE(gb->processes[0]->vm().Read(addr_b, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xdeadu) << "restoring A must not touch B";
}

// --- Memory overcommitment (swap integration) --------------------------------------

TEST(SwapIntegration, EvictedPagesStreamBackFromStore) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("bigapp");
  auto obj = VmObject::CreateAnonymous(8 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 8 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("bigapp");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  Rng rng(77);
  std::vector<uint8_t> model(8 * kMiB, 0);
  for (int i = 0; i < 4000; i++) {
    uint64_t off = rng.Below(8 * kMiB - 8);
    uint64_t v = rng.Next();
    ASSERT_TRUE(proc->vm().Write(addr + off, &v, sizeof(v)).ok());
    std::memcpy(model.data() + off, &v, sizeof(v));
  }
  // Two checkpoints so the data collapses into the persisted base.
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());

  uint64_t resident_before = proc->vm().ResidentPages();
  auto evicted = m.sls->EvictPages(group, 100000);
  ASSERT_TRUE(evicted.ok());
  EXPECT_GT(evicted->clean_evicted, resident_before / 2)
      << "most pages are clean and evictable after a quiet checkpoint";
  EXPECT_LT(proc->vm().ResidentPages(), resident_before);

  // Demand paging must reproduce every byte.
  std::vector<uint8_t> got(8 * kMiB);
  ASSERT_TRUE(proc->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, model);
}

TEST(SwapIntegration, EvictAfterFlushBoundsResidency) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("bounded");
  auto obj = VmObject::CreateAnonymous(4 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 4 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("bounded");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  m.sls->SetMemoryPressure(group, true);

  Rng rng(3);
  std::vector<uint8_t> model(4 * kMiB, 0);
  for (int round = 0; round < 6; round++) {
    for (int w = 0; w < 200; w++) {
      uint64_t off = rng.Below(4 * kMiB - 8);
      uint64_t v = rng.Next();
      ASSERT_TRUE(proc->vm().Write(addr + off, &v, sizeof(v)).ok());
      std::memcpy(model.data() + off, &v, sizeof(v));
    }
    ASSERT_TRUE(m.sls->Checkpoint(group).ok());
  }
  // Residency stays near the working set (the base keeps getting dropped).
  EXPECT_LT(proc->vm().ResidentPages(), 900u);
  std::vector<uint8_t> got(4 * kMiB);
  ASSERT_TRUE(proc->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, model);
  // And a crash-restore still reproduces the last checkpoint faithfully.
  m.Reboot();
  auto restored = *m.sls->Restore("bounded");
  ASSERT_TRUE(restored.group->processes[0]->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, model);
}

// --- Migration chains ------------------------------------------------------------------

TEST(MigrationChain, TwoHopMigrationPreservesState) {
  CrashMachine a;
  CrashMachine b;
  CrashMachine c;
  Process* proc = *a.kernel->CreateProcess("hopper");
  auto obj = VmObject::CreateAnonymous(512 * kKiB);
  uint64_t addr = *proc->vm().Map(0x400000, 512 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  const char payload[] = "three machines, one process";
  ASSERT_TRUE(proc->vm().Write(addr + 64, payload, sizeof(payload)).ok());

  SlsCli cli_a(a.sls.get());
  ASSERT_TRUE(cli_a.Attach("hopper", proc).ok());
  ASSERT_TRUE(cli_a.Checkpoint("hopper", "origin").ok());
  auto stream_ab = *cli_a.Send("hopper");

  SlsCli cli_b(b.sls.get());
  auto on_b = *cli_b.Recv(stream_ab);
  // Work on B, checkpoint natively, hop again.
  uint64_t extra = 0x5e5e;
  ASSERT_TRUE(on_b.group->processes[0]->vm().Write(addr + 4096, &extra, sizeof(extra)).ok());
  ASSERT_TRUE(cli_b.Checkpoint("hopper", "on-b").ok());
  auto stream_bc = *cli_b.Send("hopper");

  SlsCli cli_c(c.sls.get());
  auto on_c = *cli_c.Recv(stream_bc);
  char buf[sizeof(payload)] = {};
  ASSERT_TRUE(on_c.group->processes[0]->vm().Read(addr + 64, buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, payload);
  uint64_t got = 0;
  ASSERT_TRUE(on_c.group->processes[0]->vm().Read(addr + 4096, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x5e5eu) << "work done on B must survive the second hop";
}

// --- Long-running lifecycle -----------------------------------------------------------

TEST(Lifecycle, RepeatedSuspendResumeCycles) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("cycler");
  auto obj = VmObject::CreateAnonymous(256 * kKiB);
  uint64_t addr = *proc->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  SlsCli cli(m.sls.get());
  ASSERT_TRUE(cli.Attach("cycler", proc).ok());

  uint64_t counter = 0;
  for (int cycle = 0; cycle < 5; cycle++) {
    ConsistencyGroup* group = m.sls->FindGroup("cycler");
    Process* p = group->processes[0];
    counter++;
    ASSERT_TRUE(p->vm().Write(addr, &counter, sizeof(counter)).ok());
    ASSERT_TRUE(cli.Suspend("cycler").ok());
    EXPECT_TRUE(m.kernel->AllProcesses().empty());
    auto resumed = cli.Resume("cycler");
    ASSERT_TRUE(resumed.ok()) << "cycle " << cycle;
    uint64_t got = 0;
    ASSERT_TRUE(resumed->group->processes[0]->vm().Read(addr, &got, sizeof(got)).ok());
    EXPECT_EQ(got, counter) << "cycle " << cycle;
  }
}

TEST(Lifecycle, HistoryRetainedAcrossManyCheckpointsAndPruned) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("hist");
  auto obj = VmObject::CreateAnonymous(64 * kKiB);
  uint64_t addr = *proc->vm().Map(0x400000, 64 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("hist");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  std::vector<uint64_t> epochs;
  for (uint64_t i = 1; i <= 12; i++) {
    ASSERT_TRUE(proc->vm().Write(addr, &i, sizeof(i)).ok());
    auto ckpt = *m.sls->Checkpoint(group, "h" + std::to_string(i));
    epochs.push_back(ckpt.epoch);
  }
  // Any point in history is restorable.
  for (size_t pick : {size_t{2}, size_t{6}, size_t{11}}) {
    auto restored = *m.sls->Restore("hist", epochs[pick]);
    uint64_t got = 0;
    ASSERT_TRUE(restored.group->processes[0]->vm().Read(addr, &got, sizeof(got)).ok());
    EXPECT_EQ(got, pick + 1);
    // Re-checkpoint so the group has a fresh latest state for the next loop.
    ASSERT_TRUE(m.sls->Checkpoint(restored.group).ok());
  }
  // Prune old history; space comes back, newest stays restorable.
  uint64_t free_before = m.store->FreeBlocks();
  ASSERT_TRUE(m.store->DeleteCheckpointsBefore(epochs[9]).ok());
  EXPECT_GE(m.store->FreeBlocks(), free_before);
  auto latest = m.sls->Restore("hist");
  EXPECT_TRUE(latest.ok());
}

// --- Sockets with fd passing across checkpoint/restore ----------------------------------

TEST(SocketIntegration, InFlightFdPassingSurvivesRestore) {
  CrashMachine m;
  Process* sender = *m.kernel->CreateProcess("sender");
  Process* receiver = *m.kernel->CreateProcess("receiver");

  // A pipe whose write end is in flight over a UNIX socket at checkpoint.
  auto [rfd, wfd] = *m.kernel->MakePipe(*sender);
  auto wdesc = *sender->fds().Get(wfd);
  ASSERT_TRUE(static_cast<Pipe*>(wdesc->object.get())->Write("in-pipe", 7).ok());

  int lsock_fd = *m.kernel->MakeSocket(*receiver, SocketDomain::kUnix, SocketProto::kTcp);
  auto* listener = static_cast<Socket*>((*receiver->fds().Get(lsock_fd))->object.get());
  ASSERT_TRUE(listener->Bind({0, 0, "/tmp/ctl"}).ok());
  ASSERT_TRUE(listener->Listen(4).ok());
  int csock_fd = *m.kernel->MakeSocket(*sender, SocketDomain::kUnix, SocketProto::kTcp);
  auto client =
      std::static_pointer_cast<Socket>((*sender->fds().Get(csock_fd))->object);
  ASSERT_TRUE(client->Bind({0, 0, "/tmp/cli"}).ok());
  auto server_end_sock = *client->ConnectTo(listener->shared_from_this());
  // Install the accepted end into the receiver's fd table.
  auto accepted_desc = std::make_shared<FileDescription>();
  accepted_desc->object = server_end_sock;
  int accepted_fd = receiver->fds().Install(accepted_desc);

  ControlMessage cm;
  cm.fds.push_back(wdesc);
  ASSERT_TRUE(client->Send("take this fd", 12, cm).ok());

  ConsistencyGroup* group = *m.sls->CreateGroup("ipc");
  ASSERT_TRUE(m.sls->Attach(group, sender).ok());
  ASSERT_TRUE(m.sls->Attach(group, receiver).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());

  m.Reboot();
  auto restored = *m.sls->Restore("ipc");
  Process* r_receiver = restored.group->processes[1];
  auto* r_sock = static_cast<Socket*>((*r_receiver->fds().Get(accepted_fd))->object.get());
  ASSERT_FALSE(r_sock->recv_buf.empty()) << "buffered segment must survive";
  auto seg = *r_sock->Recv(64);
  EXPECT_EQ(std::string(seg.data.begin(), seg.data.end()), "take this fd");
  ASSERT_TRUE(seg.control.has_value());
  ASSERT_EQ(seg.control->fds.size(), 1u);
  // The passed descriptor still references the pipe, with its bytes intact.
  auto* r_pipe = static_cast<Pipe*>(seg.control->fds[0]->object.get());
  char buf[8] = {};
  ASSERT_TRUE(r_pipe->Read(buf, 7).ok());
  EXPECT_STREQ(buf, "in-pipe");
  (void)rfd;
}

// --- Checkpoint modes under randomized interleavings -------------------------------------

class RandomWorkloadTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomWorkloadTest, RandomOpsThenCrashAlwaysRecoverLastCheckpoint) {
  CrashMachine m;
  Process* proc = *m.kernel->CreateProcess("rand");
  auto obj = VmObject::CreateAnonymous(1 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 1 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("rand");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  Rng rng(GetParam());
  std::vector<uint8_t> live(1 * kMiB, 0);
  std::vector<uint8_t> committed;
  for (int step = 0; step < 300; step++) {
    double dice = rng.NextDouble();
    if (dice < 0.85) {
      uint64_t off = rng.Below(1 * kMiB - 8);
      uint64_t v = rng.Next();
      ASSERT_TRUE(proc->vm().Write(addr + off, &v, sizeof(v)).ok());
      std::memcpy(live.data() + off, &v, sizeof(v));
    } else if (dice < 0.97) {
      ASSERT_TRUE(m.sls->Checkpoint(group).ok());
      committed = live;
    } else {
      ASSERT_TRUE(m.sls->Checkpoint(group, "", CheckpointMode::kMemoryOnly).ok());
      // memory-only checkpoints are not durable: committed stays.
    }
  }
  if (committed.empty()) {
    ASSERT_TRUE(m.sls->Checkpoint(group).ok());
    committed = live;
  }
  m.Reboot();
  auto restored = *m.sls->Restore("rand");
  std::vector<uint8_t> got(1 * kMiB);
  ASSERT_TRUE(restored.group->processes[0]->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, committed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Incremental migration (pre-copy / high availability) ----------------------

TEST(MigrationChain, IncrementalStreamsShipOnlyDeltas) {
  CrashMachine src;
  CrashMachine dst;
  Process* proc = *src.kernel->CreateProcess("ha");
  auto obj = VmObject::CreateAnonymous(8 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 8 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(proc->vm().DirtyRange(addr, 8 * kMiB).ok());

  SlsCli src_cli(src.sls.get());
  SlsCli dst_cli(dst.sls.get());
  ASSERT_TRUE(src_cli.Attach("ha", proc).ok());
  auto base_ckpt = *src.sls->Checkpoint(src.sls->FindGroup("ha"), "base");

  // Round 0: full image to the standby.
  MigrationSession session;
  auto full = *src_cli.Send("ha");
  auto standby = dst_cli.Recv(full, &session);
  ASSERT_TRUE(standby.ok());
  size_t full_bytes = full.bytes.size();
  EXPECT_GT(full_bytes, 8 * kMiB / 2);

  // Round 1: touch a few pages, checkpoint, ship the delta.
  const char update[] = "delta-round-1";
  ASSERT_TRUE(proc->vm().Write(addr + 3 * kMiB, update, sizeof(update)).ok());
  auto ckpt2 = *src.sls->Checkpoint(src.sls->FindGroup("ha"), "round1");
  auto delta = *src_cli.Send("ha", ckpt2.epoch, base_ckpt.epoch);
  EXPECT_LT(delta.bytes.size(), full_bytes / 8)
      << "incremental stream must be much smaller than the full image";
  auto standby2 = dst_cli.Recv(delta, &session);
  ASSERT_TRUE(standby2.ok());

  // The standby has the base image plus the delta.
  char buf[sizeof(update)] = {};
  Process* rp = standby2->group->processes[0];
  ASSERT_TRUE(rp->vm().Read(addr + 3 * kMiB, buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, update);
  uint8_t base_byte = 0;
  ASSERT_TRUE(rp->vm().Read(addr + 6 * kMiB + 3 * kPageSize, &base_byte, 1).ok());
  // DirtyRange stamped (page >> 12) & 0xff at each page start.
  EXPECT_EQ(base_byte, static_cast<uint8_t>(((addr + 6 * kMiB + 3 * kPageSize) >> 12) & 0xff))
      << "pages from the full round must still be there";
}

TEST(MigrationChain, IncrementalWithoutBaseRejected) {
  CrashMachine src;
  CrashMachine dst;
  Process* proc = *src.kernel->CreateProcess("ha2");
  auto obj = VmObject::CreateAnonymous(256 * kKiB);
  (void)proc->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  SlsCli src_cli(src.sls.get());
  SlsCli dst_cli(dst.sls.get());
  ASSERT_TRUE(src_cli.Attach("ha2", proc).ok());
  auto c1 = *src.sls->Checkpoint(src.sls->FindGroup("ha2"));
  auto c2 = *src.sls->Checkpoint(src.sls->FindGroup("ha2"));
  auto delta = *src_cli.Send("ha2", c2.epoch, c1.epoch);
  MigrationSession empty_session;
  EXPECT_FALSE(dst_cli.Recv(delta, &empty_session).ok());
  EXPECT_FALSE(dst_cli.Recv(delta, nullptr).ok());
}

}  // namespace
}  // namespace aurora
