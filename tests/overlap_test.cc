// Epoch-overlap backpressure: with the default in-flight limit of 1 a new
// periodic epoch never begins before the previous flush is durable; with
// limit 2 serialization overlaps the in-flight flush (and still commits in
// order), reducing checkpoint-to-checkpoint stall.
#include <gtest/gtest.h>

#include <memory>

#include "src/base/sim_context.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

struct Machine {
  explicit Machine(uint64_t store_bytes = 1 * kGiB) {
    // One deliberately slow device (500 MB/s) instead of the four-way
    // striped testbed: the flush must outlast the checkpoint period for the
    // in-flight limit to matter at all.
    DeviceProfile slow;
    slow.write_bytes_per_ns = 0.5;
    slow.read_bytes_per_ns = 1.0;
    device = std::make_unique<MemBlockDevice>(&sim.clock, store_bytes / kPageSize, kPageSize, slow);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

// Runs an append-heavy app under periodic checkpoints for `run_for`
// simulated time. The app writes fresh pages (log-style) faster than the
// slow device drains them, so every flush outlasts the period and the
// in-flight-epochs limit is what paces the pipeline. Appends matter:
// rewriting checkpointed pages would COW-fault against objects the flusher
// holds busy, serializing the mutator on the flush regardless of the limit.
ConsistencyGroup* RunDirtyWorkload(Machine& m, uint32_t in_flight, SimDuration run_for) {
  constexpr uint64_t kMem = 256 * kMiB;
  Process* proc = *m.kernel->CreateProcess("dirty");
  auto obj = VmObject::CreateAnonymous(kMem);
  uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);

  ConsistencyGroup* group = *m.sls->CreateGroup("dirty");
  EXPECT_TRUE(m.sls->Attach(group, proc).ok());
  group->period = 1 * kMillisecond;
  group->max_in_flight_epochs = in_flight;
  m.sls->StartPeriodicCheckpoints(group);

  uint64_t value = 0;
  uint64_t cursor = 0;
  SimTime deadline = m.sim.clock.now() + run_for;
  while (m.sim.clock.now() < deadline) {
    // Append 512 KiB of fresh pages each iteration (~2.3 MB per simulated
    // ms, several times the device's bandwidth).
    for (int i = 0; i < 128 && cursor + kPageSize <= kMem; i++) {
      value++;
      (void)proc->vm().Write(addr + cursor, &value, sizeof(value));
      cursor += kPageSize;
    }
    m.sim.clock.Advance(200 * kMicrosecond);
    m.sim.events.RunUntil(m.sim.clock.now());
  }
  m.sls->StopPeriodicCheckpoints(group);
  return group;
}

TEST(EpochOverlap, LimitOneNeverStartsBeforePreviousFlushIsDurable) {
  Machine m;
  ConsistencyGroup* group = RunDirtyWorkload(m, 1, 50 * kMillisecond);
  const auto& h = group->ckpt_history;
  ASSERT_GE(h.size(), 3u);
  for (size_t i = 1; i < h.size(); i++) {
    EXPECT_GE(h[i].begin, h[i - 1].durable)
        << "epoch " << h[i].epoch << " began before epoch " << h[i - 1].epoch
        << " was durable";
  }
}

TEST(EpochOverlap, LimitTwoOverlapsAndCommitsInOrder) {
  Machine base;
  ConsistencyGroup* serial = RunDirtyWorkload(base, 1, 50 * kMillisecond);

  Machine m;
  ConsistencyGroup* group = RunDirtyWorkload(m, 2, 50 * kMillisecond);
  const auto& h = group->ckpt_history;
  ASSERT_GE(h.size(), 3u);

  size_t overlapped = 0;
  for (size_t i = 1; i < h.size(); i++) {
    if (h[i].begin < h[i - 1].durable) {
      overlapped++;
    }
    EXPECT_GT(h[i].epoch, h[i - 1].epoch) << "commits must stay in order";
    EXPECT_GE(h[i].durable, h[i - 1].durable)
        << "durability must be monotone across overlapping epochs";
  }
  EXPECT_GT(overlapped, 0u) << "limit=2 must overlap serialization with the in-flight flush";

  // The whole point of overlap: less stall between checkpoints, so the same
  // wall-clock window fits more epochs than the serial pipeline.
  EXPECT_GT(h.size(), serial->ckpt_history.size());
}

}  // namespace
}  // namespace aurora
