// Parallel flush lanes: more lanes must never make the flush slower, and the
// lane count must never change what lands on the device — the lane schedule
// only decides *when* each store block's write completes, never *what* is
// written or in which allocation order.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "src/base/sim_context.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

// The paper testbed: four NVMe devices striped at 64 KiB, 64 KiB store
// blocks — the configuration SetFlushLanes fans its queues over.
struct Machine {
  Machine() {
    device = MakePaperTestbedStore(&sim.clock, 2 * kGiB, kPageSize, &sim.metrics);
    StoreOptions options;
    options.block_size = 64 * kKiB;
    store = *ObjectStore::Format(device.get(), &sim, options);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

struct LaneRun {
  SimDuration flush_makespan = 0;
  // Every object in the committed checkpoint, fully read back at that epoch.
  std::map<Oid, std::vector<uint8_t>> contents;
};

// The fig3 append profile: a fresh region dirtied front to back, then one
// full checkpoint — the flush is a single streaming burst.
LaneRun RunAppendCheckpoint(int lanes) {
  constexpr uint64_t kMem = 64 * kMiB;
  Machine m;
  Process* proc = *m.kernel->CreateProcess("append");
  auto obj = VmObject::CreateAnonymous(kMem);
  uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);
  uint64_t value = 0;
  for (uint64_t off = 0; off + kPageSize <= kMem; off += kPageSize) {
    value++;
    (void)proc->vm().Write(addr + off, &value, sizeof(value));
  }
  ConsistencyGroup* group = *m.sls->CreateGroup("append");
  EXPECT_TRUE(m.sls->Attach(group, proc).ok());
  EXPECT_EQ(m.sls->SetFlushLanes(lanes), std::min(lanes, m.sim.ncpus));

  SimTime t0 = m.sim.clock.now();
  auto ckpt = m.sls->Checkpoint(group, "lanes");
  EXPECT_TRUE(ckpt.ok());

  LaneRun run;
  SimTime resume_at = t0 + ckpt->stop_time;
  run.flush_makespan = ckpt->durable_at > resume_at ? ckpt->durable_at - resume_at : 0;
  std::vector<Oid> oids = *m.store->ObjectsAtEpoch(ckpt->epoch);
  std::sort(oids.begin(), oids.end());
  for (Oid oid : oids) {
    std::vector<uint8_t> data(*m.store->SizeAtEpoch(ckpt->epoch, oid));
    if (!data.empty()) {
      EXPECT_TRUE(m.store->ReadAtEpoch(ckpt->epoch, oid, 0, data.data(), data.size()).ok());
    }
    run.contents.emplace(oid, std::move(data));
  }
  return run;
}

TEST(LaneScaling, MakespanMonotoneAndParallelSpeedup) {
  LaneRun one = RunAppendCheckpoint(1);
  LaneRun two = RunAppendCheckpoint(2);
  LaneRun four = RunAppendCheckpoint(4);
  ASSERT_GT(one.flush_makespan, 0);

  // More lanes never slow the flush down (the sim is deterministic, so this
  // is exact, not statistical).
  EXPECT_LE(two.flush_makespan, one.flush_makespan);
  EXPECT_LE(four.flush_makespan, two.flush_makespan);
  // The acceptance bar: four lanes at least halve the streaming-append flush.
  EXPECT_LE(2 * four.flush_makespan, one.flush_makespan)
      << "4 lanes must give >= 2x on the append flush, got "
      << static_cast<double>(one.flush_makespan) / static_cast<double>(four.flush_makespan)
      << "x";
}

TEST(LaneScaling, StoreContentsByteIdenticalAcrossLaneCounts) {
  LaneRun one = RunAppendCheckpoint(1);
  for (int lanes : {2, 4}) {
    LaneRun parallel = RunAppendCheckpoint(lanes);
    ASSERT_EQ(parallel.contents.size(), one.contents.size()) << "lanes=" << lanes;
    auto a = one.contents.begin();
    auto b = parallel.contents.begin();
    for (; a != one.contents.end(); ++a, ++b) {
      EXPECT_EQ(a->first.value, b->first.value) << "lanes=" << lanes;
      EXPECT_EQ(a->second, b->second)
          << "object " << a->first.value << " diverged at lanes=" << lanes;
    }
  }
}

}  // namespace
}  // namespace aurora
