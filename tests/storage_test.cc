#include <gtest/gtest.h>

#include <cstring>

#include "src/base/sim_context.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

std::vector<uint8_t> Pattern(size_t len, uint8_t seed) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; i++) {
    out[i] = static_cast<uint8_t>(seed + i * 13);
  }
  return out;
}

TEST(MemBlockDevice, WriteReadRoundTrip) {
  SimClock clock;
  MemBlockDevice dev(&clock, 1024);
  auto data = Pattern(kPageSize * 3, 7);
  ASSERT_TRUE(dev.WriteSync(10, data.data(), 3).ok());
  std::vector<uint8_t> back(kPageSize * 3);
  ASSERT_TRUE(dev.ReadSync(10, back.data(), 3).ok());
  EXPECT_EQ(data, back);
}

TEST(MemBlockDevice, UnwrittenBlocksReadZero) {
  SimClock clock;
  MemBlockDevice dev(&clock, 64);
  std::vector<uint8_t> back(kPageSize, 0xff);
  ASSERT_TRUE(dev.ReadSync(5, back.data(), 1).ok());
  for (uint8_t b : back) {
    EXPECT_EQ(b, 0);
  }
  EXPECT_EQ(dev.ResidentBlocks(), 0u);  // sparse
}

TEST(MemBlockDevice, BoundsChecked) {
  SimClock clock;
  MemBlockDevice dev(&clock, 8);
  std::vector<uint8_t> buf(kPageSize);
  EXPECT_FALSE(dev.WriteAsync(8, buf.data(), 1).ok());
  EXPECT_FALSE(dev.ReadAsync(7, buf.data(), 2).ok());
}

TEST(MemBlockDevice, LatencyModel) {
  SimClock clock;
  DeviceProfile profile;
  MemBlockDevice dev(&clock, 1 << 20);
  std::vector<uint8_t> buf(kPageSize);
  SimTime t0 = clock.now();
  ASSERT_TRUE(dev.WriteSync(0, buf.data(), 1).ok());
  SimDuration one_write = clock.now() - t0;
  // One 4 KiB write: fixed latency + small transfer.
  EXPECT_GE(one_write, profile.write_latency);
  EXPECT_LT(one_write, profile.write_latency + 10 * kMicrosecond);
}

TEST(MemBlockDevice, PipeliningOverlapsLatency) {
  SimClock clock;
  MemBlockDevice dev(&clock, 1 << 20);
  std::vector<uint8_t> buf(kPageSize);
  // 100 async writes issued back-to-back: completions pipeline, so total
  // time is ~transfer-bound plus ONE latency, not 100 latencies.
  SimTime last = 0;
  for (int i = 0; i < 100; i++) {
    auto done = dev.WriteAsync(static_cast<uint64_t>(i), buf.data(), 1);
    ASSERT_TRUE(done.ok());
    last = std::max(last, *done);
  }
  DeviceProfile profile;
  // Transfer-bound plus one latency — far below 100 serialized latencies.
  EXPECT_LT(last, profile.write_latency + 400 * kMicrosecond);
  EXPECT_LT(last, 100 * profile.write_latency / 2);
}

TEST(MemBlockDevice, CrashTearsAndDropsWrites) {
  SimClock clock;
  MemBlockDevice dev(&clock, 64);
  auto before = Pattern(kPageSize, 1);
  ASSERT_TRUE(dev.WriteSync(0, before.data(), 1).ok());
  dev.CrashAfterWrites(0);  // the very next write is torn
  auto after = Pattern(kPageSize, 2);
  ASSERT_TRUE(dev.WriteSync(0, after.data(), 1).ok());
  EXPECT_TRUE(dev.crashed());
  // Later writes are dropped entirely.
  auto late = Pattern(kPageSize, 3);
  ASSERT_TRUE(dev.WriteSync(1, late.data(), 1).ok());

  std::vector<uint8_t> back(kPageSize);
  ASSERT_TRUE(dev.ReadSync(0, back.data(), 1).ok());
  // First half new, second half old: a torn write.
  EXPECT_EQ(0, std::memcmp(back.data(), after.data(), kPageSize / 2));
  EXPECT_EQ(0, std::memcmp(back.data() + kPageSize / 2, before.data() + kPageSize / 2,
                           kPageSize / 2));
  ASSERT_TRUE(dev.ReadSync(1, back.data(), 1).ok());
  for (uint8_t b : back) {
    EXPECT_EQ(b, 0);
  }
}

TEST(StripedDevice, RoundTripAcrossStripes) {
  SimClock clock;
  auto striped = MakePaperTestbedStore(&clock, 64 * kMiB);
  // 256 KiB spans all four devices (64 KiB stripe unit).
  auto data = Pattern(256 * kKiB, 9);
  uint32_t nblocks = static_cast<uint32_t>(data.size() / striped->block_size());
  ASSERT_TRUE(striped->WriteSync(3, data.data(), nblocks).ok());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(striped->ReadSync(3, back.data(), nblocks).ok());
  EXPECT_EQ(data, back);
}

TEST(StripedDevice, BandwidthAggregates) {
  SimClock clock;
  auto striped = MakePaperTestbedStore(&clock, 4 * kGiB);
  // Stream 64 MiB: four devices in parallel should beat one device's rate.
  std::vector<uint8_t> chunk(1 * kMiB);
  SimTime t0 = clock.now();
  SimTime done = t0;
  for (uint64_t i = 0; i < 64; i++) {
    auto t = striped->WriteAsync(i * (chunk.size() / striped->block_size()), chunk.data(),
                                 static_cast<uint32_t>(chunk.size() / striped->block_size()));
    ASSERT_TRUE(t.ok());
    done = std::max(done, *t);
  }
  double seconds = ToSeconds(done - t0);
  double gbps = 64.0 / 1024.0 / seconds;
  EXPECT_GT(gbps, 4.0);  // aggregate ~5.4 GB/s
  EXPECT_LT(gbps, 7.0);
}

TEST(StripedDevice, StatsAggregate) {
  SimClock clock;
  auto striped = MakePaperTestbedStore(&clock, 64 * kMiB);
  std::vector<uint8_t> buf(64 * kKiB);
  ASSERT_TRUE(striped->WriteSync(0, buf.data(), 16).ok());
  EXPECT_EQ(striped->stats().bytes_written, 64 * kKiB);
  EXPECT_EQ(striped->stats().writes, 16u);
}

}  // namespace
}  // namespace aurora
