// libsls (Table 3 API), process lifecycle (exit/wait), and the madvise
// paging policy.
#include <gtest/gtest.h>

#include "src/base/sim_context.h"
#include "src/core/api.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  ApiTest() {
    device_ = MakePaperTestbedStore(&sim_.clock, 1 * kGiB);
    store_ = *ObjectStore::Format(device_.get(), &sim_);
    fs_ = std::make_unique<AuroraFs>(&sim_, store_.get());
    kernel_ = std::make_unique<Kernel>(&sim_);
    sls_ = std::make_unique<Sls>(&sim_, kernel_.get(), store_.get(), fs_.get());
    proc_ = *kernel_->CreateProcess("app");
    auto obj = VmObject::CreateAnonymous(4 * kMiB);
    addr_ = *proc_->vm().Map(0x400000, 4 * kMiB, kProtRead | kProtWrite, obj, 0, false);
    group_ = *sls_->CreateGroup("app");
    (void)sls_->Attach(group_, proc_);
  }
  SimContext sim_;
  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<AuroraFs> fs_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Sls> sls_;
  Process* proc_ = nullptr;
  uint64_t addr_ = 0;
  ConsistencyGroup* group_ = nullptr;
};

TEST_F(ApiTest, CheckpointRestoreRoundTrip) {
  SlsApi api(sls_.get(), group_, proc_);
  uint64_t v = 0xc0ffee;
  ASSERT_TRUE(proc_->vm().Write(addr_, &v, sizeof(v)).ok());
  auto epoch = api.sls_checkpoint();
  ASSERT_TRUE(epoch.ok());
  uint64_t junk = 0;
  ASSERT_TRUE(proc_->vm().Write(addr_, &junk, sizeof(junk)).ok());
  ASSERT_TRUE(api.sls_restore(*epoch).ok());
  uint64_t got = 0;
  ASSERT_TRUE(api.process()->vm().Read(addr_, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xc0ffeeu);
}

TEST_F(ApiTest, JournalAndBarrier) {
  SlsApi api(sls_.get(), group_, proc_);
  auto journal = api.sls_journal_create(1 * kMiB);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(api.sls_journal(*journal, "op1", 3).ok());
  ASSERT_TRUE(api.sls_checkpoint().ok());
  ASSERT_TRUE(api.sls_barrier().ok());
  ASSERT_TRUE(api.sls_journal_truncate(*journal).ok());
  ASSERT_TRUE(api.sls_journal(*journal, "op2", 3).ok());
  auto records = sls_->JournalReplay(*journal);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(std::string((*records)[0].begin(), (*records)[0].end()), "op2");
}

TEST_F(ApiTest, MemckptAndMctl) {
  SlsApi api(sls_.get(), group_, proc_);
  ASSERT_TRUE(api.sls_checkpoint().ok());
  uint64_t v = 77;
  ASSERT_TRUE(api.process()->vm().Write(addr_ + kPageSize, &v, sizeof(v)).ok());
  ASSERT_TRUE(api.sls_memckpt(addr_).ok());
  ASSERT_TRUE(api.sls_mctl(addr_, /*exclude=*/true).ok());
  EXPECT_TRUE(api.process()->vm().FindEntry(addr_)->exclude_from_checkpoint);
  ASSERT_TRUE(api.sls_mctl(addr_, /*exclude=*/false).ok());
  EXPECT_FALSE(api.process()->vm().FindEntry(addr_)->exclude_from_checkpoint);
  EXPECT_FALSE(api.sls_mctl(0xdead0000, true).ok());
}

TEST_F(ApiTest, FdctlTogglesExternalSync) {
  SlsApi api(sls_.get(), group_, proc_);
  int fd = *kernel_->MakeSocket(*proc_, SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(api.sls_fdctl(fd, true).ok());
  auto* sock = static_cast<Socket*>((*proc_->fds().Get(fd))->object.get());
  EXPECT_TRUE(sock->external_sync_disabled);
  ASSERT_TRUE(api.sls_fdctl(fd, false).ok());
  EXPECT_FALSE(sock->external_sync_disabled);
  int pipe_fd = (*kernel_->MakePipe(*proc_)).first;
  EXPECT_FALSE(api.sls_fdctl(pipe_fd, true).ok()) << "fdctl targets sockets";
}

// --- exit/wait ---------------------------------------------------------------

TEST_F(ApiTest, ExitMakesZombieAndSignalsParent) {
  Process* child = *kernel_->Fork(*proc_);
  uint64_t child_pid = child->local_pid();
  kernel_->Exit(child, 3);
  EXPECT_TRUE(child->zombie);
  EXPECT_TRUE(proc_->pending_signals & (1ull << kSigChld));
  auto reaped = kernel_->WaitAny(*proc_);
  ASSERT_TRUE(reaped.ok());
  EXPECT_EQ(reaped->first, child_pid);
  EXPECT_EQ(reaped->second, 3);
  EXPECT_EQ(kernel_->WaitAny(*proc_).status().code(), Errc::kWouldBlock);
  EXPECT_EQ(kernel_->FindLocalPid(child_pid), nullptr);
}

TEST_F(ApiTest, OrphanExitReapsImmediately) {
  Process* orphan = *kernel_->CreateProcess("orphan");
  uint64_t pid = orphan->local_pid();
  kernel_->Exit(orphan, 0);
  EXPECT_EQ(kernel_->FindLocalPid(pid), nullptr);
}

TEST_F(ApiTest, ZombieSurvivesCheckpointRestore) {
  Process* child = *kernel_->Fork(*proc_);
  (void)sls_->Attach(group_, child);
  kernel_->Exit(child, 9);
  ASSERT_TRUE(sls_->Checkpoint(group_).ok());
  auto restored = *sls_->Restore("app");
  ASSERT_EQ(restored.group->processes.size(), 2u);
  Process* rparent = restored.group->processes[0];
  auto reaped = kernel_->WaitAny(*rparent);
  ASSERT_TRUE(reaped.ok()) << "the zombie's exit status must survive restore";
  EXPECT_EQ(reaped->second, 9);
}

// --- madvise policy -------------------------------------------------------------

TEST_F(ApiTest, MadviseOrdersEviction) {
  // Two more regions with hints; all persisted by two checkpoints.
  auto keep_obj = VmObject::CreateAnonymous(1 * kMiB);
  uint64_t keep_addr =
      *proc_->vm().Map(0x800000, 1 * kMiB, kProtRead | kProtWrite, keep_obj, 0, false);
  auto drop_obj = VmObject::CreateAnonymous(1 * kMiB);
  uint64_t drop_addr =
      *proc_->vm().Map(0xC00000, 1 * kMiB, kProtRead | kProtWrite, drop_obj, 0, false);
  ASSERT_TRUE(proc_->vm().DirtyRange(keep_addr, 1 * kMiB).ok());
  ASSERT_TRUE(proc_->vm().DirtyRange(drop_addr, 1 * kMiB).ok());
  ASSERT_TRUE(proc_->vm().Advise(keep_addr, kMadvWillneed).ok());
  ASSERT_TRUE(proc_->vm().Advise(drop_addr, kMadvDontneed).ok());
  ASSERT_TRUE(sls_->Checkpoint(group_).ok());
  ASSERT_TRUE(sls_->Checkpoint(group_).ok());
  ASSERT_TRUE(sls_->Checkpoint(group_).ok());

  // Ask for exactly one region's worth of pages: the DONTNEED one goes.
  auto evicted = sls_->EvictPages(group_, 256);
  ASSERT_TRUE(evicted.ok());
  EXPECT_GE(evicted->clean_evicted, 200u);
  auto resident_of = [&](uint64_t addr) {
    std::shared_ptr<VmObject> base = proc_->vm().FindEntry(addr)->object;
    while (base->parent_ref() != nullptr) {
      base = base->parent_ref();
    }
    return base->ResidentPages();
  };
  EXPECT_EQ(resident_of(drop_addr), 0u) << "DONTNEED region evicted first";
  EXPECT_GT(resident_of(keep_addr), 200u) << "WILLNEED region retained";
  // Contents still correct through the pager.
  uint8_t byte = 0;
  ASSERT_TRUE(proc_->vm().Read(drop_addr + 5 * kPageSize, &byte, 1).ok());
  EXPECT_EQ(byte, static_cast<uint8_t>(((drop_addr + 5 * kPageSize) >> 12) & 0xff));
}

}  // namespace
}  // namespace aurora
