// Restore error paths: a failure at any pipeline stage must not leak
// half-built processes, shm namespace entries or vnode references into the
// kernel, and a subsequent clean restore must still work.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/base/sim_context.h"
#include "src/core/backend.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

struct Machine {
  explicit Machine(uint64_t store_bytes = 1 * kGiB) {
    device = MakePaperTestbedStore(&sim.clock, store_bytes);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

// Delegates to the real store backend but fails on command, one knob per
// restore pipeline stage.
class FailingBackend : public CheckpointBackend {
 public:
  explicit FailingBackend(CheckpointBackend* inner) : inner_(inner) {}

  const std::string& name() const override { return name_; }
  uint64_t current_epoch() const override { return inner_->current_epoch(); }
  Result<Oid> CreateMemoryObject(uint64_t size_hint) override {
    return inner_->CreateMemoryObject(size_hint);
  }
  Result<Oid> PersistNamespace() override { return inner_->PersistNamespace(); }
  Result<SimTime> WriteObjectPages(Oid oid, VmObject* obj, uint64_t* pages,
                                   uint64_t* bytes) override {
    return inner_->WriteObjectPages(oid, obj, pages, bytes);
  }
  Result<SimTime> FlushFilesystem() override { return inner_->FlushFilesystem(); }
  Result<CommitInfo> CommitEpoch(const std::string& ckpt_name,
                                 const std::vector<uint8_t>& manifest,
                                 Oid replaces_manifest) override {
    return inner_->CommitEpoch(ckpt_name, manifest, replaces_manifest);
  }
  Result<LoadedManifest> LoadManifest(const std::string& group_name,
                                      uint64_t epoch) override {
    if (fail_load_manifest) {
      return Status::Error(Errc::kCorrupt, "injected: manifest unreadable");
    }
    AURORA_ASSIGN_OR_RETURN(LoadedManifest loaded, inner_->LoadManifest(group_name, epoch));
    if (truncate_manifest_to < loaded.blob.size()) {
      loaded.blob.resize(truncate_manifest_to);
    }
    return loaded;
  }
  Status RestoreNamespace(uint64_t epoch, Oid ns_oid) override {
    if (fail_restore_namespace) {
      return Status::Error(Errc::kCorrupt, "injected: namespace unreadable");
    }
    return inner_->RestoreNamespace(epoch, ns_oid);
  }
  Result<MemoryResolverFn> MakeResolver(uint64_t epoch, RestoreMode mode,
                                        std::shared_ptr<SimTime> stream_done) override {
    AURORA_ASSIGN_OR_RETURN(MemoryResolverFn inner, inner_->MakeResolver(epoch, mode, stream_done));
    uint64_t fail_at = fail_resolve_at;
    auto calls = std::make_shared<uint64_t>(0);
    return MemoryResolverFn(
        [inner, fail_at, calls](Oid oid, uint64_t size) -> Result<ResolvedMemory> {
          if (fail_at != 0 && ++*calls == fail_at) {
            return Status::Error(Errc::kCorrupt, "injected: object unreadable");
          }
          return inner(oid, size);
        });
  }
  bool InstallPager(VmObject* base) override { return inner_->InstallPager(base); }

  bool fail_load_manifest = false;
  bool fail_restore_namespace = false;
  uint64_t truncate_manifest_to = UINT64_MAX;
  uint64_t fail_resolve_at = 0;  // 1-based resolver call index; 0 = never

 private:
  CheckpointBackend* inner_;
  std::string name_ = "failing";
};

// Two-region app with a named file so the manifest carries a namespace oid,
// memory objects and vnode references — every rollback path has something
// to roll back. Returns the failing backend (owned by the Sls).
FailingBackend* SetUpCheckpointedApp(Machine& m, uint64_t* addr_out,
                                     std::vector<uint8_t>* pattern_out) {
  auto* failing = static_cast<FailingBackend*>(m.sls->RegisterBackend(
      std::make_unique<FailingBackend>(m.sls->store_backend())));

  constexpr uint64_t kMem = 256 * kKiB;
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(kMem);
  uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);
  auto obj2 = VmObject::CreateAnonymous(kMem);
  (void)*proc->vm().Map(0x900000, kMem, kProtRead | kProtWrite, obj2, 0, false);

  std::vector<uint8_t> pattern(kMem);
  for (uint64_t i = 0; i < kMem; i++) {
    pattern[i] = static_cast<uint8_t>(i * 13 + 7);
  }
  EXPECT_TRUE(proc->vm().Write(addr, pattern.data(), pattern.size()).ok());

  int fd = *m.kernel->Open(*proc, "state.db", kOpenRead | kOpenWrite, true);
  EXPECT_TRUE(m.kernel->WriteFd(*proc, fd, "persist me", 10).ok());

  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  EXPECT_TRUE(m.sls->Attach(group, proc).ok());
  EXPECT_TRUE(m.sls->Checkpoint(group, "good").ok());

  *addr_out = addr;
  *pattern_out = std::move(pattern);
  return failing;
}

void ExpectCleanRestoreWorks(Machine& m, uint64_t addr, const std::vector<uint8_t>& pattern) {
  auto restored = m.sls->Restore("app");
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_EQ(restored->group->processes.size(), 1u);
  std::vector<uint8_t> got(pattern.size());
  ASSERT_TRUE(restored->group->processes[0]->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, pattern);
}

TEST(RestoreFault, FailedManifestLoadLeavesOldIncarnationRunning) {
  Machine m;
  uint64_t addr = 0;
  std::vector<uint8_t> pattern;
  FailingBackend* failing = SetUpCheckpointedApp(m, &addr, &pattern);

  failing->fail_load_manifest = true;
  auto res = m.sls->Restore("app", 0, RestoreMode::kFull, failing);
  EXPECT_FALSE(res.ok());
  // The failure hit before teardown: the old incarnation must be untouched.
  ConsistencyGroup* group = m.sls->FindGroup("app");
  ASSERT_NE(group, nullptr);
  ASSERT_EQ(group->processes.size(), 1u);
  EXPECT_EQ(m.kernel->AllProcesses().size(), 1u);
  std::vector<uint8_t> got(pattern.size());
  ASSERT_TRUE(group->processes[0]->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, pattern);
}

TEST(RestoreFault, FailedNamespaceRestoreLeaksNothing) {
  Machine m;
  uint64_t addr = 0;
  std::vector<uint8_t> pattern;
  FailingBackend* failing = SetUpCheckpointedApp(m, &addr, &pattern);

  failing->fail_restore_namespace = true;
  auto res = m.sls->Restore("app", 0, RestoreMode::kFull, failing);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(m.kernel->AllProcesses().empty()) << "no half-built processes may survive";

  failing->fail_restore_namespace = false;
  ExpectCleanRestoreWorks(m, addr, pattern);
}

TEST(RestoreFault, ResolverFaultMidMaterializeRollsBackProcesses) {
  Machine m;
  uint64_t addr = 0;
  std::vector<uint8_t> pattern;
  FailingBackend* failing = SetUpCheckpointedApp(m, &addr, &pattern);

  failing->fail_resolve_at = 2;  // fail after the first region resolved
  auto res = m.sls->Restore("app", 0, RestoreMode::kFull, failing);
  EXPECT_FALSE(res.ok());
  EXPECT_TRUE(m.kernel->AllProcesses().empty())
      << "partially materialized processes must be torn down";
  EXPECT_TRUE(m.kernel->posix_shm().empty());
  EXPECT_TRUE(m.kernel->sysv_shm().empty());

  failing->fail_resolve_at = 0;
  ExpectCleanRestoreWorks(m, addr, pattern);
}

TEST(RestoreFault, TruncatedManifestSweepNeverLeaks) {
  Machine m;
  uint64_t addr = 0;
  std::vector<uint8_t> pattern;
  FailingBackend* failing = SetUpCheckpointedApp(m, &addr, &pattern);

  auto loaded = m.sls->store_backend()->LoadManifest("app", 0);
  ASSERT_TRUE(loaded.ok());
  uint64_t full = loaded->blob.size();

  // Cut the manifest at many offsets: whatever stage the parse dies in, the
  // kernel must come back empty (the previous incarnation is already gone
  // after the first teardown — rollback means "no stragglers", not revival).
  for (uint64_t len = 0; len < full; len += 97) {
    failing->truncate_manifest_to = len;
    auto res = m.sls->Restore("app", 0, RestoreMode::kFull, failing);
    if (res.ok()) {
      // A prefix that still parses completely is fine — but then it must be
      // a full, healthy restore.
      ASSERT_EQ(m.kernel->AllProcesses().size(), 1u) << "len=" << len;
      continue;
    }
    EXPECT_TRUE(m.kernel->AllProcesses().empty()) << "len=" << len;
  }

  failing->truncate_manifest_to = UINT64_MAX;
  ExpectCleanRestoreWorks(m, addr, pattern);
}

}  // namespace
}  // namespace aurora
