#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/vm/system_shadow.h"
#include "src/vm/vm_map.h"
#include "src/vm/vm_object.h"

namespace aurora {
namespace {

class VmTest : public ::testing::Test {
 protected:
  SimContext sim_;
};

TEST_F(VmTest, MapWriteRead) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(64 * kKiB);
  auto addr = map.Map(0x100000, 64 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(addr.ok());
  const char msg[] = "persistent memory";
  ASSERT_TRUE(map.Write(*addr + 100, msg, sizeof(msg)).ok());
  char back[sizeof(msg)] = {};
  ASSERT_TRUE(map.Read(*addr + 100, back, sizeof(back)).ok());
  EXPECT_STREQ(back, msg);
}

TEST_F(VmTest, ReadOfUntouchedMemoryIsZero) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(16 * kKiB);
  auto addr = map.Map(0, 16 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  uint64_t value = 123;
  ASSERT_TRUE(map.Read(*addr + 8 * kKiB, &value, sizeof(value)).ok());
  EXPECT_EQ(value, 0u);
  // FreeBSD semantics: the read fault allocated a zeroed frame in the object.
  EXPECT_EQ(obj->ResidentPages(), 1u);
  EXPECT_EQ(map.fault_stats().zero_fills, 1u);
}

TEST_F(VmTest, ProtectionEnforced) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(kPageSize);
  auto addr = map.Map(0, kPageSize, kProtRead, obj, 0, false);
  uint8_t b = 1;
  EXPECT_FALSE(map.Write(*addr, &b, 1).ok());
  EXPECT_FALSE(map.Read(0xdead0000, &b, 1).ok());  // unmapped
}

TEST_F(VmTest, ShadowHidesParentPage) {
  auto parent = VmObject::CreateAnonymous(kPageSize * 4);
  uint8_t a[kPageSize];
  std::memset(a, 0xaa, sizeof(a));
  parent->InstallPage(0, a);
  auto shadow = VmObject::CreateShadow(parent);
  EXPECT_EQ(parent->shadow_count(), 1);

  // Lookup falls through to the parent.
  auto found = shadow->LookupChain(0);
  EXPECT_EQ(found.owner, parent.get());
  // A private copy in the shadow hides it.
  uint8_t b[kPageSize];
  std::memset(b, 0xbb, sizeof(b));
  shadow->InstallPage(0, b);
  found = shadow->LookupChain(0);
  EXPECT_EQ(found.owner, shadow.get());
  EXPECT_EQ(found.page->data[0], 0xbb);
  EXPECT_EQ(parent->LookupLocal(0)->data[0], 0xaa);
}

TEST_F(VmTest, CowFaultCopiesFromChain) {
  VmMap map(&sim_);
  auto parent = VmObject::CreateAnonymous(4 * kPageSize);
  uint8_t page[kPageSize];
  std::memset(page, 0x5a, sizeof(page));
  parent->InstallPage(1, page);
  auto shadow = VmObject::CreateShadow(parent);
  auto addr = map.Map(0, 4 * kPageSize, kProtRead | kProtWrite, shadow, 0, false);

  // Write one byte: the whole page must be copied up, preserving the rest.
  uint8_t x = 0x11;
  ASSERT_TRUE(map.Write(*addr + kPageSize + 7, &x, 1).ok());
  EXPECT_EQ(shadow->ResidentPages(), 1u);
  uint8_t back[2] = {};
  ASSERT_TRUE(map.Read(*addr + kPageSize + 6, back, 2).ok());
  EXPECT_EQ(back[0], 0x5a);
  EXPECT_EQ(back[1], 0x11);
  EXPECT_EQ(map.fault_stats().cow_faults, 1u);
}

TEST_F(VmTest, ForkIsolatesPrivateMemory) {
  VmMap parent_map(&sim_);
  auto obj = VmObject::CreateAnonymous(16 * kPageSize);
  auto addr = parent_map.Map(0x200000, 16 * kPageSize, kProtRead | kProtWrite, obj, 0,
                             /*copy_on_write=*/true);
  uint32_t v = 0x1111;
  ASSERT_TRUE(parent_map.Write(*addr, &v, sizeof(v)).ok());

  auto child_map = parent_map.Fork();
  ASSERT_TRUE(child_map.ok());

  // Child sees the parent's value, then diverges.
  uint32_t got = 0;
  ASSERT_TRUE((*child_map)->Read(*addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x1111u);
  uint32_t cv = 0x2222;
  ASSERT_TRUE((*child_map)->Write(*addr, &cv, sizeof(cv)).ok());
  ASSERT_TRUE(parent_map.Read(*addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x1111u) << "child write leaked into parent";
  uint32_t pv = 0x3333;
  ASSERT_TRUE(parent_map.Write(*addr, &pv, sizeof(pv)).ok());
  ASSERT_TRUE((*child_map)->Read(*addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x2222u) << "parent write leaked into child";
}

TEST_F(VmTest, ForkSharesSharedMappings) {
  VmMap parent_map(&sim_);
  auto obj = VmObject::CreateAnonymous(4 * kPageSize);
  auto addr = parent_map.Map(0, 4 * kPageSize, kProtRead | kProtWrite, obj, 0,
                             /*copy_on_write=*/false);
  auto child_map = parent_map.Fork();
  ASSERT_TRUE(child_map.ok());
  uint32_t v = 77;
  ASSERT_TRUE(parent_map.Write(*addr, &v, sizeof(v)).ok());
  uint32_t got = 0;
  ASSERT_TRUE((*child_map)->Read(*addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 77u);
}

TEST_F(VmTest, CollapseClassicPreservesContents) {
  auto parent = VmObject::CreateAnonymous(8 * kPageSize);
  uint8_t p0[kPageSize];
  std::memset(p0, 1, sizeof(p0));
  uint8_t p1[kPageSize];
  std::memset(p1, 2, sizeof(p1));
  parent->InstallPage(0, p0);
  parent->InstallPage(1, p1);
  auto shadow = VmObject::CreateShadow(parent);
  uint8_t s1[kPageSize];
  std::memset(s1, 9, sizeof(s1));
  shadow->InstallPage(1, s1);  // hides parent's page 1

  ASSERT_TRUE(shadow->CollapseClassic(sim_.cost, &sim_.clock).ok());
  EXPECT_EQ(shadow->parent(), nullptr);
  EXPECT_EQ(shadow->ResidentPages(), 2u);
  EXPECT_EQ(shadow->LookupLocal(0)->data[0], 1);
  EXPECT_EQ(shadow->LookupLocal(1)->data[0], 9) << "shadow's version must win";
}

TEST_F(VmTest, CollapseReversedPreservesContents) {
  auto parent = VmObject::CreateAnonymous(8 * kPageSize);
  uint8_t p0[kPageSize];
  std::memset(p0, 1, sizeof(p0));
  uint8_t p1[kPageSize];
  std::memset(p1, 2, sizeof(p1));
  parent->InstallPage(0, p0);
  parent->InstallPage(1, p1);
  auto shadow = VmObject::CreateShadow(parent);
  uint8_t s1[kPageSize];
  std::memset(s1, 9, sizeof(s1));
  shadow->InstallPage(1, s1);

  ASSERT_TRUE(shadow->CollapseReversedIntoParent(sim_.cost, &sim_.clock).ok());
  EXPECT_EQ(shadow->ResidentPages(), 0u);
  EXPECT_EQ(parent->LookupLocal(0)->data[0], 1);
  EXPECT_EQ(parent->LookupLocal(1)->data[0], 9);
}

TEST_F(VmTest, CollapseRefusedWhenParentShared) {
  auto parent = VmObject::CreateAnonymous(kPageSize);
  auto s1 = VmObject::CreateShadow(parent);
  auto s2 = VmObject::CreateShadow(parent);
  EXPECT_EQ(parent->shadow_count(), 2);
  EXPECT_FALSE(s1->CollapseClassic(sim_.cost, &sim_.clock).ok());
  EXPECT_FALSE(s1->CollapseReversedIntoParent(sim_.cost, &sim_.clock).ok());
}

TEST_F(VmTest, ReversedCollapseCheaperForSmallDirtySets) {
  // The paper's optimization: cost scales with the shadow's pages, not the
  // parent's. Build a big parent and a tiny shadow and compare directions.
  auto mk = [&](int parent_pages, int shadow_pages) {
    auto parent = VmObject::CreateAnonymous(4096 * kPageSize);
    uint8_t buf[kPageSize] = {};
    for (int i = 0; i < parent_pages; i++) {
      parent->InstallPage(static_cast<uint64_t>(i), buf);
    }
    auto shadow = VmObject::CreateShadow(parent);
    for (int i = 0; i < shadow_pages; i++) {
      shadow->InstallPage(static_cast<uint64_t>(i), buf);
    }
    return std::pair{parent, shadow};
  };
  auto [p1, s1] = mk(2000, 10);
  SimTime t0 = sim_.clock.now();
  ASSERT_TRUE(s1->CollapseReversedIntoParent(sim_.cost, &sim_.clock).ok());
  SimDuration reversed = sim_.clock.now() - t0;

  auto [p2, s2] = mk(2000, 10);
  t0 = sim_.clock.now();
  ASSERT_TRUE(s2->CollapseClassic(sim_.cost, &sim_.clock).ok());
  SimDuration classic = sim_.clock.now() - t0;

  EXPECT_LT(reversed * 20, classic) << "reversed collapse should be ~200x cheaper here";
}

TEST_F(VmTest, SystemShadowSharedMemoryStaysShared) {
  // Two processes sharing one object: system shadowing must replace the
  // object in BOTH maps with the SAME shadow (fork COW would break this).
  VmMap map_a(&sim_);
  VmMap map_b(&sim_);
  auto shared = VmObject::CreateAnonymous(16 * kPageSize);
  auto addr_a = map_a.Map(0x100000, 16 * kPageSize, kProtRead | kProtWrite, shared, 0, false);
  auto addr_b = map_b.Map(0x100000, 16 * kPageSize, kProtRead | kProtWrite, shared, 0, false);
  uint32_t v = 0xabc;
  ASSERT_TRUE(map_a.Write(*addr_a, &v, sizeof(v)).ok());

  std::vector<VmMap*> maps{&map_a, &map_b};
  SystemShadowStats stats;
  auto pairs = CreateSystemShadows(maps, &sim_, nullptr, &stats);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(stats.objects_shadowed, 1u);
  EXPECT_TRUE(pairs[0].frozen->frozen());

  // Writes through A remain visible to B after shadowing.
  uint32_t nv = 0xdef;
  ASSERT_TRUE(map_a.Write(*addr_a + 64, &nv, sizeof(nv)).ok());
  uint32_t got = 0;
  ASSERT_TRUE(map_b.Read(*addr_b + 64, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xdefu);
  // And the frozen snapshot does NOT contain the new write.
  auto frozen_page = pairs[0].frozen->LookupChain(0);
  ASSERT_NE(frozen_page.page, nullptr);
  uint32_t frozen_val;
  std::memcpy(&frozen_val, frozen_page.page->data.data() + 64, sizeof(frozen_val));
  EXPECT_EQ(frozen_val, 0u);
}

TEST_F(VmTest, SystemShadowCapturesPointInTime) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(4 * kPageSize);
  auto addr = map.Map(0, 4 * kPageSize, kProtRead | kProtWrite, obj, 0, false);
  uint64_t before = 0x1111111111111111ull;
  ASSERT_TRUE(map.Write(*addr, &before, sizeof(before)).ok());

  std::vector<VmMap*> maps{&map};
  auto pairs = CreateSystemShadows(maps, &sim_, nullptr, nullptr);
  ASSERT_EQ(pairs.size(), 1u);

  uint64_t after = 0x2222222222222222ull;
  ASSERT_TRUE(map.Write(*addr, &after, sizeof(after)).ok());

  // Live view sees `after`; frozen snapshot still holds `before`.
  uint64_t live = 0;
  ASSERT_TRUE(map.Read(*addr, &live, sizeof(live)).ok());
  EXPECT_EQ(live, after);
  auto frozen = pairs[0].frozen->LookupChain(0);
  uint64_t snap;
  std::memcpy(&snap, frozen.page->data.data(), sizeof(snap));
  EXPECT_EQ(snap, before);
}

TEST_F(VmTest, CollapseAfterFlushMergesSameOidOnly) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(4 * kPageSize);
  obj->set_sls_oid(55);
  auto addr = map.Map(0, 4 * kPageSize, kProtRead | kProtWrite, obj, 0, false);
  uint8_t x = 1;
  ASSERT_TRUE(map.Write(*addr, &x, 1).ok());

  std::vector<VmMap*> maps{&map};
  auto pairs1 = CreateSystemShadows(maps, &sim_, nullptr, nullptr);
  ASSERT_EQ(pairs1.size(), 1u);
  // First checkpoint: frozen is the base with no parent; nothing to merge.
  EXPECT_FALSE(CollapseAfterFlush(pairs1[0], maps, true, &sim_));

  uint8_t y = 2;
  ASSERT_TRUE(map.Write(*addr + kPageSize, &y, 1).ok());
  auto pairs2 = CreateSystemShadows(maps, &sim_, nullptr, nullptr);
  ASSERT_EQ(pairs2.size(), 1u);
  // Second checkpoint's frozen shadow shares oid 55 with its parent: merge.
  EXPECT_TRUE(CollapseAfterFlush(pairs2[0], maps, true, &sim_));
  // Contents survive the merge.
  uint8_t back = 0;
  ASSERT_TRUE(map.Read(*addr, &back, 1).ok());
  EXPECT_EQ(back, 1);
  ASSERT_TRUE(map.Read(*addr + kPageSize, &back, 1).ok());
  EXPECT_EQ(back, 2);
}

TEST_F(VmTest, ExcludedEntriesNotShadowed) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(kPageSize);
  auto addr = map.Map(0, kPageSize, kProtRead | kProtWrite, obj, 0, false);
  map.FindEntry(*addr)->exclude_from_checkpoint = true;
  std::vector<VmMap*> maps{&map};
  auto pairs = CreateSystemShadows(maps, &sim_, nullptr, nullptr);
  EXPECT_TRUE(pairs.empty());
}

// Property sweep: repeated write/checkpoint/collapse cycles must always
// reconstruct exactly the bytes written, for several dirty-set sizes.
class ShadowCycleTest : public ::testing::TestWithParam<int> {};

TEST_P(ShadowCycleTest, ContentsStableAcrossCycles) {
  SimContext sim;
  VmMap map(&sim);
  const uint64_t pages = 64;
  auto obj = VmObject::CreateAnonymous(pages * kPageSize);
  obj->set_sls_oid(99);
  auto addr = map.Map(0x1000000, pages * kPageSize, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(addr.ok());
  std::vector<uint8_t> model(pages * kPageSize, 0);
  std::vector<VmMap*> maps{&map};
  Rng rng(GetParam());

  std::vector<ShadowPair> pending;
  for (int cycle = 0; cycle < 8; cycle++) {
    // Random writes.
    for (int w = 0; w < GetParam(); w++) {
      uint64_t off = rng.Below(pages * kPageSize - 8);
      uint64_t val = rng.Next();
      ASSERT_TRUE(map.Write(*addr + off, &val, sizeof(val)).ok());
      std::memcpy(model.data() + off, &val, sizeof(val));
    }
    // Checkpoint cycle: collapse previous, shadow anew.
    for (auto& pair : pending) {
      CollapseAfterFlush(pair, maps, cycle % 2 == 0, &sim);
    }
    pending = CreateSystemShadows(maps, &sim, nullptr, nullptr);
    // Full readback must match the model exactly.
    std::vector<uint8_t> got(pages * kPageSize);
    ASSERT_TRUE(map.Read(*addr, got.data(), got.size()).ok());
    ASSERT_EQ(got, model) << "cycle " << cycle;
  }
}

INSTANTIATE_TEST_SUITE_P(DirtySizes, ShadowCycleTest, ::testing::Values(3, 17, 64, 200));

}  // namespace
}  // namespace aurora
