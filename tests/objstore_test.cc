#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

class ObjStoreTest : public ::testing::Test {
 protected:
  ObjStoreTest() {
    device_ = std::make_unique<MemBlockDevice>(&sim_.clock, (256 * kMiB) / kPageSize);
    store_ = *ObjectStore::Format(device_.get(), &sim_);
  }

  std::vector<uint8_t> Pattern(size_t len, uint8_t seed) {
    std::vector<uint8_t> out(len);
    for (size_t i = 0; i < len; i++) {
      out[i] = static_cast<uint8_t>(seed + i * 31);
    }
    return out;
  }

  SimContext sim_;
  std::unique_ptr<MemBlockDevice> device_;
  std::unique_ptr<ObjectStore> store_;
};

TEST_F(ObjStoreTest, CreateWriteRead) {
  auto oid = *store_->CreateObject(ObjType::kMemory);
  auto data = Pattern(200 * kKiB, 3);
  ASSERT_TRUE(store_->WriteAt(oid, 0, data.data(), data.size()).ok());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(store_->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
  EXPECT_EQ(*store_->SizeOf(oid), data.size());
}

TEST_F(ObjStoreTest, PartialBlockReadModifyWrite) {
  auto oid = *store_->CreateObject(ObjType::kFile);
  auto base = Pattern(store_->block_size(), 1);
  ASSERT_TRUE(store_->WriteAt(oid, 0, base.data(), base.size()).ok());
  // Overwrite 100 bytes in the middle; the rest must survive COW RMW.
  std::vector<uint8_t> patch(100, 0xee);
  ASSERT_TRUE(store_->WriteAt(oid, 1000, patch.data(), patch.size()).ok());
  std::vector<uint8_t> back(base.size());
  ASSERT_TRUE(store_->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(0, std::memcmp(back.data(), base.data(), 1000));
  EXPECT_EQ(back[1000], 0xee);
  EXPECT_EQ(0, std::memcmp(back.data() + 1100, base.data() + 1100, base.size() - 1100));
}

TEST_F(ObjStoreTest, SparseReadsAreZero) {
  auto oid = *store_->CreateObject(ObjType::kMemory);
  auto data = Pattern(kPageSize, 5);
  ASSERT_TRUE(store_->WriteAt(oid, 10 * store_->block_size(), data.data(), data.size()).ok());
  std::vector<uint8_t> back(kPageSize, 0xff);
  ASSERT_TRUE(store_->ReadAt(oid, 0, back.data(), back.size()).ok());
  for (uint8_t b : back) {
    EXPECT_EQ(b, 0);
  }
}

TEST_F(ObjStoreTest, CheckpointHistoryReadable) {
  auto oid = *store_->CreateObject(ObjType::kMemory);
  auto v1 = Pattern(64 * kKiB, 1);
  ASSERT_TRUE(store_->WriteAt(oid, 0, v1.data(), v1.size()).ok());
  auto e1 = store_->current_epoch();
  ASSERT_TRUE(store_->CommitCheckpoint("one").ok());

  auto v2 = Pattern(64 * kKiB, 2);
  ASSERT_TRUE(store_->WriteAt(oid, 0, v2.data(), v2.size()).ok());
  auto e2 = store_->current_epoch();
  ASSERT_TRUE(store_->CommitCheckpoint("two").ok());

  std::vector<uint8_t> back(v1.size());
  ASSERT_TRUE(store_->ReadAtEpoch(e1, oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, v1) << "old checkpoint must keep its contents (COW)";
  ASSERT_TRUE(store_->ReadAtEpoch(e2, oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, v2);
  ASSERT_TRUE(store_->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, v2);
}

TEST_F(ObjStoreTest, RecoveryAfterCleanCommit) {
  auto oid = *store_->CreateObject(ObjType::kFile);
  auto data = Pattern(128 * kKiB, 9);
  ASSERT_TRUE(store_->WriteAt(oid, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(store_->CommitCheckpoint("durable").ok());

  auto reopened = ObjectStore::Open(device_.get(), &sim_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE((*reopened)->Exists(oid));
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE((*reopened)->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
}

TEST_F(ObjStoreTest, UncommittedWritesRollBackOnRecovery) {
  auto oid = *store_->CreateObject(ObjType::kFile);
  auto committed = Pattern(64 * kKiB, 1);
  ASSERT_TRUE(store_->WriteAt(oid, 0, committed.data(), committed.size()).ok());
  ASSERT_TRUE(store_->CommitCheckpoint("good").ok());
  auto uncommitted = Pattern(64 * kKiB, 2);
  ASSERT_TRUE(store_->WriteAt(oid, 0, uncommitted.data(), uncommitted.size()).ok());
  // Crash before commit.
  auto reopened = ObjectStore::Open(device_.get(), &sim_);
  ASSERT_TRUE(reopened.ok());
  std::vector<uint8_t> back(committed.size());
  ASSERT_TRUE((*reopened)->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, committed);
}

TEST_F(ObjStoreTest, DeadlistReclamationFreesSpace) {
  auto oid = *store_->CreateObject(ObjType::kFile);
  auto data = Pattern(4 * kMiB, 1);
  ASSERT_TRUE(store_->WriteAt(oid, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(store_->CommitCheckpoint("a").ok());
  uint64_t free_after_a = store_->FreeBlocks();

  // Overwrite everything: the old blocks are dead but still referenced by
  // checkpoint "a".
  ASSERT_TRUE(store_->WriteAt(oid, 0, data.data(), data.size()).ok());
  uint64_t overwrite_epoch = store_->current_epoch();
  ASSERT_TRUE(store_->CommitCheckpoint("b").ok());
  EXPECT_LT(store_->FreeBlocks(), free_after_a);

  ASSERT_TRUE(store_->DeleteCheckpointsBefore(overwrite_epoch).ok());
  // Dead blocks from the overwrite are reclaimed.
  EXPECT_GE(store_->FreeBlocks() + 8, free_after_a);  // metadata slack allowed
}

TEST_F(ObjStoreTest, SameEpochOverwriteFreesImmediately) {
  auto oid = *store_->CreateObject(ObjType::kFile);
  auto data = Pattern(1 * kMiB, 1);
  ASSERT_TRUE(store_->WriteAt(oid, 0, data.data(), data.size()).ok());
  uint64_t free1 = store_->FreeBlocks();
  // Overwriting within the same uncommitted epoch cannot leak blocks.
  for (int i = 0; i < 5; i++) {
    ASSERT_TRUE(store_->WriteAt(oid, 0, data.data(), data.size()).ok());
  }
  EXPECT_EQ(store_->FreeBlocks(), free1);
}

TEST_F(ObjStoreTest, DeleteObjectThenRecoverEarlierEpoch) {
  auto oid = *store_->CreateObject(ObjType::kManifest);
  auto data = Pattern(64 * kKiB, 4);
  ASSERT_TRUE(store_->WriteAt(oid, 0, data.data(), data.size()).ok());
  uint64_t e = store_->current_epoch();
  ASSERT_TRUE(store_->CommitCheckpoint("with-object").ok());
  ASSERT_TRUE(store_->DeleteObject(oid).ok());
  ASSERT_TRUE(store_->CommitCheckpoint("without-object").ok());

  EXPECT_FALSE(store_->Exists(oid));
  // But it is still readable at the earlier checkpoint.
  auto exists = store_->ExistsAtEpoch(e, oid);
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(store_->ReadAtEpoch(e, oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
}

TEST_F(ObjStoreTest, JournalAppendReplay) {
  auto j = *store_->CreateJournal(1 * kMiB);
  for (int i = 0; i < 10; i++) {
    std::string rec = "record-" + std::to_string(i);
    ASSERT_TRUE(store_->JournalAppend(j, rec.data(), rec.size()).ok());
  }
  auto records = store_->JournalReplay(j);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 10u);
  EXPECT_EQ(std::string((*records)[7].begin(), (*records)[7].end()), "record-7");
}

TEST_F(ObjStoreTest, JournalLatencyMatchesPaper) {
  auto j = *store_->CreateJournal(64 * kMiB);
  std::vector<uint8_t> page(4 * kKiB, 0xab);
  SimTime t0 = sim_.clock.now();
  ASSERT_TRUE(store_->JournalAppend(j, page.data(), page.size()).ok());
  double micros = ToMicros(sim_.clock.now() - t0);
  // Paper section 7: a synchronous 4 KiB journal append takes 28 us.
  EXPECT_NEAR(micros, 28.0, 3.0);
}

TEST_F(ObjStoreTest, JournalResetAfterCommitDropsOldRecords) {
  auto j = *store_->CreateJournal(1 * kMiB);
  ASSERT_TRUE(store_->JournalAppend(j, "old", 3).ok());
  ASSERT_TRUE(store_->CommitCheckpoint("ckpt").ok());
  ASSERT_TRUE(store_->JournalReset(j).ok());
  ASSERT_TRUE(store_->JournalAppend(j, "new", 3).ok());
  auto records = store_->JournalReplay(j);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ(std::string((*records)[0].begin(), (*records)[0].end()), "new");
}

TEST_F(ObjStoreTest, JournalSurvivesReopen) {
  auto j = *store_->CreateJournal(1 * kMiB);
  ASSERT_TRUE(store_->CommitCheckpoint("journal-created").ok());
  ASSERT_TRUE(store_->JournalAppend(j, "alpha", 5).ok());
  ASSERT_TRUE(store_->JournalAppend(j, "beta", 4).ok());
  // Crash without a commit: journal data is non-COW and independently
  // durable — this is the whole point of sls_journal.
  auto reopened = ObjectStore::Open(device_.get(), &sim_);
  ASSERT_TRUE(reopened.ok());
  auto records = (*reopened)->JournalReplay(j);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ(std::string((*records)[1].begin(), (*records)[1].end()), "beta");
  // And the write offset recovered: further appends continue the sequence.
  ASSERT_TRUE((*reopened)->JournalAppend(j, "gamma", 5).ok());
  records = (*reopened)->JournalReplay(j);
  ASSERT_EQ(records->size(), 3u);
}

TEST_F(ObjStoreTest, JournalFullReported) {
  auto j = *store_->CreateJournal(64 * kKiB);
  std::vector<uint8_t> big(32 * kKiB, 1);
  // 32 KiB + header pads to 36 KiB; 16 KiB + header pads to 20 KiB; the
  // third append cannot fit in the remaining 8 KiB.
  ASSERT_TRUE(store_->JournalAppend(j, big.data(), big.size()).ok());
  ASSERT_TRUE(store_->JournalAppend(j, big.data(), 16 * kKiB).ok());
  EXPECT_EQ(store_->JournalAppend(j, big.data(), big.size()).code(), Errc::kNoSpace);
}

TEST_F(ObjStoreTest, PrunedEpochEvictsCachedTable) {
  auto oid = *store_->CreateObject(ObjType::kMemory);
  auto v1 = Pattern(64 * kKiB, 1);
  ASSERT_TRUE(store_->WriteAt(oid, 0, v1.data(), v1.size()).ok());
  uint64_t e1 = store_->current_epoch();
  ASSERT_TRUE(store_->CommitCheckpoint("one").ok());

  auto v2 = Pattern(64 * kKiB, 2);
  ASSERT_TRUE(store_->WriteAt(oid, 0, v2.data(), v2.size()).ok());
  uint64_t e2 = store_->current_epoch();
  ASSERT_TRUE(store_->CommitCheckpoint("two").ok());

  // Warm the epoch cache for both checkpoints.
  std::vector<uint8_t> back(v1.size());
  ASSERT_TRUE(store_->ReadAtEpoch(e1, oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, v1);
  ASSERT_TRUE(store_->ReadAtEpoch(e2, oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, v2);

  ASSERT_TRUE(store_->DeleteCheckpointsBefore(e2).ok());

  // The pruned epoch must report kNotFound, never serve the stale cached
  // table (its blocks may already be reallocated).
  EXPECT_EQ(store_->ReadAtEpoch(e1, oid, 0, back.data(), back.size()).code(), Errc::kNotFound);
  EXPECT_EQ(store_->ExistsAtEpoch(e1, oid).status().code(), Errc::kNotFound);
  // The surviving checkpoint stays readable.
  ASSERT_TRUE(store_->ReadAtEpoch(e2, oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, v2);
}

// Crash-injection property: arm the device fuse at every write count within
// a commit window; recovery must always land on a consistent checkpoint
// (either the old or — if the superblock made it — the new one).
class TornWriteTest : public ::testing::TestWithParam<int> {};

TEST_P(TornWriteTest, RecoveryAlwaysConsistent) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, (64 * kMiB) / kPageSize);
  auto store = *ObjectStore::Format(&device, &sim);

  auto oid = *store->CreateObject(ObjType::kFile);
  std::vector<uint8_t> v1(128 * kKiB, 0x11);
  ASSERT_TRUE(store->WriteAt(oid, 0, v1.data(), v1.size()).ok());
  ASSERT_TRUE(store->CommitCheckpoint("v1").ok());

  std::vector<uint8_t> v2(128 * kKiB, 0x22);
  ASSERT_TRUE(store->WriteAt(oid, 0, v2.data(), v2.size()).ok());
  // Crash after N more block writes during the second commit.
  device.CrashAfterWrites(static_cast<uint64_t>(GetParam()));
  (void)store->CommitCheckpoint("v2");  // may or may not land
  device.DisarmCrash();

  auto reopened = ObjectStore::Open(&device, &sim);
  ASSERT_TRUE(reopened.ok()) << "no valid checkpoint after crash at write " << GetParam();
  std::vector<uint8_t> back(v1.size());
  ASSERT_TRUE((*reopened)->ReadAt(oid, 0, back.data(), back.size()).ok());
  bool is_v1 = back == v1;
  bool is_v2 = back == v2;
  EXPECT_TRUE(is_v1 || is_v2) << "recovered to a torn state at write " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(CrashPoints, TornWriteTest, ::testing::Range(0, 24));

}  // namespace
}  // namespace aurora
