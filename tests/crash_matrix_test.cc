// Crash matrix: sweep a power-loss crash over EVERY device write of a
// deterministic two-checkpoint object-store workload, then mount and check
// that the store always recovers to a checksummed prefix epoch — the exact
// state of some committed checkpoint, never a torn mixture.
//
// The 8 KiB store-block configuration regression-tests the superblock-ring
// reservation bug: the ring spans kSuperSlots device blocks, and with store
// blocks smaller than that the allocator used to hand out store blocks 1..3
// inside the ring, letting later superblock commits overwrite committed
// data and metadata.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/sim_context.h"
#include "src/objstore/object_store.h"
#include "src/objstore/segment_gc.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

std::vector<uint8_t> Pattern(size_t len, uint8_t seed) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; i++) {
    out[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return out;
}

struct Workload {
  // Store-block geometry under test.
  uint32_t store_block;

  // Fixed shapes, derived from the geometry so both configs cover multiple
  // blocks per object.
  std::vector<uint8_t> a;  // obj1 contents at checkpoint c1
  std::vector<uint8_t> b;  // obj1 overwrite, committed at c2
  std::vector<uint8_t> c;  // obj2 contents, committed at c2
  std::vector<std::vector<uint8_t>> records;  // journal appends (4 pre-c1, 3 post-c1)

  explicit Workload(uint32_t block_size) : store_block(block_size) {
    a = Pattern(3 * store_block, 1);
    b = Pattern(2 * store_block, 2);
    c = Pattern(store_block + 100, 3);
    for (int i = 0; i < 7; i++) {
      records.push_back(Pattern(120 + 10 * static_cast<size_t>(i), static_cast<uint8_t>(10 + i)));
    }
  }

  struct Ids {
    Oid obj1 = kInvalidOid;
    Oid obj2 = kInvalidOid;
    Oid journal = kInvalidOid;
  };

  // Runs the whole workload against a fresh device. Post-crash the device
  // silently drops writes, so this always completes; stage write counts are
  // only meaningful on an un-crashed run. Returns the oids used.
  Ids Run(MemBlockDevice* device, SimContext* sim, uint64_t* writes_after_format,
          uint64_t* writes_after_c1) const {
    StoreOptions options;
    options.block_size = store_block;
    auto store = *ObjectStore::Format(device, sim, options);
    if (writes_after_format != nullptr) {
      *writes_after_format = device->stats().writes;
    }

    Ids ids;
    ids.obj1 = *store->CreateObject(ObjType::kMemory);
    EXPECT_TRUE(store->WriteAt(ids.obj1, 0, a.data(), a.size()).ok());
    ids.journal = *store->CreateJournal(64 * kKiB);
    for (int i = 0; i < 4; i++) {
      EXPECT_TRUE(store->JournalAppend(ids.journal, records[i].data(), records[i].size()).ok());
    }
    (void)store->CommitCheckpoint("c1");
    if (writes_after_c1 != nullptr) {
      *writes_after_c1 = device->stats().writes;
    }

    EXPECT_TRUE(store->WriteAt(ids.obj1, 0, b.data(), b.size()).ok());
    ids.obj2 = *store->CreateObject(ObjType::kMemory);
    EXPECT_TRUE(store->WriteAt(ids.obj2, 0, c.data(), c.size()).ok());
    for (int i = 4; i < 7; i++) {
      EXPECT_TRUE(store->JournalAppend(ids.journal, records[i].data(), records[i].size()).ok());
    }
    (void)store->CommitCheckpoint("c2");
    return ids;
  }
};

// Reads `len` bytes of `oid` and compares against `want`; the prefix of
// `over` (if non-empty) must NOT be visible (no torn mixing).
void ExpectContents(ObjectStore* store, Oid oid, const std::vector<uint8_t>& want) {
  std::vector<uint8_t> back(want.size());
  ASSERT_TRUE(store->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, want) << "recovered object contents are not the committed epoch's";
}

void SweepCrashMatrix(uint32_t store_block) {
  const Workload w(store_block);
  const uint64_t device_blocks = (64 * kMiB) / kPageSize;

  // Un-crashed reference run: stage boundaries in device-write counts.
  uint64_t format_writes = 0;
  uint64_t c1_writes = 0;
  uint64_t total_writes = 0;
  {
    SimContext sim;
    MemBlockDevice device(&sim.clock, device_blocks);
    w.Run(&device, &sim, &format_writes, &c1_writes);
    total_writes = device.stats().writes;
    // Sanity: the reference run must recover to c2 with everything intact.
    auto reopened = ObjectStore::Open(&device, &sim);
    ASSERT_TRUE(reopened.ok());
  }
  ASSERT_GT(format_writes, 0u);
  ASSERT_GT(c1_writes, format_writes);
  ASSERT_GT(total_writes, c1_writes);

  for (uint64_t n = 0; n <= total_writes; n++) {
    SimContext sim;
    MemBlockDevice device(&sim.clock, device_blocks);
    device.CrashAfterWrites(n);
    Workload::Ids ids = w.Run(&device, &sim, nullptr, nullptr);
    EXPECT_EQ(device.crashed(), n < total_writes) << "crash fuse did not fire at write " << n;
    device.DisarmCrash();

    auto reopened = ObjectStore::Open(&device, &sim);
    if (n < format_writes) {
      // Power was lost before the store ever committed; both outcomes —
      // mount failure or recovery to the empty formatted store — are sound.
      if (!reopened.ok()) {
        continue;
      }
    } else {
      ASSERT_TRUE(reopened.ok()) << "store unmountable after crash at write " << n
                                 << " (c1 committed at " << c1_writes << ")";
    }
    ObjectStore* store = reopened->get();

    // Which epoch did we land on? Identify it by checkpoint name, then hold
    // recovery to that epoch's exact contents.
    bool has_c1 = false;
    bool has_c2 = false;
    for (const CheckpointInfo& ckpt : store->ListCheckpoints()) {
      has_c1 |= ckpt.name == "c1";
      has_c2 |= ckpt.name == "c2";
    }
    if (n >= total_writes) {
      EXPECT_TRUE(has_c2) << "clean run must recover the last checkpoint";
    }
    if (n >= c1_writes) {
      // c1 was fully durable before the crash: recovery may never fall
      // below it (this is what the superblock-ring bug violated).
      EXPECT_TRUE(has_c1 || has_c2)
          << "durable checkpoint c1 lost by crash at write " << n;
    }

    if (has_c2) {
      ExpectContents(store, ids.obj1, w.b);
      ExpectContents(store, ids.obj2, w.c);
    } else if (has_c1) {
      ExpectContents(store, ids.obj1, w.a);
      // obj2 was created after c1; it must not exist at this epoch.
      std::vector<uint8_t> buf(16);
      EXPECT_FALSE(store->ReadAt(ids.obj2, 0, buf.data(), buf.size()).ok())
          << "object from an uncommitted epoch visible after recovery";
    }

    // The journal is synchronously durable: replay must return a prefix of
    // the appended records (a torn tail record is discarded, never mixed).
    if (has_c1 || has_c2) {
      auto replayed = store->JournalReplay(ids.journal);
      ASSERT_TRUE(replayed.ok());
      ASSERT_LE(replayed->size(), w.records.size());
      for (size_t i = 0; i < replayed->size(); i++) {
        EXPECT_EQ((*replayed)[i], w.records[i]) << "journal record " << i << " corrupted";
      }
      if (n >= total_writes) {
        EXPECT_EQ(replayed->size(), w.records.size());
      }
    }
  }
}

TEST(CrashMatrix, EveryCrashPointRecoversPaperGeometry) {
  SweepCrashMatrix(64 * 1024);  // the paper's 64 KiB store blocks
}

TEST(CrashMatrix, EveryCrashPointRecoversSmallBlockGeometry) {
  // Store blocks (8 KiB) smaller than the kSuperSlots-device-block
  // superblock ring: regression for the ring reservation fix.
  SweepCrashMatrix(8 * 1024);
}

// Crash-during-compaction sweep: a workload that ends with a retention prune,
// a full GC pass (every sealed segment evacuated) and a sealing commit, with
// the power-loss fuse swept over EVERY device write — including each
// compaction copy. Recovery must always land on an exact committed image:
// before the post-GC commit that means the pre-GC block locations (zombies
// are still intact), after it the relocated ones.
TEST(CrashMatrix, EveryCrashPointDuringCompactionRecoversExactImage) {
  const uint32_t bs = 8 * 1024;
  const uint64_t device_blocks = (64 * kMiB) / kPageSize;
  const std::vector<uint8_t> a = Pattern(4 * bs, 1);     // obj1 at c1
  const std::vector<uint8_t> head = Pattern(2 * bs, 2);  // c2 overwrites blocks 0-1
  const std::vector<uint8_t> b = Pattern(4 * bs, 3);     // obj2, deleted at c2
  // obj1 from c2 on: rewritten head, surviving tail. The tail blocks stay
  // live inside an otherwise-dead sealed segment — exactly what GC relocates.
  std::vector<uint8_t> a2 = head;
  a2.insert(a2.end(), a.begin() + 2 * bs, a.end());

  struct Ids {
    Oid obj1 = kInvalidOid;
    Oid obj2 = kInvalidOid;
  };
  auto run = [&](MemBlockDevice* device, SimContext* sim) {
    StoreOptions options;
    options.block_size = bs;
    options.layout = StoreLayout::kSegmentLog;
    options.segment_blocks = 8;
    auto store = *ObjectStore::Format(device, sim, options);

    Ids ids;
    ids.obj1 = *store->CreateObject(ObjType::kMemory);
    EXPECT_TRUE(store->WriteAt(ids.obj1, 0, a.data(), a.size()).ok());
    ids.obj2 = *store->CreateObject(ObjType::kMemory);
    EXPECT_TRUE(store->WriteAt(ids.obj2, 0, b.data(), b.size()).ok());
    (void)store->CommitCheckpoint("c1");

    EXPECT_TRUE(store->WriteAt(ids.obj1, 0, head.data(), head.size()).ok());
    (void)store->DeleteObject(ids.obj2);
    (void)store->CommitCheckpoint("c2");

    // Retention prune: drop c1 and free its deadlists, leaving the sealed
    // segments partially dead; then compact everything that still lives.
    uint64_t c2_epoch = store->ListCheckpoints().back().epoch;
    (void)store->DeleteCheckpointsBefore(c2_epoch);
    GcConfig config;
    config.utilization_threshold = 1.1;  // every sealed segment is a victim
    SegmentGc gc(store.get(), config);
    auto report = gc.Run();
    EXPECT_TRUE(report.ok());
    (void)store->CommitCheckpoint("c3");
    return ids;
  };

  // Reference run: the compactor must actually move blocks or the sweep
  // proves nothing.
  uint64_t total_writes = 0;
  {
    SimContext sim;
    MemBlockDevice device(&sim.clock, device_blocks);
    run(&device, &sim);
    total_writes = device.stats().writes;
    EXPECT_GE(sim.metrics.counter("gc.blocks_relocated").value(), 2u)
        << "workload produced no relocations; the crash sweep has no teeth";
  }

  for (uint64_t n = 0; n <= total_writes; n++) {
    SCOPED_TRACE(testing::Message() << "crash at write " << n << " of " << total_writes);
    SimContext sim;
    MemBlockDevice device(&sim.clock, device_blocks);
    device.CrashAfterWrites(n);
    Ids ids = run(&device, &sim);
    device.DisarmCrash();

    auto reopened = ObjectStore::Open(&device, &sim);
    if (!reopened.ok()) {
      // Sound only while the very first commit was still in flight.
      EXPECT_LT(n, total_writes) << "clean run failed to mount";
      continue;
    }
    ObjectStore* store = reopened->get();
    bool has_c1 = false;
    bool has_c2 = false;
    bool has_c3 = false;
    for (const CheckpointInfo& ckpt : store->ListCheckpoints()) {
      has_c1 |= ckpt.name == "c1";
      has_c2 |= ckpt.name == "c2";
      has_c3 |= ckpt.name == "c3";
    }
    if (n >= total_writes) {
      EXPECT_TRUE(has_c3) << "clean run must recover the post-GC checkpoint";
    }
    if (has_c2 || has_c3) {
      // From c2 on — crucially, from every fuse point inside the GC pass —
      // obj1 must read back byte-identical and obj2 must stay deleted.
      ExpectContents(store, ids.obj1, a2);
      std::vector<uint8_t> buf(16);
      EXPECT_FALSE(store->ReadAt(ids.obj2, 0, buf.data(), buf.size()).ok())
          << "deleted object resurfaced after crash at write " << n;
    } else if (has_c1) {
      ExpectContents(store, ids.obj1, a);
      ExpectContents(store, ids.obj2, b);
    }
  }
}

TEST(CrashMatrix, SuperblockRingCyclingDoesNotTrampleData) {
  // The superblock ring reservation bug needs no crash at all: with 8 KiB
  // store blocks the ring's 8 device blocks span store blocks 0..3, and the
  // unfixed allocator handed blocks 1..3 to the first object. Once the epoch
  // counter cycles all the way around the ring (8 commits), the superblock
  // for epoch e lands on device block e % 8 — straight through the middle of
  // that object's committed data.
  SimContext sim;
  MemBlockDevice device(&sim.clock, (64 * kMiB) / kPageSize);
  StoreOptions options;
  options.block_size = 8 * 1024;
  auto store = *ObjectStore::Format(&device, &sim, options);

  Oid oid = *store->CreateObject(ObjType::kMemory);
  std::vector<uint8_t> data = Pattern(4 * options.block_size, 9);
  ASSERT_TRUE(store->WriteAt(oid, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(store->CommitCheckpoint("base").ok());

  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(store->CommitCheckpoint("pad" + std::to_string(i)).ok());
  }

  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(store->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data) << "superblock ring cycled over committed object data";

  // And the store must still mount to the same contents after a reboot.
  auto reopened = ObjectStore::Open(&device, &sim);
  ASSERT_TRUE(reopened.ok());
  std::fill(back.begin(), back.end(), 0);
  ASSERT_TRUE((*reopened)->ReadAt(oid, 0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
}

}  // namespace
}  // namespace aurora
