#include <gtest/gtest.h>

#include <cstring>

#include "src/base/sim_context.h"
#include "src/fs/aurora_fs.h"
#include "src/fs/baseline_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

class AuroraFsTest : public ::testing::Test {
 protected:
  AuroraFsTest() {
    device_ = std::make_unique<MemBlockDevice>(&sim_.clock, (256 * kMiB) / kPageSize);
    store_ = *ObjectStore::Format(device_.get(), &sim_);
    fs_ = std::make_unique<AuroraFs>(&sim_, store_.get());
  }

  SimContext sim_;
  std::unique_ptr<MemBlockDevice> device_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<AuroraFs> fs_;
};

TEST_F(AuroraFsTest, CreateWriteRead) {
  auto vn = *fs_->Create("data.bin");
  std::vector<uint8_t> data(100 * kKiB);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(i);
  }
  ASSERT_TRUE(vn->Write(0, data.data(), data.size()).ok());
  EXPECT_EQ(vn->size(), data.size());
  std::vector<uint8_t> back(data.size());
  auto n = vn->Read(0, back.data(), back.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(back, data);
}

TEST_F(AuroraFsTest, ReadPastEofTruncated) {
  auto vn = *fs_->Create("short");
  ASSERT_TRUE(vn->Write(0, "abc", 3).ok());
  char buf[16];
  auto n = vn->Read(1, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  auto zero = vn->Read(100, buf, sizeof(buf));
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(*zero, 0u);
}

TEST_F(AuroraFsTest, LookupByInoFindsFile) {
  auto vn = *fs_->Create("x");
  auto by_ino = fs_->LookupByIno(vn->ino());
  ASSERT_TRUE(by_ino.ok());
  EXPECT_EQ(by_ino->get(), vn.get());
  EXPECT_EQ(*fs_->PathOfIno(vn->ino()), "x");
}

TEST_F(AuroraFsTest, AnonymousFilesRetainedWhileReferenced) {
  auto vn = *fs_->Create("tmpfile");
  ASSERT_TRUE(vn->Write(0, "precious", 8).ok());
  vn->AddHiddenRef();  // an open descriptor
  ASSERT_TRUE(fs_->Unlink("tmpfile").ok());
  EXPECT_FALSE(fs_->Lookup("tmpfile").ok());
  // Still reachable by inode: data survives.
  auto by_ino = fs_->LookupByIno(vn->ino());
  ASSERT_TRUE(by_ino.ok());
  char buf[8];
  ASSERT_TRUE((*by_ino)->Read(0, buf, 8).ok());
  EXPECT_EQ(0, std::memcmp(buf, "precious", 8));
  // PathOfIno reports it as anonymous.
  EXPECT_FALSE(fs_->PathOfIno(vn->ino()).ok());
  // Dropping the last hidden reference reclaims it.
  vn->DropHiddenRef();
  ASSERT_TRUE(fs_->Unlink("nonexistent").code() == Errc::kNotFound);
}

TEST_F(AuroraFsTest, FsyncIsNoOpUnderCheckpointConsistency) {
  auto vn = *fs_->Create("log");
  std::vector<uint8_t> data(1 * kMiB, 0x42);
  ASSERT_TRUE(vn->Write(0, data.data(), data.size()).ok());
  SimTime t0 = sim_.clock.now();
  ASSERT_TRUE(vn->Fsync().ok());
  EXPECT_LT(sim_.clock.now() - t0, kMicrosecond) << "fsync must not do IO";
  EXPECT_GT(fs_->DirtyBytes(), 0u) << "data still dirty; the checkpoint flushes it";
}

TEST_F(AuroraFsTest, FlushPersistsThroughStoreCheckpoint) {
  auto vn = *fs_->Create("db");
  std::vector<uint8_t> data(300 * kKiB, 0x5c);
  ASSERT_TRUE(vn->Write(0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs_->FlushAll().ok());
  EXPECT_EQ(fs_->DirtyBytes(), 0u);
  ASSERT_TRUE(store_->CommitCheckpoint("fs-flush").ok());

  // Crash + reopen: rebuild the FS over the recovered store and read back
  // through a fresh vnode registered at the same inode.
  auto store2 = *ObjectStore::Open(device_.get(), &sim_);
  AuroraFs fs2(&sim_, store2.get());
  auto vn2 = *fs2.RegisterAnonymousIno(vn->ino());
  vn2->set_size(data.size());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(vn2->Read(0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
}

TEST_F(AuroraFsTest, NamespacePersistAndRestore) {
  auto a = *fs_->Create("alpha");
  ASSERT_TRUE(a->Write(0, "AAAA", 4).ok());
  auto b = *fs_->Create("beta");
  ASSERT_TRUE(b->Write(0, "BB", 2).ok());
  ASSERT_TRUE(fs_->FlushAll().ok());
  auto ns = *fs_->PersistNamespace();
  uint64_t epoch = store_->current_epoch();
  ASSERT_TRUE(store_->CommitCheckpoint("ns").ok());

  auto store2 = *ObjectStore::Open(device_.get(), &sim_);
  AuroraFs fs2(&sim_, store2.get());
  ASSERT_TRUE(fs2.RestoreNamespace(epoch, ns).ok());
  auto ra = fs2.Lookup("alpha");
  ASSERT_TRUE(ra.ok());
  char buf[4];
  ASSERT_TRUE((*ra)->Read(0, buf, 4).ok());
  EXPECT_EQ(0, std::memcmp(buf, "AAAA", 4));
  EXPECT_TRUE(fs2.Lookup("beta").ok());
}

TEST_F(AuroraFsTest, TruncateDropsTail) {
  auto vn = *fs_->Create("t");
  std::vector<uint8_t> data(128 * kKiB, 0x7);
  ASSERT_TRUE(vn->Write(0, data.data(), data.size()).ok());
  ASSERT_TRUE(vn->Truncate(10).ok());
  EXPECT_EQ(vn->size(), 10u);
  char buf[16];
  auto n = vn->Read(0, buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
}

TEST_F(AuroraFsTest, MmapPagerReadsFileData) {
  auto vn = *fs_->Create("lib.so");
  std::vector<uint8_t> data(3 * kPageSize);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(i / kPageSize + 1);
  }
  ASSERT_TRUE(vn->Write(0, data.data(), data.size()).ok());
  auto obj = vn->MakeVmObject();
  EXPECT_EQ(obj->backing_ino(), vn->ino());
  auto found = obj->LookupChain(1);
  ASSERT_NE(found.page, nullptr);
  EXPECT_EQ(found.page->data[0], 2);
}

// --- Baseline file systems -----------------------------------------------------

class BaselineFsTest : public ::testing::Test {
 protected:
  BaselineFsTest() : device_(&sim_.clock, (256 * kMiB) / kPageSize) {}
  SimContext sim_;
  MemBlockDevice device_;
};

TEST_F(BaselineFsTest, FfsRoundTrip) {
  FfsLikeFs fs(&sim_, &device_, 64 * kKiB);
  auto vn = *fs.Create("f");
  std::vector<uint8_t> data(200 * kKiB, 0x3c);
  ASSERT_TRUE(vn->Write(0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs.FlushAll().ok());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(vn->Read(0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
}

TEST_F(BaselineFsTest, ZfsRoundTripWithChecksums) {
  ZfsLikeFs fs(&sim_, &device_, 64 * kKiB, /*checksums=*/true);
  auto vn = *fs.Create("f");
  std::vector<uint8_t> data(200 * kKiB, 0x3c);
  ASSERT_TRUE(vn->Write(0, data.data(), data.size()).ok());
  ASSERT_TRUE(fs.FlushAll().ok());
  std::vector<uint8_t> back(data.size());
  ASSERT_TRUE(vn->Read(0, back.data(), back.size()).ok());
  EXPECT_EQ(back, data);
}

TEST_F(BaselineFsTest, FsyncCostOrdering) {
  // Aurora's fsync is free; FFS pays a journal write; ZFS pays a ZIL write
  // covering the dirty bytes. This ordering drives Fig. 3c/d.
  MemBlockDevice dev2(&sim_.clock, (256 * kMiB) / kPageSize);
  auto store = *ObjectStore::Format(&dev2, &sim_);
  AuroraFs aurora(&sim_, store.get());
  FfsLikeFs ffs(&sim_, &device_, 64 * kKiB);
  ZfsLikeFs zfs(&sim_, &device_, 64 * kKiB, true);

  auto time_fsync = [&](Filesystem& fs) {
    auto vn = *fs.Create("f");
    std::vector<uint8_t> data(64 * kKiB, 1);
    EXPECT_TRUE(vn->Write(0, data.data(), data.size()).ok());
    SimTime t0 = sim_.clock.now();
    EXPECT_TRUE(vn->Fsync().ok());
    return sim_.clock.now() - t0;
  };
  SimDuration t_aurora = time_fsync(aurora);
  SimDuration t_ffs = time_fsync(ffs);
  SimDuration t_zfs = time_fsync(zfs);
  EXPECT_LT(t_aurora, t_ffs);
  EXPECT_LT(t_ffs, t_zfs);
}

TEST_F(BaselineFsTest, ConventionalFsDropsAnonymousFiles) {
  FfsLikeFs fs(&sim_, &device_, 64 * kKiB);
  auto vn = *fs.Create("tmp");
  vn->AddHiddenRef();
  ASSERT_TRUE(fs.Unlink("tmp").ok());
  // Unlike AuroraFS, the conventional FS reclaims it despite the open ref.
  EXPECT_FALSE(fs.LookupByIno(vn->ino()).ok());
}

TEST_F(BaselineFsTest, SmallWriteCostFfsBeatsZfs) {
  FfsLikeFs ffs(&sim_, &device_, 64 * kKiB);
  ZfsLikeFs zfs(&sim_, &device_, 64 * kKiB, true);
  auto vf = *ffs.Create("a");
  auto vz = *zfs.Create("a");
  std::vector<uint8_t> four_k(4 * kKiB, 1);

  SimTime t0 = sim_.clock.now();
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(vf->Write(static_cast<uint64_t>(i) * 4 * kKiB, four_k.data(), four_k.size()).ok());
  }
  SimDuration ffs_time = sim_.clock.now() - t0;
  t0 = sim_.clock.now();
  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(vz->Write(static_cast<uint64_t>(i) * 4 * kKiB, four_k.data(), four_k.size()).ok());
  }
  SimDuration zfs_time = sim_.clock.now() - t0;
  EXPECT_LT(ffs_time, zfs_time);
}

}  // namespace
}  // namespace aurora
