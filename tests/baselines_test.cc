#include <gtest/gtest.h>

#include "src/apps/redis_like.h"
#include "src/base/sim_context.h"
#include "src/baselines/criu_like.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

class CriuTest : public ::testing::Test {
 protected:
  CriuTest()
      : device_(&sim_.clock, (4 * kGiB) / kPageSize), kernel_(&sim_),
        criu_(&sim_, &kernel_, &device_) {}
  SimContext sim_;
  MemBlockDevice device_;
  Kernel kernel_;
  CriuLike criu_;
};

TEST_F(CriuTest, StopTimeScalesWithMemory) {
  RedisLike small(&sim_, &kernel_, 2000, 496);
  auto small_dump = *criu_.Checkpoint({small.process()});
  RedisLike big(&sim_, &kernel_, 20000, 496);
  auto big_dump = *criu_.Checkpoint({big.process()});
  // Process-centric stop-the-world copy: stop time tracks the footprint.
  EXPECT_GT(big_dump.memory_copy_time, small_dump.memory_copy_time * 5);
  EXPECT_GT(big_dump.total_stop_time, small_dump.total_stop_time * 3);
}

TEST_F(CriuTest, SharingInferenceIsQuadratic) {
  // Two processes with many descriptors each: every new fd is kcmp'd
  // against everything seen, so comparisons grow quadratically.
  auto make_proc = [&](int nfds) {
    Process* p = *kernel_.CreateProcess("fds");
    for (int i = 0; i < nfds; i++) {
      (void)kernel_.MakePipe(*p);
    }
    return p;
  };
  Process* few = make_proc(8);
  auto few_dump = *criu_.Checkpoint({few});
  Process* many = make_proc(64);
  auto many_dump = *criu_.Checkpoint({many});
  double ratio = static_cast<double>(many_dump.sharing_comparisons) /
                 static_cast<double>(std::max<uint64_t>(few_dump.sharing_comparisons, 1));
  EXPECT_GT(ratio, 10.0) << "fd-sharing inference must scale superlinearly";
}

TEST_F(CriuTest, ApplicationResumesAfterDump) {
  RedisLike redis(&sim_, &kernel_, 1000, 100);
  ASSERT_TRUE(redis.Set(5, 0x42).ok());
  auto dump = *criu_.Checkpoint({redis.process()});
  EXPECT_GT(dump.image_bytes, redis.dataset_bytes() / 2);
  // The application is resumed (not left frozen).
  for (auto& t : redis.process()->threads()) {
    EXPECT_NE(t->state, ThreadState::kStopped);
  }
  EXPECT_EQ(*redis.Get(5), 0x42);
}

TEST_F(CriuTest, MemoryCopyHappensWhileStopped) {
  // The defining contrast with Aurora: CRIU's memory copy is inside the
  // stop window, so total stop ~ os_state + memory_copy.
  RedisLike redis(&sim_, &kernel_, 50000, 496);
  auto dump = *criu_.Checkpoint({redis.process()});
  EXPECT_GE(dump.total_stop_time + kMicrosecond,
            dump.os_state_time + dump.memory_copy_time);
  EXPECT_GT(dump.memory_copy_time, dump.os_state_time)
      << "memory dominates for a data-heavy process";
}

TEST_F(CriuTest, TreeDumpCoversChildren) {
  Process* parent = *kernel_.CreateProcess("tree");
  auto obj = VmObject::CreateAnonymous(8 * kMiB);
  uint64_t addr = *parent->vm().Map(0x400000, 8 * kMiB, kProtRead | kProtWrite, obj, 0, true);
  (void)parent->vm().DirtyRange(addr, 8 * kMiB);
  Process* child = *kernel_.Fork(*parent);
  (void)child;
  auto solo = *criu_.Checkpoint({parent});
  auto tree = *criu_.Checkpoint({parent, child});
  EXPECT_GT(tree.objects_queried, solo.objects_queried);
  EXPECT_GE(tree.image_bytes, solo.image_bytes);
}

}  // namespace
}  // namespace aurora
