// Segment-log GC: online compaction reclaims dead space without ever
// changing what any retained epoch reads back, scrub and GC agree on block
// integrity, pacing bounds GC I/O, and the Sls-level retention policy drives
// the whole loop (DESIGN.md section 16).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/objstore/scrubber.h"
#include "src/objstore/segment_gc.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

constexpr uint32_t kBlock = 8 * 1024;
constexpr uint64_t kDeviceBlocks = (64 * kMiB) / kPageSize;

std::vector<uint8_t> Pattern(size_t len, uint8_t seed) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; i++) {
    out[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return out;
}

StoreOptions SmallSegments(StoreLayout layout = StoreLayout::kSegmentLog) {
  StoreOptions options;
  options.block_size = kBlock;
  options.layout = layout;
  options.segment_blocks = 8;
  return options;
}

// Overwrite-heavy churn: each round rewrites the same logical blocks of one
// object, commits, and prunes history down to `keep` epochs. With the
// compactor running, space must stay flat; without it, sealed segments pile
// up dead.
struct Churn {
  SimContext sim;
  MemBlockDevice device{&sim.clock, kDeviceBlocks};
  std::unique_ptr<ObjectStore> store;
  Oid oid = kInvalidOid;

  explicit Churn(StoreOptions options) {
    store = *ObjectStore::Format(&device, &sim, options);
    oid = *store->CreateObject(ObjType::kMemory);
  }

  // Hot/cold churn. Each round rewrites every hot block plus ONE cold block,
  // so each appended segment holds mostly soon-dead hot copies around a
  // long-lived cold copy. Fully-dead segments are reclaimed inline by the
  // store; these mixed ones pin a segment with a few live blocks — exactly
  // the space only relocation can recover.
  static constexpr uint64_t kColdBlocks = 24;
  static constexpr uint64_t kHotBlocks = 7;

  void Round(int round, uint64_t keep) {
    auto put = [&](uint64_t block) {
      std::vector<uint8_t> data =
          Pattern(kBlock, static_cast<uint8_t>(round * 37 + static_cast<int>(block)));
      ASSERT_TRUE(store->WriteAt(oid, block * kBlock, data.data(), data.size()).ok());
    };
    for (uint64_t h = 0; h < kHotBlocks; h++) {
      put(kColdBlocks + h);
    }
    put(static_cast<uint64_t>(round) % kColdBlocks);
    ASSERT_TRUE(store->CommitCheckpoint("r" + std::to_string(round)).ok());
    std::vector<CheckpointInfo> ckpts = store->ListCheckpoints();
    if (ckpts.size() > keep) {
      ASSERT_TRUE(store->DeleteCheckpointsBefore(ckpts[ckpts.size() - keep].epoch).ok());
    }
  }
};

TEST(SegmentGc, CompactionKeepsChurnSpaceFlat) {
  Churn with_gc(SmallSegments());
  SegmentGc gc(with_gc.store.get());
  uint64_t used_mid = 0;
  const int kRounds = 60;
  for (int r = 1; r <= kRounds; r++) {
    with_gc.Round(r, 2);
    auto report = gc.Run();
    ASSERT_TRUE(report.ok());
    if (r == kRounds / 2) {
      used_mid = with_gc.store->UsedPhysicalBlocks();
    }
  }
  uint64_t used_end = with_gc.store->UsedPhysicalBlocks();
  EXPECT_LE(used_end, used_mid + used_mid / 10)
      << "segment log grew past steady state despite GC";
  EXPECT_GT(with_gc.sim.metrics.counter("gc.segments_reclaimed").value(), 0u);
  EXPECT_GT(with_gc.sim.metrics.counter("gc.blocks_relocated").value(), 0u);

  // The identical churn without a compactor leaks dead sealed segments.
  Churn no_gc(SmallSegments());
  for (int r = 1; r <= kRounds; r++) {
    no_gc.Round(r, 2);
  }
  EXPECT_GT(no_gc.store->UsedPhysicalBlocks(), used_end + used_end / 2)
      << "the no-GC baseline should accumulate dead space the compactor frees";
}

TEST(SegmentGc, RelocationPreservesEveryRetainedEpoch) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  auto store = *ObjectStore::Format(&device, &sim, SmallSegments());

  Oid oid = *store->CreateObject(ObjType::kMemory);
  std::map<uint64_t, std::vector<uint8_t>> images;  // epoch -> full contents
  std::vector<uint8_t> contents = Pattern(6 * kBlock, 1);
  ASSERT_TRUE(store->WriteAt(oid, 0, contents.data(), contents.size()).ok());
  for (int round = 0; round < 5; round++) {
    uint64_t epoch = store->current_epoch();
    ASSERT_TRUE(store->CommitCheckpoint("e" + std::to_string(epoch)).ok());
    images[epoch] = contents;
    // Rewrite two blocks per round; the rest stay live at their old homes.
    std::vector<uint8_t> delta = Pattern(2 * kBlock, static_cast<uint8_t>(40 + round));
    uint64_t off = (static_cast<uint64_t>(round) % 3) * 2 * kBlock;
    std::copy(delta.begin(), delta.end(), contents.begin() + static_cast<long>(off));
    ASSERT_TRUE(store->WriteAt(oid, off, delta.data(), delta.size()).ok());
  }
  ASSERT_TRUE(store->CommitCheckpoint("last").ok());
  images[store->current_epoch() - 1] = contents;

  // Prune to the newest three epochs, compact aggressively, seal the result.
  std::vector<CheckpointInfo> ckpts = store->ListCheckpoints();
  ASSERT_TRUE(store->DeleteCheckpointsBefore(ckpts[ckpts.size() - 3].epoch).ok());
  GcConfig config;
  config.utilization_threshold = 1.1;
  SegmentGc gc(store.get(), config);
  auto report = gc.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->blocks_relocated, 0u);
  ASSERT_TRUE(store->CommitCheckpoint("sealed").ok());

  auto verify = [&](ObjectStore* s) {
    for (const CheckpointInfo& ckpt : s->ListCheckpoints()) {
      auto want = images.find(ckpt.epoch);
      if (want == images.end()) {
        continue;  // the post-GC "sealed" epoch duplicates `contents`
      }
      std::vector<uint8_t> back(want->second.size());
      ASSERT_TRUE(s->ReadAtEpoch(ckpt.epoch, oid, 0, back.data(), back.size()).ok());
      EXPECT_EQ(back, want->second)
          << "epoch " << ckpt.epoch << " changed after compaction";
    }
  };
  verify(store.get());

  // The relocation map must survive a reboot: historic epochs still
  // translate to the moved blocks after mount.
  auto reopened = ObjectStore::Open(&device, &sim);
  ASSERT_TRUE(reopened.ok());
  verify(reopened->get());
}

TEST(SegmentGc, GcAndScrubInterleaveWithZeroFalsePositives) {
  Churn churn(SmallSegments());
  GcConfig config;
  config.utilization_threshold = 0.8;
  SegmentGc gc(churn.store.get(), config);
  uint64_t relocated = 0;
  for (int r = 1; r <= 12; r++) {
    churn.Round(r, 2);
    auto report = gc.Run();
    ASSERT_TRUE(report.ok());
    relocated += report->blocks_relocated;
    EXPECT_EQ(report->crc_errors, 0u);
    // Immediately after each compaction pass, a full scrub of every retained
    // epoch must verify clean: relocated blocks carried their CRCs, historic
    // epochs translate to the new locations, and nothing reads torn.
    Scrubber scrubber(churn.store.get());
    auto scrub = scrubber.ScrubAll();
    ASSERT_TRUE(scrub.ok());
    EXPECT_TRUE(scrub->clean()) << "scrub false positive after GC round " << r;
    EXPECT_TRUE(scrub->bad_blocks.empty());
  }
  EXPECT_GT(relocated, 0u) << "interleave test never exercised relocation";
}

TEST(SegmentGc, CorruptBlockIsQuarantinedAndLeftForScrub) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  auto store = *ObjectStore::Format(&device, &sim, SmallSegments());

  // Fill several segments so the earliest data phys is in a sealed one.
  Oid oid = *store->CreateObject(ObjType::kMemory);
  std::vector<uint8_t> data = Pattern(24 * kBlock, 5);
  ASSERT_TRUE(store->WriteAt(oid, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(store->CommitCheckpoint("c1").ok());

  // Find a committed data block via the scrubber's coverage set (no layout
  // assumptions) and silently rot its media bytes.
  Scrubber scrubber(store.get());
  auto before = scrubber.ScrubAll();
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->clean());
  ASSERT_FALSE(before->data_phys.empty());
  uint64_t victim_phys = *before->data_phys.begin();
  uint32_t dps = kBlock / device.block_size();
  std::vector<uint8_t> garbage(kBlock, 0xEE);
  ASSERT_TRUE(device.WriteAsync(victim_phys * dps, garbage.data(), dps).ok());

  GcConfig config;
  config.utilization_threshold = 1.1;  // every sealed segment is a victim
  SegmentGc gc(store.get(), config);
  auto report = gc.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report->crc_errors, 1u) << "GC read the rotten block without noticing";
  EXPECT_GE(gc.quarantined_segments(), 1u);

  // The damaged block stayed put for the scrubber, which pins it precisely.
  auto after = scrubber.ScrubAll();
  ASSERT_TRUE(after.ok());
  bool found = false;
  for (const ScrubBadBlock& bad : after->bad_blocks) {
    EXPECT_EQ(bad.error, Errc::kCorrupt);
    found |= bad.phys == victim_phys;
  }
  EXPECT_TRUE(found) << "scrub lost track of the corrupt block after the GC pass";

  // A second pass skips the quarantined segment instead of re-reading it.
  auto again = gc.Run();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->crc_errors, 0u);
}

TEST(SegmentGc, TokenBucketPacesRelocationIo) {
  Churn churn(SmallSegments());
  for (int r = 1; r <= 8; r++) {
    churn.Round(r, 2);
  }
  GcConfig config;
  config.utilization_threshold = 1.1;
  config.bytes_per_sec = 1;  // starvation rate: only the initial burst moves
  config.burst_bytes = 2 * kBlock;  // one read+write pair
  SegmentGc gc(churn.store.get(), config);
  auto report = gc.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->throttled);
  EXPECT_LE(report->blocks_relocated, 1u);
  EXPECT_GE(churn.sim.metrics.counter("gc.throttle_defers").value(), 1u);

  // Unthrottled, the deferred work completes.
  config.bytes_per_sec = 0;
  gc.set_config(config);
  auto rest = gc.Run();
  ASSERT_TRUE(rest.ok());
  EXPECT_GT(rest->blocks_relocated, 0u);
  EXPECT_FALSE(rest->throttled);
}

TEST(SegmentGc, LegacyLayoutIsANoop) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  auto store = *ObjectStore::Format(&device, &sim, SmallSegments(StoreLayout::kLegacy));
  Oid oid = *store->CreateObject(ObjType::kMemory);
  std::vector<uint8_t> data = Pattern(8 * kBlock, 1);
  ASSERT_TRUE(store->WriteAt(oid, 0, data.data(), data.size()).ok());
  ASSERT_TRUE(store->CommitCheckpoint("c1").ok());

  SegmentGc gc(store.get());
  auto report = gc.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->segments_examined, 0u);
  EXPECT_EQ(report->blocks_relocated, 0u);
  SegmentStats stats = store->GetSegmentStats();
  EXPECT_EQ(stats.segments_total, 0u);
}

// --- Sls-level retention + auto-GC ------------------------------------------

struct Machine {
  explicit Machine(StoreOptions options = StoreOptions()) {
    device = MakePaperTestbedStore(&sim.clock, 1 * kGiB);
    store = *ObjectStore::Format(device.get(), &sim, options);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  void Reboot() {
    store = *ObjectStore::Open(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

// Runs `epochs` checkpoints of a deterministic dirty-page workload and
// returns the final heap bytes (read back after reboot + restore).
std::vector<uint8_t> RunRetainedWorkload(Machine& m, bool retention, int epochs,
                                         uint64_t mem_bytes = 2 * kMiB) {
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(mem_bytes);
  uint64_t addr = *proc->vm().Map(0x400000, mem_bytes, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  EXPECT_TRUE(m.sls->Attach(group, proc).ok());
  if (retention) {
    m.sls->SetRetentionPolicy(group, RetentionPolicy{.keep_epochs = 3});
  }

  Rng rng(0x6C06);
  for (int e = 0; e < epochs; e++) {
    for (int w = 0; w < 150; w++) {
      uint64_t v = rng.Next();
      EXPECT_TRUE(proc->vm().Write(addr + rng.Below(mem_bytes - 8), &v, sizeof(v)).ok());
    }
    auto ckpt = m.sls->Checkpoint(group);
    EXPECT_TRUE(ckpt.ok());
    if (ckpt.ok()) {
      m.sim.clock.AdvanceTo(ckpt->durable_at);
    }
  }

  m.Reboot();
  auto restored = m.sls->Restore("app");
  EXPECT_TRUE(restored.ok());
  if (!restored.ok()) {
    return {};
  }
  Process* rp = restored->group->processes[0];
  std::vector<uint8_t> out(mem_bytes);
  for (uint64_t off = 0; off < mem_bytes; off += kPageSize) {
    EXPECT_TRUE(rp->vm().Read(addr + off, out.data() + off, kPageSize).ok());
  }
  return out;
}

TEST(SegmentGc, RetentionPolicyDrivesPruneAndAutoGc) {
  Machine m;
  std::vector<uint8_t> heap = RunRetainedWorkload(m, /*retention=*/true, 12);
  ASSERT_FALSE(heap.empty());

  // History stayed bounded (the directory can exceed keep_epochs only by the
  // epochs committed since the last prune ran).
  EXPECT_LE(m.store->ListCheckpoints().size(), 5u);
  EXPECT_GT(m.sim.metrics.counter("ckpt.retention_pruned").value(), 0u);
  EXPECT_GT(m.sim.metrics.counter("gc.runs").value(), 0u);
  // The pass is visible as a span and through the CLI report.
  EXPECT_FALSE(m.sim.tracer.SpansNamed("gc").empty());
  SlsCli cli(m.sls.get());
  auto gc_report = cli.Gc();
  ASSERT_TRUE(gc_report.ok());
  ASSERT_FALSE(gc_report->empty());
  EXPECT_NE((*gc_report)[0].find("segments:"), std::string::npos);
}

TEST(SegmentGc, AutoGcNeverChangesRestoredImage) {
  // GC-on vs GC-off: identical workloads, byte-identical restored heaps.
  Machine gc_on;
  Machine gc_off;
  std::vector<uint8_t> with_gc = RunRetainedWorkload(gc_on, /*retention=*/true, 10);
  std::vector<uint8_t> without_gc = RunRetainedWorkload(gc_off, /*retention=*/false, 10);
  ASSERT_FALSE(with_gc.empty());
  EXPECT_EQ(with_gc, without_gc)
      << "retention + compaction changed what the application restores to";
  EXPECT_GT(gc_on.sim.metrics.counter("gc.runs").value(), 0u);
  EXPECT_EQ(gc_off.sim.metrics.counter("gc.runs").value(), 0u)
      << "auto-GC must not run for groups without a retention policy";

  // Legacy vs segment-log: the layout must be invisible to applications.
  StoreOptions legacy;
  legacy.layout = StoreLayout::kLegacy;
  Machine legacy_machine(legacy);
  std::vector<uint8_t> legacy_heap = RunRetainedWorkload(legacy_machine, /*retention=*/false, 10);
  EXPECT_EQ(legacy_heap, without_gc)
      << "segment-log restored image diverges from the legacy allocator's";
}

}  // namespace
}  // namespace aurora
