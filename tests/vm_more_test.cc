// Second wave of VM tests: protection changes, unmap teardown, deep fork
// trees, file-backed private mappings, and pv-entry edge cases.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"
#include "src/vm/system_shadow.h"
#include "src/vm/vm_map.h"

namespace aurora {
namespace {

class VmMoreTest : public ::testing::Test {
 protected:
  SimContext sim_;
};

TEST_F(VmMoreTest, ProtectDowngradeBlocksWrites) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(4 * kPageSize);
  uint64_t addr = *map.Map(0x100000, 4 * kPageSize, kProtRead | kProtWrite, obj, 0, false);
  uint64_t v = 1;
  ASSERT_TRUE(map.Write(addr, &v, sizeof(v)).ok());
  ASSERT_TRUE(map.Protect(addr, 4 * kPageSize, kProtRead).ok());
  EXPECT_FALSE(map.Write(addr, &v, sizeof(v)).ok());
  uint64_t got = 0;
  ASSERT_TRUE(map.Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 1u);
  // Upgrade back: writes work again.
  ASSERT_TRUE(map.Protect(addr, 4 * kPageSize, kProtRead | kProtWrite).ok());
  v = 2;
  ASSERT_TRUE(map.Write(addr, &v, sizeof(v)).ok());
}

TEST_F(VmMoreTest, UnmapTearsDownTranslationsSafely) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(4 * kPageSize);
  uint64_t addr = *map.Map(0x100000, 4 * kPageSize, kProtRead | kProtWrite, obj, 0, false);
  uint64_t v = 7;
  ASSERT_TRUE(map.Write(addr, &v, sizeof(v)).ok());
  EXPECT_GT(map.pmap().ResidentCount(), 0u);
  ASSERT_TRUE(map.Unmap(addr, 4 * kPageSize).ok());
  EXPECT_EQ(map.pmap().ResidentCount(), 0u);
  EXPECT_FALSE(map.Read(addr, &v, sizeof(v)).ok());
  // The object (and its frames) can die now without dangling pv entries.
  obj.reset();
  SUCCEED();
}

TEST_F(VmMoreTest, ForkOfForkThreeGenerations) {
  VmMap gen0(&sim_);
  auto obj = VmObject::CreateAnonymous(16 * kPageSize);
  uint64_t addr = *gen0.Map(0x100000, 16 * kPageSize, kProtRead | kProtWrite, obj, 0, true);
  uint64_t v0 = 100;
  ASSERT_TRUE(gen0.Write(addr, &v0, sizeof(v0)).ok());

  auto gen1 = *gen0.Fork();
  uint64_t v1 = 200;
  ASSERT_TRUE(gen1->Write(addr, &v1, sizeof(v1)).ok());
  auto gen2 = *gen1->Fork();
  uint64_t v2 = 300;
  ASSERT_TRUE(gen2->Write(addr, &v2, sizeof(v2)).ok());

  uint64_t got = 0;
  ASSERT_TRUE(gen0.Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 100u);
  ASSERT_TRUE(gen1->Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 200u);
  ASSERT_TRUE(gen2->Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 300u);
  // Untouched pages are still shared all the way down.
  uint64_t shared_probe = 0;
  ASSERT_TRUE(gen0.Write(addr + 8 * kPageSize, &v0, sizeof(v0)).ok());
  // gen1/gen2 forked before this write: they see zero, not 100.
  ASSERT_TRUE(gen2->Read(addr + 8 * kPageSize, &shared_probe, sizeof(shared_probe)).ok());
  EXPECT_EQ(shared_probe, 0u);
}

TEST_F(VmMoreTest, PrivateFileMappingChain) {
  // MAP_PRIVATE file mapping: reads come from the file via the pager;
  // writes stay private to the mapping (never reach the file).
  auto device = MakePaperTestbedStore(&sim_.clock, 256 * kMiB);
  auto store = *ObjectStore::Format(device.get(), &sim_);
  AuroraFs fs(&sim_, store.get());
  auto vn = *fs.Create("lib.so");
  std::vector<uint8_t> contents(4 * kPageSize, 0x42);
  ASSERT_TRUE(vn->Write(0, contents.data(), contents.size()).ok());

  VmMap map(&sim_);
  auto file_obj = vn->MakeVmObject();
  auto shadow = VmObject::CreateShadow(file_obj);  // MAP_PRIVATE
  uint64_t addr = *map.Map(0x100000, 4 * kPageSize, kProtRead | kProtWrite, shadow, 0, true);

  uint8_t got = 0;
  ASSERT_TRUE(map.Read(addr + kPageSize, &got, 1).ok());
  EXPECT_EQ(got, 0x42);
  uint8_t patch = 0x99;
  ASSERT_TRUE(map.Write(addr + kPageSize, &patch, 1).ok());
  ASSERT_TRUE(map.Read(addr + kPageSize, &got, 1).ok());
  EXPECT_EQ(got, 0x99);
  // The file is untouched.
  uint8_t file_byte = 0;
  ASSERT_TRUE(vn->Read(kPageSize, &file_byte, 1).ok());
  EXPECT_EQ(file_byte, 0x42);
  // Only the written page lives in the shadow.
  EXPECT_EQ(shadow->ResidentPages(), 1u);
}

TEST_F(VmMoreTest, SystemShadowLeavesFileMappingsAlone) {
  auto device = MakePaperTestbedStore(&sim_.clock, 256 * kMiB);
  auto store = *ObjectStore::Format(device.get(), &sim_);
  AuroraFs fs(&sim_, store.get());
  auto vn = *fs.Create("data");
  ASSERT_TRUE(vn->Write(0, "x", 1).ok());

  VmMap map(&sim_);
  auto file_obj = vn->MakeVmObject();
  (void)map.Map(0x100000, kPageSize, kProtRead | kProtWrite, file_obj, 0, false);
  auto anon = VmObject::CreateAnonymous(kPageSize);
  (void)map.Map(0x200000, kPageSize, kProtRead | kProtWrite, anon, 0, false);
  // Dirty the anonymous mapping so the clean-skip optimization does not
  // apply; the distinction under test is anonymous vs file-backed.
  ASSERT_TRUE(map.Write(0x200000, "y", 1).ok());

  std::vector<VmMap*> maps{&map};
  auto pairs = CreateSystemShadows(maps, &sim_, nullptr, nullptr);
  // Only the anonymous object is shadowed; the vnode mapping persists via
  // the file system's own COW (paper section 6).
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].frozen.get(), anon.get());
  EXPECT_EQ(map.FindEntry(0x100000)->object.get(), file_obj.get());
}

TEST_F(VmMoreTest, SharedZeroFillVisibleAcrossMaps) {
  // A read-faulted zeroed page in a shared object must be THE page both
  // mappings see: a later write through one map is visible to the other.
  VmMap a(&sim_);
  VmMap b(&sim_);
  auto shared = VmObject::CreateAnonymous(4 * kPageSize);
  uint64_t addr_a = *a.Map(0x100000, 4 * kPageSize, kProtRead | kProtWrite, shared, 0, false);
  uint64_t addr_b = *b.Map(0x300000, 4 * kPageSize, kProtRead | kProtWrite, shared, 0, false);
  uint64_t got = 1;
  ASSERT_TRUE(a.Read(addr_a, &got, sizeof(got)).ok());  // allocates the zero page
  EXPECT_EQ(got, 0u);
  uint64_t v = 0x77;
  ASSERT_TRUE(b.Write(addr_b, &v, sizeof(v)).ok());
  ASSERT_TRUE(a.Read(addr_a, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x77u) << "read-faulted page must be shared, not private";
}

TEST_F(VmMoreTest, MapPlacementRespectsHintsAndGaps) {
  VmMap map(&sim_);
  auto o1 = VmObject::CreateAnonymous(4 * kPageSize);
  auto o2 = VmObject::CreateAnonymous(4 * kPageSize);
  auto o3 = VmObject::CreateAnonymous(4 * kPageSize);
  uint64_t a = *map.Map(0x100000, 4 * kPageSize, kProtRead, o1, 0, false);
  EXPECT_EQ(a, 0x100000u);
  // Same hint: placed after the existing entry.
  uint64_t b = *map.Map(0x100000, 4 * kPageSize, kProtRead, o2, 0, false);
  EXPECT_EQ(b, a + 4 * kPageSize);
  // Hint inside an existing entry also skips past it.
  uint64_t c = *map.Map(a + kPageSize, 4 * kPageSize, kProtRead, o3, 0, false);
  EXPECT_GE(c, b + 4 * kPageSize);
  // Unaligned requests are rejected.
  EXPECT_FALSE(map.Map(0x100001, kPageSize, kProtRead, o1, 0, false).ok());
  EXPECT_FALSE(map.Map(0, kPageSize + 1, kProtRead, o1, 0, false).ok());
}

TEST_F(VmMoreTest, ExcludedObjectFlagBlocksShadowing) {
  VmMap map(&sim_);
  auto obj = VmObject::CreateAnonymous(kPageSize);
  obj->set_exclude_from_checkpoint(true);
  (void)map.Map(0x100000, kPageSize, kProtRead | kProtWrite, obj, 0, false);
  std::vector<VmMap*> maps{&map};
  auto pairs = CreateSystemShadows(maps, &sim_, nullptr, nullptr);
  EXPECT_TRUE(pairs.empty());
}

// Property: interleaved faults in two maps sharing an object + periodic
// shadow/collapse cycles preserve a sequentially-consistent byte image.
class SharedShadowCycleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SharedShadowCycleTest, TwoMapsOneTruth) {
  SimContext sim;
  VmMap a(&sim);
  VmMap b(&sim);
  const uint64_t pages = 32;
  auto shared = VmObject::CreateAnonymous(pages * kPageSize);
  shared->set_sls_oid(31337);
  uint64_t addr_a = *a.Map(0x100000, pages * kPageSize, kProtRead | kProtWrite, shared, 0, false);
  uint64_t addr_b = *b.Map(0x900000, pages * kPageSize, kProtRead | kProtWrite, shared, 0, false);
  std::vector<VmMap*> maps{&a, &b};
  std::vector<uint8_t> model(pages * kPageSize, 0);
  Rng rng(GetParam());
  std::vector<ShadowPair> pending;
  for (int cycle = 0; cycle < 6; cycle++) {
    for (int op = 0; op < 120; op++) {
      uint64_t off = rng.Below(pages * kPageSize - 8);
      uint64_t val = rng.Next();
      if (rng.NextBool(0.5)) {
        ASSERT_TRUE(a.Write(addr_a + off, &val, sizeof(val)).ok());
      } else {
        ASSERT_TRUE(b.Write(addr_b + off, &val, sizeof(val)).ok());
      }
      std::memcpy(model.data() + off, &val, sizeof(val));
      // Interleave reads through the *other* map.
      uint64_t check_off = rng.Below(pages * kPageSize - 8);
      uint64_t got_a = 0;
      uint64_t got_b = 0;
      ASSERT_TRUE(a.Read(addr_a + check_off, &got_a, sizeof(got_a)).ok());
      ASSERT_TRUE(b.Read(addr_b + check_off, &got_b, sizeof(got_b)).ok());
      uint64_t expect = 0;
      std::memcpy(&expect, model.data() + check_off, sizeof(expect));
      ASSERT_EQ(got_a, expect);
      ASSERT_EQ(got_b, expect);
    }
    for (auto& pair : pending) {
      CollapseAfterFlush(pair, maps, cycle % 2 == 0, &sim);
    }
    pending = CreateSystemShadows(maps, &sim, nullptr, nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedShadowCycleTest, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace aurora
