#include <gtest/gtest.h>

#include "src/apps/aurora_kv.h"
#include "src/apps/kv_server.h"
#include "src/apps/lsm_db.h"
#include "src/apps/memtable.h"
#include "src/apps/redis_like.h"
#include "src/apps/sstable.h"
#include "src/apps/workloads.h"
#include "src/base/sim_context.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/fs/baseline_fs.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

struct AppMachine {
  AppMachine() {
    device = MakePaperTestbedStore(&sim.clock, 2 * kGiB);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }
  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

// --- MemTable ------------------------------------------------------------------

class MemTableTest : public ::testing::Test {
 protected:
  MemTableTest() : map_(&sim_) {
    auto obj = VmObject::CreateAnonymous(4 * kMiB);
    addr_ = *map_.Map(0x100000, 4 * kMiB, kProtRead | kProtWrite, obj, 0, false);
    table_ = std::make_unique<MemTable>(&sim_, &map_, addr_, 4 * kMiB);
  }
  SimContext sim_;
  VmMap map_;
  uint64_t addr_ = 0;
  std::unique_ptr<MemTable> table_;
};

TEST_F(MemTableTest, PutGetOverwrite) {
  ASSERT_TRUE(table_->Put("alpha", "1").ok());
  ASSERT_TRUE(table_->Put("beta", "2").ok());
  EXPECT_EQ(*table_->Get("alpha"), "1");
  ASSERT_TRUE(table_->Put("alpha", "updated").ok());
  EXPECT_EQ(*table_->Get("alpha"), "updated");
  EXPECT_FALSE(table_->Get("gamma").has_value());
  EXPECT_EQ(table_->entry_count(), 2u);
}

TEST_F(MemTableTest, OrderedIteration) {
  ASSERT_TRUE(table_->Put("c", "3").ok());
  ASSERT_TRUE(table_->Put("a", "1").ok());
  ASSERT_TRUE(table_->Put("b", "2").ok());
  std::string order;
  for (const auto& [k, loc] : table_->index()) {
    order += k;
  }
  EXPECT_EQ(order, "abc");
}

TEST_F(MemTableTest, ArenaFullReported) {
  std::string big(1 * kMiB, 'x');
  ASSERT_TRUE(table_->Put("k1", big).ok());
  ASSERT_TRUE(table_->Put("k2", big).ok());
  ASSERT_TRUE(table_->Put("k3", big).ok());
  EXPECT_EQ(table_->Put("k4", big).code(), Errc::kNoSpace);
  EXPECT_TRUE(table_->Full(big.size()));
}

TEST_F(MemTableTest, RecoverFromArenaRebuildsIndex) {
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(
        table_->Put("key" + std::to_string(i), "value" + std::to_string(i * 3)).ok());
  }
  // Overwrites append new records; the scan must apply them in order.
  ASSERT_TRUE(table_->Put("key7", "FINAL").ok());

  MemTable rebuilt(&sim_, &map_, addr_, 4 * kMiB);
  ASSERT_TRUE(rebuilt.RecoverFromArena().ok());
  EXPECT_EQ(rebuilt.entry_count(), 200u);
  EXPECT_EQ(*rebuilt.Get("key7"), "FINAL");
  EXPECT_EQ(*rebuilt.Get("key199"), "value597");
}

TEST_F(MemTableTest, ClearResetsArena) {
  ASSERT_TRUE(table_->Put("k", "v").ok());
  ASSERT_TRUE(table_->Clear().ok());
  EXPECT_EQ(table_->bytes_used(), 0u);
  EXPECT_FALSE(table_->Get("k").has_value());
  MemTable rebuilt(&sim_, &map_, addr_, 4 * kMiB);
  ASSERT_TRUE(rebuilt.RecoverFromArena().ok());
  EXPECT_EQ(rebuilt.entry_count(), 0u) << "the sentinel must stop the scan";
}

// --- SSTables --------------------------------------------------------------------

class SstableTest : public ::testing::Test {
 protected:
  SstableTest() : device_(&sim_.clock, (256 * kMiB) / kPageSize), fs_(&sim_, &device_, 64 * kKiB) {}
  SimContext sim_;
  MemBlockDevice device_;
  FfsLikeFs fs_;
};

TEST_F(SstableTest, WriteReadBack) {
  auto file = *fs_.Create("t.sst");
  SstableWriter writer(&sim_, file);
  for (int i = 0; i < 500; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(writer.Add(key, "value-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());

  auto reader = *SstableReader::Open(&sim_, file);
  EXPECT_EQ(reader->entries(), 500u);
  EXPECT_EQ(reader->smallest(), "k000000");
  EXPECT_EQ(reader->largest(), "k000499");
  auto hit = *reader->Get("k000123");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "value-123");
  auto miss = *reader->Get("k000500");
  EXPECT_FALSE(miss.has_value());
  auto absent = *reader->Get("zzz");
  EXPECT_FALSE(absent.has_value());
}

TEST_F(SstableTest, RejectsOutOfOrderKeys) {
  auto file = *fs_.Create("bad.sst");
  SstableWriter writer(&sim_, file);
  ASSERT_TRUE(writer.Add("b", "1").ok());
  EXPECT_FALSE(writer.Add("a", "2").ok());
  EXPECT_FALSE(writer.Add("b", "3").ok());  // duplicates rejected too
}

TEST_F(SstableTest, ForEachVisitsAllInOrder) {
  auto file = *fs_.Create("scan.sst");
  SstableWriter writer(&sim_, file);
  for (int i = 0; i < 100; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%04d", i);
    ASSERT_TRUE(writer.Add(key, "v").ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  auto reader = *SstableReader::Open(&sim_, file);
  std::string prev;
  uint64_t seen = 0;
  ASSERT_TRUE(reader
                  ->ForEach([&](std::string_view k, std::string_view v) {
                    EXPECT_GT(std::string(k), prev);
                    EXPECT_EQ(v, "v");
                    prev = std::string(k);
                    seen++;
                  })
                  .ok());
  EXPECT_EQ(seen, 100u);
}

TEST_F(SstableTest, BloomFilterFiltersMisses) {
  std::vector<uint8_t> bits(128, 0);
  for (int i = 0; i < 50; i++) {
    BloomAdd(&bits, SstKeyHash("present-" + std::to_string(i)));
  }
  for (int i = 0; i < 50; i++) {
    EXPECT_TRUE(BloomMayContain(bits, SstKeyHash("present-" + std::to_string(i))));
  }
  int false_positives = 0;
  for (int i = 0; i < 1000; i++) {
    false_positives += BloomMayContain(bits, SstKeyHash("absent-" + std::to_string(i))) ? 1 : 0;
  }
  EXPECT_LT(false_positives, 300) << "bloom filter should reject most absent keys";
}

TEST_F(SstableTest, CorruptFooterRejected) {
  auto file = *fs_.Create("corrupt.sst");
  SstableWriter writer(&sim_, file);
  ASSERT_TRUE(writer.Add("a", "1").ok());
  auto size = *writer.Finish();
  uint8_t garbage[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_TRUE(file->Write(size - 4, garbage, 4).ok());  // smash the magic
  EXPECT_FALSE(SstableReader::Open(&sim_, file).ok());
}

// --- LsmDb ------------------------------------------------------------------------

class LsmDbTest : public ::testing::Test {
 protected:
  LsmDbTest() : device_(&sim_.clock, (512 * kMiB) / kPageSize), fs_(&sim_, &device_, 64 * kKiB) {}

  LsmOptions SmallOptions() {
    LsmOptions options;
    options.memtable_bytes = 256 * kKiB;  // force flushes
    options.wal_enabled = true;
    options.wal_sync = false;
    options.wal_flush_trigger = 10 * kMiB;
    options.l0_compaction_trigger = 3;
    return options;
  }

  SimContext sim_;
  MemBlockDevice device_;
  FfsLikeFs fs_;
  Kernel kernel_{&sim_};
};

TEST_F(LsmDbTest, GetAcrossMemtableAndSstables) {
  LsmOptions options = SmallOptions();
  options.memtable_bytes = 48 * kKiB;  // force several flushes
  LsmDb db(&sim_, &kernel_, &fs_, options);
  // Enough data to force several flushes.
  for (int i = 0; i < 3000; i++) {
    char key[24];
    std::snprintf(key, sizeof(key), "key%08d", i);
    ASSERT_TRUE(db.Put(key, "value-" + std::to_string(i)).ok());
  }
  EXPECT_GT(db.stats().flushes, 0u);
  EXPECT_GT(db.sstable_count(), 0u);
  // Old keys come from SSTables, new ones from the memtable.
  auto old_key = *db.Get("key00000010");
  ASSERT_TRUE(old_key.has_value());
  EXPECT_EQ(*old_key, "value-10");
  auto new_key = *db.Get("key00002999");
  ASSERT_TRUE(new_key.has_value());
  EXPECT_EQ(*new_key, "value-2999");
  auto missing = *db.Get("key99999999");
  EXPECT_FALSE(missing.has_value());
}

TEST_F(LsmDbTest, OverwritesResolveNewestFirst) {
  LsmDb db(&sim_, &kernel_, &fs_, SmallOptions());
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 1200; i++) {
      char key[24];
      std::snprintf(key, sizeof(key), "key%08d", i);
      ASSERT_TRUE(db.Put(key, "round-" + std::to_string(round)).ok());
    }
  }
  auto v = *db.Get("key00000500");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "round-2") << "newest write must win across flushed generations";
}

TEST_F(LsmDbTest, CompactionReducesTableCount) {
  LsmDb db(&sim_, &kernel_, &fs_, SmallOptions());
  for (int i = 0; i < 14000; i++) {
    char key[24];
    std::snprintf(key, sizeof(key), "key%08d", i % 2000);
    ASSERT_TRUE(db.Put(key, std::string(100, 'v')).ok());
  }
  EXPECT_GT(db.stats().compactions, 0u);
  // L0 must stay below the trigger after compactions ran.
  EXPECT_LE(db.sstable_count(), 6u);
  auto v = *db.Get("key00000042");
  EXPECT_TRUE(v.has_value());
}

TEST_F(LsmDbTest, WalRecoveryReplaysUnflushedWrites) {
  LsmOptions options = SmallOptions();
  options.memtable_bytes = 16 * kMiB;  // keep everything in the memtable
  LsmDb db(&sim_, &kernel_, &fs_, options);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db.Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  // "Crash": new LsmDb instance over the same file system; WAL survives.
  LsmDb recovered(&sim_, &kernel_, &fs_, options);
  ASSERT_TRUE(recovered.Recover().ok());
  auto v = *recovered.Get("k42");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "v42");
}

TEST_F(LsmDbTest, SeekWalksOrderedRange) {
  LsmOptions options = SmallOptions();
  options.memtable_bytes = 16 * kMiB;
  LsmDb db(&sim_, &kernel_, &fs_, options);
  for (int i = 0; i < 100; i++) {
    char key[24];
    std::snprintf(key, sizeof(key), "key%04d", i);
    ASSERT_TRUE(db.Put(key, "v").ok());
  }
  EXPECT_EQ(*db.Seek("key0050", 10), 10u);
  EXPECT_EQ(*db.Seek("key0095", 10), 5u);  // runs off the end
}

TEST_F(LsmDbTest, WalFullTriggersFlush) {
  LsmOptions options = SmallOptions();
  options.memtable_bytes = 64 * kMiB;
  options.wal_flush_trigger = 64 * kKiB;  // tiny: flush quickly
  LsmDb db(&sim_, &kernel_, &fs_, options);
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db.Put("key" + std::to_string(i), std::string(64, 'x')).ok());
  }
  EXPECT_GT(db.stats().flushes, 1u) << "max_total_wal_size must force flushes";
}

// --- AuroraKv ------------------------------------------------------------------------

TEST(AuroraKvTest, PutGetAndJournalAccounting) {
  AppMachine m;
  Process* proc = *m.kernel->CreateProcess("kv");
  ConsistencyGroup* group = *m.sls->CreateGroup("kv");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  AuroraKvOptions options;
  options.memtable_bytes = 8 * kMiB;
  options.journal_bytes = 1 * kMiB;
  options.group_commit_batch = 4;
  AuroraKv db(m.sls.get(), group, proc, options);

  for (int i = 0; i < 64; i++) {
    ASSERT_TRUE(db.Put("key" + std::to_string(i), "value" + std::to_string(i)).ok());
  }
  EXPECT_EQ(db.stats().puts, 64u);
  EXPECT_EQ(db.stats().journal_appends, 16u);  // 64 puts / batch of 4
  auto v = *db.Get("key10");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "value10");
}

TEST(AuroraKvTest, JournalFullTriggersCheckpoint) {
  AppMachine m;
  Process* proc = *m.kernel->CreateProcess("kv");
  ConsistencyGroup* group = *m.sls->CreateGroup("kv");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  AuroraKvOptions options;
  options.memtable_bytes = 32 * kMiB;
  options.journal_bytes = 64 * kKiB;
  options.group_commit_batch = 4;
  AuroraKv db(m.sls.get(), group, proc, options);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(db.Put("key" + std::to_string(i), std::string(64, 'v')).ok());
  }
  EXPECT_GT(db.stats().checkpoints, 0u) << "journal-full must trigger a checkpoint";
  EXPECT_GT(db.stats().last_checkpoint_wait, 0u);
}

TEST(AuroraKvTest, CrashRecoveryCheckpointPlusJournal) {
  AppMachine m;
  Process* proc = *m.kernel->CreateProcess("kv");
  ConsistencyGroup* group = *m.sls->CreateGroup("kv");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  AuroraKvOptions options;
  options.memtable_bytes = 8 * kMiB;
  options.journal_bytes = 2 * kMiB;
  options.group_commit_batch = 1;
  AuroraKv db(m.sls.get(), group, proc, options);

  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db.Put("pre" + std::to_string(i), "ckpt").ok());
  }
  auto ckpt = *m.sls->Checkpoint(group, "base");
  m.sim.clock.AdvanceTo(ckpt.durable_at);
  ASSERT_TRUE(m.sls->JournalReset(db.journal()).ok());
  for (int i = 0; i < 50; i++) {
    ASSERT_TRUE(db.Put("post" + std::to_string(i), "journal-only").ok());
  }

  // Crash: rebuild the whole machine on the same device.
  auto store2 = *ObjectStore::Open(m.device.get(), &m.sim);
  AuroraFs fs2(&m.sim, store2.get());
  Kernel kernel2(&m.sim);
  Sls sls2(&m.sim, &kernel2, store2.get(), &fs2);
  auto restored = *sls2.Restore("kv");
  auto recovered = AuroraKv::Reattach(&sls2, restored.group, restored.group->processes[0],
                                      options, db.arena_addr(), db.node_addr(), db.journal());
  ASSERT_TRUE(recovered.ok());
  auto pre = *(*recovered)->Get("pre250");
  ASSERT_TRUE(pre.has_value());
  EXPECT_EQ(*pre, "ckpt");
  auto post = *(*recovered)->Get("post49");
  ASSERT_TRUE(post.has_value()) << "journaled writes after the checkpoint must survive";
  EXPECT_EQ(*post, "journal-only");
}

// --- KvServer -------------------------------------------------------------------------

TEST(KvServerTest, OpsTouchRealMemory) {
  SimContext sim;
  Kernel kernel(&sim);
  KvServerConfig config;
  config.num_keys = 1024;
  config.value_size = 128;
  KvServer server(&sim, &kernel, config);
  ASSERT_TRUE(server.Warmup().ok());
  uint64_t resident_before = server.process()->vm().ResidentPages();
  EXPECT_GT(resident_before, 0u);

  auto get_time = server.ExecuteGet(5);
  ASSERT_TRUE(get_time.ok());
  EXPECT_GE(*get_time, config.op_cpu);
  auto set_time = server.ExecuteSet(7, 0xaa);
  ASSERT_TRUE(set_time.ok());
}

TEST(KvServerTest, GetDirtiesItemHeader) {
  // The defining memcached behavior for Fig. 4: GETs write LRU metadata.
  SimContext sim;
  Kernel kernel(&sim);
  KvServerConfig config;
  config.num_keys = 256;
  KvServer server(&sim, &kernel, config);
  ASSERT_TRUE(server.Warmup().ok());
  std::vector<VmMap*> maps{&server.process()->vm()};
  auto pairs = CreateSystemShadows(maps, &sim, nullptr, nullptr);
  ASSERT_FALSE(pairs.empty());
  ASSERT_TRUE(server.ExecuteGet(3).ok());
  uint64_t dirty = 0;
  for (auto& [start, entry] : server.process()->vm().entries()) {
    dirty += entry.object->ResidentPages();  // pages promoted into live shadows
  }
  EXPECT_GT(dirty, 0u) << "a GET must dirty at least the item header page";
}

// --- RedisLike ---------------------------------------------------------------------------

TEST(RedisLikeTest, SetGetRoundTrip) {
  SimContext sim;
  Kernel kernel(&sim);
  RedisLike redis(&sim, &kernel, 1000, 100);
  ASSERT_TRUE(redis.Set(42, 0x7f).ok());
  EXPECT_EQ(*redis.Get(42), 0x7f);
  EXPECT_FALSE(redis.Set(1000, 1).ok());
  EXPECT_EQ(redis.dataset_bytes(), 1000u * 116u);
}

TEST(RedisLikeTest, BgSaveForkStopScalesWithFootprint) {
  SimContext sim;
  Kernel kernel(&sim);
  MemBlockDevice device(&sim.clock, (2 * kGiB) / kPageSize);
  RedisLike small(&sim, &kernel, 5000, 496);
  auto small_save = *small.BgSave(&device);
  RedisLike big(&sim, &kernel, 50000, 496);
  auto big_save = *big.BgSave(&device);
  EXPECT_GT(big_save.fork_stop_time, small_save.fork_stop_time * 5);
  EXPECT_GT(big_save.child_save_time, small_save.child_save_time * 5);
}

TEST(RedisLikeTest, BgSaveChildIsolatedFromParentWrites) {
  SimContext sim;
  Kernel kernel(&sim);
  MemBlockDevice device(&sim.clock, (1 * kGiB) / kPageSize);
  RedisLike redis(&sim, &kernel, 1000, 100);
  ASSERT_TRUE(redis.Set(1, 0x11).ok());
  ASSERT_TRUE(redis.BgSave(&device).ok());
  // Parent keeps working after the snapshot.
  ASSERT_TRUE(redis.Set(1, 0x22).ok());
  EXPECT_EQ(*redis.Get(1), 0x22);
  EXPECT_EQ(kernel.AllProcesses().size(), 1u) << "snapshot child must be reaped";
}

// --- Workloads -------------------------------------------------------------------------------

TEST(WorkloadTest, EtcMixRatios) {
  EtcWorkload workload(100000, 7);
  int sets = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    KvRequest req = workload.Next();
    EXPECT_LT(req.key, 100000u);
    if (req.op == KvOp::kSet) {
      sets++;
      EXPECT_GT(req.value_size, 0u);
      EXPECT_LE(req.value_size, 4096u);
    }
  }
  double ratio = static_cast<double>(sets) / n;
  EXPECT_NEAR(ratio, 0.033, 0.01);
}

TEST(WorkloadTest, PrefixDistMixAndBounds) {
  PrefixDistWorkload workload(200000, 9);
  int gets = 0;
  int puts = 0;
  int seeks = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    KvRequest req = workload.Next();
    EXPECT_LT(req.key, 200000u);
    switch (req.op) {
      case KvOp::kGet:
        gets++;
        break;
      case KvOp::kSet:
        puts++;
        break;
      case KvOp::kSeek:
        seeks++;
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(gets) / n, 0.83, 0.03);
  EXPECT_NEAR(static_cast<double>(puts) / n, 0.14, 0.03);
  EXPECT_NEAR(static_cast<double>(seeks) / n, 0.03, 0.02);
}

TEST(WorkloadTest, KeyEncodingSortsNumerically) {
  EXPECT_LT(PrefixDistWorkload::EncodeKey(5), PrefixDistWorkload::EncodeKey(50));
  EXPECT_LT(PrefixDistWorkload::EncodeKey(99), PrefixDistWorkload::EncodeKey(100));
  EXPECT_EQ(PrefixDistWorkload::EncodeKey(1).size(), 20u);
}

TEST(WorkloadTest, ZipfSkewConcentratesOnPrefixes) {
  PrefixDistWorkload workload(256 * 100, 3);
  std::map<uint64_t, int> prefix_counts;
  for (int i = 0; i < 10000; i++) {
    prefix_counts[workload.Next().key / 256]++;
  }
  // The hottest prefix should see far more traffic than the median.
  int max_count = 0;
  for (auto& [p, c] : prefix_counts) {
    max_count = std::max(max_count, c);
  }
  EXPECT_GT(max_count, 200);
}

}  // namespace
}  // namespace aurora
