#include <gtest/gtest.h>

#include <cstring>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/coredump.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

// One simulated machine: devices, store, file system, kernel and SLS.
struct Machine {
  explicit Machine(uint64_t store_bytes = 1 * kGiB) {
    device = MakePaperTestbedStore(&sim.clock, store_bytes);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  // Reboot: keep the device contents, rebuild everything else.
  void Reboot() {
    store = *ObjectStore::Open(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

// Builds a process with a data region and returns (proc, addr).
std::pair<Process*, uint64_t> MakeAppProcess(Machine& m, uint64_t mem_bytes) {
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(mem_bytes);
  uint64_t addr = *proc->vm().Map(0x400000, mem_bytes, kProtRead | kProtWrite, obj, 0, false);
  return {proc, addr};
}

TEST(SlsCheckpoint, RestoreRevertsMemory) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 1 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  const char before[] = "checkpointed state";
  ASSERT_TRUE(proc->vm().Write(addr, before, sizeof(before)).ok());
  uint64_t saved_pid = proc->local_pid();
  auto ckpt = m.sls->Checkpoint(group, "first");
  ASSERT_TRUE(ckpt.ok());
  EXPECT_GT(ckpt->stop_time, 0u);
  EXPECT_GT(ckpt->bytes_flushed, 0u);

  // Diverge, then roll back.
  const char after[] = "post-checkpoint junk";
  ASSERT_TRUE(proc->vm().Write(addr, after, sizeof(after)).ok());

  auto restored = m.sls->Restore("app");
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->group->processes.size(), 1u);
  Process* rp = restored->group->processes[0];
  EXPECT_EQ(rp->local_pid(), saved_pid) << "application-visible pid must survive";
  char buf[sizeof(before)] = {};
  ASSERT_TRUE(rp->vm().Read(addr, buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, before);
}

TEST(SlsCheckpoint, SurvivesRebootWithFullOsState) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("server");
  auto obj = VmObject::CreateAnonymous(256 * kKiB);
  uint64_t addr = *proc->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  uint64_t magic = 0xfeedfacecafebeefull;
  ASSERT_TRUE(proc->vm().Write(addr + 4096, &magic, sizeof(magic)).ok());

  // A rich fd table: file, pipe pair, listening socket, kqueue, pty, shm.
  int file_fd = *m.kernel->Open(*proc, "config.txt", kOpenRead | kOpenWrite, true);
  auto file_desc = *proc->fds().Get(file_fd);
  auto* vn = static_cast<Vnode*>(file_desc->object.get());
  ASSERT_TRUE(vn->Write(0, "option=42\n", 10).ok());
  file_desc->offset = 10;

  auto [rfd, wfd] = *m.kernel->MakePipe(*proc);
  auto pipe_desc = *proc->fds().Get(wfd);
  ASSERT_TRUE(static_cast<Pipe*>(pipe_desc->object.get())->Write("inflight", 8).ok());

  int sock_fd = *m.kernel->MakeSocket(*proc, SocketDomain::kInet, SocketProto::kTcp);
  auto sock_desc = *proc->fds().Get(sock_fd);
  auto* listener = static_cast<Socket*>(sock_desc->object.get());
  ASSERT_TRUE(listener->Bind({0x0a000001, 6379, ""}).ok());
  ASSERT_TRUE(listener->Listen(128).ok());

  int kq_fd = *m.kernel->MakeKqueue(*proc);
  auto* kq = static_cast<Kqueue*>((*proc->fds().Get(kq_fd))->object.get());
  for (uint64_t i = 0; i < 100; i++) {
    kq->Register(KEvent{i, -1, 1, 0, 0, i * 10});
  }

  auto [master_fd, slave_fd] = *m.kernel->MakePty(*proc);
  auto* pty = static_cast<Pseudoterminal*>((*proc->fds().Get(master_fd))->object.get());
  pty->SetWinsize(24, 132);

  int shm_fd = *m.kernel->ShmOpen(*proc, "/cache", 128 * kKiB);
  uint64_t shm_addr = *m.kernel->ShmMap(*proc, shm_fd);
  uint32_t shm_val = 0x5151;
  ASSERT_TRUE(proc->vm().Write(shm_addr, &shm_val, sizeof(shm_val)).ok());

  ConsistencyGroup* group = *m.sls->CreateGroup("server");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  auto ckpt = m.sls->Checkpoint(group, "boot");
  ASSERT_TRUE(ckpt.ok());
  ASSERT_TRUE(m.sls->Barrier(group).ok());

  // Power loss. Reboot the machine from the same device.
  m.Reboot();
  auto restored = m.sls->Restore("server");
  ASSERT_TRUE(restored.ok());
  Process* rp = restored->group->processes[0];

  // Memory.
  uint64_t got = 0;
  ASSERT_TRUE(rp->vm().Read(addr + 4096, &got, sizeof(got)).ok());
  EXPECT_EQ(got, magic);

  // File descriptor: same fd number, same offset, same contents.
  auto rdesc = *rp->fds().Get(file_fd);
  EXPECT_EQ(rdesc->offset, 10u);
  auto* rvn = static_cast<Vnode*>(rdesc->object.get());
  char fbuf[10];
  ASSERT_TRUE(rvn->Read(0, fbuf, 10).ok());
  EXPECT_EQ(0, std::memcmp(fbuf, "option=42\n", 10));

  // Pipe with its in-flight bytes.
  auto* rpipe = static_cast<Pipe*>((*rp->fds().Get(rfd))->object.get());
  char pbuf[8];
  ASSERT_TRUE(rpipe->Read(pbuf, 8).ok());
  EXPECT_EQ(0, std::memcmp(pbuf, "inflight", 8));

  // Listening socket: bound + listening, accept queue empty by design.
  auto* rsock = static_cast<Socket*>((*rp->fds().Get(sock_fd))->object.get());
  EXPECT_EQ(rsock->state, SocketState::kListening);
  EXPECT_EQ(rsock->local.port, 6379);
  EXPECT_TRUE(rsock->accept_queue.empty());

  // Kqueue events.
  auto* rkq = static_cast<Kqueue*>((*rp->fds().Get(kq_fd))->object.get());
  ASSERT_EQ(rkq->events().size(), 100u);
  EXPECT_EQ(rkq->events()[7].udata, 70u);

  // Pty.
  auto* rpty = static_cast<Pseudoterminal*>((*rp->fds().Get(master_fd))->object.get());
  EXPECT_EQ(rpty->ws_cols, 132);

  // Shared memory contents and namespace registration.
  uint32_t shm_got = 0;
  ASSERT_TRUE(rp->vm().Read(shm_addr, &shm_got, sizeof(shm_got)).ok());
  EXPECT_EQ(shm_got, 0x5151u);
  EXPECT_EQ(m.kernel->posix_shm().count("/cache"), 1u);
  (void)slave_fd;
}

TEST(SlsCheckpoint, IncrementalFlushesOnlyDirtyPages) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 16 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  ASSERT_TRUE(proc->vm().DirtyRange(addr, 16 * kMiB).ok());
  auto first = m.sls->Checkpoint(group);
  ASSERT_TRUE(first.ok());
  EXPECT_GE(first->bytes_flushed, 16 * kMiB);

  // Touch only 8 pages; the next checkpoint must flush roughly that.
  ASSERT_TRUE(proc->vm().DirtyRange(addr, 8 * kPageSize).ok());
  auto second = m.sls->Checkpoint(group);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->pages_flushed, 8u);
  EXPECT_LT(second->stop_time, first->stop_time);
}

TEST(SlsCheckpoint, FdSharingSurvivesRestore) {
  Machine m;
  Process* parent = *m.kernel->CreateProcess("parent");
  int fd = *m.kernel->Open(*parent, "shared.log", kOpenRead | kOpenWrite, true);
  Process* child = *m.kernel->Fork(*parent);

  ConsistencyGroup* group = *m.sls->CreateGroup("family");
  ASSERT_TRUE(m.sls->Attach(group, parent).ok());
  ASSERT_TRUE(m.sls->Attach(group, child).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());

  auto restored = m.sls->Restore("family");
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->group->processes.size(), 2u);
  Process* rp = restored->group->processes[0];
  Process* rc = restored->group->processes[1];
  // fork-shared description: one open-file entry, shared offset.
  auto pd = *rp->fds().Get(fd);
  auto cd = *rc->fds().Get(fd);
  EXPECT_EQ(pd.get(), cd.get()) << "offset sharing must be recreated, not duplicated";
  // Parent/child relationship relinked by local pid.
  EXPECT_EQ(rc->parent, rp);
}

TEST(SlsCheckpoint, SeparateOpensStaySeparate) {
  Machine m;
  Process* a = *m.kernel->CreateProcess("a");
  Process* b = *m.kernel->CreateProcess("b");
  int fd_a = *m.kernel->Open(*a, "data", kOpenRead, true);
  int fd_b = *m.kernel->Open(*b, "data", kOpenRead, false);
  (*a->fds().Get(fd_a))->offset = 100;
  (*b->fds().Get(fd_b))->offset = 200;

  ConsistencyGroup* group = *m.sls->CreateGroup("two");
  ASSERT_TRUE(m.sls->Attach(group, a).ok());
  ASSERT_TRUE(m.sls->Attach(group, b).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());
  auto restored = m.sls->Restore("two");
  ASSERT_TRUE(restored.ok());
  Process* ra = restored->group->processes[0];
  Process* rb = restored->group->processes[1];
  auto da = *ra->fds().Get(fd_a);
  auto db = *rb->fds().Get(fd_b);
  EXPECT_NE(da.get(), db.get());
  EXPECT_EQ(da->offset, 100u);
  EXPECT_EQ(db->offset, 200u);
  // But the same vnode backs both.
  EXPECT_EQ(da->object->kernel_id(), db->object->kernel_id());
}

TEST(SlsCheckpoint, ForkCowPrivacySurvivesRestore) {
  Machine m;
  Process* parent = *m.kernel->CreateProcess("p");
  auto obj = VmObject::CreateAnonymous(1 * kMiB);
  uint64_t addr =
      *parent->vm().Map(0x400000, 1 * kMiB, kProtRead | kProtWrite, obj, 0, /*cow=*/true);
  uint64_t shared_val = 111;
  ASSERT_TRUE(parent->vm().Write(addr, &shared_val, sizeof(shared_val)).ok());
  Process* child = *m.kernel->Fork(*parent);
  uint64_t child_val = 222;
  ASSERT_TRUE(child->vm().Write(addr, &child_val, sizeof(child_val)).ok());

  ConsistencyGroup* group = *m.sls->CreateGroup("cow");
  ASSERT_TRUE(m.sls->Attach(group, parent).ok());
  ASSERT_TRUE(m.sls->Attach(group, child).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());
  auto restored = m.sls->Restore("cow");
  ASSERT_TRUE(restored.ok());
  Process* rp = restored->group->processes[0];
  Process* rc = restored->group->processes[1];
  uint64_t got = 0;
  ASSERT_TRUE(rp->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 111u);
  ASSERT_TRUE(rc->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 222u);
  // Isolation still holds after restore.
  uint64_t nv = 333;
  ASSERT_TRUE(rp->vm().Write(addr, &nv, sizeof(nv)).ok());
  ASSERT_TRUE(rc->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 222u);
}

TEST(SlsCheckpoint, SharedMemoryAcrossProcessesSurvives) {
  Machine m;
  Process* a = *m.kernel->CreateProcess("a");
  Process* b = *m.kernel->CreateProcess("b");
  int fd_a = *m.kernel->ShmOpen(*a, "/seg", 64 * kKiB);
  int fd_b = *m.kernel->ShmOpen(*b, "/seg", 64 * kKiB);
  uint64_t addr_a = *m.kernel->ShmMap(*a, fd_a);
  uint64_t addr_b = *m.kernel->ShmMap(*b, fd_b);
  uint64_t v = 42;
  ASSERT_TRUE(a->vm().Write(addr_a, &v, sizeof(v)).ok());

  ConsistencyGroup* group = *m.sls->CreateGroup("shm");
  ASSERT_TRUE(m.sls->Attach(group, a).ok());
  ASSERT_TRUE(m.sls->Attach(group, b).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());
  auto restored = m.sls->Restore("shm");
  ASSERT_TRUE(restored.ok());
  Process* ra = restored->group->processes[0];
  Process* rb = restored->group->processes[1];
  uint64_t got = 0;
  ASSERT_TRUE(rb->vm().Read(addr_b, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 42u);
  // Writes remain shared after restore.
  uint64_t nv = 77;
  ASSERT_TRUE(ra->vm().Write(addr_a + 8, &nv, sizeof(nv)).ok());
  ASSERT_TRUE(rb->vm().Read(addr_b + 8, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 77u);
}

TEST(SlsCheckpoint, LazyRestoreFaultsPagesOnDemand) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 8 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("lazy");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  ASSERT_TRUE(proc->vm().DirtyRange(addr, 8 * kMiB).ok());
  uint64_t v = 0x77;
  ASSERT_TRUE(proc->vm().Write(addr + 5 * kMiB, &v, sizeof(v)).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());

  auto full = m.sls->Restore("lazy", 0, RestoreMode::kFull);
  ASSERT_TRUE(full.ok());
  SimDuration full_time = full->restore_time;

  ASSERT_TRUE(m.sls->Checkpoint(full->group).ok());
  auto lazy = m.sls->Restore("lazy", 0, RestoreMode::kLazy);
  ASSERT_TRUE(lazy.ok());
  EXPECT_LT(lazy->restore_time * 5, full_time)
      << "lazy restore must defer nearly all page loading";
  // Demand paging returns the right data.
  uint64_t got = 0;
  ASSERT_TRUE(lazy->group->processes[0]->vm().Read(addr + 5 * kMiB, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x77u);
}

TEST(SlsCheckpoint, MemoryOnlyCheckpointRollsBackWithoutIo) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 1 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("mem");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  uint64_t v1 = 1111;
  ASSERT_TRUE(proc->vm().Write(addr, &v1, sizeof(v1)).ok());
  uint64_t writes_before = m.device->stats().writes;
  auto ckpt = m.sls->Checkpoint(group, "", CheckpointMode::kMemoryOnly);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_EQ(m.device->stats().writes, writes_before) << "memory checkpoint must not do IO";

  uint64_t v2 = 2222;
  ASSERT_TRUE(proc->vm().Write(addr, &v2, sizeof(v2)).ok());
  auto restored = m.sls->Restore("mem", 0, RestoreMode::kFromMemory);
  ASSERT_TRUE(restored.ok());
  uint64_t got = 0;
  ASSERT_TRUE(restored->group->processes[0]->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 1111u);
}

TEST(SlsCheckpoint, TimeTravelToNamedEpoch) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 256 * kKiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("history");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  std::vector<uint64_t> epochs;
  for (uint64_t i = 1; i <= 3; i++) {
    ASSERT_TRUE(proc->vm().Write(addr, &i, sizeof(i)).ok());
    auto c = m.sls->Checkpoint(group, "v" + std::to_string(i));
    ASSERT_TRUE(c.ok());
    epochs.push_back(c->epoch);
    proc = group->processes[0];
  }
  // Rewind to the middle of history.
  auto restored = m.sls->Restore("history", epochs[1]);
  ASSERT_TRUE(restored.ok());
  uint64_t got = 0;
  ASSERT_TRUE(restored->group->processes[0]->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 2u);
}

TEST(SlsCheckpoint, EphemeralChildDroppedWithSigchld) {
  Machine m;
  Process* parent = *m.kernel->CreateProcess("master");
  Process* worker = *m.kernel->Fork(*parent);
  worker->ephemeral = true;
  ConsistencyGroup* group = *m.sls->CreateGroup("pool");
  ASSERT_TRUE(m.sls->Attach(group, parent).ok());
  ASSERT_TRUE(m.sls->Attach(group, worker).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());

  auto restored = m.sls->Restore("pool");
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->group->processes.size(), 1u) << "ephemeral worker must not be restored";
  Process* rp = restored->group->processes[0];
  EXPECT_TRUE(rp->pending_signals & (1ull << kSigChld))
      << "parent must see SIGCHLD for the dropped worker";
}

TEST(SlsCheckpoint, ExternalSynchronyHoldsUntilDurable) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 64 * kKiB);
  (void)addr;
  ConsistencyGroup* group = *m.sls->CreateGroup("es");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  auto server = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(server->Bind({1, 80, ""}).ok());
  ASSERT_TRUE(server->Listen(8).ok());
  auto client = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(client->Bind({2, 9999, ""}).ok());
  auto server_end = *client->ConnectTo(server);

  // The app "responds" before the covering checkpoint: held.
  ASSERT_TRUE(m.sls->SendExternal(group, client, "reply", 5).ok());
  EXPECT_FALSE(server_end->HasData());

  auto ckpt = m.sls->Checkpoint(group);
  ASSERT_TRUE(ckpt.ok());
  m.sim.events.RunUntil(ckpt->durable_at + 1);
  EXPECT_TRUE(server_end->HasData()) << "commit must release held messages";

  // With external synchrony disabled on the socket, sends bypass the buffer.
  client->external_sync_disabled = true;
  ASSERT_TRUE(m.sls->SendExternal(group, client, "fast", 4).ok());
  EXPECT_EQ(server_end->recv_buf.size(), 2u);
}

TEST(SlsCheckpoint, MemCtlExcludesRegion) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("app");
  auto keep = VmObject::CreateAnonymous(256 * kKiB);
  auto scratch = VmObject::CreateAnonymous(256 * kKiB);
  uint64_t keep_addr =
      *proc->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, keep, 0, false);
  uint64_t scratch_addr =
      *proc->vm().Map(0x800000, 256 * kKiB, kProtRead | kProtWrite, scratch, 0, false);
  ASSERT_TRUE(m.sls->MemCtl(proc, scratch_addr, /*exclude=*/true).ok());

  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  ASSERT_TRUE(proc->vm().DirtyRange(keep_addr, 256 * kKiB).ok());
  ASSERT_TRUE(proc->vm().DirtyRange(scratch_addr, 256 * kKiB).ok());
  auto ckpt = m.sls->Checkpoint(group);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_LE(ckpt->bytes_flushed, 300 * kKiB) << "excluded region must not be flushed";
}

TEST(SlsApi, MemCheckpointAtomicRegion) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 4 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("db");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  // Full checkpoint first (the paper's pattern), then atomic region updates.
  ASSERT_TRUE(proc->vm().DirtyRange(addr, 4 * kMiB).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());
  proc = group->processes[0];

  uint64_t v = 0xabcdef;
  ASSERT_TRUE(proc->vm().Write(addr + 2 * kMiB, &v, sizeof(v)).ok());
  auto atomic = m.sls->MemCheckpoint(proc, addr);
  ASSERT_TRUE(atomic.ok());
  EXPECT_LT(atomic->stop_time, 200 * kMicrosecond);
  EXPECT_GE(atomic->pages_flushed, 1u);

  // Restore at the atomic checkpoint's epoch composes region + full state.
  auto restored = m.sls->Restore("db", atomic->epoch);
  ASSERT_TRUE(restored.ok());
  uint64_t got = 0;
  ASSERT_TRUE(restored->group->processes[0]->vm().Read(addr + 2 * kMiB, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xabcdefu);
}

TEST(SlsApi, JournalRoundTrip) {
  Machine m;
  auto journal = m.sls->JournalCreate(1 * kMiB);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(m.sls->JournalAppend(*journal, "put k1 v1", 9).ok());
  ASSERT_TRUE(m.sls->JournalAppend(*journal, "put k2 v2", 9).ok());
  auto records = m.sls->JournalReplay(*journal);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
}

TEST(SlsCli, DumpProducesValidElfCore) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 512 * kKiB);
  ASSERT_TRUE(proc->vm().DirtyRange(addr, 64 * kKiB).ok());
  proc->AddThread();
  SlsCli cli(m.sls.get());
  ASSERT_TRUE(cli.Attach("app", proc).ok());
  auto core = cli.Dump("app", proc->local_pid());
  ASSERT_TRUE(core.ok());
  auto summary = InspectElfCore(*core);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->load_segments, 1u);
  EXPECT_EQ(summary->note_threads, 2u);
  EXPECT_EQ(summary->memory_bytes, 512 * kKiB);
}

TEST(SlsCli, SendRecvMigratesAcrossMachines) {
  Machine src;
  Machine dst;
  auto [proc, addr] = MakeAppProcess(src, 1 * kMiB);
  const char payload[] = "migrate me";
  ASSERT_TRUE(proc->vm().Write(addr + 100, payload, sizeof(payload)).ok());

  SlsCli src_cli(src.sls.get());
  ASSERT_TRUE(src_cli.Attach("webapp", proc).ok());
  ASSERT_TRUE(src_cli.Checkpoint("webapp", "pre-migration").ok());
  auto stream = src_cli.Send("webapp");
  ASSERT_TRUE(stream.ok());

  SlsCli dst_cli(dst.sls.get());
  auto arrived = dst_cli.Recv(*stream);
  ASSERT_TRUE(arrived.ok());
  Process* rp = arrived->group->processes[0];
  char buf[sizeof(payload)] = {};
  ASSERT_TRUE(rp->vm().Read(addr + 100, buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, payload);

  // The migrated app checkpoints natively on the destination.
  auto ckpt = dst.sls->Checkpoint(arrived->group);
  ASSERT_TRUE(ckpt.ok());
  EXPECT_GT(ckpt->bytes_flushed, 0u);
  auto roundtrip = dst.sls->Restore("webapp");
  ASSERT_TRUE(roundtrip.ok());
  ASSERT_TRUE(roundtrip->group->processes[0]->vm().Read(addr + 100, buf, sizeof(buf)).ok());
  EXPECT_STREQ(buf, payload);
}

TEST(SlsCli, SuspendResume) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 256 * kKiB);
  uint64_t v = 909;
  ASSERT_TRUE(proc->vm().Write(addr, &v, sizeof(v)).ok());
  SlsCli cli(m.sls.get());
  ASSERT_TRUE(cli.Attach("editor", proc).ok());
  ASSERT_TRUE(cli.Suspend("editor").ok());
  EXPECT_EQ(m.kernel->AllProcesses().size(), 0u);
  EXPECT_TRUE(m.sls->FindGroup("editor")->suspended);

  auto resumed = cli.Resume("editor");
  ASSERT_TRUE(resumed.ok());
  uint64_t got = 0;
  ASSERT_TRUE(resumed->group->processes[0]->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 909u);
  EXPECT_FALSE(m.sls->FindGroup("editor")->suspended);
}

TEST(SlsCheckpoint, VdsoReinjectedOnRestore) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("app");
  // Map the vDSO like the kernel would at exec.
  uint64_t vdso_addr =
      *proc->vm().Map(0x7fff0000, kPageSize, kProtRead, m.kernel->vdso(), 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group).ok());

  // "Software update" changes the platform vDSO before the restore.
  m.kernel->RegenerateVdso();
  uint8_t current = m.kernel->vdso()->LookupLocal(0)->data[0];
  auto restored = m.sls->Restore("app");
  ASSERT_TRUE(restored.ok());
  uint8_t got = 0;
  ASSERT_TRUE(restored->group->processes[0]->vm().Read(vdso_addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, current) << "restore must inject the current platform vDSO";
}

TEST(SlsCheckpoint, ManyCheckpointCyclesStayBounded) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 2 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("loop");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  Rng rng(5);
  std::vector<uint8_t> model(2 * kMiB, 0);
  for (int i = 0; i < 20; i++) {
    for (int w = 0; w < 50; w++) {
      uint64_t off = rng.Below(2 * kMiB - 8);
      uint64_t val = rng.Next();
      ASSERT_TRUE(proc->vm().Write(addr + off, &val, sizeof(val)).ok());
      std::memcpy(model.data() + off, &val, sizeof(val));
    }
    ASSERT_TRUE(m.sls->Checkpoint(group).ok());
    // Shadow chains must stay capped by the eager collapse.
    const VmObject* top = proc->vm().entries().begin()->second.object.get();
    int depth = 0;
    for (const VmObject* o = top; o != nullptr; o = o->parent()) {
      depth++;
    }
    EXPECT_LE(depth, 3) << "chain must not grow with checkpoint count";
  }
  auto restored = m.sls->Restore("loop");
  ASSERT_TRUE(restored.ok());
  std::vector<uint8_t> got(model.size());
  ASSERT_TRUE(restored->group->processes[0]->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, model);
}

}  // namespace
}  // namespace aurora
