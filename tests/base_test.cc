#include <gtest/gtest.h>

#include "src/base/checksum.h"
#include "src/base/event_queue.h"
#include "src/base/histogram.h"
#include "src/base/id_allocator.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/serializer.h"
#include "src/base/sim_clock.h"

namespace aurora {
namespace {

TEST(Result, StatusRoundTrip) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status err = Status::Error(Errc::kNotFound, "missing");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), Errc::kNotFound);
  EXPECT_EQ(err.ToString(), "NOT_FOUND: missing");
}

TEST(Result, ValueAndError) {
  Result<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  Result<int> e = Status::Error(Errc::kBusy, "later");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), Errc::kBusy);
}

TEST(Serializer, ScalarRoundTrip) {
  BinaryWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x1122334455667788ull);
  w.PutI64(-7);
  w.PutBool(true);
  w.PutDouble(3.25);
  w.PutString("aurora");
  BinaryReader r(w.data());
  EXPECT_EQ(*r.U8(), 0xab);
  EXPECT_EQ(*r.U16(), 0x1234);
  EXPECT_EQ(*r.U32(), 0xdeadbeefu);
  EXPECT_EQ(*r.U64(), 0x1122334455667788ull);
  EXPECT_EQ(*r.I64(), -7);
  EXPECT_TRUE(*r.Bool());
  EXPECT_DOUBLE_EQ(*r.Double(), 3.25);
  EXPECT_EQ(*r.String(), "aurora");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serializer, TruncationFailsCleanly) {
  BinaryWriter w;
  w.PutU64(77);
  w.PutString("hello world");
  const auto& buf = w.data();
  for (size_t cut = 0; cut < buf.size(); cut++) {
    BinaryReader r(buf.data(), cut);
    auto v = r.U64();
    if (!v.ok()) {
      continue;
    }
    auto s = r.String();
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
}

TEST(Serializer, OversizedLengthPrefixRejected) {
  BinaryWriter w;
  w.PutU64(UINT64_MAX);  // claims a huge byte field
  BinaryReader r(w.data());
  EXPECT_FALSE(r.Bytes().ok());
}

TEST(Checksum, Crc32cKnownVector) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
}

TEST(Checksum, DetectsCorruption) {
  std::vector<uint8_t> data(512);
  for (size_t i = 0; i < data.size(); i++) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  uint32_t crc = Crc32c(data.data(), data.size());
  data[100] ^= 1;
  EXPECT_NE(crc, Crc32c(data.data(), data.size()));
  uint64_t f = Fletcher64(data.data(), data.size());
  data[101] ^= 1;
  EXPECT_NE(f, Fletcher64(data.data(), data.size()));
}

TEST(SimClock, AdvanceSemantics) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0u);
  clock.Advance(100);
  EXPECT_EQ(clock.now(), 100u);
  EXPECT_EQ(clock.AdvanceTo(50), 0u);  // no going back
  EXPECT_EQ(clock.now(), 100u);
  EXPECT_EQ(clock.AdvanceTo(250), 150u);
  EXPECT_EQ(clock.now(), 250u);
}

TEST(EventQueue, FifoWithinSameTime) {
  SimClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  q.At(10, [&] { order.push_back(1); });
  q.At(10, [&] { order.push_back(2); });
  q.At(5, [&] { order.push_back(0); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(clock.now(), 10u);
}

TEST(EventQueue, RunUntilStopsAtDeadline) {
  SimClock clock;
  EventQueue q(&clock);
  int fired = 0;
  q.At(10, [&] { fired++; });
  q.At(100, [&] { fired++; });
  q.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now(), 50u);
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  SimClock clock;
  EventQueue q(&clock);
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) {
      q.After(10, chain);
    }
  };
  q.After(10, chain);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(clock.now(), 50u);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; i++) {
    sum += rng.NextExponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 5.0);
}

TEST(Zipf, BoundsAndSkew) {
  ZipfGenerator zipf(1000, 0.99, 42);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; i++) {
    uint64_t v = zipf.Next();
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  // Heavily skewed: the head must dominate the tail.
  EXPECT_GT(counts[0], counts[500] * 5);
}

TEST(Histogram, Percentiles) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Record(static_cast<SimDuration>(i) * kMicrosecond);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(ToMicros(h.Percentile(50)), 500, 40);
  EXPECT_NEAR(ToMicros(h.Percentile(99)), 990, 60);
  EXPECT_EQ(h.Max(), 1000 * kMicrosecond);
  EXPECT_EQ(h.Min(), kMicrosecond);
}

TEST(Histogram, MergeAndReset) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Max(), 300u);
  a.Reset();
  EXPECT_EQ(a.count(), 0u);
}

TEST(IdAllocator, AllocateReserveRelease) {
  IdAllocator alloc(10, 14);
  EXPECT_EQ(*alloc.Allocate(), 10u);
  EXPECT_EQ(*alloc.Allocate(), 11u);
  EXPECT_TRUE(alloc.Reserve(13).ok());
  EXPECT_FALSE(alloc.Reserve(13).ok());  // already used
  EXPECT_EQ(*alloc.Allocate(), 12u);
  EXPECT_EQ(*alloc.Allocate(), 14u);  // 13 skipped (reserved)
  EXPECT_FALSE(alloc.Allocate().ok());  // exhausted
  alloc.Release(11);
  EXPECT_EQ(*alloc.Allocate(), 11u);
}

TEST(IdAllocator, ReserveOutOfRange) {
  IdAllocator alloc(10, 14);
  EXPECT_EQ(alloc.Reserve(9).code(), Errc::kOutOfRange);
  EXPECT_EQ(alloc.Reserve(15).code(), Errc::kOutOfRange);
}

}  // namespace
}  // namespace aurora
