// File-descriptor syscall layer (read/write/lseek/close), rename, and the
// periodic checkpoint driver.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/sim_context.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

class SyscallTest : public ::testing::Test {
 protected:
  SyscallTest() {
    device_ = MakePaperTestbedStore(&sim_.clock, 1 * kGiB);
    store_ = *ObjectStore::Format(device_.get(), &sim_);
    fs_ = std::make_unique<AuroraFs>(&sim_, store_.get());
    kernel_ = std::make_unique<Kernel>(&sim_);
    sls_ = std::make_unique<Sls>(&sim_, kernel_.get(), store_.get(), fs_.get());
  }
  SimContext sim_;
  std::unique_ptr<BlockDevice> device_;
  std::unique_ptr<ObjectStore> store_;
  std::unique_ptr<AuroraFs> fs_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<Sls> sls_;
};

TEST_F(SyscallTest, ReadWriteSeekRoundTrip) {
  Process* proc = *kernel_->CreateProcess("app");
  int fd = *kernel_->Open(*proc, "file.txt", kOpenRead | kOpenWrite, true);
  EXPECT_EQ(*kernel_->WriteFd(*proc, fd, "hello world", 11), 11u);
  EXPECT_EQ(*kernel_->SeekFd(*proc, fd, 0, 0), 0u);
  char buf[12] = {};
  EXPECT_EQ(*kernel_->ReadFd(*proc, fd, buf, 11), 11u);
  EXPECT_STREQ(buf, "hello world");
  // SEEK_CUR / SEEK_END.
  EXPECT_EQ(*kernel_->SeekFd(*proc, fd, -5, 1), 6u);
  EXPECT_EQ(*kernel_->SeekFd(*proc, fd, -1, 2), 10u);
  char c = 0;
  EXPECT_EQ(*kernel_->ReadFd(*proc, fd, &c, 1), 1u);
  EXPECT_EQ(c, 'd');
  EXPECT_FALSE(kernel_->SeekFd(*proc, fd, -100, 0).ok());
}

TEST_F(SyscallTest, ForkedChildSharesOffset) {
  Process* parent = *kernel_->CreateProcess("p");
  int fd = *kernel_->Open(*parent, "shared", kOpenRead | kOpenWrite, true);
  ASSERT_TRUE(kernel_->WriteFd(*parent, fd, "abcdef", 6).ok());
  ASSERT_TRUE(kernel_->SeekFd(*parent, fd, 0, 0).ok());
  Process* child = *kernel_->Fork(*parent);

  char buf[4] = {};
  // The POSIX behavior the paper's fd example describes: the child's read
  // moves the parent's offset.
  EXPECT_EQ(*kernel_->ReadFd(*child, fd, buf, 3), 3u);
  EXPECT_EQ(*kernel_->ReadFd(*parent, fd, buf, 3), 3u);
  EXPECT_EQ(0, std::memcmp(buf, "def", 3));
}

TEST_F(SyscallTest, SeparateOpensHaveIndependentOffsets) {
  Process* proc = *kernel_->CreateProcess("p");
  int fd1 = *kernel_->Open(*proc, "indep", kOpenRead | kOpenWrite, true);
  ASSERT_TRUE(kernel_->WriteFd(*proc, fd1, "123456", 6).ok());
  int fd2 = *kernel_->Open(*proc, "indep", kOpenRead, false);
  char buf[4] = {};
  EXPECT_EQ(*kernel_->ReadFd(*proc, fd2, buf, 3), 3u);
  EXPECT_EQ(0, std::memcmp(buf, "123", 3));
  // fd1's offset (6) is unaffected by fd2's reads.
  EXPECT_EQ(*kernel_->SeekFd(*proc, fd1, 0, 1), 6u);
}

TEST_F(SyscallTest, AppendModeWritesAtEof) {
  Process* proc = *kernel_->CreateProcess("p");
  int fd = *kernel_->Open(*proc, "log", kOpenWrite | kOpenAppend, true);
  ASSERT_TRUE(kernel_->WriteFd(*proc, fd, "one", 3).ok());
  ASSERT_TRUE(kernel_->SeekFd(*proc, fd, 0, 0).ok());  // ignored by append writes
  ASSERT_TRUE(kernel_->WriteFd(*proc, fd, "two", 3).ok());
  auto vn = *fs_->Lookup("log");
  char buf[7] = {};
  ASSERT_TRUE(vn->Read(0, buf, 6).ok());
  EXPECT_STREQ(buf, "onetwo");
}

TEST_F(SyscallTest, PipeIoThroughFds) {
  Process* proc = *kernel_->CreateProcess("p");
  auto [rfd, wfd] = *kernel_->MakePipe(*proc);
  EXPECT_EQ(*kernel_->WriteFd(*proc, wfd, "ping", 4), 4u);
  char buf[5] = {};
  EXPECT_EQ(*kernel_->ReadFd(*proc, rfd, buf, 4), 4u);
  EXPECT_STREQ(buf, "ping");
  // Direction enforcement.
  EXPECT_FALSE(kernel_->WriteFd(*proc, rfd, "x", 1).ok());
  EXPECT_FALSE(kernel_->ReadFd(*proc, wfd, buf, 1).ok());
}

TEST_F(SyscallTest, CloseReleasesDescriptor) {
  Process* proc = *kernel_->CreateProcess("p");
  int fd = *kernel_->Open(*proc, "f", kOpenRead, true);
  ASSERT_TRUE(kernel_->Close(*proc, fd).ok());
  EXPECT_FALSE(kernel_->ReadFd(*proc, fd, nullptr, 0).ok());
  EXPECT_FALSE(kernel_->Close(*proc, fd).ok());
  // The fd number is recycled by the next open.
  int fd2 = *kernel_->Open(*proc, "g", kOpenRead, true);
  EXPECT_EQ(fd2, fd);
}

TEST_F(SyscallTest, OffsetsSurviveCheckpointRestore) {
  Process* proc = *kernel_->CreateProcess("app");
  int fd = *kernel_->Open(*proc, "state", kOpenRead | kOpenWrite, true);
  ASSERT_TRUE(kernel_->WriteFd(*proc, fd, "persistent-offset", 17).ok());
  ConsistencyGroup* g = *sls_->CreateGroup("app");
  ASSERT_TRUE(sls_->Attach(g, proc).ok());
  ASSERT_TRUE(sls_->Checkpoint(g).ok());
  auto restored = *sls_->Restore("app");
  Process* rp = restored.group->processes[0];
  // The restored descriptor continues from offset 17.
  EXPECT_EQ(*kernel_->SeekFd(*rp, fd, 0, 1), 17u);
  ASSERT_TRUE(kernel_->WriteFd(*rp, fd, "!", 1).ok());
  char buf[19] = {};
  ASSERT_TRUE(kernel_->SeekFd(*rp, fd, 0, 0).ok());
  ASSERT_TRUE(kernel_->ReadFd(*rp, fd, buf, 18).ok());
  EXPECT_STREQ(buf, "persistent-offset!");
}

TEST_F(SyscallTest, RenameMovesAndReplaces) {
  auto a = *fs_->Create("a");
  ASSERT_TRUE(a->Write(0, "AAA", 3).ok());
  auto b = *fs_->Create("b");
  ASSERT_TRUE(b->Write(0, "BBB", 3).ok());
  ASSERT_TRUE(fs_->Rename("a", "b").ok());  // replaces b
  EXPECT_FALSE(fs_->Lookup("a").ok());
  auto moved = *fs_->Lookup("b");
  char buf[4] = {};
  ASSERT_TRUE(moved->Read(0, buf, 3).ok());
  EXPECT_STREQ(buf, "AAA");
  EXPECT_EQ(moved->ino(), a->ino());
  EXPECT_FALSE(fs_->Rename("missing", "x").ok());
  EXPECT_EQ(*fs_->PathOfIno(a->ino()), "b");
}

TEST_F(SyscallTest, PeriodicCheckpointsFireOnSchedule) {
  Process* proc = *kernel_->CreateProcess("periodic");
  auto obj = VmObject::CreateAnonymous(256 * kKiB);
  uint64_t addr = *proc->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* g = *sls_->CreateGroup("periodic");
  ASSERT_TRUE(sls_->Attach(g, proc).ok());
  g->period = 10 * kMillisecond;
  sls_->StartPeriodicCheckpoints(g);

  // Run the application for 100 ms of simulated time: ~10 checkpoints fire.
  uint64_t value = 0;
  SimTime deadline = sim_.clock.now() + 100 * kMillisecond;
  while (sim_.clock.now() < deadline) {
    value++;
    (void)proc->vm().Write(addr, &value, sizeof(value));
    sim_.clock.Advance(50 * kMicrosecond);
    sim_.events.RunUntil(sim_.clock.now());
  }
  EXPECT_GE(g->checkpoints_taken, 8u);
  EXPECT_LE(g->checkpoints_taken, 12u);

  sls_->StopPeriodicCheckpoints(g);
  uint64_t taken = g->checkpoints_taken;
  sim_.events.RunUntil(sim_.clock.now() + 100 * kMillisecond);
  EXPECT_EQ(g->checkpoints_taken, taken) << "no more checkpoints after stop";

  // Crash: at most ~one period of increments is lost.
  auto restored = *sls_->Restore("periodic");
  uint64_t got = 0;
  ASSERT_TRUE(restored.group->processes[0]->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_GT(got, 0u);
  EXPECT_LE(value - got, 250u);  // 10 ms / 50 us + slack
}

}  // namespace
}  // namespace aurora
