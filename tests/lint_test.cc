// aurora_lint's own conformance suite: each rule family must fire on its
// violating fixture with exactly the expected findings, the good fixture must
// come back empty, and — the repo gate — the real src/ tree must lint clean.
#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/aurora_lint/lint.h"

namespace aurora::lint {
namespace {

#ifndef AURORA_SOURCE_DIR
#error "AURORA_SOURCE_DIR must point at the repository root"
#endif

std::string Fixture(const std::string& name) {
  return std::string(AURORA_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

Options DefaultOptions() {
  Options opts;
  opts.AddDefaultExemptions();
  return opts;
}

// (rule, line) pairs in file order, for exact-match assertions.
std::vector<std::pair<std::string, int>> RuleLines(const std::vector<Finding>& fs) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(fs.size());
  for (const Finding& f : fs) {
    out.emplace_back(f.rule, f.line);
  }
  return out;
}

TEST(LintTest, GoodFixtureIsClean) {
  std::vector<Finding> fs = LintPath(Fixture("good.h"), DefaultOptions());
  for (const Finding& f : fs) {
    ADD_FAILURE() << "unexpected finding: " << f.ToString();
  }
}

TEST(LintTest, ErrorPropagationFamilyFires) {
  std::vector<Finding> fs = LintPath(Fixture("bad_error_propagation.h"), DefaultOptions());
  std::vector<std::pair<std::string, int>> expected = {
      {kRuleNodiscardType, 12}, {kRuleNodiscardApi, 19}, {kRuleNodiscardApi, 20},
      {kRuleVoidCast, 26},      {kRuleVoidCast, 27},     {kRuleIgnoreReason, 28},
  };
  std::sort(expected.begin(), expected.end());
  std::vector<std::pair<std::string, int>> got = RuleLines(fs);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(LintTest, DeterminismFamilyFires) {
  std::vector<Finding> fs = LintPath(Fixture("bad_determinism.cc"), DefaultOptions());
  std::vector<std::pair<std::string, int>> expected = {
      {kRuleWallClock, 11},      {kRuleWallClock, 15},      {kRuleUnseededRandom, 19},
      {kRuleUnseededRandom, 20}, {kRuleBuildTimestamp, 24}, {kRuleBuildTimestamp, 24},
  };
  std::sort(expected.begin(), expected.end());
  std::vector<std::pair<std::string, int>> got = RuleLines(fs);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(LintTest, HygieneOutputFires) {
  std::vector<Finding> fs = LintPath(Fixture("bad_hygiene.cc"), DefaultOptions());
  std::vector<std::pair<std::string, int>> expected = {
      {kRuleStdoutInLibrary, 9},
      {kRuleStdoutInLibrary, 10},
      {kRuleStdoutInLibrary, 11},
  };
  EXPECT_EQ(RuleLines(fs), expected);
}

TEST(LintTest, HygieneGuardFires) {
  std::vector<Finding> fs = LintPath(Fixture("bad_guard.h"), DefaultOptions());
  std::vector<std::pair<std::string, int>> expected = {{kRuleIncludeGuard, 1}};
  EXPECT_EQ(RuleLines(fs), expected);
}

TEST(LintTest, OutputExemptionCoversObsAndCli) {
  // The same noisy source is a finding in library code but exempt under the
  // default src/obs + CLI carve-outs.
  const std::string noisy = "#include <cstdio>\nvoid P() { printf(\"x\"); }\n";
  Options opts = DefaultOptions();
  EXPECT_EQ(LintFile("src/core/sls.cc", noisy, opts).size(), 1u);
  EXPECT_TRUE(LintFile("src/obs/exporter.cc", noisy, opts).empty());
  EXPECT_TRUE(LintFile("src/core/cli.cc", noisy, opts).empty());
}

TEST(LintTest, FamilyFilterRestrictsRules) {
  Options opts = DefaultOptions();
  opts.families = {"hygiene"};
  std::vector<Finding> fs = LintPath(Fixture("bad_determinism.cc"), opts);
  EXPECT_TRUE(fs.empty());
}

TEST(LintTest, SuppressionCommentSilencesFinding) {
  const std::string src =
      "#include <ctime>\n"
      "long A() { return time(nullptr); }  // aurora-lint: allow(wall-clock)\n"
      "long B() { return time(nullptr); }  // aurora-lint: allow(determinism)\n"
      "long C() { return time(nullptr); }\n";
  std::vector<Finding> fs = LintFile("src/x.cc", src, DefaultOptions());
  ASSERT_EQ(fs.size(), 1u);
  EXPECT_EQ(fs[0].line, 4);
  EXPECT_EQ(fs[0].rule, kRuleWallClock);
}

// The permanent repo gate: the shipped source tree must be finding-free. CI
// also runs the aurora_lint binary, but asserting it here keeps the gate
// inside `ctest` where every developer runs it.
TEST(LintTest, SourceTreeIsClean) {
  std::vector<Finding> fs = LintTree(std::string(AURORA_SOURCE_DIR) + "/src", DefaultOptions());
  for (const Finding& f : fs) {
    ADD_FAILURE() << f.ToString();
  }
}

// The lint tool lints itself — the tokenizer and rules live under tools/.
TEST(LintTest, LintToolIsClean) {
  Options opts = DefaultOptions();
  // The CLI prints usage with fprintf(stderr) and findings likewise; lint.cc
  // itself must not write to stdout either, so no extra exemptions.
  std::vector<Finding> fs =
      LintTree(std::string(AURORA_SOURCE_DIR) + "/tools", opts);
  for (const Finding& f : fs) {
    ADD_FAILURE() << f.ToString();
  }
}

}  // namespace
}  // namespace aurora::lint
