// Second wave of SLS tests: API edges, quiescing behavior under checkpoints,
// group lifecycle, UDP/SysV coverage, CLI surface.
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

struct Machine {
  explicit Machine(uint64_t store_bytes = 1 * kGiB) {
    device = MakePaperTestbedStore(&sim.clock, store_bytes);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }
  void Reboot() {
    store = *ObjectStore::Open(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }
  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

TEST(SlsGroups, DuplicateNamesAndAttachesRejected) {
  Machine m;
  ASSERT_TRUE(m.sls->CreateGroup("g").ok());
  EXPECT_FALSE(m.sls->CreateGroup("g").ok());
  Process* p = *m.kernel->CreateProcess("p");
  ConsistencyGroup* g = m.sls->FindGroup("g");
  ASSERT_TRUE(m.sls->Attach(g, p).ok());
  EXPECT_FALSE(m.sls->Attach(g, p).ok());
  EXPECT_TRUE(m.sls->Detach(p).ok());
  EXPECT_FALSE(m.sls->Detach(p).ok());
}

TEST(SlsGroups, DetachedProcessNotCheckpointed) {
  Machine m;
  Process* keeper = *m.kernel->CreateProcess("keeper");
  Process* worker = *m.kernel->CreateProcess("worker");
  ConsistencyGroup* g = *m.sls->CreateGroup("g");
  ASSERT_TRUE(m.sls->Attach(g, keeper).ok());
  ASSERT_TRUE(m.sls->Attach(g, worker).ok());
  ASSERT_TRUE(m.sls->Detach(worker).ok());  // sls detach: now ephemeral
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  auto restored = *m.sls->Restore("g");
  EXPECT_EQ(restored.group->processes.size(), 1u);
  EXPECT_EQ(restored.group->processes[0]->name(), "keeper");
}

TEST(SlsQuiesce, SleepingSyscallsRestartTransparently) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("sleeper");
  proc->threads()[0]->state = ThreadState::kKernelSleeping;
  ConsistencyGroup* g = *m.sls->CreateGroup("sleeper");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  // After resume the thread is back in its (reissued) sleeping syscall and
  // the restart flag has been consumed — no EINTR surfaces.
  EXPECT_EQ(proc->threads()[0]->state, ThreadState::kKernelSleeping);
  EXPECT_FALSE(proc->threads()[0]->restart_syscall);
}

TEST(SlsQuiesce, ThreadStateSurvivesRestore) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("threads");
  Thread& t2 = proc->AddThread();
  t2.cpu.rip = 0xdeadbeef;
  t2.cpu.rsp = 0x7fffffff0000;
  t2.cpu.gpr[0] = 42;
  t2.cpu.fpu[0] = 0x99;
  t2.sigmask = 0xf0f0;
  t2.priority = 7;
  uint64_t t2_local = t2.local_tid();
  ConsistencyGroup* g = *m.sls->CreateGroup("threads");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("threads");
  auto& threads = restored.group->processes[0]->threads();
  ASSERT_EQ(threads.size(), 2u);
  EXPECT_EQ(threads[1]->local_tid(), t2_local);
  EXPECT_EQ(threads[1]->cpu.rip, 0xdeadbeefu);
  EXPECT_EQ(threads[1]->cpu.rsp, 0x7fffffff0000u);
  EXPECT_EQ(threads[1]->cpu.gpr[0], 42u);
  EXPECT_EQ(threads[1]->cpu.fpu[0], 0x99);
  EXPECT_EQ(threads[1]->sigmask, 0xf0f0u);
  EXPECT_EQ(threads[1]->priority, 7);
}

TEST(SlsSignals, PendingSignalsAndHandlersSurvive) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("sig");
  proc->sigactions[10].handler = 0x401000;
  proc->sigactions[10].mask = 0x400;
  ASSERT_TRUE(m.kernel->Kill(proc->local_pid(), 10).ok());
  ConsistencyGroup* g = *m.sls->CreateGroup("sig");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("sig");
  Process* rp = restored.group->processes[0];
  EXPECT_TRUE(rp->pending_signals & (1ull << 10));
  EXPECT_EQ(rp->sigactions[10].handler, 0x401000u);
  EXPECT_EQ(rp->signal_queue.size(), 1u);
}

TEST(SlsSockets, UdpSocketStateSurvives) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("udp");
  int fd = *m.kernel->MakeSocket(*proc, SocketDomain::kInet, SocketProto::kUdp);
  auto sock = std::static_pointer_cast<Socket>((*proc->fds().Get(fd))->object);
  ASSERT_TRUE(sock->Bind({0x0a000002, 5353, ""}).ok());
  sock->options[1] = 64 * 1024;  // SO_RCVBUF
  SockSegment datagram;
  datagram.data = {'p', 'k', 't'};
  datagram.from = {0x0a000003, 9999, ""};
  sock->recv_bytes += datagram.data.size();
  sock->recv_buf.push_back(datagram);

  ConsistencyGroup* g = *m.sls->CreateGroup("udp");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("udp");
  auto* rs = static_cast<Socket*>(
      (*restored.group->processes[0]->fds().Get(fd))->object.get());
  EXPECT_EQ(rs->proto(), SocketProto::kUdp);
  EXPECT_EQ(rs->local.port, 5353);
  EXPECT_EQ(rs->options[1], 64 * 1024);
  ASSERT_EQ(rs->recv_buf.size(), 1u);
  EXPECT_EQ(rs->recv_buf[0].from.port, 9999);
}

TEST(SlsSockets, ConnectedPairRelinkedWithinGroup) {
  Machine m;
  Process* a = *m.kernel->CreateProcess("a");
  Process* b = *m.kernel->CreateProcess("b");
  int lfd = *m.kernel->MakeSocket(*b, SocketDomain::kInet, SocketProto::kTcp);
  auto listener = std::static_pointer_cast<Socket>((*b->fds().Get(lfd))->object);
  ASSERT_TRUE(listener->Bind({1, 80, ""}).ok());
  ASSERT_TRUE(listener->Listen(4).ok());
  int cfd = *m.kernel->MakeSocket(*a, SocketDomain::kInet, SocketProto::kTcp);
  auto client = std::static_pointer_cast<Socket>((*a->fds().Get(cfd))->object);
  ASSERT_TRUE(client->Bind({2, 3333, ""}).ok());
  auto server_end = *client->ConnectTo(listener);
  auto sdesc = std::make_shared<FileDescription>();
  sdesc->object = server_end;
  int sfd = b->fds().Install(sdesc);
  ASSERT_TRUE(client->Send("hello", 5).ok());
  uint32_t saved_snd_seq = client->snd_seq;

  ConsistencyGroup* g = *m.sls->CreateGroup("pair");
  ASSERT_TRUE(m.sls->Attach(g, a).ok());
  ASSERT_TRUE(m.sls->Attach(g, b).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("pair");
  auto rclient = std::static_pointer_cast<Socket>(
      (*restored.group->processes[0]->fds().Get(cfd))->object);
  auto rserver = std::static_pointer_cast<Socket>(
      (*restored.group->processes[1]->fds().Get(sfd))->object);
  EXPECT_EQ(rclient->snd_seq, saved_snd_seq) << "TCP sequence numbers restored";
  // The pair is relinked: a fresh send flows end to end.
  ASSERT_TRUE(rclient->Send("again", 5).ok());
  bool found = false;
  for (const auto& seg : rserver->recv_buf) {
    found |= std::string(seg.data.begin(), seg.data.end()) == "again";
  }
  EXPECT_TRUE(found);
}

TEST(SlsDevices, NonWhitelistedDeviceBlocksCheckpointRestore) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("gpu-app");
  int fd = *m.kernel->OpenDevice(*proc, "gpu0");  // not on the whitelist
  (void)fd;
  ConsistencyGroup* g = *m.sls->CreateGroup("gpu-app");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  // The checkpoint records the device, but restore refuses to fabricate it.
  auto restored = m.sls->Restore("gpu-app");
  EXPECT_FALSE(restored.ok());
  EXPECT_EQ(restored.status().code(), Errc::kNotSupported);
}

TEST(SlsAio, PendingReadsReissuedAfterRestore) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("aio");
  int fd = *m.kernel->Open(*proc, "data", kOpenRead, true);
  m.kernel->SubmitAio(*proc, fd, AioRequest::Op::kRead, 4096, 8192);
  m.kernel->SubmitAio(*proc, fd, AioRequest::Op::kWrite, 0, 4096);
  ConsistencyGroup* g = *m.sls->CreateGroup("aio");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("aio");
  Process* rp = restored.group->processes[0];
  // Only the read survives (writes were drained into the checkpoint) and it
  // is in-flight again, ready to be reissued.
  ASSERT_EQ(rp->aios.size(), 1u);
  EXPECT_EQ(rp->aios[0].op, AioRequest::Op::kRead);
  EXPECT_EQ(rp->aios[0].state, AioRequest::State::kInFlight);
  EXPECT_EQ(rp->aios[0].offset, 4096u);
}

TEST(SlsBarrier, AdvancesToDurability) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("b");
  auto obj = VmObject::CreateAnonymous(4 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 4 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(proc->vm().DirtyRange(addr, 4 * kMiB).ok());
  ConsistencyGroup* g = *m.sls->CreateGroup("b");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  auto ckpt = *m.sls->Checkpoint(g);
  EXPECT_GT(ckpt.durable_at, m.sim.clock.now()) << "flush must be asynchronous";
  ASSERT_TRUE(m.sls->Barrier(g).ok());
  EXPECT_GE(m.sim.clock.now(), ckpt.durable_at);
}

TEST(SlsCliSurface, PsListsGroupsAndHistory) {
  Machine m;
  SlsCli cli(m.sls.get());
  Process* proc = *m.kernel->CreateProcess("app");
  ASSERT_TRUE(cli.Attach("app", proc).ok());
  ASSERT_TRUE(cli.Checkpoint("app", "named-one").ok());
  auto lines = cli.Ps();
  bool saw_group = false;
  bool saw_ckpt = false;
  for (const auto& line : lines) {
    saw_group |= line.find("app") != std::string::npos && line.find("procs=1") != std::string::npos;
    saw_ckpt |= line.find("named-one") != std::string::npos;
  }
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_ckpt);
  EXPECT_FALSE(cli.Checkpoint("missing", "x").ok());
  EXPECT_FALSE(cli.Suspend("missing").ok());
  EXPECT_FALSE(cli.Dump("app", 424242).ok());
}

TEST(SlsRestoreModes, LazyRestoredAppCheckpointsIncrementally) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("lazy2");
  auto obj = VmObject::CreateAnonymous(4 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 4 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(proc->vm().DirtyRange(addr, 4 * kMiB).ok());
  ConsistencyGroup* g = *m.sls->CreateGroup("lazy2");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());

  auto restored = *m.sls->Restore("lazy2", 0, RestoreMode::kLazy);
  Process* rp = restored.group->processes[0];
  // Touch a few pages, then checkpoint: only those pages flush.
  uint64_t v = 123;
  ASSERT_TRUE(rp->vm().Write(addr + 64 * kPageSize, &v, sizeof(v)).ok());
  auto second = *m.sls->Checkpoint(restored.group);
  EXPECT_LE(second.pages_flushed, 8u)
      << "a lazily restored app must not re-flush its whole image";
  // And the data is still complete at the new epoch after a reboot.
  m.Reboot();
  auto again = *m.sls->Restore("lazy2");
  uint64_t got = 0;
  ASSERT_TRUE(again.group->processes[0]->vm().Read(addr + 64 * kPageSize, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 123u);
}

TEST(SlsManifest, PeekAndMemoryListing) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("peek");
  auto obj = VmObject::CreateAnonymous(128 * kKiB);
  (void)proc->vm().Map(0x400000, 128 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* g = *m.sls->CreateGroup("peek");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  auto ckpt = *m.sls->Checkpoint(g);
  auto found = *m.sls->FindManifest("peek", ckpt.epoch);
  std::vector<uint8_t> manifest(*m.store->SizeAtEpoch(found.first, found.second));
  ASSERT_TRUE(
      m.store->ReadAtEpoch(found.first, found.second, 0, manifest.data(), manifest.size()).ok());
  auto head = *PeekManifest(manifest);
  EXPECT_EQ(head.name, "peek");
  EXPECT_EQ(head.epoch, ckpt.epoch);
  auto memory = *ManifestMemoryObjects(manifest);
  ASSERT_FALSE(memory.empty());
  EXPECT_EQ(memory[0].second % kPageSize, 0u);
  EXPECT_FALSE(m.sls->FindManifest("nope", 0).ok());
}

TEST(SlsSysV, SegmentsSurviveRestoreWithIdsAndSharing) {
  Machine m;
  Process* a = *m.kernel->CreateProcess("a");
  Process* b = *m.kernel->CreateProcess("b");
  int fd_a = *m.kernel->ShmGet(*a, 0xbeef, 128 * kKiB);
  int fd_b = *m.kernel->ShmGet(*b, 0xbeef, 128 * kKiB);
  uint64_t addr_a = *m.kernel->ShmMap(*a, fd_a);
  uint64_t addr_b = *m.kernel->ShmMap(*b, fd_b);
  uint64_t v = 0x1234;
  ASSERT_TRUE(a->vm().Write(addr_a, &v, sizeof(v)).ok());
  auto shm = m.kernel->sysv_shm().begin()->second;
  int32_t saved_id = shm->shmid;

  ConsistencyGroup* g = *m.sls->CreateGroup("sysv");
  ASSERT_TRUE(m.sls->Attach(g, a).ok());
  ASSERT_TRUE(m.sls->Attach(g, b).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("sysv");
  // The segment is back in the global namespace with its id and key.
  auto found = m.kernel->FindSysVById(saved_id);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->key, 0xbeef);
  // And both processes still share it.
  uint64_t got = 0;
  ASSERT_TRUE(restored.group->processes[1]->vm().Read(addr_b, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x1234u);
  uint64_t nv = 0x5678;
  ASSERT_TRUE(restored.group->processes[0]->vm().Write(addr_a, &nv, sizeof(nv)).ok());
  ASSERT_TRUE(restored.group->processes[1]->vm().Read(addr_b, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0x5678u);
}

TEST(SlsCliSurface, PruneReclaimsHistory) {
  Machine m;
  SlsCli cli(m.sls.get());
  Process* proc = *m.kernel->CreateProcess("hist");
  auto obj = VmObject::CreateAnonymous(2 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 2 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(cli.Attach("hist", proc).ok());
  std::vector<uint64_t> epochs;
  for (int i = 0; i < 6; i++) {
    ASSERT_TRUE(proc->vm().DirtyRange(addr, 2 * kMiB).ok());
    epochs.push_back((*cli.Checkpoint("hist", "v" + std::to_string(i))).epoch);
  }
  uint64_t free_before = m.store->FreeBlocks();
  ASSERT_TRUE(cli.Prune(epochs[4]).ok());
  EXPECT_GT(m.store->FreeBlocks(), free_before);
  // Pruned epochs are gone; retained ones still restore.
  EXPECT_FALSE(m.sls->Restore("hist", epochs[1]).ok());
  EXPECT_TRUE(m.sls->Restore("hist", epochs[5]).ok());
}

TEST(SlsSockets, ShutdownStateSurvivesRestore) {
  Machine m;
  Process* a = *m.kernel->CreateProcess("a");
  int lfd = *m.kernel->MakeSocket(*a, SocketDomain::kInet, SocketProto::kTcp);
  auto listener = std::static_pointer_cast<Socket>((*a->fds().Get(lfd))->object);
  ASSERT_TRUE(listener->Bind({1, 80, ""}).ok());
  ASSERT_TRUE(listener->Listen(4).ok());
  int cfd = *m.kernel->MakeSocket(*a, SocketDomain::kInet, SocketProto::kTcp);
  auto client = std::static_pointer_cast<Socket>((*a->fds().Get(cfd))->object);
  ASSERT_TRUE(client->Bind({2, 999, ""}).ok());
  auto server_end = *client->ConnectTo(listener);
  auto sdesc = std::make_shared<FileDescription>();
  sdesc->object = server_end;
  int sfd = a->fds().Install(sdesc);
  client->Shutdown();

  ConsistencyGroup* g = *m.sls->CreateGroup("a");
  ASSERT_TRUE(m.sls->Attach(g, a).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("a");
  auto* rs = static_cast<Socket*>(
      (*restored.group->processes[0]->fds().Get(sfd))->object.get());
  EXPECT_TRUE(rs->peer_shutdown) << "half-closed state must survive";
  auto eof = *rs->Recv(16);
  EXPECT_TRUE(eof.data.empty());
}

TEST(SlsRestoreModes, MemoryRestoreOfForkedAppAfterMemOnlyCheckpoint) {
  // Regression: a from-memory restore must resolve *whole* chains —
  // including fork parents that were never flushed by a full checkpoint.
  Machine m;
  Process* parent = *m.kernel->CreateProcess("p");
  auto obj = VmObject::CreateAnonymous(256 * kKiB);
  uint64_t addr = *parent->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, obj, 0,
                                    /*cow=*/true);
  uint64_t inherited = 0xface;
  ASSERT_TRUE(parent->vm().Write(addr, &inherited, sizeof(inherited)).ok());
  Process* child = *m.kernel->Fork(*parent);
  uint64_t child_own = 0xbead;
  ASSERT_TRUE(child->vm().Write(addr + 8, &child_own, sizeof(child_own)).ok());

  ConsistencyGroup* g = *m.sls->CreateGroup("p");
  ASSERT_TRUE(m.sls->Attach(g, parent).ok());
  ASSERT_TRUE(m.sls->Attach(g, child).ok());
  // Only a memory checkpoint: nothing reaches the store.
  ASSERT_TRUE(m.sls->Checkpoint(g, "", CheckpointMode::kMemoryOnly).ok());

  uint64_t junk = 1;
  ASSERT_TRUE(child->vm().Write(addr, &junk, sizeof(junk)).ok());
  auto restored = *m.sls->Restore("p", 0, RestoreMode::kFromMemory);
  ASSERT_EQ(restored.group->processes.size(), 2u);
  Process* rc = restored.group->processes[1];
  uint64_t got = 0;
  ASSERT_TRUE(rc->vm().Read(addr, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xfaceu) << "fork-parent data must survive a memory restore";
  ASSERT_TRUE(rc->vm().Read(addr + 8, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xbeadu);
}

TEST(SlsFilesystem, CheckpointConsistencyForFiles) {
  // AuroraFS semantics (paper 5.2): fsync is a no-op and file durability
  // comes from checkpoints — data written after the last checkpoint is
  // rolled back by a crash, together with the process state that wrote it.
  Machine m;
  Process* proc = *m.kernel->CreateProcess("editor");
  int fd = *m.kernel->Open(*proc, "doc.txt", kOpenRead | kOpenWrite, true);
  ConsistencyGroup* g = *m.sls->CreateGroup("editor");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());

  ASSERT_TRUE(m.kernel->WriteFd(*proc, fd, "checkpointed", 12).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  ASSERT_TRUE(m.sls->Barrier(g).ok());

  // Post-checkpoint write + fsync: the fsync is free and NOT durable.
  ASSERT_TRUE(m.kernel->WriteFd(*proc, fd, "-volatile", 9).ok());
  auto vn = *m.fs->Lookup("doc.txt");
  ASSERT_TRUE(vn->Fsync().ok());

  m.Reboot();
  auto restored = *m.sls->Restore("editor");
  Process* rp = restored.group->processes[0];
  // The file AND the fd offset are back at the checkpoint: consistent.
  EXPECT_EQ(*m.kernel->SeekFd(*rp, fd, 0, 1), 12u);
  char buf[32] = {};
  ASSERT_TRUE(m.kernel->SeekFd(*rp, fd, 0, 0).ok());
  auto n = *m.kernel->ReadFd(*rp, fd, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, n), "checkpointed")
      << "post-checkpoint file data must roll back with the process";
}

TEST(SlsFilesystem, AnonymousFileSurvivesCrashViaHiddenRefs) {
  // The paper's anonymous-file case: open + unlink + checkpoint + crash.
  Machine m;
  Process* proc = *m.kernel->CreateProcess("tmpuser");
  int fd = *m.kernel->Open(*proc, "scratch", kOpenRead | kOpenWrite, true);
  ASSERT_TRUE(m.kernel->WriteFd(*proc, fd, "secret-temp-state", 17).ok());
  ASSERT_TRUE(m.fs->Unlink("scratch").ok());  // anonymous now
  EXPECT_FALSE(m.fs->Lookup("scratch").ok());

  ConsistencyGroup* g = *m.sls->CreateGroup("tmpuser");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  m.Reboot();
  auto restored = *m.sls->Restore("tmpuser");
  Process* rp = restored.group->processes[0];
  char buf[32] = {};
  ASSERT_TRUE(m.kernel->SeekFd(*rp, fd, 0, 0).ok());
  auto n = *m.kernel->ReadFd(*rp, fd, buf, sizeof(buf));
  EXPECT_EQ(std::string(buf, n), "secret-temp-state")
      << "unlinked-but-open files must survive through hidden references";
  // Still anonymous: no namespace entry reappears.
  EXPECT_FALSE(m.fs->Lookup("scratch").ok());
}

TEST(SlsStopTimes, HistogramAccumulates) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("stats");
  auto obj = VmObject::CreateAnonymous(1 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 1 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* g = *m.sls->CreateGroup("stats");
  ASSERT_TRUE(m.sls->Attach(g, proc).ok());
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(proc->vm().DirtyRange(addr, 32 * kPageSize).ok());
    ASSERT_TRUE(m.sls->Checkpoint(g).ok());
  }
  EXPECT_EQ(g->checkpoints_taken, 10u);
  EXPECT_EQ(g->stop_times.count(), 10u);
  EXPECT_GT(g->stop_times.Percentile(50), 0u);
  EXPECT_GT(g->bytes_flushed_total, 10u * 32 * kPageSize / 2);
}

}  // namespace
}  // namespace aurora
