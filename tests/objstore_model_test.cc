// Property test: the object store against a trivial in-memory reference
// model, across random writes, epochs, object lifecycles and reopen cycles.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

// Reference model: byte arrays per object per committed epoch.
struct Model {
  std::map<uint64_t, std::vector<uint8_t>> live;                   // oid -> bytes
  std::map<uint64_t, std::map<uint64_t, std::vector<uint8_t>>> epochs;  // epoch -> snapshot
};

class StoreModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StoreModelTest, RandomOpsMatchReferenceModel) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, (256 * kMiB) / kPageSize);
  auto store = *ObjectStore::Format(&device, &sim);
  Model model;
  Rng rng(GetParam());
  std::vector<uint64_t> oids;
  constexpr uint64_t kMaxObjectSize = 512 * 1024;

  auto verify_live = [&](uint64_t oid) {
    const auto& expect = model.live[oid];
    std::vector<uint8_t> got(expect.size());
    if (!expect.empty()) {
      ASSERT_TRUE(store->ReadAt(Oid{oid}, 0, got.data(), got.size()).ok());
      ASSERT_EQ(got, expect) << "live mismatch oid " << oid;
    }
  };

  for (int step = 0; step < 400; step++) {
    double dice = rng.NextDouble();
    if (dice < 0.15 || oids.empty()) {
      auto oid = *store->CreateObject(ObjType::kMemory);
      oids.push_back(oid.value);
      model.live[oid.value] = {};
    } else if (dice < 0.70) {
      // Random write (possibly extending) through either path.
      uint64_t oid = oids[rng.Below(oids.size())];
      if (model.live.count(oid) == 0) {
        continue;
      }
      uint64_t off = rng.Below(kMaxObjectSize / 2);
      uint64_t len = 1 + rng.Below(96 * 1024);
      std::vector<uint8_t> data(len);
      for (auto& b : data) {
        b = static_cast<uint8_t>(rng.Next());
      }
      if (rng.NextBool(0.5)) {
        ASSERT_TRUE(store->WriteAt(Oid{oid}, off, data.data(), data.size()).ok());
      } else {
        std::vector<ObjectStore::IoRun> runs;
        // Split into a few runs to exercise the batch path.
        uint64_t pos = 0;
        while (pos < len) {
          uint64_t chunk = std::min<uint64_t>(len - pos, 1 + rng.Below(20000));
          runs.push_back(ObjectStore::IoRun{off + pos, data.data() + pos, chunk});
          pos += chunk;
        }
        ASSERT_TRUE(store->WriteAtBatch(Oid{oid}, runs).ok());
      }
      auto& bytes = model.live[oid];
      if (bytes.size() < off + len) {
        bytes.resize(off + len, 0);
      }
      std::memcpy(bytes.data() + off, data.data(), len);
    } else if (dice < 0.80) {
      // Commit a checkpoint: snapshot the model.
      uint64_t epoch = store->current_epoch();
      ASSERT_TRUE(store->CommitCheckpoint("e" + std::to_string(epoch)).ok());
      model.epochs[epoch] = model.live;
    } else if (dice < 0.88) {
      // Delete an object from the live view.
      uint64_t idx = rng.Below(oids.size());
      uint64_t oid = oids[idx];
      if (model.live.count(oid) > 0) {
        ASSERT_TRUE(store->DeleteObject(Oid{oid}).ok());
        model.live.erase(oid);
      }
    } else if (dice < 0.94) {
      // Random point verification of the live view.
      uint64_t oid = oids[rng.Below(oids.size())];
      if (model.live.count(oid) > 0) {
        verify_live(oid);
      }
    } else {
      // Crash + reopen: the live view reverts to the last committed epoch.
      ASSERT_TRUE(store->CommitCheckpoint("pre-crash").ok());
      model.epochs[store->current_epoch() - 1] = model.live;
      store = *ObjectStore::Open(&device, &sim);
    }
  }

  // Final: every committed epoch must read back exactly.
  for (const auto& [epoch, snapshot] : model.epochs) {
    for (const auto& [oid, bytes] : snapshot) {
      if (bytes.empty()) {
        continue;
      }
      std::vector<uint8_t> got(bytes.size());
      auto st = store->ReadAtEpoch(epoch, Oid{oid}, 0, got.data(), got.size());
      if (!st.ok()) {
        // Epoch may have been superseded only if we never pruned: it must
        // always be readable in this test.
        FAIL() << "epoch " << epoch << " oid " << oid << ": " << st.ToString();
      }
      ASSERT_EQ(got, bytes) << "epoch " << epoch << " oid " << oid;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StoreModelTest, ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace aurora
