// A header aurora_lint must accept without findings: guarded, every
// Status/Result API [[nodiscard]], discards audited, time and randomness
// simulated.
#ifndef TESTS_LINT_FIXTURES_GOOD_H_
#define TESTS_LINT_FIXTURES_GOOD_H_

#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/sim_clock.h"

namespace aurora::lintfix {

class Flusher {
 public:
  [[nodiscard]] Status Flush();
  [[nodiscard]] virtual Result<uint64_t> Drain(uint64_t max);
  [[nodiscard]] static Status Sync(int fd);
  virtual ~Flusher() = default;

  // Not Status-returning: no annotation demanded.
  uint64_t pending() const { return pending_; }
  void Reset() { pending_ = 0; }

 private:
  uint64_t pending_ = 0;
};

inline void AuditedDrop(Flusher* f) {
  // The sanctioned discard: macro + reason. A bare (void) here would be a
  // void-cast finding.
  AURORA_IGNORE_STATUS(f->Flush(), "best-effort flush on shutdown path");
  // Parameter silencing without a call stays legal.
  int unused = 0;
  (void)unused;
}

inline uint64_t SeededDraw(Rng* rng, SimClock* clock) {
  // Simulated time + seeded randomness are the approved sources.
  return rng->Next() ^ static_cast<uint64_t>(clock->now());
}

// Suppression comments keep a deliberate exception visible at the call site.
inline void SuppressedDrop(Flusher* f) {
  (void)f->Flush();  // aurora-lint: allow(void-cast)
}

}  // namespace aurora::lintfix

#endif  // TESTS_LINT_FIXTURES_GOOD_H_
