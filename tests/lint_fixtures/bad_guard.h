// A header with no include guard: hygiene/include-guard fires (line 1).
namespace aurora::lintfix {
inline int GuardlessAnswer() { return 42; }
}  // namespace aurora::lintfix
