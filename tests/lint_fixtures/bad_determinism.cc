// Violations for the determinism family. Line numbers are asserted by
// lint_test — keep the markers in sync when editing.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace aurora::lintfix {

inline long WallClockNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();  // line 11: wall-clock
}

inline long HostTime() {
  return time(nullptr);  // line 15: wall-clock
}

inline int HostRandom() {
  std::random_device rd;  // line 19: unseeded-random
  return rand() + static_cast<int>(rd());  // line 20: unseeded-random
}

inline const char* BuildStamp() {
  return __DATE__ " " __TIME__;  // line 24: build-timestamp (twice)
}

inline long Legal(long (*cb)()) {
  // Declaring a function named like a banned call needs an explicit waiver;
  // *member calls* through it (w.time()) are then legal as-is.
  struct W {
    long time() { return 7; }  // aurora-lint: allow(wall-clock)
  } w;
  return w.time() + cb();
}

}  // namespace aurora::lintfix
