// Violations for the error-propagation family. Line numbers are asserted by
// lint_test — keep the markers in sync when editing.
#ifndef TESTS_LINT_FIXTURES_BAD_ERROR_PROPAGATION_H_
#define TESTS_LINT_FIXTURES_BAD_ERROR_PROPAGATION_H_

#include "src/base/result.h"

namespace aurora::lintfix {

class [[nodiscard]] Status;  // forward declaration: no finding

class Status {  // line 12: nodiscard-type
 public:
  bool ok() const { return true; }
};

class Sink {
 public:
  Status Commit();                        // line 19: nodiscard-api
  virtual Result<int> Take(int n);        // line 20: nodiscard-api
  [[nodiscard]] Status Annotated();       // fine
  virtual ~Sink() = default;
};

inline void Drops(Sink* s) {
  (void)s->Commit();                      // line 26: void-cast
  static_cast<void>(s->Commit());         // line 27: void-cast
  AURORA_IGNORE_STATUS(s->Commit(), "");  // line 28: ignore-reason
}

}  // namespace aurora::lintfix

#endif  // TESTS_LINT_FIXTURES_BAD_ERROR_PROPAGATION_H_
