// Violations for the hygiene family (output side). Line numbers are asserted
// by lint_test — keep the markers in sync when editing.
#include <cstdio>
#include <iostream>

namespace aurora::lintfix {

inline void Noisy(int n) {
  std::cout << "progress: " << n << "\n";  // line 9: stdout-in-library
  printf("progress: %d\n", n);             // line 10: stdout-in-library
  fprintf(stdout, "progress: %d\n", n);    // line 11: stdout-in-library
  fprintf(stderr, "errors are fine\n");    // stderr diagnostics stay legal
  char buf[32];
  snprintf(buf, sizeof(buf), "%d", n);     // formatting to buffers stays legal
}

}  // namespace aurora::lintfix
