// Backend conformance: every CheckpointBackend must round-trip a group
// through checkpoint -> crash/teardown -> restore with identical process,
// fd and memory state, and export the per-backend shipping metrics.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/base/sim_context.h"
#include "src/core/backend.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

// One simulated machine: devices, store, file system, kernel and SLS.
struct Machine {
  explicit Machine(uint64_t store_bytes = 1 * kGiB) {
    device = MakePaperTestbedStore(&sim.clock, store_bytes);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

class BackendConformance : public ::testing::TestWithParam<const char*> {
 protected:
  // Registers (if needed) and returns the backend under test.
  CheckpointBackend* PrepareBackend(Machine& m) {
    std::string which = GetParam();
    if (which == "store") {
      return m.sls->store_backend();
    }
    if (which == "memory") {
      return m.sls->RegisterBackend(std::make_unique<MemoryBackend>(&m.sim));
    }
    // net: the peer image table stands in for the remote machine.
    auto* peer = static_cast<MemoryBackend*>(
        m.sls->RegisterBackend(std::make_unique<MemoryBackend>(&m.sim, "peer")));
    return m.sls->RegisterBackend(std::make_unique<NetBackend>(&m.sim, peer));
  }
};

TEST_P(BackendConformance, CheckpointTeardownRestoreRoundTrip) {
  Machine m;
  CheckpointBackend* backend = PrepareBackend(m);

  constexpr uint64_t kMem = 1 * kMiB;
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(kMem);
  uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);

  // Patterned memory so a wrong page is detectable, plus an fd with state.
  std::vector<uint8_t> pattern(kMem);
  for (uint64_t i = 0; i < kMem; i++) {
    pattern[i] = static_cast<uint8_t>(i * 31 + (i >> 12));
  }
  ASSERT_TRUE(proc->vm().Write(addr, pattern.data(), pattern.size()).ok());
  auto [rfd, wfd] = *m.kernel->MakePipe(*proc);
  const char msg[] = "in flight";
  ASSERT_TRUE(m.kernel->WriteFd(*proc, wfd, msg, sizeof(msg)).ok());

  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  ASSERT_TRUE(m.sls->SetBackend(group, backend->name()).ok());

  auto c1 = m.sls->Checkpoint(group, "first");
  ASSERT_TRUE(c1.ok());
  EXPECT_GT(c1->durable_at, 0u);

  // Mutate half the region so the second checkpoint is incremental.
  for (uint64_t i = kMem / 2; i < kMem; i++) {
    pattern[i] = static_cast<uint8_t>(pattern[i] ^ 0x5a);
  }
  ASSERT_TRUE(proc->vm()
                  .Write(addr + kMem / 2, pattern.data() + kMem / 2, kMem / 2)
                  .ok());
  auto c2 = m.sls->Checkpoint(group, "second");
  ASSERT_TRUE(c2.ok());
  uint64_t saved_pid = proc->local_pid();

  // Crash: scribble, then tear the whole incarnation down.
  std::vector<uint8_t> junk(kMem, 0xee);
  ASSERT_TRUE(proc->vm().Write(addr, junk.data(), junk.size()).ok());
  for (Process* p : group->processes) {
    m.kernel->DestroyProcess(p);
  }
  group->processes.clear();
  ASSERT_TRUE(m.kernel->AllProcesses().empty());

  auto restored = m.sls->Restore("app", 0, RestoreMode::kFull, backend);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  ASSERT_EQ(restored->group->processes.size(), 1u);
  Process* rp = restored->group->processes[0];
  EXPECT_EQ(rp->local_pid(), saved_pid);

  std::vector<uint8_t> got(kMem);
  ASSERT_TRUE(rp->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, pattern) << "memory must match the second checkpoint";

  char pipe_buf[sizeof(msg)] = {};
  ASSERT_TRUE(m.kernel->ReadFd(*rp, rfd, pipe_buf, sizeof(pipe_buf)).ok());
  EXPECT_STREQ(pipe_buf, msg) << "buffered pipe data must survive";

  // Per-backend shipping metrics (satellite: sls stat / BENCH json rows).
  std::string prefix = "backend." + backend->name() + ".";
  EXPECT_GT(m.sim.metrics.counter(prefix + "bytes_shipped").value(), 0u);
  EXPECT_GE(m.sim.metrics.counter(prefix + "epochs_committed").value(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendConformance,
                         ::testing::Values("store", "memory", "net"));

}  // namespace
}  // namespace aurora
