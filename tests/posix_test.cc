#include <gtest/gtest.h>

#include <cstring>

#include "src/base/sim_context.h"
#include "src/posix/kernel.h"

namespace aurora {
namespace {

class PosixTest : public ::testing::Test {
 protected:
  PosixTest() : kernel_(&sim_) {}
  SimContext sim_;
  Kernel kernel_;
};

TEST_F(PosixTest, ProcessTreeAndGroups) {
  auto parent = kernel_.CreateProcess("init");
  ASSERT_TRUE(parent.ok());
  auto child = kernel_.Fork(**parent);
  ASSERT_TRUE(child.ok());
  EXPECT_EQ((*child)->parent, *parent);
  EXPECT_EQ((*parent)->children.size(), 1u);
  EXPECT_EQ((*child)->pgid, (*parent)->pgid);
  EXPECT_EQ((*child)->sid, (*parent)->sid);
  EXPECT_NE((*child)->pid(), (*parent)->pid());
  EXPECT_EQ(kernel_.FindPid((*child)->pid()), *child);
}

TEST_F(PosixTest, FdSharingAcrossFork) {
  auto proc = *kernel_.CreateProcess("app");
  auto pipe_fds = kernel_.MakePipe(*proc);
  ASSERT_TRUE(pipe_fds.ok());
  auto [rfd, wfd] = *pipe_fds;

  auto child = *kernel_.Fork(*proc);
  // Same FileDescription object: offsets and flags are shared.
  auto parent_desc = *proc->fds().Get(rfd);
  auto child_desc = *child->fds().Get(rfd);
  EXPECT_EQ(parent_desc.get(), child_desc.get());

  // dup shares too; a fresh open would not (no open here, pipes are unique).
  auto dupfd = proc->fds().Dup(wfd);
  ASSERT_TRUE(dupfd.ok());
  EXPECT_EQ((*proc->fds().Get(*dupfd)).get(), (*proc->fds().Get(wfd)).get());
}

TEST_F(PosixTest, PipeDataFlow) {
  auto proc = *kernel_.CreateProcess("app");
  auto [rfd, wfd] = *kernel_.MakePipe(*proc);
  auto wdesc = *proc->fds().Get(wfd);
  auto* pipe = static_cast<Pipe*>(wdesc->object.get());
  ASSERT_TRUE(pipe->Write("hello", 5).ok());
  char buf[8] = {};
  auto n = pipe->Read(buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_STREQ(buf, "hello");
  // Empty pipe with writer open: would block.
  EXPECT_EQ(pipe->Read(buf, 1).status().code(), Errc::kWouldBlock);
  pipe->write_open = false;
  EXPECT_EQ(*pipe->Read(buf, 1), 0u);  // EOF
  (void)rfd;
}

TEST_F(PosixTest, PipeBackpressure) {
  Pipe pipe;
  std::vector<uint8_t> big(Pipe::kCapacity + 100, 0x7);
  auto n = pipe.Write(big.data(), big.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, Pipe::kCapacity);
  EXPECT_EQ(pipe.Write(big.data(), 1).status().code(), Errc::kWouldBlock);
}

TEST_F(PosixTest, SocketConnectAcceptSend) {
  auto server = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(server->Bind({0x7f000001, 8080, ""}).ok());
  ASSERT_TRUE(server->Listen(16).ok());

  auto client = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(client->Bind({0x7f000001, 40000, ""}).ok());
  auto server_end = client->ConnectTo(server);
  ASSERT_TRUE(server_end.ok());
  auto accepted = server->Accept();
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->get(), server_end->get());

  ASSERT_TRUE(client->Send("ping", 4).ok());
  auto seg = (*accepted)->Recv(64);
  ASSERT_TRUE(seg.ok());
  EXPECT_EQ(std::string(seg->data.begin(), seg->data.end()), "ping");
  EXPECT_EQ(client->snd_seq, 5u);  // ISN 1 + 4 bytes
}

TEST_F(PosixTest, SocketAcceptQueueBackpressure) {
  auto server = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(server->Bind({1, 80, ""}).ok());
  ASSERT_TRUE(server->Listen(1).ok());
  auto c1 = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(c1->Bind({2, 1000, ""}).ok());
  ASSERT_TRUE(c1->ConnectTo(server).ok());
  auto c2 = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(c2->Bind({2, 1001, ""}).ok());
  // Queue full: SYN dropped, client must retry — same as post-restore.
  EXPECT_EQ(c2->ConnectTo(server).status().code(), Errc::kWouldBlock);
}

TEST_F(PosixTest, UnixSocketPassesDescriptors) {
  auto proc = *kernel_.CreateProcess("app");
  auto [rfd, wfd] = *kernel_.MakePipe(*proc);
  auto pipe_desc = *proc->fds().Get(rfd);

  auto listener = std::make_shared<Socket>(SocketDomain::kUnix, SocketProto::kTcp);
  ASSERT_TRUE(listener->Bind({0, 0, "/tmp/sock"}).ok());
  ASSERT_TRUE(listener->Listen(8).ok());
  auto client = std::make_shared<Socket>(SocketDomain::kUnix, SocketProto::kTcp);
  ASSERT_TRUE(client->Bind({0, 0, "/tmp/client"}).ok());
  auto server_end = client->ConnectTo(listener);
  ASSERT_TRUE(server_end.ok());

  ControlMessage cm;
  cm.fds.push_back(pipe_desc);
  cm.cred_pid = proc->local_pid();
  ASSERT_TRUE(client->Send("fd!", 3, cm).ok());

  auto seg = (*server_end)->Recv(64);
  ASSERT_TRUE(seg.ok());
  ASSERT_TRUE(seg->control.has_value());
  ASSERT_EQ(seg->control->fds.size(), 1u);
  EXPECT_EQ(seg->control->fds[0]->object->type(), FileType::kPipe);
  EXPECT_EQ(seg->control->cred_pid, proc->local_pid());
  (void)wfd;
}

TEST_F(PosixTest, SocketShutdownDeliversEofAfterDrain) {
  auto server = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(server->Bind({1, 80, ""}).ok());
  ASSERT_TRUE(server->Listen(4).ok());
  auto client = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
  ASSERT_TRUE(client->Bind({2, 999, ""}).ok());
  auto server_end = *client->ConnectTo(server);

  ASSERT_TRUE(client->Send("last", 4).ok());
  client->Shutdown();
  // Buffered data first, then EOF, and sends toward the closed end fail.
  auto seg = *server_end->Recv(64);
  EXPECT_EQ(std::string(seg.data.begin(), seg.data.end()), "last");
  auto eof = *server_end->Recv(64);
  EXPECT_TRUE(eof.data.empty());
  EXPECT_FALSE(server_end->Send("too late", 8).ok());
}

TEST_F(PosixTest, QuiesceForcesKernelBoundary) {
  auto proc = *kernel_.CreateProcess("srv");
  proc->AddThread();
  proc->AddThread();
  auto& threads = proc->threads();
  threads[0]->state = ThreadState::kUser;
  threads[1]->state = ThreadState::kKernelRunning;
  threads[2]->state = ThreadState::kKernelSleeping;
  threads[2]->cpu.fpu_dirty = true;

  QuiesceStats stats = kernel_.Quiesce({proc});
  EXPECT_EQ(stats.threads_in_user, 1u);
  EXPECT_EQ(stats.threads_in_syscall, 1u);
  EXPECT_EQ(stats.syscalls_restarted, 1u);
  EXPECT_EQ(stats.fpu_flushes, 1u);
  for (auto& t : threads) {
    EXPECT_EQ(t->state, ThreadState::kStopped);
  }
  EXPECT_TRUE(threads[2]->restart_syscall) << "sleeping call must transparently restart";
  EXPECT_FALSE(threads[2]->cpu.fpu_dirty);

  kernel_.Resume({proc});
  EXPECT_EQ(threads[0]->state, ThreadState::kUser);
  EXPECT_EQ(threads[1]->state, ThreadState::kUser);  // finished its syscall
  EXPECT_EQ(threads[2]->state, ThreadState::kKernelSleeping);  // reissued
  EXPECT_FALSE(threads[2]->restart_syscall);
}

TEST_F(PosixTest, SysVNamespaceSharedByKey) {
  auto a = *kernel_.CreateProcess("a");
  auto b = *kernel_.CreateProcess("b");
  auto fd_a = kernel_.ShmGet(*a, 0x1234, 64 * kKiB);
  ASSERT_TRUE(fd_a.ok());
  auto fd_b = kernel_.ShmGet(*b, 0x1234, 64 * kKiB);
  ASSERT_TRUE(fd_b.ok());
  auto desc_a = *a->fds().Get(*fd_a);
  auto desc_b = *b->fds().Get(*fd_b);
  // Same segment object through the global namespace.
  EXPECT_EQ(desc_a->object.get(), desc_b->object.get());
  EXPECT_EQ(kernel_.sysv_shm().size(), 1u);
}

TEST_F(PosixTest, ShmMapSharesThroughBackmap) {
  auto a = *kernel_.CreateProcess("a");
  auto b = *kernel_.CreateProcess("b");
  int fd_a = *kernel_.ShmOpen(*a, "/seg", 16 * kPageSize);
  int fd_b = *kernel_.ShmOpen(*b, "/seg", 16 * kPageSize);
  auto addr_a = kernel_.ShmMap(*a, fd_a);
  auto addr_b = kernel_.ShmMap(*b, fd_b);
  ASSERT_TRUE(addr_a.ok());
  ASSERT_TRUE(addr_b.ok());
  uint64_t v = 0xfeed;
  ASSERT_TRUE(a->vm().Write(*addr_a, &v, sizeof(v)).ok());
  uint64_t got = 0;
  ASSERT_TRUE(b->vm().Read(*addr_b, &got, sizeof(got)).ok());
  EXPECT_EQ(got, 0xfeedu);

  // Rebind (as system shadowing does) and verify new mappings use the shadow.
  auto shm = kernel_.posix_shm().at("/seg");
  auto shadow = VmObject::CreateShadow(shm->object);
  kernel_.RebindShmObjects(shm->object.get(), shadow);
  EXPECT_EQ(kernel_.posix_shm().at("/seg")->object.get(), shadow.get());
}

TEST_F(PosixTest, SignalRoutingByLocalPid) {
  auto proc = *kernel_.CreateProcess("daemon");
  ASSERT_TRUE(kernel_.Kill(proc->local_pid(), 15).ok());
  EXPECT_TRUE(proc->pending_signals & (1ull << 15));
  EXPECT_FALSE(kernel_.Kill(99999, 15).ok());
}

TEST_F(PosixTest, VdsoChangesAcrossRegeneration) {
  auto before = kernel_.vdso();
  kernel_.RegenerateVdso();
  auto after = kernel_.vdso();
  EXPECT_NE(before.get(), after.get());
  EXPECT_NE(before->LookupLocal(0)->data[0], after->LookupLocal(0)->data[0]);
}

TEST_F(PosixTest, AioQuiesceDrainsWrites) {
  auto proc = *kernel_.CreateProcess("db");
  kernel_.SubmitAio(*proc, 3, AioRequest::Op::kWrite, 0, 4096);
  kernel_.SubmitAio(*proc, 3, AioRequest::Op::kRead, 4096, 4096);
  uint64_t waited = kernel_.QuiesceAio(*proc);
  EXPECT_EQ(waited, 1u);
  EXPECT_EQ(proc->aios[0].state, AioRequest::State::kDone);
  EXPECT_EQ(proc->aios[1].state, AioRequest::State::kInFlight) << "reads stay recorded";
}

TEST_F(PosixTest, DeviceWhitelist) {
  EXPECT_TRUE(kernel_.DeviceWhitelisted("hpet0"));
  EXPECT_FALSE(kernel_.DeviceWhitelisted("gpu0"));
}

TEST_F(PosixTest, PidVirtualizationOnRestore) {
  auto original = *kernel_.CreateProcess("app");
  uint64_t saved_pid = original->local_pid();
  kernel_.DestroyProcess(original);
  // Another process may have taken arbitrary pids meanwhile.
  auto squatter = *kernel_.CreateProcess("other");
  auto restored = kernel_.CreateProcessForRestore("app", saved_pid);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)->local_pid(), saved_pid);
  EXPECT_NE((*restored)->pid(), squatter->pid());
  // Signals still route by the application-visible pid.
  ASSERT_TRUE(kernel_.Kill(saved_pid, 10).ok());
  EXPECT_TRUE((*restored)->pending_signals & (1ull << 10));
}

}  // namespace
}  // namespace aurora
