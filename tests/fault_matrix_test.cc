// Fault matrix: deterministic device fault injection swept over the
// checkpoint and restore phases of an object-store workload, plus the
// SLS-level graceful-degradation contract.
//
//  - Transient read/write errors at modest rates are masked by the bounded
//    retry policy; contents stay byte-identical and io.retries counts.
//  - Latent sector errors and silent bit flips are never silently read
//    back: every read either returns the committed bytes or a typed
//    kIoError / kCorrupt.
//  - The crash fuse composes with transient faults: recovery still lands on
//    an exact committed epoch.
//  - One seed ⇒ one fault schedule: stats, corrupted-LBA sets and retry
//    counts replay exactly.
//  - A zero-rate profile consumes no randomness and is time- and
//    byte-identical to running with no injector at all.
//  - Flush failure aborts only the in-flight epoch: the application keeps
//    running on the last durable epoch and the dirty pages ride the next
//    successful checkpoint.
//  - The scrubber finds every injected flip that lands in a committed data
//    block, with no false positives.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/objstore/scrubber.h"
#include "src/storage/block_device.h"
#include "src/storage/fault_injector.h"

namespace aurora {
namespace {

constexpr uint64_t kDeviceBlocks = (64 * kMiB) / kPageSize;

std::vector<uint8_t> Pattern(size_t len, uint8_t seed) {
  std::vector<uint8_t> out(len);
  for (size_t i = 0; i < len; i++) {
    out[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return out;
}

FaultRule RateRule(double read_rate, double write_rate, double flip_rate = 0.0,
                   double latent_rate = 0.0) {
  FaultRule rule;
  rule.read_error_rate = read_rate;
  rule.write_error_rate = write_rate;
  rule.bit_flip_rate = flip_rate;
  rule.latent_sector_rate = latent_rate;
  return rule;
}

// Writes `nblocks` full store blocks of deterministic contents to `oid`.
Status WriteBlocks(ObjectStore* store, Oid oid, uint64_t nblocks, uint8_t seed) {
  std::vector<uint8_t> data = Pattern(nblocks * store->block_size(), seed);
  return store->WriteAt(oid, 0, data.data(), data.size()).status();
}

// Every read must be byte-identical to the committed pattern or fail with a
// typed media error — silent corruption is the one forbidden outcome.
// Returns true when the read succeeded (contents verified).
bool ExpectReadTypedOrExact(ObjectStore* store, Oid oid, uint64_t nblocks, uint8_t seed) {
  std::vector<uint8_t> want = Pattern(nblocks * store->block_size(), seed);
  std::vector<uint8_t> back(want.size());
  Status read = store->ReadAt(oid, 0, back.data(), back.size());
  if (!read.ok()) {
    EXPECT_TRUE(read.code() == Errc::kCorrupt || read.code() == Errc::kIoError)
        << "read failed untyped: " << read.message();
    return false;
  }
  EXPECT_EQ(back, want) << "silent corruption: read succeeded with wrong bytes";
  return true;
}

// The standard two-commit workload: obj1 at c1, obj2 at c2, each region
// written exactly once so every data block stays live in the final epoch.
struct Workload {
  Oid obj1 = kInvalidOid;
  Oid obj2 = kInvalidOid;
  static constexpr uint64_t kObj1Blocks = 3;
  static constexpr uint64_t kObj2Blocks = 2;

  Status Run(ObjectStore* store) {
    AURORA_ASSIGN_OR_RETURN(obj1, store->CreateObject(ObjType::kMemory));
    AURORA_RETURN_IF_ERROR(WriteBlocks(store, obj1, kObj1Blocks, 1));
    AURORA_RETURN_IF_ERROR(store->CommitCheckpoint("c1").status());
    AURORA_ASSIGN_OR_RETURN(obj2, store->CreateObject(ObjType::kMemory));
    AURORA_RETURN_IF_ERROR(WriteBlocks(store, obj2, kObj2Blocks, 2));
    AURORA_RETURN_IF_ERROR(store->CommitCheckpoint("c2").status());
    return Status::Ok();
  }
};

TEST(FaultMatrix, TransientWriteErrorsMaskedByRetry) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  device.set_metrics(&sim.metrics);
  auto store = *ObjectStore::Format(&device, &sim);
  device.InstallFaults(0xA11CE, {RateRule(0.0, 0.10)});

  Workload w;
  ASSERT_TRUE(w.Run(store.get()).ok()) << "10% transient write errors must be masked";
  device.ClearFaults();

  EXPECT_GE(sim.metrics.counter("io.retries").value(), 1u);
  EXPECT_EQ(sim.metrics.counter("io.giveups").value(), 0u);
  EXPECT_TRUE(ExpectReadTypedOrExact(store.get(), w.obj1, Workload::kObj1Blocks, 1));
  EXPECT_TRUE(ExpectReadTypedOrExact(store.get(), w.obj2, Workload::kObj2Blocks, 2));
}

TEST(FaultMatrix, TransientReadErrorsMaskedByRetry) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  device.set_metrics(&sim.metrics);
  auto store = *ObjectStore::Format(&device, &sim);
  Workload w;
  ASSERT_TRUE(w.Run(store.get()).ok());

  // Restore-phase faults: a fresh mount plus every read under 10% transient
  // read errors.
  device.InstallFaults(0xB0B, {RateRule(0.10, 0.0)});
  auto reopened = ObjectStore::Open(&device, &sim);
  ASSERT_TRUE(reopened.ok()) << "transient read errors must not fail the mount";
  EXPECT_TRUE(ExpectReadTypedOrExact(reopened->get(), w.obj1, Workload::kObj1Blocks, 1));
  EXPECT_TRUE(ExpectReadTypedOrExact(reopened->get(), w.obj2, Workload::kObj2Blocks, 2));
  EXPECT_GE(sim.metrics.counter("io.retries").value(), 1u);
  EXPECT_EQ(sim.metrics.counter("io.giveups").value(), 0u);
}

TEST(FaultMatrix, LatentSectorReadsFailTyped) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  device.set_metrics(&sim.metrics);
  auto store = *ObjectStore::Format(&device, &sim);
  Workload w;
  ASSERT_TRUE(w.Run(store.get()).ok());

  // Rot every device block past the superblock ring: all committed data is
  // now sticky-unreadable, and retries must never mask it. (The whole device
  // is rotted so the test holds for any layout's physical placement.)
  uint32_t dps = store->block_size() / device.block_size();
  device.InstallFaults(0xDEAD, {});
  for (uint64_t lba = dps; lba < device.block_count(); lba++) {
    device.fault_injector()->AddLatentSector(lba);
  }
  std::vector<uint8_t> back(store->block_size());
  Status read = store->ReadAt(w.obj1, 0, back.data(), back.size());
  ASSERT_FALSE(read.ok()) << "latent sector read must not succeed";
  EXPECT_EQ(read.code(), Errc::kIoError);
  EXPECT_GE(sim.metrics.counter("io.giveups").value(), 1u);
  read = store->ReadAt(w.obj2, 0, back.data(), back.size());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.code(), Errc::kIoError);

  // A rewrite replaces the rotten cells: the COW overwrite lands on freshly
  // written blocks whose latent marks clear, so obj1 reads exactly again.
  ASSERT_TRUE(WriteBlocks(store.get(), w.obj1, Workload::kObj1Blocks, 7).ok());
  EXPECT_TRUE(ExpectReadTypedOrExact(store.get(), w.obj1, Workload::kObj1Blocks, 7));
}

TEST(FaultMatrix, BitFlipsNeverSilentlyReadBack) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  device.set_metrics(&sim.metrics);
  auto store = *ObjectStore::Format(&device, &sim);
  device.InstallFaults(0xF11B, {RateRule(0.0, 0.0, 0.05)});
  Workload w;
  ASSERT_TRUE(w.Run(store.get()).ok()) << "write-time flips are silent at write time";
  uint64_t flips = device.fault_injector()->stats().bit_flips;
  ASSERT_GE(flips, 1u) << "seed produced no flips; the test has no teeth";
  device.ClearFaults();

  // Reads through the CRC path: exact bytes or typed kCorrupt, never garbage.
  ExpectReadTypedOrExact(store.get(), w.obj1, Workload::kObj1Blocks, 1);
  ExpectReadTypedOrExact(store.get(), w.obj2, Workload::kObj2Blocks, 2);
}

TEST(FaultMatrix, CrashFuseComposesWithTransientFaults) {
  // Arm the crash fuse at a handful of points inside the second commit while
  // 1% transient faults are live: recovery must still land on an exact
  // committed epoch (the full point sweep lives in crash_matrix_test).
  for (uint64_t crash_at : {20u, 40u, 60u, 90u}) {
    SimContext sim;
    MemBlockDevice device(&sim.clock, kDeviceBlocks);
    device.set_metrics(&sim.metrics);
    auto store = *ObjectStore::Format(&device, &sim);
    device.InstallFaults(0xC0DE + crash_at, {RateRule(0.01, 0.01)});
    device.CrashAfterWrites(crash_at);

    Workload w;
    (void)w.Run(store.get());  // may tear anywhere once the fuse fires
    device.DisarmCrash();

    auto reopened = ObjectStore::Open(&device, &sim);
    if (!reopened.ok()) {
      // Power lost before the first commit: an unmountable store is sound.
      continue;
    }
    bool has_c1 = false;
    bool has_c2 = false;
    for (const CheckpointInfo& ckpt : (*reopened)->ListCheckpoints()) {
      has_c1 |= ckpt.name == "c1";
      has_c2 |= ckpt.name == "c2";
    }
    if (has_c1 || has_c2) {
      EXPECT_TRUE(ExpectReadTypedOrExact(reopened->get(), w.obj1, Workload::kObj1Blocks, 1))
          << "crash point " << crash_at;
    }
    if (has_c2) {
      EXPECT_TRUE(ExpectReadTypedOrExact(reopened->get(), w.obj2, Workload::kObj2Blocks, 2))
          << "crash point " << crash_at;
    }
  }
}

TEST(FaultMatrix, SameSeedReplaysSameSchedule) {
  auto run = [](uint64_t* retries, FaultStats* stats, std::set<uint64_t>* corrupted,
                std::set<uint64_t>* latent) {
    SimContext sim;
    MemBlockDevice device(&sim.clock, kDeviceBlocks);
    device.set_metrics(&sim.metrics);
    auto store = *ObjectStore::Format(&device, &sim);
    device.InstallFaults(0x5EED, {RateRule(0.05, 0.05, 0.02, 0.02)});
    Workload w;
    (void)w.Run(store.get());
    *retries = sim.metrics.counter("io.retries").value();
    *stats = device.fault_injector()->stats();
    *corrupted = device.fault_injector()->corrupted_lbas();
    *latent = device.fault_injector()->latent_lbas();
  };

  uint64_t retries_a = 0;
  uint64_t retries_b = 0;
  FaultStats stats_a;
  FaultStats stats_b;
  std::set<uint64_t> corrupted_a;
  std::set<uint64_t> corrupted_b;
  std::set<uint64_t> latent_a;
  std::set<uint64_t> latent_b;
  run(&retries_a, &stats_a, &corrupted_a, &latent_a);
  run(&retries_b, &stats_b, &corrupted_b, &latent_b);

  EXPECT_EQ(retries_a, retries_b);
  EXPECT_EQ(stats_a.read_errors, stats_b.read_errors);
  EXPECT_EQ(stats_a.write_errors, stats_b.write_errors);
  EXPECT_EQ(stats_a.bit_flips, stats_b.bit_flips);
  EXPECT_EQ(stats_a.latent_marks, stats_b.latent_marks);
  EXPECT_EQ(stats_a.latent_hits, stats_b.latent_hits);
  EXPECT_EQ(stats_a.tail_delays, stats_b.tail_delays);
  EXPECT_EQ(corrupted_a, corrupted_b);
  EXPECT_EQ(latent_a, latent_b);
}

TEST(FaultMatrix, ZeroRateProfileIsTimeAndByteIdentical) {
  auto run = [](bool attach_injector, SimTime* end, uint64_t* writes,
                std::vector<uint8_t>* back1) {
    SimContext sim;
    MemBlockDevice device(&sim.clock, kDeviceBlocks);
    device.set_metrics(&sim.metrics);
    auto store = *ObjectStore::Format(&device, &sim);
    if (attach_injector) {
      // A matching-everything rule whose rates are all zero: attached but
      // inert, and forbidden from consuming any randomness.
      device.InstallFaults(0x1D, {FaultRule{}});
    }
    Workload w;
    ASSERT_TRUE(w.Run(store.get()).ok());
    back1->resize(Workload::kObj1Blocks * store->block_size());
    ASSERT_TRUE(store->ReadAt(w.obj1, 0, back1->data(), back1->size()).ok());
    *end = sim.clock.now();
    *writes = device.stats().writes;
    EXPECT_EQ(sim.metrics.counter("io.retries").value(), 0u);
    EXPECT_EQ(sim.metrics.counter("io.giveups").value(), 0u);
  };

  SimTime end_plain = 0;
  SimTime end_faulty = 0;
  uint64_t writes_plain = 0;
  uint64_t writes_faulty = 0;
  std::vector<uint8_t> back_plain;
  std::vector<uint8_t> back_faulty;
  run(false, &end_plain, &writes_plain, &back_plain);
  run(true, &end_faulty, &writes_faulty, &back_faulty);

  EXPECT_EQ(end_plain, end_faulty) << "zero-rate injector changed the timeline";
  EXPECT_EQ(writes_plain, writes_faulty);
  EXPECT_EQ(back_plain, back_faulty);
}

TEST(FaultMatrix, ScrubDetectsEveryCommittedFlip) {
  SimContext sim;
  MemBlockDevice device(&sim.clock, kDeviceBlocks);
  device.set_metrics(&sim.metrics);
  auto store = *ObjectStore::Format(&device, &sim);
  device.InstallFaults(0x5C2B, {RateRule(0.0, 0.0, 0.05)});

  // Write-once workload: every data block written stays live in the final
  // epoch, so each data-block flip must surface as exactly one bad block.
  Oid obj1 = *store->CreateObject(ObjType::kMemory);
  ASSERT_TRUE(WriteBlocks(store.get(), obj1, 8, 1).ok());
  ASSERT_TRUE(store->CommitCheckpoint("c1").ok());
  Oid obj2 = *store->CreateObject(ObjType::kMemory);
  ASSERT_TRUE(WriteBlocks(store.get(), obj2, 6, 2).ok());
  ASSERT_TRUE(store->CommitCheckpoint("c2").ok());

  std::set<uint64_t> corrupted = device.fault_injector()->corrupted_lbas();
  ASSERT_GE(corrupted.size(), 1u) << "seed produced no flips; the test has no teeth";

  Scrubber scrubber(store.get());
  auto report = scrubber.ScrubAll();
  ASSERT_TRUE(report.ok());

  uint32_t dps = store->block_size() / device.block_size();
  auto in_bad_block = [&](uint64_t lba) {
    for (const ScrubBadBlock& bad : report->bad_blocks) {
      if (lba >= bad.phys * dps && lba < (bad.phys + 1) * dps) {
        return true;
      }
    }
    return false;
  };

  // No false positives: every CRC-mismatch block holds an injected flip.
  for (const ScrubBadBlock& bad : report->bad_blocks) {
    ASSERT_EQ(bad.error, Errc::kCorrupt);
    bool has_flip = false;
    for (uint64_t lba = bad.phys * dps; lba < (bad.phys + 1) * dps; lba++) {
      has_flip |= corrupted.count(lba) > 0;
    }
    EXPECT_TRUE(has_flip) << "scrub flagged phys " << bad.phys << " without an injected flip";
  }

  // Full coverage: every flip inside a CRC-covered committed data block must
  // be flagged. Flips elsewhere (metadata padding, the superblock ring) are
  // covered by the meta blob CRC / the next mount instead.
  uint64_t data_flips = 0;
  for (uint64_t lba : corrupted) {
    if (report->data_phys.count(lba / dps) == 0) {
      continue;
    }
    data_flips++;
    EXPECT_TRUE(in_bad_block(lba)) << "flip at device lba " << lba << " missed by scrub";
  }
  ASSERT_GE(data_flips, 1u) << "no flip landed in a data block; the test has no teeth";

  // A clean store scrubs clean.
  SimContext clean_sim;
  MemBlockDevice clean_device(&clean_sim.clock, kDeviceBlocks);
  auto clean_store = *ObjectStore::Format(&clean_device, &clean_sim);
  Workload clean;
  ASSERT_TRUE(clean.Run(clean_store.get()).ok());
  Scrubber clean_scrubber(clean_store.get());
  auto clean_report = clean_scrubber.ScrubAll();
  ASSERT_TRUE(clean_report.ok());
  EXPECT_TRUE(clean_report->clean());
  EXPECT_TRUE(clean_report->bad_blocks.empty());
  EXPECT_EQ(clean_report->epochs.size(), clean_store->ListCheckpoints().size());
}

// SLS machine with a raw MemBlockDevice so faults can be armed precisely.
struct FaultMachine {
  FaultMachine() {
    device = std::make_unique<MemBlockDevice>(&sim.clock, kDeviceBlocks);
    device->set_metrics(&sim.metrics);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }
  void Reboot() {
    store = *ObjectStore::Open(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }
  SimContext sim;
  std::unique_ptr<MemBlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

TEST(EpochAbort, FlushFailureAbortsOnlyTheInFlightEpoch) {
  FaultMachine m;
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(256 * kKiB);
  uint64_t addr = *proc->vm().Map(0x400000, 256 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  std::vector<uint8_t> v1(256 * kKiB, 0x11);
  ASSERT_TRUE(proc->vm().Write(addr, v1.data(), v1.size()).ok());
  auto first = m.sls->Checkpoint(group, "one");
  ASSERT_TRUE(first.ok());
  ASSERT_FALSE(first->aborted);
  ASSERT_TRUE(m.sls->Barrier(group).ok());
  SimTime durable_one = first->durable_at;

  // Total write outage: every attempt fails, retries exhaust, the epoch
  // aborts — but the checkpoint call itself reports the degradation rather
  // than failing the application.
  m.device->InstallFaults(0xAB027, {RateRule(0.0, 1.0)});
  std::vector<uint8_t> v2(256 * kKiB, 0x22);
  ASSERT_TRUE(proc->vm().Write(addr, v2.data(), v2.size()).ok());
  auto degraded = m.sls->Checkpoint(group, "two");
  ASSERT_TRUE(degraded.ok()) << degraded.status().message();
  EXPECT_TRUE(degraded->aborted);
  EXPECT_EQ(degraded->epoch, 0u);
  EXPECT_EQ(degraded->durable_at, durable_one) << "abort must keep the last durable epoch";
  EXPECT_EQ(group->epochs_aborted, 1u);
  EXPECT_EQ(m.sim.metrics.counter("ckpt.epochs_aborted").value(), 1u);
  EXPECT_GE(m.sim.metrics.counter("io.giveups").value(), 1u);

  // The application keeps running through the outage.
  std::vector<uint8_t> v3(4 * kKiB, 0x33);
  EXPECT_TRUE(proc->vm().Write(addr, v3.data(), v3.size()).ok());

  // Device recovers: the next checkpoint flushes the aborted epoch's frozen
  // pages along with the new writes.
  m.device->ClearFaults();
  auto recovered = m.sls->Checkpoint(group, "three");
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  EXPECT_FALSE(recovered->aborted);
  EXPECT_GT(recovered->epoch, 0u);
  EXPECT_GT(recovered->durable_at, durable_one);
  EXPECT_EQ(group->epochs_aborted, 1u);

  // After a reboot the newest restore sees the post-outage state: v2
  // overlaid with v3 — nothing from the aborted epoch was lost.
  m.Reboot();
  auto restored = m.sls->Restore("app");
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  Process* back = restored->group->processes[0];
  std::vector<uint8_t> got(256 * kKiB);
  ASSERT_TRUE(back->vm().Read(addr, got.data(), got.size()).ok());
  std::vector<uint8_t> want = v2;
  std::copy(v3.begin(), v3.end(), want.begin());
  EXPECT_EQ(got, want);

  // And the recovered store scrubs clean through the CLI verb.
  SlsCli cli(m.sls.get());
  auto lines = cli.Scrub();
  ASSERT_TRUE(lines.ok());
  ASSERT_FALSE(lines->empty());
  EXPECT_NE(lines->back().find("CLEAN"), std::string::npos) << lines->back();
}

TEST(EpochAbort, PreviousEpochRestorableAfterAbort) {
  FaultMachine m;
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(128 * kKiB);
  uint64_t addr = *proc->vm().Map(0x400000, 128 * kKiB, kProtRead | kProtWrite, obj, 0, false);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  std::vector<uint8_t> v1(128 * kKiB, 0x44);
  ASSERT_TRUE(proc->vm().Write(addr, v1.data(), v1.size()).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group, "one").ok());
  ASSERT_TRUE(m.sls->Barrier(group).ok());

  m.device->InstallFaults(0xBAD, {RateRule(0.0, 1.0)});
  std::vector<uint8_t> v2(128 * kKiB, 0x55);
  ASSERT_TRUE(proc->vm().Write(addr, v2.data(), v2.size()).ok());
  auto degraded = m.sls->Checkpoint(group, "two");
  ASSERT_TRUE(degraded.ok());
  ASSERT_TRUE(degraded->aborted);

  // Reboot with nothing but the first epoch durable: restore must reproduce
  // it exactly (the aborted epoch left no partial state behind).
  m.device->ClearFaults();
  m.Reboot();
  auto restored = m.sls->Restore("app");
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  Process* back = restored->group->processes[0];
  std::vector<uint8_t> got(128 * kKiB);
  ASSERT_TRUE(back->vm().Read(addr, got.data(), got.size()).ok());
  EXPECT_EQ(got, v1);
}

}  // namespace
}  // namespace aurora
