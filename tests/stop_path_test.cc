// Tests for the delay-free checkpoint critical path: dirty-driven
// write-protection, TLB shootdown elision for clean address spaces, and the
// out-of-window serialization cache (DESIGN.md section 15).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/base/rng.h"
#include "src/base/sim_context.h"
#include "src/core/serialize.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

// One simulated machine: devices, store, file system, kernel and SLS.
struct Machine {
  explicit Machine(uint64_t store_bytes = 1 * kGiB) {
    device = MakePaperTestbedStore(&sim.clock, store_bytes);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  // Reboot: keep the device contents, rebuild everything else.
  void Reboot() {
    store = *ObjectStore::Open(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  uint64_t Counter(const std::string& name) { return sim.metrics.counter(name).value(); }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

// Builds a process with a data region and returns (proc, addr).
std::pair<Process*, uint64_t> MakeAppProcess(Machine& m, uint64_t mem_bytes) {
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(mem_bytes);
  uint64_t addr = *proc->vm().Map(0x400000, mem_bytes, kProtRead | kProtWrite, obj, 0, false);
  return {proc, addr};
}

// A deterministic OID assigner for driving SerializeOsState directly.
struct FakeOids {
  std::map<VmObject*, Oid> assigned;
  uint64_t next = 1000;

  EnsureOidFn Fn() {
    return [this](VmObject* obj) {
      auto it = assigned.find(obj);
      if (it == assigned.end()) {
        it = assigned.emplace(obj, Oid{next++}).first;
      }
      return it->second;
    };
  }
};

// (a) A no-dirty-pages epoch performs zero write-protects and zero
// shootdowns; shootdowns must not scale with epoch count for clean epochs.
TEST(StopPath, CleanEpochElidesProtectionAndShootdowns) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 4 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  ASSERT_TRUE(proc->vm().DirtyRange(addr, 64 * kPageSize).ok());
  auto cold = m.sls->Checkpoint(group);
  ASSERT_TRUE(cold.ok());
  m.sim.clock.AdvanceTo(cold->durable_at);
  EXPECT_GT(m.Counter("ckpt.ptes_reprotected"), 0u) << "the dirty epoch must re-protect";

  uint64_t shootdowns0 = m.Counter("vm.tlb_shootdowns");
  uint64_t reprotected0 = m.Counter("ckpt.ptes_reprotected");
  uint64_t elided0 = m.Counter("vm.shootdowns_elided");

  const int kCleanEpochs = 5;
  for (int i = 0; i < kCleanEpochs; i++) {
    auto clean = m.sls->Checkpoint(group);
    ASSERT_TRUE(clean.ok());
    EXPECT_LT(clean->stop_time, cold->stop_time);
    m.sim.clock.AdvanceTo(clean->durable_at);
  }

  EXPECT_EQ(m.Counter("vm.tlb_shootdowns"), shootdowns0)
      << "clean epochs must not send shootdown IPIs";
  EXPECT_EQ(m.Counter("ckpt.ptes_reprotected"), reprotected0)
      << "clean epochs must not downgrade any PTE";
  EXPECT_GE(m.Counter("vm.shootdowns_elided"), elided0 + kCleanEpochs)
      << "every clean address space should count one elision per epoch";
}

// The legacy toggle restores the old accounting: every epoch pays a
// shootdown per address space whether or not anything was dirtied.
TEST(StopPath, LegacyPathChargesShootdownPerEpoch) {
  Machine m;
  auto [proc, addr] = MakeAppProcess(m, 4 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  group->legacy_stop_path = true;

  ASSERT_TRUE(proc->vm().DirtyRange(addr, 64 * kPageSize).ok());
  auto cold = m.sls->Checkpoint(group);
  ASSERT_TRUE(cold.ok());
  m.sim.clock.AdvanceTo(cold->durable_at);

  uint64_t shootdowns0 = m.Counter("vm.tlb_shootdowns");
  const int kCleanEpochs = 3;
  for (int i = 0; i < kCleanEpochs; i++) {
    auto clean = m.sls->Checkpoint(group);
    ASSERT_TRUE(clean.ok());
    m.sim.clock.AdvanceTo(clean->durable_at);
  }
  EXPECT_EQ(m.Counter("vm.tlb_shootdowns"), shootdowns0 + kCleanEpochs)
      << "legacy path charges one shootdown per address space per epoch";
  EXPECT_EQ(m.Counter("ckpt.serialize_cache_hits"), 0u)
      << "legacy path must not consult the serialization cache";
}

// Populates one machine with a table6-flavored workload: an app process with
// a sizeable heap plus a rich descriptor table.
struct RichApp {
  Process* proc = nullptr;
  uint64_t addr = 0;
  uint64_t mem_bytes = 0;
  int file_fd = -1;
  int pipe_rfd = -1;
  int pipe_wfd = -1;
};

RichApp BuildRichApp(Machine& m, uint64_t mem_bytes) {
  RichApp app;
  app.mem_bytes = mem_bytes;
  auto [proc, addr] = MakeAppProcess(m, mem_bytes);
  app.proc = proc;
  app.addr = addr;
  app.file_fd = *m.kernel->Open(*proc, "state.db", kOpenRead | kOpenWrite, true);
  auto [rfd, wfd] = *m.kernel->MakePipe(*proc);
  app.pipe_rfd = rfd;
  app.pipe_wfd = wfd;
  const char blob[] = "row0|row1|row2";
  EXPECT_TRUE(m.kernel->WriteFd(*proc, app.file_fd, blob, sizeof(blob)).ok());
  EXPECT_TRUE(m.kernel->WriteFd(*proc, app.pipe_wfd, "inflight", 8).ok());
  return app;
}

std::vector<uint8_t> ReadBackMemory(Process* proc, uint64_t addr, uint64_t bytes) {
  std::vector<uint8_t> out(bytes);
  for (uint64_t off = 0; off < bytes; off += kPageSize) {
    EXPECT_TRUE(proc->vm().Read(addr + off, out.data() + off, kPageSize).ok());
  }
  return out;
}

// Runs the same deterministic multi-epoch workload on a fresh machine and
// returns the restored heap contents after a reboot.
std::vector<uint8_t> RunEpochsAndRestore(bool legacy, SimDuration* last_stop) {
  Machine m;
  RichApp app = BuildRichApp(m, 2 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  EXPECT_TRUE(m.sls->Attach(group, app.proc).ok());
  group->legacy_stop_path = legacy;

  Rng rng(0xA77);
  for (int epoch = 0; epoch < 4; epoch++) {
    for (int w = 0; w < 200; w++) {
      uint64_t v = rng.Next();
      EXPECT_TRUE(
          app.proc->vm().Write(app.addr + rng.Below(app.mem_bytes - 8), &v, sizeof(v)).ok());
    }
    auto ckpt = m.sls->Checkpoint(group);
    EXPECT_TRUE(ckpt.ok());
    if (ckpt.ok()) {
      *last_stop = ckpt->stop_time;
      m.sim.clock.AdvanceTo(ckpt->durable_at);
    }
  }

  m.Reboot();
  auto restored = m.sls->Restore("app");
  EXPECT_TRUE(restored.ok());
  if (!restored.ok()) {
    return {};
  }
  EXPECT_EQ(restored->group->processes.size(), 1u);
  return ReadBackMemory(restored->group->processes[0], app.addr, app.mem_bytes);
}

// (b) Incremental protection leaves restored images byte-identical to the
// full-sweep engine, and its steady-state stop is strictly cheaper.
TEST(StopPath, IncrementalImageMatchesLegacyByteForByte) {
  SimDuration legacy_stop = 0;
  SimDuration incremental_stop = 0;
  std::vector<uint8_t> legacy_image = RunEpochsAndRestore(true, &legacy_stop);
  std::vector<uint8_t> incremental_image = RunEpochsAndRestore(false, &incremental_stop);
  ASSERT_FALSE(legacy_image.empty());
  ASSERT_EQ(legacy_image.size(), incremental_image.size());
  EXPECT_TRUE(legacy_image == incremental_image)
      << "restored heaps diverge between the legacy and incremental stop paths";
  EXPECT_LT(incremental_stop, legacy_stop)
      << "the incremental path should shrink the stopped window";
}

// The manifest bytes are identical in every serialization mode; only the
// charged time differs.
TEST(StopPath, SerializerModesProduceIdenticalBytes) {
  Machine m;
  RichApp app = BuildRichApp(m, 1 * kMiB);
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, app.proc).ok());

  FakeOids oids;
  auto legacy = SerializeOsState(&m.sim, *group, 7, kInvalidOid, oids.Fn(), nullptr,
                                 SerializeMode::kLegacy, nullptr);
  ASSERT_TRUE(legacy.ok());

  SerializeCache cache;
  cache.pass++;
  auto warm = SerializeOsState(&m.sim, *group, 7, kInvalidOid, oids.Fn(), nullptr,
                               SerializeMode::kWarmCache, &cache);
  ASSERT_TRUE(warm.ok());
  cache.pass++;
  auto assembled = SerializeOsState(&m.sim, *group, 7, kInvalidOid, oids.Fn(), nullptr,
                                    SerializeMode::kAssemble, &cache);
  ASSERT_TRUE(assembled.ok());

  EXPECT_TRUE(*legacy == *warm);
  EXPECT_TRUE(*legacy == *assembled);
}

// (c) Each mutating kernel op invalidates exactly the cached blobs it
// touches; untracked mutations are caught by the byte-compare stale path.
TEST(StopPath, CacheInvalidationPerMutatingOp) {
  Machine m;
  RichApp app = BuildRichApp(m, 1 * kMiB);
  Process* proc = app.proc;
  int kq_fd = *m.kernel->MakeKqueue(*proc);
  int sock_fd = *m.kernel->MakeSocket(*proc, SocketDomain::kInet, SocketProto::kTcp);
  auto [master_fd, slave_fd] = *m.kernel->MakePty(*proc);
  (void)slave_fd;
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  FakeOids oids;
  SerializeCache cache;
  auto run_pass = [&]() {
    cache.pass++;
    auto r = SerializeOsState(&m.sim, *group, 3, kInvalidOid, oids.Fn(), nullptr,
                              SerializeMode::kAssemble, &cache);
    EXPECT_TRUE(r.ok());
  };
  struct Deltas {
    uint64_t hits, misses, stale;
  };
  uint64_t hits0 = 0, misses0 = 0, stale0 = 0;
  auto take_deltas = [&]() {
    Deltas d{m.Counter("ckpt.serialize_cache_hits") - hits0,
             m.Counter("ckpt.serialize_cache_misses") - misses0,
             m.Counter("ckpt.serialize_cache_stale") - stale0};
    hits0 += d.hits;
    misses0 += d.misses;
    stale0 += d.stale;
    return d;
  };

  // Cold pass: everything misses.
  run_pass();
  Deltas cold = take_deltas();
  EXPECT_GT(cold.misses, 0u);
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.stale, 0u);
  const uint64_t entities = cold.misses;

  // Idle pass: everything hits.
  run_pass();
  Deltas idle = take_deltas();
  EXPECT_EQ(idle.hits, entities);
  EXPECT_EQ(idle.misses, 0u);
  EXPECT_EQ(idle.stale, 0u);

  // A vnode write dirties exactly the description and the vnode blobs.
  ASSERT_TRUE(m.kernel->WriteFd(*proc, app.file_fd, "x", 1).ok());
  run_pass();
  Deltas write = take_deltas();
  EXPECT_EQ(write.misses, 2u) << "WriteFd must invalidate the fd description and the vnode";
  EXPECT_EQ(write.hits, entities - 2);
  EXPECT_EQ(write.stale, 0u);

  // A seek dirties only the description.
  ASSERT_TRUE(m.kernel->SeekFd(*proc, app.file_fd, 0, 0).ok());
  run_pass();
  Deltas seek = take_deltas();
  EXPECT_EQ(seek.misses, 1u) << "SeekFd must invalidate only the fd description";
  EXPECT_EQ(seek.stale, 0u);

  // A signal dirties only the process blob.
  proc->PostSignal(10);
  run_pass();
  Deltas sig = take_deltas();
  EXPECT_EQ(sig.misses, 1u) << "PostSignal must invalidate only the process blob";
  EXPECT_EQ(sig.stale, 0u);

  // A layout mutation (new mapping) also lands on the process blob.
  auto obj = VmObject::CreateAnonymous(64 * kKiB);
  ASSERT_TRUE(proc->vm().Map(0x7000000, 64 * kKiB, kProtRead | kProtWrite, obj, 0, false).ok());
  run_pass();
  Deltas map = take_deltas();
  EXPECT_EQ(map.misses, 1u) << "Map must invalidate the process blob via the vm generation";
  EXPECT_EQ(map.stale, 0u);

  // Kqueue registration is generation-tracked: a clean miss on the kqueue
  // blob, never a byte-compare stale.
  auto* kq = static_cast<Kqueue*>((*proc->fds().Get(kq_fd))->object.get());
  kq->Register(KEvent{1, -1, 1, 0, 0, 42});
  run_pass();
  Deltas kqd = take_deltas();
  EXPECT_EQ(kqd.misses, 1u) << "Register must invalidate the kqueue blob via its generation";
  EXPECT_EQ(kqd.stale, 0u) << "a tracked mutation must never reach the byte-compare net";

  // Socket state-machine ops bump the socket generation.
  auto* sock = static_cast<Socket*>((*proc->fds().Get(sock_fd))->object.get());
  ASSERT_TRUE(sock->Bind({0x0a000001, 8080, ""}).ok());
  run_pass();
  Deltas bind = take_deltas();
  EXPECT_EQ(bind.misses, 1u) << "Bind must invalidate only the socket blob";
  EXPECT_EQ(bind.stale, 0u);
  ASSERT_TRUE(sock->Listen(16).ok());
  run_pass();
  Deltas listen = take_deltas();
  EXPECT_EQ(listen.misses, 1u) << "Listen must invalidate only the socket blob";
  EXPECT_EQ(listen.stale, 0u);

  // Pseudoterminal ioctl analogues bump the pty generation.
  auto* pty = static_cast<Pseudoterminal*>((*proc->fds().Get(master_fd))->object.get());
  pty->SetWinsize(50, 120);
  run_pass();
  Deltas winsz = take_deltas();
  EXPECT_EQ(winsz.misses, 1u) << "SetWinsize must invalidate only the pty blob";
  EXPECT_EQ(winsz.stale, 0u);
  pty->WriteInput("ls\n", 3);
  run_pass();
  Deltas ptyin = take_deltas();
  EXPECT_EQ(ptyin.misses, 1u) << "WriteInput must invalidate only the pty blob";
  EXPECT_EQ(ptyin.stale, 0u);

  // Steady state after every tracked kind has mutated: all hits, and the
  // byte-compare stale counter never fired across the whole test.
  run_pass();
  Deltas steady = take_deltas();
  EXPECT_EQ(steady.hits, entities);
  EXPECT_EQ(steady.misses, 0u);
  EXPECT_EQ(steady.stale, 0u);
  EXPECT_EQ(m.Counter("ckpt.serialize_cache_stale"), 0u)
      << "socket/kqueue/pty mutators are generation-tracked; nothing should go stale";
}

}  // namespace
}  // namespace aurora
