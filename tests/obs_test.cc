// Tests for the observability layer: metric primitive semantics, span
// tracing, the JSON exporter, and end-to-end instrumentation of a real
// checkpoint (phase spans present, counters consistent with device traffic).
#include <gtest/gtest.h>

#include <cstring>

#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/storage/block_device.h"

namespace aurora {
namespace {

// --- Primitives --------------------------------------------------------------

TEST(Metrics, CounterAndGaugeSemantics) {
  MetricsRegistry reg;
  reg.counter("a.events").Add();
  reg.counter("a.events").Add(41);
  EXPECT_EQ(reg.CounterValue("a.events"), 42u);
  EXPECT_EQ(reg.CounterValue("never.recorded"), 0u);

  reg.gauge("a.level").Set(10);
  reg.gauge("a.level").Add(5);
  reg.gauge("a.level").Sub(20);
  EXPECT_EQ(reg.GaugeValue("a.level"), -5);
  EXPECT_EQ(reg.GaugeValue("never.recorded"), 0);

  // References are stable: a hot path can cache them across inserts.
  Counter& cached = reg.counter("a.events");
  for (int i = 0; i < 100; i++) {
    reg.counter("churn." + std::to_string(i)).Add();
  }
  cached.Add();
  EXPECT_EQ(reg.CounterValue("a.events"), 43u);

  reg.Reset();
  EXPECT_EQ(reg.CounterValue("a.events"), 0u);
  EXPECT_EQ(reg.GaugeValue("a.level"), 0);
}

TEST(Metrics, HistogramBasics) {
  SimHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Min(), 0u);
  EXPECT_EQ(h.Max(), 0u);
  EXPECT_EQ(h.MeanNanos(), 0.0);

  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600u);
  EXPECT_EQ(h.Min(), 100u);
  EXPECT_EQ(h.Max(), 300u);
  EXPECT_DOUBLE_EQ(h.MeanNanos(), 200.0);
}

TEST(Metrics, HistogramPercentilesBoundTheSamples) {
  SimHistogram h;
  for (uint64_t v = 1; v <= 1000; v++) {
    h.Record(v * kMicrosecond);
  }
  // Log-bucketed: percentiles are bucket upper bounds, so they can overshoot
  // the exact sample by at most one sub-bucket width (1/32 of the value).
  SimDuration p50 = h.Percentile(50);
  SimDuration p99 = h.Percentile(99);
  EXPECT_GE(p50, 500 * kMicrosecond);
  EXPECT_LE(p50, 520 * kMicrosecond);
  EXPECT_GE(p99, 990 * kMicrosecond);
  EXPECT_LE(p99, 1030 * kMicrosecond);
  EXPECT_LE(h.Percentile(0), h.Percentile(50));
  EXPECT_LE(h.Percentile(50), h.Percentile(100));
  EXPECT_EQ(h.Percentile(100), h.Percentile(99.99));
}

TEST(Metrics, HistogramMerge) {
  SimHistogram a;
  SimHistogram b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(40);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 75u);
  EXPECT_EQ(a.Min(), 5u);
  EXPECT_EQ(a.Max(), 40u);
}

// --- Span tracer -------------------------------------------------------------

TEST(Trace, SpansCarryScopeAndTimestamps) {
  SimClock clock;
  SpanTracer tracer(&clock);

  uint64_t s1 = tracer.NewScope();
  size_t a = tracer.Begin("phase.a");
  clock.Advance(10 * kMicrosecond);
  tracer.End(a);
  size_t b = tracer.Begin("phase.b");
  tracer.EndAt(b, clock.now() + 5 * kMillisecond);  // async completion

  uint64_t s2 = tracer.NewScope();
  size_t c = tracer.Begin("phase.a");
  tracer.End(c);

  auto in1 = tracer.SpansInScope(s1);
  ASSERT_EQ(in1.size(), 2u);
  EXPECT_EQ(in1[0].name, "phase.a");
  EXPECT_EQ(in1[0].duration(), 10 * kMicrosecond);
  EXPECT_EQ(in1[1].name, "phase.b");
  EXPECT_EQ(in1[1].duration(), 5 * kMillisecond);
  EXPECT_GT(in1[1].end, clock.now());

  ASSERT_EQ(tracer.SpansInScope(s2).size(), 1u);
  EXPECT_EQ(tracer.SpansNamed("phase.a").size(), 2u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, RingTrimsOldSpansButKeepsHandlesValid) {
  SimClock clock;
  SpanTracer tracer(&clock);
  const size_t kOverfill = (1 << 16) + 1000;
  size_t last = 0;
  for (size_t i = 0; i < kOverfill; i++) {
    last = tracer.Begin("s");
    tracer.End(last);
  }
  EXPECT_GT(tracer.dropped(), 0u);
  EXPECT_LE(tracer.spans().size(), size_t{1} << 16);
  // The newest handle must remain addressable after the trim.
  tracer.EndAt(last, clock.now() + 1);
  EXPECT_EQ(tracer.spans().back().end, clock.now() + 1);
}

// --- JSON exporter -----------------------------------------------------------

TEST(Json, WriterProducesWellFormedOutput) {
  JsonWriter w;
  w.BeginObject();
  w.Key("str");
  w.Value("a\"b\\c\nd");
  w.Key("num");
  w.Value(uint64_t{18446744073709551615ull});
  w.Key("neg");
  w.Value(int64_t{-7});
  w.Key("arr");
  w.BeginArray();
  w.Value(true);
  w.Value(1.5);
  w.EndArray();
  w.EndObject();
  std::string out = w.str();
  EXPECT_NE(out.find("\"str\": \"a\\\"b\\\\c\\nd\""), std::string::npos);
  EXPECT_NE(out.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(out.find("-7"), std::string::npos);
  EXPECT_NE(out.find("true"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Json, MetricsExportContainsAllSections) {
  SimClock clock;
  MetricsRegistry reg;
  SpanTracer tracer(&clock);
  reg.counter("x.count").Add(3);
  reg.gauge("x.level").Set(-2);
  reg.histogram("x.lat").Record(5 * kMicrosecond);
  tracer.NewScope();
  size_t h = tracer.Begin("x.phase");
  clock.Advance(kMicrosecond);
  tracer.End(h);

  std::string json = MetricsToJson(reg, tracer);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"x.count\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"x.level\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"x.phase\""), std::string::npos);
  EXPECT_NE(json.find("\"end_ns\": 1000"), std::string::npos);
}

TEST(Json, MaxSpansKeepsNewestAndCountsSkipped) {
  SimClock clock;
  MetricsRegistry reg;
  SpanTracer tracer(&clock);
  for (int i = 0; i < 10; i++) {
    tracer.End(tracer.Begin("span" + std::to_string(i)));
  }
  std::string json = MetricsToJson(reg, tracer, true, 3);
  EXPECT_EQ(json.find("\"span6\""), std::string::npos);
  EXPECT_NE(json.find("\"span7\""), std::string::npos);
  EXPECT_NE(json.find("\"span9\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\": 7"), std::string::npos);
}

// --- End to end: a real checkpoint ------------------------------------------

struct Machine {
  Machine() {
    device = MakePaperTestbedStore(&sim.clock, 1 * kGiB, kPageSize, &sim.metrics);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
};

TEST(ObsIntegration, CheckpointEmitsPhaseSpansAndConsistentCounters) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("app");
  const uint64_t kMem = 2 * kMiB;
  auto obj = VmObject::CreateAnonymous(kMem);
  uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(proc->vm().DirtyRange(addr, kMem).ok());
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());

  uint64_t dev_bytes_before = m.sim.metrics.CounterValue("device.bytes_written");
  auto ckpt = m.sls->Checkpoint(group, "obs");
  ASSERT_TRUE(ckpt.ok());
  m.sim.clock.AdvanceTo(ckpt->durable_at);

  // One checkpoint, fully traced: every pipeline phase shows up exactly once
  // in the checkpoint's scope, in pipeline order.
  auto spans = m.sim.tracer.SpansInScope(m.sim.tracer.current_scope());
  const char* kPhases[] = {"ckpt.collapse", "ckpt.preserialize", "ckpt.quiesce",
                           "ckpt.serialize", "ckpt.shadow",      "ckpt.flush",
                           "ckpt.commit",   "ckpt.release"};
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < 8; i++) {
    EXPECT_EQ(spans[i].name, kPhases[i]) << "phase " << i;
    EXPECT_GE(spans[i].end, spans[i].begin);
    if (i > 0) {
      EXPECT_GE(spans[i].begin, spans[i - 1].begin);
    }
  }
  // Async phases end at durability, in the future of the phases that queued
  // them; the release span ends exactly when the checkpoint is durable.
  EXPECT_EQ(spans[7].end, ckpt->durable_at);

  // Counter cross-checks.
  const MetricsRegistry& metrics = m.sim.metrics;
  EXPECT_EQ(metrics.CounterValue("ckpt.checkpoints"), 1u);
  uint64_t pages = metrics.CounterValue("ckpt.pages_flushed");
  uint64_t bytes = metrics.CounterValue("ckpt.bytes_flushed");
  EXPECT_GE(pages, kMem / kPageSize);  // at least the dirtied region
  EXPECT_EQ(bytes, pages * kPageSize);
  EXPECT_EQ(pages, ckpt->pages_flushed);
  // Everything flushed reached the device (plus metadata/superblock traffic).
  uint64_t dev_bytes = metrics.CounterValue("device.bytes_written") - dev_bytes_before;
  EXPECT_GE(dev_bytes, bytes);
  EXPECT_GE(metrics.CounterValue("store.commits"), 1u);
  EXPECT_GE(metrics.CounterValue("vm.objects_shadowed"), 1u);
  EXPECT_GE(metrics.CounterValue("kernel.quiesces"), 1u);

  // Histograms recorded the phase timings.
  EXPECT_EQ(metrics.histograms().at("ckpt.stop_time").count(), 1u);
  EXPECT_EQ(static_cast<SimDuration>(metrics.histograms().at("ckpt.stop_time").Min()),
            metrics.histograms().at("ckpt.stop_time").Max());

  // A second checkpoint opens a fresh scope with its own 8 phases.
  ASSERT_TRUE(m.sls->Checkpoint(group, "obs2").ok());
  EXPECT_EQ(m.sim.tracer.SpansInScope(m.sim.tracer.current_scope()).size(), 8u);
  EXPECT_EQ(metrics.CounterValue("ckpt.checkpoints"), 2u);
}

TEST(ObsIntegration, SyscallCountersAndStatSnapshot) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("app");
  int fd = *m.kernel->Open(*proc, "f", kOpenRead | kOpenWrite, true);
  char buf[16] = "hello";
  ASSERT_TRUE(m.kernel->WriteFd(*proc, fd, buf, 5).ok());
  ASSERT_TRUE(m.kernel->SeekFd(*proc, fd, 0, 0).ok());
  ASSERT_TRUE(m.kernel->ReadFd(*proc, fd, buf, 5).ok());
  ASSERT_TRUE(m.kernel->Close(*proc, fd).ok());

  EXPECT_EQ(m.sim.metrics.CounterValue("kernel.syscall.open"), 1u);
  EXPECT_EQ(m.sim.metrics.CounterValue("kernel.syscall.write"), 1u);
  EXPECT_EQ(m.sim.metrics.CounterValue("kernel.syscall.read"), 1u);
  EXPECT_EQ(m.sim.metrics.CounterValue("kernel.syscall.close"), 1u);
  EXPECT_GE(m.sim.metrics.CounterValue("kernel.syscalls"), 4u);

  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  ASSERT_TRUE(m.sls->Checkpoint(group, "stat").ok());

  SlsCli cli(m.sls.get());
  std::vector<std::string> lines = cli.Stat();
  ASSERT_FALSE(lines.empty());
  bool saw_counter = false;
  bool saw_hist = false;
  bool saw_trace = false;
  for (const std::string& line : lines) {
    saw_counter |= line.find("ckpt.checkpoints") != std::string::npos;
    saw_hist |= line.find("ckpt.stop_time") != std::string::npos;
    saw_trace |= line.find("ckpt.flush") != std::string::npos;
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
  EXPECT_TRUE(saw_trace);
}

TEST(ObsIntegration, RestoreTracedAndCounted) {
  Machine m;
  Process* proc = *m.kernel->CreateProcess("app");
  auto obj = VmObject::CreateAnonymous(kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, kMiB, kProtRead | kProtWrite, obj, 0, false);
  ASSERT_TRUE(proc->vm().DirtyRange(addr, kMiB).ok());
  ConsistencyGroup* group = *m.sls->CreateGroup("app");
  ASSERT_TRUE(m.sls->Attach(group, proc).ok());
  auto ckpt = m.sls->Checkpoint(group, "v1");
  ASSERT_TRUE(ckpt.ok());
  m.sim.clock.AdvanceTo(ckpt->durable_at);

  auto restored = m.sls->Restore("app", 0, RestoreMode::kFull);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(m.sim.metrics.CounterValue("restore.restores"), 1u);
  EXPECT_EQ(m.sim.metrics.histograms().at("restore.time").count(), 1u);
  auto spans = m.sim.tracer.SpansInScope(m.sim.tracer.current_scope());
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "restore");
  EXPECT_EQ(spans[0].duration(), restored->restore_time);
}

}  // namespace
}  // namespace aurora
