// Figure 6: RocksDB configurations under the Facebook Prefix_dist workload.
//
//   RocksDB       (No Sync) — mini-LSM, WAL disabled: no persistence at all.
//   Aurora-100Hz  (No Sync) — the same ephemeral store, transparently
//                             checkpointed every 10 ms.
//   RocksDB+WAL   (Sync)    — WAL with group-commit fsync; memtable flushes
//                             + compaction when the WAL fills.
//   Aurora+WAL    (Sync)    — the paper's customized store: sls_journal WAL,
//                             checkpoint-on-journal-full, no LSM tree.
//
// The Aurora+WAL advantage is mechanical: when the WAL fills, stock RocksDB
// serializes and rewrites the whole memtable as an SSTable (and later
// compacts it again), while Aurora's MMU-tracked checkpoint flushes only the
// pages dirtied since the previous checkpoint.
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "src/apps/aurora_kv.h"
#include "src/apps/lsm_db.h"
#include "src/apps/workloads.h"
#include "src/base/histogram.h"

namespace aurora {
namespace {

constexpr uint64_t kNumKeys = 200000;
constexpr uint64_t kOps = 400000;
constexpr SimDuration kClientCpu = 120;  // aggregate client/server op overhead

struct RunResult {
  double ops_per_sec = 0;
  double write_p99_us = 0;
  double write_p999_us = 0;
};

void Preload(const std::function<void(uint64_t, const std::string&)>& put) {
  for (uint64_t k = 0; k < kNumKeys; k++) {
    put(k, std::string(200, static_cast<char>('a' + k % 26)));
  }
}

RunResult RunLsm(bool wal, bool wal_sync, bool transparent_aurora) {
  BenchMachine m(32 * kGiB, transparent_aurora ? 4096u : 64 * 1024u);
  // Stock RocksDB runs on the conventional file system; the transparent
  // Aurora configuration runs the same ephemeral store under checkpoints.
  auto raw_device = std::make_unique<MemBlockDevice>(&m.sim.clock, (16 * kGiB) / kPageSize);
  FfsLikeFs ffs(&m.sim, raw_device.get(), 64 * kKiB);
  Filesystem* fs = transparent_aurora ? static_cast<Filesystem*>(m.fs.get())
                                      : static_cast<Filesystem*>(&ffs);
  LsmOptions options;
  options.wal_enabled = wal;
  options.wal_sync = wal_sync;
  // Memtable sized so the whole database fits (the paper's setup): flushes
  // happen only when the WAL-full policy forces them.
  options.memtable_bytes = 96 * kMiB;
  LsmDb db(&m.sim, m.kernel.get(), fs, options);

  ConsistencyGroup* group = nullptr;
  SimTime next_ckpt = 0;
  if (transparent_aurora) {
    group = *m.sls->CreateGroup("rocksdb");
    (void)m.sls->Attach(group, db.process());
  }

  Preload([&](uint64_t k, const std::string& v) {
    (void)db.Put(PrefixDistWorkload::EncodeKey(k), v);
  });
  if (transparent_aurora) {
    auto first = m.sls->Checkpoint(group);
    m.sim.clock.AdvanceTo(first->durable_at);
    next_ckpt = m.sim.clock.now() + 10 * kMillisecond;
  }

  PrefixDistWorkload workload(kNumKeys, 4242);
  LatencyHistogram write_latency;
  SimClock& clock = m.sim.clock;
  SimTime start = clock.now();
  for (uint64_t i = 0; i < kOps; i++) {
    if (transparent_aurora && clock.now() >= next_ckpt) {
      auto ckpt = m.sls->Checkpoint(group);
      next_ckpt = std::max(ckpt->durable_at, clock.now() + 10 * kMillisecond);
    }
    clock.Advance(kClientCpu);
    KvRequest req = workload.Next();
    std::string key = PrefixDistWorkload::EncodeKey(req.key);
    if (req.op == KvOp::kSet) {
      SimTime t0 = clock.now();
      (void)db.Put(key, std::string(req.value_size, 'v'));
      write_latency.Record(clock.now() - t0);
    } else if (req.op == KvOp::kSeek) {
      (void)db.Seek(key, req.value_size);
    } else {
      (void)db.Get(key);
    }
  }
  RunResult out;
  out.ops_per_sec = static_cast<double>(kOps) / ToSeconds(clock.now() - start);
  out.write_p99_us = ToMicros(write_latency.Percentile(99));
  out.write_p999_us = ToMicros(write_latency.Percentile(99.9));
  return out;
}

double g_ckpt_wait_ms = 0;  // paper: the p99.9 mechanism (WAL-full checkpoint wait)

RunResult RunAuroraKv() {
  BenchMachine m(32 * kGiB, 4096);
  Process* proc = *m.kernel->CreateProcess("aurora-kv");
  ConsistencyGroup* group = *m.sls->CreateGroup("aurora-kv");
  (void)m.sls->Attach(group, proc);
  AuroraKvOptions options;
  options.memtable_bytes = 256 * kMiB;
  options.journal_bytes = 8 * kMiB;
  AuroraKv db(m.sls.get(), group, proc, options);

  Preload([&](uint64_t k, const std::string& v) {
    (void)db.Put(PrefixDistWorkload::EncodeKey(k), v);
  });
  auto first = m.sls->Checkpoint(group);
  m.sim.clock.AdvanceTo(first->durable_at);
  (void)m.sls->JournalReset(db.journal());

  PrefixDistWorkload workload(kNumKeys, 4242);
  LatencyHistogram write_latency;
  SimClock& clock = m.sim.clock;
  SimTime start = clock.now();
  for (uint64_t i = 0; i < kOps; i++) {
    clock.Advance(kClientCpu);
    KvRequest req = workload.Next();
    std::string key = PrefixDistWorkload::EncodeKey(req.key);
    if (req.op == KvOp::kSet) {
      SimTime t0 = clock.now();
      (void)db.Put(key, std::string(req.value_size, 'v'));
      write_latency.Record(clock.now() - t0);
    } else if (req.op == KvOp::kSeek) {
      // Memtable-ordered scan.
      auto it = db.memtable().index().lower_bound(key);
      for (uint32_t n = 0; n < req.value_size && it != db.memtable().index().end(); n++, ++it) {
        clock.Advance(m.sim.cost.cacheline_miss * 2);
      }
    } else {
      (void)db.Get(key);
    }
  }
  RunResult out;
  out.ops_per_sec = static_cast<double>(kOps) / ToSeconds(clock.now() - start);
  out.write_p99_us = ToMicros(write_latency.Percentile(99));
  out.write_p999_us = ToMicros(write_latency.Percentile(99.9));
  g_ckpt_wait_ms = ToMillis(db.stats().last_checkpoint_wait);
  return out;
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("fig6_rocksdb");
  using namespace aurora;
  PrintHeader(
      "Figure 6: RocksDB configurations, Facebook Prefix_dist workload\n"
      "(paper shape: ephemeral RocksDB fastest; Aurora-100Hz ~17% of it;\n"
      "Aurora+WAL ~75% faster than RocksDB+WAL with better p99, worse p99.9)");

  RunResult rocks = RunLsm(/*wal=*/false, /*wal_sync=*/false, /*transparent=*/false);
  RunResult aurora_100hz = RunLsm(false, false, /*transparent=*/true);
  RunResult rocks_wal = RunLsm(/*wal=*/true, /*wal_sync=*/true, false);
  RunResult aurora_wal = RunAuroraKv();

  std::printf("  %-14s | %12s %8s | %10s %10s\n", "config", "ops/s", "vs rdb", "p99(us)",
              "p99.9(us)");
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("  %-14s | %12.0f %7.0f%% | %10.1f %10.1f\n", name, r.ops_per_sec,
                100.0 * r.ops_per_sec / rocks.ops_per_sec, r.write_p99_us, r.write_p999_us);
  };
  row("RocksDB", rocks);
  row("Aurora-100Hz", aurora_100hz);
  row("RocksDB+WAL", rocks_wal);
  row("Aurora+WAL", aurora_wal);

  double speedup = 100.0 * (aurora_wal.ops_per_sec / rocks_wal.ops_per_sec - 1.0);
  std::printf("\nShape checks: Aurora+WAL vs RocksDB+WAL throughput: %+.0f%% (paper: +75%%);\n"
              "Aurora+WAL p99 %s RocksDB+WAL p99 (paper: better).\n",
              speedup, aurora_wal.write_p99_us < rocks_wal.write_p99_us ? "<" : ">");
  std::printf("Paper's p99.9 mechanism (a write that trips journal-full waits for the whole\n"
              "checkpoint): measured wait = %.1f ms. A single-pipeline simulation spreads\n"
              "this over one op rather than every in-flight writer; see EXPERIMENTS.md.\n",
              g_ckpt_wait_ms);
  return 0;
}
