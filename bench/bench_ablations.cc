// Ablations for the design choices DESIGN.md section 6 calls out:
//
//   1. Collapse direction: Aurora's reversed collapse (move the shadow's few
//      pages down) vs FreeBSD's classic collapse (move the parent's pages up).
//   2. Vnode checkpointing by inode number vs namei-style path resolution.
//   3. External synchrony on/off: latency cost of holding replies until the
//      covering checkpoint commits.
//   4. Shadow-chain cap: eager collapse vs letting chains grow.
//   5. Epoch overlap: max-in-flight-epochs 1 (serial pipeline) vs 2
//      (serialize epoch N+1 while epoch N's flush is in flight).
//   6. Flush lanes: the checkpoint flusher fanned over 1/2/4/8 device
//      submission queues — checkpoint time tracks aggregate device bandwidth
//      until the 4-device channel saturates.
//   7. Fault tolerance: integrity + retry overhead under injected device
//      faults, and graceful degradation through a full write outage.
//   8. Stop path: the legacy stopped window (full write-protect sweeps, one
//      shootdown per address space, all serialization inside the stop) vs the
//      incremental path (dirty-driven protection, shootdown elision, warm
//      serialization cache).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/base/rng.h"

namespace aurora {
namespace {

// --- 1. Collapse direction ----------------------------------------------------
void CollapseAblation() {
  PrintHeader("Ablation 1: collapse direction (paper section 6)");
  std::printf("  %-26s %14s %14s %9s\n", "resident/dirty pages", "classic(us)",
              "reversed(us)", "speedup");
  for (auto [resident, dirty] : {std::pair<int, int>{4096, 16}, {16384, 64}, {65536, 256}}) {
    auto measure = [&](bool reversed) {
      SimContext sim;
      VmMap map(&sim);
      auto obj = VmObject::CreateAnonymous(static_cast<uint64_t>(resident) * 2 * kPageSize);
      obj->set_sls_oid(1);
      auto addr = *map.Map(0x1000000, obj->size(), kProtRead | kProtWrite, obj, 0, false);
      (void)map.DirtyRange(addr, static_cast<uint64_t>(resident) * kPageSize);
      std::vector<VmMap*> maps{&map};
      auto pairs1 = CreateSystemShadows(maps, &sim, nullptr, nullptr);
      (void)map.DirtyRange(addr, static_cast<uint64_t>(dirty) * kPageSize);
      auto pairs2 = CreateSystemShadows(maps, &sim, nullptr, nullptr);
      // pairs2.frozen is the flushed incremental; collapse it into the base.
      SimStopwatch watch(sim.clock);
      CollapseAfterFlush(pairs2[0], maps, reversed, &sim);
      return ToMicros(watch.Elapsed());
    };
    double classic = measure(false);
    double reversed = measure(true);
    std::printf("  %10d/%-13d %14.1f %14.1f %8.1fx\n", resident, dirty, classic, reversed,
                classic / reversed);
  }
  std::printf("  -> reversed collapse cost tracks the dirty set, not the footprint.\n");
}

// --- 2. Inode refs vs path lookups ---------------------------------------------
void VnodeLookupAblation() {
  PrintHeader("Ablation 2: vnode checkpointing by inode vs path (paper section 5.2)");
  BenchMachine m(2 * kGiB);
  const int kFiles = 2000;
  std::vector<uint64_t> inos;
  for (int i = 0; i < kFiles; i++) {
    inos.push_back((*m.fs->Create("dir/file-" + std::to_string(i)))->ino());
  }
  Rng rng(3);
  const int kLookups = 500;
  SimStopwatch by_ino(m.sim.clock);
  for (int i = 0; i < kLookups; i++) {
    (void)m.fs->LookupByIno(inos[rng.Below(inos.size())]);
  }
  double ino_us = ToMicros(by_ino.Elapsed());
  SimStopwatch by_path(m.sim.clock);
  for (int i = 0; i < kLookups; i++) {
    // namei-style reverse resolution through the name cache.
    (void)m.fs->PathOfIno(inos[rng.Below(inos.size())]);
  }
  double path_us = ToMicros(by_path.Elapsed());
  std::printf("  %d lookups in a %d-file namespace: inode refs %.0f us, path walks %.0f us "
              "(%.0fx)\n",
              kLookups, kFiles, ino_us, path_us, path_us / ino_us);
}

// --- 3. External synchrony ------------------------------------------------------
void ExternalSynchronyAblation() {
  PrintHeader("Ablation 3: external synchrony (held replies vs immediate)");
  for (bool es : {false, true}) {
    BenchMachine m(4 * kGiB);
    Process* proc = *m.kernel->CreateProcess("server");
    auto obj = VmObject::CreateAnonymous(16 * kMiB);
    uint64_t addr = *proc->vm().Map(0x400000, 16 * kMiB, kProtRead | kProtWrite, obj, 0, false);
    ConsistencyGroup* group = *m.sls->CreateGroup("es");
    (void)m.sls->Attach(group, proc);
    group->external_sync = es;

    auto listener = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
    (void)listener->Bind({1, 80, ""});
    (void)listener->Listen(64);
    auto client = std::make_shared<Socket>(SocketDomain::kInet, SocketProto::kTcp);
    (void)client->Bind({2, 5000, ""});
    auto server_end = *client->ConnectTo(listener);

    LatencyHistogram reply_latency;
    SimDuration period = 10 * kMillisecond;
    SimTime next_ckpt = m.sim.clock.now() + period;
    Rng rng(9);
    for (int i = 0; i < 20000; i++) {
      m.sim.clock.Advance(5 * kMicrosecond);  // handle one request
      uint64_t off = rng.Below(16 * kMiB - 8);
      uint64_t v = rng.Next();
      (void)proc->vm().Write(addr + off, &v, sizeof(v));
      SimTime sent_at = m.sim.clock.now();
      (void)m.sls->SendExternal(group, server_end, "ok", 2);
      if (m.sim.clock.now() >= next_ckpt) {
        auto ckpt = m.sls->Checkpoint(group);
        next_ckpt = std::max(ckpt->durable_at, m.sim.clock.now() + period);
      }
      // Reply visible to the client when it reaches the peer buffer; with
      // external synchrony that is the next checkpoint commit.
      if (es) {
        reply_latency.Record(next_ckpt > sent_at ? next_ckpt - sent_at : 0);
      } else {
        reply_latency.Record(0);
      }
    }
    std::printf("  external synchrony %-3s: reply hold avg %8.1f us, p95 %8.1f us\n",
                es ? "on" : "off", reply_latency.MeanNanos() / 1000.0,
                ToMicros(reply_latency.Percentile(95)));
  }
  std::printf("  -> holding replies costs about half a checkpoint period on average,\n"
              "     which is why sls_fdctl lets read-only connections opt out.\n");
}

// --- 4. Shadow chain cap ---------------------------------------------------------
void ChainCapAblation() {
  PrintHeader("Ablation 4: eager collapse (chain cap 2) vs unbounded chains");
  for (bool eager : {true, false}) {
    SimContext sim;
    VmMap map(&sim);
    auto obj = VmObject::CreateAnonymous(4096 * kPageSize);
    obj->set_sls_oid(7);
    auto addr = *map.Map(0x1000000, obj->size(), kProtRead | kProtWrite, obj, 0, false);
    (void)map.DirtyRange(addr, 1024 * kPageSize);
    std::vector<VmMap*> maps{&map};
    Rng rng(11);
    std::vector<ShadowPair> pending;
    for (int ckpt = 0; ckpt < 40; ckpt++) {
      if (eager) {
        for (auto& pair : pending) {
          CollapseAfterFlush(pair, maps, true, &sim);
        }
        pending.clear();
      }
      for (int w = 0; w < 64; w++) {
        uint64_t v = rng.Next();
        (void)map.Write(addr + rng.Below(1024 * kPageSize - 8), &v, sizeof(v));
      }
      auto pairs = CreateSystemShadows(maps, &sim, nullptr, nullptr);
      for (auto& p : pairs) {
        pending.push_back(p);
      }
    }
    // Chain depth + read cost through the chain.
    int depth = 0;
    for (const VmObject* o = map.entries().begin()->second.object.get(); o != nullptr;
         o = o->parent()) {
      depth++;
    }
    // Cold faults: translations dropped, as after a migration or restore.
    map.pmap().InvalidateAll(sim.cost, &sim.clock);
    SimStopwatch watch(sim.clock);
    uint64_t v = 0;
    for (int r = 0; r < 2000; r++) {
      (void)map.Read(addr + rng.Below(1024 * kPageSize - 8), &v, sizeof(v));
    }
    std::printf("  %-18s chain depth %3d, 2000 cold reads take %8.1f us\n",
                eager ? "eager collapse:" : "unbounded chains:", depth,
                ToMicros(watch.Elapsed()));
  }
  std::printf("  -> unbounded chains make every cold fault walk the whole history.\n");
}

// --- 5. Epoch overlap -------------------------------------------------------------
void OverlapAblation() {
  PrintHeader("Ablation 5: epoch overlap (max in-flight epochs)");
  std::printf("  %-16s %8s %14s %16s %16s\n", "in-flight limit", "epochs",
              "avg gap (ms)", "avg stall (ms)", "first N begins");
  // A single slow device (500 MB/s) so the flush outlasts the 1 ms period,
  // and an append-only dirtier (fresh pages fault the zero-fill path, so the
  // mutator never blocks on an object the flusher holds busy). Under those
  // conditions the in-flight limit is the only thing pacing the pipeline.
  for (uint32_t limit : {1u, 2u}) {
    SimContext sim;
    DeviceProfile slow;
    slow.write_bytes_per_ns = 0.5;
    slow.read_bytes_per_ns = 1.0;
    auto device =
        std::make_unique<MemBlockDevice>(&sim.clock, (1 * kGiB) / kPageSize, kPageSize, slow);
    auto store = *ObjectStore::Format(device.get(), &sim);
    auto fs = std::make_unique<AuroraFs>(&sim, store.get());
    auto kernel = std::make_unique<Kernel>(&sim);
    auto sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());

    constexpr uint64_t kMem = 256 * kMiB;
    Process* proc = *kernel->CreateProcess("log");
    auto obj = VmObject::CreateAnonymous(kMem);
    uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);
    ConsistencyGroup* group = *sls->CreateGroup("log");
    (void)sls->Attach(group, proc);
    group->period = 1 * kMillisecond;
    group->max_in_flight_epochs = limit;
    sls->StartPeriodicCheckpoints(group);

    uint64_t value = 0;
    uint64_t cursor = 0;
    SimTime deadline = sim.clock.now() + 50 * kMillisecond;
    while (sim.clock.now() < deadline) {
      for (int i = 0; i < 128 && cursor + kPageSize <= kMem; i++) {
        value++;
        (void)proc->vm().Write(addr + cursor, &value, sizeof(value));
        cursor += kPageSize;
      }
      sim.clock.Advance(200 * kMicrosecond);
      sim.events.RunUntil(sim.clock.now());
    }
    sls->StopPeriodicCheckpoints(group);

    const auto& h = group->ckpt_history;
    double gap_sum = 0;
    double stall_sum = 0;
    for (size_t i = 1; i < h.size(); i++) {
      SimDuration gap = h[i].begin - h[i - 1].begin;
      gap_sum += ToMicros(gap) / 1000.0;
      // Stall: how far past the intended period the next epoch actually began.
      if (gap > group->period) {
        stall_sum += ToMicros(gap - group->period) / 1000.0;
      }
    }
    size_t n = h.size() > 1 ? h.size() - 1 : 1;
    std::string begins;
    for (size_t i = 0; i < h.size() && i < 4; i++) {
      begins += (i ? " " : "") + std::to_string(h[i].begin / kMillisecond);
    }
    std::printf("  %-16u %8zu %14.2f %16.2f   %s\n", limit, h.size(), gap_sum / n,
                stall_sum / n, begins.c_str());
    if (BenchReport* report = BenchReport::Current()) {
      std::string tag = "overlap limit=" + std::to_string(limit);
      report->AddResult(tag + " epochs", static_cast<double>(h.size()), 0, "count");
      report->AddResult(tag + " avg stall", stall_sum / n, 0, "ms");
    }
  }
  std::printf("  -> with limit 2 the next epoch serializes while the previous flush\n"
              "     drains, so the same window fits more epochs with less stall.\n");
}

// --- 6. Flush lanes ---------------------------------------------------------------
void FlushLaneAblation() {
  PrintHeader("Ablation 6: flush lanes (parallel flush over striped device queues)");
  std::printf("  %-8s %18s %18s %9s\n", "lanes", "flush makespan(ms)", "aggregate (GB/s)",
              "speedup");
  // The fig3 append profile: a fresh 256 MiB region dirtied front to back, so
  // the flush is one long streaming write burst — the case the paper's
  // 64 KiB-striped Optane array is built for. One full checkpoint per lane
  // count on a fresh machine; the flush makespan is measured from resume
  // (the flush overlaps execution) to durability.
  constexpr uint64_t kMem = 256 * kMiB;
  double serial_ms = 0;
  for (int lanes : {1, 2, 4, 8}) {
    BenchMachine m;
    m.metrics_label = "lanes" + std::to_string(lanes);
    Process* proc = *m.kernel->CreateProcess("append");
    auto obj = VmObject::CreateAnonymous(kMem);
    uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);
    uint64_t value = 0;
    for (uint64_t off = 0; off + kPageSize <= kMem; off += kPageSize) {
      value++;
      (void)proc->vm().Write(addr + off, &value, sizeof(value));
    }
    ConsistencyGroup* group = *m.sls->CreateGroup("append");
    (void)m.sls->Attach(group, proc);
    m.sls->SetFlushLanes(lanes);

    SimTime t0 = m.sim.clock.now();
    auto ckpt = m.sls->Checkpoint(group, "lanes");
    SimTime resume_at = t0 + ckpt->stop_time;
    double flush_ms = ckpt->durable_at > resume_at ? ToMillis(ckpt->durable_at - resume_at) : 0;
    if (lanes == 1) {
      serial_ms = flush_ms;
    }
    double gbps = static_cast<double>(ckpt->bytes_flushed) / kGiB /
                  (flush_ms / 1000.0);
    std::printf("  %-8d %18.1f %18.2f %8.1fx\n", lanes, flush_ms, gbps, serial_ms / flush_ms);
    if (BenchReport* report = BenchReport::Current()) {
      std::string tag = "flush lanes=" + std::to_string(lanes);
      report->AddResult(tag + " makespan", flush_ms, 0, "ms");
      report->AddResult(tag + " bandwidth", gbps, 0, "GB/s");
    }
  }
  std::printf("  -> checkpoint time tracks aggregate device bandwidth: each lane drives\n"
              "     its own queue until the 4-device channel saturates (~8 lanes).\n");
}

// --- 7. Fault tolerance ------------------------------------------------------------
void FaultToleranceAblation() {
  PrintHeader("Ablation 7: integrity + retry overhead under injected device faults");
  std::printf("  %-16s %18s %12s %12s %9s\n", "transient rate", "flush makespan(ms)",
              "io.retries", "io.giveups", "aborted");
  // The fig3 append profile again: one 256 MiB streaming checkpoint, now with
  // seeded transient read/write errors on every device queue. The retry
  // policy must absorb the modest rates with sub-5% makespan cost; rate 0
  // must be exactly the no-injector timeline (the injector draws nothing).
  constexpr uint64_t kMem = 256 * kMiB;
  double clean_ms = 0;
  int profile = 0;
  for (double rate : {0.0, 0.001, 0.01}) {
    BenchMachine m;
    m.metrics_label = "faultrate" + std::to_string(profile++);
    // Key contract for the BENCH JSON: the fault counters exist even on a
    // run where no fault ever fires.
    m.sim.metrics.counter("io.retries");
    m.sim.metrics.counter("io.giveups");
    m.sim.metrics.counter("ckpt.epochs_aborted");
    if (rate > 0) {
      FaultRule rule;
      rule.read_error_rate = rate;
      rule.write_error_rate = rate;
      m.device->InstallFaults(0xFA170000 + static_cast<uint64_t>(rate * 1e6), {rule});
    }
    Process* proc = *m.kernel->CreateProcess("append");
    auto obj = VmObject::CreateAnonymous(kMem);
    uint64_t addr = *proc->vm().Map(0x400000, kMem, kProtRead | kProtWrite, obj, 0, false);
    uint64_t value = 0;
    for (uint64_t off = 0; off + kPageSize <= kMem; off += kPageSize) {
      value++;
      (void)proc->vm().Write(addr + off, &value, sizeof(value));
    }
    ConsistencyGroup* group = *m.sls->CreateGroup("append");
    (void)m.sls->Attach(group, proc);

    SimTime t0 = m.sim.clock.now();
    auto ckpt = m.sls->Checkpoint(group, "faulty");
    SimTime resume_at = t0 + ckpt->stop_time;
    double flush_ms = ckpt->durable_at > resume_at ? ToMillis(ckpt->durable_at - resume_at) : 0;
    if (rate == 0.0) {
      clean_ms = flush_ms;
    }
    std::printf("  %-16g %18.1f %12llu %12llu %9llu\n", rate, flush_ms,
                static_cast<unsigned long long>(m.sim.metrics.counter("io.retries").value()),
                static_cast<unsigned long long>(m.sim.metrics.counter("io.giveups").value()),
                static_cast<unsigned long long>(group->epochs_aborted));
    if (BenchReport* report = BenchReport::Current()) {
      std::string tag = "fault rate=" + std::to_string(rate);
      report->AddResult(tag + " makespan", flush_ms, 0, "ms");
      report->AddResult(tag + " overhead vs clean",
                        clean_ms > 0 ? (flush_ms / clean_ms - 1.0) * 100.0 : 0, 0, "%");
    }
  }

  // Degraded mode: a total write outage aborts the in-flight epoch (the app
  // keeps running on the last durable one); once the device heals, the next
  // checkpoint flushes the abandoned pages and durability catches back up.
  BenchMachine m;
  m.metrics_label = "faultoutage";
  m.sim.metrics.counter("io.retries");
  m.sim.metrics.counter("io.giveups");
  m.sim.metrics.counter("ckpt.epochs_aborted");
  Process* proc = *m.kernel->CreateProcess("append");
  auto obj = VmObject::CreateAnonymous(16 * kMiB);
  uint64_t addr = *proc->vm().Map(0x400000, 16 * kMiB, kProtRead | kProtWrite, obj, 0, false);
  std::vector<uint8_t> page(kPageSize, 0x5a);
  for (uint64_t off = 0; off < 16 * kMiB; off += kPageSize) {
    (void)proc->vm().Write(addr + off, page.data(), page.size());
  }
  ConsistencyGroup* group = *m.sls->CreateGroup("append");
  (void)m.sls->Attach(group, proc);
  (void)m.sls->Checkpoint(group, "base");

  FaultRule outage;
  outage.write_error_rate = 1.0;
  m.device->InstallFaults(0xFA17DEAD, {outage});
  for (uint64_t off = 0; off < 16 * kMiB; off += kPageSize) {
    (void)proc->vm().Write(addr + off, page.data(), page.size());
  }
  auto degraded = m.sls->Checkpoint(group, "outage");
  m.device->ClearFaults();
  auto recovered = m.sls->Checkpoint(group, "healed");
  std::printf("  outage: aborted=%llu (degraded epoch %s), post-heal commit %s, "
              "epochs_aborted metric=%llu\n",
              static_cast<unsigned long long>(group->epochs_aborted),
              degraded.ok() && degraded->aborted ? "abandoned gracefully" : "UNEXPECTED",
              recovered.ok() && !recovered->aborted ? "durable" : "FAILED",
              static_cast<unsigned long long>(
                  m.sim.metrics.counter("ckpt.epochs_aborted").value()));
  std::printf("  -> modest fault rates cost only retry backoff; a dead device degrades to\n"
              "     memory-only epochs instead of killing the application.\n");
}

// --- 8. Stop path -----------------------------------------------------------------
void StopPathAblation() {
  PrintHeader("Ablation 8: legacy stopped window vs dirty-driven incremental stop path");
  std::printf("  %-9s %-12s %12s %12s %14s %12s\n", "app", "path", "p50 (us)", "p99 (us)",
              "shootdowns", "elided");
  std::vector<AppProfile> profiles;
  profiles.push_back({"firefox", 198 * kMiB, 4, 60, 225, 45, 2});
  profiles.push_back({"tomcat", 197 * kMiB, 1, 80, 1100, 260, 4});
  int config = 0;
  for (const AppProfile& profile : profiles) {
    double legacy_p99 = 0;
    for (bool legacy : {true, false}) {
      BenchMachine m(8 * kGiB);
      m.metrics_label = "stoppath" + std::to_string(config++);
      // Key contract for the BENCH JSON: the incremental-path counters exist
      // on both sides of the ablation, including the legacy run that never
      // elides or caches anything.
      m.sim.metrics.counter("vm.shootdowns_elided");
      m.sim.metrics.counter("ckpt.ptes_reprotected");
      m.sim.metrics.counter("ckpt.serialize_cache_hits");
      m.sim.metrics.counter("ckpt.serialize_cache_misses");
      m.sim.metrics.counter("ckpt.serialize_cache_stale");
      auto procs = BuildAppProfile(m, profile);
      ConsistencyGroup* g = *m.sls->CreateGroup(profile.name);
      for (Process* p : procs) {
        (void)m.sls->Attach(g, p);
      }
      g->legacy_stop_path = legacy;
      // One cold checkpoint, then a mostly-idle steady state: a small dirty
      // set per epoch, which is what the incremental path is built for.
      auto cold = m.sls->Checkpoint(g);
      if (cold.ok()) {
        m.sim.clock.AdvanceTo(cold->durable_at);
      }
      g->stop_times.Reset();
      for (int epoch = 0; epoch < 60; epoch++) {
        (void)procs[0]->vm().DirtyRange(0x40000000, 16 * kPageSize);
        auto steady = m.sls->Checkpoint(g);
        if (steady.ok()) {
          m.sim.clock.AdvanceTo(steady->durable_at);
        }
      }
      double p50_us = ToMicros(g->stop_times.Percentile(50));
      double p99_us = ToMicros(g->stop_times.Percentile(99));
      if (legacy) {
        legacy_p99 = p99_us;
      }
      std::printf("  %-9s %-12s %12.1f %12.1f %14llu %12llu\n", profile.name.c_str(),
                  legacy ? "legacy" : "incremental", p50_us, p99_us,
                  static_cast<unsigned long long>(
                      m.sim.metrics.counter("vm.tlb_shootdowns").value()),
                  static_cast<unsigned long long>(
                      m.sim.metrics.counter("vm.shootdowns_elided").value()));
      if (BenchReport* report = BenchReport::Current()) {
        std::string tag = "stop path " + profile.name + (legacy ? " legacy" : " incremental");
        report->AddResult(tag + " p99 stop", p99_us, 0, "us");
        if (!legacy && p99_us > 0) {
          report->AddResult("stop path " + profile.name + " speedup", legacy_p99 / p99_us, 0,
                            "x");
        }
      }
    }
  }
  std::printf("  -> with dirty-driven protection, elided shootdowns and out-of-window\n"
              "     serialization, idle-epoch stop time tracks the dirty set, not the\n"
              "     image: the paper's delay-free checkpoint claim.\n");
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("ablations");
  aurora::CollapseAblation();
  aurora::VnodeLookupAblation();
  aurora::ExternalSynchronyAblation();
  aurora::ChainCapAblation();
  aurora::OverlapAblation();
  aurora::FlushLaneAblation();
  aurora::FaultToleranceAblation();
  aurora::StopPathAblation();
  return 0;
}
