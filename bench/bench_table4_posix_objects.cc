// Table 4: checkpoint and restore times for individual POSIX objects.
//
// Each object type is measured by differencing a process that holds one
// instance against the same process without it, for both the serialize
// (checkpoint) and recreate (restore) paths.
#include <cstdio>
#include <functional>

#include "bench/bench_common.h"
#include "src/core/serialize.h"

namespace aurora {
namespace {

struct Measurement {
  double checkpoint_us = 0;
  double restore_us = 0;
};

// Measures serialize+restore cost of whatever `install` adds to a process.
Measurement MeasureDelta(const std::function<void(BenchMachine&, Process*)>& install) {
  auto run = [&](bool with_object) -> std::pair<double, double> {
    BenchMachine m(2 * kGiB);
    Process* proc = *m.kernel->CreateProcess("micro");
    if (with_object) {
      install(m, proc);
    }
    ConsistencyGroup* group = *m.sls->CreateGroup("micro");
    (void)m.sls->Attach(group, proc);

    // Serialize-only timing (the Table 4 checkpoint column measures state
    // gathering, not quiescing or memory flushing).
    SerializeStats stats;
    auto ensure = [&m](VmObject* obj) {
      if (obj->sls_oid() == 0) {
        auto oid = m.store->CreateObject(ObjType::kMemory, obj->size());
        obj->set_sls_oid(oid->value);
      }
      return Oid{obj->sls_oid()};
    };
    SimStopwatch ser(m.sim.clock);
    auto manifest = SerializeOsState(&m.sim, *group, 1, kInvalidOid, ensure, &stats);
    double ckpt_us = ToMicros(ser.Elapsed());

    // Restore timing: recreate the objects from the manifest.
    BenchMachine target(2 * kGiB);
    auto resolve = [](Oid, uint64_t size) -> Result<ResolvedMemory> {
      return ResolvedMemory{VmObject::CreateAnonymous(size ? size : kPageSize), false};
    };
    SimStopwatch res(target.sim.clock);
    (void)RestoreOsState(&target.sim, target.kernel.get(), target.fs.get(), *manifest, resolve);
    double restore_us = ToMicros(res.Elapsed());
    return {ckpt_us, restore_us};
  };
  auto [ckpt_with, rest_with] = run(true);
  auto [ckpt_without, rest_without] = run(false);
  return Measurement{ckpt_with - ckpt_without, rest_with - rest_without};
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("table4_posix_objects");
  using namespace aurora;
  PrintHeader("Table 4: per-POSIX-object checkpoint / restore times (us)");
  std::printf("  %-28s | %8s %8s | %8s %8s\n", "object", "ckpt", "(paper)", "restore",
              "(paper)");

  struct Row {
    const char* name;
    double paper_ckpt;
    double paper_restore;
    std::function<void(BenchMachine&, Process*)> install;
  };
  const Row rows[] = {
      {"Kqueue w/1024 events", 35.2, 2.7,
       [](BenchMachine& m, Process* p) {
         auto fd = *m.kernel->MakeKqueue(*p);
         auto* kq = static_cast<Kqueue*>((*p->fds().Get(fd))->object.get());
         for (uint64_t e = 0; e < 1024; e++) {
           kq->Register(KEvent{e, -1, 1, 0, 0, e});
         }
       }},
      {"Pipes", 1.7, 2.6,
       [](BenchMachine& m, Process* p) { (void)m.kernel->MakePipe(*p); }},
      {"Pseudoterminals", 3.1, 30.2,
       [](BenchMachine& m, Process* p) { (void)m.kernel->MakePty(*p); }},
      {"Shared Memory (POSIX)", 4.5, 3.8,
       [](BenchMachine& m, Process* p) { (void)m.kernel->ShmOpen(*p, "/seg", 64 * kKiB); }},
      {"Shared Memory (SysV)", 14.9, 2.8,
       [](BenchMachine& m, Process* p) { (void)m.kernel->ShmGet(*p, 42, 64 * kKiB); }},
      {"Sockets", 1.8, 3.6,
       [](BenchMachine& m, Process* p) {
         (void)m.kernel->MakeSocket(*p, SocketDomain::kInet, SocketProto::kTcp);
       }},
      {"Vnodes", 1.7, 2.0,
       [](BenchMachine& m, Process* p) {
         (void)m.kernel->Open(*p, "bench-file", kOpenRead | kOpenWrite, true);
       }},
  };
  for (const Row& row : rows) {
    Measurement msr = MeasureDelta(row.install);
    std::printf("  %-28s | %8.1f %8.1f | %8.1f %8.1f\n", row.name, msr.checkpoint_us,
                row.paper_ckpt, msr.restore_us, row.paper_restore);
  }
  std::printf("\nShape checks: SysV > POSIX shm (namespace scan); kqueue scales with events;\n"
              "pty restore dominated by devfs locking.\n");
  return 0;
}
