// Figure 3: FileBench microbenchmarks — AuroraFS vs ZFS (+/- checksums) vs
// FFS(SU+J), all configured with 64 KiB blocks on the paper's striped
// NVMe array.
//
//   (a) 64 KiB random/sequential write throughput (GiB/s)
//   (b)  4 KiB random/sequential write throughput (GiB/s)
//   (c) createfiles and write+fsync operation rates (ops/s)
//   (d) fileserver / varmail / webserver personalities (ops/s)
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/rng.h"

namespace aurora {
namespace {

// Syscall entry/exit + copyin for one file system call.
constexpr SimDuration kSyscallCost = 2000;

struct FsUnderTest {
  std::string name;
  std::unique_ptr<BenchMachine> machine;      // for AuroraFS (owns the store)
  std::unique_ptr<MemBlockDevice> raw_device;  // for the baselines
  std::unique_ptr<BufferedFs> baseline;
  BufferedFs* fs = nullptr;
  SimContext* sim = nullptr;
  ObjectStore* store = nullptr;  // non-null for AuroraFS: periodic commits
};

std::vector<FsUnderTest> MakeFilesystems() {
  std::vector<FsUnderTest> out;
  {
    FsUnderTest zfs;
    zfs.name = "zfs";
    zfs.machine = std::make_unique<BenchMachine>(16 * kGiB);
    zfs.raw_device = std::make_unique<MemBlockDevice>(&zfs.machine->sim.clock,
                                                      (16 * kGiB) / kPageSize);
    zfs.baseline = std::make_unique<ZfsLikeFs>(&zfs.machine->sim, zfs.raw_device.get(),
                                               64 * kKiB, false);
    zfs.fs = zfs.baseline.get();
    zfs.sim = &zfs.machine->sim;
    out.push_back(std::move(zfs));
  }
  {
    FsUnderTest zfsc;
    zfsc.name = "zfs+csum";
    zfsc.machine = std::make_unique<BenchMachine>(16 * kGiB);
    zfsc.raw_device = std::make_unique<MemBlockDevice>(&zfsc.machine->sim.clock,
                                                       (16 * kGiB) / kPageSize);
    zfsc.baseline = std::make_unique<ZfsLikeFs>(&zfsc.machine->sim, zfsc.raw_device.get(),
                                                64 * kKiB, true);
    zfsc.fs = zfsc.baseline.get();
    zfsc.sim = &zfsc.machine->sim;
    out.push_back(std::move(zfsc));
  }
  {
    FsUnderTest ffs;
    ffs.name = "ffs";
    ffs.machine = std::make_unique<BenchMachine>(16 * kGiB);
    ffs.raw_device = std::make_unique<MemBlockDevice>(&ffs.machine->sim.clock,
                                                      (16 * kGiB) / kPageSize);
    ffs.baseline = std::make_unique<FfsLikeFs>(&ffs.machine->sim, ffs.raw_device.get(),
                                               64 * kKiB);
    ffs.fs = ffs.baseline.get();
    ffs.sim = &ffs.machine->sim;
    out.push_back(std::move(ffs));
  }
  {
    FsUnderTest aurora_fs;
    aurora_fs.name = "aurora";
    aurora_fs.machine = std::make_unique<BenchMachine>(16 * kGiB);
    aurora_fs.fs = aurora_fs.machine->fs.get();
    aurora_fs.sim = &aurora_fs.machine->sim;
    aurora_fs.store = aurora_fs.machine->store.get();
    out.push_back(std::move(aurora_fs));
  }
  return out;
}

// Runs `op` exactly `nops` times, flushing dirty data periodically like the
// kernel syncer (10 ms store checkpoints for Aurora, txg-style syncs for the
// baselines) with dirty-data backpressure. Returns GiB/s of payload.
double RunLoop(FsUnderTest& f, uint64_t nops, double* seconds_out,
               const std::function<uint64_t()>& op) {
  SimClock& clock = f.sim->clock;
  SimTime start = clock.now();
  SimDuration sync_period = f.store != nullptr ? 10 * kMillisecond : 5 * kSecond;
  SimTime next_sync = clock.now() + sync_period;
  uint64_t bytes = 0;
  for (uint64_t i = 0; i < nops; i++) {
    clock.Advance(kSyscallCost);
    bytes += op();
    if (clock.now() >= next_sync || f.fs->DirtyBytes() > 128 * kMiB) {
      auto done = f.fs->FlushAll();
      if (done.ok() && f.fs->DirtyBytes() > 128 * kMiB) {
        clock.AdvanceTo(*done);  // backpressure: writer waits for the device
      }
      if (f.store != nullptr) {
        (void)f.store->CommitCheckpoint("");
        (void)f.store->DeleteCheckpointsBefore(f.store->current_epoch() - 1);
      }
      next_sync = clock.now() + sync_period;
    }
  }
  double seconds = ToSeconds(clock.now() - start);
  if (seconds_out != nullptr) {
    *seconds_out = seconds;
  }
  return static_cast<double>(bytes) / seconds / static_cast<double>(kGiB);
}

double WriteBench(FsUnderTest& f, uint64_t io_size, bool random) {
  auto vn = *f.fs->Create("bigfile-" + std::to_string(io_size) + (random ? "r" : "s"));
  const uint64_t file_size = 256 * kMiB;
  std::vector<uint8_t> buf(io_size, 0xd1);
  Rng rng(42);
  uint64_t off = 0;
  uint64_t nops = io_size >= 64 * kKiB ? 4096 : 16384;
  return RunLoop(f, nops, nullptr, [&]() {
    uint64_t pos = random ? (rng.Below(file_size / io_size)) * io_size : off;
    off = (off + io_size) % file_size;
    (void)vn->Write(pos, buf.data(), buf.size());
    return io_size;
  });
}

void Cleanup(FsUnderTest& f) {
  (void)f.fs->FlushAll();
  if (f.store != nullptr) {
    (void)f.store->CommitCheckpoint("");
    (void)f.store->DeleteCheckpointsBefore(f.store->current_epoch() - 1);
  }
  f.fs->DropCleanCache();
}

double CreateFilesBench(FsUnderTest& f) {
  uint64_t n = 0;
  double seconds = 0;
  const uint64_t nops = 4000;
  RunLoop(f, nops, &seconds, [&]() {
    auto vn = f.fs->Create("dir/f" + std::to_string(n++));
    if (vn.ok()) {
      (void)(*vn)->Write(0, "x", 1);
    }
    return uint64_t{1};
  });
  return static_cast<double>(nops) / seconds;
}

double FsyncBench(FsUnderTest& f, uint64_t io_size) {
  auto vn = *f.fs->Create("synced-" + std::to_string(io_size));
  std::vector<uint8_t> buf(io_size, 0x9e);
  uint64_t off = 0;
  double seconds = 0;
  const uint64_t nops = 3000;
  RunLoop(f, nops, &seconds, [&]() {
    (void)vn->Write(off, buf.data(), buf.size());
    off += io_size;
    if (off > 64 * kMiB) {
      off = 0;
    }
    (void)vn->Fsync();
    return io_size;
  });
  return static_cast<double>(nops) / seconds;
}

// FileBench personalities: op mixes from the classic workload definitions.
double Personality(FsUnderTest& f, const std::string& kind) {
  Rng rng(7);
  std::vector<std::shared_ptr<Vnode>> files;
  for (int i = 0; i < 64; i++) {
    files.push_back(*f.fs->Create(kind + "-f" + std::to_string(i)));
    std::vector<uint8_t> init(64 * kKiB, 1);
    (void)files.back()->Write(0, init.data(), init.size());
  }
  std::vector<uint8_t> buf(16 * kKiB, 0x3c);
  double seconds = 0;
  uint64_t seq = 1000;
  const uint64_t nops = 3000;
  RunLoop(f, nops, &seconds, [&]() {
    auto& vn = files[rng.Below(files.size())];
    if (kind == "fileserver") {
      // create/write/read/append/stat/delete-ish mix, no fsync.
      switch (rng.Below(6)) {
        case 0:
          (void)vn->Write(rng.Below(32) * 16 * kKiB, buf.data(), buf.size());
          break;
        case 1:
          (void)vn->Read(rng.Below(32) * 16 * kKiB, buf.data(), buf.size());
          break;
        case 2:
          (void)vn->Write(vn->size(), buf.data(), buf.size());
          break;
        case 3:
        case 4:
          (void)vn->Read(rng.Below(32) * 16 * kKiB, buf.data(), 4 * kKiB);
          break;
        case 5: {
          auto nv = f.fs->Create(kind + "-n" + std::to_string(seq++));
          if (nv.ok()) {
            (void)(*nv)->Write(0, buf.data(), 4 * kKiB);
          }
          break;
        }
      }
    } else if (kind == "varmail") {
      // Mail server: small writes with fsync after each delivery.
      (void)vn->Write(vn->size() % (1 * kMiB), buf.data(), 8 * kKiB);
      (void)vn->Fsync();
      (void)vn->Read(0, buf.data(), 8 * kKiB);
    } else {  // webserver
      // Read-mostly with a shared append-only log.
      (void)vn->Read(rng.Below(32) * 16 * kKiB, buf.data(), buf.size());
      (void)vn->Read(rng.Below(32) * 16 * kKiB, buf.data(), buf.size());
      (void)files[0]->Write(files[0]->size(), buf.data(), 512);
    }
    return uint64_t{1};
  });
  return static_cast<double>(nops) / seconds;
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("fig3_filebench");
  using namespace aurora;
  PrintHeader("Figure 3(a,b): write throughput, GiB/s (paper shape: Aurora > FFS > ZFS at\n"
              "64 KiB; FFS > Aurora > ZFS at 4 KiB)");
  std::printf("  %-10s | %8s %8s | %8s %8s\n", "fs", "64K-rand", "64K-seq", "4K-rand", "4K-seq");
  for (auto& f : MakeFilesystems()) {
    double r64 = WriteBench(f, 64 * kKiB, true);
    Cleanup(f);
    double s64 = WriteBench(f, 64 * kKiB, false);
    Cleanup(f);
    double r4 = WriteBench(f, 4 * kKiB, true);
    Cleanup(f);
    double s4 = WriteBench(f, 4 * kKiB, false);
    Cleanup(f);
    std::printf("  %-10s | %8.2f %8.2f | %8.2f %8.2f\n", f.name.c_str(), r64, s64, r4, s4);
  }

  PrintHeader("Figure 3(c): metadata operations, ops/s (paper shape: Aurora slowest on\n"
              "createfiles (global lock), fastest on fsync (no-op))");
  std::printf("  %-10s | %12s %12s %12s\n", "fs", "createfiles", "fsync-4K", "fsync-64K");
  for (auto& f : MakeFilesystems()) {
    double create = CreateFilesBench(f);
    Cleanup(f);
    double f4 = FsyncBench(f, 4 * kKiB);
    Cleanup(f);
    double f64 = FsyncBench(f, 64 * kKiB);
    Cleanup(f);
    std::printf("  %-10s | %12.0f %12.0f %12.0f\n", f.name.c_str(), create, f4, f64);
  }

  PrintHeader("Figure 3(d): simulated applications, ops/s (paper shape: comparable on\n"
              "fileserver/webserver; Aurora wins varmail because fsync is free)");
  std::printf("  %-10s | %12s %12s %12s\n", "fs", "fileserver", "varmail", "webserver");
  for (auto& f : MakeFilesystems()) {
    double fsrv = Personality(f, "fileserver");
    Cleanup(f);
    double mail = Personality(f, "varmail");
    Cleanup(f);
    double web = Personality(f, "webserver");
    Cleanup(f);
    std::printf("  %-10s | %12.0f %12.0f %12.0f\n", f.name.c_str(), fsrv, mail, web);
  }
  return 0;
}
