#include "bench/bench_common.h"

namespace aurora {

namespace {
BenchReport* g_current_report = nullptr;
// Keep only the freshest spans per machine: long periodic-checkpoint runs
// record thousands, and consumers diff the last few operations' phases.
constexpr size_t kReportMaxSpans = 64;
}  // namespace

BenchReport* BenchReport::Current() { return g_current_report; }

BenchReport::BenchReport(const std::string& name) : name_(name) {
  g_current_report = this;
}

BenchReport::~BenchReport() {
  Write();
  if (g_current_report == this) {
    g_current_report = nullptr;
  }
}

void BenchReport::AddResult(const std::string& label, double measured, double paper,
                            const std::string& unit) {
  rows_.push_back(Row{label, measured, paper, unit});
}

void BenchReport::AddMetrics(const std::string& label, const SimContext& sim) {
  // Micro-benchmarks construct machines in a loop; keep the report bounded.
  constexpr size_t kMaxMachines = 32;
  if (metrics_.size() >= kMaxMachines) {
    machines_dropped_++;
    return;
  }
  std::string key = label;
  if (key.empty()) {
    key = "machine" + std::to_string(metrics_.size());
  }
  metrics_.emplace_back(key, MetricsToJson(sim.metrics, sim.tracer, true, kReportMaxSpans));
}

void BenchReport::Write() {
  if (written_) {
    return;
  }
  written_ = true;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.Value(name_);
  w.Key("results");
  w.BeginArray();
  for (const Row& row : rows_) {
    w.BeginObject();
    w.Key("label");
    w.Value(row.label);
    w.Key("measured");
    w.Value(row.measured);
    w.Key("paper");
    w.Value(row.paper);
    w.Key("unit");
    w.Value(row.unit);
    w.EndObject();
  }
  w.EndArray();
  w.Key("metrics");
  w.BeginObject();
  for (const auto& [label, json] : metrics_) {
    w.Key(label);
    w.RawValue(json);
  }
  w.EndObject();
  w.Key("machines_dropped");
  w.Value(machines_dropped_);
  w.EndObject();

  std::string path = "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(w.str().data(), 1, w.str().size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\n[metrics written to %s]\n", path.c_str());
}

std::vector<Process*> BuildAppProfile(BenchMachine& m, const AppProfile& profile) {
  std::vector<Process*> procs;
  Process* root = *m.kernel->CreateProcess(profile.name);
  procs.push_back(root);
  for (int p = 1; p < profile.processes; p++) {
    procs.push_back(*m.kernel->Fork(*root));
  }

  // Memory: split the RSS across the processes as dirtied anonymous regions.
  uint64_t per_proc = PageRound(profile.rss_bytes / static_cast<uint64_t>(profile.processes));
  for (Process* proc : procs) {
    auto obj = VmObject::CreateAnonymous(per_proc);
    uint64_t addr =
        *proc->vm().Map(0x40000000, per_proc, kProtRead | kProtWrite, std::move(obj), 0, false);
    (void)proc->vm().DirtyRange(addr, per_proc);
  }

  // Threads beyond the tree's initial ones.
  int have = static_cast<int>(procs.size());
  for (int t = have; t < profile.threads; t++) {
    procs[static_cast<size_t>(t) % procs.size()]->AddThread();
  }

  // Extra map entries: small anonymous regions (libraries, stacks, arenas).
  for (Process* proc : procs) {
    for (int e = 0; e < profile.map_entries; e++) {
      uint64_t size = kPageSize * (1 + (e % 4));
      auto obj = VmObject::CreateAnonymous(size);
      auto addr = proc->vm().Map(0, size, kProtRead | kProtWrite, std::move(obj), 0, true);
      if (addr.ok() && e % 3 == 0) {
        (void)proc->vm().DirtyRange(*addr, kPageSize);
      }
    }
  }

  // File descriptors: a realistic mix.
  for (Process* proc : procs) {
    for (int f = 0; f < profile.fds; f++) {
      switch (f % 5) {
        case 0:
          (void)m.kernel->Open(*proc, profile.name + "-file" + std::to_string(f), kOpenRead,
                               true);
          break;
        case 1:
          (void)m.kernel->MakePipe(*proc);
          break;
        case 2: {
          auto fd = m.kernel->MakeSocket(*proc, SocketDomain::kInet, SocketProto::kTcp);
          if (fd.ok()) {
            auto desc = proc->fds().Get(*fd);
            auto* sock = static_cast<Socket*>((*desc)->object.get());
            (void)sock->Bind({0x7f000001, static_cast<uint16_t>(10000 + f), ""});
            (void)sock->Listen(16);
          }
          break;
        }
        case 3:
          (void)m.kernel->MakeSocket(*proc, SocketDomain::kUnix, SocketProto::kUdp);
          break;
        case 4:
          if (f < 5) {
            (void)m.kernel->MakePty(*proc);  // a controlling terminal at most
          } else {
            (void)m.kernel->MakeSocket(*proc, SocketDomain::kInet, SocketProto::kUdp);
          }
          break;
      }
    }
    for (int k = 0; k < profile.kqueues; k++) {
      auto fd = m.kernel->MakeKqueue(*proc);
      if (fd.ok()) {
        auto desc = proc->fds().Get(*fd);
        auto* kq = static_cast<Kqueue*>((*desc)->object.get());
        for (int e = 0; e < 64; e++) {
          kq->Register(KEvent{static_cast<uint64_t>(e), -1, 1, 0, 0, 0});
        }
      }
    }
  }
  return procs;
}

}  // namespace aurora
