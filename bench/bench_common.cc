#include "bench/bench_common.h"

namespace aurora {

std::vector<Process*> BuildAppProfile(BenchMachine& m, const AppProfile& profile) {
  std::vector<Process*> procs;
  Process* root = *m.kernel->CreateProcess(profile.name);
  procs.push_back(root);
  for (int p = 1; p < profile.processes; p++) {
    procs.push_back(*m.kernel->Fork(*root));
  }

  // Memory: split the RSS across the processes as dirtied anonymous regions.
  uint64_t per_proc = PageRound(profile.rss_bytes / static_cast<uint64_t>(profile.processes));
  for (Process* proc : procs) {
    auto obj = VmObject::CreateAnonymous(per_proc);
    uint64_t addr =
        *proc->vm().Map(0x40000000, per_proc, kProtRead | kProtWrite, std::move(obj), 0, false);
    (void)proc->vm().DirtyRange(addr, per_proc);
  }

  // Threads beyond the tree's initial ones.
  int have = static_cast<int>(procs.size());
  for (int t = have; t < profile.threads; t++) {
    procs[static_cast<size_t>(t) % procs.size()]->AddThread();
  }

  // Extra map entries: small anonymous regions (libraries, stacks, arenas).
  for (Process* proc : procs) {
    for (int e = 0; e < profile.map_entries; e++) {
      uint64_t size = kPageSize * (1 + (e % 4));
      auto obj = VmObject::CreateAnonymous(size);
      auto addr = proc->vm().Map(0, size, kProtRead | kProtWrite, std::move(obj), 0, true);
      if (addr.ok() && e % 3 == 0) {
        (void)proc->vm().DirtyRange(*addr, kPageSize);
      }
    }
  }

  // File descriptors: a realistic mix.
  for (Process* proc : procs) {
    for (int f = 0; f < profile.fds; f++) {
      switch (f % 5) {
        case 0:
          (void)m.kernel->Open(*proc, profile.name + "-file" + std::to_string(f), kOpenRead,
                               true);
          break;
        case 1:
          (void)m.kernel->MakePipe(*proc);
          break;
        case 2: {
          auto fd = m.kernel->MakeSocket(*proc, SocketDomain::kInet, SocketProto::kTcp);
          if (fd.ok()) {
            auto desc = proc->fds().Get(*fd);
            auto* sock = static_cast<Socket*>((*desc)->object.get());
            (void)sock->Bind({0x7f000001, static_cast<uint16_t>(10000 + f), ""});
            (void)sock->Listen(16);
          }
          break;
        }
        case 3:
          (void)m.kernel->MakeSocket(*proc, SocketDomain::kUnix, SocketProto::kUdp);
          break;
        case 4:
          if (f < 5) {
            (void)m.kernel->MakePty(*proc);  // a controlling terminal at most
          } else {
            (void)m.kernel->MakeSocket(*proc, SocketDomain::kInet, SocketProto::kUdp);
          }
          break;
      }
    }
    for (int k = 0; k < profile.kqueues; k++) {
      auto fd = m.kernel->MakeKqueue(*proc);
      if (fd.ok()) {
        auto desc = proc->fds().Get(*fd);
        auto* kq = static_cast<Kqueue*>((*desc)->object.get());
        for (int e = 0; e < 64; e++) {
          kq->Register(KEvent{static_cast<uint64_t>(e), -1, 1, 0, 0, 0});
        }
      }
    }
  }
  return procs;
}

}  // namespace aurora
