// Figure 5: Memcached latency at a fixed 120 k ops/s (15% of peak) over
// varying checkpoint periods — the worst case for transparent persistence,
// because there is no network queueing to hide checkpoint stalls behind.
//
// Open-loop Poisson arrivals against the aggregate server pipeline: requests
// that arrive during a checkpoint stop wait it out, and the post-checkpoint
// fault storm inflates the ops that repopulate the MMU.
#include <cstdio>
#include <deque>

#include "bench/bench_common.h"
#include "src/apps/kv_server.h"
#include "src/apps/workloads.h"
#include "src/base/histogram.h"
#include "src/base/rng.h"

namespace aurora {
namespace {

struct RunResult {
  double avg_us = 0;
  double p95_us = 0;
  double achieved_ops = 0;
};

RunResult RunFixedLoad(SimDuration period, double target_ops_per_sec, SimDuration sim_time) {
  BenchMachine m(32 * kGiB, 4096);  // page-granular store blocks for memory flushes
  KvServerConfig config;
  config.num_keys = 64 << 10;
  config.value_size = 200;
  config.op_cpu = 920;  // 12-worker aggregate pipeline
  KvServer server(&m.sim, m.kernel.get(), config);
  (void)server.Warmup();

  ConsistencyGroup* group = nullptr;
  if (period > 0) {
    group = *m.sls->CreateGroup("memcached");
    (void)m.sls->Attach(group, server.process());
    auto first = m.sls->Checkpoint(group);
    m.sim.clock.AdvanceTo(first->durable_at);
  }

  EtcWorkload workload(config.num_keys, 77);
  Rng arrivals(99);
  LatencyHistogram latency;
  SimClock& clock = m.sim.clock;
  SimTime start = clock.now();
  SimTime deadline = start + sim_time;
  SimTime next_ckpt = start + (period > 0 ? period : sim_time * 2);
  double mean_interarrival_ns = 1e9 / target_ops_per_sec;

  SimTime next_arrival = start;
  uint64_t completed = 0;
  while (next_arrival < deadline) {
    next_arrival += static_cast<SimDuration>(arrivals.NextExponential(mean_interarrival_ns));
    if (group != nullptr && clock.now() >= next_ckpt) {
      auto ckpt = m.sls->Checkpoint(group);
      next_ckpt = std::max(ckpt->durable_at, clock.now() + period);
    }
    // Server idle until the request arrives.
    clock.AdvanceTo(next_arrival);
    // A checkpoint may fire between arrival and service.
    if (group != nullptr && clock.now() >= next_ckpt) {
      auto ckpt = m.sls->Checkpoint(group);
      next_ckpt = std::max(ckpt->durable_at, clock.now() + period);
    }
    KvRequest req = workload.Next();
    auto service = req.op == KvOp::kSet
                       ? server.ExecuteSet(req.key, static_cast<uint8_t>(req.key))
                       : server.ExecuteGet(req.key);
    if (!service.ok()) {
      break;
    }
    // Client-observed latency: network RTT + the op's worker-side service.
    // The clock paces ops at the 12-worker aggregate rate; a single request
    // still occupies one worker for the full per-op CPU time.
    constexpr SimDuration kWorkerCpu = 11 * kMicrosecond;
    latency.Record(clock.now() - next_arrival + m.sim.cost.net_rtt + kWorkerCpu -
                   config.op_cpu);
    completed++;
  }
  RunResult out;
  out.avg_us = latency.MeanNanos() / 1000.0;
  out.p95_us = ToMicros(latency.Percentile(95));
  out.achieved_ops = static_cast<double>(completed) / ToSeconds(clock.now() - start);
  return out;
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("fig5_memcached_fixed");
  using namespace aurora;
  constexpr double kLoad = 120000;
  constexpr SimDuration kRun = 2 * kSecond;

  PrintHeader(
      "Figure 5: Memcached latency at a fixed 120k ops/s vs checkpoint period\n"
      "(paper: baseline avg 157us; with transparent persistence the low-load\n"
      "latency impact is much larger than at saturation — avg 607us at 100 ms)");
  RunResult base = RunFixedLoad(0, kLoad, kRun);
  std::printf("  %-12s %10s %10s %12s\n", "period", "avg(us)", "p95(us)", "ops/s");
  std::printf("  %-12s %10.1f %10.1f %12.0f   (paper avg: 157us)\n", "baseline", base.avg_us,
              base.p95_us, base.achieved_ops);
  for (SimDuration period : {10, 20, 40, 60, 80, 100}) {
    RunResult r = RunFixedLoad(period * kMillisecond, kLoad, kRun);
    std::printf("  %-12llu %10.1f %10.1f %12.0f%s\n",
                static_cast<unsigned long long>(period), r.avg_us, r.p95_us, r.achieved_ops,
                period == 100 ? "   (paper avg: 607us)" : "");
  }
  std::printf(
      "\nNote: our simulation reproduces the paper's direction (persistence visibly\n"
      "inflates low-load latency, p95 >> avg) but underestimates the magnitude at\n"
      "long periods; see EXPERIMENTS.md for the discussion.\n");
  return 0;
}
