// Tables 1 and 7: full-checkpoint performance for a 500 MiB Redis instance —
// Aurora vs CRIU vs Redis's own fork-based RDB snapshots.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/redis_like.h"
#include "src/baselines/criu_like.h"

int main() {
  aurora::BenchReport report("table7_redis");
  using namespace aurora;
  constexpr uint64_t kValueSize = 496;  // 512 B slots
  constexpr uint64_t kKeys = (500 * kMiB) / 512;

  // --- Aurora -----------------------------------------------------------------
  BenchMachine aurora_machine(8 * kGiB);
  aurora_machine.metrics_label = "aurora";
  double aurora_os_ms = 0;
  double aurora_mem_ms = 0;
  double aurora_stop_ms = 0;
  double aurora_io_ms = 0;
  {
    BenchMachine& m = aurora_machine;
    RedisLike redis(&m.sim, m.kernel.get(), kKeys, kValueSize);
    ConsistencyGroup* g = *m.sls->CreateGroup("redis");
    (void)m.sls->Attach(g, redis.process());
    SimTime t0 = m.sim.clock.now();
    auto ckpt = m.sls->Checkpoint(g, "bench");
    aurora_stop_ms = ToMillis(ckpt->stop_time);
    aurora_os_ms = ToMillis(ckpt->os_serialize_time + ckpt->quiesce_time);
    aurora_mem_ms = ToMillis(ckpt->shadow_time);
    // IO: asynchronous flush completes at durable_at, measured from resume.
    SimTime resume_at = t0 + ckpt->stop_time;
    aurora_io_ms = ckpt->durable_at > resume_at ? ToMillis(ckpt->durable_at - resume_at) : 0;
  }

  // --- CRIU --------------------------------------------------------------------
  BenchMachine criu_machine(8 * kGiB);
  criu_machine.metrics_label = "criu";
  CriuBreakdown criu{};
  {
    BenchMachine& m = criu_machine;
    RedisLike redis(&m.sim, m.kernel.get(), kKeys, kValueSize);
    CriuLike criu_tool(&m.sim, m.kernel.get(), m.device.get());
    criu = *criu_tool.Checkpoint({redis.process()});
  }

  // --- Redis RDB (BGSAVE) --------------------------------------------------------
  BenchMachine rdb_machine(8 * kGiB);
  rdb_machine.metrics_label = "rdb";
  RdbSaveResult rdb{};
  {
    BenchMachine& m = rdb_machine;
    RedisLike redis(&m.sim, m.kernel.get(), kKeys, kValueSize);
    rdb = *redis.BgSave(m.device.get());
  }

  PrintHeader("Table 1: CRIU checkpoint breakdown, 500 MB Redis (ms)");
  PrintColumns();
  PrintRow("OS State Copy", ToMillis(criu.os_state_time), 49, "ms");
  PrintRow("Memory Copy", ToMillis(criu.memory_copy_time), 413, "ms");
  PrintRow("Total Stop Time", ToMillis(criu.total_stop_time), 462, "ms");
  PrintRow("IO Write", ToMillis(criu.io_write_time), 350, "ms");

  PrintHeader("Table 7: Aurora vs CRIU vs RDB, 500 MiB Redis (ms)");
  std::printf("  %-18s | %9s %9s | %9s %9s | %9s %9s\n", "", "aurora", "(paper)", "criu",
              "(paper)", "rdb", "(paper)");
  std::printf("  %-18s | %9.1f %9.1f | %9.1f %9.1f | %9s %9s\n", "OS state", aurora_os_ms, 0.3,
              ToMillis(criu.os_state_time), 49.0, "n/a", "n/a");
  std::printf("  %-18s | %9.1f %9.1f | %9.1f %9.1f | %9s %9s\n", "Memory", aurora_mem_ms, 3.7,
              ToMillis(criu.memory_copy_time), 413.0, "n/a", "n/a");
  std::printf("  %-18s | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f\n", "Total stop", aurora_stop_ms,
              4.0, ToMillis(criu.total_stop_time), 462.0, ToMillis(rdb.fork_stop_time), 8.0);
  std::printf("  %-18s | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f\n", "IO write", aurora_io_ms,
              97.6, ToMillis(criu.io_write_time), 350.0, ToMillis(rdb.child_save_time), 300.0);

  double stop_speedup = ToMillis(criu.total_stop_time) / aurora_stop_ms;
  double io_speedup = ToMillis(criu.io_write_time) / aurora_io_ms;
  std::printf("\nShape checks: Aurora stop-time speedup over CRIU = %.0fx (paper: >100x);\n"
              "Aurora IO speedup = %.1fx (paper: >3x); RDB stop ~8 ms (fork COW arming).\n",
              stop_speedup, io_speedup);
  return 0;
}
