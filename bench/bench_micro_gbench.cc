// Google-benchmark microbenchmarks for Aurora's hot primitives.
//
// These measure *host* CPU time of the real data-structure operations (page
// copies, shadow lookups, serialization, checksums, journal formatting) —
// complementary to the simulated-time benches, and useful for catching
// implementation regressions.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/base/checksum.h"
#include "src/base/serializer.h"
#include "src/core/serialize.h"

namespace aurora {
namespace {

void BM_Crc32c(benchmark::State& state) {
  std::vector<uint8_t> data(static_cast<size_t>(state.range(0)), 0xa7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(4096)->Arg(65536);

void BM_CowFaultPromotion(benchmark::State& state) {
  SimContext sim;
  VmMap map(&sim);
  auto parent = VmObject::CreateAnonymous(4096 * kPageSize);
  uint8_t buf[kPageSize] = {1};
  for (uint64_t i = 0; i < 4096; i++) {
    parent->InstallPage(i, buf);
  }
  uint64_t i = 0;
  std::shared_ptr<VmObject> shadow;
  uint64_t addr = 0;
  for (auto _ : state) {
    if (i % 4096 == 0) {
      state.PauseTiming();
      shadow = VmObject::CreateShadow(parent);
      map = VmMap(&sim);
      addr = *map.Map(0x1000000, shadow->size(), kProtRead | kProtWrite, shadow, 0, false);
      state.ResumeTiming();
    }
    uint64_t v = i;
    benchmark::DoNotOptimize(map.Write(addr + (i % 4096) * kPageSize, &v, sizeof(v)).ok());
    i++;
  }
}
BENCHMARK(BM_CowFaultPromotion);

void BM_ShadowChainLookup(benchmark::State& state) {
  auto base = VmObject::CreateAnonymous(1024 * kPageSize);
  uint8_t buf[kPageSize] = {2};
  for (uint64_t i = 0; i < 1024; i++) {
    base->InstallPage(i, buf);
  }
  std::shared_ptr<VmObject> top = base;
  for (int64_t d = 0; d < state.range(0); d++) {
    top = VmObject::CreateShadow(top);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(top->LookupChain(i % 1024).page);
    i++;
  }
}
BENCHMARK(BM_ShadowChainLookup)->Arg(1)->Arg(2)->Arg(8);

void BM_SerializeOsState(benchmark::State& state) {
  BenchMachine m(2 * kGiB);
  AppProfile profile{"gbench", 8 * kMiB, 1, 4, 64, 32, 1};
  auto procs = BuildAppProfile(m, profile);
  ConsistencyGroup* group = *m.sls->CreateGroup("gbench");
  for (Process* p : procs) {
    (void)m.sls->Attach(group, p);
  }
  auto ensure = [&m](VmObject* obj) {
    if (obj->sls_oid() == 0) {
      obj->set_sls_oid((*m.store->CreateObject(ObjType::kMemory, obj->size())).value);
    }
    return Oid{obj->sls_oid()};
  };
  for (auto _ : state) {
    SerializeStats stats;
    auto blob = SerializeOsState(&m.sim, *group, 1, kInvalidOid, ensure, &stats);
    benchmark::DoNotOptimize(blob.ok());
  }
}
BENCHMARK(BM_SerializeOsState);

void BM_JournalRecordFormat(benchmark::State& state) {
  std::vector<uint8_t> payload(static_cast<size_t>(state.range(0)), 0x3d);
  for (auto _ : state) {
    BinaryWriter w;
    w.PutU32(0x4155524a);
    w.PutU64(1);
    w.PutU64(2);
    w.PutU64(payload.size());
    w.PutU32(Crc32c(payload.data(), payload.size()));
    w.PutRaw(payload.data(), payload.size());
    benchmark::DoNotOptimize(w.data().data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_JournalRecordFormat)->Arg(4096);

}  // namespace
}  // namespace aurora

// Expanded BENCHMARK_MAIN so the run also leaves a BENCH_micro_gbench.json
// behind (machines constructed by the fixtures feed its metrics section).
int main(int argc, char** argv) {
  aurora::BenchReport report("micro_gbench");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
