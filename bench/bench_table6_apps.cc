// Table 6: checkpoint stop times and restore times for application
// profiles (firefox, mosh, pillow, tomcat, vim).
//
// The real binaries cannot run on a simulated kernel, so each application is
// a synthetic profile with the paper's reported footprint and an OS-state
// complexity consistent with its description (see DESIGN.md section 4). As
// in the paper, the applications are mostly idle for the incremental row.
#include <cstdio>

#include "bench/bench_common.h"

namespace aurora {
namespace {

struct PaperRow {
  AppProfile profile;
  double mem_ckpt_ms;
  double full_ckpt_ms;
  double incr_ckpt_ms;
  double mem_restore_ms;
  double full_restore_ms;
  double lazy_restore_ms;
};

std::vector<PaperRow> PaperRows() {
  std::vector<PaperRow> rows;
  rows.push_back({{"firefox", 198 * kMiB, 4, 60, 225, 45, 2}, 1.4, 1.8, 1.9, 0.9, 12.4, 6.3});
  rows.push_back({{"mosh", 24 * kMiB, 1, 2, 120, 24, 1}, 0.4, 0.4, 0.4, 0.2, 1.9, 0.9});
  rows.push_back({{"pillow", 75 * kMiB, 1, 4, 640, 40, 1}, 0.7, 0.9, 0.6, 0.2, 8.2, 0.2});
  rows.push_back({{"tomcat", 197 * kMiB, 1, 80, 1100, 260, 4}, 2.7, 3.2, 2.1, 0.5, 33.6, 3.1});
  rows.push_back({{"vim", 48 * kMiB, 1, 1, 520, 20, 1}, 0.7, 0.8, 0.7, 0.3, 4.1, 2.4});
  return rows;
}

struct Measured {
  double mem_ckpt_ms;
  double full_ckpt_ms;
  double incr_ckpt_ms;
  double mem_restore_ms;
  double full_restore_ms;
  double lazy_restore_ms;
};

Measured MeasureApp(const AppProfile& profile) {
  Measured out{};
  {
    // Memory-only checkpoint + restore-from-memory.
    BenchMachine m(8 * kGiB);
    auto procs = BuildAppProfile(m, profile);
    ConsistencyGroup* g = *m.sls->CreateGroup(profile.name);
    for (Process* p : procs) {
      (void)m.sls->Attach(g, p);
    }
    auto mem = m.sls->Checkpoint(g, "", CheckpointMode::kMemoryOnly);
    out.mem_ckpt_ms = ToMillis(mem->stop_time);
    auto restored = m.sls->Restore(profile.name, 0, RestoreMode::kFromMemory);
    out.mem_restore_ms = ToMillis(restored->restore_time);
  }
  {
    // Full checkpoint; then an incremental one with the app mostly idle.
    BenchMachine m(8 * kGiB);
    auto procs = BuildAppProfile(m, profile);
    ConsistencyGroup* g = *m.sls->CreateGroup(profile.name);
    for (Process* p : procs) {
      (void)m.sls->Attach(g, p);
    }
    auto full = m.sls->Checkpoint(g);
    out.full_ckpt_ms = ToMillis(full->stop_time);
    m.sim.clock.AdvanceTo(full->durable_at);
    // Mostly idle: touch a little memory between checkpoints.
    (void)procs[0]->vm().DirtyRange(0x40000000, 16 * kPageSize);
    auto incr = m.sls->Checkpoint(g);
    out.incr_ckpt_ms = ToMillis(incr->stop_time);
    m.sim.clock.AdvanceTo(incr->durable_at);

    auto full_restore = m.sls->Restore(profile.name, 0, RestoreMode::kFull);
    out.full_restore_ms = ToMillis(full_restore->restore_time);
    auto lazy_restore = m.sls->Restore(profile.name, 0, RestoreMode::kLazy);
    out.lazy_restore_ms = ToMillis(lazy_restore->restore_time);

    // Steady state: many mostly-idle epochs, so the group's stop-time
    // percentiles (ckpt.stop_time in the BENCH JSON) reflect the incremental
    // path rather than the one-off cold checkpoint. The restores above tore
    // down the original processes and rebound the group to the restored
    // incarnation, so address the app through the group, not through procs.
    Process* app = g->processes[0];
    for (int epoch = 0; epoch < 120; epoch++) {
      (void)app->vm().DirtyRange(0x40000000, 16 * kPageSize);
      auto steady = m.sls->Checkpoint(g);
      if (steady.ok()) {
        m.sim.clock.AdvanceTo(steady->durable_at);
      }
    }
  }
  return out;
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("table6_apps");
  using namespace aurora;
  PrintHeader("Table 6: application checkpoint stop times and restore times (ms)");
  std::printf("  %-9s | %-6s |  %5s %7s | %5s %7s | %5s %7s\n", "", "", "meas", "(paper)",
              "meas", "(paper)", "meas", "(paper)");
  for (const PaperRow& row : PaperRows()) {
    Measured msr = MeasureApp(row.profile);
    std::printf("  %-9s | ckpt   |  mem %5.1f %5.1f | full %5.1f %5.1f | incr %5.1f %5.1f\n",
                row.profile.name.c_str(), msr.mem_ckpt_ms, row.mem_ckpt_ms, msr.full_ckpt_ms,
                row.full_ckpt_ms, msr.incr_ckpt_ms, row.incr_ckpt_ms);
    std::printf("  %-9s | restore|  mem %5.1f %5.1f | full %5.1f %5.1f | lazy %5.1f %5.1f\n", "",
                msr.mem_restore_ms, row.mem_restore_ms, msr.full_restore_ms, row.full_restore_ms,
                msr.lazy_restore_ms, row.lazy_restore_ms);
  }
  std::printf(
      "\nShape checks: stop time tracks OS-state complexity (tomcat/firefox worst),\n"
      "full restores track RSS; lazy restores approach memory restores.\n");
  return 0;
}
