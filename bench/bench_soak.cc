// Long-horizon soak: the segment log under a retention policy must hold
// space flat over 10^4+ epochs of overwrite churn while the legacy free-list
// path (which keeps every epoch until someone prunes) grows without bound,
// and paced background compaction must not move the foreground flush tail.
//
//   Part A: 12,000 epochs, hot/cold churn, retention keep=4, online GC.
//           Used blocks at end-of-run must be within 10% of the mid-run
//           steady state ("<label> end/mid used" row; ci.sh gates on it).
//   Part B: the same churn on the legacy layout with no retention: used
//           blocks keep climbing (the ROADMAP item 5 failure mode).
//   Part C: fig3 write profile (random 64 KiB writes, 10 ms sync cadence)
//           with GC enabled vs disabled: flush-makespan p99 ratio <= 1.15.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/base/rng.h"
#include "src/objstore/segment_gc.h"

namespace aurora {
namespace {

// Syscall entry/exit + copyin for one file system call (as in bench_fig3).
constexpr SimDuration kSyscallCost = 2000;

// --- Parts A and B: store-level churn soak -----------------------------------

constexpr uint32_t kChurnBlock = 8 * 1024;
constexpr uint64_t kColdBlocks = 24;
constexpr uint64_t kHotBlocks = 7;

// One machine's worth of overwrite churn. Each epoch rewrites every hot
// block plus one rotating cold block, so sealed segments carry a few
// long-lived blocks among the soon-dead ones — space only relocation (not
// inline whole-segment reclaim) can recover.
struct ChurnStore {
  SimContext sim;
  std::unique_ptr<MemBlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  Oid oid = kInvalidOid;

  explicit ChurnStore(StoreLayout layout) {
    device = std::make_unique<MemBlockDevice>(&sim.clock, (512 * kMiB) / kPageSize);
    StoreOptions options;
    options.block_size = kChurnBlock;
    options.layout = layout;
    options.segment_blocks = 8;
    store = *ObjectStore::Format(device.get(), &sim, options);
    oid = *store->CreateObject(ObjType::kMemory);
  }

  void Epoch(uint64_t epoch) {
    std::vector<uint8_t> data(kChurnBlock);
    auto put = [&](uint64_t block) {
      for (size_t i = 0; i < data.size(); i++) {
        data[i] = static_cast<uint8_t>(epoch * 37 + block + i * 31);
      }
      (void)store->WriteAt(oid, block * kChurnBlock, data.data(), data.size());
    };
    for (uint64_t h = 0; h < kHotBlocks; h++) {
      put(kColdBlocks + h);
    }
    put(epoch % kColdBlocks);
    (void)store->CommitCheckpoint("");
  }
};

// Part A: segment log + retention (keep the newest `keep` epochs, exactly
// the policy Sls::ApplyRetention applies) + online compaction.
void RunSegmentSoak(BenchReport& report, uint64_t epochs) {
  ChurnStore m(StoreLayout::kSegmentLog);
  constexpr uint64_t kKeepEpochs = 4;
  GcConfig config;
  config.bytes_per_sec = 512 * kMiB;  // paced like a background scrubber
  SegmentGc gc(m.store.get(), config);

  uint64_t used_mid = 0;
  for (uint64_t e = 1; e <= epochs; e++) {
    m.Epoch(e);
    std::vector<CheckpointInfo> ckpts = m.store->ListCheckpoints();
    if (ckpts.size() > kKeepEpochs) {
      (void)m.store->DeleteCheckpointsBefore(ckpts[ckpts.size() - kKeepEpochs].epoch);
    }
    (void)gc.Run();
    if (e == epochs / 2) {
      used_mid = m.store->UsedPhysicalBlocks();
    }
  }
  uint64_t used_end = m.store->UsedPhysicalBlocks();

  PrintRow("segment-log used blocks (mid-run)", static_cast<double>(used_mid), 0, "blocks");
  PrintRow("segment-log used blocks (end)", static_cast<double>(used_end), 0, "blocks");
  // ci.sh gates on this row: paper column is the 1.10 flatness bound.
  PrintRow("segment-log end/mid used", static_cast<double>(used_end) / static_cast<double>(used_mid),
           1.10, "ratio");
  PrintRow("gc segments reclaimed",
           static_cast<double>(m.sim.metrics.counter("gc.segments_reclaimed").value()), 0, "segs");
  report.AddMetrics("soak_segment_log", m.sim);
}

// Part B: the legacy allocator with nothing pruning history — the status
// quo this refactor replaces. Shorter horizon: it never gives space back.
void RunLegacyGrowth(BenchReport& report, uint64_t epochs) {
  ChurnStore m(StoreLayout::kLegacy);
  uint64_t used_mid = 0;
  for (uint64_t e = 1; e <= epochs; e++) {
    m.Epoch(e);
    if (e == epochs / 2) {
      used_mid = m.store->UsedPhysicalBlocks();
    }
  }
  uint64_t used_end = m.store->UsedPhysicalBlocks();
  PrintRow("legacy used blocks (mid-run)", static_cast<double>(used_mid), 0, "blocks");
  PrintRow("legacy used blocks (end)", static_cast<double>(used_end), 0, "blocks");
  PrintRow("legacy end/mid used", static_cast<double>(used_end) / static_cast<double>(used_mid),
           1.10, "ratio");
  report.AddMetrics("soak_legacy", m.sim);
}

// --- Part C: foreground flush tail under background GC -----------------------

// The fig3 aurora write profile: random 64 KiB writes into a 256 MiB file
// with the 10 ms kernel-syncer cadence. Returns the p99 flush makespan in
// seconds; with `gc_enabled` a paced compactor runs after every commit.
double FlushTailP99(BenchReport& report, bool gc_enabled) {
  BenchMachine m(16 * kGiB);
  m.metrics_label = gc_enabled ? "fig3_gc_on" : "fig3_gc_off";
  GcConfig config;
  config.bytes_per_sec = 512 * kMiB;
  SegmentGc gc(m.store.get(), config);

  auto vn = *m.fs->Create("bigfile");
  const uint64_t file_size = 256 * kMiB;
  const uint64_t io_size = 64 * kKiB;
  std::vector<uint8_t> buf(io_size, 0xd1);
  Rng rng(42);
  SimClock& clock = m.sim.clock;
  SimDuration sync_period = 10 * kMillisecond;
  SimTime next_sync = clock.now() + sync_period;

  std::vector<double> makespans;
  for (uint64_t i = 0; i < 16384; i++) {
    clock.Advance(kSyscallCost);
    uint64_t pos = rng.Below(file_size / io_size) * io_size;
    (void)vn->Write(pos, buf.data(), buf.size());
    if (clock.now() >= next_sync || m.fs->DirtyBytes() > 128 * kMiB) {
      SimTime start = clock.now();
      auto done = m.fs->FlushAll();
      (void)m.store->CommitCheckpoint("");
      if (done.ok()) {
        makespans.push_back(ToSeconds(*done - start));
        if (m.fs->DirtyBytes() > 128 * kMiB) {
          clock.AdvanceTo(*done);  // backpressure, as in the fig3 loop
        }
      }
      (void)m.store->DeleteCheckpointsBefore(m.store->current_epoch() - 1);
      if (gc_enabled) {
        (void)gc.Run();
      }
      next_sync = clock.now() + sync_period;
    }
  }
  (void)report;
  std::sort(makespans.begin(), makespans.end());
  return makespans.empty() ? 0.0 : makespans[makespans.size() * 99 / 100];
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("soak");
  using namespace aurora;

  PrintHeader("Soak part A: segment log + retention keep=4 + online GC, 12000 epochs\n"
              "(flat: end-of-run used blocks within 10% of mid-run steady state)");
  PrintColumns();
  RunSegmentSoak(report, 12000);

  PrintHeader("Soak part B: legacy free-list layout, no retention, 1500 epochs\n"
              "(the allocator never gives history back; used blocks keep climbing)");
  PrintColumns();
  RunLegacyGrowth(report, 1500);

  PrintHeader("Soak part C: fig3 write profile, flush-makespan p99, GC on vs off\n"
              "(paced background compaction must stay out of the foreground tail)");
  PrintColumns();
  double off = FlushTailP99(report, false);
  double on = FlushTailP99(report, true);
  PrintRow("flush p99, GC off", off * 1e3, 0, "ms");
  PrintRow("flush p99, GC on", on * 1e3, 0, "ms");
  PrintRow("flush p99 GC-on/GC-off", off > 0 ? on / off : 0.0, 1.15, "ratio");
  return 0;
}
