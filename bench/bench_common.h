// Shared benchmark machinery: one simulated machine per benchmark, paper
// reference values printed alongside measurements, and synthetic process
// builders (the Table 5/6 application profiles).
#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/fs/baseline_fs.h"
#include "src/objstore/object_store.h"
#include "src/obs/json.h"
#include "src/posix/kernel.h"
#include "src/storage/block_device.h"

namespace aurora {

// Machine-readable companion to the printed tables: each bench binary
// declares one BenchReport at the top of main(), PrintRow feeds every table
// row into it, and BenchMachine teardown snapshots the machine's metrics
// registry (counters/gauges/histograms plus the newest phase spans). The
// destructor writes BENCH_<name>.json next to the binary's working
// directory so runs can be diffed without parsing stdout.
class BenchReport {
 public:
  explicit BenchReport(const std::string& name);
  ~BenchReport();

  void AddResult(const std::string& label, double measured, double paper,
                 const std::string& unit);
  // Snapshots `sim`'s registry under `label` ("machineN" when empty).
  void AddMetrics(const std::string& label, const SimContext& sim);
  void Write();

  static BenchReport* Current();

 private:
  struct Row {
    std::string label;
    double measured;
    double paper;
    std::string unit;
  };

  std::string name_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, std::string>> metrics_;  // label -> JSON
  uint64_t machines_dropped_ = 0;
  bool written_ = false;
};

// One simulated machine matching the paper's testbed storage.
struct BenchMachine {
  explicit BenchMachine(uint64_t store_bytes = 8 * kGiB, uint32_t store_block = 64 * 1024) {
    device = MakePaperTestbedStore(&sim.clock, store_bytes, kPageSize, &sim.metrics);
    StoreOptions options;
    options.block_size = store_block;
    store = *ObjectStore::Format(device.get(), &sim, options);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
  }

  ~BenchMachine() {
    if (BenchReport* report = BenchReport::Current()) {
      report->AddMetrics(metrics_label, sim);
    }
  }

  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
  // Names this machine's section in the BENCH_*.json metrics dump.
  std::string metrics_label;
};

// Synthetic application profile (DESIGN.md section 4): a process tree with a
// given memory footprint and OS-state complexity.
struct AppProfile {
  std::string name;
  uint64_t rss_bytes = 0;
  int processes = 1;
  int threads = 1;          // total across the tree
  int map_entries = 32;     // per process, beyond the data regions
  int fds = 16;             // per process, mixed types
  int kqueues = 1;
};

// Builds the profile inside `m` and returns the process tree.
std::vector<Process*> BuildAppProfile(BenchMachine& m, const AppProfile& profile);

// --- Table printing -----------------------------------------------------------

inline void PrintHeader(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

inline void PrintRow(const char* label, double measured, double paper, const char* unit) {
  std::printf("  %-34s %12.1f %12.1f  %s\n", label, measured, paper, unit);
  if (BenchReport* report = BenchReport::Current()) {
    report->AddResult(label, measured, paper, unit);
  }
}

inline void PrintRowStr(const char* label, const std::string& measured,
                        const std::string& paper) {
  std::printf("  %-34s %12s %12s\n", label, measured.c_str(), paper.c_str());
}

inline void PrintColumns() {
  std::printf("  %-34s %12s %12s\n", "", "measured", "paper");
}

}  // namespace aurora

#endif  // BENCH_BENCH_COMMON_H_
