// Table 5: checkpoint stop times for userspace data objects, by mode.
//
//   Incremental — full transparent checkpoint (all OS state + dirty memory)
//   Atomic      — sls_memckpt of the single region
//   Journaled   — sls_journal synchronous write of the data
//
// Stop time scales linearly with the dirty set (per-page COW arming in the
// page tables); the journal is latency-bound until ~64 KiB and
// bandwidth-bound after.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace aurora {
namespace {

struct PaperRow {
  uint64_t bytes;
  double incr_us;
  double atomic_us;
  double journal_us;
};

const PaperRow kPaper[] = {
    {4 * kKiB, 185, 80, 28},          {16 * kKiB, 185, 83, 32},
    {64 * kKiB, 183, 74, 55},         {256 * kKiB, 186, 81, 121},
    {1 * kMiB, 186, 72, 443},         {4 * kMiB, 226, 114, 1800},
    {16 * kMiB, 304, 184, 6600},      {64 * kMiB, 600, 492, 25900},
    {256 * kMiB, 1900, 1600, 104700}, {1 * kGiB, 6100, 6300, 417200},
};

// The paper's measurement process: a realistic server footprint whose OS
// state gives the fixed cost, plus the variable dirty region.
struct Harness {
  explicit Harness(uint64_t region_bytes) : machine(16 * kGiB) {
    AppProfile profile;
    profile.name = "table5";
    profile.rss_bytes = 8 * kMiB;
    profile.threads = 4;
    profile.map_entries = 64;
    profile.fds = 52;  // a connected server: sockets dominate
    procs = BuildAppProfile(machine, profile);
    group = *machine.sls->CreateGroup("table5");
    for (Process* p : procs) {
      (void)machine.sls->Attach(group, p);
    }
    auto obj = VmObject::CreateAnonymous(PageRound(region_bytes));
    region = *procs[0]->vm().Map(0x900000000ull, PageRound(region_bytes),
                                 kProtRead | kProtWrite, std::move(obj), 0, false);
    // Baseline checkpoint so later ones are incremental.
    (void)procs[0]->vm().DirtyRange(region, region_bytes);
    auto first = machine.sls->Checkpoint(group);
    machine.sim.clock.AdvanceTo(first->durable_at);
  }

  BenchMachine machine;
  std::vector<Process*> procs;
  ConsistencyGroup* group = nullptr;
  uint64_t region = 0;
};

double MeasureIncremental(uint64_t bytes) {
  Harness h(bytes);
  (void)h.procs[0]->vm().DirtyRange(h.region, bytes);
  auto ckpt = h.machine.sls->Checkpoint(h.group);
  return ToMicros(ckpt->stop_time);
}

double MeasureAtomic(uint64_t bytes) {
  Harness h(bytes);
  (void)h.procs[0]->vm().DirtyRange(h.region, bytes);
  auto ckpt = h.machine.sls->MemCheckpoint(h.procs[0], h.region);
  return ToMicros(ckpt->stop_time);
}

double MeasureJournal(uint64_t bytes) {
  BenchMachine m(16 * kGiB);
  auto journal = *m.sls->JournalCreate(2 * kGiB);
  std::vector<uint8_t> data(bytes, 0x7a);
  SimStopwatch watch(m.sim.clock);
  (void)m.sls->JournalAppend(journal, data.data(), data.size());
  return ToMicros(watch.Elapsed());
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("table5_memory_objects");
  using namespace aurora;
  PrintHeader(
      "Table 5: stop time vs dirty object size (us)\n"
      "columns: measured-incr paper-incr | measured-atomic paper-atomic | "
      "measured-journal paper-journal");
  std::printf("  %10s | %9s %9s | %9s %9s | %10s %10s\n", "size", "incr", "(paper)", "atomic",
              "(paper)", "journal", "(paper)");
  for (const auto& row : kPaper) {
    double incr = MeasureIncremental(row.bytes);
    double atomic_us = MeasureAtomic(row.bytes);
    double journal = MeasureJournal(row.bytes);
    const char* label = row.bytes >= kGiB ? "GiB" : (row.bytes >= kMiB ? "MiB" : "KiB");
    double scaled = static_cast<double>(row.bytes) /
                    static_cast<double>(row.bytes >= kGiB ? kGiB : (row.bytes >= kMiB ? kMiB : kKiB));
    std::printf("  %7.0f%3s | %9.0f %9.0f | %9.0f %9.0f | %10.0f %10.0f\n", scaled, label, incr,
                row.incr_us, atomic_us, row.atomic_us, journal, row.journal_us);
  }
  std::printf("\nShape checks: incremental slope ~23ns/page; journal = 26us + bytes/2.575GBps\n");
  return 0;
}
