// Figure 4: Memcached at max throughput over varying checkpoint periods.
//
// Closed-loop load (4 machines x 12 threads x 12 connections in the paper;
// here 48 logical connections with zero think time) against the KvServer.
// Aurora transparently checkpoints the consistency group at each period;
// overhead comes from three real mechanisms: checkpoint stop time, the
// post-checkpoint COW/soft fault storm (TLB and shadow repopulation), and
// flush backpressure. Per the paper's section 8, external synchrony is off.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/apps/kv_server.h"
#include "src/apps/workloads.h"
#include "src/base/histogram.h"

namespace aurora {
namespace {

struct RunResult {
  double mops = 0;  // throughput, ops/s
  double avg_us = 0;
  double p95_us = 0;
};

// Closed-loop G/G/1 simulation: the aggregate server pipeline processes
// requests in issue order; `conns` requests are always outstanding.
RunResult RunClosedLoop(SimDuration period, SimDuration sim_time, int conns) {
  BenchMachine m(32 * kGiB, 4096);  // page-granular store blocks for memory flushes
  KvServerConfig config;
  // Working set scaled so the dirty-page rate vs checkpoint period matches
  // the paper's dynamics at simulable page counts (see EXPERIMENTS.md).
  config.num_keys = 64 << 10;
  config.value_size = 200;
  // Aggregate server pipeline: 12 workers at ~11 us/op each.
  config.op_cpu = 920;
  KvServer server(&m.sim, m.kernel.get(), config);
  (void)server.Warmup();

  ConsistencyGroup* group = nullptr;
  if (period > 0) {
    group = *m.sls->CreateGroup("memcached");
    (void)m.sls->Attach(group, server.process());
    group->period = period;
    auto first = m.sls->Checkpoint(group);
    m.sim.clock.AdvanceTo(first->durable_at);
  }

  EtcWorkload workload(config.num_keys, 1234);
  LatencyHistogram latency;
  SimClock& clock = m.sim.clock;
  SimTime start = clock.now();
  SimTime deadline = start + sim_time;
  SimTime next_ckpt = start + (period > 0 ? period : sim_time * 2);

  // Closed loop: every connection has exactly one request outstanding; the
  // server is saturated, so requests are processed back to back and each
  // op's latency is its queueing delay (conns ahead of it) plus service.
  std::deque<SimTime> issue_times;
  for (int c = 0; c < conns; c++) {
    issue_times.push_back(clock.now());
  }
  uint64_t completed = 0;
  while (clock.now() < deadline) {
    // Checkpoint trigger (the paper waits for the previous flush before
    // starting the next checkpoint).
    if (group != nullptr && clock.now() >= next_ckpt) {
      auto ckpt = m.sls->Checkpoint(group);
      next_ckpt = std::max(ckpt->durable_at, clock.now() + period);
    }
    KvRequest req = workload.Next();
    Result<SimDuration> service =
        req.op == KvOp::kSet ? server.ExecuteSet(req.key, static_cast<uint8_t>(req.key))
                             : server.ExecuteGet(req.key);
    if (!service.ok()) {
      break;
    }
    SimTime issued = issue_times.front();
    issue_times.pop_front();
    // Client-observed latency includes the 10 GbE round trip.
    latency.Record(clock.now() - issued + m.sim.cost.net_rtt);
    issue_times.push_back(clock.now());  // zero think time: reissue
    completed++;
  }
  RunResult out;
  double seconds = ToSeconds(clock.now() - start);
  out.mops = static_cast<double>(completed) / seconds;
  out.avg_us = latency.MeanNanos() / 1000.0;
  out.p95_us = ToMicros(latency.Percentile(95));
  return out;
}

}  // namespace
}  // namespace aurora

int main() {
  aurora::BenchReport report("fig4_memcached_peak");
  using namespace aurora;
  constexpr int kConns = 192;
  constexpr SimDuration kRun = 2 * kSecond;

  PrintHeader(
      "Figure 4: Memcached max throughput / latency vs checkpoint period\n"
      "(paper shape: baseline ~1M ops/s flat; Aurora rises toward baseline as the\n"
      "period grows; latency falls with longer periods)");
  RunResult baseline = RunClosedLoop(0, kRun, kConns);
  std::printf("  %-12s %12s %10s %10s %10s\n", "period", "ops/s", "avg(us)", "p95(us)",
              "vs base");
  std::printf("  %-12s %12.0f %10.1f %10.1f %9.0f%%\n", "baseline", baseline.mops,
              baseline.avg_us, baseline.p95_us, 100.0);
  for (SimDuration period : {10, 20, 40, 60, 80, 100}) {
    RunResult r = RunClosedLoop(period * kMillisecond, kRun, kConns);
    std::printf("  %-12llu %12.0f %10.1f %10.1f %9.0f%%\n",
                static_cast<unsigned long long>(period), r.mops, r.avg_us, r.p95_us,
                100.0 * r.mops / baseline.mops);
  }
  std::printf("\nPaper anchor points: ~45-55%% of baseline at 10 ms, ~90%% at 100 ms;\n"
              "between 10 and 20 ms the frequency halves and throughput rises sharply.\n");
  return 0;
}
