// Time-travel debugging: the execution history retained by the object store
// lets you rewind a live application to any earlier checkpoint and extract
// any state as an ELF core dump (`sls restore`, `sls dump`).
//
// Build & run:  ./build/examples/timetravel_debugging
#include <cstdio>
#include <cstring>

#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/coredump.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/storage/block_device.h"

using namespace aurora;

int main() {
  SimContext sim;
  auto device = MakePaperTestbedStore(&sim.clock, 2 * kGiB);
  auto store = *ObjectStore::Format(device.get(), &sim);
  AuroraFs fs(&sim, store.get());
  Kernel kernel(&sim);
  Sls sls(&sim, &kernel, store.get(), &fs);
  SlsCli cli(&sls);

  // A "buggy" application: state evolves through versions; version 3
  // corrupts something and we want to find out when.
  Process* app = *kernel.CreateProcess("buggy");
  auto memory = VmObject::CreateAnonymous(4 * kMiB);
  uint64_t addr = *app->vm().Map(0x400000, 4 * kMiB, kProtRead | kProtWrite, memory, 0, false);
  (void)cli.Attach("buggy", app);

  uint64_t epochs[5] = {};
  for (uint64_t version = 1; version <= 4; version++) {
    char state[64];
    std::snprintf(state, sizeof(state), "app-state-version-%llu%s",
                  static_cast<unsigned long long>(version),
                  version >= 3 ? " [CORRUPTED]" : "");
    (void)app->vm().Write(addr, state, sizeof(state));
    auto ckpt = *cli.Checkpoint("buggy", "v" + std::to_string(version));
    epochs[version] = ckpt.epoch;
    app = sls.FindGroup("buggy")->processes[0];
  }

  // `sls ps`: browse the history.
  std::printf("history:\n");
  for (const auto& line : cli.Ps()) {
    std::printf("  %s\n", line.c_str());
  }

  // Bisect: inspect version 2 (last good) by rewinding the live app.
  auto restored = *cli.Restore("buggy", epochs[2]);
  char state[64] = {};
  (void)restored.group->processes[0]->vm().Read(addr, state, sizeof(state));
  std::printf("\nrewound to epoch %llu: \"%s\"\n",
              static_cast<unsigned long long>(epochs[2]), state);

  // Extract a debugger-consumable core of the rewound state.
  auto core = *cli.Dump("buggy", restored.group->processes[0]->local_pid());
  auto summary = *InspectElfCore(core);
  std::printf("ELF core: %llu load segments, %llu threads, %.1f MiB of memory image\n",
              static_cast<unsigned long long>(summary.load_segments),
              static_cast<unsigned long long>(summary.note_threads),
              static_cast<double>(summary.memory_bytes) / (1 << 20));

  bool ok = std::strstr(state, "version-2") != nullptr &&
            std::strstr(state, "CORRUPTED") == nullptr;
  std::printf("%s\n", ok ? "bisection found the last good version" : "unexpected state!");
  return ok ? 0 : 1;
}
