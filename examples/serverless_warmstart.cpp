// Serverless warm starts: checkpoint a function after its expensive
// initialization, then restore instances on demand — lazily, so start-up
// cost is OS state only and pages stream in as the function touches them.
//
// Build & run:  ./build/examples/serverless_warmstart
#include <cstdio>

#include "src/base/sim_context.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/storage/block_device.h"

using namespace aurora;

namespace {

// "Initializes" a function runtime: loading libraries, JIT warmup, building
// caches — tens of MiB of memory traffic and a lot of simulated time.
uint64_t ColdInit(SimContext& sim, Process* proc) {
  auto runtime = VmObject::CreateAnonymous(64 * kMiB);
  uint64_t addr =
      *proc->vm().Map(0x400000, 64 * kMiB, kProtRead | kProtWrite, runtime, 0, false);
  (void)proc->vm().DirtyRange(addr, 48 * kMiB);  // populate the runtime
  sim.clock.Advance(850 * kMillisecond);         // interpreter/JIT startup
  const char ready[] = "runtime-ready";
  (void)proc->vm().Write(addr + 1024, ready, sizeof(ready));
  return addr;
}

}  // namespace

int main() {
  SimContext sim;
  auto device = MakePaperTestbedStore(&sim.clock, 4 * kGiB);
  auto store = *ObjectStore::Format(device.get(), &sim);
  AuroraFs fs(&sim, store.get());
  Kernel kernel(&sim);
  Sls sls(&sim, &kernel, store.get(), &fs);

  // --- Cold start: initialize once, snapshot post-init ------------------------
  SimStopwatch cold(sim.clock);
  Process* prototype = *kernel.CreateProcess("lambda");
  uint64_t addr = ColdInit(sim, prototype);
  double cold_ms = ToMillis(cold.Elapsed());

  ConsistencyGroup* group = *sls.CreateGroup("lambda");
  (void)sls.Attach(group, prototype);
  auto snapshot = *sls.Suspend(group);  // checkpoint + tear down the instance
  sim.clock.AdvanceTo(snapshot.durable_at);
  std::printf("cold start: %.0f ms (one-time); snapshot flushed %.1f MiB\n", cold_ms,
              static_cast<double>(snapshot.bytes_flushed) / (1 << 20));

  // --- Warm starts: restore on each invocation --------------------------------
  for (int invocation = 0; invocation < 3; invocation++) {
    SimStopwatch warm(sim.clock);
    auto instance = *sls.Restore("lambda", 0, RestoreMode::kLazy);
    double restore_ms = ToMillis(warm.Elapsed());

    // The function handles a request: touches a slice of the runtime; lazy
    // restore pages it in from the store on demand.
    Process* proc = instance.group->processes[0];
    char ready[16] = {};
    (void)proc->vm().Read(addr + 1024, ready, sizeof(ready));
    uint64_t work = 0;
    for (uint64_t off = 0; off < 2 * kMiB; off += kPageSize) {
      uint8_t byte = 0;
      (void)proc->vm().Read(addr + off, &byte, 1);
      work += byte;
    }
    double total_ms = ToMillis(warm.Elapsed());
    std::printf("invocation %d: restore %.2f ms, first request served by %.2f ms "
                "(runtime says \"%s\")\n",
                invocation, restore_ms, total_ms, ready);
    // The instance exits after serving; the snapshot stays for the next one.
    for (Process* p : instance.group->processes) {
      kernel.DestroyProcess(p);
    }
    instance.group->processes.clear();
  }
  std::printf("warm starts skip the %.0f ms initialization entirely\n", cold_ms);
  return 0;
}
