// Live migration: `sls send` / `sls recv` move a running application (all
// of it: memory, descriptors, sockets, process tree) to another machine.
//
// Build & run:  ./build/examples/migration
#include <cstdio>
#include <memory>

#include "src/base/sim_context.h"
#include "src/core/cli.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/storage/block_device.h"

using namespace aurora;

namespace {

struct Machine {
  explicit Machine(const char* label) : name(label) {
    device = MakePaperTestbedStore(&sim.clock, 2 * kGiB);
    store = *ObjectStore::Format(device.get(), &sim);
    fs = std::make_unique<AuroraFs>(&sim, store.get());
    kernel = std::make_unique<Kernel>(&sim);
    sls = std::make_unique<Sls>(&sim, kernel.get(), store.get(), fs.get());
    cli = std::make_unique<SlsCli>(sls.get());
  }
  const char* name;
  SimContext sim;
  std::unique_ptr<BlockDevice> device;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<AuroraFs> fs;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<Sls> sls;
  std::unique_ptr<SlsCli> cli;
};

}  // namespace

int main() {
  Machine source("machine-a");
  Machine target("machine-b");

  // A web application with memory state and a listening socket.
  Process* app = *source.kernel->CreateProcess("webapp");
  auto memory = VmObject::CreateAnonymous(32 * kMiB);
  uint64_t addr = *app->vm().Map(0x400000, 32 * kMiB, kProtRead | kProtWrite, memory, 0, false);
  (void)app->vm().DirtyRange(addr, 8 * kMiB);  // session state
  const char session[] = "user-session-token-12345";
  (void)app->vm().Write(addr + 4096, session, sizeof(session));

  int sock_fd = *source.kernel->MakeSocket(*app, SocketDomain::kInet, SocketProto::kTcp);
  auto* listener =
      static_cast<Socket*>((*app->fds().Get(sock_fd))->object.get());
  (void)listener->Bind({0x0a000001, 443, ""});
  (void)listener->Listen(128);

  (void)source.cli->Attach("webapp", app);
  auto base = *source.cli->Checkpoint("webapp", "pre-migration");

  // Pre-copy: ship the full image once, then stream incremental deltas while
  // the application keeps running (sls send's continuous mode).
  MigrationSession precopy;
  auto full = *source.cli->Send("webapp");
  std::printf("pre-copy round 0: %.1f MiB (full image)\n",
              static_cast<double>(full.bytes.size()) / (1 << 20));
  (void)target.cli->Recv(full, &precopy);
  uint64_t prev_epoch = base.epoch;
  for (int round = 1; round <= 3; round++) {
    (void)app->vm().DirtyRange(addr + 16 * kMiB, 64 * kPageSize);  // app still working
    auto ckpt = *source.cli->Checkpoint("webapp", "precopy-" + std::to_string(round));
    auto delta = *source.cli->Send("webapp", ckpt.epoch, prev_epoch);
    std::printf("pre-copy round %d: %.2f MiB (delta only)\n", round,
                static_cast<double>(delta.bytes.size()) / (1 << 20));
    (void)target.cli->Recv(delta, &precopy);
    prev_epoch = ckpt.epoch;
  }

  // Final round: suspend, ship the last delta, resume on the target.
  SimTime downtime_start = source.sim.clock.now();
  (void)source.cli->Suspend("webapp");
  auto stream = *source.cli->Send("webapp", 0, prev_epoch);
  std::printf("final delta: %.2f MiB over the 10 GbE link\n",
              static_cast<double>(stream.bytes.size()) / (1 << 20));

  auto arrived = *target.cli->Recv(stream, &precopy);
  double downtime_ms = ToMillis(source.sim.clock.now() - downtime_start);

  Process* rapp = arrived.group->processes[0];
  char buf[sizeof(session)] = {};
  (void)rapp->vm().Read(addr + 4096, buf, sizeof(buf));
  auto* rsock = static_cast<Socket*>((*rapp->fds().Get(sock_fd))->object.get());

  std::printf("migrated to %s: session token = \"%s\"\n", target.name, buf);
  std::printf("listening socket restored on port %u (accept queue empty: clients re-SYN)\n",
              rsock->local.port);
  std::printf("downtime (suspend -> resume): %.1f ms\n", downtime_ms);

  // The app is now a first-class citizen of machine B: checkpoint it there.
  auto ckpt = *target.sls->Checkpoint(arrived.group, "post-migration");
  std::printf("first native checkpoint on %s flushed %.1f MiB\n", target.name,
              static_cast<double>(ckpt.bytes_flushed) / (1 << 20));
  return std::string(buf) == session ? 0 : 1;
}
