// Quickstart: transparent persistence in ~60 lines.
//
// A counter "application" runs on the simulated machine, gets attached to
// the single level store, and survives a power failure with at most one
// checkpoint period of lost work — with zero persistence code of its own.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/base/sim_context.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/objstore/object_store.h"
#include "src/storage/block_device.h"

using namespace aurora;

int main() {
  // One simulated machine: 4 NVMe devices striped at 64 KiB, an object
  // store, the Aurora file system and the SLS orchestrator.
  SimContext sim;
  auto device = MakePaperTestbedStore(&sim.clock, 1 * kGiB);
  auto store = *ObjectStore::Format(device.get(), &sim);
  AuroraFs fs(&sim, store.get());
  Kernel kernel(&sim);
  Sls sls(&sim, &kernel, store.get(), &fs);

  // The application: a process with a counter in plain anonymous memory.
  Process* app = *kernel.CreateProcess("counter");
  auto memory = VmObject::CreateAnonymous(1 * kMiB);
  uint64_t addr = *app->vm().Map(0x400000, 1 * kMiB, kProtRead | kProtWrite, memory, 0, false);

  // `sls attach`: the app now checkpoints 100x per second.
  ConsistencyGroup* group = *sls.CreateGroup("counter");
  (void)sls.Attach(group, app);

  // The app counts; Aurora checkpoints every 10 ms.
  uint64_t counter = 0;
  SimTime next_ckpt = sim.clock.now() + group->period;
  for (int step = 0; step < 100000; step++) {
    counter++;
    (void)app->vm().Write(addr, &counter, sizeof(counter));
    sim.clock.Advance(2 * kMicrosecond);  // "work"
    if (sim.clock.now() >= next_ckpt) {
      auto ckpt = *sls.Checkpoint(group);
      next_ckpt = std::max(ckpt.durable_at, sim.clock.now() + group->period);
    }
  }
  std::printf("counter reached %llu; last checkpoint at most 10 ms ago\n",
              static_cast<unsigned long long>(counter));

  // --- Power failure ---------------------------------------------------------
  // Everything volatile disappears; only the device contents survive.
  auto recovered_store = *ObjectStore::Open(device.get(), &sim);
  AuroraFs recovered_fs(&sim, recovered_store.get());
  Kernel recovered_kernel(&sim);
  Sls recovered_sls(&sim, &recovered_kernel, recovered_store.get(), &recovered_fs);

  auto restored = *recovered_sls.Restore("counter");
  Process* rapp = restored.group->processes[0];
  uint64_t recovered_counter = 0;
  (void)rapp->vm().Read(addr, &recovered_counter, sizeof(recovered_counter));

  std::printf("after crash+restore: counter = %llu (lost %llu increments, <= one period)\n",
              static_cast<unsigned long long>(recovered_counter),
              static_cast<unsigned long long>(counter - recovered_counter));
  std::printf("restore took %.2f ms; the process resumes as if nothing happened\n",
              ToMillis(restored.restore_time));
  return recovered_counter > 0 && recovered_counter <= counter ? 0 : 1;
}
