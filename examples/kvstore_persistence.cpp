// Aurora API example: the paper's customized key-value store (section 9.6).
//
// The store keeps its whole dataset in a VM-resident memtable and replaces
// 81k lines of LSM persistence machinery with:
//   - sls_journal appends before acknowledging writes,
//   - an Aurora checkpoint when the journal fills,
//   - restore + arena scan + journal replay for recovery.
//
// Build & run:  ./build/examples/kvstore_persistence
#include <cstdio>

#include "src/apps/aurora_kv.h"
#include "src/base/sim_context.h"
#include "src/core/sls.h"
#include "src/fs/aurora_fs.h"
#include "src/storage/block_device.h"

using namespace aurora;

int main() {
  SimContext sim;
  auto device = MakePaperTestbedStore(&sim.clock, 2 * kGiB);
  auto store = *ObjectStore::Format(device.get(), &sim);
  AuroraFs fs(&sim, store.get());
  Kernel kernel(&sim);
  Sls sls(&sim, &kernel, store.get(), &fs);

  Process* proc = *kernel.CreateProcess("kvstore");
  ConsistencyGroup* group = *sls.CreateGroup("kvstore");
  (void)sls.Attach(group, proc);

  AuroraKvOptions options;
  options.memtable_bytes = 64 * kMiB;
  options.journal_bytes = 4 * kMiB;
  options.group_commit_batch = 1;  // persist every write individually here
  AuroraKv db(&sls, group, proc, options);

  // Write some durable state. Each Put is journaled synchronously (~28 us
  // for small records), so an acknowledged write is never lost.
  for (int i = 0; i < 1000; i++) {
    std::string key = "user:" + std::to_string(i);
    std::string value = "profile-data-" + std::to_string(i * 7);
    if (!db.Put(key, value).ok()) {
      std::printf("put failed\n");
      return 1;
    }
  }
  std::printf("1000 writes journaled; journal appends: %llu, checkpoints: %llu\n",
              static_cast<unsigned long long>(db.stats().journal_appends),
              static_cast<unsigned long long>(db.stats().checkpoints));

  // Take a checkpoint (captures the memtable as plain memory) and reset the
  // journal — the WAL-full path does this automatically.
  auto ckpt = *sls.Checkpoint(group, "manual");
  sim.clock.AdvanceTo(ckpt.durable_at);
  (void)sls.JournalReset(db.journal());

  // More writes after the checkpoint: these live only in the journal.
  for (int i = 1000; i < 1100; i++) {
    (void)db.Put("user:" + std::to_string(i), "post-checkpoint");
  }

  // --- Crash ------------------------------------------------------------------
  auto recovered_store = *ObjectStore::Open(device.get(), &sim);
  AuroraFs recovered_fs(&sim, recovered_store.get());
  Kernel recovered_kernel(&sim);
  Sls recovered_sls(&sim, &recovered_kernel, recovered_store.get(), &recovered_fs);

  auto restored = *recovered_sls.Restore("kvstore");
  // The paper's restore handler: reattach to the restored arenas, rebuild
  // the index by scanning them, then replay journal records newer than the
  // checkpoint.
  auto recovered = AuroraKv::Reattach(&recovered_sls, restored.group,
                                      restored.group->processes[0], options, db.arena_addr(),
                                      db.node_addr(), db.journal());
  if (!recovered.ok()) {
    std::printf("recovery failed: %s\n", recovered.status().ToString().c_str());
    return 1;
  }
  AuroraKv& recovered_db = **recovered;

  auto before = *recovered_db.Get("user:42");
  auto after = *recovered_db.Get("user:1050");
  std::printf("after crash: user:42 -> %s\n",
              before.has_value() ? before->c_str() : "(missing!)");
  std::printf("after crash: user:1050 -> %s (was only in the journal)\n",
              after.has_value() ? after->c_str() : "(missing!)");
  return before.has_value() && after.has_value() ? 0 : 1;
}
